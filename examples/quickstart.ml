(* Quickstart: build a small loop sequence, analyse its dependences,
   derive the shift-and-peel amounts, fuse it, execute the fused
   schedule in parallel blocks, and verify the result.

     dune exec examples/quickstart.exe *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Dep = Lf_dep.Dep
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Codegen = Lf_core.Codegen

let () =
  (* 1. Build a three-nest parallel loop sequence (the paper's Figure 9
        example): a copy, then two +-1 stencils. *)
  let n = 64 in
  let i o = Ir.av ~c:o "i" in
  let nest nid out rhs =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = n - 2; parallel = true } ];
      body = [ Ir.stmt (Ir.aref out [ i 0 ]) rhs ];
    }
  in
  let read name o = Ir.Read (Ir.aref name [ i o ]) in
  let program =
    {
      Ir.pname = "quickstart";
      decls =
        List.map
          (fun a -> { Ir.aname = a; extents = [ n ] })
          [ "a"; "b"; "c"; "d" ];
      nests =
        [
          nest "L1" "a" (read "b" 0);
          nest "L2" "c" (Ir.Bin (Add, read "a" 1, read "a" (-1)));
          nest "L3" "d" (Ir.Bin (Add, read "c" 1, read "c" (-1)));
        ];
    }
  in
  Ir.validate program;
  Fmt.pr "The loop sequence:@.@.%a@." Ir.pp_program program;

  (* 2. Dependence analysis: the inter-nest dependence chain multigraph
        for the fused (outermost) dimension. *)
  let g = Dep.build ~depth:1 program in
  Fmt.pr "Inter-nest dependences:@.";
  List.iter (fun e -> Fmt.pr "  %a@." Dep.pp_edge e) g.Dep.edges;

  (* 3. Derive the shift and peel amounts (Figure 8 algorithm). *)
  let d = Derive.of_multigraph g in
  Fmt.pr "@.Derived transformation:@.%a@." Derive.pp d;

  (* 4. Emit the fused code a compiler would generate (Figure 12). *)
  Fmt.pr "Generated strip-mined code for one processor block:@.@.%s@."
    (Codegen.strip_mined_to_string ~strip:16 program d);

  (* 5. Execute the fused schedule on 4 simulated processors and verify
        bit-exact equality with the serial reference. *)
  let sched = Schedule.fused ~nprocs:4 ~strip:16 ~derive:d program in
  let fused_result = Schedule.execute ~order:Schedule.Interleaved sched in
  let reference = Interp.run program in
  Fmt.pr "Fused parallel execution matches the serial reference: %b@."
    (Interp.equal reference fused_result)
