(* Scripted transformation pipeline: drive the lib/script combinator
   API directly (the .lft language is the same steps in text form),
   checkpoint after every step, and realize the result as a simulation
   request.

     dune exec examples/scripted_pipeline.exe

   The program is the paper's Figure 9 chain; the script is the shipped
   examples/scripts/fig9_shift_peel.lft expressed as combinators, plus
   a deliberately illegal plain fusion to show the typed error. *)

module Ir = Lf_ir.Ir
module Script = Lf_script.Script
module Realize = Lf_script.Realize
module Sim = Lf_machine.Sim
module Machine = Lf_machine.Machine
module Batch = Lf_batch.Batch

let fig9 n =
  let i o = Ir.av ~c:o "i" in
  let nest nid out rhs =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = n - 2; parallel = true } ];
      body = [ Ir.stmt (Ir.aref out [ i 0 ]) rhs ];
    }
  in
  let r name o = Ir.Read (Ir.aref name [ i o ]) in
  {
    Ir.pname = "fig9";
    decls =
      List.map (fun a -> { Ir.aname = a; extents = [ n ] }) [ "a"; "b"; "c"; "d" ];
    nests =
      [
        nest "L1" "a" (r "b" 0);
        nest "L2" "c" (Ir.Bin (Ir.Add, r "a" 1, r "a" (-1)));
        nest "L3" "d" (Ir.Bin (Ir.Add, r "c" 1, r "c" (-1)));
      ];
  }

let () =
  let p = fig9 256 in

  (* Plain fusion is illegal on this chain — the classifier names the
     backward dependence that Figure 3 warns about. *)
  (match Script.run p [ Script.fuse [ "L1"; "L2"; "L3" ] ] with
  | Ok _ -> assert false
  | Error e ->
    Fmt.pr "plain fusion rejected: %s@.@." (Script.error_to_string e));

  (* The shift-and-peel script succeeds; print a checkpoint per step. *)
  let steps =
    [
      Script.shift_peel ~into:"F" [ "L1"; "L2"; "L3" ];
      Script.strip_mine 16;
      Script.partition;
    ]
  in
  Fmt.pr "script:@.%s@." (Script.script_to_string steps);
  let st =
    match
      Script.run
        ~checkpoint:(fun i step st ->
          Fmt.pr "--- after step %d (%s) ---@.%s@." i (Script.step_name step)
            (Script.checkpoint_to_string st))
        p steps
    with
    | Ok st -> st
    | Error e -> failwith (Script.error_to_string e)
  in

  (* Realize as the canonical simulation request and run it through the
     batch layer (persistent store, engine tiers, domains). *)
  let req = Realize.request ~machine:Machine.convex ~nprocs:4 st in
  assert (Sim.legal req);
  let r = Batch.run_one ~store:(Batch.Store.open_ ()) req in
  Fmt.pr "simulated on %s: %.4e cycles, %d misses@."
    Machine.convex.Machine.mname r.Lf_machine.Exec.cycles
    r.Lf_machine.Exec.total_misses
