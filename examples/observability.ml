(* Event-counter observability: attach an lf_obs sink to a simulated
   run, attribute conflict misses to the arrays causing them, export a
   Chrome trace, and calibrate the autotuner's analytic tier from the
   recorded profile.

     dune exec examples/observability.exe *)

module Ir = Lf_ir.Ir
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Obs = Lf_obs.Obs
module Space = Lf_tune.Space
module Cost = Lf_tune.Cost

let () =
  let n = 256 in
  let p = Lf_kernels.Ll18.program ~n () in
  let machine = Machine.convex in
  let nprocs = 4 in
  let strip = 10 in
  Fmt.pr "Fused LL18, nine %dx%d arrays, %s, %d processors.@.@." n n
    machine.Machine.mname nprocs;

  (* 1. Profile the pathological layout: dense power-of-two arrays on a
     direct-mapped cache.  The sink is passive — the run's store and
     cycle counts are identical with or without it. *)
  let sink = Obs.create ~layout:"contiguous" () in
  let layout = Lf_core.Partition.contiguous p.Ir.decls in
  let r =
    Exec.run_request ~sink
      (Lf_machine.Sim.fused ~layout ~machine ~nprocs ~strip p)
  in
  Fmt.pr "contiguous layout: %.3e cycles, %d misses@.@." r.Exec.cycles
    r.Exec.total_misses;
  Fmt.pr "%a@." (Obs.pp_table ~by:Obs.By_array) sink;

  (* 2. The same data grouped by phase: the peeled phase is tiny. *)
  Fmt.pr "%a@." (Obs.pp_table ~by:Obs.By_phase) sink;

  (* 3. Export a Chrome trace (open in chrome://tracing or Perfetto). *)
  let file = Filename.temp_file "lf_obs_" ".json" in
  let oc = open_out file in
  output_string oc (Obs.trace_json sink);
  close_out oc;
  Fmt.pr "Chrome trace (%d events): %s@.@."
    (List.length (Obs.events sink))
    file;

  (* 4. Calibrate the autotuner's analytic tier with the measured miss
     factor instead of its layout heuristic. *)
  let calibration = Cost.calibration_of_sink sink in
  let cand =
    { Space.variant = Space.Fused { clustered = false; strip };
      layout = Space.Contiguous }
  in
  Fmt.pr "conflict factor for the contiguous layout:@.";
  Fmt.pr "  heuristic %.3f, measured %.3f@."
    (Cost.conflict_factor ~machine cand)
    (Cost.conflict_factor ~calibration ~machine cand);

  (* 5. Cache partitioning erases the cross-array column entirely. *)
  let psink = Obs.create ~layout:"partitioned" () in
  let playout =
    Lf_core.Partition.cache_partitioned
      ~cache:(Space.cache_shape machine)
      p.Ir.decls
  in
  let pr =
    Exec.run_request ~sink:psink
      (Lf_machine.Sim.fused ~layout:playout ~machine ~nprocs ~strip p)
  in
  let t = Obs.totals sink and pt = Obs.totals psink in
  Fmt.pr "@.partitioned layout: %.3e cycles, %d misses@." pr.Exec.cycles
    pr.Exec.total_misses;
  Fmt.pr
    "cross-array conflict misses: %d (contiguous) -> %d (partitioned)@."
    t.Obs.t_cross pt.Obs.t_cross
