(* A full "compiler pass pipeline" over a mixed loop sequence:

     distribute -> cluster -> shift-and-peel fusion -> contraction
     -> simulate

   Real programs interleave fusable stencils with loops the
   transformation cannot handle; this example shows the surrounding
   machinery that turns shift-and-peel into a usable compiler pass.

     dune exec examples/compiler_pipeline.exe *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Distribute = Lf_core.Distribute
module Cluster = Lf_core.Cluster
module Contract = Lf_core.Contract
module Legality = Lf_core.Legality
module Schedule = Lf_core.Schedule
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec

let build_program () =
  let i o = Ir.av ~c:o "i" in
  let n = 256 in
  let r name o = Ir.Read (Ir.aref name [ i o ]) in
  let nest ?(parallel = true) nid body =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 2; hi = n - 3; parallel } ];
      body;
    }
  in
  let p =
    {
      Ir.pname = "pipeline";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ n ] })
          [ "inp"; "t1"; "t2"; "out1"; "g"; "u"; "v"; "out2" ];
      nests =
        [
          (* a multi-statement nest distribution will split: t1 and t2
             are independent *)
          nest "S0"
            [
              Ir.stmt (Ir.aref "t1" [ i 0 ]) (r "inp" 0);
              Ir.stmt (Ir.aref "t2" [ i 0 ])
                (Ir.Bin (Mul, r "inp" 0, Ir.Const 2.0));
            ];
          nest "S1"
            [ Ir.stmt (Ir.aref "out1" [ i 0 ])
                (Ir.Bin (Add, r "t1" 1, r "t2" (-1))) ];
          (* a non-uniform nest clustering must isolate *)
          {
            Ir.nid = "S2";
            levels = [ { Ir.lvar = "i"; lo = 2; hi = (n / 2) - 2; parallel = true } ];
            body =
              [
                Ir.stmt (Ir.aref "g" [ Ir.affine [ (2, "i") ] ]) (r "out1" 0);
              ];
          };
          nest "S3" [ Ir.stmt (Ir.aref "u" [ i 0 ]) (r "g" 0) ];
          nest "S4"
            [ Ir.stmt (Ir.aref "v" [ i 0 ])
                (Ir.Bin (Add, r "u" 1, r "u" (-1))) ];
          nest "S5" [ Ir.stmt (Ir.aref "out2" [ i 0 ]) (r "v" 0) ];
        ];
    }
  in
  Ir.validate p;
  p

let () =
  let p = build_program () in
  Fmt.pr "Input sequence (%d nests):@.@.%a@." (List.length p.Ir.nests)
    Ir.pp_program p;

  (* 1. What would plain fusion do? *)
  Fmt.pr "Plain fusion of the whole sequence: %s@.@."
    (Legality.verdict_to_string (Legality.classify p));

  (* 2. Distribute multi-statement nests into pi-blocks. *)
  let p = Distribute.distribute p in
  Fmt.pr "After distribution: %d nests (independent statements split)@."
    (List.length p.Ir.nests);

  (* 3. Cluster into maximal fusable groups. *)
  let groups = Cluster.groups p in
  Fmt.pr "@.Fusion groups:@.%a" Cluster.pp_groups groups;

  (* 4. Build and verify the clustered shift-and-peel schedule. *)
  let nprocs = 4 in
  let sched = Cluster.schedule ~nprocs ~strip:16 p groups in
  let reference = Interp.run p in
  let st = Schedule.execute ~order:Schedule.Interleaved sched in
  Fmt.pr "@.Clustered schedule on %d processors matches the reference: %b@."
    nprocs (Interp.equal reference st);

  (* 5. Simulate on the Convex model. *)
  let r =
    Exec.run_request (Lf_machine.Sim.of_schedule ~machine:Machine.convex sched)
  in
  Fmt.pr "Simulated on %s: %.3e cycles, %d misses@."
    Machine.convex.Machine.mname r.Exec.cycles r.Exec.total_misses;

  (* 6. Array contraction: on a producer/consumer chain whose
        dependences are all loop-independent, direct fusion lets the
        temporaries shrink to one cell per fused iteration. *)
  let i = Ir.av "i" and j = Ir.av "j" in
  let cnest nid out src =
    {
      Ir.nid;
      levels =
        [
          { Ir.lvar = "i"; lo = 0; hi = 255; parallel = true };
          { Ir.lvar = "j"; lo = 0; hi = 255; parallel = true };
        ];
      body =
        [
          Ir.stmt (Ir.aref out [ i; j ])
            (Ir.Bin (Add, Ir.Read (Ir.aref src [ i; j ]), Ir.Const 1.0));
        ];
    }
  in
  let chain =
    {
      Ir.pname = "contractable";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ 256; 256 ] })
          [ "x"; "tmp1"; "tmp2"; "y" ];
      nests =
        [ cnest "C1" "tmp1" "x"; cnest "C2" "tmp2" "tmp1"; cnest "C3" "y" "tmp2" ];
    }
  in
  Ir.validate chain;
  (match Contract.contract ~live_out:[ "y" ] chain with
  | Ok (q, a) ->
    Fmt.pr
      "@.Array contraction on a loop-independent chain (Warren's@.\
       motivation for fusion): contracted %s; memory %d KB -> %d KB@."
      (String.concat ", " a.Contract.contractible)
      (a.Contract.bytes_before / 1024)
      (a.Contract.bytes_after / 1024);
    let ref_chain = Interp.run chain and got = Interp.run q in
    Fmt.pr "  live-out y bit-identical: %b@."
      (Interp.find_array ref_chain "y" = Interp.find_array got "y")
  | Error m -> Fmt.pr "@.Contraction not applicable: %s@." m)
