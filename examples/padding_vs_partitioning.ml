(* Cache conflicts after fusion: array padding versus cache
   partitioning on the fused LL18 loops (paper Figures 17-20).

     dune exec examples/padding_vs_partitioning.exe *)

module Ir = Lf_ir.Ir
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim
module Batch = Lf_batch.Batch

let () =
  let n = 256 in
  let p = Lf_kernels.Ll18.program ~n () in
  let machine = Machine.convex in
  Fmt.pr
    "Fused LL18, nine %dx%d arrays, %s (1 MB direct-mapped caches).@.@." n n
    machine.Machine.mname;
  let strip = 10 in
  (* the whole layout sweep is one batch of first-class simulation
     requests: deduplicated, sharded across host domains, and (when a
     store is passed) answered from persisted results *)
  let request layout =
    Sim.fused ~mode:Sim.Run_compressed ~layout ~machine ~nprocs:4 ~strip p
  in
  let cache = { Partition.capacity = 1024 * 1024; line = 64; assoc = 1 } in
  let part = Partition.cache_partitioned ~cache p.Ir.decls in
  let layouts =
    (* power-of-two arrays, no padding: pathological conflicts *)
    ("dense (pad 0)", Partition.padded ~pad:0 p.Ir.decls)
    :: List.map
         (fun pad ->
           (Printf.sprintf "pad %d" pad, Partition.padded ~pad p.Ir.decls))
         [ 1; 3; 5; 9; 15; 19 ]
    @ [ ("cache partitioning", part) ]
  in
  let outcomes, _ = Batch.run (List.map (fun (_, l) -> request l) layouts) in
  let results = Batch.results_exn outcomes in
  Fmt.pr "%-22s %12s %12s@." "layout" "misses" "cycles";
  List.iteri
    (fun i (name, _) ->
      let r = results.(i) in
      Fmt.pr "%-22s %12d %12.3e@." name r.Exec.total_misses r.Exec.cycles)
    layouts;
  let overhead = Partition.overhead_bytes part p.Ir.decls in
  Fmt.pr
    "@.Padding perturbs the conflict pattern unpredictably; cache@.\
     partitioning places each array in its own cache partition@.\
     (memory overhead: %d KB of gaps) and minimises misses directly.@."
    (overhead / 1024)
