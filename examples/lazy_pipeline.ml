(* Lazy whole-array pipeline: record a stencil chain as data, let the
   runtime partition the DAG into maximal fusible blocks, and compare
   fused execution against the op-at-a-time baseline on the simulated
   machine.  Everything comes through Lf_api — the single blessed
   surface — rather than the individual layer libraries.

     dune exec examples/lazy_pipeline.exe *)

open Lf_api

let () =
  (* 1. Record.  Nothing executes here: each operator appends a node
        to the context's DAG, and [shift] merely composes read offsets
        (the uniform dependence distances shift-and-peel fuses
        across). *)
  let n = 256 in
  let cx = Ctx.create () in
  let a = Arr.source cx "a" [| n |] in
  let blur v =
    Arr.scale 0.25
      (Arr.add
         (Arr.add (Arr.shift1 (-1) v) (Arr.shift1 1 v))
         (Arr.scale 2.0 v))
  in
  let h1 = blur a in
  let h2 = blur h1 in
  let out = Arr.bias 1.0 h2 in
  Fmt.pr "recorded %d whole-array op(s), computed none@." (Ctx.ops cx);

  (* 2. Plan.  The DAG is partitioned into maximal blocks the fusion
        legality (Theorem 1 threshold, uniform distances) accepts;
        each block lowers onto one shift-and-peel schedule. *)
  let plan = Ctx.plan ~nprocs:4 ~strip:16 cx in
  Fmt.pr "@.the fusion plan:@.%a@." Plan.pp plan;

  (* 3. Force.  Materialising [out] runs the fused plan; the halo
        elements keep their deterministic initial values, so the fused
        result is bit-identical to eager op-at-a-time evaluation. *)
  let values = Arr.force out in
  let eager = Eval.eager plan in
  let name = Plan.name_of plan out.Node.v_node in
  let reference = Hashtbl.find eager name in
  assert (
    Array.for_all2
      (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
      values reference);
  Fmt.pr "forced %s: %d elements, bit-identical to eager evaluation@." name
    (Array.length values);

  (* 4. Compare locality.  The same plan dispatched through the batch
        layer onto the simulated Convex: fused blocks versus the
        one-block-per-op baseline. *)
  let opts = Run_opts.(with_store Store_off default) in
  let misses plan =
    let outcomes, _ = Eval.simulate ~opts ~machine:Machine.convex plan in
    Array.fold_left
      (fun acc (o : Batch.outcome) ->
        match o.Batch.result with
        | Ok r -> acc + r.Exec.total_misses
        | Error _ -> acc)
      0 outcomes
  in
  let fused = misses plan in
  let unfused = misses (Ctx.plan ~fuse:false ~nprocs:4 ~strip:16 cx) in
  Fmt.pr
    "@.simulated cache misses on Convex SPP-1000 (4 procs): fused %d, \
     op-at-a-time %d (%.1f%% fewer)@."
    fused unfused
    (100.0 *. (1.0 -. (float_of_int fused /. float_of_int unfused)))
