(* The calc ocean-model kernel end-to-end on the simulated KSR2:
   derivation (Table 2), fused-vs-unfused speedups across processor
   counts, and the profitability crossover the paper discusses.

     dune exec examples/ocean_calc.exe *)

module Ir = Lf_ir.Ir
module Derive = Lf_core.Derive
module Partition = Lf_core.Partition
module Profit = Lf_core.Profit
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim
module Batch = Lf_batch.Batch

let () =
  let n = 256 in
  let p = Lf_kernels.Calc.program ~n () in
  Fmt.pr "calc: five parallel loop nests over six %dx%d arrays@.@." n n;

  let d = Derive.of_program ~depth:1 p in
  Fmt.pr "Shift-and-peel amounts (paper Table 2: 0,0,2,3,3 / 0,0,2,3,3):@.%a@."
    Derive.pp d;

  let machine = Machine.ksr2 in
  let cache =
    {
      Partition.capacity = machine.Machine.cache.Lf_cache.Cache.capacity;
      line = machine.Machine.cache.Lf_cache.Cache.line;
      assoc = machine.Machine.cache.Lf_cache.Cache.assoc;
    }
  in
  let layout = Partition.cache_partitioned ~cache p.Ir.decls in
  (* the full sweep as one request batch: 13 simulations, deduplicated
     and sharded across host domains by Lf_batch *)
  let procs = [ 1; 2; 4; 8; 12; 16 ] in
  let mode = Sim.Run_compressed in
  let requests =
    Sim.unfused ~mode ~layout ~machine ~nprocs:1 p
    :: List.concat_map
         (fun nprocs ->
           [
             Sim.unfused ~mode ~layout ~machine ~nprocs p;
             Sim.fused ~mode ~layout ~machine ~nprocs ~strip:10 p;
           ])
         procs
  in
  let outcomes, _ = Batch.run requests in
  let results = Batch.results_exn outcomes in
  let base = results.(0).Exec.cycles in
  Fmt.pr "@.Simulated %s, cache-partitioned layout:@." machine.Machine.mname;
  Fmt.pr "%6s %16s %14s %10s %14s@." "P" "unfused-speedup" "fused-speedup"
    "gain" "profitable?";
  List.iteri
    (fun i nprocs ->
      let u = results.((2 * i) + 1) in
      let f = results.((2 * i) + 2) in
      let e =
        Profit.estimate ~nprocs ~cache_bytes:cache.Partition.capacity p
      in
      Fmt.pr "%6d %16.2f %14.2f %+9.1f%% %14s@." nprocs
        (base /. u.Exec.cycles) (base /. f.Exec.cycles)
        (100.0 *. ((u.Exec.cycles /. f.Exec.cycles) -. 1.0))
        (if e.Profit.profitable then "yes" else "no"))
    procs;
  Fmt.pr
    "@.The benefit of fusion shrinks as each processor's share of the@.\
     data begins to fit in its cache -- the crossover the paper's@.\
     Figure 22 shows and its profitability analysis predicts.@."
