(* Multidimensional shift-and-peel on the Jacobi pair (paper Figures 15
   and 16), plus a real parallel run of the hand-fused native kernel on
   OCaml 5 domains.

     dune exec examples/jacobi_fusion.exe *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Codegen = Lf_core.Codegen
module Pool = Lf_parallel.Pool
module N = Lf_kernels.Native

let () =
  let n = 128 in
  let p = Lf_kernels.Jacobi.program ~n () in
  Fmt.pr "Jacobi relaxation pair (Figure 15):@.@.%a@." Ir.pp_program p;

  (* Fuse BOTH parallel dimensions: the copy-back nest needs a shift of
     one and a peel of one in each dimension. *)
  let d = Derive.of_program ~depth:2 p in
  Fmt.pr "Derived amounts (both dimensions):@.%a@." Derive.pp d;

  Fmt.pr "Generated code with the boundary-case prologue (Figure 16):@.@.%s@."
    (Codegen.multidim_to_string ~strip:32 p d);

  (* Execute on a 3x2 processor grid and verify. *)
  let sched = Schedule.fused ~grid:[| 3; 2 |] ~nprocs:6 ~strip:16 ~derive:d p in
  let st = Schedule.execute ~order:Schedule.Reversed sched in
  Fmt.pr "2-D fused execution on a 3x2 grid matches the reference: %b@.@."
    (Interp.equal (Interp.run p) st);

  (* Native domains runtime: the same transformation hand-applied to
     float arrays, one barrier, then the peeled iterations. *)
  let workers = min 4 (Domain.recommended_domain_count ()) in
  let pool = Pool.create workers in
  let seq = N.Jacobi_native.create n in
  N.Jacobi_native.sequential seq;
  let fused = N.Jacobi_native.create n in
  let t0 = Unix.gettimeofday () in
  N.Jacobi_native.fused ~strip:32 pool fused;
  let dt = Unix.gettimeofday () -. t0 in
  Pool.shutdown pool;
  Fmt.pr
    "Native fused kernel on %d domain(s): %.2f ms, bit-identical to the \
     sequential run: %b@."
    workers (1000.0 *. dt)
    (N.Jacobi_native.equal seq fused)
