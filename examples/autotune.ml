(* Autotuning walkthrough (lf_tune): instead of fixing the paper's
   transformation parameters by hand — fuse everything, strip-mine at
   the §3.4 rule of thumb, cache-partition the arrays — let the tuner
   search the joint space of schedule variant, strip size and layout on
   the simulated machine, and inspect what it explores and why.

     dune exec examples/autotune.exe *)

module Machine = Lf_machine.Machine
module Space = Lf_tune.Space
module Cost = Lf_tune.Cost
module Search = Lf_tune.Search
module Tune = Lf_tune.Tune

let () =
  let p = Lf_kernels.Ll18.program ~n:96 () in
  let machine = Machine.convex in

  (* 1. The candidate space.  Enumeration is deterministic and starts
     with the paper-default configuration, so every search can
     tie-break towards it. *)
  let cands = Space.enumerate ~machine p in
  Fmt.pr "=== 1. Search space (%d candidates) ===@." (List.length cands);
  Fmt.pr "paper default: %a@." Space.pp
    (Space.paper_default ~machine p);
  Fmt.pr "rule-of-thumb strip (sec. 3.4): %d@.@."
    (Space.rule_strip ~machine p);

  (* 2. The two cost tiers.  The analytic tier ranks candidates without
     simulating; the exact tier simulates on Exec and memoises by a
     structural fingerprint of (program, candidate, machine, P). *)
  let nprocs = 4 in
  let cache = Cost.create_cache () in
  let default = Space.paper_default ~machine p in
  Fmt.pr "=== 2. Cost tiers (P = %d) ===@." nprocs;
  (match Cost.analytic ~machine ~nprocs p default with
  | Ok est -> Fmt.pr "analytic estimate of the default: %.4e cycles@." est
  | Error e -> Fmt.pr "analytic failed: %s@." e);
  (match Cost.exact ~cache ~machine ~nprocs p default with
  | Ok e ->
    Fmt.pr "exact (simulated):               %.4e cycles, %d misses@."
      e.Cost.e_cycles e.Cost.e_misses
  | Error e -> Fmt.pr "exact failed: %s@." e);
  ignore (Cost.exact ~cache ~machine ~nprocs p default);
  let s = Cost.stats cache in
  Fmt.pr "memo cache after re-evaluation: %d entry, %d hit@.@."
    s.Cost.entries s.Cost.hits;

  (* 3. A full search.  The default driver prunes with the analytic
     tier and exact-evaluates the survivors; the reference is always
     evaluated, so the result can never lose to the paper default. *)
  Fmt.pr "=== 3. Autotuning LL18 on %s ===@." machine.Machine.mname;
  List.iter
    (fun nprocs ->
      match Tune.tune ~cache ~machine ~nprocs p with
      | Error e -> Fmt.pr "P=%d: %s@." nprocs e
      | Ok o ->
        Fmt.pr "@.P = %d:@." nprocs;
        Tune.pp_outcome Fmt.stdout o)
    [ 1; 4; 8 ];

  (* 4. Drivers trade exhaustiveness for evaluations: compare the
     exact-tier effort of beam search against the default. *)
  Fmt.pr "@.=== 4. Search drivers ===@.";
  List.iter
    (fun (name, driver) ->
      match
        Search.run ~cache:(Cost.create_cache ()) ~driver ~machine ~nprocs:4 p
      with
      | Error e -> Fmt.pr "%-12s %s@." name e
      | Ok o ->
        Fmt.pr "%-12s %2d/%2d exact-evaluated -> %.4e cycles (%s)@." name
          o.Search.considered o.Search.space_size
          o.Search.best_cost.Cost.e_cycles
          (Space.to_string o.Search.best))
    [
      ("exhaustive", Search.Exhaustive);
      ("auto", Search.default_driver);
      ("beam:6", Search.Beam { width = 6; budget = 32 });
      ("greedy", Search.Greedy { budget = 32 });
    ];
  Fmt.pr
    "@.Takeaway: when each processor's share of the data exceeds its@.\
     cache the tuner keeps (or refines) the paper's fused+partitioned@.\
     configuration; once the data fits, it backs off to the unfused@.\
     schedule — the profitability crossover of sec. 5, found@.\
     automatically.@."
