(* Figures 21 and 25: complete applications on the Convex. *)

module Apps = Lf_kernels.Apps
module Machine = Lf_machine.Machine

let convex_procs cfg =
  Util.cap_procs cfg (Util.scale cfg [ 1; 2; 4; 8; 12; 16 ] [ 1; 2; 4; 8 ])

let tomcatv cfg =
  if cfg.Util.quick then Apps.tomcatv ~n:97 () else Apps.tomcatv ()

let hydro2d cfg =
  if cfg.Util.quick then Apps.hydro2d ~rows:128 ~cols:64 ()
  else Apps.hydro2d ()

let spem cfg =
  if cfg.Util.quick then Apps.spem ~d0:40 ~d1:24 ~d2:24 () else Apps.spem ()

(* Figure 21: the importance of cache partitioning for applications:
   original code with and without partitioning, and fused code without
   partitioning. *)
let fig21 cfg =
  Util.header
    "Figure 21: cache partitioning for applications on Convex (speedups)";
  let machine = Machine.convex in
  let procs = convex_procs cfg in
  let run app =
    let base =
      (Apputil.run_app ~machine ~nprocs:1
         ~variant:Apputil.unfused_partitioned app)
        .Apputil.cycles
    in
    let rows =
      List.map
        (fun nprocs ->
          let s variant =
            base
            /. (Apputil.run_app ~machine ~nprocs ~variant app).Apputil.cycles
          in
          ( nprocs,
            [
              s Apputil.unfused_partitioned;
              s Apputil.unfused_contiguous;
              s Apputil.fused_contiguous;
            ] ))
        procs
    in
    Util.speedup_table
      ~labels:[ "orig+cachept"; "orig-nopart"; "fused-nopart" ]
      rows
  in
  Util.subheader "(a) hydro2d";
  run (hydro2d cfg);
  Util.subheader "(b) tomcatv";
  run (tomcatv cfg);
  Util.pr
    "@.Expected shape: without cache partitioning both the original and@.\
     the fused code lose performance to conflicts; fusion alone cannot@.\
     recover it (its locality benefit is wiped out by cross-conflicts).@."

(* Figure 25: application speedups, fused vs unfused (both with cache
   partitioning). *)
let fig25 cfg =
  Util.header "Figure 25: speedup for applications on Convex";
  let machine = Machine.convex in
  let procs = convex_procs cfg in
  let run name app =
    Util.subheader name;
    let base =
      (Apputil.run_app ~machine ~nprocs:1
         ~variant:Apputil.unfused_partitioned app)
        .Apputil.cycles
    in
    let rows =
      List.map
        (fun nprocs ->
          let u =
            Apputil.run_app ~machine ~nprocs
              ~variant:Apputil.unfused_partitioned app
          in
          let f =
            Apputil.run_app ~machine ~nprocs ~variant:Apputil.fused_partitioned
              app
          in
          (nprocs, [ base /. f.Apputil.cycles; base /. u.Apputil.cycles ]))
        procs
    in
    Util.speedup_table ~labels:[ "with fusion"; "without fusion" ] rows
  in
  run "(a) tomcatv" (tomcatv cfg);
  run "(b) hydro2d" (hydro2d cfg);
  run "(c) spem" (spem cfg);
  Util.pr
    "@.Expected shape: tomcatv +10-12%% throughout; hydro2d's benefit@.\
     shrinks as P grows; spem ~20%% up to 8 processors with a dip past@.\
     the hypernode boundary (remote accesses dominate at 16).@."
