(* Experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md for the experiment index).

   Usage:
     dune exec bench/main.exe                  -- all experiments, paper sizes
     dune exec bench/main.exe -- --quick       -- reduced sizes/processors
     dune exec bench/main.exe -- --only t2,f20 -- a subset
     dune exec bench/main.exe -- --list        -- list experiment ids
     dune exec bench/main.exe -- --max-procs 8 -- cap processor counts *)

let experiments : (string * string * (Util.cfg -> unit)) list =
  [
    ("t1", "Table 1: kernel/application inventory", Exp_tables.table1);
    ("t2", "Table 2: derived shift and peel amounts", Exp_tables.table2);
    ("f9", "Figures 9/10: derivation walkthrough", fun c -> ignore c;
       Exp_worked.figures_9_10 ());
    ("f11", "Figures 11/12: generated 1-D code", fun c -> ignore c;
       Exp_worked.figures_11_12 ());
    ("f15", "Figures 15/16: multidimensional code", fun c -> ignore c;
       Exp_worked.figures_15_16 ());
    ("f18", "Figure 18: misses vs padding (fused LL18)", Exp_padding.fig18);
    ("f20", "Figure 20: cache partitioning for LL18", Exp_padding.fig20);
    ("f21", "Figure 21: cache partitioning for applications", Exp_apps.fig21);
    ("f22", "Figure 22: kernels on KSR2", Exp_kernels.fig22);
    ("f23", "Figure 23: kernels on Convex", Exp_kernels.fig23);
    ("f24", "Figure 24: improvement vs array size", Exp_kernels.fig24);
    ("f25", "Figure 25: applications on Convex", Exp_apps.fig25);
    ("f26", "Figure 26: peeling vs alignment/replication", Exp_alignrep.fig26);
    ("prof", "Profitability estimate (sec. 5/6)", Exp_profit.run);
    ("obs", "Conflict-miss attribution via event counters (lf_obs)",
     Exp_obs.run);
    ("abl", "Ablation studies (design choices)", Exp_ablation.run);
    ("tune", "Autotuned vs paper-default configurations (lf_tune)",
     Exp_tune.run);
    ("eng", "Engine: host-domain parallelism + fast-path modes",
     Exp_engine.run);
    ("smoke", "Engine smoke: scalar vs run-compressed identity (CI tier)",
     Exp_smoke.run);
    ("serve", "Socket service under concurrent zipf load (lf_serve)",
     Exp_serve.run);
    ("native", "BENCH_7: native multicore execution, predicted vs measured \
                speedups (lf_native)",
     Exp_native.run);
    ("queue", "BENCH_8: multi-process sweep fan-out through the work queue \
               + fingerprint invalidation (lf_queue)",
     Exp_queue.run);
    ("lazy", "BENCH_9: lazy-array frontend, fused DAG blocks vs \
              op-at-a-time traces (lf_lazy)",
     Exp_lazy.run);
    ("bech", "Bechamel micro-benchmarks", Bechamel_suite.run);
  ]

let usage () =
  print_endline
    "usage: main.exe [--quick] [--smoke] [--only ids] [--list] \
     [--max-procs N] [--no-timings] [--jobs N] [--json FILE] \
     [--cold] [--no-store] [--require-warm]";
  print_endline "experiment ids:";
  List.iter
    (fun (id, desc, _) -> Printf.printf "  %-5s %s\n" id desc)
    experiments

let () =
  let quick = ref false in
  let only = ref None in
  let procs_cap = ref None in
  let json_file = ref None in
  let require_warm = ref false in
  (* deterministic output for golden tests: omit wall-clock timings *)
  let timings = ref true in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--smoke" :: rest ->
      (* budgeted CI tier: just the engine identity smoke *)
      only := Some [ "smoke" ];
      parse rest
    | "--no-timings" :: rest ->
      timings := false;
      parse rest
    | "--only" :: ids :: rest ->
      only := Some (String.split_on_char ',' ids);
      parse rest
    | "--max-procs" :: n :: rest ->
      procs_cap := Some (int_of_string n);
      parse rest
    | "--jobs" :: n :: rest ->
      Lf_machine.Exec.set_default_jobs (int_of_string n);
      parse rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--cold" :: rest ->
      (* recompute everything; fresh results still warm the store *)
      Util.cold := true;
      parse rest
    | "--no-store" :: rest ->
      Util.use_store := false;
      parse rest
    | "--require-warm" :: rest ->
      require_warm := true;
      parse rest
    | "--list" :: _ | "--help" :: _ ->
      usage ();
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      usage ();
      exit 1
  in
  parse (List.tl args);
  let cfg = { Util.quick = !quick; procs_cap = !procs_cap } in
  let selected =
    match !only with
    | None -> experiments
    | Some ids ->
      List.iter
        (fun id ->
          if not (List.exists (fun (i, _, _) -> i = id) experiments) then begin
            Printf.eprintf "unknown experiment id %s\n" id;
            exit 1
          end)
        ids;
      List.filter (fun (id, _, _) -> List.mem id ids) experiments
  in
  let total = Util.elapsed_timer () in
  Fmt.pr
    "Reproduction harness for \"Fusion of Loops for Parallelism and \
     Locality\" (Manjikian & Abdelrahman, ICPP 1995)@.";
  Fmt.pr "mode: %s@." (if !quick then "quick" else "full (paper sizes)");
  List.iter
    (fun (id, _, f) ->
      let t = Util.elapsed_timer () in
      let h0 = Lf_batch.Batch.hit_count ()
      and c0 = Lf_batch.Batch.computed_count () in
      f cfg;
      let dt = t () in
      Util.note ~id
        [
          ("wall_s", Util.Float dt);
          ("store_hits", Util.Int (Lf_batch.Batch.hit_count () - h0));
          ("store_computed",
           Util.Int (Lf_batch.Batch.computed_count () - c0));
        ];
      if !timings then Fmt.pr "@.[%s done in %.1fs]@." id dt
      else Fmt.pr "@.[%s done]@." id)
    selected;
  if !timings then
    Fmt.pr "@.All selected experiments completed in %.1fs.@." (total ())
  else Fmt.pr "@.All selected experiments completed.@.";
  let hits = Lf_batch.Batch.hit_count ()
  and computed = Lf_batch.Batch.computed_count () in
  if hits + computed > 0 then
    Fmt.pr "result store: %d hits, %d simulations run.@." hits computed;
  (match !json_file with
  | None -> ()
  | Some file ->
    Util.write_json ~file ~jobs:(Lf_machine.Exec.default_jobs ());
    Fmt.pr "machine-readable results written to %s@." file);
  if !require_warm && computed > 0 then begin
    Fmt.epr
      "--require-warm: %d request(s) missed the result store and were \
       simulated@."
      computed;
    exit 1
  end
