(* Ablation studies for the design choices the paper motivates but does
   not measure in isolation:

   a) the strip-size rule (one strip per array must fit its cache
      partition, paper sec 3.4/4);
   b) associativity-aware partition targets (the (p/assoc)*sp variant
      for set-associative caches, sec 4);
   c) the peeled-phase overhead as processor count grows (the mechanism
      behind the profitability crossover);
   d) the hypernode-aware remote-miss model (the mechanism behind
      spem's dip past 8 Convex processors, Fig 25). *)

module Ir = Lf_ir.Ir
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Partition = Lf_core.Partition

let strip_rule cfg =
  Util.subheader "a) strip size vs misses (fused LL18, Convex, 8 procs)";
  let n = Util.scale cfg 512 128 in
  let p = Lf_kernels.Ll18.program ~n () in
  let machine = Machine.convex in
  let layout = Util.partitioned_layout machine p in
  let rule = Util.strip_for machine p in
  Util.pr "strip from the partition rule: %d@." rule;
  Util.pr "%8s %12s %14s@." "strip" "misses" "cycles";
  List.iter
    (fun strip ->
      let r = Exec.run_fused ~layout ~machine ~nprocs:8 ~strip p in
      Util.pr "%8d %12d %14.4e%s@." strip r.Exec.total_misses r.Exec.cycles
        (if strip = rule then "   <- rule" else ""))
    (List.sort_uniq compare
       [ 2; 4; max 2 (rule / 2); rule; rule * 2; rule * 4; rule * 16 ])

let assoc_targets cfg =
  Util.subheader
    "b) set-associative partition targets (fused LL18, KSR2 2-way)";
  let n = Util.scale cfg 512 128 in
  let p = Lf_kernels.Ll18.program ~n () in
  let machine = Machine.ksr2 in
  let shape = Util.cache_shape machine in
  let strip = Util.strip_for machine p in
  let run name layout =
    let r = Exec.run_fused ~layout ~machine ~nprocs:8 ~strip p in
    Util.pr "%-34s %12d misses@." name r.Exec.total_misses
  in
  run "assoc-aware targets ((p/a)*sp)"
    (Partition.cache_partitioned ~cache:shape p.Ir.decls);
  (* naive variant: pretend the cache is direct-mapped when choosing
     targets; starts spread over the full capacity instead of the
     set-index span *)
  run "direct-mapped targets (naive)"
    (Partition.cache_partitioned
       ~cache:{ shape with Partition.assoc = 1 }
       p.Ir.decls);
  run "no partitioning (dense)" (Partition.padded ~pad:0 p.Ir.decls)

let peel_overhead cfg =
  Util.subheader "c) peeled-phase share of fused execution time (LL18, KSR2)";
  let n = Util.scale cfg 512 128 in
  let p = Lf_kernels.Ll18.program ~n () in
  let machine = Machine.ksr2 in
  let layout = Util.partitioned_layout machine p in
  let strip = Util.strip_for machine p in
  Util.pr "%6s %14s %14s %10s@." "P" "fused-phase" "peeled-phase" "overhead";
  List.iter
    (fun nprocs ->
      let r = Exec.run_fused ~layout ~machine ~nprocs ~strip p in
      let fphase = r.Exec.phase_cycles.(0) in
      let pphase = r.Exec.phase_cycles.(1) in
      Util.pr "%6d %14.4e %14.4e %9.2f%%@." nprocs fphase pphase
        (100.0 *. pphase /. (fphase +. pphase)))
    (Util.cap_procs cfg (Util.scale cfg [ 1; 4; 8; 16; 32; 56 ] [ 1; 2; 4; 8 ]));
  Util.pr
    "The peeled work per processor is constant while the fused work@.\
     shrinks as 1/P: the relative overhead grows with P, which is the@.\
     mechanism behind the profitability crossover of Figure 22.@."

let hypernode_model cfg =
  Util.subheader "d) hypernode-aware remote misses (spem at 16 procs)";
  if cfg.Util.quick then Util.pr "(skipped in --quick mode)@."
  else begin
    let app = Lf_kernels.Apps.spem ~d0:60 ~d1:33 ~d2:33 () in
    let run name machine =
      let r8 =
        Apputil.run_app ~machine ~nprocs:8 ~variant:Apputil.fused_partitioned
          app
      in
      let r16 =
        Apputil.run_app ~machine ~nprocs:16 ~variant:Apputil.fused_partitioned
          app
      in
      Util.pr "%-28s speedup(16)/speedup(8) = %.2f@." name
        (r8.Apputil.cycles /. r16.Apputil.cycles)
    in
    run "two hypernodes of 8 (real)" Machine.convex;
    run "one flat hypernode of 16"
      { Machine.convex with Machine.hypernode = 16 };
    Util.pr
      "With a flat memory the second 8 processors scale; crossing the@.\
       hypernode boundary makes misses remote and flattens the curve.@."
  end

let timestep_amortization cfg =
  Util.subheader
    "e) sequential time-step loop around the sequence (LL18, KSR2)";
  let n = Util.scale cfg 512 128 in
  let p = Lf_kernels.Ll18.program ~n () in
  let machine = Machine.ksr2 in
  let layout = Util.partitioned_layout machine p in
  let strip = Util.strip_for machine p in
  let nprocs = 8 in
  Util.pr "%8s %16s %16s %10s@." "steps" "unfused-cycles" "fused-cycles"
    "gain";
  List.iter
    (fun steps ->
      let u = Exec.run_unfused ~layout ~machine ~nprocs ~steps p in
      let f = Exec.run_fused ~layout ~machine ~nprocs ~strip ~steps p in
      Util.pr "%8d %16.4e %16.4e %+9.1f%%@." steps u.Exec.cycles f.Exec.cycles
        (100.0 *. ((u.Exec.cycles /. f.Exec.cycles) -. 1.0)))
    [ 1; 2; 4; 8 ];
  Util.pr
    "Fusion's per-step benefit persists across time steps (the fused@.\
     loop saves the same capacity misses every step); cold misses are@.\
     a one-time cost and wash out of the gain as steps grow.@."

let tlb_effect cfg =
  Util.subheader "f) TLB misses under padding vs partitioning (fused LL18)";
  let n = Util.scale cfg 512 128 in
  let p = Lf_kernels.Ll18.program ~n () in
  let machine = Machine.convex in
  let strip = Util.strip_for machine p in
  Util.pr "%-14s %12s %12s@." "layout" "cache-misses" "tlb-misses";
  List.iter
    (fun (name, layout) ->
      let r = Exec.run_fused ~layout ~machine ~nprocs:8 ~strip p in
      Util.pr "%-14s %12d %12d@." name r.Exec.total_misses r.Exec.tlb_misses)
    [
      ("pad 0", Util.padded_layout ~pad:0 p);
      ("pad 9", Util.padded_layout ~pad:9 p);
      ("partitioned", Util.partitioned_layout machine p);
    ];
  Util.pr
    "Cache partitioning's gaps cost a few extra pages but do not@.\
     perturb the TLB behaviour (cf. Bacon et al.'s padding-for-TLB@.\
     work discussed in the paper's sec 2.4).@."

let wavefront_vs_peeling cfg =
  Util.subheader
    "g) shift-and-peel vs wavefront scheduling (no peeling, per-diagonal \
     barriers)";
  let machine = Machine.convex in
  let n = Util.scale cfg 512 96 in
  let nprocs = Util.scale cfg 8 4 in
  (* 2-D: Jacobi, both dimensions fused *)
  let p2 = Lf_kernels.Jacobi.program ~n () in
  let d2 = Lf_core.Derive.of_program ~depth:2 p2 in
  let layout2 = Util.partitioned_layout machine p2 in
  let sp2 =
    Exec.run ~layout:layout2 ~machine
      (Lf_core.Schedule.fused ~strip:(Util.strip_for machine p2) ~derive:d2
         ~nprocs p2)
  in
  let wf2 =
    Exec.run ~layout:layout2 ~machine
      (Lf_core.Wavefront.schedule ~tile:(Util.scale cfg 64 16) ~derive:d2
         ~nprocs p2)
  in
  Util.pr "2-D Jacobi (%dx%d, %d procs):@." n n nprocs;
  Util.pr "  shift-and-peel: %.4e cycles (%.0f barrier cycles)@."
    sp2.Exec.cycles sp2.Exec.barrier_cycles;
  Util.pr "  wavefront:      %.4e cycles (%.0f barrier cycles)@."
    wf2.Exec.cycles wf2.Exec.barrier_cycles;
  (* 1-D: calc, where the wavefront degenerates to a serial chain *)
  let p1 = Lf_kernels.Calc.program ~n () in
  let layout1 = Util.partitioned_layout machine p1 in
  let sp1 =
    Exec.run ~layout:layout1 ~machine
      (Lf_core.Schedule.fused ~strip:(Util.strip_for machine p1) ~nprocs p1)
  in
  let wf1 =
    Exec.run ~layout:layout1 ~machine
      (Lf_core.Wavefront.schedule ~tile:(Util.scale cfg 64 16) ~nprocs p1)
  in
  Util.pr "1-D calc (%dx%d, %d procs):@." n n nprocs;
  Util.pr "  shift-and-peel: %.4e cycles@." sp1.Exec.cycles;
  Util.pr "  wavefront:      %.4e cycles (serial tile chain)@."
    wf1.Exec.cycles;
  Util.pr
    "Peeling keeps all processors busy with one barrier; the wavefront@.\
     pays pipeline fill/drain and one barrier per diagonal, and has no@.\
     parallelism at all when only one dimension is fused.@."

let run cfg =
  Util.header "Ablation studies (design choices)";
  strip_rule cfg;
  assoc_targets cfg;
  peel_overhead cfg;
  hypernode_model cfg;
  timestep_amortization cfg;
  tlb_effect cfg;
  wavefront_vs_peeling cfg
