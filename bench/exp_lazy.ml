(* BENCH_9 ("lazy"): the runtime lazy-array frontend — fused DAG
   blocks versus op-at-a-time execution of the same recorded traces.

   Each builtin whole-array trace (lib/lazy/trace.ml) is recorded and
   planned twice: fused (maximal legal blocks under shift-and-peel)
   and with fusion off (one block per op, the baseline a NumPy-style
   eager library pays).  Both plans are first proven bit-identical to
   eager per-op interpretation, then

     (a) simulated on the Convex model through the batch layer —
         per-block requests, so store hits/dedup apply — comparing
         total cycles and cache misses, and
     (b) executed natively: every block verified against the
         reference interpreter on real domains, then timed, summing
         min-of-k wall clock across blocks.

   The "mismatch" trace is the block-size-mismatch scenario from
   Kristensen et al.'s runtime fusion work: halfway through, the
   pipeline switches to an array of a different shape, which breaks
   fusion at exactly that op — the plan splits into two blocks and the
   bench shows the locality benefit shrinking accordingly. *)

module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Batch = Lf_batch.Batch
module Run_opts = Lf_batch.Run_opts
module Native = Lf_native.Native
module Bench_timer = Lf_native.Bench_timer
module Plan = Lf_lazy.Plan
module Eval = Lf_lazy.Eval
module Trace = Lf_lazy.Trace

let nprocs = 4
let strip = 16

(* the bench store knobs (--cold / --no-store) lowered onto the
   unified options bundle the lazy evaluator takes *)
let opts () =
  let t = Run_opts.default in
  if not !Util.use_store then Run_opts.(with_store Store_off t)
  else if !Util.cold then Run_opts.cold t
  else t

let policy cfg =
  if cfg.Util.quick then
    { Bench_timer.default_policy with warmup = 1; repetitions = 3 }
  else Bench_timer.default_policy

let traces cfg =
  let n1 = Util.scale cfg 512 64 in
  let n2 = Util.scale cfg 96 24 in
  List.map
    (fun (name, _desc) ->
      let text = Option.get (Trace.builtin_text name) in
      ((name, text), if name = "blur2" then n2 else n1))
    Trace.builtins

let envs_bit_identical (a : Eval.env) (b : Eval.env) =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k v acc ->
         acc
         &&
         match Hashtbl.find_opt b k with
         | Some v' ->
           Array.length v = Array.length v'
           && Array.for_all2
                (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                v v'
         | None -> false)
       a true

let sim_totals plan =
  let outcomes, _ = Eval.simulate ~opts:(opts ()) ~machine:Machine.convex plan in
  Array.fold_left
    (fun (cy, ms) (o : Batch.outcome) ->
      match o.Batch.result with
      | Ok r -> (cy +. r.Exec.cycles, ms + r.Exec.total_misses)
      | Error (Batch.Timed_out s) ->
        failwith (Printf.sprintf "block request timed out after %.1fs" s)
      | Error (Batch.Crashed m) -> failwith m)
    (0.0, 0) outcomes

(* native: step the blocks, verifying each against the reference
   interpreter before timing it (measured times are value-independent,
   so the env only feeds verification and the next block's inputs) *)
let native_wall pol (plan : Plan.t) =
  let env = Eval.env_create () in
  List.fold_left
    (fun wall (b : Plan.block) ->
      (match Native.verify ~init:(Eval.init_of env) b.Plan.b_sched with
      | Ok () -> ()
      | Error m ->
        failwith
          (Printf.sprintf "block %d not bit-identical natively: %s"
             b.Plan.b_index m));
      let t = Native.measure ~policy:pol b.Plan.b_sched in
      Eval.advance env b;
      wall +. t.Native.t_measure.Bench_timer.min_s)
    0.0 plan.Plan.blocks

let splits (plan : Plan.t) =
  String.concat "; "
    (List.filter_map
       (fun (b : Plan.block) ->
         Option.map (fun r -> Fmt.str "%a" Plan.pp_reason r) b.Plan.b_reason)
       plan.Plan.blocks)

let run cfg =
  Util.header
    "BENCH_9: lazy-array frontend — fused DAG blocks vs op-at-a-time \
     execution of recorded whole-array traces";
  let pol = policy cfg in
  Util.pr
    "traces: %s; %d procs, strip %d; sim on Convex, native min-of-k \
     (%d reps)@."
    (String.concat ", " (List.map fst Trace.builtins))
    nprocs strip pol.Bench_timer.repetitions;
  Util.pr "%10s %6s %5s %7s  %12s %12s  %9s %9s  %9s@." "trace" "n" "ops"
    "blocks" "cycles-fused" "cycles-op" "miss-fus" "miss-op" "wall-gain";
  List.iter
    (fun ((name, text), n) ->
      let cx, _outs =
        match Trace.of_string ~n text with
        | Ok r -> r
        | Error m -> failwith (name ^ ": " ^ m)
      in
      let fused = Lf_lazy.Ctx.plan ~nprocs ~strip cx in
      let op_at_a_time = Lf_lazy.Ctx.plan ~fuse:false ~nprocs ~strip cx in
      (* correctness first: both strategies bit-identical to eager *)
      let reference = Eval.eager fused in
      if not (envs_bit_identical reference (Eval.materialise fused)) then
        failwith (name ^ ": fused plan diverged from eager evaluation");
      if not (envs_bit_identical reference (Eval.materialise op_at_a_time))
      then failwith (name ^ ": op-at-a-time plan diverged from eager");
      let fcy, fms = sim_totals fused in
      let ucy, ums = sim_totals op_at_a_time in
      let fwall = native_wall pol fused in
      let uwall = native_wall pol op_at_a_time in
      let nblocks = List.length fused.Plan.blocks in
      Util.pr "%10s %6d %5d %7d  %12.4e %12.4e  %9d %9d  %8.2fx@." name n
        (Plan.ops fused) nblocks fcy ucy fms ums (uwall /. fwall);
      (match splits fused with
      | "" -> ()
      | s -> Util.pr "           fusion split: %s@." s);
      Util.note ~id:"lazy"
        [
          ("trace", Util.Str name);
          ("n", Util.Int n);
          ("ops", Util.Int (Plan.ops fused));
          ("blocks_fused", Util.Int nblocks);
          ("blocks_op_at_a_time", Util.Int (List.length op_at_a_time.Plan.blocks));
          ("splits", Util.Str (splits fused));
          ("fused_cycles", Util.Float fcy);
          ("op_cycles", Util.Float ucy);
          ("fused_misses", Util.Int fms);
          ("op_misses", Util.Int ums);
          ("fused_wall_s", Util.Float fwall);
          ("op_wall_s", Util.Float uwall);
          ("miss_ratio", Util.Float (float_of_int ums /. float_of_int fms));
          ("bit_identical", Util.Bool true);
        ])
    (traces cfg)
