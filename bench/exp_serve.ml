(* `bench serve`: latency-measured load generation against the
   simulation service (lf_serve).

   Boots an `lfc serve` daemon (in a forked child running
   Lf_serve.Serve.run — or attaches to an external one when
   $LF_SERVE_SOCKET is set, which is how CI drives a cold-then-warm
   pair against one long-lived server), then hammers it from N
   concurrent client processes.  Each client draws requests from a
   zipf-distributed mix over the paper's six kernels x two machine
   models x two engines x fused/unfused — the popular head of the
   distribution turns into store hits after its first compute, so a
   single pass measures both paths.  Per-response wall-clock latency is
   recorded and split by origin: warm (served from the store, never
   touching the domain pool) vs miss (computed by a worker).

   Reported (and persisted to BENCH_6.json via --json): p50/p99 per
   split, throughput, hit ratio, overload count.

   Fork discipline: OCaml processes must not fork while domains run, so
   the daemon and every client are forked before this process touches
   the simulation engine, and Exec.release_shared_pool() is called
   first in case an earlier experiment in the same bench invocation
   left the shared pool alive. *)

module Sim = Lf_machine.Sim
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Serve = Lf_serve.Serve
module Client = Lf_serve.Client

(* ------------------------------------------------------------------ *)
(* Request mix: the standard sweep (Lf_queue.Sweep), shared with the
   sweep CLI and the queue bench so digests agree across the system.
   Mix construction is pure (Sim.legal touches no domains), hence
   fork-safe here. *)

let build_mix ~n = Lf_queue.Sweep.mix ~n ()

(* Deterministic per-client PRNG (so the bench is reproducible) and a
   zipf(theta = 1) sampler over the mix: rank r has weight 1/(r+1). *)
let lcg seed =
  let s = ref (seed land 0x3FFFFFFF) in
  fun () ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !s /. 1073741824.0

let zipf_cdf n =
  let w = Array.init n (fun r -> 1.0 /. float_of_int (r + 1)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let sample cdf u =
  let n = Array.length cdf in
  let rec find i = if i >= n - 1 || u < cdf.(i) then i else find (i + 1) in
  find 0

(* ------------------------------------------------------------------ *)
(* Client process body: run the loop, append one line per response to
   [out] ("h <s>" hit / "m <s>" miss / "o" overloaded / "e <reason>"). *)

(* [sweep] makes this client walk the whole mix once before its zipf
   loop.  Exactly one client sweeps: it guarantees every mix entry is
   in the store after a pass, so a second --require-warm pass is
   all-hits by construction, not by sampling luck. *)
let client_body ~socket ~seed ~nreq ~mix ~sweep ~out =
  let oc = open_out out in
  let rand = lcg seed in
  let cdf = zipf_cdf (Array.length mix) in
  (try
     let c = Client.connect ~socket () in
     let total = nreq + if sweep then Array.length mix else 0 in
     for i = 0 to total - 1 do
       let req =
         if sweep && i < Array.length mix then mix.(i)
         else mix.(sample cdf (rand ()))
       in
       let t0 = Unix.gettimeofday () in
       match Client.request_sync c ~rid:i req with
       | Ok (Client.Served s) ->
         Printf.fprintf oc "%c %.6f\n"
           (if s.Client.from_store then 'h' else 'm')
           (Unix.gettimeofday () -. t0)
       | Ok (Client.Overloaded _) ->
         Printf.fprintf oc "o\n";
         (* back off briefly, then keep loading *)
         Unix.sleepf (0.005 +. (0.02 *. rand ()))
       | Ok (Client.Rejected reason) -> Printf.fprintf oc "e %s\n" reason
       | Error e -> Printf.fprintf oc "e %s\n" e
     done;
     Client.close c
   with e -> Printf.fprintf oc "e %s\n" (Printexc.to_string e));
  close_out oc

(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let wait_for_socket socket =
  let rec go tries =
    if tries > 100 then failwith ("serve bench: no server on " ^ socket)
    else
      match Client.connect ~socket () with
      | c ->
        let ok = Client.ping c in
        Client.close c;
        if not ok then begin
          Unix.sleepf 0.05;
          go (tries + 1)
        end
      | exception _ ->
        Unix.sleepf 0.05;
        go (tries + 1)
  in
  go 0

let run (cfg : Util.cfg) =
  Util.header "Serve: socket service under concurrent zipf load";
  let n = Util.scale cfg 48 32 in
  let nclients = Util.scale cfg 6 4 in
  let nreq = Util.scale cfg 80 30 in
  let mix = Array.of_list (build_mix ~n) in
  Util.pr "mix: %d distinct requests (n=%d), %d clients x %d requests@."
    (Array.length mix) n nclients nreq;
  (* fork below: no live domains allowed in this process *)
  Exec.release_shared_pool ();
  let external_server = Sys.getenv_opt "LF_SERVE_SOCKET" <> None in
  let socket, server_pid, store_dir =
    if external_server then (Sys.getenv "LF_SERVE_SOCKET", None, None)
    else begin
      let dir = Filename.temp_file "lf_serve_bench" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let socket = Filename.concat dir "serve.sock" in
      let pid = Unix.fork () in
      if pid = 0 then begin
        (* daemon child: quiet, bounded, its own store *)
        let dc = Serve.default_config () in
        (try
           Serve.run
             {
               dc with
               Serve.socket;
               store_dir = Some (Filename.concat dir "store");
               progress_interval_s = 0.0;
               verbose = false;
             }
         with _ -> Stdlib.exit 1);
        Stdlib.exit 0
      end;
      (socket, Some pid, Some dir)
    end
  in
  wait_for_socket socket;
  let outs =
    List.init nclients (fun i ->
        Filename.temp_file "lf_serve_client" (string_of_int i))
  in
  let t0 = Unix.gettimeofday () in
  let pids =
    List.mapi
      (fun i out ->
        let pid = Unix.fork () in
        if pid = 0 then begin
          (try
             client_body ~socket ~seed:((i * 7919) + 17) ~nreq ~mix
               ~sweep:(i = 0) ~out
           with _ -> Stdlib.exit 1);
          Stdlib.exit 0
        end;
        pid)
      outs
  in
  let client_failures =
    List.fold_left
      (fun acc pid ->
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> acc
        | _ -> acc + 1)
      0 pids
  in
  let wall = Unix.gettimeofday () -. t0 in
  (* aggregate the per-client logs *)
  let hits = ref [] and misses = ref [] in
  let overloaded = ref 0 and errors = ref 0 in
  List.iter
    (fun out ->
      let ic = open_in out in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' line with
           | "h" :: v :: _ -> hits := float_of_string v :: !hits
           | "m" :: v :: _ -> misses := float_of_string v :: !misses
           | "o" :: _ -> incr overloaded
           | _ ->
             incr errors;
             Util.pr "client error: %s@." line
         done
       with End_of_file -> ());
      close_in ic;
      Sys.remove out)
    outs;
  let served = List.length !hits + List.length !misses in
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  let h = sorted !hits and m = sorted !misses in
  let hit_ratio =
    if served = 0 then 0.0
    else float_of_int (Array.length h) /. float_of_int served
  in
  let throughput = float_of_int served /. Float.max 1e-9 wall in
  Util.pr
    "served %d (%d warm, %d miss), %d overloaded, %d errors in %.2f s \
     (%.0f req/s, hit ratio %.2f)@."
    served (Array.length h) (Array.length m) !overloaded !errors wall
    throughput hit_ratio;
  let pp_split name a =
    Util.pr "%-5s p50 %8.2f ms   p99 %8.2f ms   (%d samples)@." name
      (1e3 *. percentile a 0.50)
      (1e3 *. percentile a 0.99)
      (Array.length a)
  in
  pp_split "warm" h;
  pp_split "miss" m;
  (* drain the daemon we booted and insist the drain is clean *)
  let drain_clean =
    match server_pid with
    | None -> true
    | Some pid -> (
      Unix.kill pid Sys.sigterm;
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> true
      | _, _ ->
        Util.pr "SERVER DRAIN FAILED (non-zero exit)@.";
        false)
  in
  (match store_dir with
  | None -> ()
  | Some dir ->
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))));
  Util.note ~id:"serve"
    [
      ("clients", Util.Int nclients);
      ("requests_per_client", Util.Int nreq);
      ("mix_size", Util.Int (Array.length mix));
      ("served", Util.Int served);
      ("warm", Util.Int (Array.length h));
      ("miss", Util.Int (Array.length m));
      ("overloaded", Util.Int !overloaded);
      ("errors", Util.Int !errors);
      ("hit_ratio", Util.Float hit_ratio);
      ("throughput_rps", Util.Float throughput);
      ("warm_p50_ms", Util.Float (1e3 *. percentile h 0.50));
      ("warm_p99_ms", Util.Float (1e3 *. percentile h 0.99));
      ("miss_p50_ms", Util.Float (1e3 *. percentile m 0.50));
      ("miss_p99_ms", Util.Float (1e3 *. percentile m 0.99));
      ("drain_clean", Util.Bool drain_clean);
      ("client_failures", Util.Int client_failures);
    ];
  if !errors > 0 || client_failures > 0 || not drain_clean then begin
    Util.pr "serve bench FAILED@.";
    Stdlib.exit 1
  end;
  (* CI warm pass: every response must have come from the store *)
  if Sys.getenv_opt "LF_SERVE_REQUIRE_WARM" = Some "1" && Array.length m > 0
  then begin
    Util.pr "LF_SERVE_REQUIRE_WARM: %d response(s) were computed, not \
             served from the store@."
      (Array.length m);
    Stdlib.exit 1
  end
