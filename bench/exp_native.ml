(* BENCH_7 ("native"): the simulator's predicted fused-vs-unfused
   speedups raced against measured wall-clock of the same schedules
   executing natively on the host's cores.

   For each of the six evaluation kernels x a doubling ladder of
   domain counts, the very same Schedule.t is (a) submitted to the
   cycle simulator as a content-addressed request — predictions are
   pure simulation, so they route through the result store — and (b)
   compiled by lf_native, proven bit-identical to the reference
   interpreter, and timed under the Bench_timer policy.  Measured
   times are printed and written to the JSON report but never
   persisted in _lf_cache/ (DESIGN §7/§11).

   The paper's claim is about *relative* benefit: fusion pays because
   it removes barriers and reuses lines across nests.  The simulator
   predicts that ratio from a 1995 memory model; this experiment shows
   where a 2020s host agrees and where it does not. *)

module Ir = Lf_ir.Ir
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Machine = Lf_machine.Machine
module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec
module Pool = Lf_parallel.Pool
module Native = Lf_native.Native
module Bench_timer = Lf_native.Bench_timer
module Apps = Lf_kernels.Apps

(* The six kernels of the evaluation (test/test_roundtrip.ml uses the
   same inventory), sized so a native run is long enough to time but a
   simulated run stays cheap. *)
let kernels cfg =
  let n1 = Util.scale cfg 512 96 in
  let n2 = Util.scale cfg 128 48 in
  [
    ("ll18", Lf_kernels.Ll18.program ~n:n1 (), 1);
    ("calc", Lf_kernels.Calc.program ~n:n1 (), 1);
    ("filter", Lf_kernels.Filter.program ~rows:n2 ~cols:n2 (), 1);
    ("jacobi", Lf_kernels.Jacobi.program ~n:n2 (), 2);
    ("fig9", Exp_worked.fig9_sequence ~n:n1 (), 1);
    ( "tomcatv-seq1",
      List.hd (Apps.tomcatv ~n:(Util.scale cfg 129 65) ()).Apps.sequences,
      1 );
  ]

(* 1, 2, 4, ... up to the host's cores — and always through 2, so the
   bit-identity obligation is exercised on real parallel execution
   even on a single-core host (where the extra domains just share the
   core through the barrier's sleep fallback). *)
let domain_counts cfg =
  let hi = max 2 (Domain.recommended_domain_count ()) in
  let hi = match cfg.Util.procs_cap with
    | Some cap -> max 2 (min cap hi)
    | None -> hi
  in
  let rec up d = if d > hi then [] else d :: up (2 * d) in
  let ladder = up 1 in
  if List.mem hi ladder then ladder else ladder @ [ hi ]

let policy cfg =
  if cfg.Util.quick then
    { Bench_timer.default_policy with warmup = 1; repetitions = 3 }
  else Bench_timer.default_policy

let run cfg =
  Util.header
    "BENCH_7: native multicore execution — simulator-predicted vs \
     measured fused/unfused speedups";
  let machine = Machine.convex in
  let pol = policy cfg in
  let ncores = Domain.recommended_domain_count () in
  Util.pr
    "host: %d core(s); policy: %d warmup, %d reps, min-of-k headline, \
     outliers > %.1fx median dropped; clock: monotonic@."
    ncores pol.Bench_timer.warmup pol.Bench_timer.repetitions
    pol.Bench_timer.outlier_cutoff;
  Util.note ~id:"native-policy"
    [
      ("host_cores", Util.Int ncores);
      ("warmup", Util.Int pol.Bench_timer.warmup);
      ("repetitions", Util.Int pol.Bench_timer.repetitions);
      ("outlier_cutoff", Util.Float pol.Bench_timer.outlier_cutoff);
      ("clock", Util.Str "CLOCK_MONOTONIC");
      ("headline", Util.Str "min");
      ("gc", Util.Str "full major before every timed repetition");
    ];
  List.iter
    (fun (name, p, depth) ->
      let strip = Util.strip_for machine p in
      let derive = Derive.of_program ~depth p in
      Util.subheader
        (Printf.sprintf "%s (strip %d, depth %d)" name strip depth);
      Util.pr "%6s  %12s %12s  %14s %14s  %s@." "P" "sim-speedup"
        "meas-speedup" "unfused-ms" "fused-ms" "identity";
      List.iter
        (fun d ->
          match
            ( Schedule.unfused ~nprocs:d p,
              Schedule.fused ~nprocs:d ~strip ~derive p )
          with
          | exception Schedule.Illegal m ->
            Util.pr "%6d  infeasible at this size: %s@." d m
          | exception Invalid_argument m ->
            Util.pr "%6d  infeasible at this size: %s@." d m
          | su, sf ->
            (* prediction: the same schedules through the simulator *)
            let ru, rf =
              match
                Util.run_requests
                  [
                    Sim.of_schedule ~mode:Sim.Run_compressed ~machine su;
                    Sim.of_schedule ~mode:Sim.Run_compressed ~machine sf;
                  ]
              with
              | [| ru; rf |] -> (ru, rf)
              | _ -> assert false
            in
            (* measurement: one pool for both variants, verified first *)
            let tu, tf =
              Pool.with_pool d (fun pool ->
                  (match Native.verify ~pool su with
                  | Ok () -> ()
                  | Error m ->
                    failwith
                      (Printf.sprintf "%s unfused P=%d not bit-identical: %s"
                         name d m));
                  (match Native.verify ~pool sf with
                  | Ok () -> ()
                  | Error m ->
                    failwith
                      (Printf.sprintf "%s fused P=%d not bit-identical: %s"
                         name d m));
                  ( Native.measure ~policy:pol ~pool su,
                    Native.measure ~policy:pol ~pool sf ))
            in
            let mu = tu.Native.t_measure and mf = tf.Native.t_measure in
            let pred = ru.Exec.cycles /. rf.Exec.cycles in
            let meas = mu.Bench_timer.min_s /. mf.Bench_timer.min_s in
            Util.pr "%6d  %12.2f %12.2f  %14.3f %14.3f  %s@." d pred meas
              (mu.Bench_timer.min_s *. 1e3)
              (mf.Bench_timer.min_s *. 1e3)
              "bit-identical";
            Util.note ~id:"native"
              [
                ("kernel", Util.Str name);
                ("procs", Util.Int d);
                ("strip", Util.Int strip);
                ("predicted_speedup", Util.Float pred);
                ("measured_speedup", Util.Float meas);
                ("unfused_cycles", Util.Float ru.Exec.cycles);
                ("fused_cycles", Util.Float rf.Exec.cycles);
                ("unfused_min_s", Util.Float mu.Bench_timer.min_s);
                ("fused_min_s", Util.Float mf.Bench_timer.min_s);
                ("unfused_median_s", Util.Float mu.Bench_timer.median_s);
                ("fused_median_s", Util.Float mf.Bench_timer.median_s);
                ("bit_identical", Util.Bool true);
              ])
        (domain_counts cfg))
    (kernels cfg)
