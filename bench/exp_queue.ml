(* `bench queue` (BENCH_8): distributed sweep fan-out through the
   filesystem work queue (lf_queue), plus the fingerprint-salted
   incremental-invalidation experiment.

   Ladder: the standard sweep mix is computed once serially (jobs=1,
   fresh store) as the bit-identity baseline, then drained from a fresh
   store+queue by 1, 2 and 4 forked worker processes.  After every rung
   each request's persisted observables must be byte-for-byte the
   serial ones — the queue may only change *where* work runs, never
   what it produces.  Wall-clock per rung is reported honestly: on a
   single-core host the ladder measures protocol overhead, not speedup.

   Invalidation: with the 4-worker store warm, the "derive" fingerprint
   is bumped and the sweep re-enqueued.  Exactly the fused-variant
   digests (the only requests whose replay depends on Derive) must come
   back as misses — counted and asserted — and after a drain their
   observables under the new digests must again equal the serial
   baseline: a fingerprint bump renames results, it never changes them.

   Fork discipline: as in exp_serve, the parent releases the shared
   pool and computes its serial baseline with jobs=1 (inline, no
   domains), so forking workers is safe; children may spawn their own
   domains. *)

module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec
module Batch = Lf_batch.Batch
module Queue = Lf_queue.Queue
module Sweep = Lf_queue.Sweep

(* Observable equality, field by field; floats compared as IEEE bits
   (the store's own round-trip representation). *)
let obs_equal (a : Exec.result) (b : Exec.result) =
  let fb = Int64.bits_of_float in
  fb a.Exec.cycles = fb b.Exec.cycles
  && fb a.Exec.barrier_cycles = fb b.Exec.barrier_cycles
  && Array.length a.Exec.phase_cycles = Array.length b.Exec.phase_cycles
  && Array.for_all2 (fun x y -> fb x = fb y) a.Exec.phase_cycles
       b.Exec.phase_cycles
  && a.Exec.total_refs = b.Exec.total_refs
  && a.Exec.total_misses = b.Exec.total_misses
  && a.Exec.cold_misses = b.Exec.cold_misses
  && a.Exec.tlb_misses = b.Exec.tlb_misses
  && a.Exec.proc_misses = b.Exec.proc_misses

let temp_dir tag =
  let d = Filename.temp_file ("lf_queue_" ^ tag) "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf d = ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d)))

(* Fork [w] draining workers against [store_dir]/[queue_dir]; each
   writes "claimed computed hits failed reclaimed" to a log the parent
   aggregates.  Returns (wall_s, totals, worker_failures). *)
let drain_with_workers ~w ~store_dir ~queue_dir =
  Exec.release_shared_pool ();
  let logs =
    List.init w (fun i -> Filename.temp_file "lf_queue_worker" (string_of_int i))
  in
  let t0 = Unix.gettimeofday () in
  let pids =
    List.mapi
      (fun i log ->
        let pid = Unix.fork () in
        if pid = 0 then begin
          (try
             let store = Batch.Store.open_ ~dir:store_dir () in
             let q = Queue.open_ ~dir:queue_dir in
             let st =
               Queue.worker
                 ~wid:(Printf.sprintf "w%d-%d" (Unix.getpid ()) i)
                 ~ttl:5.0 ~store q
             in
             let oc = open_out log in
             Printf.fprintf oc "%d %d %d %d %d\n" st.Queue.w_claimed
               st.Queue.w_computed st.Queue.w_hits st.Queue.w_failed
               st.Queue.w_reclaimed;
             close_out oc
           with _ -> Stdlib.exit 1);
          Stdlib.exit 0
        end;
        pid)
      logs
  in
  let failures =
    List.fold_left
      (fun acc pid ->
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> acc
        | _ -> acc + 1)
      0 pids
  in
  let wall = Unix.gettimeofday () -. t0 in
  let totals = Array.make 5 0 in
  List.iter
    (fun log ->
      (match open_in log with
      | ic ->
        (try
           match String.split_on_char ' ' (input_line ic) with
           | [ a; b; c; d; e ] ->
             List.iteri
               (fun i v -> totals.(i) <- totals.(i) + int_of_string v)
               [ a; b; c; d; e ]
           | _ -> ()
         with _ -> ());
        close_in_noerr ic
      | exception _ -> ());
      (try Sys.remove log with _ -> ()))
    logs;
  (wall, totals, failures)

let run (cfg : Util.cfg) =
  Util.header "Queue: multi-process sweep fan-out + fingerprint invalidation";
  let n = Util.scale cfg 48 32 in
  let mix = Sweep.mix ~n () in
  let nmix = List.length mix in
  (* the invalidation count is over unique digests, so the mix's
     repeated requests must not be double-counted *)
  let unique_mix =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun r ->
        let d = Sim.digest r in
        if Hashtbl.mem seen d then false
        else begin
          Hashtbl.add seen d ();
          true
        end)
      mix
  in
  let fused_count =
    List.length
      (List.filter
         (fun r -> match r.Sim.variant with Sim.Fused _ -> true | _ -> false)
         unique_mix)
  in
  Util.pr "mix: %d requests (%d unique, n=%d), %d unique fused-variant@." nmix
    (List.length unique_mix) n fused_count;
  Sim.Fingerprint.clear_overrides ();
  (* serial baseline: fresh store, inline jobs=1, no domains *)
  Exec.release_shared_pool ();
  let serial_dir = temp_dir "serial" in
  let serial_store = Batch.Store.open_ ~dir:serial_dir () in
  let t0 = Unix.gettimeofday () in
  let _outcomes, summary = Batch.run ~store:serial_store ~jobs:1 mix in
  let serial_wall = Unix.gettimeofday () -. t0 in
  Util.pr "serial baseline: %a@." Batch.pp_summary summary;
  let baseline =
    List.filter_map
      (fun r ->
        match Batch.Store.lookup serial_store r with
        | Some res -> Some (Sim.digest r, (r, res))
        | None -> None)
      mix
  in
  if List.length baseline <> nmix then begin
    Util.pr "QUEUE BENCH FAILED: serial baseline store incomplete@.";
    Stdlib.exit 1
  end;
  (* identity of a drained store vs the serial baseline *)
  let identical_to_baseline store =
    List.for_all
      (fun (_, (r, res)) ->
        match Batch.Store.lookup store r with
        | Some got -> obs_equal got res
        | None -> false)
      baseline
  in
  let ladder = [ 1; 2; 4 ] in
  let rungs =
    List.map
      (fun w ->
        let store_dir = temp_dir (Printf.sprintf "w%d" w) in
        let queue_dir = temp_dir (Printf.sprintf "q%d" w) in
        let store = Batch.Store.open_ ~dir:store_dir () in
        let q = Queue.open_ ~dir:queue_dir in
        let enq = Queue.enqueue_misses q ~store mix in
        let wall, totals, failures = drain_with_workers ~w ~store_dir ~queue_dir in
        let st = Queue.status q in
        let ok =
          failures = 0 && st.Queue.pending = 0 && st.Queue.leased = 0
          && st.Queue.failed = 0
        in
        let identical = ok && identical_to_baseline store in
        Util.pr
          "%d worker(s): enqueued %d, drained in %6.2f s — claimed %d, \
           computed %d, hits %d, reclaimed %d; bit-identical to serial: %s@."
          w enq.Queue.e_enqueued wall totals.(0) totals.(1) totals.(2)
          totals.(4)
          (if identical then "yes" else "NO");
        rm_rf store_dir;
        rm_rf queue_dir;
        (w, wall, totals, identical, ok))
      ladder
  in
  (* invalidation: warm store, bump "derive", re-enqueue *)
  let inv_store_dir = temp_dir "inv" in
  let inv_queue_dir = temp_dir "invq" in
  let inv_store = Batch.Store.open_ ~dir:inv_store_dir () in
  let inv_q = Queue.open_ ~dir:inv_queue_dir in
  ignore (Queue.enqueue_misses inv_q ~store:inv_store mix);
  let _ = drain_with_workers ~w:2 ~store_dir:inv_store_dir ~queue_dir:inv_queue_dir in
  (match Sim.Fingerprint.set_override "derive" "lf-derive-bench-bump" with
  | Ok () -> ()
  | Error m -> failwith m);
  let inv_enq = Queue.enqueue_misses inv_q ~store:inv_store mix in
  let inv_exact = inv_enq.Queue.e_enqueued = fused_count in
  Util.pr
    "fingerprint bump (derive): %d digest(s) invalidated (expected %d — \
     exactly the fused variants): %s@."
    inv_enq.Queue.e_enqueued fused_count
    (if inv_exact then "exact" else "MISMATCH");
  let _ = drain_with_workers ~w:2 ~store_dir:inv_store_dir ~queue_dir:inv_queue_dir in
  (* renamed, not changed: new digests must hold the old observables *)
  let inv_identical = identical_to_baseline inv_store in
  Util.pr "observables under bumped fingerprints identical to serial: %s@."
    (if inv_identical then "yes" else "NO");
  let inv_status = Queue.status inv_q in
  Sim.Fingerprint.clear_overrides ();
  rm_rf inv_store_dir;
  rm_rf inv_queue_dir;
  let all_ok =
    List.for_all (fun (_, _, _, identical, ok) -> identical && ok) rungs
    && inv_exact && inv_identical
    && inv_status.Queue.failed = 0
  in
  Util.note ~id:"queue"
    (List.concat
       [
         [
           ("mix", Util.Int nmix);
           ("fused_variants", Util.Int fused_count);
           ("serial_wall_s", Util.Float serial_wall);
         ];
         List.concat_map
           (fun (w, wall, totals, identical, ok) ->
             let p = Printf.sprintf "w%d_" w in
             [
               (p ^ "wall_s", Util.Float wall);
               (p ^ "claimed", Util.Int totals.(0));
               (p ^ "computed", Util.Int totals.(1));
               (p ^ "hits", Util.Int totals.(2));
               (p ^ "reclaimed", Util.Int totals.(4));
               (p ^ "drained_clean", Util.Bool ok);
               (p ^ "bit_identical", Util.Bool identical);
             ])
           rungs;
         [
           ("invalidated", Util.Int inv_enq.Queue.e_enqueued);
           ("invalidated_expected", Util.Int fused_count);
           ("invalidation_exact", Util.Bool inv_exact);
           ("invalidation_bit_identical", Util.Bool inv_identical);
         ];
       ]);
  if not all_ok then begin
    Util.pr "queue bench FAILED@.";
    Stdlib.exit 1
  end
