(* Engine benchmark (PR 3, extended in PR 4): wall-clock cost of the
   simulator itself, comparing the serial engine, the host-domain-
   parallel engine (--jobs), the miss-only address-stream fast path,
   and the run-compressed line-granular engine — while verifying that
   every variant produces bit-identical observables.

   Simulated results never depend on jobs or mode (see exec.mli); this
   experiment demonstrates it on a full-size workload and records the
   measured host speedups for BENCH_<n>.json. *)

module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Interp = Lf_ir.Interp

let nprocs = 8

let time f =
  let t = Util.elapsed_timer () in
  let r = f () in
  (r, t ())

(* All performance observables; store compared separately (absent in
   Miss_only mode). *)
let counters_equal (a : Exec.result) (b : Exec.result) =
  a.Exec.cycles = b.Exec.cycles
  && a.Exec.phase_cycles = b.Exec.phase_cycles
  && a.Exec.barrier_cycles = b.Exec.barrier_cycles
  && a.Exec.total_refs = b.Exec.total_refs
  && a.Exec.total_misses = b.Exec.total_misses
  && a.Exec.cold_misses = b.Exec.cold_misses
  && a.Exec.tlb_misses = b.Exec.tlb_misses
  && a.Exec.proc_misses = b.Exec.proc_misses

let run cfg =
  Util.header "Engine: host-domain parallelism and the miss-only fast path";
  let machine = Machine.convex in
  let n = Util.scale cfg 512 128 in
  let steps = Util.scale cfg 4 2 in
  let p = Lf_kernels.Ll18.program ~n () in
  let layout = Util.partitioned_layout machine p in
  let strip = Util.strip_for machine p in
  let jobs = max 4 (Exec.default_jobs ()) in
  let host = Domain.recommended_domain_count () in
  (* routed through the batch layer with computation forced ([always]):
     this experiment measures engine wall clock, so a store hit would
     measure nothing — but fresh results still warm the store *)
  let go ~mode ~jobs () =
    Util.run_request ~always:true ~jobs
      (Lf_machine.Sim.fused ~layout ~machine ~nprocs ~strip ~steps ~mode p)
  in
  (* warm up allocator/caches, then measure the serial engines before
     any host domain is spawned (idle pool domains tax the single-domain
     GC), and the parallel engines after *)
  ignore (Exec.run_fused ~layout ~machine ~nprocs ~strip ~jobs:1 p);
  let serial_full, t_sf = time (go ~mode:Exec.Full ~jobs:1) in
  let serial_miss, t_sm = time (go ~mode:Exec.Miss_only ~jobs:1) in
  let serial_runs, t_sr = time (go ~mode:Exec.Run_compressed ~jobs:1) in
  let par_full, t_pf = time (go ~mode:Exec.Full ~jobs) in
  let par_miss, t_pm = time (go ~mode:Exec.Miss_only ~jobs) in
  let par_runs, t_pr = time (go ~mode:Exec.Run_compressed ~jobs) in
  Exec.release_shared_pool ();
  let identical =
    counters_equal serial_full par_full
    && Interp.equal serial_full.Exec.store par_full.Exec.store
  in
  let miss_only_match =
    counters_equal serial_full serial_miss
    && counters_equal serial_full par_miss
  in
  let runs_match =
    counters_equal serial_full serial_runs
    && counters_equal serial_full par_runs
  in
  Util.pr "workload: fused LL18 %dx%d, %d steps, %d simulated processors@." n
    n steps nprocs;
  Util.pr "host: %d core(s) available, --jobs %d@." host jobs;
  Util.pr "@.%-28s  %10s  %9s@." "engine" "wall (s)" "vs serial";
  let row label t =
    Util.pr "%-28s  %10.2f  %8.2fx@." label t (t_sf /. t)
  in
  row "full, serial" t_sf;
  row (Printf.sprintf "full, --jobs %d" jobs) t_pf;
  row "miss-only, serial" t_sm;
  row (Printf.sprintf "miss-only, --jobs %d" jobs) t_pm;
  row "run-compressed, serial" t_sr;
  row (Printf.sprintf "run-compressed, --jobs %d" jobs) t_pr;
  Util.pr "@.simulated cycles: %.0f   total misses: %d@."
    serial_full.Exec.cycles serial_full.Exec.total_misses;
  Util.pr "parallel engine bit-identical to serial (incl. store): %b@."
    identical;
  Util.pr "miss-only counters match full simulation exactly:      %b@."
    miss_only_match;
  Util.pr "run-compressed counters match full simulation exactly: %b@."
    runs_match;
  if not (identical && miss_only_match && runs_match) then
    failwith "engine variants disagree — determinism bug";
  Util.note ~id:"eng"
    [
      ("kernel", Util.Str "LL18");
      ("n", Util.Int n);
      ("steps", Util.Int steps);
      ("nprocs", Util.Int nprocs);
      ("jobs", Util.Int jobs);
      ("host_cores", Util.Int host);
      ("simulated_cycles", Util.Float serial_full.Exec.cycles);
      ("total_misses", Util.Int serial_full.Exec.total_misses);
      ("serial_full_s", Util.Float t_sf);
      ("parallel_full_s", Util.Float t_pf);
      ("serial_miss_only_s", Util.Float t_sm);
      ("parallel_miss_only_s", Util.Float t_pm);
      ("serial_runs_s", Util.Float t_sr);
      ("parallel_runs_s", Util.Float t_pr);
      ("parallel_speedup", Util.Float (t_sf /. t_pf));
      ("miss_only_speedup", Util.Float (t_sf /. t_sm));
      ("run_compressed_speedup", Util.Float (t_sf /. t_sr));
      ("run_vs_scalar_replay_speedup", Util.Float (t_sm /. t_sr));
      ("bit_identical", Util.Bool (identical && miss_only_match && runs_match));
      ("miss_only_counters_match", Util.Bool miss_only_match);
      ("run_compressed_counters_match", Util.Bool runs_match);
    ]
