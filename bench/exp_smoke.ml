(* Budgeted engine smoke tier (`bench --smoke`): scaled-down versions
   of the f18/f20/f23 workloads run through both the scalar replay and
   the run-compressed engine, with a hard identity check on every
   observable.  Sized for CI — seconds, not the ten-minute full sweep —
   so a regression in the batched engine is caught on every push. *)

module Ir = Lf_ir.Ir
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec

let counters_equal (a : Exec.result) (b : Exec.result) =
  a.Exec.cycles = b.Exec.cycles
  && a.Exec.phase_cycles = b.Exec.phase_cycles
  && a.Exec.barrier_cycles = b.Exec.barrier_cycles
  && a.Exec.total_refs = b.Exec.total_refs
  && a.Exec.total_misses = b.Exec.total_misses
  && a.Exec.cold_misses = b.Exec.cold_misses
  && a.Exec.tlb_misses = b.Exec.tlb_misses
  && a.Exec.proc_misses = b.Exec.proc_misses

let time f =
  let t = Util.elapsed_timer () in
  let r = f () in
  (r, t ())

(* One workload: run scalar and run-compressed, check bit-identity,
   report the wall-clock ratio.  Returns false on mismatch. *)
let check ~label ~machine ~layout ~strip ~nprocs p =
  (* both engine tiers go through Batch.run; on a warm store the whole
     tier is answered from persisted results and the identity check
     exercises the store's bit-exact round trip instead *)
  let go mode () =
    match
      Util.run_requests
        [
          Lf_machine.Sim.unfused ~mode ~layout ~machine ~nprocs p;
          Lf_machine.Sim.fused ~mode ~layout ~machine ~nprocs ~strip p;
        ]
    with
    | [| u; f |] -> (u, f)
    | _ -> assert false
  in
  let (su, sf), t_scalar = time (go Lf_machine.Sim.Miss_only) in
  let (ru, rf), t_runs = time (go Lf_machine.Sim.Run_compressed) in
  let ok = counters_equal su ru && counters_equal sf rf in
  Util.pr "%-12s  scalar %6.2fs  run-compressed %6.2fs  (%4.1fx)  %s@." label
    t_scalar t_runs
    (t_scalar /. Float.max 1e-9 t_runs)
    (if ok then "identical" else "MISMATCH");
  Util.note ~id:"smoke"
    [
      ("workload", Util.Str label);
      ("scalar_s", Util.Float t_scalar);
      ("run_compressed_s", Util.Float t_runs);
      ("identical", Util.Bool ok);
    ];
  ok

let run (cfg : Util.cfg) =
  ignore cfg;
  Util.header "Engine smoke: scalar vs run-compressed identity (scaled down)";
  let ok = ref true in
  let with_workload label machine p =
    let layout = Util.partitioned_layout machine p in
    let strip = Util.strip_for machine p in
    if not (check ~label ~machine ~layout ~strip ~nprocs:4 p) then ok := false
  in
  (* f18: padding sweep geometry (padded layout, Convex) *)
  let p18 = Lf_kernels.Ll18.program ~n:192 () in
  let strip18 = Util.strip_for Machine.convex p18 in
  List.iter
    (fun pad ->
      let layout = Util.padded_layout ~pad p18 in
      if
        not
          (check
             ~label:(Printf.sprintf "f18 pad:%d" pad)
             ~machine:Machine.convex ~layout ~strip:strip18 ~nprocs:4 p18)
      then ok := false)
    [ 1; 5 ];
  (* f20: cache partitioning, both machines *)
  with_workload "f20 ksr2" Machine.ksr2 (Lf_kernels.Ll18.program ~n:192 ());
  with_workload "f20 convex" Machine.convex (Lf_kernels.Ll18.program ~n:192 ());
  (* f23: Convex kernel sweep *)
  with_workload "f23 ll18" Machine.convex (Lf_kernels.Ll18.program ~n:256 ());
  with_workload "f23 calc" Machine.convex (Lf_kernels.Calc.program ~n:256 ());
  with_workload "f23 filter" Machine.convex
    (Lf_kernels.Filter.program ~rows:320 ~cols:128 ());
  if !ok then Util.pr "@.engine smoke: all workloads bit-identical@."
  else failwith "engine smoke: run-compressed engine diverged from scalar"
