(* Experiment obs: re-derive the Figure 18/20 story by attribution.

   Figures 18/20 show *that* fusing LL18 without conflict avoidance
   loses its benefit and that cache partitioning restores it; the
   aggregate miss counts cannot show *why*.  With lf_obs attached the
   why is direct: under a contiguous (or padded) layout nearly all
   non-cold misses of the fused loop are cross-array conflicts — one
   array's lines evicting another's — and under Figure 19 cache
   partitioning the cross-array column drops to (near) zero, leaving
   only compulsory traffic.

   The recorded profiles also calibrate lf_tune's analytic tier: the
   measured misses/cold factor per layout replaces the built-in
   layout heuristics (Cost.conflict_factor). *)

module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Obs = Lf_obs.Obs
module TCost = Lf_tune.Cost
module Space = Lf_tune.Space

let nprocs = 8

(* Each (tag, layout builder, candidate layout spec): the tag matches
   Space.layout_to_string so profiles key calibration entries. *)
let layouts machine =
  [
    ("contiguous", Util.contiguous_layout, Space.Contiguous);
    ("pad:1", Util.padded_layout ~pad:1, Space.Padded 1);
    ("pad:9", Util.padded_layout ~pad:9, Space.Padded 9);
    ( "partitioned",
      Util.partitioned_layout machine,
      Space.Partitioned { assoc_aware = true } );
  ]

let profile_layout ~machine ~strip p (tag, mk_layout, _spec) =
  let sink = Obs.create ~layout:tag () in
  (* attribution reads the sink and cycle counts, never the store:
     the run-compressed fast path records identical profiles.  A
     sinked request always computes (a store replay cannot populate
     the sink) but persists its result for sink-less reuse. *)
  let r =
    Util.run_request ~sink
      (Lf_machine.Sim.fused ~mode:Lf_machine.Sim.Run_compressed
         ~layout:(mk_layout p) ~machine ~nprocs ~strip p)
  in
  (tag, sink, r)

let run cfg =
  Util.header "Experiment obs: conflict-miss attribution for fused LL18";
  let machine = Machine.convex in
  (* power-of-two sizes so back-to-back arrays alias pathologically on
     the direct-mapped Convex cache (the Figure 18 setting): at n=256
     each array is exactly half the 1 MB cache *)
  let n = Util.scale cfg 512 256 in
  let p = Lf_kernels.Ll18.program ~n () in
  let strip = Util.strip_for machine p in
  let profiles =
    List.map (profile_layout ~machine ~strip p) (layouts machine)
  in
  Util.pr "fused LL18, n=%d, %s, %d processors@.@." n
    machine.Machine.mname nprocs;
  Util.pr "%-14s %10s %9s %9s %9s  %s@." "layout" "misses" "cold" "cross"
    "self" "cycles";
  List.iter
    (fun (tag, sink, r) ->
      let t = Obs.totals sink in
      Util.pr "%-14s %10d %9d %9d %9d  %.4e@." tag t.Obs.t_misses t.Obs.t_cold
        t.Obs.t_cross t.Obs.t_self r.Exec.cycles)
    profiles;

  Util.subheader "per-array attribution (contiguous vs partitioned)";
  let table tag =
    let _, sink, _ = List.find (fun (t, _, _) -> t = tag) profiles in
    Util.pr "layout %s:@.%a@." tag (Obs.pp_table ~by:Obs.By_array) sink
  in
  table "contiguous";
  table "partitioned";

  Util.subheader "per-phase attribution (partitioned)";
  let _, psink, _ = List.find (fun (t, _, _) -> t = "partitioned") profiles in
  Util.pr "%a" (Obs.pp_table ~by:Obs.By_phase) psink;

  Util.subheader "calibration: measured miss factor vs analytic heuristic";
  let calibration =
    List.concat_map (fun (_, sink, _) -> TCost.calibration_of_sink sink)
      profiles
  in
  Util.pr "%-14s %10s %10s@." "layout" "measured" "heuristic";
  List.iter
    (fun (tag, _, spec) ->
      let cand =
        { Space.variant = Space.Fused { clustered = false; strip };
          layout = spec }
      in
      Util.pr "%-14s %10.3f %10.3f@." tag
        (List.assoc tag calibration)
        (TCost.conflict_factor ~machine cand))
    (layouts machine);

  let cross tag =
    let _, sink, _ = List.find (fun (t, _, _) -> t = tag) profiles in
    (Obs.totals sink).Obs.t_cross
  in
  Util.pr
    "@.Verdict: contiguous layout suffers %d cross-array conflict misses;@.\
     cache partitioning (Fig. 19) leaves %d — the attribution shows the@.\
     padding-vs-partitioning gap of Figures 18/20 is cross-interference.@."
    (cross "contiguous") (cross "partitioned")
