(* Profitability analysis (paper §5 discussion and §6 conclusion): the
   compiler-side estimate of when fusion pays, from data size versus
   cache size, checked against the measured crossovers. *)

module Machine = Lf_machine.Machine
module Profit = Lf_core.Profit
module Exec = Lf_machine.Exec

let run cfg =
  Util.header "Profitability of fusion (paper sec. 5/6)";
  let machine = Machine.ksr2 in
  let cache_bytes = machine.Machine.cache.Lf_cache.Cache.capacity in
  let n = Util.scale cfg 512 128 in
  let kernels =
    [
      ("LL18", Lf_kernels.Ll18.program ~n ());
      ("calc", Lf_kernels.Calc.program ~n ());
    ]
  in
  Util.pr "%-6s %6s %14s %14s %12s %10s@." "kernel" "P" "per-proc-bytes"
    "estimate" "measured" "agree";
  let procs =
    Util.cap_procs cfg (Util.scale cfg [ 1; 8; 16; 24; 32; 48; 56 ] [ 1; 4; 8 ])
  in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun nprocs ->
          let e = Profit.estimate ~nprocs ~cache_bytes p in
          let pair = Util.run_pair ~mode:Exec.Run_compressed ~machine ~nprocs p in
          let gain =
            pair.Util.unfused.Exec.cycles /. pair.Util.fused.Exec.cycles
          in
          let measured_profitable = gain > 1.0 in
          Util.pr "%-6s %6d %14d %14s %11.1f%% %10s@." name nprocs
            e.Profit.per_proc_bytes
            (if e.Profit.profitable then "profitable" else "skip")
            (100.0 *. (gain -. 1.0))
            (if e.Profit.profitable = measured_profitable then "yes"
             else "no")
        )
        procs;
      Util.pr "  max profitable processor count estimate for %s: %d@." name
        (Profit.max_profitable_procs ~cache_bytes p))
    kernels;
  Util.pr
    "@.The estimate uses only data size and cache capacity, as the paper@.\
     proposes; it predicts the crossover region, not the exact point.@."
