(* Autotuned versus paper-default configurations (lf_tune): for every
   kernel and application of Table 1, on both machine presets, the
   autotuner searches the joint (schedule variant, strip size, layout)
   space and the table compares its pick against the configuration the
   paper's evaluation fixes by hand.  By construction the tuner never
   selects a configuration worse than the paper default (the search
   keeps the reference unless strictly beaten), and the final verdict
   line checks exactly that over every row.

   Sizes are reduced relative to the figure experiments because tuning
   multiplies the simulation cost by the number of surviving
   candidates; one shared memo cache serves every search. *)

module Ir = Lf_ir.Ir
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Apps = Lf_kernels.Apps
module Tune = Lf_tune.Tune
module TSearch = Lf_tune.Search
module TCost = Lf_tune.Cost

let driver = TSearch.Beam { width = 8; budget = 64 }

let machines = [ Machine.ksr2; Machine.convex ]

let procs cfg = Util.cap_procs cfg (Util.scale cfg [ 1; 8; 16 ] [ 1; 4 ])

let table_header () =
  Util.pr "%-10s %-7s %3s %14s %14s %8s  %s@." "code" "machine" "P"
    "default-cyc" "tuned-cyc" "gain" "selected configuration"

let row_prefix name machine nprocs =
  let short =
    match String.index_opt machine.Machine.mname ' ' with
    | None -> machine.Machine.mname
    | Some i -> String.sub machine.Machine.mname 0 i
  in
  Util.pr "%-10s %-7s %3d " name short nprocs

(* A row never loses when the tuned cycles do not exceed the default's
   (shared across kernel and application rows, checked at the end). *)
let never_lost = ref true
let rows_checked = ref 0

let note (o : TSearch.outcome) =
  incr rows_checked;
  if o.TSearch.best_cost.TCost.e_cycles
     > o.TSearch.default_cost.TCost.e_cycles
  then never_lost := false

let kernel_rows ~cache cfg name (p : Ir.program) =
  List.iter
    (fun machine ->
      List.iter
        (fun nprocs ->
          row_prefix name machine nprocs;
          match Tune.tune ~cache ~driver ~machine ~nprocs p with
          | Error e -> Util.pr "skipped: %s@." e
          | Ok o ->
            note o;
            Util.pr "%a@." Tune.pp_row o)
        (procs cfg))
    machines

(* Applications: each fusible sequence is tuned independently (the
   remainder is never transformed, so its unfused cycles are added to
   both sides of the comparison, as in Figures 21/25). *)
let app_rows ~cache cfg name (app : Apps.t) =
  List.iter
    (fun machine ->
      List.iter
        (fun nprocs ->
          row_prefix name machine nprocs;
          let outcomes =
            List.filter_map
              (fun seq ->
                match Tune.tune ~cache ~driver ~machine ~nprocs seq with
                | Ok o -> Some o
                | Error _ -> None)
              app.Apps.sequences
          in
          if outcomes = [] then Util.pr "skipped: no tunable sequence@."
          else begin
            List.iter note outcomes;
            let sum f = List.fold_left (fun a o -> a +. f o) 0.0 outcomes in
            let def = sum (fun o -> o.TSearch.default_cost.TCost.e_cycles) in
            let tuned = sum (fun o -> o.TSearch.best_cost.TCost.e_cycles) in
            let rem =
              match app.Apps.remainder with
              | None -> 0.0
              | Some rem ->
                let layout = Util.partitioned_layout machine rem in
                let r = Exec.run_unfused ~layout ~machine ~nprocs rem in
                float_of_int app.Apps.remainder_reps *. r.Exec.cycles
            in
            let retuned =
              List.length
                (List.filter
                   (fun o -> o.TSearch.best <> o.TSearch.default)
                   outcomes)
            in
            Util.pr "%14.4e %14.4e %+7.1f%%  %d/%d sequences retuned@."
              (def +. rem) (tuned +. rem)
              (100.0 *. (((def +. rem) /. (tuned +. rem)) -. 1.0))
              retuned (List.length outcomes)
          end)
        (procs cfg))
    machines

let run cfg =
  Util.header
    "Autotuner (lf_tune): tuned vs paper-default configurations";
  let cache = TCost.create_cache () in
  Util.pr "search driver: beam(width=8, budget=64); shared memo cache@.@.";
  table_header ();
  kernel_rows ~cache cfg "LL18"
    (Lf_kernels.Ll18.program ~n:(Util.scale cfg 256 64) ());
  kernel_rows ~cache cfg "calc"
    (Lf_kernels.Calc.program ~n:(Util.scale cfg 256 64) ());
  kernel_rows ~cache cfg "filter"
    (Lf_kernels.Filter.program
       ~rows:(Util.scale cfg 320 80)
       ~cols:(Util.scale cfg 128 32)
       ());
  let tomcatv =
    if cfg.Util.quick then Apps.tomcatv ~n:65 () else Apps.tomcatv ~n:257 ()
  in
  let hydro2d =
    if cfg.Util.quick then Apps.hydro2d ~rows:80 ~cols:40 ()
    else Apps.hydro2d ~rows:200 ~cols:80 ()
  in
  let spem =
    if cfg.Util.quick then Apps.spem ~d0:16 ~d1:17 ~d2:17 ()
    else Apps.spem ~d0:30 ~d1:25 ~d2:25 ()
  in
  app_rows ~cache cfg "tomcatv" tomcatv;
  app_rows ~cache cfg "hydro2d" hydro2d;
  app_rows ~cache cfg "spem" spem;
  let s = TCost.stats cache in
  Util.pr "@.memo cache: %d entries, %d cold simulations, %d hits@."
    s.TCost.entries s.TCost.misses s.TCost.hits;
  Util.pr "never lost to paper default across %d rows: %s@." !rows_checked
    (if !never_lost then "OK" else "FAIL");
  Util.pr
    "@.Expected shape: at low P (per-processor data exceeding the cache)@.\
     the tuner keeps or refines the paper's fused configuration; once@.\
     the data fits (high P, small sizes) it backs off to the unfused@.\
     schedule, matching the profitability crossover of Figures 22-25.@."
