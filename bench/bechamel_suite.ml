(* Bechamel wall-clock micro-benchmarks: one Test.make per table/figure
   driver (at reduced sizes, so each fits a bechamel quota) plus the
   native domain-runtime kernels.  These measure the cost of this
   implementation itself -- analysis, derivation, fusion, simulation --
   and the real fused-vs-unfused wall clock of the native kernels.
   The tune/* pair measures the autotuner's exact cost tier cold
   (simulation) versus memoised (fingerprint lookup), and the run
   prints an explicit verdict that the memoised path is cheaper. *)

open Bechamel
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Derive = Lf_core.Derive
module N = Lf_kernels.Native
module Pool = Lf_parallel.Pool
module TCost = Lf_tune.Cost
module TSpace = Lf_tune.Space

let n_small = 64

let test_t2_derivation =
  let p = Lf_kernels.Filter.program ~rows:64 ~cols:32 () in
  Test.make ~name:"t2/derive-filter"
    (Staged.stage (fun () -> Derive.of_program ~depth:1 p))

let test_multigraph =
  let p = Lf_kernels.Ll18.program ~n:n_small () in
  Test.make ~name:"t2/multigraph-ll18"
    (Staged.stage (fun () -> Lf_dep.Dep.build ~depth:1 p))

let test_fused_schedule =
  let p = Lf_kernels.Calc.program ~n:n_small () in
  Test.make ~name:"f22/schedule-calc"
    (Staged.stage (fun () -> Lf_core.Schedule.fused ~nprocs:4 ~strip:8 p))

let sim_test name machine kernel =
  Test.make ~name
    (Staged.stage (fun () ->
         let pair = Util.run_pair ~machine ~nprocs:4 kernel in
         pair.Util.fused.Exec.total_misses))

let test_f20_sim = sim_test "f20/sim-ll18-convex" Machine.convex
    (Lf_kernels.Ll18.program ~n:n_small ())

let test_f22_sim = sim_test "f22/sim-ll18-ksr2" Machine.ksr2
    (Lf_kernels.Ll18.program ~n:n_small ())

let test_f23_sim = sim_test "f23/sim-filter-convex" Machine.convex
    (Lf_kernels.Filter.program ~rows:64 ~cols:32 ())

let test_f26_alignrep =
  let p = Lf_kernels.Ll18.program ~n:n_small () in
  Test.make ~name:"f26/alignrep-transform-ll18"
    (Staged.stage (fun () ->
         match Lf_core.Alignrep.transform p with
         | Ok r -> r.Lf_core.Alignrep.replicated_stmts
         | Error _ -> -1))

(* Autotuner exact tier: a cold evaluation simulates the candidate on
   the machine model; a memoised one is a fingerprint + hash lookup. *)
let tune_prog = Lf_kernels.Ll18.program ~n:48 ()
let tune_cand = TSpace.paper_default ~machine:Machine.convex tune_prog

let test_tune_exact_cold =
  Test.make ~name:"tune/exact-cold"
    (Staged.stage (fun () ->
         let cache = TCost.create_cache () in
         TCost.exact ~cache ~machine:Machine.convex ~nprocs:4 tune_prog
           tune_cand))

let tune_memo_cache = TCost.create_cache ()

let test_tune_exact_memo =
  Test.make ~name:"tune/exact-memo"
    (Staged.stage (fun () ->
         TCost.exact ~cache:tune_memo_cache ~machine:Machine.convex ~nprocs:4
           tune_prog tune_cand))

let test_cache_throughput =
  let c = Lf_cache.Cache.of_geometry (Lf_cache.Cache.convex_geometry ()) in
  Test.make ~name:"substrate/cache-100k-accesses"
    (Staged.stage (fun () ->
         for i = 0 to 99_999 do
           ignore (Lf_cache.Cache.access c (i * 8))
         done))

(* The same 100k-access unit stream consumed as one run: the batched
   tier pays one way probe per line group instead of one per access. *)
let test_cache_run_throughput =
  let c = Lf_cache.Cache.of_geometry (Lf_cache.Cache.convex_geometry ()) in
  Test.make ~name:"substrate/cache-100k-run"
    (Staged.stage (fun () ->
         Lf_cache.Cache.access_run c ~addr:0 ~stride:8 ~n:100_000))

(* Native kernels: sequential, and fused with a pool of workers. *)
let native_tests =
  let n = 256 in
  let seq =
    Test.make ~name:"native/ll18-seq"
      (Staged.stage (fun () ->
           let a = N.Ll18_native.create n in
           N.Ll18_native.sequential a;
           N.Ll18_native.checksum a))
  in
  let fused_w workers =
    Test.make ~name:(Printf.sprintf "native/ll18-fused-w%d" workers)
      (Staged.stage (fun () ->
           let pool = Pool.create workers in
           let a = N.Ll18_native.create n in
           N.Ll18_native.fused pool a;
           Pool.shutdown pool;
           N.Ll18_native.checksum a))
  in
  let unfused_w workers =
    Test.make ~name:(Printf.sprintf "native/ll18-unfused-w%d" workers)
      (Staged.stage (fun () ->
           let pool = Pool.create workers in
           let a = N.Ll18_native.create n in
           N.Ll18_native.unfused pool a;
           Pool.shutdown pool;
           N.Ll18_native.checksum a))
  in
  [ seq; unfused_w 1; fused_w 1; unfused_w 2; fused_w 2 ]

let all_tests =
  Test.make_grouped ~name:"loopfusion"
    ([
       test_t2_derivation;
       test_multigraph;
       test_fused_schedule;
       test_f20_sim;
       test_f22_sim;
       test_f23_sim;
       test_f26_alignrep;
       test_cache_throughput;
       test_cache_run_throughput;
       test_tune_exact_cold;
       test_tune_exact_memo;
     ]
    @ native_tests)

let run (_ : Util.cfg) =
  Util.header "Bechamel micro-benchmarks (wall clock of this implementation)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg_b =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg_b instances all_tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  Util.pr "%-40s %16s@." "benchmark" "ns/run";
  let estimate_of name =
    match Analyze.OLS.estimates (Hashtbl.find results name) with
    | Some (est :: _) -> Some est
    | Some [] | None -> None
  in
  List.iter
    (fun name ->
      match estimate_of name with
      | Some est -> Util.pr "%-40s %16.0f@." name est
      | None -> Util.pr "%-40s %16s@." name "n/a")
    (List.sort String.compare names);
  (* the autotuner's memo cache must make repeated exact-tier
     evaluations cheaper than cold simulations *)
  let ends_with suffix name =
    let nl = String.length name and sl = String.length suffix in
    nl >= sl && String.sub name (nl - sl) sl = suffix
  in
  let find suffix = List.find_opt (ends_with suffix) names in
  (match (find "tune/exact-cold", find "tune/exact-memo") with
  | Some cold_n, Some memo_n -> (
    match (estimate_of cold_n, estimate_of memo_n) with
    | Some cold, Some memo ->
      Util.pr
        "@.memoised exact-tier evaluation vs cold simulation: %.0fx cheaper \
         (%s)@."
        (cold /. Float.max memo 1.0)
        (if memo < cold then "OK" else "FAIL: memo not cheaper")
    | _ -> Util.pr "@.tune memo-vs-cold verdict: estimates unavailable@.")
  | _ -> Util.pr "@.tune memo-vs-cold verdict: tests missing@.")
