(* Shared helpers for the experiment harness. *)

module Ir = Lf_ir.Ir
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim
module Batch = Lf_batch.Batch
module Cache = Lf_cache.Cache

type cfg = { quick : bool; procs_cap : int option }

(* ------------------------------------------------------------------ *)
(* Persistent result store (bench --cold / --no-store).  The handle is
   opened lazily so experiments that never simulate (t2, f9 golden
   runs) create no _lf_cache/ directory. *)

let use_store = ref true
let cold = ref false
let store_handle = ref None

let store () =
  if not !use_store then None
  else begin
    (match !store_handle with
    | None -> store_handle := Some (Batch.Store.open_ ())
    | Some _ -> ());
    !store_handle
  end

(* One request through the store.  [always] forces computation (wall-
   clock experiments measure the engine, not the store); a [sink]ed
   request computes regardless (Batch.run_one's contract). *)
let run_request ?sink ?(always = false) ?jobs req =
  Batch.run_one ?store:(store ()) ~cold:(!cold || always) ?sink ?jobs req

(* A request list through Batch.run: dedup, store hits, misses sharded
   across host domains; first failure re-raised in request order. *)
let run_requests reqs =
  let outcomes, _summary = Batch.run ?store:(store ()) ~cold:!cold reqs in
  Batch.results_exn outcomes

let scale cfg full quick_v = if cfg.quick then quick_v else full

let cap_procs cfg procs =
  let procs = match cfg.procs_cap with
    | None -> procs
    | Some cap -> List.filter (fun p -> p <= cap) procs
  in
  if cfg.quick then List.filter (fun p -> p <= 8) procs else procs

(* Layout/strip helpers now live in Lf_queue.Sweep (shared with the
   sweep CLI and the queue bench); these are the historical names. *)
let cache_shape = Lf_queue.Sweep.cache_shape
let partitioned_layout = Lf_queue.Sweep.partitioned_layout

let contiguous_layout (p : Ir.program) = Partition.contiguous p.Ir.decls

let padded_layout ~pad (p : Ir.program) = Partition.padded ~pad p.Ir.decls

let strip_for = Lf_queue.Sweep.strip_for

(* One fused-vs-unfused measurement with cache-partitioned layout. *)
type pair = {
  unfused : Exec.result;
  fused : Exec.result;
}

let run_pair ?layout ?mode ~machine ~nprocs (p : Ir.program) =
  let layout =
    match layout with Some l -> l | None -> partitioned_layout machine p
  in
  let strip = strip_for machine p in
  match
    run_requests
      [
        Sim.unfused ?mode ~layout ~machine ~nprocs p;
        Sim.fused ?mode ~layout ~machine ~nprocs ~strip p;
      ]
  with
  | [| unfused; fused |] -> { unfused; fused }
  | _ -> assert false

let pr fmt = Fmt.pr fmt

let header title =
  pr "@.==========================================================@.";
  pr "%s@." title;
  pr "==========================================================@."

let subheader t = pr "@.---- %s ----@." t

(* Print a speedup table: rows of (P, list of (label, speedup)). *)
let speedup_table ~labels rows =
  pr "%6s" "P";
  List.iter (fun l -> pr "  %14s" l) labels;
  pr "@.";
  List.iter
    (fun (p, values) ->
      pr "%6d" p;
      List.iter (fun v -> pr "  %14.2f" v) values;
      pr "@.")
    rows

let misses_table ~labels rows =
  pr "%6s" "P";
  List.iter (fun l -> pr "  %14s" l) labels;
  pr "@.";
  List.iter
    (fun (p, values) ->
      pr "%6d" p;
      List.iter (fun v -> pr "  %14d" v) values;
      pr "@.")
    rows

(* Monotonic elapsed-seconds timer, shared with the measurement
   harness (Lf_native.Bench_timer) — gettimeofday jumps with NTP
   adjustments; experiment wall-clock should not. *)
let elapsed_timer () =
  let t0 = Lf_native.Bench_timer.now_ns () in
  fun () ->
    Int64.to_float (Int64.sub (Lf_native.Bench_timer.now_ns ()) t0) *. 1e-9

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json FILE).  Experiments append flat
   key/value objects; main.exe adds per-experiment wall-clock entries
   and serialises everything at exit. *)

type jval = Int of int | Float of float | Str of string | Bool of bool

let metrics : (string * (string * jval) list) list ref = ref []

let note ~id kvs = metrics := (id, kvs) :: !metrics

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jval_to_string = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> if b then "true" else "false"

let write_json ~file ~jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"store\": %b,\n  \"cold\": %b,\n" !use_store !cold);
  Buffer.add_string buf
    (Printf.sprintf "  \"store_hits\": %d,\n  \"store_computed\": %d,\n"
       (Batch.hit_count ()) (Batch.computed_count ()));
  Buffer.add_string buf "  \"experiments\": [\n";
  let entries = List.rev !metrics in
  List.iteri
    (fun i (id, kvs) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"id\": \"%s\"" (json_escape id));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf ", \"%s\": %s" (json_escape k) (jval_to_string v)))
        kvs;
      Buffer.add_string buf
        (if i = List.length entries - 1 then "}\n" else "},\n"))
    entries;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc
