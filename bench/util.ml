(* Shared helpers for the experiment harness. *)

module Ir = Lf_ir.Ir
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Cache = Lf_cache.Cache

type cfg = { quick : bool; procs_cap : int option }

let scale cfg full quick_v = if cfg.quick then quick_v else full

let cap_procs cfg procs =
  let procs = match cfg.procs_cap with
    | None -> procs
    | Some cap -> List.filter (fun p -> p <= cap) procs
  in
  if cfg.quick then List.filter (fun p -> p <= 8) procs else procs

let cache_shape (m : Machine.config) =
  {
    Partition.capacity = m.Machine.cache.Cache.capacity;
    line = m.Machine.cache.Cache.line;
    assoc = m.Machine.cache.Cache.assoc;
  }

let partitioned_layout m (p : Ir.program) =
  Partition.cache_partitioned ~cache:(cache_shape m) p.Ir.decls

let contiguous_layout (p : Ir.program) = Partition.contiguous p.Ir.decls

let padded_layout ~pad (p : Ir.program) = Partition.padded ~pad p.Ir.decls

(* Strip-mining factor sized so one strip of every array fits in its
   cache partition (paper §3.4): per fused iteration each array touches
   one "row" of inner elements. *)
let strip_for m (p : Ir.program) =
  let narrays = List.length p.Ir.decls in
  let inner_bytes =
    List.fold_left
      (fun acc (d : Ir.decl) ->
        match d.extents with
        | [] -> acc
        | _ :: rest -> max acc (List.fold_left ( * ) 8 rest))
      8 p.Ir.decls
  in
  let sp = Partition.partition_size ~cache:(cache_shape m) ~narrays in
  max 2 ((sp / inner_bytes) - 2)

(* One fused-vs-unfused measurement with cache-partitioned layout. *)
type pair = {
  unfused : Exec.result;
  fused : Exec.result;
}

let run_pair ?layout ~machine ~nprocs (p : Ir.program) =
  let layout =
    match layout with Some l -> l | None -> partitioned_layout machine p
  in
  let strip = strip_for machine p in
  {
    unfused = Exec.run_unfused ~layout ~machine ~nprocs p;
    fused = Exec.run_fused ~layout ~machine ~nprocs ~strip p;
  }

let pr fmt = Fmt.pr fmt

let header title =
  pr "@.==========================================================@.";
  pr "%s@." title;
  pr "==========================================================@."

let subheader t = pr "@.---- %s ----@." t

(* Print a speedup table: rows of (P, list of (label, speedup)). *)
let speedup_table ~labels rows =
  pr "%6s" "P";
  List.iter (fun l -> pr "  %14s" l) labels;
  pr "@.";
  List.iter
    (fun (p, values) ->
      pr "%6d" p;
      List.iter (fun v -> pr "  %14.2f" v) values;
      pr "@.")
    rows

let misses_table ~labels rows =
  pr "%6s" "P";
  List.iter (fun l -> pr "  %14s" l) labels;
  pr "@.";
  List.iter
    (fun (p, values) ->
      pr "%6d" p;
      List.iter (fun v -> pr "  %14d" v) values;
      pr "@.")
    rows

let elapsed_timer () =
  let t0 = Unix.gettimeofday () in
  fun () -> Unix.gettimeofday () -. t0
