(* Tables 1 and 2 of the paper. *)

module Ir = Lf_ir.Ir
module Derive = Lf_core.Derive
module Apps = Lf_kernels.Apps

let kernel_programs (cfg : Util.cfg) =
  let n = Util.scale cfg 512 96 in
  [
    ("LL18", Lf_kernels.Ll18.program ~n ());
    ("calc", Lf_kernels.Calc.program ~n ());
    ( "filter",
      Lf_kernels.Filter.program
        ~rows:(Util.scale cfg 1602 160)
        ~cols:(Util.scale cfg 640 64)
        () );
  ]

let apps (cfg : Util.cfg) =
  if cfg.quick then
    [
      Apps.tomcatv ~n:97 ();
      Apps.hydro2d ~rows:128 ~cols:64 ();
      Apps.spem ~d0:40 ~d1:24 ~d2:24 ();
    ]
  else [ Apps.tomcatv (); Apps.hydro2d (); Apps.spem () ]

let max_shift_peel (p : Ir.program) =
  let d = Derive.of_program ~depth:1 p in
  (Derive.max_shift d, Derive.max_peel d)

let stmt_count (p : Ir.program) =
  List.fold_left (fun acc (n : Ir.nest) -> acc + List.length n.Ir.body) 0
    p.Ir.nests

(* Table 1: inventory of kernels and applications. *)
let table1 cfg =
  Util.header "Table 1: kernels and applications";
  Util.pr "%-10s %6s %10s %9s %9s@." "name" "stmts" "sequences" "longest"
    "shift/peel";
  List.iter
    (fun (name, p) ->
      let s, q = max_shift_peel p in
      Util.pr "%-10s %6d %10d %9d %6d/%d@." name (stmt_count p) 1
        (List.length p.Ir.nests) s q)
    (kernel_programs cfg);
  List.iter
    (fun (app : Apps.t) ->
      let stmts =
        List.fold_left (fun acc p -> acc + stmt_count p) 0 app.Apps.sequences
      in
      let s, q =
        List.fold_left
          (fun (s, q) p ->
            let s', q' = max_shift_peel p in
            (max s s', max q q'))
          (0, 0) app.Apps.sequences
      in
      Util.pr "%-10s %6d %10d %9d %6d/%d@." app.Apps.app_name stmts
        (Apps.num_sequences app)
        (Apps.longest_sequence app)
        s q)
    (apps cfg)

(* Table 2: derived per-loop shifting and peeling amounts, checked
   against the paper's published values. *)
let table2 cfg =
  Util.header "Table 2: derived amounts of shifting and peeling";
  let check name p expected_shifts expected_peels =
    let d = Derive.of_program ~depth:1 p in
    let shifts = Array.map (fun r -> r.(0)) d.Derive.shift in
    let peels = Array.map (fun r -> r.(0)) d.Derive.peel in
    Util.subheader name;
    Util.pr "loop   shift  peel@.";
    Array.iteri
      (fun k s -> Util.pr "%4d   %5d  %4d@." (k + 1) s peels.(k))
      shifts;
    let ok = shifts = expected_shifts && peels = expected_peels in
    Util.pr "matches paper Table 2: %s@."
      (if ok then "YES" else "NO (MISMATCH!)")
  in
  let n = Util.scale cfg 512 96 in
  check "LL18" (Lf_kernels.Ll18.program ~n ()) Lf_kernels.Ll18.expected_shifts
    Lf_kernels.Ll18.expected_peels;
  check "calc" (Lf_kernels.Calc.program ~n ()) Lf_kernels.Calc.expected_shifts
    Lf_kernels.Calc.expected_peels;
  check "filter"
    (Lf_kernels.Filter.program ~rows:160 ~cols:64 ())
    Lf_kernels.Filter.expected_shifts Lf_kernels.Filter.expected_peels;
  (* edge count of the dependence chain multigraph, cf. the paper's
     observation that filter's multigraph has 149 edges *)
  let g =
    Lf_dep.Dep.build ~depth:1 (Lf_kernels.Filter.program ~rows:160 ~cols:64 ())
  in
  Util.pr "@.filter dependence chain multigraph: %d edges@."
    (List.length g.Lf_dep.Dep.edges)

let run cfg =
  table1 cfg;
  table2 cfg
