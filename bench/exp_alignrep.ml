(* Figure 26: shift-and-peel (peeling) versus the alignment+replication
   baseline of Callahan / Appelbe & Smith, on the fused LL18 loops. *)

module Ir = Lf_ir.Ir
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Alignrep = Lf_core.Alignrep
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition

let run_alignrep ~machine ~nprocs (r : Alignrep.result) =
  let layout = Util.partitioned_layout machine r.Alignrep.prog in
  let strip = Util.strip_for machine r.Alignrep.prog in
  let sched = Alignrep.schedule ~nprocs ~strip r in
  Exec.run ~layout ~machine sched

let compare_machine cfg machine procs =
  let n = Util.scale cfg 512 128 in
  let p = Lf_kernels.Ll18.program ~n () in
  match Alignrep.transform p with
  | Error m -> Util.pr "alignment/replication not applicable: %s@." m
  | Ok r ->
    Util.pr
      "alignment/replication for LL18: %d replicated statements, arrays \
       copied: %s (paper: two statements, two arrays)@."
      r.Alignrep.replicated_stmts
      (String.concat ", " r.Alignrep.copied_arrays);
    let layout = Util.partitioned_layout machine p in
    let strip = Util.strip_for machine p in
    let base =
      (Exec.run_unfused ~layout ~machine ~nprocs:1 p).Exec.cycles
    in
    let rows =
      List.map
        (fun nprocs ->
          let f = Exec.run_fused ~layout ~machine ~nprocs ~strip p in
          let a = run_alignrep ~machine ~nprocs r in
          (nprocs, [ base /. f.Exec.cycles; base /. a.Exec.cycles ]))
        procs
    in
    Util.speedup_table ~labels:[ "peeling"; "align/replic" ] rows

let fig26 cfg =
  Util.header "Figure 26: peeling vs alignment/replication for LL18";
  Util.subheader "(a) KSR2";
  compare_machine cfg Machine.ksr2
    (Util.cap_procs cfg
       (Util.scale cfg [ 1; 2; 4; 8; 16; 24; 32; 40; 48; 56 ] [ 1; 2; 4; 8 ]));
  Util.subheader "(b) Convex";
  compare_machine cfg Machine.convex
    (Util.cap_procs cfg (Util.scale cfg [ 1; 2; 4; 8; 12; 16 ] [ 1; 2; 4; 8 ]));
  Util.pr
    "@.Expected shape: peeling wins everywhere; the replicated copy@.\
     loops and statements cost extra memory traffic and computation.@."
