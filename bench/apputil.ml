(* Whole-application simulation: an application is a set of fusible
   parallel loop sequences plus a non-fusible remainder (see
   Lf_kernels.Apps).  Each part is simulated independently and the cycle
   counts are summed; speedups are reported against the unfused
   single-processor run, as in the paper's Figures 21 and 25. *)

module Ir = Lf_ir.Ir
module Apps = Lf_kernels.Apps
module Exec = Lf_machine.Exec
module Machine = Lf_machine.Machine
module Partition = Lf_core.Partition

type variant = {
  v_fused : bool;  (* apply shift-and-peel fusion to the sequences *)
  v_partitioned : bool;  (* cache-partitioned memory layout *)
}

let layout_for variant machine (p : Ir.program) =
  if variant.v_partitioned then Util.partitioned_layout machine p
  else Util.contiguous_layout p

type app_result = { cycles : float; misses : int }

let run_app ~machine ~nprocs ~variant (app : Apps.t) =
  let run_seq (p : Ir.program) =
    let layout = layout_for variant machine p in
    if variant.v_fused then
      let strip = Util.strip_for machine p in
      Exec.run_fused ~layout ~machine ~nprocs ~strip p
    else Exec.run_unfused ~layout ~machine ~nprocs p
  in
  let acc_cycles = ref 0.0 and acc_misses = ref 0 in
  List.iter
    (fun seq ->
      let r = run_seq seq in
      acc_cycles := !acc_cycles +. r.Exec.cycles;
      acc_misses := !acc_misses + r.Exec.total_misses)
    app.Apps.sequences;
  (match app.Apps.remainder with
  | None -> ()
  | Some rem ->
    let layout = layout_for variant machine rem in
    let r = Exec.run_unfused ~layout ~machine ~nprocs rem in
    let reps = float_of_int app.Apps.remainder_reps in
    acc_cycles := !acc_cycles +. (reps *. r.Exec.cycles);
    acc_misses :=
      !acc_misses + (app.Apps.remainder_reps * r.Exec.total_misses));
  { cycles = !acc_cycles; misses = !acc_misses }

let unfused_partitioned = { v_fused = false; v_partitioned = true }
let fused_partitioned = { v_fused = true; v_partitioned = true }
let unfused_contiguous = { v_fused = false; v_partitioned = false }
let fused_contiguous = { v_fused = true; v_partitioned = false }
