(* Figures 18 and 20: cache misses under intra-array padding versus
   cache partitioning for the fused LL18 loop (nine 512x512 arrays).

   The paper measures the misses of a single processor during parallel
   execution; we report processor 0 of an 8-processor run.  Padding
   perturbs the mapping erratically; cache partitioning yields the
   minimum directly. *)

module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim

let nprocs = 8

let run_padding_sweep cfg machine =
  let n = Util.scale cfg 512 128 in
  let p = Lf_kernels.Ll18.program ~n () in
  let strip = Util.strip_for machine p in
  let pads = Util.scale cfg (List.init 21 (fun i -> i + 1)) [ 1; 3; 5; 7; 9; 11 ] in
  Util.pr "%8s  %18s  %18s@." "padding" "no fusion (proc0)" "fusion (proc0)";
  (* the sweep only reads miss counts, never the store: use the
     address-stream fast path (bit-identical counters, no FP work).
     The whole sweep goes through Batch.run as one request list, so a
     warm result store answers it without simulating. *)
  let mode = Sim.Run_compressed in
  let pair layout =
    [
      Sim.unfused ~mode ~layout ~machine ~nprocs p;
      Sim.fused ~mode ~layout ~machine ~nprocs ~strip p;
    ]
  in
  let labels =
    List.map string_of_int pads @ [ "cachept" ]
  in
  let requests =
    List.concat_map (fun pad -> pair (Util.padded_layout ~pad p)) pads
    @ pair (Util.partitioned_layout machine p)
  in
  let results = Util.run_requests requests in
  List.iteri
    (fun i label ->
      let u = results.(2 * i) and f = results.((2 * i) + 1) in
      Util.pr "%8s  %18d  %18d@." label (Exec.proc0_misses u)
        (Exec.proc0_misses f))
    labels;
  let u = results.(Array.length results - 2)
  and f = results.(Array.length results - 1) in
  (Exec.proc0_misses f, Exec.proc0_misses u)

let fig18 cfg =
  Util.header
    "Figure 18: misses vs amount of padding, fused LL18 (Convex cache)";
  ignore (run_padding_sweep cfg Machine.convex)

let fig20 cfg =
  Util.header "Figure 20: cache partitioning for LL18";
  Util.subheader "(a) KSR2";
  ignore (run_padding_sweep cfg Machine.ksr2);
  Util.subheader "(b) Convex";
  ignore (run_padding_sweep cfg Machine.convex);
  Util.pr
    "@.Expected shape: padding curves vary erratically; the cache-@.\
     partitioned row is at (or near) the minimum, and fusion without@.\
     conflict avoidance can lose its benefit entirely.@."
