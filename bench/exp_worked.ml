(* Worked examples from the paper's presentation sections: the Figure
   9/10 derivation walkthrough and the generated code of Figures 11, 12
   and 16. *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep
module Derive = Lf_core.Derive
module Codegen = Lf_core.Codegen

(* The loop sequence of Figure 9(a):
     L1: a[i] = b[i]
     L2: c[i] = a[i+1] + a[i-1]
     L3: d[i] = c[i+1] + c[i-1]  *)
let fig9_sequence ?(n = 64) () =
  let i o = Ir.av ~c:o "i" in
  let r name o = Ir.Read (Ir.aref name [ i o ]) in
  let nest nid out rhs =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = n - 2; parallel = true } ];
      body = [ Ir.stmt (Ir.aref out [ i 0 ]) rhs ];
    }
  in
  let p =
    {
      Ir.pname = "fig9";
      decls =
        List.map
          (fun a -> { Ir.aname = a; extents = [ n ] })
          [ "a"; "b"; "c"; "d" ];
      nests =
        [
          nest "L1" "a" (r "b" 0);
          nest "L2" "c" (Ir.Bin (Ir.Add, r "a" 1, r "a" (-1)));
          nest "L3" "d" (Ir.Bin (Ir.Add, r "c" 1, r "c" (-1)));
        ];
    }
  in
  Ir.validate p;
  p

let figures_9_10 () =
  Util.header "Figures 9/10: derivation walkthrough on the example sequence";
  let p = fig9_sequence () in
  Util.pr "%a@." Ir.pp_program p;
  let g = Dep.build ~depth:1 p in
  Util.subheader "dependence chain multigraph (Figure 9(b))";
  List.iter (fun e -> Util.pr "  %a@." Dep.pp_edge e) g.Dep.edges;
  let d = Derive.of_multigraph g in
  Util.subheader "derived shifts and peels (Figures 9(d), 10(c))";
  Util.pr "%a" Derive.pp d;
  let shifts = Array.map (fun r -> r.(0)) d.Derive.shift in
  let peels = Array.map (fun r -> r.(0)) d.Derive.peel in
  Util.pr "shifts (0,1,2) as in Fig 9: %s; peels (0,1,2) as in Fig 10: %s@."
    (if shifts = [| 0; 1; 2 |] then "YES" else "NO")
    (if peels = [| 0; 1; 2 |] then "YES" else "NO")

let figures_11_12 () =
  Util.header "Figures 11/12: generated code for the example sequence";
  let p = fig9_sequence () in
  let d = Derive.of_program ~depth:1 p in
  Util.subheader "direct method (Figure 11(a))";
  Util.pr "%s@." (Codegen.direct_to_string p d);
  Util.subheader "strip-mined method with peeling (Figure 12)";
  Util.pr "%s@." (Codegen.strip_mined_to_string ~strip:8 p d)

let figures_15_16 () =
  Util.header
    "Figures 15/16: multidimensional shift-and-peel for the Jacobi pair";
  let p = Lf_kernels.Jacobi.program ~n:64 () in
  Util.pr "%a@." Ir.pp_program p;
  let d = Derive.of_program ~depth:2 p in
  Util.subheader "derived shifts/peels (both dimensions)";
  Util.pr "%a" Derive.pp d;
  Util.subheader "generated fused code with boundary prologue (Figure 16)";
  Util.pr "%s@." (Codegen.multidim_to_string ~strip:8 p d)

let run (_ : Util.cfg) =
  figures_9_10 ();
  figures_11_12 ();
  figures_15_16 ()
