(* Figures 22, 23 and 24: kernel speedups and misses, fused versus
   unfused, on the two simulated machines, and the data-size study. *)

module Ir = Lf_ir.Ir
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec

let kernel_by_name cfg name =
  match name with
  | "LL18" -> fun n -> Lf_kernels.Ll18.program ~n ()
  | "calc" -> fun n -> Lf_kernels.Calc.program ~n ()
  | _ -> invalid_arg "kernel_by_name"
  [@@warning "-27"]

(* Speedup/miss sweep for one kernel on one machine; speedups relative
   to the unfused version on one processor (cache-partitioned layout
   throughout, as in the paper's methodology). *)
let sweep ?note ~machine ~procs (p : Ir.program) =
  let layout = Util.partitioned_layout machine p in
  let strip = Util.strip_for machine p in
  (* only cycles and miss counts are read below, so the run-compressed
     address-stream engine (bit-identical observables) does the work;
     the whole sweep is one Batch.run request list, answered from a
     warm result store without simulating *)
  let mode = Lf_machine.Sim.Run_compressed in
  let requests =
    Lf_machine.Sim.unfused ~mode ~layout ~machine ~nprocs:1 p
    :: List.concat_map
         (fun nprocs ->
           [
             Lf_machine.Sim.unfused ~mode ~layout ~machine ~nprocs p;
             Lf_machine.Sim.fused ~mode ~layout ~machine ~nprocs ~strip p;
           ])
         procs
  in
  let results = Util.run_requests requests in
  let base = results.(0).Exec.cycles in
  let rows =
    List.mapi
      (fun i nprocs -> (nprocs, results.((2 * i) + 1), results.((2 * i) + 2)))
      procs
  in
  (match note with
  | None -> ()
  | Some id ->
    List.iter
      (fun (nprocs, (u : Exec.result), (f : Exec.result)) ->
        Util.note ~id
          [
            ("nprocs", Util.Int nprocs);
            ("unfused_cycles", Util.Float u.Exec.cycles);
            ("fused_cycles", Util.Float f.Exec.cycles);
            ("unfused_misses", Util.Int u.Exec.total_misses);
            ("fused_misses", Util.Int f.Exec.total_misses);
          ])
      rows);
  Util.pr "%6s  %14s  %14s  %12s  %12s  %8s@." "P" "speedup-unfused"
    "speedup-fused" "miss-unfused" "miss-fused" "gain";
  List.iter
    (fun (nprocs, u, f) ->
      Util.pr "%6d  %14.2f  %14.2f  %12d  %12d  %+7.1f%%@." nprocs
        (base /. u.Exec.cycles) (base /. f.Exec.cycles) u.Exec.total_misses
        f.Exec.total_misses
        (100.0 *. ((u.Exec.cycles /. f.Exec.cycles) -. 1.0)))
    rows

let fig22 cfg =
  Util.header "Figure 22: speedup and misses of kernels on KSR2 (512x512)";
  let n = Util.scale cfg 512 128 in
  let procs =
    Util.cap_procs cfg
      (Util.scale cfg [ 1; 2; 4; 8; 16; 24; 32; 40; 48; 56 ] [ 1; 2; 4; 8 ])
  in
  Util.subheader "(a) LL18";
  sweep ~note:"f22.ll18" ~machine:Machine.ksr2 ~procs
    (Lf_kernels.Ll18.program ~n ());
  Util.subheader "(b) calc";
  sweep ~note:"f22.calc" ~machine:Machine.ksr2 ~procs
    (Lf_kernels.Calc.program ~n ());
  Util.pr
    "@.Expected shape: fusion wins by ~5-25%% at low P; the benefit@.\
     diminishes as each processor's share of the data begins to fit in@.\
     its cache, and calc (6 arrays) crosses over before LL18 (9 arrays).@."

let fig23 cfg =
  Util.header "Figure 23: speedup and misses of kernels on Convex";
  let n = Util.scale cfg 1024 128 in
  let procs =
    Util.cap_procs cfg (Util.scale cfg [ 1; 2; 4; 8; 12; 16 ] [ 1; 2; 4; 8 ])
  in
  Util.subheader "(a) LL18 (1024x1024)";
  sweep ~note:"f23.ll18" ~machine:Machine.convex ~procs
    (Lf_kernels.Ll18.program ~n ());
  Util.subheader "(b) calc (1024x1024)";
  sweep ~note:"f23.calc" ~machine:Machine.convex ~procs
    (Lf_kernels.Calc.program ~n ());
  Util.subheader "(c) filter (1602x640)";
  let rows = Util.scale cfg 1602 160 and cols = Util.scale cfg 640 64 in
  sweep ~note:"f23.filter" ~machine:Machine.convex ~procs
    (Lf_kernels.Filter.program ~rows ~cols ());
  Util.pr
    "@.Expected shape: >=30%% improvement for LL18 and calc and more@.\
     for filter (the Convex's higher miss penalty), no crossover by 16.@."

(* Figure 24: improvement from fusion (ratio of unfused to fused
   execution time) as a function of array size, at 8 and 16 procs. *)
let fig24 cfg =
  Util.header "Figure 24: improvement from fusion vs array size (Convex)";
  let sizes = Util.scale cfg [ 256; 512; 1024 ] [ 64; 128; 256 ] in
  let procs = Util.cap_procs cfg (Util.scale cfg [ 8; 16 ] [ 2; 4 ]) in
  List.iter
    (fun nprocs ->
      Util.subheader (Printf.sprintf "%d processors" nprocs);
      Util.pr "%10s  %16s  %16s@." "size" "LL18 (9 arrays)" "calc (6 arrays)";
      List.iter
        (fun n ->
          let ratio p =
            let pair =
              Util.run_pair ~mode:Exec.Run_compressed ~machine:Machine.convex
                ~nprocs p
            in
            pair.Util.unfused.Exec.cycles /. pair.Util.fused.Exec.cycles
          in
          let r_ll18 = ratio (Lf_kernels.Ll18.program ~n ()) in
          let r_calc = ratio (Lf_kernels.Calc.program ~n ()) in
          Util.pr "%7dx%-4d %16.2f  %16.2f@." n n r_ll18 r_calc)
        sizes)
    procs;
  Util.pr
    "@.Expected shape: ratios above 1 only when the per-processor data@.\
     exceeds the aggregate cache; calc (6 arrays) drops below 1 at@.\
     smaller sizes / more processors than LL18 (9 arrays).@."
