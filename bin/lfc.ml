(* lfc: command-line front end to the loop-fusion "compiler".

   Subcommands:
     lfc analyze  <kernel>   dependence multigraph + doall verification
     lfc derive   <kernel>   shift-and-peel amounts (Table 2)
     lfc emit     <kernel>   generated fused code (Figures 11/12/16)
     lfc simulate <kernel>   run on the simulated KSR2/Convex
     lfc verify   <kernel>   check fused execution against the reference
     lfc profile  --kernel K simulate with event counters (lf_obs)
     lfc tune     --kernel K autotune fusion/strip/layout on the simulator

   Kernels: ll18, calc, filter, jacobi, fig9 (tune also accepts the
   application models tomcatv, hydro2d, spem). *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Dep = Lf_dep.Dep
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Codegen = Lf_core.Codegen
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Apps = Lf_kernels.Apps
module Tune = Lf_tune.Tune
module TSearch = Lf_tune.Search
module TCost = Lf_tune.Cost

open Cmdliner

let fig9_program n =
  let i o = Ir.av ~c:o "i" in
  let nest nid out rhs =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = n - 2; parallel = true } ];
      body = [ Ir.stmt (Ir.aref out [ i 0 ]) rhs ];
    }
  in
  let r name o = Ir.Read (Ir.aref name [ i o ]) in
  {
    Ir.pname = "fig9";
    decls =
      List.map (fun a -> { Ir.aname = a; extents = [ n ] })
        [ "a"; "b"; "c"; "d" ];
    nests =
      [
        nest "L1" "a" (r "b" 0);
        nest "L2" "c" (Ir.Bin (Add, r "a" 1, r "a" (-1)));
        nest "L3" "d" (Ir.Bin (Add, r "c" 1, r "c" (-1)));
      ];
  }

let program_of_kernel name n =
  match name with
  | "ll18" -> Ok (Lf_kernels.Ll18.program ~n ())
  | "calc" -> Ok (Lf_kernels.Calc.program ~n ())
  | "filter" -> Ok (Lf_kernels.Filter.program ~rows:n ~cols:n ())
  | "jacobi" -> Ok (Lf_kernels.Jacobi.program ~n ())
  | "fig9" -> Ok (fig9_program n)
  | path when Sys.file_exists path -> (
    (* a source file in the front-end language *)
    match Lf_front.Parse.program_of_file path with
    | p -> Ok p
    | exception Lf_front.Parse.Syntax_error m ->
      Error (Printf.sprintf "%s: syntax error: %s" path m)
    | exception Ir.Invalid m ->
      Error (Printf.sprintf "%s: invalid program: %s" path m))
  | _ ->
    Error
      (Printf.sprintf
         "unknown kernel %s (try ll18, calc, filter, jacobi, fig9, or a \
          .loop source file)" name)

let kernel_arg =
  let doc = "Kernel: ll18, calc, filter, jacobi, fig9, or a .loop file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let size_arg =
  let doc = "Array size per dimension." in
  Arg.(value & opt int 128 & info [ "size"; "n" ] ~docv:"N" ~doc)

let procs_arg =
  let doc = "Number of processors." in
  Arg.(value & opt int 4 & info [ "procs"; "p" ] ~docv:"P" ~doc)

let strip_arg =
  let doc = "Strip-mining factor." in
  Arg.(value & opt int 16 & info [ "strip" ] ~docv:"S" ~doc)

let depth_of p name =
  if name = "jacobi" then min 2 (Dep.max_parallel_depth p)
  else if Sys.file_exists name then max 1 (min 2 (Dep.max_parallel_depth p))
  else 1

let with_program name n f =
  match program_of_kernel name n with
  | Error m -> `Error (false, m)
  | Ok p -> f p

(* --- analyze ------------------------------------------------------- *)

let analyze kernel n =
  with_program kernel n (fun p ->
      Fmt.pr "%a@." Ir.pp_program p;
      (match Dep.verify_program p with
      | Ok () -> Fmt.pr "doall verification: all parallel levels are valid@."
      | Error m -> Fmt.pr "doall verification FAILED: %s@." m);
      let depth = depth_of p kernel in
      let g = Dep.build ~depth p in
      Fmt.pr "@.dependence chain multigraph (depth %d, %d edges):@." depth
        (List.length g.Dep.edges);
      List.iter (fun e -> Fmt.pr "  %a@." Dep.pp_edge e) g.Dep.edges;
      `Ok ())

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print the program and its dependence multigraph")
    Term.(ret (const analyze $ kernel_arg $ size_arg))

(* --- derive -------------------------------------------------------- *)

let derive kernel n =
  with_program kernel n (fun p ->
      let depth = depth_of p kernel in
      match Derive.of_program ~depth p with
      | exception Derive.Not_applicable m -> `Error (false, m)
      | d ->
        Fmt.pr "%a" Derive.pp d;
        Fmt.pr "iteration count threshold N_t:";
        for dim = 0 to depth - 1 do
          Fmt.pr " %d" (Derive.threshold d ~dim)
        done;
        Fmt.pr "@.";
        `Ok ())

let derive_cmd =
  Cmd.v
    (Cmd.info "derive" ~doc:"Derive shift-and-peel amounts (paper Table 2)")
    Term.(ret (const derive $ kernel_arg $ size_arg))

(* --- emit ---------------------------------------------------------- *)

let method_arg =
  let doc = "Code generation method: direct, strip or multidim." in
  Arg.(value & opt string "strip" & info [ "method" ] ~docv:"M" ~doc)

let emit kernel n method_ strip =
  with_program kernel n (fun p ->
      let depth = depth_of p kernel in
      let d = Derive.of_program ~depth p in
      match method_ with
      | "direct" ->
        if depth <> 1 then `Error (false, "direct method is 1-D only")
        else begin
          Fmt.pr "%s@." (Codegen.direct_to_string p d);
          `Ok ()
        end
      | "strip" ->
        if depth <> 1 then `Error (false, "strip method is 1-D only")
        else begin
          Fmt.pr "%s@." (Codegen.strip_mined_to_string ~strip p d);
          `Ok ()
        end
      | "multidim" ->
        Fmt.pr "%s@." (Codegen.multidim_to_string ~strip p d);
        `Ok ()
      | m -> `Error (false, "unknown method " ^ m))

let emit_cmd =
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit fused code (Figures 11, 12, 16)")
    Term.(ret (const emit $ kernel_arg $ size_arg $ method_arg $ strip_arg))

(* --- simulate ------------------------------------------------------ *)

let machine_arg =
  let doc = "Machine model: ksr2 or convex." in
  Arg.(
    value & opt string "convex" & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc)

let layout_arg =
  let doc = "Memory layout: partition, contiguous, or pad:N." in
  Arg.(value & opt string "partition" & info [ "layout" ] ~docv:"LAYOUT" ~doc)

let machine_of = function
  | "ksr2" -> Ok Machine.ksr2
  | "convex" -> Ok Machine.convex
  | m -> Error ("unknown machine " ^ m)

let jobs_arg =
  let doc =
    "Host domains for the simulation engine (default from $(b,LF_JOBS), \
     else 1 = serial; 0 or $(b,auto) uses every core).  The simulated \
     result is bit-identical for every value."
  in
  Arg.(value & opt (some string) None & info [ "jobs"; "j" ] ~docv:"J" ~doc)

let apply_jobs = function
  | None -> Ok ()
  | Some ("auto" | "0") ->
    Exec.set_default_jobs (Domain.recommended_domain_count ());
    Ok ()
  | Some s -> (
    match int_of_string_opt s with
    | Some j when j >= 1 ->
      Exec.set_default_jobs j;
      Ok ()
    | _ -> Error ("bad --jobs value " ^ s ^ " (want a positive int or auto)"))

let engine_arg =
  let doc =
    "Simulation engine: $(b,runs) (batched run-compressed replay, the \
     default), $(b,miss-only) (scalar address replay), or $(b,full) \
     (interpret values too).  All three produce bit-identical \
     observables; they differ only in wall clock."
  in
  Arg.(value & opt string "runs" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let mode_of = function
  | "runs" | "run-compressed" -> Ok Exec.Run_compressed
  | "miss-only" -> Ok Exec.Miss_only
  | "full" -> Ok Exec.Full
  | s -> Error ("unknown engine " ^ s ^ " (try runs, miss-only, full)")

let layout_of spec machine (p : Ir.program) =
  match spec with
  | "partition" ->
    Ok
      (Partition.cache_partitioned
         ~cache:
           {
             Partition.capacity =
               machine.Machine.cache.Lf_cache.Cache.capacity;
             line = machine.Machine.cache.Lf_cache.Cache.line;
             assoc = machine.Machine.cache.Lf_cache.Cache.assoc;
           }
         p.Ir.decls)
  | "contiguous" -> Ok (Partition.contiguous p.Ir.decls)
  | s when String.length s > 4 && String.sub s 0 4 = "pad:" -> (
    match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
    | Some pad -> Ok (Partition.padded ~pad p.Ir.decls)
    | None -> Error ("bad pad amount in " ^ s))
  | s -> Error ("unknown layout " ^ s)

let simulate kernel n machine_name procs strip layout_spec jobs engine =
  with_program kernel n (fun p ->
      match apply_jobs jobs with
      | Error m -> `Error (false, m)
      | Ok () -> (
      match machine_of machine_name with
      | Error m -> `Error (false, m)
      | Ok machine -> (
        match layout_of layout_spec machine p with
        | Error m -> `Error (false, m)
        | Ok layout -> (
          match mode_of engine with
          | Error m -> `Error (false, m)
          | Ok mode ->
          let u = Exec.run_unfused ~mode ~layout ~machine ~nprocs:procs p in
          let f = Exec.run_fused ~mode ~layout ~machine ~nprocs:procs ~strip p in
          Fmt.pr "%s, %d processors, layout %s@." machine.Machine.mname procs
            layout_spec;
          Fmt.pr "%-10s %14s %12s %12s@." "version" "cycles" "misses"
            "proc0-misses";
          Fmt.pr "%-10s %14.4e %12d %12d@." "unfused" u.Exec.cycles
            u.Exec.total_misses (Exec.proc0_misses u);
          Fmt.pr "%-10s %14.4e %12d %12d@." "fused" f.Exec.cycles
            f.Exec.total_misses (Exec.proc0_misses f);
          Fmt.pr "fusion gain: %+.1f%%@."
            (100.0 *. ((u.Exec.cycles /. f.Exec.cycles) -. 1.0));
          `Ok ()))))

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate fused vs unfused on a machine model")
    Term.(
      ret
        (const simulate $ kernel_arg $ size_arg $ machine_arg $ procs_arg
       $ strip_arg $ layout_arg $ jobs_arg $ engine_arg))

(* --- verify -------------------------------------------------------- *)

let verify kernel n procs strip =
  with_program kernel n (fun p ->
      let depth = depth_of p kernel in
      let d = Derive.of_program ~depth p in
      let reference = Interp.run p in
      let ok =
        List.for_all
          (fun order ->
            let sched = Schedule.fused ~nprocs:procs ~strip ~derive:d p in
            Interp.equal reference (Schedule.execute ~order sched))
          [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ]
      in
      Fmt.pr "fused execution (P=%d, strip=%d, all interleavings tested): %s@."
        procs strip
        (if ok then "bit-identical to the serial reference" else "MISMATCH");
      if ok then `Ok () else `Error (false, "verification failed"))

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify fused execution against the reference")
    Term.(ret (const verify $ kernel_arg $ size_arg $ procs_arg $ strip_arg))

(* --- tune ---------------------------------------------------------- *)

let tune_kernel_arg =
  let doc =
    "Kernel or application to tune: ll18, calc, filter, jacobi, fig9, \
     tomcatv, hydro2d, spem, or a .loop file."
  in
  Arg.(value & opt string "ll18" & info [ "kernel"; "k" ] ~docv:"KERNEL" ~doc)

let tune_size_arg =
  let doc = "Array size per dimension (default 128, or 64 with --quick)." in
  Arg.(value & opt (some int) None & info [ "size"; "n" ] ~docv:"N" ~doc)

let quick_arg =
  let doc = "Reduced problem sizes for a fast run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let search_arg =
  let doc =
    "Search driver: auto, exhaustive, greedy[:budget], beam[:width]."
  in
  Arg.(value & opt string "auto" & info [ "search" ] ~docv:"DRIVER" ~doc)

(* Tune every fusible sequence of an application model; the never-fused
   remainder runs unfused under both configurations, so it contributes
   the same cycles to each side of the comparison. *)
let tune_app ~driver ~machine ~nprocs (app : Apps.t) =
  let cache = TCost.create_cache () in
  Fmt.pr "autotuning %s on %s, %d processors (%d fusible sequences)@."
    app.Apps.app_name machine.Machine.mname nprocs
    (List.length app.Apps.sequences);
  Fmt.pr "  %-14s %14s %14s %8s  %s@." "sequence" "default" "tuned" "gain"
    "selected configuration";
  let tuned = ref 0.0 and dflt = ref 0.0 and failed = ref None in
  List.iter
    (fun (seq : Ir.program) ->
      match Tune.tune ~cache ~driver ~machine ~nprocs seq with
      | Error m -> if !failed = None then failed := Some (seq.Ir.pname, m)
      | Ok o ->
        tuned := !tuned +. o.TSearch.best_cost.TCost.e_cycles;
        dflt := !dflt +. o.TSearch.default_cost.TCost.e_cycles;
        Fmt.pr "  %-14s %a@." seq.Ir.pname Tune.pp_row o)
    app.Apps.sequences;
  match !failed with
  | Some (name, m) ->
    `Error (false, Printf.sprintf "tuning sequence %s failed: %s" name m)
  | None ->
    (match app.Apps.remainder with
    | None -> ()
    | Some rem ->
      let layout =
        Partition.cache_partitioned
          ~cache:(Lf_tune.Space.cache_shape machine)
          rem.Ir.decls
      in
      let r = Exec.run_unfused ~layout ~machine ~nprocs rem in
      let add = float_of_int app.Apps.remainder_reps *. r.Exec.cycles in
      tuned := !tuned +. add;
      dflt := !dflt +. add;
      Fmt.pr "  %-14s %14.4e cycles (never fused, x%d)@." "remainder"
        r.Exec.cycles app.Apps.remainder_reps);
    let st = TCost.stats cache in
    Fmt.pr "total: default %.4e cycles, tuned %.4e cycles (%+.1f%%)@." !dflt
      !tuned
      (100.0 *. ((!dflt /. !tuned) -. 1.0));
    Fmt.pr "memo cache: %d entries, %d hits, %d cold evaluations@."
      st.TCost.entries st.TCost.hits st.TCost.misses;
    `Ok ()

let tune kernel size machine_name procs search quick jobs =
  match apply_jobs jobs with
  | Error m -> `Error (false, m)
  | Ok () -> (
  match machine_of machine_name with
  | Error m -> `Error (false, m)
  | Ok machine -> (
    match Tune.driver_of_string search with
    | Error m -> `Error (false, m)
    | Ok driver -> (
      let app =
        match kernel with
        | "tomcatv" ->
          let n =
            match size with Some n -> n | None -> if quick then 65 else 513
          in
          Some (Apps.tomcatv ~n ())
        | "hydro2d" ->
          Some
            (if quick then Apps.hydro2d ~rows:80 ~cols:40 ()
             else Apps.hydro2d ())
        | "spem" ->
          Some
            (if quick then Apps.spem ~d0:16 ~d1:17 ~d2:17 ()
             else Apps.spem ())
        | _ -> None
      in
      match app with
      | Some app -> tune_app ~driver ~machine ~nprocs:procs app
      | None ->
        let n =
          match size with Some n -> n | None -> if quick then 64 else 128
        in
        with_program kernel n (fun p ->
            let depth = depth_of p kernel in
            Fmt.pr "autotuning %s (n=%d) on %s, %d processors@." kernel n
              machine.Machine.mname procs;
            match Tune.tune ~depth ~driver ~machine ~nprocs:procs p with
            | Error m -> `Error (false, m)
            | Ok o ->
              Fmt.pr "%a" Tune.pp_outcome o;
              `Ok ()))))

let tune_cmd =
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Autotune fusion clustering, strip size and cache layout on the \
          simulated machine (lf_tune)")
    Term.(
      ret
        (const tune $ tune_kernel_arg $ tune_size_arg $ machine_arg
       $ procs_arg $ search_arg $ quick_arg $ jobs_arg))

(* --- profile ------------------------------------------------------- *)

let profile_kernel_arg =
  let doc = "Kernel: ll18, calc, filter, jacobi, fig9, or a .loop file." in
  Arg.(value & opt string "ll18" & info [ "kernel"; "k" ] ~docv:"KERNEL" ~doc)

let by_arg =
  let doc = "Attribution grouping: array, phase, or proc." in
  Arg.(value & opt string "array" & info [ "by" ] ~docv:"GROUP" ~doc)

let trace_arg =
  let doc = "Write Chrome trace-event JSON to $(docv) (chrome://tracing)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let unfused_arg =
  let doc = "Profile the unfused schedule instead of the fused one." in
  Arg.(value & flag & info [ "unfused" ] ~doc)

let steps_arg =
  let doc = "Time steps (repetitions of the whole schedule)." in
  Arg.(value & opt int 1 & info [ "steps" ] ~docv:"T" ~doc)

(* Align the sink's layout tag with the Space.layout_to_string
   vocabulary so the recorded profile keys calibration factors. *)
let layout_tag = function "partition" -> "partitioned" | s -> s

let profile kernel n machine_name procs strip layout_spec by trace unfused
    steps jobs engine =
  with_program kernel n (fun p ->
      match apply_jobs jobs with
      | Error m -> `Error (false, m)
      | Ok () -> (
      match machine_of machine_name with
      | Error m -> `Error (false, m)
      | Ok machine -> (
        match layout_of layout_spec machine p with
        | Error m -> `Error (false, m)
        | Ok layout -> (
          match
            match by with
            | "array" -> Ok Lf_obs.Obs.By_array
            | "phase" -> Ok Lf_obs.Obs.By_phase
            | "proc" -> Ok Lf_obs.Obs.By_proc
            | s -> Error ("unknown grouping " ^ s ^ " (try array, phase, proc)")
          with
          | Error m -> `Error (false, m)
          | Ok by -> (
            match mode_of engine with
            | Error m -> `Error (false, m)
            | Ok mode ->
            let sink = Lf_obs.Obs.create ~layout:(layout_tag layout_spec) () in
            let r =
              if unfused then
                Exec.run_unfused ~sink ~mode ~layout ~machine ~nprocs:procs
                  ~steps p
              else
                Exec.run_fused ~sink ~mode ~layout ~machine ~nprocs:procs
                  ~strip ~steps p
            in
            Fmt.pr "%s %s (n=%d) on %s: %d processors, layout %s, %d phases@."
              (if unfused then "unfused" else "fused")
              kernel n machine.Machine.mname procs layout_spec
              (Lf_obs.Obs.nphases sink);
            Fmt.pr "cycles %.4e (barrier %.4e), misses %d@.@." r.Exec.cycles
              r.Exec.barrier_cycles r.Exec.total_misses;
            Fmt.pr "%a" (Lf_obs.Obs.pp_table ~by) sink;
            let tot = Lf_obs.Obs.totals sink in
            Fmt.pr
              "@.conflict attribution: %d cross-array, %d self/capacity \
               (of %d non-cold misses)@."
              tot.Lf_obs.Obs.t_cross tot.Lf_obs.Obs.t_self
              (tot.Lf_obs.Obs.t_misses - tot.Lf_obs.Obs.t_cold);
            Fmt.pr "calibration factor (misses/cold) for layout %s: %.3f@."
              (Lf_obs.Obs.layout sink)
              (Lf_obs.Obs.miss_factor sink);
            (match trace with
            | None -> ()
            | Some file ->
              let oc = open_out file in
              output_string oc (Lf_obs.Obs.trace_json sink);
              close_out oc;
              Fmt.pr "trace: %d events written to %s@."
                (List.length (Lf_obs.Obs.events sink))
                file);
            `Ok ())))))

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Simulate with event counters attached: per-array/phase/processor \
          attribution tables and a Chrome trace (lf_obs)")
    Term.(
      ret
        (const profile $ profile_kernel_arg $ size_arg $ machine_arg
       $ procs_arg $ strip_arg $ layout_arg $ by_arg $ trace_arg
       $ unfused_arg $ steps_arg $ jobs_arg $ engine_arg))

(* --- pipeline ------------------------------------------------------ *)

let pipeline kernel n procs strip =
  with_program kernel n (fun p ->
      let module Distribute = Lf_core.Distribute in
      let module Cluster = Lf_core.Cluster in
      let module Legality = Lf_core.Legality in
      Fmt.pr "input: %d nests@." (List.length p.Ir.nests);
      Fmt.pr "plain fusion verdict: %s@."
        (Legality.verdict_to_string (Legality.classify p));
      let p = Distribute.distribute p in
      Fmt.pr "after distribution: %d nests@." (List.length p.Ir.nests);
      let gs = Cluster.groups p in
      Fmt.pr "@.fusion groups:@.%a" Cluster.pp_groups gs;
      let sched = Cluster.schedule ~nprocs:procs ~strip p gs in
      let reference = Interp.run p in
      let ok =
        List.for_all
          (fun order ->
            Interp.equal reference (Schedule.execute ~order sched))
          [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ]
      in
      Fmt.pr "@.clustered schedule on %d processors: %s@." procs
        (if ok then "bit-identical to the serial reference" else "MISMATCH");
      let r = Exec.run ~machine:Machine.convex sched in
      Fmt.pr "simulated on %s: %.4e cycles, %d misses@."
        Machine.convex.Machine.mname r.Exec.cycles r.Exec.total_misses;
      if ok then `Ok () else `Error (false, "verification failed"))

let pipeline_cmd =
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Distribute, cluster, fuse and verify a whole sequence")
    Term.(ret (const pipeline $ kernel_arg $ size_arg $ procs_arg $ strip_arg))

let main_cmd =
  Cmd.group
    (Cmd.info "lfc" ~version:"1.0"
       ~doc:"Shift-and-peel loop fusion (Manjikian & Abdelrahman, ICPP 1995)")
    [ analyze_cmd; derive_cmd; emit_cmd; simulate_cmd; verify_cmd;
      pipeline_cmd; profile_cmd; tune_cmd ]

let () = exit (Cmd.eval main_cmd)
