(* lfc: command-line front end to the loop-fusion "compiler".

   Subcommands:
     lfc analyze  <kernel>   dependence multigraph + doall verification
     lfc derive   <kernel>   shift-and-peel amounts (Table 2)
     lfc emit     <kernel>   generated fused code (Figures 11/12/16)
     lfc simulate <kernel>   run on the simulated KSR2/Convex
     lfc run      <kernel>   execute natively on the host's cores (lf_native)
     lfc trace    <trace>    run a lazy whole-array trace: fuse the DAG,
                             prove bit-identity, execute sim or native
     lfc transform <kernel> <script.lft>  apply a transformation script
     lfc verify   <kernel>   check fused execution against the reference
     lfc profile  --kernel K simulate with event counters (lf_obs)
     lfc tune     --kernel K autotune fusion/strip/layout on the simulator
                             (--objective wallclock tunes on measured time)
     lfc cache    stats|gc|clear  manage the persistent result store

   Kernels: ll18, calc, filter, jacobi, fig9 (tune also accepts the
   application models tomcatv, hydro2d, spem).

   Shared argument vocabulary (--jobs, --engine, --machine, --layout,
   --json, --cold, ...) lives in bin/common.ml.  Simulating subcommands
   build Lf_machine.Sim.request values and execute them through
   Lf_batch.Batch, so identical configurations are answered from the
   on-disk result store under _lf_cache/. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Dep = Lf_dep.Dep
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Codegen = Lf_core.Codegen
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim
module Batch = Lf_batch.Batch
module Apps = Lf_kernels.Apps
module Tune = Lf_tune.Tune
module TSearch = Lf_tune.Search
module TCost = Lf_tune.Cost
module Native = Lf_native.Native
module Bench_timer = Lf_native.Bench_timer

open Cmdliner
open Common

(* --- analyze ------------------------------------------------------- *)

let analyze kernel n =
  with_program kernel n (fun p ->
      Fmt.pr "%a@." Ir.pp_program p;
      (match Dep.verify_program p with
      | Ok () -> Fmt.pr "doall verification: all parallel levels are valid@."
      | Error m -> Fmt.pr "doall verification FAILED: %s@." m);
      let depth = depth_of p kernel in
      let g = Dep.build ~depth p in
      Fmt.pr "@.dependence chain multigraph (depth %d, %d edges):@." depth
        (List.length g.Dep.edges);
      List.iter (fun e -> Fmt.pr "  %a@." Dep.pp_edge e) g.Dep.edges;
      `Ok ())

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print the program and its dependence multigraph")
    Term.(ret (const analyze $ kernel_arg $ size_arg))

(* --- derive -------------------------------------------------------- *)

let derive kernel n =
  with_program kernel n (fun p ->
      let depth = depth_of p kernel in
      match Derive.of_program ~depth p with
      | exception Derive.Not_applicable m -> `Error (false, m)
      | d ->
        Fmt.pr "%a" Derive.pp d;
        Fmt.pr "iteration count threshold N_t:";
        for dim = 0 to depth - 1 do
          Fmt.pr " %d" (Derive.threshold d ~dim)
        done;
        Fmt.pr "@.";
        `Ok ())

let derive_cmd =
  Cmd.v
    (Cmd.info "derive" ~doc:"Derive shift-and-peel amounts (paper Table 2)")
    Term.(ret (const derive $ kernel_arg $ size_arg))

(* --- emit ---------------------------------------------------------- *)

let method_arg =
  let doc = "Code generation method: direct, strip or multidim." in
  Arg.(value & opt string "strip" & info [ "method" ] ~docv:"M" ~doc)

let emit kernel n method_ strip =
  with_program kernel n (fun p ->
      let depth = depth_of p kernel in
      let d = Derive.of_program ~depth p in
      match method_ with
      | "direct" -> (
        match Codegen.direct_to_string p d with
        | exception Codegen.Unsupported m -> `Error (false, m)
        | s ->
          Fmt.pr "%s@." s;
          `Ok ())
      | "strip" -> (
        (* multidim programs dispatch to the multidim renderer *)
        match Codegen.strip_mined_to_string ~strip p d with
        | exception Codegen.Unsupported m -> `Error (false, m)
        | s ->
          Fmt.pr "%s@." s;
          `Ok ())
      | "multidim" ->
        Fmt.pr "%s@." (Codegen.multidim_to_string ~strip p d);
        `Ok ()
      | m -> `Error (false, "unknown method " ^ m))

let emit_cmd =
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit fused code (Figures 11, 12, 16)")
    Term.(ret (const emit $ kernel_arg $ size_arg $ method_arg $ strip_arg))

(* --- simulate ------------------------------------------------------ *)

let simulate kernel n machine_name procs strip layout_spec opts_result =
  with_program kernel n (fun p ->
      with_run_opts opts_result (fun opts ->
      match machine_of machine_name with
      | Error m -> `Error (false, m)
      | Ok machine -> (
        match layout_of layout_spec machine p with
        | Error m -> `Error (false, m)
        | Ok layout -> (
          let mode = opts.Run_opts.engine in
          let requests =
            [
              Sim.unfused ~layout ~mode ~machine ~nprocs:procs p;
              Sim.fused ~layout ~mode ~machine ~nprocs:procs ~strip p;
            ]
          in
          let outcomes, summary = Batch.run_with opts requests in
          match Batch.results_exn outcomes with
          | exception Failure m -> `Error (false, m)
          | [| u; f |] ->
            Fmt.pr "%s, %d processors, layout %s@." machine.Machine.mname
              procs layout_spec;
            Fmt.pr "%-10s %14s %12s %12s  %s@." "version" "cycles" "misses"
              "proc0-misses" "source";
            let source (o : Batch.outcome) =
              if o.Batch.from_store then "store" else "computed"
            in
            Fmt.pr "%-10s %14.4e %12d %12d  %s@." "unfused" u.Exec.cycles
              u.Exec.total_misses (Exec.proc0_misses u) (source outcomes.(0));
            Fmt.pr "%-10s %14.4e %12d %12d  %s@." "fused" f.Exec.cycles
              f.Exec.total_misses (Exec.proc0_misses f) (source outcomes.(1));
            Fmt.pr "fusion gain: %+.1f%%@."
              (100.0 *. ((u.Exec.cycles /. f.Exec.cycles) -. 1.0));
            Fmt.pr "store: %a@." Batch.pp_summary summary;
            `Ok ()
          | _ -> assert false))))

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate fused vs unfused on a machine model")
    Term.(
      ret
        (const simulate $ kernel_arg $ size_arg $ machine_arg $ procs_arg
       $ strip_arg $ layout_arg $ run_opts_term))

(* --- verify -------------------------------------------------------- *)

let verify kernel n procs strip =
  with_program kernel n (fun p ->
      let depth = depth_of p kernel in
      let d = Derive.of_program ~depth p in
      let reference = Interp.run p in
      let ok =
        List.for_all
          (fun order ->
            let sched = Schedule.fused ~nprocs:procs ~strip ~derive:d p in
            Interp.equal reference (Schedule.execute ~order sched))
          [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ]
      in
      Fmt.pr "fused execution (P=%d, strip=%d, all interleavings tested): %s@."
        procs strip
        (if ok then "bit-identical to the serial reference" else "MISMATCH");
      if ok then `Ok () else `Error (false, "verification failed"))

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify fused execution against the reference")
    Term.(ret (const verify $ kernel_arg $ size_arg $ procs_arg $ strip_arg))

(* --- run ----------------------------------------------------------- *)

let backend_arg =
  let doc =
    "Execution backend: $(b,native) (real OCaml domains on the host's \
     cores, measured wall-clock — the default) or $(b,sim) (the cycle \
     simulator, for side-by-side comparison)."
  in
  Arg.(value & opt string "native" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let reps_arg =
  let doc = "Timed repetitions (native backend)." in
  Arg.(
    value
    & opt int Bench_timer.default_policy.Bench_timer.repetitions
    & info [ "reps" ] ~docv:"K" ~doc)

let warmup_arg =
  let doc = "Untimed warmup repetitions (native backend)." in
  Arg.(
    value
    & opt int Bench_timer.default_policy.Bench_timer.warmup
    & info [ "warmup" ] ~docv:"W" ~doc)

let run_unfused_arg =
  let doc = "Alias for --schedule unfused." in
  Arg.(value & flag & info [ "unfused" ] ~doc)

let run_schedule_arg =
  let doc =
    "Schedule to execute: $(b,fused) (shift-and-peel, the default), \
     $(b,unfused) (one phase per nest), or $(b,wavefront) (tiled \
     anti-diagonals; --strip is the tile size)."
  in
  Arg.(value & opt string "fused" & info [ "schedule" ] ~docv:"SCHED" ~doc)

let run_script_arg =
  let doc =
    "Build the schedule from a .lft transformation script (the steps are \
     legality-checked and realized exactly as `lfc transform --simulate` \
     does) instead of --schedule."
  in
  Arg.(value & opt (some string) None & info [ "script" ] ~docv:"FILE.lft" ~doc)

(* Execute a schedule for real: every native run is verified
   bit-identical to the serial reference interpreter before it is
   timed, and a mismatch is a hard error — measured numbers for wrong
   answers are worthless. *)
let run_native kernel n p sched variant procs strip steps reps warmup json =
  (match Native.verify ~steps sched with
  | Error m -> `Error (false, "bit-identity verification failed: " ^ m)
  | Ok () ->
    let policy =
      { Bench_timer.default_policy with warmup; repetitions = reps }
    in
    let t = Native.measure ~policy ~steps sched in
    let m = t.Native.t_measure in
    if json then
      Fmt.pr
        "{\"backend\": \"native\", \"kernel\": \"%s\", \"variant\": \
         \"%s\", \"n\": %d, \"procs\": %d, \"strip\": %d, \"steps\": %d, \
         \"bit_identical\": true, \"min_s\": %.9f, \"median_s\": %.9f, \
         \"reps\": %d, \"kept\": %d, \"warmup\": %d, \"checksum\": %.17g}@."
        (String.escaped kernel) variant n procs strip steps
        m.Bench_timer.min_s m.Bench_timer.median_s
        (Array.length m.Bench_timer.samples) m.Bench_timer.kept
        policy.Bench_timer.warmup t.Native.t_checksum
    else begin
      Fmt.pr "%s %s (n=%d) native on %d domains, strip %d, %d step(s)@."
        variant p.Ir.pname n procs strip steps;
      Fmt.pr "bit-identity vs reference interpreter: OK@.";
      Fmt.pr "measured: %a@." Bench_timer.pp m;
      Fmt.pr "checksum %.17g@." t.Native.t_checksum
    end;
    `Ok ())

let run_sim kernel n p sched variant machine_name procs opts json =
  ignore kernel;
  match machine_of machine_name with
  | Error m -> `Error (false, m)
  | Ok machine ->
    let req =
      Sim.of_schedule ~mode:opts.Run_opts.engine ~machine sched
    in
    let r = Batch.run_one_with opts req in
    if json then
      Fmt.pr
        "{\"backend\": \"sim\", \"kernel\": \"%s\", \"variant\": \"%s\", \
         \"n\": %d, \"procs\": %d, \"machine\": \"%s\", \"cycles\": %.17g, \
         \"barrier_cycles\": %.17g, \"misses\": %d}@."
        (String.escaped p.Ir.pname) variant n procs machine.Machine.mname
        r.Exec.cycles r.Exec.barrier_cycles r.Exec.total_misses
    else
      Fmt.pr "%s %s (n=%d) on simulated %s, %d processors: %.4e cycles, %d \
              misses@."
        variant p.Ir.pname n machine.Machine.mname procs r.Exec.cycles
        r.Exec.total_misses;
    `Ok ()

let run_exec kernel n backend machine_name procs strip steps schedule_name
    unfused script reps warmup opts_result json =
  with_program kernel n (fun p ->
      with_run_opts opts_result @@ fun opts ->
      let depth = depth_of p kernel in
      let variant = if unfused then "unfused" else schedule_name in
      let build () =
        match script with
        | Some path -> (
          let module Script = Lf_script.Script in
          let module Realize = Lf_script.Realize in
          let module Lft = Lf_front.Lft in
          match Lft.parse_file path with
          | exception Sys_error m -> Error m
          | exception (Lft.Error _ as e) ->
            Error (Option.get (Lft.error_to_string ~file:path e))
          | steps_ -> (
            match Script.run p steps_ with
            | Error e -> Error (Script.error_to_string e)
            | Ok st ->
              Ok
                ( "script:" ^ Filename.basename path,
                  Realize.schedule ~nprocs:procs st )))
        | None -> (
          match variant with
          | "unfused" -> Ok ("unfused", Schedule.unfused ~nprocs:procs p)
          | "fused" ->
            Ok
              ( "fused",
                Schedule.fused ~nprocs:procs ~strip
                  ~derive:(Derive.of_program ~depth p) p )
          | "wavefront" ->
            Ok
              ( "wavefront",
                Lf_core.Wavefront.schedule ~tile:strip ~nprocs:procs p )
          | s ->
            Error ("unknown schedule " ^ s ^ " (try fused, unfused, wavefront)"))
      in
      match build () with
      | exception Schedule.Illegal m -> `Error (false, m)
      | exception Derive.Not_applicable m -> `Error (false, m)
      | exception Invalid_argument m -> `Error (false, m)
      | Error m -> `Error (false, m)
      | Ok (variant, sched) -> (
        match backend with
        | "native" ->
          run_native kernel n p sched variant procs strip steps reps warmup
            json
        | "sim" ->
          run_sim kernel n p sched variant machine_name procs opts json
        | b -> `Error (false, "unknown backend " ^ b ^ " (try native, sim)")))

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a schedule (fused, unfused, wavefront, or one built by a \
          .lft script) natively on the host's cores (one domain per \
          simulated processor), verified bit-identical to the reference \
          interpreter before any timing; or on the simulator with \
          --backend sim")
    Term.(
      ret
        (const run_exec $ kernel_arg $ size_arg $ backend_arg $ machine_arg
       $ procs_arg $ strip_arg $ steps_arg $ run_schedule_arg
       $ run_unfused_arg $ run_script_arg $ reps_arg $ warmup_arg
       $ run_opts_term $ json_arg))

(* --- trace ---------------------------------------------------------- *)

module Lazy_ctx = Lf_lazy.Ctx
module Lazy_node = Lf_lazy.Node
module Lazy_plan = Lf_lazy.Plan
module Lazy_eval = Lf_lazy.Eval
module Lazy_trace = Lf_lazy.Trace

let trace_input_arg =
  let doc =
    "Recorded trace to run: a built-in workload ($(b,heat), \
     $(b,pipeline), $(b,mismatch), $(b,blur2)) or a trace file — one \
     whole-array op per line (source/fill/map/zip/force; see \
     lib/lazy/trace.mli for the grammar)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)

let trace_backend_arg =
  let doc =
    "Execution backend: $(b,sim) (each fused block becomes a \
     Sim.request dispatched through the batch layer and the result \
     store — the default) or $(b,native) (each block verified \
     bit-identical against the reference interpreter and timed on \
     real host domains)."
  in
  Arg.(value & opt string "sim" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let no_fuse_arg =
  let doc =
    "Disable DAG fusion: one block per recorded op (the op-at-a-time \
     baseline the bench compares against)."
  in
  Arg.(value & flag & info [ "no-fuse" ] ~doc)

let trace_require_warm_arg =
  let doc =
    "Fail unless every block request is answered by the result store \
     (the CI cold-then-warm assertion; --backend sim only)."
  in
  Arg.(value & flag & info [ "require-warm" ] ~doc)

let envs_bit_identical (a : Lazy_eval.env) (b : Lazy_eval.env) =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k v acc ->
         acc
         &&
         match Hashtbl.find_opt b k with
         | Some v' ->
           Array.length v = Array.length v'
           && Array.for_all2
                (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                v v'
         | None -> false)
       a true

let trace_exec input n machine_name procs strip backend no_fuse require_warm
    opts_result json =
  with_run_opts opts_result @@ fun opts ->
  let loaded =
    match Lazy_trace.builtin_text input with
    | Some text -> Lazy_trace.of_string ~n text
    | None ->
      if Sys.file_exists input then Lazy_trace.load ~n input
      else
        Error
          (Printf.sprintf "unknown trace %s (builtins: %s; or a trace file)"
             input
             (String.concat ", " (List.map fst Lazy_trace.builtins)))
  in
  match loaded with
  | Error m -> `Error (false, m)
  | Ok (cx, outs) -> (
    match Lazy_ctx.plan ~fuse:(not no_fuse) ~nprocs:procs ~strip cx with
    | exception Lazy_node.Error m -> `Error (false, m)
    | plan -> (
      let blocks = plan.Lazy_plan.blocks in
      if not json then begin
        Fmt.pr "trace %s (n=%d): %d op(s) recorded, %d block(s)@." input n
          (Lazy_plan.ops plan) (List.length blocks);
        List.iter
          (fun (b : Lazy_plan.block) ->
            Fmt.pr "  block %d: %d op(s)%s -> %s@." b.Lazy_plan.b_index
              (List.length b.Lazy_plan.b_nodes)
              (if b.Lazy_plan.b_fused then " fused (shift-and-peel)" else "")
              (String.concat ", " b.Lazy_plan.b_written);
            match b.Lazy_plan.b_reason with
            | None -> ()
            | Some r ->
              Fmt.pr "    split from previous block: %a@." Lazy_plan.pp_reason
                r)
          blocks
      end;
      (* every backend first proves the plan equivalent to eager
         op-at-a-time interpretation — numbers for wrong answers are
         worthless (same discipline as `lfc run`) *)
      let reference = Lazy_eval.eager plan in
      let env = Lazy_eval.materialise plan in
      if not (envs_bit_identical reference env) then
        `Error
          ( false,
            "planned execution is not bit-identical to eager evaluation \
             (lazy-frontend bug; please report)" )
      else begin
        let checksums =
          List.map
            (fun (name, v) ->
              let cname = Lazy_plan.name_of plan v.Lazy_node.v_node in
              let a =
                match Hashtbl.find_opt env cname with
                | Some a -> a
                | None -> [||]
              in
              (name, Array.fold_left ( +. ) 0.0 a))
            outs
        in
        if not json then begin
          Fmt.pr "bit-identity planned vs eager: OK@.";
          List.iter
            (fun (name, s) -> Fmt.pr "  output %s checksum %.17g@." name s)
            checksums
        end;
        let json_blocks () =
          String.concat ", "
            (List.map
               (fun (b : Lazy_plan.block) ->
                 Printf.sprintf
                   "{\"index\": %d, \"ops\": %d, \"fused\": %b%s}"
                   b.Lazy_plan.b_index
                   (List.length b.Lazy_plan.b_nodes)
                   b.Lazy_plan.b_fused
                   (match b.Lazy_plan.b_reason with
                   | None -> ""
                   | Some r ->
                     Printf.sprintf ", \"split\": \"%s\""
                       (String.escaped
                          (Fmt.str "%a" Lazy_plan.pp_reason r))))
               blocks)
        in
        let json_checksums () =
          String.concat ", "
            (List.map
               (fun (name, s) ->
                 Printf.sprintf "{\"name\": \"%s\", \"checksum\": %.17g}"
                   (String.escaped name) s)
               checksums)
        in
        match backend with
        | "sim" -> (
          match machine_of machine_name with
          | Error m -> `Error (false, m)
          | Ok machine ->
            let outcomes, summary = Lazy_eval.simulate ~opts ~machine plan in
            let cycles = ref 0.0 and misses = ref 0 in
            Array.iteri
              (fun i (o : Batch.outcome) ->
                match o.Batch.result with
                | Error _ -> ()
                | Ok r ->
                  cycles := !cycles +. r.Exec.cycles;
                  misses := !misses + r.Exec.total_misses;
                  if not json then
                    Fmt.pr "  block %d on %s: %.4e cycles, %d misses — %s@."
                      i machine.Machine.mname r.Exec.cycles
                      r.Exec.total_misses
                      (if o.Batch.from_store then "store" else "computed"))
              outcomes;
            (match Batch.results_exn outcomes with
            | exception Failure m -> `Error (false, m)
            | _ ->
              let warm =
                Array.for_all (fun (o : Batch.outcome) -> o.Batch.from_store)
                  outcomes
              in
              if json then
                Fmt.pr
                  "{\"trace\": \"%s\", \"n\": %d, \"backend\": \"sim\", \
                   \"machine\": \"%s\", \"fused\": %b, \"blocks\": [%s], \
                   \"bit_identical\": true, \"cycles\": %.17g, \"misses\": \
                   %d, \"hits\": %d, \"computed\": %d, \"outputs\": [%s]}@."
                  (String.escaped input) n machine.Machine.mname
                  (not no_fuse) (json_blocks ()) !cycles !misses
                  summary.Batch.hits summary.Batch.computed
                  (json_checksums ())
              else begin
                Fmt.pr "total: %.4e cycles, %d misses@." !cycles !misses;
                Fmt.pr "store: %a@." Batch.pp_summary summary
              end;
              if require_warm && not warm then
                `Error
                  ( false,
                    "--require-warm: at least one block was computed, not \
                     answered by the store" )
              else `Ok ()))
        | "native" ->
          if require_warm then
            `Error (false, "--require-warm only applies to --backend sim")
          else begin
            let nenv = Lazy_eval.env_create () in
            let rec go wall = function
              | [] -> Ok wall
              | (b : Lazy_plan.block) :: tl -> (
                match
                  Native.verify ~init:(Lazy_eval.init_of nenv)
                    b.Lazy_plan.b_sched
                with
                | Error m ->
                  Error
                    (Printf.sprintf
                       "block %d bit-identity verification failed: %s"
                       b.Lazy_plan.b_index m)
                | Ok () ->
                  let t = Native.measure b.Lazy_plan.b_sched in
                  if not json then
                    Fmt.pr "  block %d native on %d domain(s): %a@."
                      b.Lazy_plan.b_index procs Bench_timer.pp
                      t.Native.t_measure;
                  Lazy_eval.advance nenv b;
                  go (wall +. t.Native.t_measure.Bench_timer.min_s) tl)
            in
            match go 0.0 blocks with
            | Error m -> `Error (false, m)
            | Ok wall ->
              if not (envs_bit_identical reference nenv) then
                `Error
                  ( false,
                    "native block stepping diverged from eager evaluation \
                     (lazy-frontend bug; please report)" )
              else begin
                if json then
                  Fmt.pr
                    "{\"trace\": \"%s\", \"n\": %d, \"backend\": \
                     \"native\", \"procs\": %d, \"fused\": %b, \"blocks\": \
                     [%s], \"bit_identical\": true, \"min_s\": %.9f, \
                     \"outputs\": [%s]}@."
                    (String.escaped input) n procs (not no_fuse)
                    (json_blocks ()) wall (json_checksums ())
                else Fmt.pr "total min-of-k wall: %.9f s@." wall;
                `Ok ()
              end
          end
        | b -> `Error (false, "unknown backend " ^ b ^ " (try sim, native)")
      end))

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a recorded whole-array operation trace through the lazy \
          frontend: partition the DAG into maximal fusible blocks \
          (shift-and-peel legality; shape mismatches and dependence \
          cycles split with typed reasons), prove the plan bit-identical \
          to eager op-at-a-time evaluation, then execute the blocks on \
          the simulator (through the batch layer and result store) or \
          natively on host domains.")
    Term.(
      ret
        (const trace_exec $ trace_input_arg $ size_arg $ machine_arg
       $ procs_arg $ strip_arg $ trace_backend_arg $ no_fuse_arg
       $ trace_require_warm_arg $ run_opts_term $ json_arg))

(* --- tune ---------------------------------------------------------- *)

let tune_kernel_arg =
  let doc =
    "Kernel or application to tune: ll18, calc, filter, jacobi, fig9, \
     tomcatv, hydro2d, spem, or a .loop file."
  in
  Arg.(value & opt string "ll18" & info [ "kernel"; "k" ] ~docv:"KERNEL" ~doc)

let tune_size_arg =
  let doc = "Array size per dimension (default 128, or 64 with --quick)." in
  Arg.(value & opt (some int) None & info [ "size"; "n" ] ~docv:"N" ~doc)

let quick_arg =
  let doc = "Reduced problem sizes for a fast run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let search_arg =
  let doc =
    "Search driver: auto, exhaustive, greedy[:budget], beam[:width]."
  in
  Arg.(value & opt string "auto" & info [ "search" ] ~docv:"DRIVER" ~doc)

let objective_arg =
  let doc =
    "What the search minimises: $(b,cycles) (simulated execution time, \
     the default) or $(b,wallclock) (measured seconds of the native \
     multicore execution — every evaluated candidate is verified \
     bit-identical to the reference interpreter and then timed on \
     --procs real domains; measured times are never persisted in the \
     result store)."
  in
  Arg.(value & opt string "cycles" & info [ "objective" ] ~docv:"OBJ" ~doc)

(* Tune every fusible sequence of an application model; the never-fused
   remainder runs unfused under both configurations, so it contributes
   the same cycles to each side of the comparison. *)
let tune_app ~driver ~objective ?store ~machine ~nprocs (app : Apps.t) =
  let cache = TCost.create_cache () in
  Fmt.pr "autotuning %s on %s, %d processors (%d fusible sequences)@."
    app.Apps.app_name machine.Machine.mname nprocs
    (List.length app.Apps.sequences);
  Fmt.pr "  %-14s %14s %14s %8s  %s@." "sequence" "default" "tuned" "gain"
    "selected configuration";
  let tuned = ref 0.0 and dflt = ref 0.0 and failed = ref None in
  List.iter
    (fun (seq : Ir.program) ->
      match Tune.tune ~cache ?store ~driver ~objective ~machine ~nprocs seq with
      | Error m -> if !failed = None then failed := Some (seq.Ir.pname, m)
      | Ok o ->
        tuned := !tuned +. o.TSearch.best_cost.TCost.e_cycles;
        dflt := !dflt +. o.TSearch.default_cost.TCost.e_cycles;
        Fmt.pr "  %-14s %a@." seq.Ir.pname Tune.pp_row o)
    app.Apps.sequences;
  match !failed with
  | Some (name, m) ->
    `Error (false, Printf.sprintf "tuning sequence %s failed: %s" name m)
  | None ->
    let unit_ =
      match objective with
      | TSearch.Cycles -> "cycles"
      | TSearch.Wallclock -> "s measured"
    in
    (match app.Apps.remainder with
    | None -> ()
    | Some rem ->
      (* the never-fused remainder contributes the same amount to both
         sides; price it in the objective's own unit *)
      let per_rep =
        match objective with
        | TSearch.Cycles ->
          let layout =
            Partition.cache_partitioned
              ~cache:(Lf_tune.Space.cache_shape machine)
              rem.Ir.decls
          in
          let r =
            Batch.run_one ?store
              (Sim.unfused ~layout ~mode:Sim.Run_compressed ~machine ~nprocs
                 rem)
          in
          r.Exec.cycles
        | TSearch.Wallclock ->
          let t = Native.measure (Schedule.unfused ~nprocs rem) in
          t.Native.t_measure.Bench_timer.min_s
      in
      let add = float_of_int app.Apps.remainder_reps *. per_rep in
      tuned := !tuned +. add;
      dflt := !dflt +. add;
      Fmt.pr "  %-14s %14.4e %s (never fused, x%d)@." "remainder" per_rep
        unit_ app.Apps.remainder_reps);
    let st = TCost.stats cache in
    Fmt.pr "total: default %.4e %s, tuned %.4e %s (%+.1f%%)@." !dflt unit_
      !tuned unit_
      (100.0 *. ((!dflt /. !tuned) -. 1.0));
    Fmt.pr "memo cache: %d entries, %d hits, %d cold evaluations@."
      st.TCost.entries st.TCost.hits st.TCost.misses;
    Fmt.pr "result store: %d hits, %d simulations run@." (Batch.hit_count ())
      (Batch.computed_count ());
    `Ok ()

let tune kernel size machine_name procs search objective quick opts_result =
  with_run_opts opts_result @@ fun opts ->
  (match machine_of machine_name with
  | Error m -> `Error (false, m)
  | Ok machine -> (
    match Tune.driver_of_string search with
    | Error m -> `Error (false, m)
    | Ok driver -> (
      match Tune.objective_of_string objective with
      | Error m -> `Error (false, m)
      | Ok objective -> (
      let store = Batch.store_of_opts opts in
      let app =
        match kernel with
        | "tomcatv" ->
          let n =
            match size with Some n -> n | None -> if quick then 65 else 513
          in
          Some (Apps.tomcatv ~n ())
        | "hydro2d" ->
          Some
            (if quick then Apps.hydro2d ~rows:80 ~cols:40 ()
             else Apps.hydro2d ())
        | "spem" ->
          Some
            (if quick then Apps.spem ~d0:16 ~d1:17 ~d2:17 ()
             else Apps.spem ())
        | _ -> None
      in
      match app with
      | Some app ->
        tune_app ~driver ~objective ?store ~machine ~nprocs:procs app
      | None ->
        let n =
          match size with Some n -> n | None -> if quick then 64 else 128
        in
        with_program kernel n (fun p ->
            let depth = depth_of p kernel in
            Fmt.pr "autotuning %s (n=%d) on %s, %d processors%s@." kernel n
              machine.Machine.mname procs
              (match objective with
              | TSearch.Cycles -> ""
              | TSearch.Wallclock -> ", objective: measured wall-clock");
            match
              Tune.tune ~depth ?store ~driver ~objective ~machine
                ~nprocs:procs p
            with
            | Error m -> `Error (false, m)
            | Ok o ->
              Fmt.pr "%a" Tune.pp_outcome o;
              Fmt.pr "result store: %d hits, %d simulations run@."
                (Batch.hit_count ()) (Batch.computed_count ());
              `Ok ())))))

let tune_cmd =
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Autotune the schedule variant (unfused, fused shift-and-peel — \
          plain or clustered —, wavefront, alignment+replication), strip \
          size and cache layout on the simulated machine (lf_tune); with \
          --objective wallclock, on measured native execution time")
    Term.(
      ret
        (const tune $ tune_kernel_arg $ tune_size_arg $ machine_arg
       $ procs_arg $ search_arg $ objective_arg $ quick_arg $ run_opts_term))

(* --- profile ------------------------------------------------------- *)

let profile_kernel_arg =
  let doc = "Kernel: ll18, calc, filter, jacobi, fig9, or a .loop file." in
  Arg.(value & opt string "ll18" & info [ "kernel"; "k" ] ~docv:"KERNEL" ~doc)

let by_arg =
  let doc = "Attribution grouping: array, phase, or proc." in
  Arg.(value & opt string "array" & info [ "by" ] ~docv:"GROUP" ~doc)

let trace_arg =
  let doc = "Write Chrome trace-event JSON to $(docv) (chrome://tracing)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let unfused_arg =
  let doc = "Profile the unfused schedule instead of the fused one." in
  Arg.(value & flag & info [ "unfused" ] ~doc)

(* Align the sink's layout tag with the Space.layout_to_string
   vocabulary so the recorded profile keys calibration factors. *)
let layout_tag = function "partition" -> "partitioned" | s -> s

let profile kernel n machine_name procs strip layout_spec by trace unfused
    steps opts_result =
  with_program kernel n (fun p ->
      with_run_opts opts_result (fun opts ->
      match machine_of machine_name with
      | Error m -> `Error (false, m)
      | Ok machine -> (
        match layout_of layout_spec machine p with
        | Error m -> `Error (false, m)
        | Ok layout -> (
          match
            match by with
            | "array" -> Ok Lf_obs.Obs.By_array
            | "phase" -> Ok Lf_obs.Obs.By_phase
            | "proc" -> Ok Lf_obs.Obs.By_proc
            | s -> Error ("unknown grouping " ^ s ^ " (try array, phase, proc)")
          with
          | Error m -> `Error (false, m)
          | Ok by ->
            let mode = opts.Run_opts.engine in
            let sink = Lf_obs.Obs.create ~layout:(layout_tag layout_spec) () in
            let req =
              if unfused then
                Sim.unfused ~layout ~mode ~machine ~nprocs:procs ~steps p
              else
                Sim.fused ~layout ~mode ~machine ~nprocs:procs ~strip ~steps p
            in
            (* a profiled run always computes (the sink must be
               populated) but still warms the store for sink-less
               reuse of the same request *)
            let r = Batch.run_one_with (Run_opts.with_sink sink opts) req in
            Fmt.pr "%s %s (n=%d) on %s: %d processors, layout %s, %d phases@."
              (if unfused then "unfused" else "fused")
              kernel n machine.Machine.mname procs layout_spec
              (Lf_obs.Obs.nphases sink);
            Fmt.pr "cycles %.4e (barrier %.4e), misses %d@.@." r.Exec.cycles
              r.Exec.barrier_cycles r.Exec.total_misses;
            Fmt.pr "%a" (Lf_obs.Obs.pp_table ~by) sink;
            let tot = Lf_obs.Obs.totals sink in
            Fmt.pr
              "@.conflict attribution: %d cross-array, %d self/capacity \
               (of %d non-cold misses)@."
              tot.Lf_obs.Obs.t_cross tot.Lf_obs.Obs.t_self
              (tot.Lf_obs.Obs.t_misses - tot.Lf_obs.Obs.t_cold);
            Fmt.pr "calibration factor (misses/cold) for layout %s: %.3f@."
              (Lf_obs.Obs.layout sink)
              (Lf_obs.Obs.miss_factor sink);
            (match trace with
            | None -> ()
            | Some file ->
              let oc = open_out file in
              output_string oc (Lf_obs.Obs.trace_json sink);
              close_out oc;
              Fmt.pr "trace: %d events written to %s@."
                (List.length (Lf_obs.Obs.events sink))
                file);
            `Ok ()))))

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Simulate with event counters attached: per-array/phase/processor \
          attribution tables and a Chrome trace (lf_obs)")
    Term.(
      ret
        (const profile $ profile_kernel_arg $ size_arg $ machine_arg
       $ procs_arg $ strip_arg $ layout_arg $ by_arg $ trace_arg
       $ unfused_arg $ steps_arg $ run_opts_term))

(* --- pipeline ------------------------------------------------------ *)

let pipeline kernel n procs strip =
  with_program kernel n (fun p ->
      let module Distribute = Lf_core.Distribute in
      let module Cluster = Lf_core.Cluster in
      let module Legality = Lf_core.Legality in
      Fmt.pr "input: %d nests@." (List.length p.Ir.nests);
      Fmt.pr "plain fusion verdict: %s@."
        (Legality.verdict_to_string (Legality.classify p));
      let p = Distribute.distribute p in
      Fmt.pr "after distribution: %d nests@." (List.length p.Ir.nests);
      let gs = Cluster.groups p in
      Fmt.pr "@.fusion groups:@.%a" Cluster.pp_groups gs;
      let sched = Cluster.schedule ~nprocs:procs ~strip p gs in
      let reference = Interp.run p in
      let ok =
        List.for_all
          (fun order ->
            Interp.equal reference (Schedule.execute ~order sched))
          [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ]
      in
      Fmt.pr "@.clustered schedule on %d processors: %s@." procs
        (if ok then "bit-identical to the serial reference" else "MISMATCH");
      (* an Explicit request: arbitrary prebuilt schedules are cacheable *)
      let r =
        Batch.run_one ~store:(store_of None)
          (Sim.of_schedule ~mode:Sim.Run_compressed ~machine:Machine.convex
             sched)
      in
      Fmt.pr "simulated on %s: %.4e cycles, %d misses@."
        Machine.convex.Machine.mname r.Exec.cycles r.Exec.total_misses;
      if ok then `Ok () else `Error (false, "verification failed"))

let pipeline_cmd =
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Distribute, cluster, fuse and verify a whole sequence")
    Term.(ret (const pipeline $ kernel_arg $ size_arg $ procs_arg $ strip_arg))

(* --- transform ------------------------------------------------------ *)

let script_arg =
  let doc =
    "Transformation script (.lft): one step per line — fuse, fission, \
     shift_peel, strip_mine, interchange, partition, wavefront, align."
  in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"SCRIPT" ~doc)

let checkpoint_dir_arg =
  let doc =
    "Write the per-step checkpoint stream \
     ($(i,program)_NN_$(i,step).loop, 00 = input) into $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let emit_form_arg =
  let doc =
    "Output after the final step: $(b,loop) (IR + schedule annotations, \
     the default), $(b,c) (generated fused code), or $(b,none)."
  in
  Arg.(value & opt string "loop" & info [ "emit" ] ~docv:"FORM" ~doc)

let simulate_flag_arg =
  let doc =
    "Realize the scripted schedule as a Sim.request and run it through \
     the batch layer and the persistent result store."
  in
  Arg.(value & flag & info [ "simulate" ] ~doc)

let transform kernel n script_path ck_dir emit_form simulate_ machine_name
    procs jobs engine store_dir =
  let module Script = Lf_script.Script in
  let module Realize = Lf_script.Realize in
  let module Lft = Lf_front.Lft in
  with_program kernel n (fun p ->
      match apply_jobs jobs with
      | Error m -> `Error (false, m)
      | Ok () -> (
      match machine_of machine_name with
      | Error m -> `Error (false, m)
      | Ok machine -> (
        match mode_of engine with
        | Error m -> `Error (false, m)
        | Ok mode -> (
          match Lft.parse_file script_path with
          | exception Sys_error m -> `Error (false, m)
          | exception (Lft.Error _ as e) ->
            `Error
              (false, Option.get (Lft.error_to_string ~file:script_path e))
          | steps -> (
            let write_checkpoint i name st =
              match ck_dir with
              | None -> ()
              | Some dir ->
                if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
                let file =
                  Filename.concat dir
                    (Printf.sprintf "%s_%02d_%s.loop" p.Ir.pname i name)
                in
                let oc = open_out file in
                output_string oc (Script.checkpoint_to_string st);
                close_out oc;
                Fmt.pr "checkpoint %s@." file
            in
            write_checkpoint 0 "input" (Script.init p);
            match
              Script.run
                ~checkpoint:(fun i step st ->
                  write_checkpoint (i + 1) (Script.step_name step) st)
                p steps
            with
            | Error e -> `Error (false, Script.error_to_string e)
            | Ok st ->
              (* rewrites must be semantics-preserving: compare every
                 original array against the untransformed reference *)
              let reference = Interp.run p and got = Interp.run st.Script.prog in
              let same (d : Ir.decl) =
                Interp.find_array reference d.Ir.aname
                = Interp.find_array got d.Ir.aname
              in
              if not (List.for_all same p.Ir.decls) then
                `Error
                  ( false,
                    "transformed program is not bit-identical to the input \
                     (script-engine bug; please report)" )
              else begin
                Fmt.pr
                  "%d step(s) applied; semantics bit-identical to the input@."
                  (List.length steps);
                let emit_result =
                  match emit_form with
                  | "none" -> Ok ()
                  | "loop" ->
                    Fmt.pr "%s" (Script.checkpoint_to_string st);
                    Ok ()
                  | "c" ->
                    (match Realize.whole_program_derive st with
                    | Some (depth, d) ->
                      let strip =
                        Option.value st.Script.strip
                          ~default:Schedule.default_strip
                      in
                      if depth = 1 then
                        Fmt.pr "%s@."
                          (Codegen.strip_mined_to_string ~strip st.Script.prog
                             d)
                      else
                        Fmt.pr "%s@."
                          (Codegen.multidim_to_string ~strip st.Script.prog d)
                    | None -> Fmt.pr "%s" (Ir.program_to_string st.Script.prog));
                    Ok ()
                  | f -> Error ("unknown --emit form " ^ f ^ " (try loop, c, none)")
                in
                match emit_result with
                | Error m -> `Error (false, m)
                | Ok () ->
                  if not simulate_ then `Ok ()
                  else begin
                    match
                      Realize.request ~mode ~machine ~nprocs:procs st
                    with
                    | exception Schedule.Illegal m ->
                      `Error (false, "scripted schedule is illegal here: " ^ m)
                    | req ->
                      if not (Sim.legal req) then
                        `Error
                          ( false,
                            "scripted schedule violates the Theorem 1 \
                             threshold for this size/processor count" )
                      else begin
                        let r = Batch.run_one ~store:(store_of store_dir) req in
                        Fmt.pr
                          "simulated on %s, %d processors: %.4e cycles \
                           (barrier %.4e), %d misses@."
                          machine.Machine.mname procs r.Exec.cycles
                          r.Exec.barrier_cycles r.Exec.total_misses;
                        `Ok ()
                      end
                  end
              end)))))

let transform_cmd =
  Cmd.v
    (Cmd.info "transform"
       ~doc:
         "Apply a .lft transformation script to a program: per-step \
          legality checks against the dependence graph, per-step \
          checkpoints, semantic verification, and optional simulation of \
          the scripted schedule")
    Term.(
      ret
        (const transform $ kernel_arg $ size_arg $ script_arg
       $ checkpoint_dir_arg $ emit_form_arg $ simulate_flag_arg $ machine_arg
       $ procs_arg $ jobs_arg $ engine_arg $ store_dir_arg))

(* --- serve / request ----------------------------------------------- *)

let serve_workers_arg =
  let doc =
    "Worker domains computing misses (default: max 2 host domains)."
  in
  Arg.(value & opt int 0 & info [ "workers"; "w" ] ~docv:"W" ~doc)

let max_inflight_arg =
  let doc = "Server-wide bound on queued + running jobs." in
  Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N" ~doc)

let max_client_queue_arg =
  let doc = "Per-connection bound on queued requests." in
  Arg.(value & opt int 8 & info [ "max-client-queue" ] ~docv:"N" ~doc)

let quantum_arg =
  let doc = "Deficit-round-robin credit granted per scheduling visit." in
  Arg.(value & opt int 4 & info [ "quantum" ] ~docv:"Q" ~doc)

let progress_interval_arg =
  let doc = "Seconds between streamed progress frames (0 disables)." in
  Arg.(
    value & opt float 0.5 & info [ "progress-interval" ] ~docv:"SECONDS" ~doc)

let verbose_arg =
  let doc = "Log connections and drains to stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let serve socket workers max_inflight max_client_queue quantum
    progress_interval verbose store_dir jobs =
  match apply_jobs jobs with
  | Error m -> `Error (false, m)
  | Ok () ->
    let dc = Lf_serve.Serve.default_config () in
    let cfg =
      {
        Lf_serve.Serve.socket = Option.value socket ~default:dc.socket;
        workers = (if workers > 0 then workers else dc.workers);
        max_inflight;
        max_client_queue;
        quantum;
        store_dir;
        progress_interval_s = progress_interval;
        verbose;
      }
    in
    (match Lf_serve.Serve.run cfg with
    | () -> `Ok ()
    | exception Failure m -> `Error (false, m))

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the simulation service: answer Sim.requests over a \
          Unix-domain socket, warm hits from the result store, misses on \
          worker domains behind DRR admission control.  SIGINT/SIGTERM \
          drain gracefully.")
    Term.(
      ret
        (const serve $ socket_arg $ serve_workers_arg $ max_inflight_arg
       $ max_client_queue_arg $ quantum_arg $ progress_interval_arg
       $ verbose_arg $ store_dir_arg $ jobs_arg))

let unfused_variant_arg =
  let doc = "Request the unfused schedule (default: fused shift-and-peel)." in
  Arg.(value & flag & info [ "unfused" ] ~doc)

let wait_arg =
  let doc =
    "When the server answers Overloaded, back off and retry until the \
     request is admitted (default: fail immediately)."
  in
  Arg.(value & flag & info [ "wait" ] ~doc)

let request kernel n machine_name procs strip layout_spec engine steps
    unfused socket wait json =
  with_program kernel n (fun p ->
      match machine_of machine_name with
      | Error m -> `Error (false, m)
      | Ok machine -> (
        match layout_of layout_spec machine p with
        | Error m -> `Error (false, m)
        | Ok layout -> (
          match mode_of engine with
          | Error m -> `Error (false, m)
          | Ok mode -> (
            let req =
              if unfused then
                Sim.unfused ~layout ~mode ~machine ~nprocs:procs ~steps p
              else
                Sim.fused ~layout ~mode ~machine ~nprocs:procs ~strip ~steps p
            in
            let module Client = Lf_serve.Client in
            let module Wire = Lf_serve.Wire in
            match Client.connect ?socket () with
            | exception Unix.Unix_error (e, _, _) ->
              `Error
                ( false,
                  Printf.sprintf "cannot reach server at %s: %s (is `lfc \
                                  serve` running?)"
                    (match socket with
                    | Some s -> s
                    | None -> Lf_serve.Serve.(default_config ()).socket)
                    (Unix.error_message e) )
            | c ->
              let on_progress (g : Wire.progress) =
                Fmt.epr
                  "progress: %d phases, %d refs, %d misses (%.1f s)@."
                  g.Wire.g_phases g.Wire.g_refs g.Wire.g_misses
                  g.Wire.g_elapsed_s
              in
              let rec go attempt =
                match Client.request_sync ~on_progress c ~rid:1 req with
                | Ok (Client.Served s) ->
                  let r = s.Client.result in
                  if json then
                    Fmt.pr
                      "{\"cycles\": %.17g, \"barrier_cycles\": %.17g, \
                       \"misses\": %d, \"from_store\": %b, \"wall_s\": \
                       %.6f, \"position\": %d}@."
                      r.Exec.cycles r.Exec.barrier_cycles r.Exec.total_misses
                      s.Client.from_store s.Client.wall_s s.Client.position
                  else begin
                    Fmt.pr "%s %s (n=%d) on %s, %d processors@."
                      (if unfused then "unfused" else "fused")
                      kernel n machine.Machine.mname procs;
                    Fmt.pr
                      "cycles %.4e (barrier %.4e), misses %d — %s (wall \
                       %.3f s, queue position %d)@."
                      r.Exec.cycles r.Exec.barrier_cycles r.Exec.total_misses
                      (if s.Client.from_store then "served from store"
                       else "computed")
                      s.Client.wall_s s.Client.position
                  end;
                  `Ok ()
                | Ok (Client.Overloaded reason) when wait ->
                  let backoff = Float.min 2.0 (0.1 *. (2.0 ** float attempt)) in
                  Fmt.epr "overloaded (%s), retrying in %.1f s@." reason
                    backoff;
                  Unix.sleepf backoff;
                  go (attempt + 1)
                | Ok (Client.Overloaded reason) ->
                  `Error (false, "server overloaded: " ^ reason)
                | Ok (Client.Rejected reason) ->
                  `Error (false, "request rejected: " ^ reason)
                | Error e -> `Error (false, "transport error: " ^ e)
              in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () -> go 0)))))

let request_cmd =
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Submit one simulation request to a running `lfc serve` and print \
          the (bit-identical) result; --wait retries through Overloaded \
          backpressure.")
    Term.(
      ret
        (const request $ kernel_arg $ size_arg $ machine_arg $ procs_arg
       $ strip_arg $ layout_arg $ engine_arg $ steps_arg
       $ unfused_variant_arg $ socket_arg $ wait_arg $ json_arg))

(* --- cache --------------------------------------------------------- *)

let cache_stats json store_dir =
  let module Store = Lf_batch.Batch.Store in
  let store = store_of store_dir in
  let st = Store.stats store in
  let fs = Store.fingerprint_stats store in
  if json then begin
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"dir\": \"%s\", \"entries\": %d, \"bytes\": %d, \"salt\": \
          \"%s\", \"live_fingerprints\": {"
         (String.escaped (Store.dir store))
         st.Store.entries st.Store.bytes
         (String.escaped Sim.version_salt));
    List.iteri
      (fun i (m, v) ->
        Buffer.add_string b
          (Printf.sprintf "%s\"%s\": \"%s\""
             (if i = 0 then "" else ", ")
             (String.escaped m) (String.escaped v)))
      fs.Store.fp_live;
    Buffer.add_string b "}, \"fingerprint_counts\": [";
    List.iteri
      (fun i ((m, v), n) ->
        Buffer.add_string b
          (Printf.sprintf
             "%s{\"module\": \"%s\", \"version\": \"%s\", \"entries\": %d}"
             (if i = 0 then "" else ", ")
             (String.escaped m) (String.escaped v) n))
      fs.Store.fp_counts;
    Buffer.add_string b
      (Printf.sprintf
         "], \"stale_entries\": %d, \"fp_scanned\": %d, \"fp_unreadable\": \
          %d}"
         fs.Store.fp_stale fs.Store.fp_scanned fs.Store.fp_unreadable);
    Fmt.pr "%s@." (Buffer.contents b)
  end
  else begin
    Fmt.pr "%s: %d entries, %d bytes@." (Store.dir store) st.Store.entries
      st.Store.bytes;
    Fmt.pr "live fingerprints:";
    List.iter (fun (m, v) -> Fmt.pr " %s=%s" m v) fs.Store.fp_live;
    Fmt.pr "@.";
    List.iter
      (fun ((m, v), n) ->
        let stale =
          match List.assoc_opt m fs.Store.fp_live with
          | Some lv when lv = v -> ""
          | _ -> "  (stale)"
        in
        Fmt.pr "  %-10s %-16s %6d entr%s%s@." m v n
          (if n = 1 then "y" else "ies")
          stale)
      fs.Store.fp_counts;
    if fs.Store.fp_stale > 0 then
      Fmt.pr "%d of %d entr%s stale under the live fingerprints (gc \
              reclaims them)@."
        fs.Store.fp_stale fs.Store.fp_scanned
        (if fs.Store.fp_scanned = 1 then "y is" else "ies are")
  end;
  `Ok ()

let max_bytes_arg =
  let doc = "Shrink the store to at most $(docv) bytes (oldest first)." in
  Arg.(value & opt int 67_108_864 & info [ "max-bytes" ] ~docv:"BYTES" ~doc)

let cache_gc max_bytes store_dir =
  let store = store_of store_dir in
  let removed = Lf_batch.Batch.Store.gc ~max_bytes store in
  let st = Lf_batch.Batch.Store.stats store in
  Fmt.pr "removed %d entries; %d entries, %d bytes remain@." removed
    st.Lf_batch.Batch.Store.entries st.Lf_batch.Batch.Store.bytes;
  `Ok ()

let cache_clear store_dir =
  let store = store_of store_dir in
  let removed = Lf_batch.Batch.Store.clear store in
  Fmt.pr "removed %d entries from %s@." removed
    (Lf_batch.Batch.Store.dir store);
  `Ok ()

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Manage the persistent simulation-result store (_lf_cache/): \
          stats, gc, clear")
    [
      Cmd.v
        (Cmd.info "stats" ~doc:"Entry count and total size of the store")
        Term.(ret (const cache_stats $ json_arg $ store_dir_arg));
      Cmd.v
        (Cmd.info "gc" ~doc:"Evict oldest entries beyond a size budget")
        Term.(ret (const cache_gc $ max_bytes_arg $ store_dir_arg));
      Cmd.v
        (Cmd.info "clear" ~doc:"Delete every persisted result")
        Term.(ret (const cache_clear $ store_dir_arg));
    ]

(* --- sweep / worker ------------------------------------------------- *)

module Queue = Lf_queue.Queue
module Sweep = Lf_queue.Sweep

let sweep_kernels_arg =
  let doc =
    "Comma-separated kernels to sweep (default: all of ll18, calc, \
     jacobi, filter, tomcatv, hydro2d)."
  in
  Arg.(value & opt (some string) None & info [ "kernels" ] ~docv:"K1,K2" ~doc)

let sweep_size_arg =
  let doc = "Problem size per kernel." in
  Arg.(value & opt int 48 & info [ "size"; "n" ] ~docv:"N" ~doc)

let sweep_workers_arg =
  let doc =
    "Fork $(docv) local worker processes to drain the queue (0 = enqueue \
     only; external `lfc worker` processes drain)."
  in
  Arg.(value & opt int 0 & info [ "workers"; "w" ] ~docv:"W" ~doc)

let require_warm_arg =
  let doc =
    "Fail unless, after the drain, every sweep request is answered by \
     the store (the CI all-hits assertion)."
  in
  Arg.(value & flag & info [ "require-warm" ] ~doc)

let ttl_arg =
  let doc = "Lease time-to-live in seconds (crash-reclaim window)." in
  Arg.(value & opt float Queue.default_ttl & info [ "ttl" ] ~docv:"SECONDS" ~doc)

let watch_arg =
  let doc =
    "After the initial pass, watch the queue's fingerprint file and \
     re-enqueue exactly the digests a fingerprint change invalidates."
  in
  Arg.(value & flag & info [ "watch" ] ~doc)

let watch_rounds_arg =
  let doc = "Fingerprint changes to process before exiting --watch." in
  Arg.(value & opt int 1 & info [ "watch-rounds" ] ~docv:"R" ~doc)

let watch_timeout_arg =
  let doc = "Seconds to wait for each fingerprint change in --watch." in
  Arg.(value & opt float 600.0 & info [ "watch-timeout" ] ~docv:"SECONDS" ~doc)

(* Fork [nworkers] children that each run a draining Queue.worker.
   Callers must not have live domains (Exec.release_shared_pool first);
   the children may spawn their own. *)
let fork_workers ~nworkers ~ttl ~store_dir ~queue_dir =
  List.init nworkers (fun i ->
      let pid = Unix.fork () in
      if pid = 0 then begin
        (try
           let store = store_of store_dir in
           let q = queue_of queue_dir in
           let st =
             Queue.worker
               ~wid:(Printf.sprintf "w%d-%d" (Unix.getpid ()) i)
               ~ttl ~store q
           in
           if st.Queue.w_failed > 0 then Stdlib.exit 1
         with _ -> Stdlib.exit 1);
        Stdlib.exit 0
      end;
      pid)

let wait_workers pids =
  List.fold_left
    (fun acc pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> acc
      | _ -> acc + 1)
    0 pids

let sweep kernels_spec n procs workers queue_dir require_warm
    watch watch_rounds watch_timeout fingerprints ttl opts_result json =
  (* the sweep enqueues BOTH pure engines per configuration (that is
     the point of the mix), so opts.engine is deliberately ignored;
     store root, cold polarity and --jobs apply *)
  with_run_opts opts_result @@ fun opts ->
  let store_dir = Run_opts.store_root opts in
  let cold = Run_opts.is_cold opts in
  (match apply_fingerprints fingerprints with
  | Error m -> `Error (false, m)
  | Ok () -> (
  let kernels =
    Option.map (String.split_on_char ',') kernels_spec
  in
  match Sweep.mix ?kernels ~nprocs:procs ~n () with
  | exception Invalid_argument m -> `Error (false, m)
  | mix ->
    let store = store_of store_dir in
    let q = queue_of queue_dir in
    (* forking below: keep this process free of live domains *)
    Exec.release_shared_pool ();
    let misses_now () =
      let seen = Hashtbl.create 64 in
      List.fold_left
        (fun acc r ->
          let d = Sim.digest r in
          if Hashtbl.mem seen d then acc
          else begin
            Hashtbl.add seen d ();
            if Batch.Store.lookup store r = None then acc + 1 else acc
          end)
        0 mix
    in
    let drain label =
      if workers <= 0 then Ok 0
      else begin
        let pids =
          fork_workers ~nworkers:workers ~ttl ~store_dir ~queue_dir
        in
        let failures = wait_workers pids in
        if failures > 0 then
          Error (Printf.sprintf "%s: %d worker(s) exited non-zero" label
                   failures)
        else
          match Queue.wait ~timeout_s:1.0 q with
          | `Drained -> Ok failures
          | `Timeout ->
            Error (label ^ ": queue not drained after workers exited")
      end
    in
    let pass label ~save_fingerprints =
      let enq = Queue.enqueue_misses ~save_fingerprints ~cold q ~store mix in
      Fmt.pr
        "%s: %d requests (%d unique): %d store hits, %d enqueued, %d \
         already queued, %d failed earlier@."
        label enq.Queue.e_total enq.Queue.e_unique enq.Queue.e_hits
        enq.Queue.e_enqueued enq.Queue.e_queued_before
        enq.Queue.e_failed_before;
      match drain label with
      | Error m -> Error m
      | Ok _ ->
        let st = Queue.status q in
        Fmt.pr "%s: queue %a@." label Queue.pp_status st;
        List.iter
          (fun (d, msg) -> Fmt.pr "  failed %s: %s@." d msg)
          (Queue.failures q);
        if st.Queue.failed > 0 then
          Error
            (Printf.sprintf "%s: %d task(s) failed terminally" label
               st.Queue.failed)
        else Ok enq
    in
    match pass "sweep" ~save_fingerprints:true with
    | Error m -> `Error (false, m)
    | Ok enq0 -> (
      let watch_result =
        if not watch then Ok ()
        else begin
          let fpfile = Queue.fingerprint_file q in
          let mtime () =
            match Unix.stat fpfile with
            | st -> st.Unix.st_mtime
            | exception _ -> 0.0
          in
          let rec rounds r last =
            if r > watch_rounds then Ok ()
            else begin
              Fmt.pr "watch: waiting for a fingerprint change (round %d/%d)@."
                r watch_rounds;
              let t0 = Unix.gettimeofday () in
              let rec poll () =
                let m = mtime () in
                if m > last then Ok m
                else if Unix.gettimeofday () -. t0 > watch_timeout then
                  Error "watch: timed out waiting for a fingerprint change"
                else begin
                  Unix.sleepf 0.05;
                  poll ()
                end
              in
              match poll () with
              | Error m -> Error m
              | Ok stamp -> (
                (match Sim.Fingerprint.load_file fpfile with
                | Ok () -> ()
                | Error m -> Fmt.pr "watch: bad fingerprint file: %s@." m);
                match
                  pass
                    (Printf.sprintf "watch round %d" r)
                    ~save_fingerprints:false
                with
                | Error m -> Error m
                | Ok enq ->
                  Fmt.pr
                    "watch round %d: fingerprint change invalidated %d \
                     digest(s)@."
                    r enq.Queue.e_enqueued;
                  rounds (r + 1) stamp)
            end
          in
          rounds 1 (mtime ())
        end
      in
      match watch_result with
      | Error m -> `Error (false, m)
      | Ok () ->
        let missing = misses_now () in
        if json then
          Fmt.pr
            "{\"mix\": %d, \"unique\": %d, \"hits\": %d, \"enqueued\": %d, \
             \"workers\": %d, \"missing_after\": %d}@."
            enq0.Queue.e_total enq0.Queue.e_unique enq0.Queue.e_hits
            enq0.Queue.e_enqueued workers missing;
        if require_warm && missing > 0 then
          `Error
            ( false,
              Printf.sprintf
                "--require-warm: %d sweep request(s) still missing from the \
                 store"
                missing )
        else `Ok ())))

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Enqueue a sweep's store misses as work-queue tasks and \
          optionally fork local workers to drain them; any number of `lfc \
          worker` processes sharing the queue directory participate.  \
          --watch re-enqueues exactly the digests a fingerprint change \
          invalidates.")
    Term.(
      ret
        (const sweep $ sweep_kernels_arg $ sweep_size_arg $ procs_arg
       $ sweep_workers_arg $ queue_dir_arg
       $ require_warm_arg $ watch_arg $ watch_rounds_arg $ watch_timeout_arg
       $ fingerprint_arg $ ttl_arg $ run_opts_term $ json_arg))

let worker_wid_arg =
  let doc = "Worker id used in lease filenames (default: pid-derived)." in
  Arg.(value & opt (some string) None & info [ "wid" ] ~docv:"ID" ~doc)

let idle_timeout_arg =
  let doc =
    "Keep polling for new tasks until $(docv) seconds pass with none \
     (default: exit once the queue is drained)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)

let worker_run wid queue_dir store_dir ttl idle_timeout jobs json =
  match apply_jobs jobs with
  | Error m -> `Error (false, m)
  | Ok () ->
    let store = store_of store_dir in
    let q = queue_of queue_dir in
    let st = Queue.worker ?wid ~ttl ?idle_timeout_s:idle_timeout ~store q in
    if json then
      Fmt.pr
        "{\"claimed\": %d, \"computed\": %d, \"hits\": %d, \"failed\": %d, \
         \"reclaimed\": %d}@."
        st.Queue.w_claimed st.Queue.w_computed st.Queue.w_hits
        st.Queue.w_failed st.Queue.w_reclaimed
    else Fmt.pr "%a@." Queue.pp_worker_stats st;
    `Ok ()

let worker_cmd =
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Drain a sweep work queue: claim tasks by atomic rename, compute \
          them through the batch layer, publish results to the shared \
          store.  Crash-safe — a worker that dies mid-task stops \
          heartbeating and its lease is reclaimed by any peer after the \
          ttl.")
    Term.(
      ret
        (const worker_run $ worker_wid_arg $ queue_dir_arg $ store_dir_arg
       $ ttl_arg $ idle_timeout_arg $ jobs_arg $ json_arg))

let main_cmd =
  Cmd.group
    (Cmd.info "lfc" ~version:"1.0"
       ~doc:"Shift-and-peel loop fusion (Manjikian & Abdelrahman, ICPP 1995)")
    [ analyze_cmd; derive_cmd; emit_cmd; simulate_cmd; run_cmd; trace_cmd;
      verify_cmd; transform_cmd; pipeline_cmd; profile_cmd; tune_cmd;
      cache_cmd; serve_cmd; request_cmd; sweep_cmd; worker_cmd ]

let () = exit (Cmd.eval main_cmd)
