(* Cmdliner terms and converters shared by every lfc subcommand.

   Grew out of bin/lfc.ml, where each subcommand redefined its own
   copies of --jobs/--engine/--machine/--layout and the associated
   string converters; new subcommands pull the shared vocabulary from
   here. *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim

open Cmdliner

(* --- kernels -------------------------------------------------------- *)

let fig9_program n =
  let i o = Ir.av ~c:o "i" in
  let nest nid out rhs =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = n - 2; parallel = true } ];
      body = [ Ir.stmt (Ir.aref out [ i 0 ]) rhs ];
    }
  in
  let r name o = Ir.Read (Ir.aref name [ i o ]) in
  {
    Ir.pname = "fig9";
    decls =
      List.map (fun a -> { Ir.aname = a; extents = [ n ] })
        [ "a"; "b"; "c"; "d" ];
    nests =
      [
        nest "L1" "a" (r "b" 0);
        nest "L2" "c" (Ir.Bin (Add, r "a" 1, r "a" (-1)));
        nest "L3" "d" (Ir.Bin (Add, r "c" 1, r "c" (-1)));
      ];
  }

let program_of_kernel name n =
  match name with
  | "ll18" -> Ok (Lf_kernels.Ll18.program ~n ())
  | "calc" -> Ok (Lf_kernels.Calc.program ~n ())
  | "filter" -> Ok (Lf_kernels.Filter.program ~rows:n ~cols:n ())
  | "jacobi" -> Ok (Lf_kernels.Jacobi.program ~n ())
  | "fig9" -> Ok (fig9_program n)
  | path when Sys.file_exists path -> (
    (* a source file in the front-end language *)
    match Lf_front.Parse.program_of_file path with
    | p -> Ok p
    | exception Lf_front.Parse.Syntax_error m ->
      Error (Printf.sprintf "%s: syntax error: %s" path m)
    | exception Ir.Invalid m ->
      Error (Printf.sprintf "%s: invalid program: %s" path m))
  | _ ->
    Error
      (Printf.sprintf
         "unknown kernel %s (try ll18, calc, filter, jacobi, fig9, or a \
          .loop source file)" name)

let depth_of p name =
  if name = "jacobi" then min 2 (Dep.max_parallel_depth p)
  else if Sys.file_exists name then max 1 (min 2 (Dep.max_parallel_depth p))
  else 1

let with_program name n f =
  match program_of_kernel name n with
  | Error m -> `Error (false, m)
  | Ok p -> f p

(* --- shared terms ---------------------------------------------------- *)

let kernel_arg =
  let doc = "Kernel: ll18, calc, filter, jacobi, fig9, or a .loop file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let size_arg =
  let doc = "Array size per dimension." in
  Arg.(value & opt int 128 & info [ "size"; "n" ] ~docv:"N" ~doc)

let procs_arg =
  let doc = "Number of processors." in
  Arg.(value & opt int 4 & info [ "procs"; "p" ] ~docv:"P" ~doc)

let strip_arg =
  let doc = "Strip-mining factor." in
  Arg.(value & opt int 16 & info [ "strip" ] ~docv:"S" ~doc)

let steps_arg =
  let doc = "Time steps (repetitions of the whole schedule)." in
  Arg.(value & opt int 1 & info [ "steps" ] ~docv:"T" ~doc)

let machine_arg =
  let doc = "Machine model: ksr2 or convex." in
  Arg.(
    value & opt string "convex" & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc)

let layout_arg =
  let doc = "Memory layout: partition, contiguous, or pad:N." in
  Arg.(value & opt string "partition" & info [ "layout" ] ~docv:"LAYOUT" ~doc)

let jobs_arg =
  let doc =
    "Host domains for the simulation engine (default from $(b,LF_JOBS), \
     else 1 = serial; 0 or $(b,auto) uses every core).  The simulated \
     result is bit-identical for every value."
  in
  Arg.(value & opt (some string) None & info [ "jobs"; "j" ] ~docv:"J" ~doc)

let engine_arg =
  let doc =
    "Simulation engine: $(b,runs) (batched run-compressed replay, the \
     default), $(b,miss-only) (scalar address replay), or $(b,full) \
     (interpret values too).  All three produce bit-identical \
     observables; they differ only in wall clock."
  in
  Arg.(value & opt string "runs" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let json_arg =
  let doc = "Emit machine-readable JSON instead of the table." in
  Arg.(value & flag & info [ "json" ] ~doc)

let cold_arg =
  let doc =
    "Ignore persisted results in the store (recompute; fresh results \
     are still persisted)."
  in
  Arg.(value & flag & info [ "cold" ] ~doc)

let store_dir_arg =
  let doc =
    "Result-store directory (default $(b,LF_CACHE_DIR), else _lf_cache)."
  in
  Arg.(value & opt (some string) None & info [ "store-dir" ] ~docv:"DIR" ~doc)

let queue_dir_arg =
  let doc =
    "Work-queue directory shared by the sweep enqueuer and workers \
     (default $(b,LF_QUEUE_DIR), else _lf_queue)."
  in
  Arg.(value & opt (some string) None & info [ "queue" ] ~docv:"DIR" ~doc)

let fingerprint_arg =
  let doc =
    "Override one module fingerprint, $(b,MODULE=VALUE) (repeatable; \
     modules: ir, schedule, derive, partition, cache, machine).  \
     Changes the digests of exactly the requests depending on that \
     module — the incremental-invalidation lever."
  in
  Arg.(
    value & opt_all string [] & info [ "fingerprint" ] ~docv:"MODULE=VALUE" ~doc)

let socket_arg =
  let doc =
    "Unix-domain socket of the simulation service (default \
     $(b,LF_SERVE_SOCKET), else _lf_serve.sock)."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let timeout_arg =
  let doc = "Per-request wall-clock budget in seconds (batch layer)." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

(* --- converters ------------------------------------------------------ *)

let machine_of = function
  | "ksr2" -> Ok Machine.ksr2
  | "convex" -> Ok Machine.convex
  | m -> Error ("unknown machine " ^ m)

let apply_jobs = function
  | None -> Ok ()
  | Some ("auto" | "0") ->
    Exec.set_default_jobs (Domain.recommended_domain_count ());
    Ok ()
  | Some s -> (
    match int_of_string_opt s with
    | Some j when j >= 1 ->
      Exec.set_default_jobs j;
      Ok ()
    | _ -> Error ("bad --jobs value " ^ s ^ " (want a positive int or auto)"))

let mode_of s =
  match Sim.mode_of_string s with
  | Ok m -> Ok m
  | Error _ -> Error ("unknown engine " ^ s ^ " (try runs, miss-only, full)")

let layout_of spec machine (p : Ir.program) =
  match spec with
  | "partition" ->
    Ok
      (Partition.cache_partitioned
         ~cache:
           {
             Partition.capacity =
               machine.Machine.cache.Lf_cache.Cache.capacity;
             line = machine.Machine.cache.Lf_cache.Cache.line;
             assoc = machine.Machine.cache.Lf_cache.Cache.assoc;
           }
         p.Ir.decls)
  | "contiguous" -> Ok (Partition.contiguous p.Ir.decls)
  | s when String.length s > 4 && String.sub s 0 4 = "pad:" -> (
    match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
    | Some pad -> Ok (Partition.padded ~pad p.Ir.decls)
    | None -> Error ("bad pad amount in " ^ s))
  | s -> Error ("unknown layout " ^ s)

let store_of dir = Lf_batch.Batch.Store.open_ ?dir ()

let queue_dir_of dir =
  match dir with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "LF_QUEUE_DIR" with
    | Some d when d <> "" -> d
    | _ -> "_lf_queue")

let queue_of dir = Lf_queue.Queue.open_ ~dir:(queue_dir_of dir)

let apply_fingerprints specs =
  let rec go = function
    | [] -> Ok ()
    | s :: tl -> (
      match Sim.Fingerprint.set_spec s with
      | Ok () -> go tl
      | Error _ as e -> e)
  in
  go specs

(* --- unified request options ----------------------------------------- *)

module Run_opts = Lf_batch.Run_opts

(* The one options bundle every execution subcommand (simulate, run,
   tune, profile, sweep, trace) shares: --jobs/--engine/--cold/
   --store-dir/--timeout lowered onto a Run_opts.t, environment
   defaults (LF_ENGINE, LF_STORE, LF_COLD, LF_TIMEOUT_S) applied
   first so explicit flags win.  --jobs is applied as a side effect
   through Exec.set_default_jobs — the options' [jobs] field stays
   [None] so every consumer (batch, serve, queue, bench) keeps
   deferring to the same source of truth. *)

let engine_opt_arg =
  let doc =
    "Simulation engine: $(b,runs) (batched run-compressed replay, the \
     default), $(b,miss-only) (scalar address replay), or $(b,full) \
     (interpret values too).  All three produce bit-identical \
     observables; they differ only in wall clock.  Defaults from \
     $(b,LF_ENGINE)."
  in
  Arg.(value & opt (some string) None & info [ "engine" ] ~docv:"ENGINE" ~doc)

let run_opts_of jobs engine cold store_dir timeout =
  let ( let* ) = Result.bind in
  let* () = apply_jobs jobs in
  let* t = Run_opts.of_env () in
  let* t =
    match engine with
    | None -> Ok t
    | Some e -> Result.map (fun m -> Run_opts.with_engine m t) (mode_of e)
  in
  let t =
    match store_dir with
    | None -> t
    | Some d ->
      (* an explicit root keeps whatever cold/warm polarity is set *)
      Run_opts.with_store
        (if Run_opts.is_cold t then Run_opts.Store_cold (Some d)
         else Run_opts.Store_in (Some d))
        t
  in
  let t = if cold then Run_opts.cold t else t in
  match timeout with
  | None -> Ok t
  | Some s when s > 0.0 -> Ok (Run_opts.with_timeout s t)
  | Some s ->
    Error (Printf.sprintf "bad --timeout value %g (want positive seconds)" s)

let run_opts_term =
  Cmdliner.Term.(
    const run_opts_of $ jobs_arg $ engine_opt_arg $ cold_arg $ store_dir_arg
    $ timeout_arg)

(* Unpack the bundle inside a `ret`-style subcommand body. *)
let with_run_opts opts_result f =
  match opts_result with Error m -> `Error (false, m) | Ok opts -> f opts
