(* Execution-driven simulation: runs a [Schedule.t] on a [Machine.config]
   with one cache per processor and a memory layout mapping array
   elements to addresses.  Produces both the semantic result (the store,
   for verification against the reference interpreter) and the
   performance observables the paper reports: cycle counts and cache
   misses.

   The engine is split into three layers so the host can parallelise
   the simulation without changing a single observable:

   - {b stream generation}: each simulated processor's boxes are
     compiled to closures that walk the iteration space and emit the
     per-processor address stream (interpreting values in [Full] mode,
     or only the addresses in [Miss_only] mode);
   - {b cache replay}: the stream drives that processor's private
     [Lf_cache] instances and cycle counter — state owned by exactly
     one simulated processor, hence by exactly one host domain at a
     time;
   - {b reduction}: at each phase end the per-processor observables are
     folded {e in simulated-processor order} (max for time, sums in
     array order for misses), and probe-buffered events are merged in
     the same order.

   Because processors within a phase are independent by construction
   (the paper's phases are parallel loops; a legal schedule yields the
   same store under any processor interleaving, see Schedule.execute's
   order property) and all reductions are performed in a fixed order on
   the coordinating domain, the result is bit-identical for any [jobs]
   count, including the serial engine. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition
module Cache = Lf_cache.Cache
module Obs = Lf_obs.Obs
module Pool = Lf_parallel.Pool

type result = {
  cycles : float;  (* simulated execution time *)
  phase_cycles : float array;
  barrier_cycles : float;
  total_refs : int;
  total_misses : int;
  cold_misses : int;
  tlb_misses : int;
  proc_misses : int array;
  store : Interp.store;
}

type mode = Full | Miss_only

let proc0_misses r = r.proc_misses.(0)

(* ------------------------------------------------------------------ *)
(* Host parallelism: default job count and the shared domain pool      *)

(* LF_JOBS environment default: a positive integer, or "auto"/"0" for
   the host's recommended domain count.  Unset or unparsable means
   serial. *)
let jobs_of_env () =
  match Sys.getenv_opt "LF_JOBS" with
  | None -> 1
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "auto" | "0" -> Domain.recommended_domain_count ()
    | s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | Some _ | None -> 1))

let default_jobs_ref = ref None

let default_jobs () =
  match !default_jobs_ref with
  | Some j -> j
  | None ->
    let j = jobs_of_env () in
    default_jobs_ref := Some j;
    j

let set_default_jobs j =
  if j < 1 then invalid_arg "Exec.set_default_jobs: jobs < 1";
  default_jobs_ref := Some j

(* One shared pool, sized on demand and reused across runs (phases,
   steps, tuner candidates, bench experiments) instead of spawning
   domains per invocation.  Accessed only from the coordinating domain;
   shut down at exit so the process can terminate cleanly. *)
let shared_pool : (int * Pool.t) option ref = ref None
let shared_pool_at_exit = ref false

let release_shared_pool () =
  match !shared_pool with
  | None -> ()
  | Some (_, p) ->
    shared_pool := None;
    Pool.shutdown p

let shared_pool_of ~jobs =
  match !shared_pool with
  | Some (n, p) when n = jobs -> p
  | _ ->
    release_shared_pool ();
    let p = Pool.create jobs in
    shared_pool := Some (jobs, p);
    if not !shared_pool_at_exit then begin
      shared_pool_at_exit := true;
      at_exit release_shared_pool
    end;
    p

(* ------------------------------------------------------------------ *)
(* Per-processor execution context                                     *)

type ctx = {
  cache : Cache.t;
  tlb : Cache.t option;
  mutable cycles : float;
  hit_cost : float;
  miss_cost : float;
  tlb_miss_cost : float;
  probe : Obs.probe option;  (* attribution probe; None = uninstrumented *)
}

(* The two arms must stay behaviourally identical: same cache/TLB state
   transitions, same cycle arithmetic in the same order.  The only
   difference the probe arm is allowed is pushing counts into the sink
   (the observer-effect property in test/test_obs.ml holds us to it). *)
let access ctx aid addr =
  match ctx.probe with
  | None ->
    (if Cache.access ctx.cache addr then
       ctx.cycles <- ctx.cycles +. ctx.hit_cost
     else ctx.cycles <- ctx.cycles +. ctx.miss_cost);
    (match ctx.tlb with
    | None -> ()
    | Some t ->
      if not (Cache.access t addr) then
        ctx.cycles <- ctx.cycles +. ctx.tlb_miss_cost)
  | Some p ->
    let cl = Cache.access_classified ctx.cache addr in
    (if cl.Cache.cl_hit then ctx.cycles <- ctx.cycles +. ctx.hit_cost
     else ctx.cycles <- ctx.cycles +. ctx.miss_cost);
    Obs.record_access p ~aid ~line:cl.Cache.cl_line ~hit:cl.Cache.cl_hit
      ~cold:cl.Cache.cl_cold ~evicted:cl.Cache.cl_evicted;
    (match ctx.tlb with
    | None -> ()
    | Some t ->
      if not (Cache.access t addr) then begin
        ctx.cycles <- ctx.cycles +. ctx.tlb_miss_cost;
        Obs.record_tlb_miss p ~aid
      end)

(* ------------------------------------------------------------------ *)
(* Statement compilation: each statement becomes a closure over the
   value arrays and the layout, taking (ctx, iteration values).        *)

type cref = {
  aid : int;  (* array id: index into the program's decl list *)
  values : float array;  (* empty in Miss_only mode *)
  lext : int array;  (* logical extents, for the value index *)
  aext : int array;  (* addressing extents (padding included) *)
  start : int;  (* byte address of element 0 *)
  elem_bytes : int;
  coeffs : int array array;  (* per array dim, per loop level *)
  consts : int array;  (* per array dim *)
}

(* [lookup name] yields the value array and logical extents of [name];
   in Miss_only mode the value array is empty (never dereferenced). *)
let compile_ref lookup (layout : Partition.layout) aid_of vars (r : Ir.aref) =
  let values, lext = lookup r.Ir.array in
  let p = Partition.find_placement layout r.array in
  let nvars = Array.length vars in
  let coeffs =
    Array.of_list
      (List.map
         (fun (a : Ir.affine) ->
           let row = Array.make nvars 0 in
           List.iter
             (fun (c, x) ->
               let rec idx i =
                 if i >= nvars then
                   invalid_arg ("Exec.compile_ref: unbound variable " ^ x)
                 else if String.equal vars.(i) x then i
                 else idx (i + 1)
               in
               let i = idx 0 in
               row.(i) <- row.(i) + c)
             a.terms;
           row)
         r.index)
  in
  let consts =
    Array.of_list (List.map (fun (a : Ir.affine) -> a.const) r.index)
  in
  {
    aid = aid_of r.Ir.array;
    values;
    lext;
    aext = p.aextents;
    start = p.start;
    elem_bytes = layout.elem_bytes;
    coeffs;
    consts;
  }

(* Evaluate subscripts, returning (value index, byte address). *)
let locate cr (vals : int array) =
  let ndim = Array.length cr.consts in
  let vidx = ref 0 and aidx = ref 0 in
  for d = 0 to ndim - 1 do
    let row = cr.coeffs.(d) in
    let v = ref cr.consts.(d) in
    for i = 0 to Array.length row - 1 do
      if row.(i) <> 0 then v := !v + (row.(i) * vals.(i))
    done;
    let v = !v in
    if v < 0 || v >= cr.lext.(d) then
      raise
        (Interp.Out_of_bounds
           (Printf.sprintf "dim %d index %d not in [0,%d)" d v cr.lext.(d)));
    vidx := (!vidx * cr.lext.(d)) + v;
    aidx := (!aidx * cr.aext.(d)) + v
  done;
  (!vidx, cr.start + (!aidx * cr.elem_bytes))

(* [locate] without the value index: the Miss_only replay needs only
   the byte address.  Bounds checks (and their exception text) are kept
   identical so the two modes fail identically on a bad schedule. *)
let locate_addr cr (vals : int array) =
  let ndim = Array.length cr.consts in
  let aidx = ref 0 in
  for d = 0 to ndim - 1 do
    let row = cr.coeffs.(d) in
    let v = ref cr.consts.(d) in
    for i = 0 to Array.length row - 1 do
      if row.(i) <> 0 then v := !v + (row.(i) * vals.(i))
    done;
    let v = !v in
    if v < 0 || v >= cr.lext.(d) then
      raise
        (Interp.Out_of_bounds
           (Printf.sprintf "dim %d index %d not in [0,%d)" d v cr.lext.(d)));
    aidx := (!aidx * cr.aext.(d)) + v
  done;
  cr.start + (!aidx * cr.elem_bytes)

type cexpr =
  | CConst of float
  | CRead of cref
  | CNeg of cexpr
  | CBin of Ir.binop * cexpr * cexpr

let rec compile_expr lookup layout aid_of vars (e : Ir.expr) =
  match e with
  | Const k -> CConst k
  | Read r -> CRead (compile_ref lookup layout aid_of vars r)
  | Neg e -> CNeg (compile_expr lookup layout aid_of vars e)
  | Bin (op, a, b) ->
    CBin
      ( op,
        compile_expr lookup layout aid_of vars a,
        compile_expr lookup layout aid_of vars b )

let rec eval_cexpr ctx vals = function
  | CConst k -> k
  | CRead cr ->
    let vidx, addr = locate cr vals in
    access ctx cr.aid addr;
    cr.values.(vidx)
  | CNeg e -> -.eval_cexpr ctx vals e
  | CBin (op, a, b) -> (
    let x = eval_cexpr ctx vals a in
    let y = eval_cexpr ctx vals b in
    match op with
    | Add -> x +. y
    | Sub -> x -. y
    | Mul -> x *. y
    | Div -> x /. y)

(* Reads of a compiled expression in evaluation order (the DFS order
   [eval_cexpr] visits them): the address stream of the statement's
   right-hand side.  [Miss_only] replays exactly this sequence. *)
let rec refs_of_cexpr acc = function
  | CConst _ -> acc
  | CRead cr -> cr :: acc
  | CNeg e -> refs_of_cexpr acc e
  | CBin (_, a, b) -> refs_of_cexpr (refs_of_cexpr acc a) b

type cstmt = {
  clhs : cref;
  crhs : cexpr;
  cguard : (int * int * int) array;  (* (level index, lo, hi) *)
  ctrace : cref array;
      (* address stream of one instance: rhs reads in evaluation order,
         then the lhs write — the order [exec_cstmt] issues accesses *)
}

let compile_nest lookup layout aid_of (n : Ir.nest) =
  let vars = Array.of_list (Ir.nest_vars n) in
  let var_index x =
    let rec go i =
      if i >= Array.length vars then
        invalid_arg ("Exec.compile_nest: unbound guard variable " ^ x)
      else if String.equal vars.(i) x then i
      else go (i + 1)
    in
    go 0
  in
  Array.of_list
    (List.map
       (fun (s : Ir.stmt) ->
         let clhs = compile_ref lookup layout aid_of vars s.lhs in
         let crhs = compile_expr lookup layout aid_of vars s.rhs in
         {
           clhs;
           crhs;
           cguard =
             Array.of_list
               (List.map (fun (v, lo, hi) -> (var_index v, lo, hi)) s.guard);
           ctrace =
             Array.of_list (List.rev (clhs :: refs_of_cexpr [] crhs));
         })
       n.body)

let guard_holds g (vals : int array) =
  let n = Array.length g in
  let rec go i =
    if i = n then true
    else
      let v, lo, hi = g.(i) in
      vals.(v) >= lo && vals.(v) <= hi && go (i + 1)
  in
  go 0

let exec_cstmt ctx vals s =
  if guard_holds s.cguard vals then begin
    let v = eval_cexpr ctx vals s.crhs in
    let vidx, addr = locate s.clhs vals in
    access ctx s.clhs.aid addr;
    s.clhs.values.(vidx) <- v
  end

(* Miss_only: replay the statement's address stream against the cache,
   skipping value interpretation.  Addresses are layout-dependent but
   value-independent, so hits/misses and hence cycles are identical to
   [exec_cstmt]'s. *)
let exec_cstmt_trace ctx vals s =
  if guard_holds s.cguard vals then begin
    let tr = s.ctrace in
    for k = 0 to Array.length tr - 1 do
      let cr = tr.(k) in
      access ctx cr.aid (locate_addr cr vals)
    done
  end

let exec_stmts_full ctx vals (stmts : cstmt array) =
  for s = 0 to Array.length stmts - 1 do
    exec_cstmt ctx vals stmts.(s)
  done

let exec_stmts_trace ctx vals (stmts : cstmt array) =
  for s = 0 to Array.length stmts - 1 do
    exec_cstmt_trace ctx vals stmts.(s)
  done

(* ------------------------------------------------------------------ *)
(* Running a schedule                                                  *)

let exec_box exec_stmts (cost : Machine.cost) compiled nest_arity ctx
    (b : Schedule.box) =
  let stmts : cstmt array = compiled.(b.Schedule.nest) in
  let nd : int = nest_arity.(b.Schedule.nest) in
  let vals = Array.make nd 0 in
  let nstmts = float_of_int (Array.length stmts) in
  let t0 = ctx.cycles in
  ctx.cycles <- ctx.cycles +. cost.loop_overhead;
  let rec go d =
    if d = nd then begin
      ctx.cycles <- ctx.cycles +. (cost.op *. nstmts) +. cost.iter_overhead;
      exec_stmts ctx vals stmts
    end
    else begin
      let lo, hi = b.Schedule.ranges.(d) in
      for v = lo to hi do
        vals.(d) <- v;
        go (d + 1)
      done
    end
  in
  go 0;
  match ctx.probe with
  | None -> ()
  | Some p ->
    Obs.box_span p ~nest:b.Schedule.nest ~iters:(Schedule.box_iterations b)
      ~t0 ~t1:ctx.cycles

let run ?sink ?layout ?init ?(steps = 1) ?(mode = Full) ?jobs ?pool
    ~machine:(m : Machine.config) (sched : Schedule.t) =
  let prog = sched.Schedule.prog in
  let layout =
    match layout with
    | Some l -> l
    | None -> Partition.contiguous prog.Ir.decls
  in
  let nprocs = sched.Schedule.nprocs in
  (* Stream generation setup: the store and the name -> (values,
     extents) lookup the compiled statements close over.  Miss_only
     skips allocating and initialising the value arrays entirely; its
     result carries an empty store. *)
  let store, lookup =
    match mode with
    | Full ->
      let store = Interp.create ?init prog in
      ( store,
        fun name -> (Interp.find_array store name, Interp.find_extents store name)
      )
    | Miss_only ->
      let extents = Hashtbl.create 16 in
      List.iter
        (fun (d : Ir.decl) ->
          Hashtbl.replace extents d.Ir.aname (Array.of_list d.Ir.extents))
        prog.Ir.decls;
      let no_values = [||] in
      ( { Interp.arrays = Hashtbl.create 1; extents = Hashtbl.create 1 },
        fun name ->
          match Hashtbl.find_opt extents name with
          | Some e -> (no_values, e)
          | None -> invalid_arg ("Exec.run: undeclared array " ^ name) )
  in
  let decls = Array.of_list prog.Ir.decls in
  let aid_of name =
    let rec go i =
      if i >= Array.length decls then
        invalid_arg ("Exec.run: undeclared array " ^ name)
      else if String.equal decls.(i).Ir.aname name then i
      else go (i + 1)
    in
    go 0
  in
  let compiled =
    Array.of_list (List.map (compile_nest lookup layout aid_of) prog.Ir.nests)
  in
  let nest_arity =
    Array.of_list
      (List.map (fun (n : Ir.nest) -> List.length n.Ir.levels) prog.Ir.nests)
  in
  (match sink with
  | None -> ()
  | Some s ->
    Obs.attach s ~machine:m.Machine.mname ~nprocs
      ~arrays:(Array.map (fun (d : Ir.decl) -> d.Ir.aname) decls)
      ~labels:(Array.of_list (Schedule.phase_labels sched))
      ~remote_fraction:(Machine.remote_fraction m ~nprocs));
  let miss_cost = Machine.miss_penalty m ~nprocs in
  let ctxs =
    Array.init nprocs (fun proc ->
        {
          cache = Cache.create m.cache;
          tlb = Option.map Cache.create m.Machine.tlb;
          cycles = 0.0;
          hit_cost = m.cost.hit;
          miss_cost;
          tlb_miss_cost = m.cost.tlb_miss;
          probe = Option.map (fun s -> Obs.probe s ~proc) sink;
        })
  in
  (* probes in simulated-processor order, for the phase-end merge *)
  let probes =
    match sink with
    | None -> [||]
    | Some _ -> Array.map (fun c -> Option.get c.probe) ctxs
  in
  let exec_stmts =
    match mode with Full -> exec_stmts_full | Miss_only -> exec_stmts_trace
  in
  (* Cache replay across host domains: each simulated processor is
     claimed by exactly one domain per phase (self-scheduled, so the
     load imbalance of peeled tails costs at most one processor of idle
     time), and every reduction below happens after the join, on this
     domain, in simulated-processor order — bit-identical to serial. *)
  let jobs =
    max 1 (min nprocs (match jobs with Some j -> j | None -> default_jobs ()))
  in
  let pool =
    match pool with
    | Some p -> if Pool.size p > 1 && nprocs > 1 then Some p else None
    | None -> if jobs > 1 then Some (shared_pool_of ~jobs) else None
  in
  let run_procs f =
    match pool with
    | None ->
      for proc = 0 to nprocs - 1 do
        f proc
      done
    | Some pool -> Pool.dynamic_for pool ~lo:0 ~hi:(nprocs - 1) f
  in
  let phases = Array.of_list sched.Schedule.phases in
  let nphases = Array.length phases in
  let phase_cycles = Array.make nphases 0.0 in
  let barrier_cost = Machine.barrier_cost m ~nprocs in
  for step = 1 to steps do
    Array.iteri
      (fun i ph ->
        (match sink with
        | None -> ()
        | Some s -> Obs.phase_begin s ~step ~phase:i);
        Array.iter (fun ctx -> ctx.cycles <- 0.0) ctxs;
        run_procs (fun proc ->
            let ctx = ctxs.(proc) in
            (match ctx.probe with
            | None -> ()
            | Some p -> Obs.set_phase p ~step ~phase:i);
            List.iter
              (exec_box exec_stmts m.cost compiled nest_arity ctx)
              ph.(proc));
        (* deterministic reduction, simulated-processor order *)
        (match sink with
        | None -> ()
        | Some s -> Obs.flush_boxes s probes);
        let t =
          Array.fold_left (fun acc c -> Float.max acc c.cycles) 0.0 ctxs
        in
        phase_cycles.(i) <- phase_cycles.(i) +. t;
        match sink with
        | None -> ()
        | Some s ->
          Array.iteri
            (fun proc c -> Obs.proc_cycles s ~phase:i ~proc ~cycles:c.cycles)
            ctxs;
          Obs.phase_end s ~step ~phase:i ~cycles:t;
          (* mirror the aggregate barrier count below: one barrier after
             every phase except the very last of the run *)
          if not (step = steps && i = nphases - 1) then
            Obs.barrier s ~step ~after_phase:i ~cost:barrier_cost)
      phases
  done;
  (* one barrier after every phase except the very last of the run *)
  let nbarriers = max 0 ((Array.length phases * steps) - 1) in
  let barrier_cycles =
    float_of_int nbarriers *. Machine.barrier_cost m ~nprocs
  in
  let cycles = Array.fold_left ( +. ) barrier_cycles phase_cycles in
  let proc_misses =
    Array.map (fun c -> (Cache.stats c.cache).Cache.s_misses) ctxs
  in
  let total_misses = Array.fold_left ( + ) 0 proc_misses in
  let total_refs =
    Array.fold_left (fun acc c -> acc + Cache.references c.cache) 0 ctxs
  in
  let cold_misses =
    Array.fold_left
      (fun acc c -> acc + (Cache.stats c.cache).Cache.s_cold)
      0 ctxs
  in
  let tlb_misses =
    Array.fold_left
      (fun acc c ->
        acc
        + (match c.tlb with
          | None -> 0
          | Some t -> (Cache.stats t).Cache.s_misses))
      0 ctxs
  in
  {
    cycles;
    phase_cycles;
    barrier_cycles;
    total_refs;
    total_misses;
    cold_misses;
    tlb_misses;
    proc_misses;
    store;
  }

(* Convenience: simulate the original (unfused) program. *)
let run_unfused ?sink ?layout ?init ?steps ?mode ?jobs ?pool ?grid ?depth
    ~machine ~nprocs p =
  run ?sink ?layout ?init ?steps ?mode ?jobs ?pool ~machine
    (Schedule.unfused ?grid ?depth ~nprocs p)

(* Convenience: simulate the fused shift-and-peel version. *)
let run_fused ?sink ?layout ?init ?steps ?mode ?jobs ?pool ?grid ?strip
    ?derive ~machine ~nprocs p =
  run ?sink ?layout ?init ?steps ?mode ?jobs ?pool ~machine
    (Schedule.fused ?grid ?strip ?derive ~nprocs p)

(* Attribution tables from a sink recorded by [run]. *)
let breakdown sink ~by = Obs.breakdown sink ~by

let speedup ~baseline_cycles (r : result) = baseline_cycles /. r.cycles
