(* Execution-driven simulation: runs a [Schedule.t] on a [Machine.config]
   with one cache per processor and a memory layout mapping array
   elements to addresses.  Produces both the semantic result (the store,
   for verification against the reference interpreter) and the
   performance observables the paper reports: cycle counts and cache
   misses.

   The engine is split into three layers so the host can parallelise
   the simulation without changing a single observable:

   - {b stream generation}: each simulated processor's boxes are
     compiled to closures that walk the iteration space and emit the
     per-processor address stream (interpreting values in [Full] mode,
     only the addresses in [Miss_only] mode, and line-granular runs in
     [Run_compressed] mode);
   - {b cache replay}: the stream drives that processor's private
     [Lf_cache] instances — state owned by exactly one simulated
     processor, hence by exactly one host domain at a time;
   - {b reduction}: at each phase end the per-processor observables are
     folded {e in simulated-processor order} (max for time, sums in
     array order for misses), and probe-buffered events are merged in
     the same order.

   Because processors within a phase are independent by construction
   (the paper's phases are parallel loops; a legal schedule yields the
   same store under any processor interleaving, see Schedule.execute's
   order property) and all reductions are performed in a fixed order on
   the coordinating domain, the result is bit-identical for any [jobs]
   count, including the serial engine.

   {b Deferred cycle accounting.}  Cycles are never accumulated
   access-by-access.  Each context counts integer events (boxes,
   iterations, statement instances, plus the cache/TLB hit and miss
   counters the caches themselves maintain) and [ctx_cycles] converts
   the counts to cycles in one fixed closed-form expression.  This is
   what makes every engine mode bit-identical by construction: a mode
   that proves "these n accesses hit" and bumps the hit counter by n
   yields {e exactly} the float the scalar engine yields, because both
   evaluate the same expression on the same integers — there is no
   summation-order dependence to preserve.  (With per-access float
   accumulation, a non-dyadic miss penalty such as the Convex's
   60 + 140/3 would make closed-form batching differ in the last ulp.) *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition
module Cache = Lf_cache.Cache
module Obs = Lf_obs.Obs
module Pool = Lf_parallel.Pool

type result = {
  cycles : float;  (* simulated execution time *)
  phase_cycles : float array;
  barrier_cycles : float;
  total_refs : int;
  total_misses : int;
  cold_misses : int;
  tlb_misses : int;
  proc_misses : int array;
  store : Interp.store;
}

type mode = Sim.mode = Full | Miss_only | Run_compressed

let proc0_misses r = r.proc_misses.(0)

(* ------------------------------------------------------------------ *)
(* Host parallelism: default job count and the shared domain pool      *)

(* LF_JOBS environment default: a positive integer, or "auto"/"0" for
   the host's recommended domain count.  Unset or unparsable means
   serial. *)
let jobs_of_env () =
  match Sys.getenv_opt "LF_JOBS" with
  | None -> 1
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "auto" | "0" -> Domain.recommended_domain_count ()
    | s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | Some _ | None -> 1))

let default_jobs_ref = ref None

let default_jobs () =
  match !default_jobs_ref with
  | Some j -> j
  | None ->
    let j = jobs_of_env () in
    default_jobs_ref := Some j;
    j

let set_default_jobs j =
  if j < 1 then invalid_arg "Exec.set_default_jobs: jobs < 1";
  default_jobs_ref := Some j

(* One shared pool, sized on demand and reused across runs (phases,
   steps, tuner candidates, bench experiments) instead of spawning
   domains per invocation.  Accessed only from the coordinating domain;
   shut down at exit so the process can terminate cleanly. *)
let shared_pool : (int * Pool.t) option ref = ref None
let shared_pool_at_exit = ref false

let release_shared_pool () =
  match !shared_pool with
  | None -> ()
  | Some (_, p) ->
    shared_pool := None;
    Pool.shutdown p

let shared_pool_of ~jobs =
  match !shared_pool with
  | Some (n, p) when n = jobs -> p
  | _ ->
    release_shared_pool ();
    let p = Pool.create jobs in
    shared_pool := Some (jobs, p);
    if not !shared_pool_at_exit then begin
      shared_pool_at_exit := true;
      at_exit release_shared_pool
    end;
    p

(* ------------------------------------------------------------------ *)
(* Per-processor execution context                                     *)

type ctx = {
  cache : Cache.t;
  tlb : Cache.t option;
  (* integer event counts of the current phase; cycles materialise only
     through [ctx_cycles] *)
  mutable boxes : int;
  mutable iters : int;  (* innermost iteration points *)
  mutable ops : int;  (* statement instances (guard-independent) *)
  (* phase-start snapshots of the cumulative cache counters *)
  mutable h0 : int;
  mutable m0 : int;
  mutable tm0 : int;
  op_cost : float;
  hit_cost : float;
  miss_cost : float;
  loop_cost : float;
  iter_cost : float;
  tlb_miss_cost : float;
  probe : Obs.probe option;  (* attribution probe; None = uninstrumented *)
}

(* The one place event counts become cycles.  Every mode and every
   [jobs] value evaluates exactly this expression on exactly these
   integers, so cycle observables cannot depend on engine or schedule
   of accumulation. *)
let ctx_cycles ctx =
  let tlbm =
    match ctx.tlb with None -> 0 | Some t -> Cache.miss_count t - ctx.tm0
  in
  (float_of_int ctx.ops *. ctx.op_cost)
  +. (float_of_int (Cache.hit_count ctx.cache - ctx.h0) *. ctx.hit_cost)
  +. (float_of_int (Cache.miss_count ctx.cache - ctx.m0) *. ctx.miss_cost)
  +. (float_of_int ctx.boxes *. ctx.loop_cost)
  +. (float_of_int ctx.iters *. ctx.iter_cost)
  +. (float_of_int tlbm *. ctx.tlb_miss_cost)

let phase_reset ctx =
  ctx.boxes <- 0;
  ctx.iters <- 0;
  ctx.ops <- 0;
  ctx.h0 <- Cache.hit_count ctx.cache;
  ctx.m0 <- Cache.miss_count ctx.cache;
  ctx.tm0 <- (match ctx.tlb with None -> 0 | Some t -> Cache.miss_count t)

(* The two arms must stay behaviourally identical: same cache/TLB state
   transitions.  The only difference the probe arm is allowed is
   pushing counts into the sink (the observer-effect property in
   test/test_obs.ml holds us to it). *)
let access ctx aid addr =
  match ctx.probe with
  | None ->
    ignore (Cache.access ctx.cache addr);
    (match ctx.tlb with
    | None -> ()
    | Some t -> ignore (Cache.access t addr))
  | Some p ->
    let cl = Cache.access_classified ctx.cache addr in
    ignore
      (Obs.record_access p ~aid ~line:cl.Cache.cl_line ~hit:cl.Cache.cl_hit
         ~cold:cl.Cache.cl_cold ~evicted:cl.Cache.cl_evicted);
    (match ctx.tlb with
    | None -> ()
    | Some t -> if not (Cache.access t addr) then Obs.record_tlb_miss p ~aid)

(* ------------------------------------------------------------------ *)
(* Statement compilation: each statement becomes a closure over the
   value arrays and the layout, taking (ctx, iteration values).        *)

type cref = {
  aid : int;  (* array id: index into the program's decl list *)
  values : float array;  (* empty outside Full mode *)
  lext : int array;  (* logical extents, for the value index *)
  aext : int array;  (* addressing extents (padding included) *)
  start : int;  (* byte address of element 0 *)
  elem_bytes : int;
  coeffs : int array array;  (* per array dim, per loop level *)
  consts : int array;  (* per array dim *)
  istride : int;  (* byte-address delta per innermost-variable step *)
}

(* [lookup name] yields the value array and logical extents of [name];
   outside Full mode the value array is empty (never dereferenced). *)
let compile_ref lookup (layout : Partition.layout) aid_of vars (r : Ir.aref) =
  let values, lext = lookup r.Ir.array in
  let p = Partition.find_placement layout r.array in
  let nvars = Array.length vars in
  let coeffs =
    Array.of_list
      (List.map
         (fun (a : Ir.affine) ->
           let row = Array.make nvars 0 in
           List.iter
             (fun (c, x) ->
               let rec idx i =
                 if i >= nvars then
                   invalid_arg ("Exec.compile_ref: unbound variable " ^ x)
                 else if String.equal vars.(i) x then i
                 else idx (i + 1)
               in
               let i = idx 0 in
               row.(i) <- row.(i) + c)
             a.terms;
           row)
         r.index)
  in
  let consts =
    Array.of_list (List.map (fun (a : Ir.affine) -> a.const) r.index)
  in
  let ndim = Array.length consts in
  (* byte stride of one innermost-variable step: the row-major suffix
     products of the {e addressing} extents weight each dimension's
     innermost coefficient *)
  let istride =
    if nvars = 0 then 0
    else begin
      let suffix = ref 1 and s = ref 0 in
      for d = ndim - 1 downto 0 do
        s := !s + (coeffs.(d).(nvars - 1) * !suffix);
        suffix := !suffix * p.aextents.(d)
      done;
      !s * layout.elem_bytes
    end
  in
  {
    aid = aid_of r.Ir.array;
    values;
    lext;
    aext = p.aextents;
    start = p.start;
    elem_bytes = layout.elem_bytes;
    coeffs;
    consts;
    istride;
  }

(* Evaluate subscripts, returning (value index, byte address). *)
let locate cr (vals : int array) =
  let ndim = Array.length cr.consts in
  let vidx = ref 0 and aidx = ref 0 in
  for d = 0 to ndim - 1 do
    let row = cr.coeffs.(d) in
    let v = ref cr.consts.(d) in
    for i = 0 to Array.length row - 1 do
      if row.(i) <> 0 then v := !v + (row.(i) * vals.(i))
    done;
    let v = !v in
    if v < 0 || v >= cr.lext.(d) then
      raise
        (Interp.Out_of_bounds
           (Printf.sprintf "dim %d index %d not in [0,%d)" d v cr.lext.(d)));
    vidx := (!vidx * cr.lext.(d)) + v;
    aidx := (!aidx * cr.aext.(d)) + v
  done;
  (!vidx, cr.start + (!aidx * cr.elem_bytes))

(* [locate] without the value index: address-stream replay needs only
   the byte address.  Bounds checks (and their exception text) are kept
   identical so the modes fail identically on a bad schedule. *)
let locate_addr cr (vals : int array) =
  let ndim = Array.length cr.consts in
  let aidx = ref 0 in
  for d = 0 to ndim - 1 do
    let row = cr.coeffs.(d) in
    let v = ref cr.consts.(d) in
    for i = 0 to Array.length row - 1 do
      if row.(i) <> 0 then v := !v + (row.(i) * vals.(i))
    done;
    let v = !v in
    if v < 0 || v >= cr.lext.(d) then
      raise
        (Interp.Out_of_bounds
           (Printf.sprintf "dim %d index %d not in [0,%d)" d v cr.lext.(d)));
    aidx := (!aidx * cr.aext.(d)) + v
  done;
  cr.start + (!aidx * cr.elem_bytes)

(* Bounds predicate of [locate] at [vals], without raising: the run
   engine prechecks segment endpoints with this (subscripts are affine,
   hence monotone, in the sweep variable — endpoint validity implies
   interior validity) and falls back to the raising scalar walk when it
   fails, so out-of-bounds schedules die at the identical iteration
   with the identical message. *)
let ref_in_bounds cr (vals : int array) =
  let ndim = Array.length cr.consts in
  let ok = ref true in
  for d = 0 to ndim - 1 do
    let row = cr.coeffs.(d) in
    let v = ref cr.consts.(d) in
    for i = 0 to Array.length row - 1 do
      if row.(i) <> 0 then v := !v + (row.(i) * vals.(i))
    done;
    if !v < 0 || !v >= cr.lext.(d) then ok := false
  done;
  !ok

type cexpr =
  | CConst of float
  | CRead of cref
  | CNeg of cexpr
  | CBin of Ir.binop * cexpr * cexpr

let rec compile_expr lookup layout aid_of vars (e : Ir.expr) =
  match e with
  | Const k -> CConst k
  | Read r -> CRead (compile_ref lookup layout aid_of vars r)
  | Neg e -> CNeg (compile_expr lookup layout aid_of vars e)
  | Bin (op, a, b) ->
    CBin
      ( op,
        compile_expr lookup layout aid_of vars a,
        compile_expr lookup layout aid_of vars b )

let rec eval_cexpr ctx vals = function
  | CConst k -> k
  | CRead cr ->
    let vidx, addr = locate cr vals in
    access ctx cr.aid addr;
    cr.values.(vidx)
  | CNeg e -> -.eval_cexpr ctx vals e
  | CBin (op, a, b) -> (
    let x = eval_cexpr ctx vals a in
    let y = eval_cexpr ctx vals b in
    match op with
    | Add -> x +. y
    | Sub -> x -. y
    | Mul -> x *. y
    | Div -> x /. y)

(* Reads of a compiled expression in evaluation order (the DFS order
   [eval_cexpr] visits them): the address stream of the statement's
   right-hand side.  Replay modes issue exactly this sequence. *)
let rec refs_of_cexpr acc = function
  | CConst _ -> acc
  | CRead cr -> cr :: acc
  | CNeg e -> refs_of_cexpr acc e
  | CBin (_, a, b) -> refs_of_cexpr (refs_of_cexpr acc a) b

type cstmt = {
  clhs : cref;
  crhs : cexpr;
  cguard : (int * int * int) array;  (* (level index, lo, hi) *)
  ctrace : cref array;
      (* address stream of one instance: rhs reads in evaluation order,
         then the lhs write — the order [exec_cstmt] issues accesses *)
}

let compile_nest lookup layout aid_of (n : Ir.nest) =
  let vars = Array.of_list (Ir.nest_vars n) in
  let var_index x =
    let rec go i =
      if i >= Array.length vars then
        invalid_arg ("Exec.compile_nest: unbound guard variable " ^ x)
      else if String.equal vars.(i) x then i
      else go (i + 1)
    in
    go 0
  in
  Array.of_list
    (List.map
       (fun (s : Ir.stmt) ->
         let clhs = compile_ref lookup layout aid_of vars s.lhs in
         let crhs = compile_expr lookup layout aid_of vars s.rhs in
         {
           clhs;
           crhs;
           cguard =
             Array.of_list
               (List.map (fun (v, lo, hi) -> (var_index v, lo, hi)) s.guard);
           ctrace =
             Array.of_list (List.rev (clhs :: refs_of_cexpr [] crhs));
         })
       n.body)

let guard_holds g (vals : int array) =
  let n = Array.length g in
  let rec go i =
    if i = n then true
    else
      let v, lo, hi = g.(i) in
      vals.(v) >= lo && vals.(v) <= hi && go (i + 1)
  in
  go 0

let exec_cstmt ctx vals s =
  if guard_holds s.cguard vals then begin
    let v = eval_cexpr ctx vals s.crhs in
    let vidx, addr = locate s.clhs vals in
    access ctx s.clhs.aid addr;
    s.clhs.values.(vidx) <- v
  end

(* Miss_only: replay the statement's address stream against the cache,
   skipping value interpretation.  Addresses are layout-dependent but
   value-independent, so hits/misses and hence cycles are identical to
   [exec_cstmt]'s. *)
let exec_cstmt_trace ctx vals s =
  if guard_holds s.cguard vals then begin
    let tr = s.ctrace in
    for k = 0 to Array.length tr - 1 do
      let cr = tr.(k) in
      access ctx cr.aid (locate_addr cr vals)
    done
  end

let exec_stmts_full ctx vals (stmts : cstmt array) =
  for s = 0 to Array.length stmts - 1 do
    exec_cstmt ctx vals stmts.(s)
  done

let exec_stmts_trace ctx vals (stmts : cstmt array) =
  for s = 0 to Array.length stmts - 1 do
    exec_cstmt_trace ctx vals stmts.(s)
  done

(* ------------------------------------------------------------------ *)
(* Run-compressed execution: line-granular address-stream batching     *)

(* [Run_compressed] walks boxes like the trace engine but treats the
   innermost loop as strided runs instead of iterating it.  The sweep
   is cut into {e segments} on which the active statement set is
   constant (guard intervals only open or close at their endpoints),
   each segment's references become (start, byte stride, count)
   triples, and segments advance in {e blocks} — the iterations before
   any reference crosses a cache-line boundary, within which every
   reference stays on one line and one page.  Inside a block the first
   iteration is simulated access-by-access; as soon as an iteration is
   proven steady its remainder is fast-forwarded in closed form
   (Cache.hit_run / Cache.repeat_run).  See DESIGN §6b for the
   exactness argument. *)

(* One segment's references, flattened across its active statements in
   execution order (per statement: rhs reads in evaluation order, then
   the lhs write), so the lockstep walk below issues the exact global
   access order of the scalar engine. *)
type seg = {
  g_refs : cref array;
  g_addrs : int array;  (* current byte address per reference *)
  g_strides : int array;
  g_hits : bool array;  (* cache outcome of the last scalar iteration *)
  g_cross : bool array;  (* cross attribution of that iteration's misses *)
}

let make_seg refs vals =
  let k = Array.length refs in
  {
    g_refs = refs;
    g_addrs = Array.init k (fun j -> locate_addr refs.(j) vals);
    g_strides = Array.map (fun r -> r.istride) refs;
    g_hits = Array.make k false;
    g_cross = Array.make k false;
  }

(* Iterations until some reference leaves its current line (or page:
   [lmask] is min(cache line, TLB line) - 1 and both are powers of two,
   so staying inside the smaller granule implies staying inside both),
   capped at [left]. *)
let block_size g lmask left =
  let b = ref left in
  let k = Array.length g.g_refs in
  for j = 0 to k - 1 do
    let s = g.g_strides.(j) in
    if s <> 0 then begin
      let off = g.g_addrs.(j) land lmask in
      let c = if s > 0 then 1 + ((lmask - off) / s) else 1 + (off / -s) in
      if c < !b then b := c
    end
  done;
  !b

(* One lockstep iteration of the segment, access by access; fills
   [g_hits]/[g_cross] and returns whether every cache access hit.

   The TLB is handled lazily: while [tlb_steady] is false each access
   probes it scalar (recording misses), and the iteration that comes
   back all-hit sets the flag — from then on the segment's pages are
   resident and every further access in the page block is a provable
   hit, so instead of probing (an O(assoc) way scan at TLB
   associativities of 64+) the caller just counts skipped iterations in
   [tlb_pending] and settles them with one closed-form [Cache.hit_run]
   when the page block ends.  Nothing but this segment touches the TLB
   in between, so the deferred batch reproduces the scalar access
   sequence exactly. *)
let scalar_iter ctx g ~tlb_steady ~tlb_pending =
  let k = Array.length g.g_refs in
  let allhit = ref true in
  let probe_tlb = not !tlb_steady in
  let tlb_allhit = ref true in
  for j = 0 to k - 1 do
    let addr = g.g_addrs.(j) in
    let aid = g.g_refs.(j).aid in
    let h =
      match ctx.probe with
      | None -> Cache.access ctx.cache addr
      | Some p ->
        let cl = Cache.access_classified ctx.cache addr in
        g.g_cross.(j) <-
          Obs.record_access p ~aid ~line:cl.Cache.cl_line ~hit:cl.Cache.cl_hit
            ~cold:cl.Cache.cl_cold ~evicted:cl.Cache.cl_evicted;
        cl.Cache.cl_hit
    in
    g.g_hits.(j) <- h;
    if not h then allhit := false;
    (if probe_tlb then
       match ctx.tlb with
       | None -> ()
       | Some t ->
         if not (Cache.access t addr) then begin
           tlb_allhit := false;
           match ctx.probe with
           | None -> ()
           | Some p -> Obs.record_tlb_miss p ~aid
         end);
    g.g_addrs.(j) <- addr + g.g_strides.(j)
  done;
  if probe_tlb then begin
    if !tlb_allhit then tlb_steady := true
  end
  else incr tlb_pending;
  !allhit

let advance g m =
  let k = Array.length g.g_refs in
  for j = 0 to k - 1 do
    g.g_addrs.(j) <- g.g_addrs.(j) + (g.g_strides.(j) * m)
  done

(* Fast-forward [m] provably-hitting iterations: after an all-hit
   iteration the segment's lines are all resident, further iterations
   touch only those lines, and hits evict nothing — so the remainder of
   the block is hits.  (Only called once the TLB is steady; its skipped
   accesses are settled by the caller's page-block flush.) *)
let ff_hits ctx g m =
  let k = Array.length g.g_refs in
  Cache.hit_run ctx.cache ~addrs:g.g_addrs ~k ~m;
  (match ctx.probe with
  | None -> ()
  | Some p ->
    for j = 0 to k - 1 do
      Obs.record_hit_run p ~aid:g.g_refs.(j).aid ~n:m
    done);
  advance g m

(* Fast-forward [m] iterations of a direct-mapped steady state: with
   one way per set, a full iteration over the block's fixed (set, line)
   pairs leaves each touched set holding the last line mapped to it —
   independent of the state it started from — so once one in-block
   iteration has run from that fixed point, outcomes (and cross/self
   attribution, whose evictions also repeat verbatim) are identical for
   the rest of the block. *)
let ff_repeat ctx g m =
  let k = Array.length g.g_refs in
  Cache.repeat_run ctx.cache ~addrs:g.g_addrs ~hits:g.g_hits ~k ~m;
  (match ctx.probe with
  | None -> ()
  | Some p ->
    for j = 0 to k - 1 do
      if g.g_hits.(j) then Obs.record_hit_run p ~aid:g.g_refs.(j).aid ~n:m
      else
        Obs.record_miss_run p ~aid:g.g_refs.(j).aid ~cross:g.g_cross.(j) ~n:m
    done);
  advance g m

(* A single-reference segment needs no lockstep: the whole run feeds
   [Cache.access_run], which coalesces line (and, for the TLB, page)
   groups internally. *)
let run_single ctx (cr : cref) ~addr ~stride ~n =
  (match ctx.probe with
  | None -> Cache.access_run ctx.cache ~addr ~stride ~n
  | Some p ->
    Cache.access_run_classified ctx.cache ~addr ~stride ~n ~f:(fun cl trailing ->
        ignore
          (Obs.record_access p ~aid:cr.aid ~line:cl.Cache.cl_line
             ~hit:cl.Cache.cl_hit ~cold:cl.Cache.cl_cold
             ~evicted:cl.Cache.cl_evicted);
        if trailing > 0 then Obs.record_hit_run p ~aid:cr.aid ~n:trailing));
  match ctx.tlb with
  | None -> ()
  | Some t -> (
    match ctx.probe with
    | None -> Cache.access_run t ~addr ~stride ~n
    | Some p ->
      let m0 = Cache.miss_count t in
      Cache.access_run t ~addr ~stride ~n;
      (* attribute the batch's TLB misses one by one; all belong to the
         segment's only array *)
      for _ = 1 to Cache.miss_count t - m0 do
        Obs.record_tlb_miss p ~aid:cr.aid
      done)

let run_segment ctx lmask plmask assoc1 g n =
  if Array.length g.g_refs = 1 then
    run_single ctx g.g_refs.(0) ~addr:g.g_addrs.(0) ~stride:g.g_strides.(0) ~n
  else begin
    let k = Array.length g.g_refs in
    let has_tlb = Option.is_some ctx.tlb in
    let page_addrs = Array.make k 0 in
    let left = ref n in
    while !left > 0 do
      (* page block: no reference crosses a TLB page inside it *)
      let pb = if has_tlb then block_size g plmask !left else !left in
      Array.blit g.g_addrs 0 page_addrs 0 k;
      let tlb_steady = ref (not has_tlb) in
      let tlb_pending = ref 0 in
      let pleft = ref pb in
      while !pleft > 0 do
        (* cache block: no reference crosses a cache line inside it *)
        let bsz = block_size g lmask !pleft in
        (* scalar-simulate until the block remainder is provably steady *)
        let done_ = ref 0 in
        let stop = ref false in
        while not !stop && !done_ < bsz do
          let allhit = scalar_iter ctx g ~tlb_steady ~tlb_pending in
          incr done_;
          let m = bsz - !done_ in
          if m > 0 && !tlb_steady then
            if allhit then begin
              ff_hits ctx g m;
              tlb_pending := !tlb_pending + m;
              done_ := bsz;
              stop := true
            end
            else if assoc1 && !done_ >= 2 then begin
              (* the iteration just captured ran from the direct-mapped
                 fixed point (>= 1 full in-block iteration preceded it) *)
              ff_repeat ctx g m;
              tlb_pending := !tlb_pending + m;
              done_ := bsz;
              stop := true
            end
        done;
        pleft := !pleft - bsz
      done;
      (* settle the TLB accesses skipped since it went steady: all hits
         on the page block's resident pages *)
      (if !tlb_pending > 0 then
         match ctx.tlb with
         | None -> ()
         | Some t -> Cache.hit_run t ~addrs:page_addrs ~k ~m:!tlb_pending);
      left := !left - pb
    done
  end

(* Cut the innermost sweep [lo, hi] into maximal segments on which the
   set of inner-guard-active statements is constant, and run each.
   [sel] holds the sweep-active statements (outer guards hold) with
   their inner guard interval, pre-intersected with [lo, hi]. *)
let sweep_segments ctx lmask plmask assoc1 stmts
    (sel : (cstmt * int * int) list) vals iv lo hi =
  let v = ref lo in
  while !v <= hi do
    let a = !v in
    (* next endpoint where some statement's inner interval opens or
       closes, i.e. the active set changes *)
    let e = ref (hi + 1) in
    List.iter
      (fun (_, glo, ghi) ->
        if a < glo then begin
          if glo < !e then e := glo
        end
        else if a <= ghi && ghi + 1 < !e then e := ghi + 1)
      sel;
    let b = !e - 1 in
    let active =
      List.filter_map
        (fun (s, glo, ghi) -> if a >= glo && a <= ghi then Some s else None)
        sel
    in
    (match active with
    | [] -> ()
    | _ ->
      let refs =
        Array.concat (List.map (fun (s : cstmt) -> s.ctrace) active)
      in
      (* precheck subscript bounds at both endpoints (affine in the
         sweep variable, so endpoint validity covers the interior);
         on failure rerun this segment through the raising scalar walk
         so a bad schedule fails at the identical iteration *)
      vals.(iv) <- a;
      let ok = ref (Array.for_all (fun r -> ref_in_bounds r vals) refs) in
      if !ok && b > a then begin
        vals.(iv) <- b;
        ok := Array.for_all (fun r -> ref_in_bounds r vals) refs
      end;
      if not !ok then
        for w = a to b do
          vals.(iv) <- w;
          exec_stmts_trace ctx vals stmts
        done
      else begin
        vals.(iv) <- a;
        run_segment ctx lmask plmask assoc1 (make_seg refs vals) (b - a + 1)
      end);
    v := !e
  done

let exec_box_runs compiled nest_arity ctx (b : Schedule.box) =
  let stmts : cstmt array = compiled.(b.Schedule.nest) in
  let nd : int = nest_arity.(b.Schedule.nest) in
  let vals = Array.make nd 0 in
  let t0 = match ctx.probe with None -> 0.0 | Some _ -> ctx_cycles ctx in
  ctx.boxes <- ctx.boxes + 1;
  let iters = Schedule.box_iterations b in
  ctx.iters <- ctx.iters + iters;
  ctx.ops <- ctx.ops + (iters * Array.length stmts);
  (if nd = 0 then exec_stmts_trace ctx vals stmts
   else begin
     let iv = nd - 1 in
     let lo, hi = b.Schedule.ranges.(iv) in
     let lmask = (Cache.config ctx.cache).Cache.line - 1 in
     let plmask =
       match ctx.tlb with
       | None -> lmask
       | Some t -> (Cache.config t).Cache.line - 1
     in
     let assoc1 = (Cache.config ctx.cache).Cache.assoc = 1 in
     (* split each statement's guard: outer-variable conjuncts gate the
        whole sweep, innermost-variable conjuncts become an interval *)
     let split =
       Array.map
         (fun (s : cstmt) ->
           let outer = ref [] and glo = ref lo and ghi = ref hi in
           Array.iter
             (fun ((v, l, h) as gd) ->
               if v = iv then begin
                 if l > !glo then glo := l;
                 if h < !ghi then ghi := h
               end
               else outer := gd :: !outer)
             s.cguard;
           (s, Array.of_list (List.rev !outer), !glo, !ghi))
         stmts
     in
     let rec go d =
       if d = iv then begin
         let sel =
           Array.to_list split
           |> List.filter_map (fun (s, outer, glo, ghi) ->
                  if glo <= ghi && guard_holds outer vals then
                    Some (s, glo, ghi)
                  else None)
         in
         if sel <> [] then
           sweep_segments ctx lmask plmask assoc1 stmts sel vals iv lo hi
       end
       else begin
         let dlo, dhi = b.Schedule.ranges.(d) in
         for v = dlo to dhi do
           vals.(d) <- v;
           go (d + 1)
         done
       end
     in
     go 0
   end);
  match ctx.probe with
  | None -> ()
  | Some p ->
    Obs.box_span p ~nest:b.Schedule.nest ~iters ~t0 ~t1:(ctx_cycles ctx)

(* ------------------------------------------------------------------ *)
(* Running a schedule                                                  *)

let exec_box exec_stmts compiled nest_arity ctx (b : Schedule.box) =
  let stmts : cstmt array = compiled.(b.Schedule.nest) in
  let nd : int = nest_arity.(b.Schedule.nest) in
  let vals = Array.make nd 0 in
  let t0 = match ctx.probe with None -> 0.0 | Some _ -> ctx_cycles ctx in
  ctx.boxes <- ctx.boxes + 1;
  let iters = Schedule.box_iterations b in
  ctx.iters <- ctx.iters + iters;
  ctx.ops <- ctx.ops + (iters * Array.length stmts);
  let rec go d =
    if d = nd then exec_stmts ctx vals stmts
    else begin
      let lo, hi = b.Schedule.ranges.(d) in
      for v = lo to hi do
        vals.(d) <- v;
        go (d + 1)
      done
    end
  in
  go 0;
  match ctx.probe with
  | None -> ()
  | Some p ->
    Obs.box_span p ~nest:b.Schedule.nest ~iters ~t0 ~t1:(ctx_cycles ctx)

(* The engine proper: everything above drives this one function.  All
   public entry points (run_request and the compatibility wrappers)
   funnel through here. *)
let run_sched ?sink ~layout ?init ~steps ~mode ?jobs ?pool
    ~machine:(m : Machine.config) (sched : Schedule.t) =
  let prog = sched.Schedule.prog in
  let nprocs = sched.Schedule.nprocs in
  (* Stream generation setup: the store and the name -> (values,
     extents) lookup the compiled statements close over.  The replay
     modes skip allocating and initialising the value arrays entirely;
     their results carry an empty store. *)
  let store, lookup =
    match mode with
    | Full ->
      let store = Interp.create ?init prog in
      ( store,
        fun name -> (Interp.find_array store name, Interp.find_extents store name)
      )
    | Miss_only | Run_compressed ->
      let extents = Hashtbl.create 16 in
      List.iter
        (fun (d : Ir.decl) ->
          Hashtbl.replace extents d.Ir.aname (Array.of_list d.Ir.extents))
        prog.Ir.decls;
      let no_values = [||] in
      ( { Interp.arrays = Hashtbl.create 1; extents = Hashtbl.create 1 },
        fun name ->
          match Hashtbl.find_opt extents name with
          | Some e -> (no_values, e)
          | None -> invalid_arg ("Exec.run: undeclared array " ^ name) )
  in
  let decls = Array.of_list prog.Ir.decls in
  let aid_of name =
    let rec go i =
      if i >= Array.length decls then
        invalid_arg ("Exec.run: undeclared array " ^ name)
      else if String.equal decls.(i).Ir.aname name then i
      else go (i + 1)
    in
    go 0
  in
  let compiled =
    Array.of_list (List.map (compile_nest lookup layout aid_of) prog.Ir.nests)
  in
  let nest_arity =
    Array.of_list
      (List.map (fun (n : Ir.nest) -> List.length n.Ir.levels) prog.Ir.nests)
  in
  (match sink with
  | None -> ()
  | Some s ->
    Obs.attach s ~machine:m.Machine.mname ~nprocs
      ~arrays:(Array.map (fun (d : Ir.decl) -> d.Ir.aname) decls)
      ~labels:(Array.of_list (Schedule.phase_labels sched))
      ~remote_fraction:(Machine.remote_fraction m ~nprocs));
  let miss_cost = Machine.miss_penalty m ~nprocs in
  (* the simulated address space is dense in [0, layout.total_bytes):
     size the caches' cold-tracking bitsets to it *)
  let footprint = layout.Partition.total_bytes in
  let ctxs =
    Array.init nprocs (fun proc ->
        {
          cache = Cache.of_geometry (Cache.geometry ~footprint m.cache);
          tlb =
            Option.map
              (fun shape -> Cache.of_geometry (Cache.geometry ~footprint shape))
              m.Machine.tlb;
          boxes = 0;
          iters = 0;
          ops = 0;
          h0 = 0;
          m0 = 0;
          tm0 = 0;
          op_cost = m.cost.op;
          hit_cost = m.cost.hit;
          miss_cost;
          loop_cost = m.cost.loop_overhead;
          iter_cost = m.cost.iter_overhead;
          tlb_miss_cost = m.cost.tlb_miss;
          probe = Option.map (fun s -> Obs.probe s ~proc) sink;
        })
  in
  (* probes in simulated-processor order, for the phase-end merge *)
  let probes =
    match sink with
    | None -> [||]
    | Some _ -> Array.map (fun c -> Option.get c.probe) ctxs
  in
  let exec_one =
    match mode with
    | Full -> exec_box exec_stmts_full compiled nest_arity
    | Miss_only -> exec_box exec_stmts_trace compiled nest_arity
    | Run_compressed -> exec_box_runs compiled nest_arity
  in
  (* Cache replay across host domains: each simulated processor is
     claimed by exactly one domain per phase (self-scheduled, so the
     load imbalance of peeled tails costs at most one processor of idle
     time), and every reduction below happens after the join, on this
     domain, in simulated-processor order — bit-identical to serial. *)
  let jobs =
    max 1 (min nprocs (match jobs with Some j -> j | None -> default_jobs ()))
  in
  let pool =
    match pool with
    | Some p -> if Pool.size p > 1 && nprocs > 1 then Some p else None
    | None -> if jobs > 1 then Some (shared_pool_of ~jobs) else None
  in
  let run_procs f =
    match pool with
    | None ->
      for proc = 0 to nprocs - 1 do
        f proc
      done
    | Some pool -> Pool.dynamic_for pool ~lo:0 ~hi:(nprocs - 1) f
  in
  let phases = Array.of_list sched.Schedule.phases in
  let nphases = Array.length phases in
  let phase_cycles = Array.make nphases 0.0 in
  let barrier_cost = Machine.barrier_cost m ~nprocs in
  for step = 1 to steps do
    Array.iteri
      (fun i ph ->
        (match sink with
        | None -> ()
        | Some s -> Obs.phase_begin s ~step ~phase:i);
        Array.iter phase_reset ctxs;
        run_procs (fun proc ->
            let ctx = ctxs.(proc) in
            (match ctx.probe with
            | None -> ()
            | Some p -> Obs.set_phase p ~step ~phase:i);
            List.iter (exec_one ctx) ph.(proc));
        (* deterministic reduction, simulated-processor order *)
        (match sink with
        | None -> ()
        | Some s -> Obs.flush_boxes s probes);
        let pcyc = Array.map ctx_cycles ctxs in
        let t = Array.fold_left Float.max 0.0 pcyc in
        phase_cycles.(i) <- phase_cycles.(i) +. t;
        match sink with
        | None -> ()
        | Some s ->
          Array.iteri
            (fun proc c -> Obs.proc_cycles s ~phase:i ~proc ~cycles:c)
            pcyc;
          Obs.phase_end s ~step ~phase:i ~cycles:t;
          (* mirror the aggregate barrier count below: one barrier after
             every phase except the very last of the run *)
          if not (step = steps && i = nphases - 1) then
            Obs.barrier s ~step ~after_phase:i ~cost:barrier_cost)
      phases
  done;
  (* one barrier after every phase except the very last of the run *)
  let nbarriers = max 0 ((Array.length phases * steps) - 1) in
  let barrier_cycles =
    float_of_int nbarriers *. Machine.barrier_cost m ~nprocs
  in
  let cycles = Array.fold_left ( +. ) barrier_cycles phase_cycles in
  let proc_misses =
    Array.map (fun c -> (Cache.stats c.cache).Cache.s_misses) ctxs
  in
  let total_misses = Array.fold_left ( + ) 0 proc_misses in
  let total_refs =
    Array.fold_left (fun acc c -> acc + Cache.references c.cache) 0 ctxs
  in
  let cold_misses =
    Array.fold_left
      (fun acc c -> acc + (Cache.stats c.cache).Cache.s_cold)
      0 ctxs
  in
  let tlb_misses =
    Array.fold_left
      (fun acc c ->
        acc
        + (match c.tlb with
          | None -> 0
          | Some t -> (Cache.stats t).Cache.s_misses))
      0 ctxs
  in
  {
    cycles;
    phase_cycles;
    barrier_cycles;
    total_refs;
    total_misses;
    cold_misses;
    tlb_misses;
    proc_misses;
    store;
  }

(* The primary entry point: a request names the simulation; host-side
   knobs (jobs, pool, sink, and — for the compatibility layer — init)
   ride alongside because they are bit-identity-preserving. *)
let run_request_gen ?sink ?init ?jobs ?pool (req : Sim.request) =
  run_sched ?sink ~layout:(Sim.layout_of req) ?init ~steps:req.Sim.steps
    ~mode:req.Sim.mode ?jobs ?pool ~machine:req.Sim.machine
    (Sim.schedule_of req)

let run_request ?jobs ?pool ?sink req = run_request_gen ?sink ?jobs ?pool req

(* Host-side execution options as one value.  lf_machine sits below
   lf_batch, so this is the bottom half of the unified options story:
   exactly the knobs the engine guarantees are bit-identity-preserving
   (jobs/pool choose host domains, sink is passive observation).  The
   full policy record — engine tier, store policy, timeout — lives in
   Lf_batch.Run_opts, which lowers onto this one. *)
type opts = {
  o_jobs : int option;
  o_pool : Pool.t option;
  o_sink : Obs.sink option;
}

let default_opts = { o_jobs = None; o_pool = None; o_sink = None }
let opts ?jobs ?pool ?sink () = { o_jobs = jobs; o_pool = pool; o_sink = sink }

let run_opts o req =
  run_request_gen ?sink:o.o_sink ?jobs:o.o_jobs ?pool:o.o_pool req

(* Compatibility layer: the historical optional-argument entry points,
   re-expressed as request builders (see exec.mli). *)
let run ?sink ?layout ?init ?steps ?mode ?jobs ?pool ~machine sched =
  run_request_gen ?sink ?init ?jobs ?pool
    (Sim.of_schedule ?layout ?steps ?mode ~machine sched)

let run_unfused ?sink ?layout ?init ?steps ?mode ?jobs ?pool ?grid ?depth
    ~machine ~nprocs p =
  run_request_gen ?sink ?init ?jobs ?pool
    (Sim.unfused ?grid ?depth ?layout ?steps ?mode ~machine ~nprocs p)

let run_fused ?sink ?layout ?init ?steps ?mode ?jobs ?pool ?grid ?strip
    ?derive ~machine ~nprocs p =
  run_request_gen ?sink ?init ?jobs ?pool
    (Sim.fused ?grid ?strip ?derive ?layout ?steps ?mode ~machine ~nprocs p)

(* Attribution tables from a sink recorded by [run]. *)
let breakdown sink ~by = Obs.breakdown sink ~by

let speedup ~baseline_cycles (r : result) = baseline_cycles /. r.cycles
