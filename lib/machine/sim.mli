(** First-class simulation requests: one value that {e names} a
    simulation.

    Historically every way of running the simulator ({!Exec.run},
    [run_unfused], [run_fused], the autotuner's exact tier, the bench
    sweeps) grew its own pile of optional arguments, and nothing in the
    system could say "this exact simulation" — which is precisely what a
    persistent result cache ({!Lf_batch.Batch.Store}) and a batch job
    list ({!Lf_batch.Batch.run}) need.  A {!request} captures everything
    that determines the simulated observables:

    - the program (its canonical printed form),
    - the machine configuration (geometry and every cost coefficient),
    - the schedule variant (unfused / fused shift-and-peel / an explicit
      prebuilt schedule, serialised box by box),
    - the memory layout (concrete placements, padding included),
    - the number of simulated processors, the step count, and the
      engine mode.

    {b Cache-key discipline.}  Host-side execution knobs — [jobs],
    [pool], an attached [sink] — are deliberately {e outside} the
    request: the engine guarantees they are bit-identity-preserving
    (test/test_engine.ml, test/test_obs.ml), so they can vary freely
    between the run that produced a cached result and the run that
    reuses it.  Everything that could change a single observable bit is
    {e inside} the request and hence inside {!digest}.  [?init]
    (a custom store initialiser, a closure) cannot be named by data and
    is therefore not part of a request: runs with a custom initialiser
    take the compatibility entry points and are never cached.

    {!digest} is salted with {!version_salt} plus the {!Fingerprint}s
    of exactly the modules the request depends on; bump a module's
    [version] whenever its observable behaviour changes so stale
    persisted results can never be replayed (test/test_batch.ml pins
    known digests), without cold-starting results that never depended
    on that module. *)

type mode = Full | Miss_only | Run_compressed
(** Engine tier, re-exported by {!Exec.mode} (which documents the
    tiers).  All three produce bit-identical observables; only [Full]
    materialises the store. *)

type variant =
  | Unfused of { grid : int array option; depth : int option }
      (** {!Lf_core.Schedule.unfused}: one block-scheduled phase per
          nest. *)
  | Fused of {
      grid : int array option;
      strip : int option;
      derive : Lf_core.Derive.t option;
    }
      (** {!Lf_core.Schedule.fused}: shift-and-peel at [strip]. *)
  | Explicit of Lf_core.Schedule.t
      (** A prebuilt schedule (clustered, wavefront, alignment+
          replication, ...), serialised structurally — phases, boxes and
          ranges — so any schedule has a stable digest. *)

type request = {
  prog : Lf_ir.Ir.program;
  machine : Machine.config;
  variant : variant;
  layout : Lf_core.Partition.layout option;
      (** [None] = the dense contiguous default layout. *)
  nprocs : int;
  steps : int;
  mode : mode;
}

val make :
  ?layout:Lf_core.Partition.layout ->
  ?steps:int ->
  ?mode:mode ->
  machine:Machine.config ->
  nprocs:int ->
  variant:variant ->
  Lf_ir.Ir.program ->
  request
(** [steps] defaults to 1, [mode] to [Full] (mirroring {!Exec.run}). *)

val unfused :
  ?grid:int array ->
  ?depth:int ->
  ?layout:Lf_core.Partition.layout ->
  ?steps:int ->
  ?mode:mode ->
  machine:Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  request

val fused :
  ?grid:int array ->
  ?strip:int ->
  ?derive:Lf_core.Derive.t ->
  ?layout:Lf_core.Partition.layout ->
  ?steps:int ->
  ?mode:mode ->
  machine:Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  request

val of_schedule :
  ?layout:Lf_core.Partition.layout ->
  ?steps:int ->
  ?mode:mode ->
  machine:Machine.config ->
  Lf_core.Schedule.t ->
  request
(** Wrap a prebuilt schedule; [nprocs] and the program come from the
    schedule itself. *)

val schedule_of : request -> Lf_core.Schedule.t
(** Realise the request's schedule ([Explicit] returns it unchanged).
    May raise what {!Lf_core.Schedule.fused} raises on an illegal
    fusion. *)

val legal : request -> bool
(** Pure legality probe: [true] iff {!schedule_of} succeeds (small
    iteration spaces can violate the Theorem 1 threshold for fused
    variants).  Touches no domains, so it is fork-safe; the single
    source of truth shared by the serve bench and the script engine. *)

val layout_of : request -> Lf_core.Partition.layout
(** The request's layout, defaulting to dense contiguous placement. *)

val version_salt : string
(** Version of the request serialisation itself, mixed into every
    {!digest}.  Behavioural versioning lives in the per-module
    {!Fingerprint}s; bump this only when {!canonical} changes shape. *)

(** Per-module behaviour fingerprints salted into {!digest}.

    Each library module whose code can alter a simulated observable
    exports a [version] string (Ir, Schedule, Derive, Partition, Cache,
    Machine — the last also covering the timed executor).  A request's
    digest folds in only the fingerprints of the modules it actually
    depends on:

    - ["ir"], ["cache"], ["machine"] — always;
    - ["schedule"] — only when the schedule is rebuilt at replay time
      ([Unfused]/[Fused]; [Explicit] serialises the structure);
    - ["derive"] — only for [Fused] with [derive = None] (an explicit
      [Derive.t] is serialised as data);
    - ["partition"] — only when [layout = None] (the constructed default
      layout).

    Bumping one module's version therefore invalidates exactly the
    store entries that could replay differently — e.g. a [Derive] bump
    cold-starts fused-variant digests and nothing else, and modules
    with no fingerprint at all (the autotuner, the CLI) never
    invalidate anything. *)
module Fingerprint : sig
  type t = (string * string) list
  (** Module-name/version pairs in canonical (alphabetical) order. *)

  val all : unit -> t
  (** The full live fingerprint set (overrides applied). *)

  val modules_of : request -> string list
  (** Names of the modules this request depends on. *)

  val of_request : request -> t
  (** The live fingerprints of exactly {!modules_of}. *)

  val value : string -> string
  (** Live value for a module name; raises [Not_found] if unknown. *)

  val set_override : string -> string -> (unit, string) result
  (** Replace one module's fingerprint process-wide (testing and the
      sweep invalidation experiment).  Fails on unknown module names
      and on values containing whitespace. *)

  val set_spec : string -> (unit, string) result
  (** [set_spec "module=value"] — the [--fingerprint] CLI form. *)

  val clear_overrides : unit -> unit

  val save_file : string -> unit
  (** Atomically write the live set as one ["name value"] line per
      module, so cooperating processes (sweep enqueuer, queue workers)
      share one fingerprint view. *)

  val load_file : string -> (unit, string) result
  (** Install every entry of a {!save_file} file as an override. *)
end

val canonical : request -> string
(** Canonical serialisation: a stable, human-greppable text form that
    two structurally equal requests map to byte-for-byte.  Floats are
    rendered in hexadecimal ([%h]) so the round trip is exact. *)

val digest : request -> string
(** Hex digest of {!version_salt}, the request's {!Fingerprint.of_request}
    pairs and {!canonical} — the content address used by the persistent
    store. *)

val mode_to_string : mode -> string
(** ["full"], ["miss-only"], ["runs"] — the [--engine] vocabulary. *)

val mode_of_string : string -> (mode, string) result

val pp : Format.formatter -> request -> unit
(** One-line summary: program name, machine, variant, nprocs, mode. *)
