(** Simulated scalable shared-memory multiprocessor (paper Figure 1):
    private caches, physically distributed memory, and a cycle cost
    model.  Presets model the paper's KSR2 and Convex SPP-1000. *)

type cost = {
  op : float;  (** cycles per statement instance *)
  hit : float;  (** cycles per cache hit *)
  miss_local : float;  (** penalty per locally-serviced miss *)
  miss_remote : float;  (** extra penalty per remote miss *)
  barrier_base : float;
  barrier_per_proc : float;
  loop_overhead : float;  (** per executed box (loop setup, guards) *)
  iter_overhead : float;  (** per loop iteration *)
  tlb_miss : float;  (** penalty per TLB miss *)
}

type config = {
  mname : string;
  max_procs : int;
  hypernode : int;  (** processors per uniform-cost memory node *)
  cache : Lf_cache.Cache.config;
  tlb : Lf_cache.Cache.config option;
      (** data TLB, modelled as a cache of page-sized lines (Bacon et
          al.'s padding work also targets TLB conflicts, paper §2.4) *)
  cost : cost;
}

val remote_fraction : config -> nprocs:int -> float
(** Fraction of misses serviced remotely: data is distributed across
    the nodes in use, so nothing is remote within one hypernode. *)

val miss_penalty : config -> nprocs:int -> float
val barrier_cost : config -> nprocs:int -> float

val version : string
(** Fingerprint of the machine cost model and the timed executor
    ({!Exec}) built on it, folded into every {!Sim.digest}.  Bump on
    any observable change to either; no spaces. *)

val ksr2 : config
(** KSR2: 56 processors, 256 KB two-way caches, 32-processor ALLCACHE
    ring; slow clock → relatively cheap misses, hence the paper's
    smaller fusion gains (7-20%). *)

val convex : config
(** Convex SPP-1000: 16 processors in two hypernodes of 8, 1 MB
    direct-mapped caches; fast clock → expensive misses, hence gains of
    30% and more. *)

val pp : Format.formatter -> config -> unit
