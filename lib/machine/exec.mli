(** Execution-driven simulation of schedules on a simulated
    shared-memory multiprocessor: one cache per processor, a memory
    layout mapping array elements to addresses, and the cycle cost model
    of {!Machine}.  Produces both the semantic result (for verification)
    and the paper's observables (cycles, misses). *)

type result = {
  cycles : float;  (** simulated execution time in cycles *)
  phase_cycles : float array;  (** per-phase maximum over processors *)
  barrier_cycles : float;  (** total barrier cost included in [cycles] *)
  total_refs : int;  (** memory references issued (all processors) *)
  total_misses : int;  (** cache misses (all processors) *)
  cold_misses : int;  (** compulsory misses (all processors) *)
  tlb_misses : int;  (** TLB misses (all processors), 0 when no TLB *)
  proc_misses : int array;  (** per-processor miss counts *)
  store : Lf_ir.Interp.store;  (** final array contents *)
}

val proc0_misses : result -> int
(** Misses of processor 0, the paper's "single processor during parallel
    execution" measure (Figures 18, 20). *)

val run :
  ?layout:Lf_core.Partition.layout ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  machine:Machine.config ->
  Lf_core.Schedule.t ->
  result
(** [run ~machine sched] simulates [sched] with one cache per
    processor.  [layout] defaults to a dense contiguous placement;
    [steps] repeats the whole schedule (a sequential time-step loop
    around the parallel loop sequence, with caches persisting across
    steps). *)

val run_unfused :
  ?layout:Lf_core.Partition.layout ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  ?grid:int array ->
  ?depth:int ->
  machine:Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  result
(** Simulate the original program: one block-scheduled parallel phase
    per nest, barriers in between. *)

val run_fused :
  ?layout:Lf_core.Partition.layout ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  ?grid:int array ->
  ?strip:int ->
  ?derive:Lf_core.Derive.t ->
  machine:Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  result
(** Simulate the fused shift-and-peel version (fused phase, barrier,
    peeled iterations). *)

val speedup : baseline_cycles:float -> result -> float
