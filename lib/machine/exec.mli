(** Execution-driven simulation of schedules on a simulated
    shared-memory multiprocessor: one cache per processor, a memory
    layout mapping array elements to addresses, and the cycle cost model
    of {!Machine}.  Produces both the semantic result (for verification)
    and the paper's observables (cycles, misses). *)

type result = {
  cycles : float;  (** simulated execution time in cycles *)
  phase_cycles : float array;  (** per-phase maximum over processors *)
  barrier_cycles : float;  (** total barrier cost included in [cycles] *)
  total_refs : int;  (** memory references issued (all processors) *)
  total_misses : int;  (** cache misses (all processors) *)
  cold_misses : int;  (** compulsory misses (all processors) *)
  tlb_misses : int;  (** TLB misses (all processors), 0 when no TLB *)
  proc_misses : int array;  (** per-processor miss counts *)
  store : Lf_ir.Interp.store;  (** final array contents *)
}

val proc0_misses : result -> int
(** Misses of processor 0, the paper's "single processor during parallel
    execution" measure (Figures 18, 20). *)

val run :
  ?sink:Lf_obs.Obs.sink ->
  ?layout:Lf_core.Partition.layout ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  machine:Machine.config ->
  Lf_core.Schedule.t ->
  result
(** [run ~machine sched] simulates [sched] with one cache per
    processor.  [layout] defaults to a dense contiguous placement;
    [steps] repeats the whole schedule (a sequential time-step loop
    around the parallel loop sequence, with caches persisting across
    steps).

    [sink] attaches an {!Lf_obs.Obs.sink} collecting per-array x
    per-phase x per-processor counters and a structured event stream.
    Attaching a sink never changes the simulation: the store, cycle
    counts and cache statistics are bit-identical with and without it
    (the observer-effect property in test/test_obs.ml). *)

val run_unfused :
  ?sink:Lf_obs.Obs.sink ->
  ?layout:Lf_core.Partition.layout ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  ?grid:int array ->
  ?depth:int ->
  machine:Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  result
(** Simulate the original program: one block-scheduled parallel phase
    per nest, barriers in between. *)

val run_fused :
  ?sink:Lf_obs.Obs.sink ->
  ?layout:Lf_core.Partition.layout ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  ?grid:int array ->
  ?strip:int ->
  ?derive:Lf_core.Derive.t ->
  machine:Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  result
(** Simulate the fused shift-and-peel version (fused phase, barrier,
    peeled iterations). *)

val breakdown :
  Lf_obs.Obs.sink ->
  by:Lf_obs.Obs.group ->
  (string * Lf_obs.Obs.total) list
(** Attribution tables from a sink recorded by {!run}: counter totals
    grouped by array, phase or processor. *)

val speedup : baseline_cycles:float -> result -> float
