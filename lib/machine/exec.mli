(** Execution-driven simulation of schedules on a simulated
    shared-memory multiprocessor: one cache per processor, a memory
    layout mapping array elements to addresses, and the cycle cost model
    of {!Machine}.  Produces both the semantic result (for verification)
    and the paper's observables (cycles, misses).

    {b Two-level parallelism.}  The {e simulated} processors of a phase
    are independent by construction (the paper's phases are parallel
    loops), so the {e host} can interpret them on several OCaml domains
    concurrently: [run ~jobs:j] maps the schedule's P simulated
    processors onto up to [j] host domains per phase.  Each simulated
    processor's state (cache, TLB, cycle counter, probe) is owned by
    exactly one domain at a time, and every cross-processor reduction
    (phase max, miss sums, event-stream merge) happens after the join
    in simulated-processor order — so the result, including [store] and
    the attached sink's contents, is bit-identical for every [jobs]
    value.  Determinism relies on the schedule being legal (no
    dependence between processors within a phase), which is what the
    barrier placement asserts; all schedules built by {!Lf_core.Schedule}
    satisfy it. *)

type result = {
  cycles : float;  (** simulated execution time in cycles *)
  phase_cycles : float array;  (** per-phase maximum over processors *)
  barrier_cycles : float;  (** total barrier cost included in [cycles] *)
  total_refs : int;  (** memory references issued (all processors) *)
  total_misses : int;  (** cache misses (all processors) *)
  cold_misses : int;  (** compulsory misses (all processors) *)
  tlb_misses : int;  (** TLB misses (all processors), 0 when no TLB *)
  proc_misses : int array;  (** per-processor miss counts *)
  store : Lf_ir.Interp.store;  (** final array contents; empty in
                                   [Miss_only] mode *)
}

type mode = Sim.mode =
  | Full  (** interpret values and replay the cache (the default) *)
  | Miss_only
      (** trace-driven fast path: generate and replay only the address
          stream, skipping floating-point value interpretation and the
          store allocation.  Addresses are layout-dependent but
          value-independent, so every performance observable ([cycles],
          [phase_cycles], miss/TLB/ref counts, sink contents) is
          bit-identical to [Full]; only [store] is empty.  Use when the
          caller needs cache statistics, not array contents (the
          autotuner's exact tier, padding sweeps). *)
  | Run_compressed
      (** batched line-granular replay: the iteration walker emits
          per-reference [(start, byte stride, count)] runs instead of
          individual addresses, and whole runs drive the caches at
          cache-line granularity — consecutive same-line accesses
          coalesce, steady iterations fast-forward in closed form
          (all-hit blocks on any geometry; verbatim-repeat blocks on
          direct-mapped geometry), with scalar fallback elsewhere.
          Every observable is bit-identical to [Miss_only] — counters,
          cycles, sink contents and event stream — only wall-clock
          changes (DESIGN §6b).  Like [Miss_only] the [store] is empty.
          The default engine for sweeps and the autotuner's exact
          tier. *)

val proc0_misses : result -> int
(** Misses of processor 0, the paper's "single processor during parallel
    execution" measure (Figures 18, 20). *)

val default_jobs : unit -> int
(** The job count used when [?jobs] is omitted: the last value passed
    to {!set_default_jobs}, else the [LF_JOBS] environment variable
    (a positive integer, or ["auto"]/["0"] for
    [Domain.recommended_domain_count ()]), else [1] (serial). *)

val set_default_jobs : int -> unit
(** Override the default host-domain count for subsequent runs
    (e.g. from a [--jobs] command-line flag). *)

val release_shared_pool : unit -> unit
(** Shut down the internally shared domain pool, if one exists.  The
    pool is created lazily by the first parallel [run], reused across
    runs, and shut down automatically at exit; tests use this to force
    a fresh pool. *)

type opts = {
  o_jobs : int option;  (** host domains; [None] means {!default_jobs} *)
  o_pool : Lf_parallel.Pool.t option;  (** existing domain pool to reuse *)
  o_sink : Lf_obs.Obs.sink option;  (** passive attribution sink *)
}
(** Host-side execution options as a single value — the bottom half of
    the unified request-options API.  Everything here is outside the
    request digest by design: the engine is bit-identical for every
    [o_jobs]/[o_pool] choice and a sink is observation, not
    configuration.  The policy half (engine tier, store policy,
    timeout) is [Lf_batch.Run_opts], which lowers onto this record;
    lf_machine cannot see lf_batch, so the two live one layer apart. *)

val default_opts : opts
(** All fields [None]: default jobs, shared pool, no sink. *)

val opts :
  ?jobs:int -> ?pool:Lf_parallel.Pool.t -> ?sink:Lf_obs.Obs.sink -> unit -> opts

val run_opts : opts -> Sim.request -> result
(** [run_opts o req] simulates exactly the configuration [req] names
    under host options [o].  This is the primary entry point;
    {!run_request} is the historical optional-argument spelling and
    forwards to the same engine. *)

val run_request :
  ?jobs:int ->
  ?pool:Lf_parallel.Pool.t ->
  ?sink:Lf_obs.Obs.sink ->
  Sim.request ->
  result
(** {!run_opts} with the options spelled as optional arguments
    (deprecated in favour of passing an {!opts} record — kept
    bit-identical by construction, which test/test_run_opts.ml pins):
    simulate exactly the configuration the {!Sim.request} names.  Everything that determines a simulated
    observable lives inside the request (and hence inside
    {!Sim.digest}); the arguments here are host-side execution knobs
    that the engine guarantees are bit-identity-preserving — [jobs]
    and [pool] choose how many OCaml domains interpret the simulated
    processors, and [sink] attaches passive observability (see below).
    [run_request r] equals the corresponding legacy call by
    construction, which test/test_batch.ml checks as a QCheck property
    over the paper's kernels. *)

val run :
  ?sink:Lf_obs.Obs.sink ->
  ?layout:Lf_core.Partition.layout ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  ?mode:mode ->
  ?jobs:int ->
  ?pool:Lf_parallel.Pool.t ->
  machine:Machine.config ->
  Lf_core.Schedule.t ->
  result
(** {b Compatibility layer.}  [run], {!run_unfused} and {!run_fused}
    predate {!Sim.request}; they are retained as thin wrappers that
    build the equivalent request ({!Sim.of_schedule}, {!Sim.unfused},
    {!Sim.fused}) and call {!run_request}.  New call sites should build
    a request — it is the value batch execution and the persistent
    result store key on.  The only capability the wrappers add is
    [?init], a custom store initialiser: a closure cannot be part of a
    content-addressed request, so runs with [?init] exist outside the
    caching world entirely.

    [run ~machine sched] simulates [sched] with one cache per
    processor.  [layout] defaults to a dense contiguous placement;
    [steps] repeats the whole schedule (a sequential time-step loop
    around the parallel loop sequence, with caches persisting across
    steps).

    [jobs] (default {!default_jobs}) is the number of host domains the
    simulated processors are mapped onto, clamped to the processor
    count; [1] is the serial engine.  [pool] supplies an existing
    {!Lf_parallel.Pool} to run on instead (reused across phases, steps
    and successive runs); without it, parallel runs share one
    internally cached pool.  The result is bit-identical for every
    [jobs]/[pool] choice.

    [sink] attaches an {!Lf_obs.Obs.sink} collecting per-array x
    per-phase x per-processor counters and a structured event stream.
    Attaching a sink never changes the simulation: the store, cycle
    counts and cache statistics are bit-identical with and without it
    (the observer-effect property in test/test_obs.ml), under any
    [jobs] count — each domain records into probe-private buffers that
    are merged deterministically at phase end. *)

val run_unfused :
  ?sink:Lf_obs.Obs.sink ->
  ?layout:Lf_core.Partition.layout ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  ?mode:mode ->
  ?jobs:int ->
  ?pool:Lf_parallel.Pool.t ->
  ?grid:int array ->
  ?depth:int ->
  machine:Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  result
(** Simulate the original program: one block-scheduled parallel phase
    per nest, barriers in between. *)

val run_fused :
  ?sink:Lf_obs.Obs.sink ->
  ?layout:Lf_core.Partition.layout ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  ?mode:mode ->
  ?jobs:int ->
  ?pool:Lf_parallel.Pool.t ->
  ?grid:int array ->
  ?strip:int ->
  ?derive:Lf_core.Derive.t ->
  machine:Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  result
(** Simulate the fused shift-and-peel version (fused phase, barrier,
    peeled iterations). *)

val breakdown :
  Lf_obs.Obs.sink ->
  by:Lf_obs.Obs.group ->
  (string * Lf_obs.Obs.total) list
(** Attribution tables from a sink recorded by {!run}: counter totals
    grouped by array, phase or processor. *)

val speedup : baseline_cycles:float -> result -> float
