(* Simulated scalable shared-memory multiprocessor (paper Figure 1).

   Each processor has a private cache; memory is physically distributed,
   so a miss costs more when it must be serviced from a remote node.
   The Convex SPP-1000 groups 8 processors per hypernode: runs with more
   than 8 processors pay remote penalties for the fraction of memory
   held beyond the local hypernode, which reproduces the speedup dip the
   paper observes for spem past 8 processors.  The KSR2's ALLCACHE ring
   gives a gentler, uniform remote fraction.

   Cycle model per processor:
     t = ops * op + hits * hit + misses * (miss_local + rf * miss_remote)
         + boxes * loop_overhead + iterations * iter_overhead
   and per phase the machine advances by max over processors plus a
   barrier cost linear in the processor count. *)

type cost = {
  op : float;  (* cycles per statement instance *)
  hit : float;  (* cycles per cache hit *)
  miss_local : float;  (* penalty per local miss *)
  miss_remote : float;  (* extra penalty per remote miss *)
  barrier_base : float;
  barrier_per_proc : float;
  loop_overhead : float;  (* per executed box (loop setup, guards) *)
  iter_overhead : float;  (* per loop iteration (index update, bounds) *)
  tlb_miss : float;  (* penalty per TLB miss *)
}

type config = {
  mname : string;
  max_procs : int;
  hypernode : int;  (* processors per node with uniform-cost memory *)
  cache : Lf_cache.Cache.config;
  tlb : Lf_cache.Cache.config option;  (* data TLB, modelled as a cache
                                          of page-sized lines *)
  cost : cost;
}

(* Fraction of misses serviced remotely when [nprocs] are used: data is
   distributed across the nodes in use, so a processor finds
   (hypernode / nprocs) of it locally. *)
let remote_fraction m ~nprocs =
  if nprocs <= m.hypernode then 0.0
  else float_of_int (nprocs - m.hypernode) /. float_of_int nprocs

let miss_penalty m ~nprocs =
  m.cost.miss_local +. (remote_fraction m ~nprocs *. m.cost.miss_remote)

let barrier_cost m ~nprocs =
  m.cost.barrier_base +. (m.cost.barrier_per_proc *. float_of_int nprocs)

(* Observable-behaviour fingerprint of the machine model AND of the
   timed executor built on top of it (Exec sits above Sim in the module
   graph, so its version lives here where sim.ml can read it).  Bump on
   any change to the cycle model, miss attribution, or executor
   semantics; no spaces. *)
let version = "lf-machine-1"

(* KSR2: 40 MHz processors, 256 KB two-way set-associative caches, up to
   56 processors on the ALLCACHE ring.  Slow clock relative to its
   memory gives a comparatively low miss penalty, which is why the paper
   sees smaller fusion gains (7-20%) on this machine. *)
let ksr2 =
  {
    mname = "KSR2";
    max_procs = 56;
    hypernode = 32;  (* ALLCACHE Ring:0 connects 32 processors *)
    cache = Lf_cache.Cache.ksr2_cache;
    tlb = Some { Lf_cache.Cache.capacity = 64 * 4096; line = 4096; assoc = 64 };
    cost =
      {
        op = 3.0;
        hit = 1.0;
        miss_local = 18.0;
        miss_remote = 120.0;
        barrier_base = 200.0;
        barrier_per_proc = 30.0;
        loop_overhead = 12.0;
        iter_overhead = 1.0;
        tlb_miss = 25.0;
      };
  }

(* Convex SPP-1000: 100 MHz PA-RISC processors, 1 MB direct-mapped
   caches, 16 processors in two hypernodes of 8.  The fast clock makes
   misses relatively expensive, so locality enhancement pays more
   (the paper's >=30% kernel improvements). *)
let convex =
  {
    mname = "Convex SPP-1000";
    max_procs = 16;
    hypernode = 8;
    cache = Lf_cache.Cache.convex_cache;
    tlb = Some { Lf_cache.Cache.capacity = 120 * 4096; line = 4096; assoc = 120 };
    cost =
      {
        op = 1.0;
        hit = 1.0;
        miss_local = 60.0;
        miss_remote = 140.0;
        barrier_base = 400.0;
        barrier_per_proc = 50.0;
        loop_overhead = 8.0;
        iter_overhead = 0.5;
        tlb_miss = 30.0;
      };
  }

let pp ppf m =
  Fmt.pf ppf "%s: <=%d procs, %d KB %d-way caches" m.mname m.max_procs
    (m.cache.capacity / 1024) m.cache.assoc
