(* First-class simulation requests (see sim.mli).

   The canonical form is a line-oriented text rendering of every field
   that can influence a simulated observable.  Stability rules:

   - the program is included via [Ir.program_to_string], the same
     deterministic printer the front end round-trips through;
   - floats (machine cost coefficients) are rendered with [%h], which
     round-trips IEEE doubles exactly — two configs differing in the
     last ulp of a cost coefficient get different digests;
   - arrays and lists are length-prefixed so concatenations cannot
     collide;
   - an [Explicit] schedule is serialised structurally (grid, labels,
     then every phase's per-processor box lists), so any schedule a
     caller can build has a stable name.

   Anything host-side (jobs, pool, sink) is excluded by construction:
   it is not representable in a [request]. *)

module Ir = Lf_ir.Ir
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition
module Derive = Lf_core.Derive
module Cache = Lf_cache.Cache

type mode = Full | Miss_only | Run_compressed

type variant =
  | Unfused of { grid : int array option; depth : int option }
  | Fused of {
      grid : int array option;
      strip : int option;
      derive : Derive.t option;
    }
  | Explicit of Schedule.t

type request = {
  prog : Ir.program;
  machine : Machine.config;
  variant : variant;
  layout : Partition.layout option;
  nprocs : int;
  steps : int;
  mode : mode;
}

let make ?layout ?(steps = 1) ?(mode = Full) ~machine ~nprocs ~variant prog =
  if nprocs < 1 then invalid_arg "Sim.make: nprocs < 1";
  if steps < 1 then invalid_arg "Sim.make: steps < 1";
  { prog; machine; variant; layout; nprocs; steps; mode }

let unfused ?grid ?depth ?layout ?steps ?mode ~machine ~nprocs prog =
  make ?layout ?steps ?mode ~machine ~nprocs
    ~variant:(Unfused { grid; depth })
    prog

let fused ?grid ?strip ?derive ?layout ?steps ?mode ~machine ~nprocs prog =
  make ?layout ?steps ?mode ~machine ~nprocs
    ~variant:(Fused { grid; strip; derive })
    prog

let of_schedule ?layout ?steps ?mode ~machine (sched : Schedule.t) =
  make ?layout ?steps ?mode ~machine ~nprocs:sched.Schedule.nprocs
    ~variant:(Explicit sched) sched.Schedule.prog

let schedule_of r =
  match r.variant with
  | Explicit s -> s
  | Unfused { grid; depth } ->
    Schedule.unfused ?grid ?depth ~nprocs:r.nprocs r.prog
  | Fused { grid; strip; derive } ->
    Schedule.fused ?grid ?strip ?derive ~nprocs:r.nprocs r.prog

(* Pure legality probe: can the request's schedule actually be built?
   Small iteration spaces can violate the Theorem 1 threshold for fused
   variants.  No domains are touched, so the probe is fork-safe — the
   serve bench and the script realizer both rely on that. *)
let legal r = match schedule_of r with _ -> true | exception _ -> false

let layout_of r =
  match r.layout with
  | Some l -> l
  | None -> Partition.contiguous r.prog.Ir.decls

(* Version of the request serialisation itself (field set, canonical
   text layout).  Behavioural versioning lives in the per-module
   fingerprints below; bump this only when [canonical] changes shape. *)
let version_salt = "lf-sim-1"

(* ------------------------------------------------------------------ *)
(* Per-module fingerprints                                             *)

module Fingerprint = struct
  type t = (string * string) list

  (* Canonical order; every digest folds its subset in this order. *)
  let builtin =
    [
      ("cache", Cache.version);
      ("derive", Derive.version);
      ("ir", Ir.version);
      ("machine", Machine.version);
      ("partition", Partition.version);
      ("schedule", Schedule.version);
    ]

  let overrides : (string, string) Hashtbl.t = Hashtbl.create 7

  let valid_value v =
    v <> ""
    && String.for_all
         (fun c -> c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r')
         v

  let set_override name value =
    if not (List.mem_assoc name builtin) then
      Error (Printf.sprintf "unknown module %S (try %s)" name
               (String.concat ", " (List.map fst builtin)))
    else if not (valid_value value) then
      Error (Printf.sprintf "invalid fingerprint value %S (nonempty, no whitespace)" value)
    else begin
      Hashtbl.replace overrides name value;
      Ok ()
    end

  let set_spec spec =
    match String.index_opt spec '=' with
    | None -> Error (Printf.sprintf "bad fingerprint spec %S (want module=value)" spec)
    | Some i ->
      set_override
        (String.sub spec 0 i)
        (String.sub spec (i + 1) (String.length spec - i - 1))

  let clear_overrides () = Hashtbl.reset overrides

  let value name =
    match Hashtbl.find_opt overrides name with
    | Some v -> v
    | None -> List.assoc name builtin

  let all () = List.map (fun (n, _) -> (n, value n)) builtin

  (* The save/load file lets cooperating processes (sweep enqueuer,
     queue workers) agree on one fingerprint view even when the
     enqueuer carries overrides: one "name value" line per module,
     written atomically so a reader never sees a torn view. *)
  let save_file path =
    let dir = Filename.dirname path in
    let tmp = Filename.temp_file ~temp_dir:dir ".lffp" ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc "lffp1\n";
    List.iter (fun (n, v) -> Printf.fprintf oc "%s %s\n" n v) (all ());
    close_out oc;
    Sys.rename tmp path

  let load_file path =
    match open_in_bin path with
    | exception Sys_error e -> Error e
    | ic ->
      let fin r = close_in_noerr ic; r in
      (match input_line ic with
      | exception End_of_file -> fin (Error "empty fingerprint file")
      | "lffp1" ->
        let rec loop () =
          match input_line ic with
          | exception End_of_file -> Ok ()
          | line when String.trim line = "" -> loop ()
          | line ->
            (match String.index_opt line ' ' with
            | None -> Error (Printf.sprintf "bad fingerprint line %S" line)
            | Some i ->
              let name = String.sub line 0 i in
              let v = String.sub line (i + 1) (String.length line - i - 1) in
              (match set_override name v with
              | Ok () -> loop ()
              | Error _ as e -> e))
        in
        fin (loop ())
      | l -> fin (Error (Printf.sprintf "bad fingerprint header %S" l)))

  (* Which modules can influence this request's observables.  ir, cache
     and machine always can.  schedule only when the schedule is rebuilt
     at replay time (Explicit requests serialise the structure).  derive
     only when the fused variant derives its shift/peel itself; an
     explicit Derive.t is serialised as data.  partition only when the
     request falls back to the default constructed layout. *)
  let modules_of r =
    let schedule, derive =
      match r.variant with
      | Unfused _ -> (true, false)
      | Fused { derive; _ } -> (true, derive = None)
      | Explicit _ -> (false, false)
    in
    let partition = r.layout = None in
    List.filter
      (fun (n, _) ->
        match n with
        | "schedule" -> schedule
        | "derive" -> derive
        | "partition" -> partition
        | _ -> true)
      builtin
    |> List.map fst

  let of_request r = List.map (fun n -> (n, value n)) (modules_of r)
end

let mode_to_string = function
  | Full -> "full"
  | Miss_only -> "miss-only"
  | Run_compressed -> "runs"

let mode_of_string = function
  | "runs" | "run-compressed" -> Ok Run_compressed
  | "miss-only" -> Ok Miss_only
  | "full" -> Ok Full
  | s -> Error ("unknown engine " ^ s ^ " (try runs, miss-only, full)")

(* ------------------------------------------------------------------ *)
(* Canonical serialisation                                             *)

let add_int b n = Buffer.add_string b (string_of_int n); Buffer.add_char b ' '

let add_float b f =
  Buffer.add_string b (Printf.sprintf "%h" f);
  Buffer.add_char b ' '

let add_str b s =
  (* length-prefixed so adjacent strings cannot collide *)
  add_int b (String.length s);
  Buffer.add_string b s;
  Buffer.add_char b ' '

let add_int_array b a =
  add_int b (Array.length a);
  Array.iter (add_int b) a

let add_opt b add = function
  | None -> Buffer.add_string b "- "
  | Some v ->
    Buffer.add_string b "+ ";
    add b v

let add_cache_config b (c : Cache.config) =
  add_int b c.Cache.capacity;
  add_int b c.Cache.line;
  add_int b c.Cache.assoc

let add_machine b (m : Machine.config) =
  add_str b m.Machine.mname;
  add_int b m.Machine.max_procs;
  add_int b m.Machine.hypernode;
  add_cache_config b m.Machine.cache;
  add_opt b add_cache_config m.Machine.tlb;
  let c = m.Machine.cost in
  List.iter (add_float b)
    [
      c.Machine.op; c.Machine.hit; c.Machine.miss_local; c.Machine.miss_remote;
      c.Machine.barrier_base; c.Machine.barrier_per_proc;
      c.Machine.loop_overhead; c.Machine.iter_overhead; c.Machine.tlb_miss;
    ]

let add_layout b (l : Partition.layout) =
  add_int b l.Partition.elem_bytes;
  add_int b l.Partition.total_bytes;
  add_int b (List.length l.Partition.placements);
  List.iter
    (fun (name, (p : Partition.placement)) ->
      add_str b name;
      add_str b p.Partition.name;
      add_int b p.Partition.start;
      add_int_array b p.Partition.aextents)
    l.Partition.placements

let add_derive b (d : Derive.t) =
  add_int b d.Derive.depth;
  add_int b d.Derive.nnests;
  let mat m =
    add_int b (Array.length m);
    Array.iter (add_int_array b) m
  in
  mat d.Derive.shift;
  mat d.Derive.peel

let add_schedule b (s : Schedule.t) =
  add_int b s.Schedule.nprocs;
  add_int_array b s.Schedule.grid;
  add_int b (List.length s.Schedule.labels);
  List.iter (add_str b) s.Schedule.labels;
  add_int b (List.length s.Schedule.phases);
  List.iter
    (fun (ph : Schedule.phase) ->
      add_int b (Array.length ph);
      Array.iter
        (fun boxes ->
          add_int b (List.length boxes);
          List.iter
            (fun (bx : Schedule.box) ->
              add_int b bx.Schedule.nest;
              add_int b (Array.length bx.Schedule.ranges);
              Array.iter
                (fun (lo, hi) ->
                  add_int b lo;
                  add_int b hi)
                bx.Schedule.ranges)
            boxes)
        ph)
    s.Schedule.phases

let add_variant b = function
  | Unfused { grid; depth } ->
    Buffer.add_string b "unfused ";
    add_opt b add_int_array grid;
    add_opt b add_int depth
  | Fused { grid; strip; derive } ->
    Buffer.add_string b "fused ";
    add_opt b add_int_array grid;
    add_opt b add_int strip;
    add_opt b add_derive derive
  | Explicit s ->
    Buffer.add_string b "explicit ";
    add_schedule b s

let canonical r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "lf-request ";
  add_str b (Ir.program_to_string r.prog);
  Buffer.add_string b "\nmachine ";
  add_machine b r.machine;
  Buffer.add_string b "\nvariant ";
  add_variant b r.variant;
  Buffer.add_string b "\nlayout ";
  add_opt b add_layout r.layout;
  Buffer.add_string b "\nnprocs ";
  add_int b r.nprocs;
  Buffer.add_string b "\nsteps ";
  add_int b r.steps;
  Buffer.add_string b "\nmode ";
  Buffer.add_string b (mode_to_string r.mode);
  Buffer.contents b

(* The salt line folds in only the fingerprints of the modules this
   request depends on, so bumping one module's version invalidates
   exactly the digests that could replay differently. *)
let salt_line r =
  let b = Buffer.create 96 in
  Buffer.add_string b version_salt;
  List.iter
    (fun (n, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b n;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    (Fingerprint.of_request r);
  Buffer.contents b

let digest r = Digest.to_hex (Digest.string (salt_line r ^ "\n" ^ canonical r))

let variant_label = function
  | Unfused _ -> "unfused"
  | Fused _ -> "fused"
  | Explicit s ->
    Printf.sprintf "explicit(%d phases)" (List.length s.Schedule.phases)

let pp ppf r =
  Format.fprintf ppf "%s on %s: %s, P=%d, steps=%d, %s" r.prog.Ir.pname
    r.machine.Machine.mname (variant_label r.variant) r.nprocs r.steps
    (mode_to_string r.mode)
