(* First-class simulation requests (see sim.mli).

   The canonical form is a line-oriented text rendering of every field
   that can influence a simulated observable.  Stability rules:

   - the program is included via [Ir.program_to_string], the same
     deterministic printer the front end round-trips through;
   - floats (machine cost coefficients) are rendered with [%h], which
     round-trips IEEE doubles exactly — two configs differing in the
     last ulp of a cost coefficient get different digests;
   - arrays and lists are length-prefixed so concatenations cannot
     collide;
   - an [Explicit] schedule is serialised structurally (grid, labels,
     then every phase's per-processor box lists), so any schedule a
     caller can build has a stable name.

   Anything host-side (jobs, pool, sink) is excluded by construction:
   it is not representable in a [request]. *)

module Ir = Lf_ir.Ir
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition
module Derive = Lf_core.Derive
module Cache = Lf_cache.Cache

type mode = Full | Miss_only | Run_compressed

type variant =
  | Unfused of { grid : int array option; depth : int option }
  | Fused of {
      grid : int array option;
      strip : int option;
      derive : Derive.t option;
    }
  | Explicit of Schedule.t

type request = {
  prog : Ir.program;
  machine : Machine.config;
  variant : variant;
  layout : Partition.layout option;
  nprocs : int;
  steps : int;
  mode : mode;
}

let make ?layout ?(steps = 1) ?(mode = Full) ~machine ~nprocs ~variant prog =
  if nprocs < 1 then invalid_arg "Sim.make: nprocs < 1";
  if steps < 1 then invalid_arg "Sim.make: steps < 1";
  { prog; machine; variant; layout; nprocs; steps; mode }

let unfused ?grid ?depth ?layout ?steps ?mode ~machine ~nprocs prog =
  make ?layout ?steps ?mode ~machine ~nprocs
    ~variant:(Unfused { grid; depth })
    prog

let fused ?grid ?strip ?derive ?layout ?steps ?mode ~machine ~nprocs prog =
  make ?layout ?steps ?mode ~machine ~nprocs
    ~variant:(Fused { grid; strip; derive })
    prog

let of_schedule ?layout ?steps ?mode ~machine (sched : Schedule.t) =
  make ?layout ?steps ?mode ~machine ~nprocs:sched.Schedule.nprocs
    ~variant:(Explicit sched) sched.Schedule.prog

let schedule_of r =
  match r.variant with
  | Explicit s -> s
  | Unfused { grid; depth } ->
    Schedule.unfused ?grid ?depth ~nprocs:r.nprocs r.prog
  | Fused { grid; strip; derive } ->
    Schedule.fused ?grid ?strip ?derive ~nprocs:r.nprocs r.prog

(* Pure legality probe: can the request's schedule actually be built?
   Small iteration spaces can violate the Theorem 1 threshold for fused
   variants.  No domains are touched, so the probe is fork-safe — the
   serve bench and the script realizer both rely on that. *)
let legal r = match schedule_of r with _ -> true | exception _ -> false

let layout_of r =
  match r.layout with
  | Some l -> l
  | None -> Partition.contiguous r.prog.Ir.decls

(* Bump whenever the engine's observable behaviour changes (cost model,
   cache policy, schedule construction, serialisation format): results
   persisted under the previous salt must never be replayed. *)
let version_salt = "lf-sim-1"

let mode_to_string = function
  | Full -> "full"
  | Miss_only -> "miss-only"
  | Run_compressed -> "runs"

let mode_of_string = function
  | "runs" | "run-compressed" -> Ok Run_compressed
  | "miss-only" -> Ok Miss_only
  | "full" -> Ok Full
  | s -> Error ("unknown engine " ^ s ^ " (try runs, miss-only, full)")

(* ------------------------------------------------------------------ *)
(* Canonical serialisation                                             *)

let add_int b n = Buffer.add_string b (string_of_int n); Buffer.add_char b ' '

let add_float b f =
  Buffer.add_string b (Printf.sprintf "%h" f);
  Buffer.add_char b ' '

let add_str b s =
  (* length-prefixed so adjacent strings cannot collide *)
  add_int b (String.length s);
  Buffer.add_string b s;
  Buffer.add_char b ' '

let add_int_array b a =
  add_int b (Array.length a);
  Array.iter (add_int b) a

let add_opt b add = function
  | None -> Buffer.add_string b "- "
  | Some v ->
    Buffer.add_string b "+ ";
    add b v

let add_cache_config b (c : Cache.config) =
  add_int b c.Cache.capacity;
  add_int b c.Cache.line;
  add_int b c.Cache.assoc

let add_machine b (m : Machine.config) =
  add_str b m.Machine.mname;
  add_int b m.Machine.max_procs;
  add_int b m.Machine.hypernode;
  add_cache_config b m.Machine.cache;
  add_opt b add_cache_config m.Machine.tlb;
  let c = m.Machine.cost in
  List.iter (add_float b)
    [
      c.Machine.op; c.Machine.hit; c.Machine.miss_local; c.Machine.miss_remote;
      c.Machine.barrier_base; c.Machine.barrier_per_proc;
      c.Machine.loop_overhead; c.Machine.iter_overhead; c.Machine.tlb_miss;
    ]

let add_layout b (l : Partition.layout) =
  add_int b l.Partition.elem_bytes;
  add_int b l.Partition.total_bytes;
  add_int b (List.length l.Partition.placements);
  List.iter
    (fun (name, (p : Partition.placement)) ->
      add_str b name;
      add_str b p.Partition.name;
      add_int b p.Partition.start;
      add_int_array b p.Partition.aextents)
    l.Partition.placements

let add_derive b (d : Derive.t) =
  add_int b d.Derive.depth;
  add_int b d.Derive.nnests;
  let mat m =
    add_int b (Array.length m);
    Array.iter (add_int_array b) m
  in
  mat d.Derive.shift;
  mat d.Derive.peel

let add_schedule b (s : Schedule.t) =
  add_int b s.Schedule.nprocs;
  add_int_array b s.Schedule.grid;
  add_int b (List.length s.Schedule.labels);
  List.iter (add_str b) s.Schedule.labels;
  add_int b (List.length s.Schedule.phases);
  List.iter
    (fun (ph : Schedule.phase) ->
      add_int b (Array.length ph);
      Array.iter
        (fun boxes ->
          add_int b (List.length boxes);
          List.iter
            (fun (bx : Schedule.box) ->
              add_int b bx.Schedule.nest;
              add_int b (Array.length bx.Schedule.ranges);
              Array.iter
                (fun (lo, hi) ->
                  add_int b lo;
                  add_int b hi)
                bx.Schedule.ranges)
            boxes)
        ph)
    s.Schedule.phases

let add_variant b = function
  | Unfused { grid; depth } ->
    Buffer.add_string b "unfused ";
    add_opt b add_int_array grid;
    add_opt b add_int depth
  | Fused { grid; strip; derive } ->
    Buffer.add_string b "fused ";
    add_opt b add_int_array grid;
    add_opt b add_int strip;
    add_opt b add_derive derive
  | Explicit s ->
    Buffer.add_string b "explicit ";
    add_schedule b s

let canonical r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "lf-request ";
  add_str b (Ir.program_to_string r.prog);
  Buffer.add_string b "\nmachine ";
  add_machine b r.machine;
  Buffer.add_string b "\nvariant ";
  add_variant b r.variant;
  Buffer.add_string b "\nlayout ";
  add_opt b add_layout r.layout;
  Buffer.add_string b "\nnprocs ";
  add_int b r.nprocs;
  Buffer.add_string b "\nsteps ";
  add_int b r.steps;
  Buffer.add_string b "\nmode ";
  Buffer.add_string b (mode_to_string r.mode);
  Buffer.contents b

let digest r = Digest.to_hex (Digest.string (version_salt ^ "\n" ^ canonical r))

let variant_label = function
  | Unfused _ -> "unfused"
  | Fused _ -> "fused"
  | Explicit s ->
    Printf.sprintf "explicit(%d phases)" (List.length s.Schedule.phases)

let pp ppf r =
  Format.fprintf ppf "%s on %s: %s, P=%d, steps=%d, %s" r.prog.Ir.pname
    r.machine.Machine.mname (variant_label r.variant) r.nprocs r.steps
    (mode_to_string r.mode)
