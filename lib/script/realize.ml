(* Lowering a scripted state to schedules and simulation requests.

   The guiding rule: reuse the canonical Sim variants whenever the
   scripted state matches one (so the persistent store's digests line
   up with the enum-built requests the rest of the system issues), and
   fall back to an Explicit prebuilt schedule otherwise.  In
   particular, Schedule.unfused block-partitions every nest regardless
   of parallel flags, so any program containing a serial (e.g.
   plain-fused-then-serialized) nest must go through the Cluster
   builder, which runs serial nests whole on processor 0. *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Cluster = Lf_core.Cluster
module Partition = Lf_core.Partition
module Wavefront = Lf_core.Wavefront
module Sim = Lf_machine.Sim
module Machine = Lf_machine.Machine

let whole_program_derive (st : Script.state) =
  match st.Script.groups with
  | [ g ] when List.length g.Script.members = List.length st.Script.prog.Ir.nests
    ->
    Some (Script.group_derive st g)
  | _ -> None

(* Any nest a naive block-partition would mishandle: a serial outer
   level, or a doall the dependence machinery cannot verify. *)
let needs_serial (p : Ir.program) =
  List.exists
    (fun (n : Ir.nest) ->
      (not (List.hd n.Ir.levels).Ir.parallel) || Dep.verify_doall n <> Ok ())
    p.Ir.nests

let cluster_groups (st : Script.state) =
  let ids =
    Array.of_list (List.map (fun (n : Ir.nest) -> n.Ir.nid) st.Script.prog.Ir.nests)
  in
  let n = Array.length ids in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match
        List.find_opt
          (fun (g : Script.group) ->
            String.equal (List.hd g.Script.members) ids.(i))
          st.Script.groups
      with
      | Some g ->
        let members = List.length g.Script.members in
        go (i + members)
          ({ Cluster.start = i; members; fused = true; why = g.Script.gname }
          :: acc)
      | None ->
        go (i + 1)
          ({ Cluster.start = i; members = 1; fused = false; why = "unfused" }
          :: acc)
  in
  go 0 []

let min_group_depth st =
  List.fold_left
    (fun acc g -> min acc (fst (Script.group_derive st g)))
    max_int st.Script.groups

let schedule ?grid ~nprocs (st : Script.state) =
  let p = st.Script.prog in
  match st.Script.style with
  | Script.Wave tile ->
    let depth = max 1 (Dep.max_parallel_depth p) in
    let derive = Derive.of_program ~depth p in
    Wavefront.schedule ?tile ~derive ~nprocs p
  | Script.Peel -> (
    match whole_program_derive st with
    | Some (_depth, derive) ->
      Schedule.fused ?grid ?strip:st.Script.strip ~derive ~nprocs p
    | None ->
      if st.Script.groups = [] && not (needs_serial p) then
        Schedule.unfused ?grid ~nprocs p
      else
        (* Cluster fuses each group at a uniform depth; use the
           shallowest group depth so every group stays legal. *)
        let depth =
          if st.Script.groups = [] then 1 else max 1 (min_group_depth st)
        in
        Cluster.schedule ~depth ?grid ?strip:st.Script.strip ~nprocs p
          (cluster_groups st))

let layout ~machine (st : Script.state) =
  if not st.Script.partitioned then None
  else
    let c = machine.Machine.cache in
    Some
      (Partition.cache_partitioned
         ~cache:
           {
             Partition.capacity = c.Lf_cache.Cache.capacity;
             line = c.Lf_cache.Cache.line;
             assoc = c.Lf_cache.Cache.assoc;
           }
         st.Script.prog.Ir.decls)

let request ?steps ?mode ~machine ~nprocs (st : Script.state) =
  let p = st.Script.prog in
  let layout = layout ~machine st in
  match st.Script.style with
  | Script.Wave _ ->
    Sim.of_schedule ?layout ?steps ?mode ~machine (schedule ~nprocs st)
  | Script.Peel -> (
    match whole_program_derive st with
    | Some (_depth, derive) ->
      Sim.fused ?strip:st.Script.strip ~derive ?layout ?steps ?mode ~machine
        ~nprocs p
    | None ->
      if st.Script.groups = [] && not (needs_serial p) then
        Sim.unfused ?layout ?steps ?mode ~machine ~nprocs p
      else
        Sim.of_schedule ?layout ?steps ?mode ~machine (schedule ~nprocs st))
