(** Transformation scripts over the loop IR (OptiTrust-style).

    A script composes small targeted steps against {e named} loop nests:
    [fuse], [fission], [shift_peel], [strip_mine], [interchange],
    [partition], [wavefront] and [align] are first-class values.  Each
    step is legality-checked by {!Lf_dep.Dep} against the current
    program {e before} it touches the state; an illegal step produces a
    typed {!error} carrying the offending dependence edge.  The state
    after every step can be checkpointed as pretty-printed IR plus
    schedule annotations — the testing backbone: goldens per step under
    [test/golden/], diffed by [dune runtest].

    Steps come in two kinds: program rewrites ([fuse], [fission],
    [interchange], [align]) change the nest structure while preserving
    {!Lf_ir.Interp} semantics bit-exactly; schedule directives
    ([shift_peel], [strip_mine], [partition], [wavefront]) leave the IR
    unchanged and accumulate the execution strategy that
    {!Realize} lowers to a {!Lf_core.Schedule.t} /
    {!Lf_machine.Sim.request}. *)

type step =
  | Fuse of { targets : string list; into : string option }
      (** Plain fusion (paper §2.2) of consecutive nests into one, with
          union bounds and guards where member bounds differ; illegal
          under a backward loop-carried dependence (Figure 3), legal but
          serialized under a forward one (Figure 4). *)
  | Fission of { target : string }
      (** Loop distribution into pi-blocks ({!Lf_core.Distribute});
          illegal when the statements form a single dependence cycle. *)
  | Shift_peel of { targets : string list; into : string option }
      (** Fuse consecutive nests with shift-and-peel (paper §3): the
          IR is left unchanged; the group and its derived shift/peel
          amounts become part of the schedule. *)
  | Strip_mine of { strip : int }
      (** Strip-mining factor for the fused dimensions (§3.4). *)
  | Interchange of { target : string }
      (** Swap the outer two loop levels of a nest; conservatively
          requires both levels free of carried dependences. *)
  | Partition
      (** Cache-partitioned array layout (Figure 19); requires pairwise
          compatible references (§4). *)
  | Wavefront of { tile : int option }
      (** Wavefront execution of the shifted fused space instead of
          peeling (the authors' companion technique).  Terminal for the
          loop structure: later program rewrites or [shift_peel] are
          rejected, since they would invalidate the derived shifts. *)
  | Align
      (** Alignment + replication baseline ({!Lf_core.Alignrep});
          rewrites the program with copy nests and replicas. *)

val step_name : step -> string
(** Short identifier used in checkpoint file names ("fuse",
    "shift_peel", ...). *)

val step_to_string : step -> string
(** One [.lft] script line (without newline); {!Lf_front.Lft.parse}
    inverts it. *)

val script_to_string : step list -> string
(** Canonical [.lft] text: one step per line, trailing newline.
    Print -> parse -> print is a fixpoint. *)

(** {1 Combinator constructors} *)

val fuse : ?into:string -> string list -> step
val fission : string -> step
val shift_peel : ?into:string -> string list -> step
val strip_mine : int -> step
val interchange : string -> step
val partition : step
val wavefront : ?tile:int -> unit -> step
val align : step

(** {1 State} *)

type group = { gname : string; members : string list }
(** A recorded shift-and-peel fusion group (consecutive nest ids). *)

type style = Peel | Wave of int option

type state = {
  prog : Lf_ir.Ir.program;
  groups : group list;  (** shift-and-peel groups, in program order *)
  strip : int option;  (** strip-mining factor, when set *)
  style : style;
  partitioned : bool;  (** cache-partitioned layout requested *)
}

val init : Lf_ir.Ir.program -> state
(** Validates the program (raises {!Lf_ir.Ir.Invalid}). *)

val group_derive : state -> group -> int * Lf_core.Derive.t
(** [(depth, derive)] for a recorded group, recomputed from the current
    program slice. *)

val checkpoint_to_string : state -> string
(** Pretty-printed IR followed by [/* schedule: ... */] annotation
    comments (still parseable as a [.loop] file). *)

(** {1 Errors} *)

type error = {
  e_step : step;
  e_index : int;  (** 0-based position of the step in the script *)
  reason : string;
  witness_dep : Lf_dep.Dep.edge option;
      (** the dependence that makes the step illegal, when one does *)
}

exception Illegal of error

val error_to_string : error -> string

(** {1 Application} *)

val apply : ?index:int -> state -> step -> (state, error) result
(** Check legality of one step against the current state and apply it.
    Never raises {!Illegal}; the program in a returned [Ok] state is
    validated. *)

val run :
  ?checkpoint:(int -> step -> state -> unit) ->
  Lf_ir.Ir.program ->
  step list ->
  (state, error) result
(** Fold {!apply} over a script from {!init}; [checkpoint i step st] is
    called after step [i] (0-based) succeeds.  Stops at the first
    illegal step. *)
