(* Transformation scripts over the loop IR (OptiTrust-style).

   A script composes small targeted steps against named loop nests.
   Every step is legality-checked against the CURRENT program by the
   dependence machinery (lf_dep) before it touches the state; an
   illegal step yields a typed error carrying the offending dependence
   edge, so tests can assert on the exact dependence that was violated,
   not just on "an exception happened".

   Program rewrites (fuse / fission / interchange / align) transform
   the nest structure and must preserve Interp semantics bit-exactly;
   schedule directives (shift_peel / strip_mine / partition /
   wavefront) leave the IR unchanged and accumulate the execution
   strategy realised by Realize.  Keeping shift-and-peel a directive —
   rather than a source rewrite — mirrors the paper: the transformed
   loops execute original iterations in original order within each
   block; only the block schedule changes. *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep
module Legality = Lf_core.Legality
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Distribute = Lf_core.Distribute
module Partition = Lf_core.Partition
module Alignrep = Lf_core.Alignrep

type step =
  | Fuse of { targets : string list; into : string option }
  | Fission of { target : string }
  | Shift_peel of { targets : string list; into : string option }
  | Strip_mine of { strip : int }
  | Interchange of { target : string }
  | Partition
  | Wavefront of { tile : int option }
  | Align

let step_name = function
  | Fuse _ -> "fuse"
  | Fission _ -> "fission"
  | Shift_peel _ -> "shift_peel"
  | Strip_mine _ -> "strip_mine"
  | Interchange _ -> "interchange"
  | Partition -> "partition"
  | Wavefront _ -> "wavefront"
  | Align -> "align"

let step_to_string s =
  let targets ts into =
    String.concat " " ts
    ^ match into with None -> "" | Some id -> " into " ^ id
  in
  match s with
  | Fuse { targets = ts; into } -> "fuse " ^ targets ts into
  | Fission { target } -> "fission " ^ target
  | Shift_peel { targets = ts; into } -> "shift_peel " ^ targets ts into
  | Strip_mine { strip } -> "strip_mine " ^ string_of_int strip
  | Interchange { target } -> "interchange " ^ target
  | Partition -> "partition"
  | Wavefront { tile = None } -> "wavefront"
  | Wavefront { tile = Some t } -> "wavefront " ^ string_of_int t
  | Align -> "align"

let script_to_string steps =
  String.concat "" (List.map (fun s -> step_to_string s ^ "\n") steps)

let fuse ?into targets = Fuse { targets; into }
let fission target = Fission { target }
let shift_peel ?into targets = Shift_peel { targets; into }
let strip_mine strip = Strip_mine { strip }
let interchange target = Interchange { target }
let partition = Partition
let wavefront ?tile () = Wavefront { tile }
let align = Align

(* ------------------------------------------------------------------ *)
(* State                                                               *)

type group = { gname : string; members : string list }
type style = Peel | Wave of int option

type state = {
  prog : Ir.program;
  groups : group list;
  strip : int option;
  style : style;
  partitioned : bool;
}

let init p =
  Ir.validate p;
  { prog = p; groups = []; strip = None; style = Peel; partitioned = false }

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)

type error = {
  e_step : step;
  e_index : int;
  reason : string;
  witness_dep : Dep.edge option;
}

exception Illegal of error

let error_to_string e =
  Fmt.str "step %d (%s): %s" e.e_index (step_name e.e_step) e.reason

(* Internal failure carrier; [apply] wraps it into [error]. *)
exception Fail of string * Dep.edge option

let fail ?witness fmt =
  Printf.ksprintf (fun s -> raise (Fail (s, witness))) fmt

(* Render a dependence edge with nest names from the slice it was built
   over, so error messages name the offending dependence readably. *)
let edge_str (nests : Ir.nest array) (e : Dep.edge) =
  let id i = if i < Array.length nests then nests.(i).Ir.nid else string_of_int i in
  Fmt.str "%s dependence on %s, %s -> %s, distance %s"
    (Dep.kind_to_string e.Dep.dkind)
    e.Dep.array (id e.Dep.src) (id e.Dep.dst)
    (match e.Dep.dist with
    | Dep.Dist d ->
      "(" ^ String.concat "," (Array.to_list (Array.map string_of_int d)) ^ ")"
    | Dep.Not_uniform r -> "<not uniform: " ^ r ^ ">")

(* ------------------------------------------------------------------ *)
(* Target resolution                                                   *)

let nest_pos st id =
  let rec go i = function
    | [] -> fail "no nest named %s in program %s" id st.prog.Ir.pname
    | (n : Ir.nest) :: rest -> if String.equal n.Ir.nid id then i else go (i + 1) rest
  in
  go 0 st.prog.Ir.nests

let group_of st id =
  List.find_opt (fun g -> List.mem id g.members) st.groups

let check_free st id =
  match group_of st id with
  | Some g ->
    fail "nest %s already belongs to shift-and-peel group %s" id g.gname
  | None -> ()

(* Wavefront derives its shifts from the whole program as it stood when
   the step was checked; a later program rewrite could silently
   invalidate them (a legal script must stay realizable). *)
let check_not_wave st what =
  match st.style with
  | Wave _ ->
    fail "%s: wavefront schedules the whole sequence; program rewrites \
          cannot follow it"
      what
  | Peel -> ()

(* Resolve a >=2 target list naming consecutive nests (in program
   order) that are not claimed by any recorded group. *)
let resolve_slice st what targets =
  (match targets with
  | [] | [ _ ] -> fail "%s needs at least two target nests" what
  | _ -> ());
  let distinct = List.sort_uniq String.compare targets in
  if List.length distinct <> List.length targets then
    fail "%s targets must be distinct" what;
  List.iter (check_free st) targets;
  let pos = List.map (fun id -> (nest_pos st id, id)) targets in
  let rec consecutive = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if b <> a + 1 then
        fail "%s targets must be consecutive nests in program order" what
      else consecutive rest
    | _ -> ()
  in
  consecutive pos;
  let start = fst (List.hd pos) in
  let nests =
    List.filteri
      (fun i _ -> i >= start && i < start + List.length targets)
      st.prog.Ir.nests
  in
  (start, nests)

let splice prog ~start ~len replacement =
  let before = List.filteri (fun i _ -> i < start) prog.Ir.nests in
  let after = List.filteri (fun i _ -> i >= start + len) prog.Ir.nests in
  { prog with Ir.nests = before @ replacement @ after }

let check_fresh_nid st ~replacing nid =
  if
    List.exists
      (fun (n : Ir.nest) ->
        String.equal n.Ir.nid nid && not (List.mem n.Ir.nid replacing))
      st.prog.Ir.nests
  then fail "a nest named %s already exists" nid

(* ------------------------------------------------------------------ *)
(* fuse: plain fusion (paper §2.2)                                     *)

let do_fuse st ~targets ~into =
  check_not_wave st "fuse";
  let start, nests = resolve_slice st "fuse" targets in
  let base = List.hd nests in
  let depth = List.length base.Ir.levels in
  List.iter
    (fun (n : Ir.nest) ->
      if List.length n.Ir.levels <> depth then
        fail "fuse: nest %s has %d loop level(s), %s has %d — mismatched nesting"
          n.Ir.nid (List.length n.Ir.levels) base.Ir.nid depth)
    nests;
  let slice = { st.prog with Ir.nests = nests } in
  let arr = Array.of_list nests in
  let w = Legality.classify_witness ~depth slice in
  (match w.Legality.w_verdict with
  | Legality.Fusion_preventing _ ->
    let e = Option.get w.Legality.w_edge in
    fail ~witness:e
      "fuse: backward loop-carried dependence makes plain fusion illegal \
       (Figure 3): %s; use shift_peel"
      (edge_str arr e)
  | Legality.Not_analyzable _ ->
    let e = Option.get w.Legality.w_edge in
    fail ~witness:e "fuse: dependence distance is not uniform: %s"
      (edge_str arr e)
  | Legality.Fusable_serial _ | Legality.Fusable_parallel -> ());
  let serialized = match w.Legality.w_verdict with
    | Legality.Fusable_serial _ -> true
    | _ -> false
  in
  (* union bounds per level; members with narrower bounds get guards *)
  let union_levels =
    List.mapi
      (fun d (l : Ir.level) ->
        let lo =
          List.fold_left
            (fun acc (n : Ir.nest) -> min acc (List.nth n.Ir.levels d).Ir.lo)
            l.Ir.lo nests
        and hi =
          List.fold_left
            (fun acc (n : Ir.nest) -> max acc (List.nth n.Ir.levels d).Ir.hi)
            l.Ir.hi nests
        and parallel =
          (not serialized)
          && List.for_all
               (fun (n : Ir.nest) -> (List.nth n.Ir.levels d).Ir.parallel)
               nests
        in
        { l with Ir.lo; hi; parallel })
      base.Ir.levels
  in
  let fvars = List.map (fun (l : Ir.level) -> l.Ir.lvar) base.Ir.levels in
  let body =
    List.concat_map
      (fun (n : Ir.nest) ->
        let mapping =
          List.map2 (fun (l : Ir.level) fv -> (l.Ir.lvar, fv)) n.Ir.levels fvars
        in
        let rename v = try List.assoc v mapping with Not_found -> v in
        let extra_guard =
          List.concat
            (List.map2
               (fun (l : Ir.level) (u : Ir.level) ->
                 if l.Ir.lo = u.Ir.lo && l.Ir.hi = u.Ir.hi then []
                 else [ (u.Ir.lvar, l.Ir.lo, l.Ir.hi) ])
               n.Ir.levels union_levels)
        in
        List.map
          (fun s ->
            let s = Ir.rename_stmt rename s in
            { s with Ir.guard = extra_guard @ s.Ir.guard })
          n.Ir.body)
      nests
  in
  let nid = match into with Some id -> id | None -> base.Ir.nid in
  check_fresh_nid st ~replacing:targets nid;
  let fused = { Ir.nid; levels = union_levels; body } in
  (* safety net: fusion may create intra-nest carried dependences the
     inter-nest classifier cannot see through guards; demote to serial
     rather than ship an unsound doall *)
  let fused =
    if Dep.verify_doall fused = Ok () then fused
    else
      {
        fused with
        Ir.levels =
          List.map (fun (l : Ir.level) -> { l with Ir.parallel = false }) fused.Ir.levels;
      }
  in
  let prog = splice st.prog ~start ~len:(List.length targets) [ fused ] in
  Ir.validate prog;
  { st with prog }

(* ------------------------------------------------------------------ *)
(* fission: loop distribution into pi-blocks                           *)

let do_fission st ~target =
  check_not_wave st "fission";
  let idx = nest_pos st target in
  check_free st target;
  let n = List.nth st.prog.Ir.nests idx in
  if List.length n.Ir.body <= 1 then
    fail "fission: nest %s has a single statement; nothing to distribute"
      target;
  let parts = Distribute.distribute_nest n in
  if List.length parts = 1 then
    fail
      "fission: the statements of %s form a single pi-block (a dependence \
       cycle ties them together); distribution is illegal"
      target;
  List.iter (fun (p : Ir.nest) -> check_fresh_nid st ~replacing:[ target ] p.Ir.nid) parts;
  let prog = splice st.prog ~start:idx ~len:1 parts in
  Ir.validate prog;
  { st with prog }

(* ------------------------------------------------------------------ *)
(* shift_peel: record a shift-and-peel fusion group (paper §3)         *)

let slice_of_members st members =
  let nests =
    List.filter (fun (n : Ir.nest) -> List.mem n.Ir.nid members) st.prog.Ir.nests
  in
  { st.prog with Ir.nests = nests }

let group_derive st g =
  let slice = slice_of_members st g.members in
  let depth = max 1 (Dep.max_parallel_depth slice) in
  (depth, Derive.of_program ~depth slice)

let do_shift_peel st ~targets ~into =
  (match st.style with
  | Wave _ ->
    fail "shift_peel: a wavefront schedule is already in place; choose \
          one style"
  | Peel -> ());
  let _start, nests = resolve_slice st "shift_peel" targets in
  let slice = { st.prog with Ir.nests = nests } in
  let arr = Array.of_list nests in
  let depth = Dep.max_parallel_depth slice in
  if depth = 0 then begin
    let culprit =
      List.find
        (fun (n : Ir.nest) -> not (List.hd n.Ir.levels).Ir.parallel)
        nests
    in
    fail "shift_peel: nest %s has no outer doall level — shift-and-peel \
          fuses parallel loops only"
      culprit.Ir.nid
  end;
  (match Dep.verify_program slice with
  | Error m -> fail "shift_peel: %s" m
  | Ok () -> ());
  let g = Dep.build ~depth slice in
  (match Dep.not_uniform_edges g with
  | e :: _ ->
    fail ~witness:e
      "shift_peel: shift and peel amounts need uniform dependence \
       distances, but %s"
      (edge_str arr e)
  | [] -> ());
  let derive =
    match Derive.of_multigraph g with
    | d -> d
    | exception Derive.Not_applicable m -> fail "shift_peel: %s" m
  in
  (* Theorem 1 probe on one processor: is the fused schedule buildable
     at all?  Per-nprocs block thresholds are re-checked at realize
     time (Sim.legal). *)
  (match Schedule.fused ~derive ~nprocs:1 slice with
  | _ -> ()
  | exception Schedule.Illegal m ->
    fail "shift_peel: %s" m);
  let gname =
    match into with
    | Some id -> id
    | None -> Printf.sprintf "F%d" (List.length st.groups + 1)
  in
  if List.exists (fun g -> String.equal g.gname gname) st.groups then
    fail "a fusion group named %s already exists" gname;
  (* keep groups sorted by program position *)
  let pos id = nest_pos st id in
  let groups =
    List.sort
      (fun a b -> compare (pos (List.hd a.members)) (pos (List.hd b.members)))
      ({ gname; members = targets } :: st.groups)
  in
  { st with groups }

(* ------------------------------------------------------------------ *)
(* strip_mine / interchange / partition / wavefront / align            *)

let do_strip_mine st ~strip =
  if strip < 1 then fail "strip-mining factor must be positive (got %d)" strip;
  if st.groups = [] then
    fail "no fused group to strip-mine; apply shift_peel first";
  (match st.style with
  | Wave _ -> fail "wavefront tiles the fused space itself; strip_mine \
                    applies to the shift-and-peel style"
  | Peel -> ());
  { st with strip = Some strip }

let do_interchange st ~target =
  check_not_wave st "interchange";
  let idx = nest_pos st target in
  check_free st target;
  let n = List.nth st.prog.Ir.nests idx in
  (match n.Ir.levels with
  | _ :: _ :: _ -> ()
  | ls ->
    fail "interchange: nest %s has %d loop level(s); interchange needs two"
      target (List.length ls));
  let l0 = List.nth n.Ir.levels 0 and l1 = List.nth n.Ir.levels 1 in
  List.iter
    (fun (dim, (l : Ir.level)) ->
      if Dep.may_carry_dim n ~dim then
        fail
          "interchange: loop level %d (%s) of %s may carry a dependence; \
           interchanging would reorder its iterations"
          dim l.Ir.lvar target)
    [ (0, l0); (1, l1) ];
  let levels = l1 :: l0 :: List.filteri (fun i _ -> i >= 2) n.Ir.levels in
  let prog =
    splice st.prog ~start:idx ~len:1 [ { n with Ir.levels } ]
  in
  Ir.validate prog;
  { st with prog }

let do_partition st =
  if Partition.program_compatible st.prog then { st with partitioned = true }
  else begin
    let refs = List.concat_map Ir.nest_refs st.prog.Ir.nests in
    let bad =
      List.find_map
        (fun (r1 : Ir.aref) ->
          List.find_map
            (fun (r2 : Ir.aref) ->
              if
                List.length r1.Ir.index = List.length r2.Ir.index
                && not (Partition.compatible_refs r1 r2)
              then Some (r1, r2)
              else None)
            refs)
        refs
    in
    match bad with
    | Some (r1, r2) ->
      fail
        "partition: references %s and %s have different subscript mappings; \
         cache partitioning cannot keep them conflict-free (§4)"
        (Fmt.str "%a" Ir.pp_aref r1)
        (Fmt.str "%a" Ir.pp_aref r2)
    | None -> fail "partition: references are not pairwise compatible"
  end

let do_wavefront st ~tile =
  (match tile with
  | Some t when t < 1 -> fail "wavefront tile must be positive (got %d)" t
  | _ -> ());
  (match st.groups with
  | g :: _ ->
    fail "wavefront schedules the whole sequence; it cannot follow \
          shift_peel group %s"
      g.gname
  | [] -> ());
  let depth = Dep.max_parallel_depth st.prog in
  if depth = 0 then
    fail "wavefront: the program has no common outer doall level";
  (match Dep.verify_program st.prog with
  | Error m -> fail "wavefront: %s" m
  | Ok () -> ());
  let g = Dep.build ~depth st.prog in
  let arr = Array.of_list st.prog.Ir.nests in
  (match Dep.not_uniform_edges g with
  | e :: _ ->
    fail ~witness:e "wavefront: shifting needs uniform dependence \
                     distances, but %s"
      (edge_str arr e)
  | [] -> ());
  (match Derive.of_multigraph g with
  | _ -> ()
  | exception Derive.Not_applicable m -> fail "wavefront: %s" m);
  { st with style = Wave tile }

let do_align st =
  (match st.groups with
  | g :: _ ->
    fail "align rewrites the whole sequence; it cannot follow shift_peel \
          group %s"
      g.gname
  | [] -> ());
  (match st.style with
  | Wave _ -> fail "align cannot follow wavefront; choose one style"
  | Peel -> ());
  match Alignrep.transform st.prog with
  | Error m -> fail "align: %s" m
  | Ok r ->
    (match Alignrep.verify_sync_free r with
    | Error m -> fail "align: %s" m
    | Ok () -> ());
    Ir.validate r.Alignrep.prog;
    { st with prog = r.Alignrep.prog }

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)

let matrix_str (m : int array array) =
  let row (r : int array) =
    match Array.to_list r with
    | [ x ] -> string_of_int x
    | xs -> "(" ^ String.concat " " (List.map string_of_int xs) ^ ")"
  in
  "[" ^ String.concat " " (Array.to_list (Array.map row m)) ^ "]"

let checkpoint_to_string st =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Ir.program_to_string st.prog);
  let annotate fmt = Printf.ksprintf (fun s ->
      Buffer.add_string b ("/* schedule: " ^ s ^ " */\n")) fmt
  in
  List.iter
    (fun g ->
      let depth, d = group_derive st g in
      annotate "group %s = %s (depth %d; shift %s; peel %s)" g.gname
        (String.concat " " g.members)
        depth
        (matrix_str d.Derive.shift)
        (matrix_str d.Derive.peel))
    st.groups;
  (match st.strip with
  | Some s -> annotate "strip %d" s
  | None -> ());
  (match st.style with
  | Wave None -> annotate "wavefront"
  | Wave (Some t) -> annotate "wavefront tile %d" t
  | Peel -> ());
  if st.partitioned then annotate "cache-partitioned layout";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Application                                                         *)

let apply ?(index = 0) st step =
  let go () =
    match step with
    | Fuse { targets; into } -> do_fuse st ~targets ~into
    | Fission { target } -> do_fission st ~target
    | Shift_peel { targets; into } -> do_shift_peel st ~targets ~into
    | Strip_mine { strip } -> do_strip_mine st ~strip
    | Interchange { target } -> do_interchange st ~target
    | Partition -> do_partition st
    | Wavefront { tile } -> do_wavefront st ~tile
    | Align -> do_align st
  in
  match go () with
  | st' -> Ok st'
  | exception Fail (reason, witness) ->
    Error { e_step = step; e_index = index; reason; witness_dep = witness }
  | exception Ir.Invalid m ->
    Error
      {
        e_step = step;
        e_index = index;
        reason = "produced an invalid program: " ^ m;
        witness_dep = None;
      }

let run ?(checkpoint = fun _ _ _ -> ()) p steps =
  let rec go i st = function
    | [] -> Ok st
    | s :: rest -> (
      match apply ~index:i st s with
      | Error e -> Error e
      | Ok st' ->
        checkpoint i s st';
        go (i + 1) st' rest)
  in
  go 0 (init p) steps
