(** Lowering a scripted state to the execution machinery.

    The script engine accumulates a program plus schedule directives
    ({!Script.state}); this module turns that state into the canonical
    execution forms — an untimed {!Lf_core.Schedule.t} for semantic
    verification, and a {!Lf_machine.Sim.request} so scripted pipelines
    are simulable, storable in the persistent result store, and tunable
    exactly like the built-in kernels. *)

val whole_program_derive : Script.state -> (int * Lf_core.Derive.t) option
(** [(depth, derive)] when a single shift-and-peel group covers the
    entire program — the case that lowers to the canonical
    [Sim.Fused] variant. *)

val cluster_groups : Script.state -> Lf_core.Cluster.group list
(** The recorded groups as a {!Lf_core.Cluster} covering: fused groups
    where recorded, singleton unfused groups elsewhere. *)

val schedule : ?grid:int array -> nprocs:int -> Script.state -> Lf_core.Schedule.t
(** Untimed executable schedule for the scripted state.  May raise
    {!Lf_core.Schedule.Illegal} when a block falls below the Theorem 1
    threshold for this [nprocs]. *)

val layout :
  machine:Lf_machine.Machine.config ->
  Script.state ->
  Lf_core.Partition.layout option
(** The cache-partitioned layout when the script requested [partition];
    [None] (dense contiguous) otherwise. *)

val request :
  ?steps:int ->
  ?mode:Lf_machine.Sim.mode ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Script.state ->
  Lf_machine.Sim.request
(** The canonical simulation identity of the scripted state.  A
    whole-program group lowers to [Sim.Fused] (with the group's
    explicit derive record), a group-free all-parallel program to
    [Sim.Unfused], and everything else — partial groups, serial nests,
    wavefront — to [Sim.Explicit].  Check {!Lf_machine.Sim.legal}
    before submitting: explicit variants are built eagerly, so this
    function itself may raise on a Theorem 1 violation. *)
