(** Busy-waiting barrier for latency-sensitive native execution.

    {!Barrier} parks waiters on a condition variable — right for
    simulation workers that may hold a phase for milliseconds, wrong
    for native kernel execution where a barrier separates phases that
    can be microseconds long and a futex round trip would dominate the
    measurement.  A spin barrier keeps arrivals on-core: waiters poll a
    generation counter with {!Domain.cpu_relax} until the last arrival
    flips it.

    The party count is fixed at creation (native runs know their
    processor count up front; only the simulator's serve path resizes
    barriers).  No observation sink either — this barrier exists to be
    timed, and counting arrivals would perturb exactly what the
    measurement harness is trying to read. *)

type t

val create : int -> t
(** [create parties]; raises [Invalid_argument] when [parties <= 0]. *)

val parties : t -> int

val wait : t -> unit
(** Spin until all [parties] participants have arrived; reusable
    across any number of generations.  Waiters poll on-core for a
    bounded budget, then back off to the shortest possible sleep — so
    more parties than cores degrades to scheduler granularity instead
    of livelocking, and on a big enough machine the fast path never
    issues a syscall. *)
