(* Sense-reversing spin barrier (see spin_barrier.mli).

   [generation] counts completed barrier episodes.  An arrival
   increments [count]; the last arrival resets [count] and bumps
   [generation], releasing the spinners of this generation.  The reset
   happens before the bump, and OCaml atomics are sequentially
   consistent, so a worker racing into the next episode can never
   observe the stale count of the previous one. *)

type t = {
  n_parties : int;
  count : int Atomic.t;
  generation : int Atomic.t;
}

let create parties =
  if parties <= 0 then invalid_arg "Spin_barrier.create: parties <= 0";
  {
    n_parties = parties;
    count = Atomic.make 0;
    generation = Atomic.make 0;
  }

let parties t = t.n_parties

(* Pure spinning livelocks when the machine has fewer cores than
   parties: the spinner burns the whole OS timeslice the releasing
   domain is waiting for, turning a microsecond barrier into
   milliseconds.  After a bounded spin, fall back to the shortest
   possible sleep — on an uncontended machine the budget is never
   exhausted and the fast path stays syscall-free. *)
let spin_budget = 4096

let wait t =
  let gen = Atomic.get t.generation in
  if Atomic.fetch_and_add t.count 1 = t.n_parties - 1 then begin
    Atomic.set t.count 0;
    Atomic.incr t.generation
  end
  else begin
    let spins = ref 0 in
    while Atomic.get t.generation = gen do
      if !spins < spin_budget then begin
        incr spins;
        Domain.cpu_relax ()
      end
      else Unix.sleepf 1e-6
    done
  end
