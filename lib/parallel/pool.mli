(** Persistent domain pool with fork-join parallel regions: one worker
    per (simulated) processor, the caller doubling as worker 0, with a
    join after every region — the execution model of the paper's
    block-scheduled parallel loops.

    Pools are meant to be reused: one pool serves every phase and step
    of a simulated run (and every candidate of an autotuning search)
    rather than spawning domains per invocation. *)

type t

val create : ?sink:Lf_obs.Obs.sink -> int -> t
(** [create n] spawns [n - 1] domains (plus the caller).  [sink]
    receives named runtime counters (["pool.region"] per parallel
    region). *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] on every worker [w]; returns when all have
    finished (join).  Exception-safe: a raising closure never strands
    the join; the region's first exception is re-raised on the caller
    after all workers have finished. *)

val block : lo:int -> hi:int -> n:int -> w:int -> int * int
(** Balanced contiguous block of worker [w] (sizes differ by <= 1). *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit

val parallel_for_blocks : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [f bs be] once per worker with its block bounds. *)

val dynamic_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** Self-scheduled (work-stealing) parallel for: workers claim the next
    [chunk] (default 1) indices from a shared counter until [lo..hi] is
    drained, so imbalanced iterations cost at most one chunk of idle
    time per worker.  Iteration order across workers is unspecified —
    the iterations must be independent. *)

val shutdown : t -> unit
(** Terminate and join the worker domains. *)

val with_pool : ?sink:Lf_obs.Obs.sink -> int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool of [n] workers and
    shuts it down afterwards, even if [f] raises. *)
