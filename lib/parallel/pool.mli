(** Persistent domain pool with fork-join parallel regions: one worker
    per (simulated) processor, the caller doubling as worker 0, with a
    join after every region — the execution model of the paper's
    block-scheduled parallel loops. *)

type t

val create : ?sink:Lf_obs.Obs.sink -> int -> t
(** [create n] spawns [n - 1] domains (plus the caller).  [sink]
    receives named runtime counters (["pool.region"] per parallel
    region). *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] on every worker [w]; returns when all have
    finished (join). *)

val block : lo:int -> hi:int -> n:int -> w:int -> int * int
(** Balanced contiguous block of worker [w] (sizes differ by <= 1). *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit

val parallel_for_blocks : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [f bs be] once per worker with its block bounds. *)

val shutdown : t -> unit
(** Terminate and join the worker domains. *)
