(** Sense-reversing barrier for a fixed number of participants — the
    single synchronization point between the fused loop and the peeled
    iterations (paper §3.4). *)

type t

val create : ?sink:Lf_obs.Obs.sink -> int -> t
(** [create parties]; raises [Invalid_argument] when [parties <= 0].
    [sink] receives a ["barrier.wait"] named count per arrival. *)

val wait : t -> unit
(** Block until all participants have arrived; reusable. *)
