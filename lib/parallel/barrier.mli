(** Generation-counting barrier for a resizable number of participants —
    the single synchronization point between the fused loop and the
    peeled iterations (paper §3.4). *)

type t

val create : ?sink:Lf_obs.Obs.sink -> int -> t
(** [create parties]; raises [Invalid_argument] when [parties <= 0].
    [sink] receives a ["barrier.wait"] named count per arrival. *)

val wait : t -> unit
(** Block until all participants have arrived; reusable. *)

val parties : t -> int
(** Current party count. *)

val resize : t -> int -> unit
(** [resize b n] changes the party count to [n].  Safe while threads
    are parked in {!wait}: the barrier uses a monotone generation
    counter, so waiters of a stale (larger) generation are released
    immediately when the shrunken count is already met, instead of
    deadlocking.  Raises [Invalid_argument] when [n <= 0]. *)
