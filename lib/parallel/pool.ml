(* Persistent domain pool with fork-join parallel regions.

   Models the static worker-per-processor execution of the paper's
   machines: a parallel region runs one closure per worker (the caller
   doubles as worker 0), and consecutive regions are separated by an
   implicit join, like the barriers between parallel loop nests.

   The pool is built to be *reused*: one pool serves every phase and
   step of a simulated run, and every candidate of an autotuning
   search, instead of paying a domain spawn/join per invocation
   (Domain.spawn is ~100x the cost of a condvar wake-up).  Regions are
   exception-safe — a closure that raises does not strand the join; the
   first exception is re-raised on the caller after all workers have
   finished the region. *)

type t = {
  nworkers : int;
  m : Mutex.t;
  cv_job : Condition.t;
  cv_done : Condition.t;
  mutable epoch : int;
  mutable job : int -> unit;
  mutable remaining : int;
  mutable failure : exn option;  (* first exception of the region *)
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  sink : Lf_obs.Obs.sink option;  (* named runtime counters *)
}

(* Run one region's job, funnelling any exception into [t.failure]
   (first one wins) so the join below can re-raise it on the caller.
   A worker that raised keeps serving later regions. *)
let run_job t job w =
  match job w with
  | () -> ()
  | exception e ->
    Mutex.lock t.m;
    if t.failure = None then t.failure <- Some e;
    Mutex.unlock t.m

let worker_loop t w =
  let my_epoch = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.m;
    while (not t.shutdown) && t.epoch = !my_epoch do
      Condition.wait t.cv_job t.m
    done;
    if t.shutdown then begin
      Mutex.unlock t.m;
      continue_ := false
    end
    else begin
      my_epoch := t.epoch;
      let job = t.job in
      Mutex.unlock t.m;
      run_job t job w;
      Mutex.lock t.m;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.cv_done;
      Mutex.unlock t.m
    end
  done

let create ?sink nworkers =
  if nworkers <= 0 then invalid_arg "Pool.create: nworkers <= 0";
  let t =
    {
      nworkers;
      m = Mutex.create ();
      cv_job = Condition.create ();
      cv_done = Condition.create ();
      epoch = 0;
      job = ignore;
      remaining = 0;
      failure = None;
      shutdown = false;
      domains = [];
      sink;
    }
  in
  t.domains <-
    List.init (nworkers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.nworkers

(* Run [f w] on every worker w (0 .. nworkers-1); worker 0 is the
   caller.  Returns when all workers have finished (join); re-raises
   the region's first exception, if any, after the join. *)
let run t f =
  (match t.sink with
  | None -> ()
  | Some s -> Lf_obs.Obs.count s "pool.region");
  if t.nworkers = 1 then f 0
  else begin
    Mutex.lock t.m;
    t.failure <- None;
    t.job <- f;
    t.remaining <- t.nworkers - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cv_job;
    Mutex.unlock t.m;
    run_job t f 0;
    Mutex.lock t.m;
    while t.remaining > 0 do
      Condition.wait t.cv_done t.m
    done;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.m;
    match failure with None -> () | Some e -> raise e
  end

(* Inclusive block [lo..hi] of worker [w] out of [n]: balanced blocking,
   sizes differ by at most one (matches Schedule.block). *)
let block ~lo ~hi ~n ~w =
  let len = hi - lo + 1 in
  let size = len / n in
  let rem = len mod n in
  let bstart = lo + (size * w) + min w rem in
  let bend = bstart + size - 1 + (if w < rem then 1 else 0) in
  (bstart, bend)

(* Blocked parallel for: [f i] for lo <= i <= hi, contiguous blocks. *)
let parallel_for t ~lo ~hi f =
  run t (fun w ->
      let bs, be = block ~lo ~hi ~n:t.nworkers ~w in
      for i = bs to be do
        f i
      done)

(* Blocked parallel for over ranges: [f bs be] per worker. *)
let parallel_for_blocks t ~lo ~hi f =
  run t (fun w ->
      let bs, be = block ~lo ~hi ~n:t.nworkers ~w in
      if bs <= be then f bs be)

(* Self-scheduled parallel for: workers repeatedly claim the next
   [chunk] indices from a shared atomic counter until the range is
   drained.  Unlike the static [parallel_for] blocking, load imbalance
   (e.g. a simulated schedule whose peeled-tail processors carry far
   less work than the fused-phase ones) costs at most one chunk of
   idle time per worker. *)
let dynamic_for ?(chunk = 1) t ~lo ~hi f =
  if chunk <= 0 then invalid_arg "Pool.dynamic_for: chunk <= 0";
  if lo <= hi then
    if t.nworkers = 1 then
      for i = lo to hi do
        f i
      done
    else begin
      let next = Atomic.make lo in
      run t (fun _w ->
          let continue_ = ref true in
          while !continue_ do
            let bs = Atomic.fetch_and_add next chunk in
            if bs > hi then continue_ := false
            else
              for i = bs to min hi (bs + chunk - 1) do
                f i
              done
          done)
    end

let shutdown t =
  Mutex.lock t.m;
  t.shutdown <- true;
  Condition.broadcast t.cv_job;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?sink nworkers f =
  let t = create ?sink nworkers in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
