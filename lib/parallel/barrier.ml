(* Sense-reversing barrier, generalised to a generation counter, for a
   resizable set of participants.

   The shift-and-peel transformation needs exactly one barrier between
   the fused loop and the peeled iterations (paper §3.4); this is the
   runtime primitive the native kernels use for it.

   A monotone generation counter replaces the boolean sense: a waiter
   records the generation it arrived in and sleeps until the barrier
   moves past it.  This is what makes [resize] safe — with a boolean
   sense, shrinking the party count while threads of a *stale*
   generation are still parked could flip the sense twice before they
   wake and deadlock them; a counter only ever moves forward, so a
   stale waiter can never confuse a later crossing with its own. *)

type t = {
  m : Mutex.t;
  cv : Condition.t;
  mutable parties : int;
  mutable count : int;
  mutable generation : int;
  sink : Lf_obs.Obs.sink option;  (* named runtime counters *)
}

let create ?sink parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties <= 0";
  { m = Mutex.create (); cv = Condition.create (); parties; count = 0;
    generation = 0; sink }

let parties b =
  Mutex.lock b.m;
  let p = b.parties in
  Mutex.unlock b.m;
  p

(* Open the barrier: advance the generation and release every waiter.
   Caller holds [b.m]. *)
let release b =
  b.count <- 0;
  b.generation <- b.generation + 1;
  Condition.broadcast b.cv

(* Block until all [parties] participants have called [wait]. *)
let wait b =
  (match b.sink with
  | None -> ()
  | Some s -> Lf_obs.Obs.count s "barrier.wait");
  Mutex.lock b.m;
  let my_generation = b.generation in
  b.count <- b.count + 1;
  if b.count >= b.parties then release b
  else
    while b.generation = my_generation do
      Condition.wait b.cv b.m
    done;
  Mutex.unlock b.m

(* Change the party count between (or during) crossings.  If the new
   count is already met by the waiters of the current generation, the
   barrier opens immediately — a pool that shrank can never strand the
   waiters of the larger, stale generation. *)
let resize b parties =
  if parties <= 0 then invalid_arg "Barrier.resize: parties <= 0";
  Mutex.lock b.m;
  b.parties <- parties;
  if b.count >= b.parties && b.count > 0 then release b;
  Mutex.unlock b.m
