(* Sense-reversing barrier for a fixed set of participants.

   The shift-and-peel transformation needs exactly one barrier between
   the fused loop and the peeled iterations (paper §3.4); this is the
   runtime primitive the native kernels use for it. *)

type t = {
  m : Mutex.t;
  cv : Condition.t;
  parties : int;
  mutable count : int;
  mutable sense : bool;
  sink : Lf_obs.Obs.sink option;  (* named runtime counters *)
}

let create ?sink parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties <= 0";
  { m = Mutex.create (); cv = Condition.create (); parties; count = 0;
    sense = false; sink }

(* Block until all [parties] participants have called [wait]. *)
let wait b =
  (match b.sink with
  | None -> ()
  | Some s -> Lf_obs.Obs.count s "barrier.wait");
  Mutex.lock b.m;
  let my_sense = not b.sense in
  b.count <- b.count + 1;
  if b.count = b.parties then begin
    b.count <- 0;
    b.sense <- my_sense;
    Condition.broadcast b.cv
  end
  else
    while b.sense <> my_sense do
      Condition.wait b.cv b.m
    done;
  Mutex.unlock b.m
