(** Data-dependence analysis between the nests of a parallel loop
    sequence (paper §2.1, §3.3).

    Shift-and-peel needs exact {e uniform} dependence distances in the
    fused dimensions.  For the stencil subscript form [i + c] the
    distance is computed exactly; general affine subscripts go through
    GCD/Banerjee-style tests that can only prove independence, and are
    otherwise reported {!Not_uniform}. *)

type kind = Flow | Anti | Output

val kind_to_string : kind -> string

type distance =
  | Dist of int array  (** one component per fused dimension *)
  | Not_uniform of string  (** reason uniformity could not be shown *)

type edge = {
  src : int;  (** source nest index (program order) *)
  dst : int;  (** sink nest index; [src < dst] *)
  dkind : kind;
  array : string;
  dist : distance;
}

val pp_edge : Format.formatter -> edge -> unit

type access = { aref : Lf_ir.Ir.aref; write : bool }

val nest_accesses : Lf_ir.Ir.nest -> access list

val gcd_independent : Lf_ir.Ir.affine -> Lf_ir.Ir.affine -> bool
(** [true] when the GCD test {e proves} the subscript pair can never
    reference the same element. *)

val banerjee_independent :
  (Lf_ir.Ir.var -> (int * int) option) ->
  (Lf_ir.Ir.var -> (int * int) option) ->
  Lf_ir.Ir.affine ->
  Lf_ir.Ir.affine ->
  bool
(** Bounds-based independence proof: the subscript ranges are disjoint
    over the given per-variable loop bounds. *)

val access_distance :
  depth:int -> Lf_ir.Ir.nest -> Lf_ir.Ir.nest -> Lf_ir.Ir.aref -> Lf_ir.Ir.aref -> distance option
(** Distance over the [depth] fused dimensions between two references
    to the same array, [None] if provably independent (or different
    arrays). *)

type multigraph = {
  nnests : int;
  depth : int;
  edges : edge list;  (** all inter-nest dependences, src < dst *)
}

val build : ?depth:int -> Lf_ir.Ir.program -> multigraph
(** The dependence chain multigraph for fusing the outermost [depth]
    loops (paper Figure 9(b)); loop levels are matched positionally and
    all statements of the fused loop share the fused index variables. *)

val edges_between : multigraph -> int -> int -> edge list
val not_uniform_edges : multigraph -> edge list

val dist_sign : distance -> int option
(** Lexicographic sign of a uniform distance over the fused dimensions
    ([Some (-1|0|1)]); [None] for {!Not_uniform}. *)

val dim_weights : multigraph -> dim:int -> (int * int * int) list
(** [(src, dst, distance)] for every uniform edge, in dimension [dim]. *)

val may_carry_dim : Lf_ir.Ir.nest -> dim:int -> bool
(** Conservative: [true] if loop level [dim] of the nest may carry a
    dependence (which would invalidate a doall at that level). *)

val verify_doall : Lf_ir.Ir.nest -> (unit, string) result
(** Check every level declared parallel is free of carried
    dependences. *)

val verify_program : Lf_ir.Ir.program -> (unit, string) result

val max_parallel_depth : Lf_ir.Ir.program -> int
(** Largest [depth] such that the first [depth] levels of every nest
    are parallel (the candidate fusion depth). *)
