(* Data-dependence analysis between the nests of a parallel loop
   sequence (paper §2.1, §3.3).

   The shift-and-peel machinery needs exact *uniform* dependence
   distances in the fused dimensions.  For the common stencil subscript
   form [i + c] the distance is computed exactly (the same answer the
   Omega test gives on these programs); for general affine subscripts we
   fall back to GCD/Banerjee-style tests that can only prove
   independence, reporting [Not_uniform] otherwise. *)

module Ir = Lf_ir.Ir

type kind = Flow | Anti | Output

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"

type distance =
  | Dist of int array  (* one component per fused dimension *)
  | Not_uniform of string

type edge = {
  src : int;  (* index of the source nest in the program's nest list *)
  dst : int;  (* index of the sink nest; src < dst for inter-nest edges *)
  dkind : kind;
  array : string;
  dist : distance;
}

let pp_edge ppf e =
  let pp_dist ppf = function
    | Dist d ->
      Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") int) d
    | Not_uniform r -> Fmt.pf ppf "<not uniform: %s>" r
  in
  Fmt.pf ppf "%d -> %d [%s, %s] %a" e.src e.dst (kind_to_string e.dkind)
    e.array pp_dist e.dist

(* ------------------------------------------------------------------ *)
(* Access collection                                                   *)

type access = { aref : Ir.aref; write : bool }

let nest_accesses (n : Ir.nest) =
  List.concat_map
    (fun (s : Ir.stmt) ->
      { aref = s.lhs; write = true }
      :: List.map (fun r -> { aref = r; write = false }) (Ir.stmt_reads s))
    n.body

(* ------------------------------------------------------------------ *)
(* Independence provers for general affine subscript pairs             *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* GCD test on [sa(i) = sb(i')]: treating the two iteration vectors as
   independent unknowns, the equation [sum ca_t i_t - sum cb_t i'_t =
   cb0 - ca0] has integer solutions iff gcd of the coefficients divides
   the right-hand side.  Returns [true] when independence is PROVEN. *)
let gcd_independent (sa : Ir.affine) (sb : Ir.affine) =
  let coeffs = List.map fst sa.terms @ List.map fst sb.terms in
  let rhs = sb.const - sa.const in
  match coeffs with
  | [] -> rhs <> 0
  | c :: cs ->
    let g = List.fold_left gcd (abs c) cs in
    g <> 0 && rhs mod g <> 0

(* Banerjee-style bounds test: evaluate the extreme values of
   [sa(i) - sb(i')] over the loop bounds; independence is proven when 0
   lies outside the interval.  [bounds] maps a variable to its (lo, hi). *)
let banerjee_independent bounds_a bounds_b (sa : Ir.affine) (sb : Ir.affine) =
  let range bounds (c, x) =
    match bounds x with
    | None -> None
    | Some (lo, hi) ->
      if c >= 0 then Some (c * lo, c * hi) else Some (c * hi, c * lo)
  in
  let sum bounds terms =
    List.fold_left
      (fun acc t ->
        match (acc, range bounds t) with
        | Some (lo, hi), Some (lo', hi') -> Some (lo + lo', hi + hi')
        | _ -> None)
      (Some (0, 0))
      terms
  in
  match (sum bounds_a sa.terms, sum bounds_b sb.terms) with
  | Some (lo_a, hi_a), Some (lo_b, hi_b) ->
    let lo = lo_a - hi_b + sa.const - sb.const in
    let hi = hi_a - lo_b + sa.const - sb.const in
    lo > 0 || hi < 0
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Exact uniform distances                                             *)

(* Result of analysing one array dimension of an access pair. *)
type dim_constraint =
  | No_constraint  (* dimension does not constrain the fused variables *)
  | Fused of int * int  (* fused depth d, distance component *)
  | Independent  (* subscripts can never be equal *)
  | Unknown of string

let var_depth (n : Ir.nest) x =
  let rec go d = function
    | [] -> None
    | (l : Ir.level) :: rest ->
      if String.equal l.lvar x then Some d else go (d + 1) rest
  in
  go 0 n.levels

let level_bounds (n : Ir.nest) x =
  match List.find_opt (fun (l : Ir.level) -> String.equal l.lvar x) n.levels with
  | Some l -> Some (l.lo, l.hi)
  | None -> None

(* Analyse one subscript pair: [sa] from the source nest [na], [sb] from
   the sink nest [nb]; [depth] outer loops are being fused and loop
   levels are matched positionally (all statements of the fused loop
   share the fused index variables, paper §3.3). *)
let analyze_dim ~depth na nb (sa : Ir.affine) (sb : Ir.affine) =
  match (Ir.unit_var sa, Ir.unit_var sb) with
  | Some (xa, ca), Some (xb, cb) -> (
    match (var_depth na xa, var_depth nb xb) with
    | Some da, Some db when da = db ->
      if da < depth then Fused (da, ca - cb)
      else
        (* inner (unfused) dimension: the dependence may relate any pair
           of inner iterations; no constraint on the fused dims, but
           prove independence when the constant offset is infeasible. *)
        let a_lo, a_hi =
          match level_bounds na xa with Some b -> b | None -> (0, 0)
        in
        let b_lo, b_hi =
          match level_bounds nb xb with Some b -> b | None -> (0, 0)
        in
        (* ia + ca = ib + cb with ia in [a_lo,a_hi], ib in [b_lo,b_hi] *)
        if a_lo + ca > b_hi + cb || a_hi + ca < b_lo + cb then Independent
        else No_constraint
    | Some da, Some db ->
      Unknown
        (Printf.sprintf "subscript depth mismatch (%s at %d vs %s at %d)" xa
           da xb db)
    | _ -> Unknown "subscript variable not a loop index")
  | _ ->
    if Ir.affine_is_const sa && Ir.affine_is_const sb then
      if sa.const = sb.const then No_constraint else Independent
    else if gcd_independent sa sb then Independent
    else if
      banerjee_independent (level_bounds na) (level_bounds nb) sa sb
    then Independent
    else Unknown "general affine subscripts (cannot prove uniformity)"

(* Distance between two accesses over the [depth] fused dimensions, or
   proof of independence, or [Not_uniform]. *)
let access_distance ~depth na nb (ra : Ir.aref) (rb : Ir.aref) =
  if not (String.equal ra.array rb.array) then None
  else begin
    let comps = Array.make depth None in
    let result = ref `Ok in
    List.iter2
      (fun sa sb ->
        match !result with
        | `Independent | `Unknown _ -> ()
        | `Ok -> (
          match analyze_dim ~depth na nb sa sb with
          | No_constraint -> ()
          | Independent -> result := `Independent
          | Unknown r -> result := `Unknown r
          | Fused (d, dist) -> (
            match comps.(d) with
            | None -> comps.(d) <- Some dist
            | Some prev ->
              (* two dimensions constrain the same fused variable *)
              if prev <> dist then result := `Independent)))
      ra.index rb.index;
    match !result with
    | `Independent -> None
    | `Unknown r -> Some (Not_uniform r)
    | `Ok ->
      let unconstrained = ref None in
      let dist =
        Array.mapi
          (fun d c ->
            match c with
            | Some v -> v
            | None ->
              unconstrained := Some d;
              0)
          comps
      in
      (match !unconstrained with
      | Some d ->
        Some
          (Not_uniform
             (Printf.sprintf "fused dimension %d unconstrained for %s" d
                ra.array))
      | None -> Some (Dist dist))
  end

(* ------------------------------------------------------------------ *)
(* Inter-nest dependence multigraph                                    *)

type multigraph = {
  nnests : int;
  depth : int;
  edges : edge list;  (* inter-nest edges, src < dst *)
}

let dep_kind ~src_write ~dst_write =
  match (src_write, dst_write) with
  | true, false -> Some Flow
  | false, true -> Some Anti
  | true, true -> Some Output
  | false, false -> None

(* Build the dependence chain multigraph for fusing the outermost
   [depth] loops of all nests of [p] (paper Fig. 9(b)). *)
let build ?(depth = 1) (p : Ir.program) =
  let nests = Array.of_list p.nests in
  let accesses = Array.map nest_accesses nests in
  List.iter
    (fun (n : Ir.nest) ->
      if List.length n.levels < depth then
        invalid_arg
          (Printf.sprintf "Dep.build: nest %s has fewer than %d levels" n.nid
             depth))
    p.nests;
  let edges = ref [] in
  let n = Array.length nests in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      List.iter
        (fun acc_a ->
          List.iter
            (fun acc_b ->
              match
                dep_kind ~src_write:acc_a.write ~dst_write:acc_b.write
              with
              | None -> ()
              | Some k -> (
                match
                  access_distance ~depth nests.(a) nests.(b) acc_a.aref
                    acc_b.aref
                with
                | None -> ()
                | Some dist ->
                  edges :=
                    {
                      src = a;
                      dst = b;
                      dkind = k;
                      array = acc_a.aref.array;
                      dist;
                    }
                    :: !edges))
            accesses.(b))
        accesses.(a)
    done
  done;
  { nnests = n; depth; edges = List.rev !edges }

let edges_between g a b =
  List.filter (fun e -> e.src = a && e.dst = b) g.edges

let not_uniform_edges g =
  List.filter
    (fun e -> match e.dist with Not_uniform _ -> true | Dist _ -> false)
    g.edges

(* Lexicographic sign of a uniform distance over the fused dimensions:
   -1 = backward, 0 = loop-independent, +1 = forward. *)
let dist_sign = function
  | Not_uniform _ -> None
  | Dist d ->
    let rec sign k =
      if k >= Array.length d then 0
      else if d.(k) < 0 then -1
      else if d.(k) > 0 then 1
      else sign (k + 1)
    in
    Some (sign 0)

(* Distance components of all uniform edges in fused dimension [dim]. *)
let dim_weights g ~dim =
  List.filter_map
    (fun e ->
      match e.dist with
      | Dist d when dim < Array.length d -> Some (e.src, e.dst, d.(dim))
      | Dist _ | Not_uniform _ -> None)
    g.edges

(* ------------------------------------------------------------------ *)
(* Intra-nest parallelism verification (doall checking)                *)

(* A dependence between two accesses of [n] carried by loop level [dim]
   would serialize that level.  For uniform subscripts this reduces to a
   nonzero distance component; conservative [true] when uniformity
   cannot be established and independence cannot be proven. *)
let may_carry_dim (n : Ir.nest) ~dim =
  let accs = nest_accesses n in
  let pairs = ref false in
  let depth = List.length n.levels in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if (not !pairs) && (a.write || b.write) then
            match access_distance ~depth n n a.aref b.aref with
            | None -> ()
            | Some (Not_uniform _) -> pairs := true
            | Some (Dist d) -> if d.(dim) <> 0 then pairs := true)
        accs)
    accs;
  !pairs

(* Verify that every level of [n] declared parallel is indeed free of
   loop-carried dependences. *)
let verify_doall (n : Ir.nest) =
  let rec go dim = function
    | [] -> Ok ()
    | (l : Ir.level) :: rest ->
      if l.parallel && may_carry_dim n ~dim then
        Error
          (Printf.sprintf
             "nest %s: level %d (%s) is declared parallel but may carry a \
              dependence"
             n.nid dim l.lvar)
      else go (dim + 1) rest
  in
  go 0 n.levels

let verify_program (p : Ir.program) =
  List.fold_left
    (fun acc n -> match acc with Error _ -> acc | Ok () -> verify_doall n)
    (Ok ()) p.nests

(* Largest depth such that the first [depth] levels of every nest are
   parallel (candidate fusion depth). *)
let max_parallel_depth (p : Ir.program) =
  let nest_depth (n : Ir.nest) =
    let rec go k = function
      | (l : Ir.level) :: rest when l.parallel -> go (k + 1) rest
      | _ -> k
    in
    go 0 n.levels
  in
  match p.nests with
  | [] -> 0
  | n :: ns -> List.fold_left (fun d m -> min d (nest_depth m)) (nest_depth n) ns
