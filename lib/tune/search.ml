(* Deterministic search drivers (see search.mli). *)

type driver =
  | Exhaustive
  | Tuned of { margin : float; keep : int }
  | Greedy of { budget : int }
  | Beam of { width : int; budget : int }

let default_driver = Tuned { margin = 4.0; keep = 12 }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let prune ~margin ~keep items =
  match items with
  | [] -> []
  | _ ->
    let best =
      List.fold_left (fun acc (_, v) -> Float.min acc v) infinity items
    in
    let top =
      take keep
        (List.stable_sort (fun (_, a) (_, b) -> Float.compare a b) items)
    in
    List.filter
      (fun ((_, v) as it) -> v <= margin *. best || List.memq it top)
      items

type objective = Cycles | Wallclock

type outcome = {
  best : Space.candidate;
  best_cost : Cost.exact;
  default : Space.candidate;
  default_cost : Cost.exact;
  default_is_paper : bool;
  objective : objective;
  space_size : int;
  considered : int;
  exact_evals : int;
}

let run ?depth ?steps ?cache ?store ?calibration ?(driver = default_driver)
    ?(objective = Cycles) ?policy ?sweep ~machine ~nprocs p =
  let cache = match cache with Some c -> c | None -> Cost.create_cache () in
  (* Wallclock: one pool for the whole search, so domain spawn/join
     happens once, not once per candidate (and never inside a timed
     region).  The in-memory measurement memo lives and dies with this
     call — measured time is never written to [store]. *)
  let mcache = Cost.create_mcache () in
  let pool =
    match objective with
    | Cycles -> None
    | Wallclock -> Some (Lf_parallel.Pool.create nprocs)
  in
  let finally () = Option.iter Lf_parallel.Pool.shutdown pool in
  Fun.protect ~finally @@ fun () ->
  let evals = ref 0 in
  let ex c =
    incr evals;
    match objective with
    | Cycles -> Cost.exact ?depth ?steps ~cache ?store ~machine ~nprocs p c
    | Wallclock -> (
      match
        Cost.measured ?depth ?steps ?policy ~cache:mcache ?pool ~machine
          ~nprocs p c
      with
      | Error _ as e -> e
      | Ok m ->
        (* seconds ride in [e_cycles]; the outcome's [objective] field
           tells consumers which unit they are looking at *)
        Ok { Cost.e_cycles = m.Cost.m_min_s; e_misses = 0; e_barrier = 0.0 })
  in
  let cands = Space.enumerate ?sweep ~machine p in
  let space_size = List.length cands in
  (* Reference configuration: the paper default, falling back to the
     unfused schedule when fusion is infeasible for this program. *)
  let paper = Space.paper_default ~machine p in
  let fallback =
    {
      Space.variant = Space.Unfused;
      layout = Space.Partitioned { assoc_aware = true };
    }
  in
  let reference =
    match ex paper with
    | Ok e -> Ok (paper, e, true)
    | Error _ -> (
      match ex fallback with
      | Ok e -> Ok (fallback, e, false)
      | Error m -> Error ("no feasible reference configuration: " ^ m))
  in
  match reference with
  | Error _ as e -> e
  | Ok (default, default_cost, default_is_paper) ->
    (* Best of a candidate list, seeded with the reference; earlier
       candidates win ties, so the reference survives unless strictly
       beaten. *)
    let pick ~seed candidates =
      List.fold_left
        (fun (bc, be) c ->
          match ex c with
          | Error _ -> (bc, be)
          | Ok e ->
            if e.Cost.e_cycles < be.Cost.e_cycles then (c, e) else (bc, be))
        seed candidates
    in
    let analytic_scored () =
      List.filter_map
        (fun c ->
          match Cost.analytic ?depth ?calibration ~machine ~nprocs p c with
          | Error _ -> None
          | Ok v -> Some (c, v))
        cands
    in
    let to_consider =
      match driver with
      | Exhaustive -> cands
      | Tuned { margin; keep } ->
        List.map fst (prune ~margin ~keep (analytic_scored ()))
      | Beam { width; budget } ->
        let scored =
          List.stable_sort
            (fun (_, a) (_, b) -> Float.compare a b)
            (analytic_scored ())
        in
        List.map fst (take (min width budget) scored)
      | Greedy _ -> []
    in
    let best, best_cost =
      match driver with
      | Greedy { budget } ->
        (* coordinate descent: best single-axis move until a fixpoint *)
        let same_axis (c : Space.candidate) (c' : Space.candidate) =
          c' <> c
          && (c'.Space.variant = c.Space.variant
             || c'.Space.layout = c.Space.layout)
        in
        let rec descend (cur, cur_cost) budget =
          if budget <= 0 then (cur, cur_cost)
          else
            let neighbors = take budget (List.filter (same_axis cur) cands) in
            let next, next_cost = pick ~seed:(cur, cur_cost) neighbors in
            if next_cost.Cost.e_cycles < cur_cost.Cost.e_cycles then
              descend (next, next_cost) (budget - List.length neighbors)
            else (cur, cur_cost)
        in
        descend (default, default_cost) budget
      | _ -> pick ~seed:(default, default_cost) to_consider
    in
    Ok
      {
        best;
        best_cost;
        default;
        default_cost;
        default_is_paper;
        objective;
        space_size;
        considered =
          (match driver with
          | Greedy _ -> !evals
          | _ -> List.length to_consider);
        exact_evals = !evals;
      }
