(* The autotuner's search space (see space.mli).

   The axes follow the knobs the paper sets by hand: Table 2 fixes the
   transformation (fused shift-and-peel), Figure 12's rule fixes the
   strip size, Figure 19's greedy layout fixes the data placement.  Here
   each becomes a coordinate of a candidate, and the paper's choices are
   one point — [paper_default] — that every search keeps as a floor. *)

module Ir = Lf_ir.Ir
module Machine = Lf_machine.Machine
module Cache = Lf_cache.Cache
module Schedule = Lf_core.Schedule
module Derive = Lf_core.Derive
module Partition = Lf_core.Partition
module Cluster = Lf_core.Cluster
module Wavefront = Lf_core.Wavefront
module Alignrep = Lf_core.Alignrep

type variant =
  | Unfused
  | Fused of { clustered : bool; strip : int }
  | Wavefront of { tile : int }
  | Alignrep of { strip : int }

type layout_spec =
  | Contiguous
  | Padded of int
  | Partitioned of { assoc_aware : bool }

type candidate = { variant : variant; layout : layout_spec }

let cache_shape (m : Machine.config) =
  {
    Partition.capacity = m.Machine.cache.Cache.capacity;
    line = m.Machine.cache.Cache.line;
    assoc = m.Machine.cache.Cache.assoc;
  }

(* One fused iteration touches one inner "row" of each array; the strip
   must keep [strip] such rows of every array within its partition
   (paper §3.4; same rule as the bench harness). *)
let rule_strip ~machine (p : Ir.program) =
  let narrays = max 1 (List.length p.Ir.decls) in
  let inner_bytes =
    List.fold_left
      (fun acc (d : Ir.decl) ->
        match d.extents with
        | [] -> acc
        | _ :: rest -> max acc (List.fold_left ( * ) 8 rest))
      8 p.Ir.decls
  in
  let sp = Partition.partition_size ~cache:(cache_shape machine) ~narrays in
  max 2 ((sp / inner_bytes) - 2)

let paper_default ~machine p =
  {
    variant = Fused { clustered = false; strip = rule_strip ~machine p };
    layout = Partitioned { assoc_aware = true };
  }

let strips ?(sweep = true) ~machine p =
  let rule = rule_strip ~machine p in
  if not sweep then [ rule ]
  else
    let around =
      [ rule / 4; rule / 2; rule * 2; rule * 4; Schedule.default_strip ]
    in
    rule
    :: List.sort_uniq compare
         (List.filter (fun s -> s >= 2 && s <> rule) around)

let layouts ~machine =
  let assoc = (cache_shape machine).Partition.assoc in
  [ Partitioned { assoc_aware = true } ]
  @ (if assoc > 1 then [ Partitioned { assoc_aware = false } ] else [])
  @ [ Contiguous; Padded 1; Padded 9 ]

let variants ?sweep ~machine p =
  let rule = rule_strip ~machine p in
  let fused_strips =
    List.map
      (fun strip -> Fused { clustered = false; strip })
      (strips ?sweep ~machine p)
  in
  fused_strips
  @ [ Fused { clustered = true; strip = rule }; Unfused ]
  @ [ Wavefront { tile = 16 }; Wavefront { tile = 64 } ]
  @ [ Alignrep { strip = rule } ]

let enumerate ?sweep ~machine p =
  let default = paper_default ~machine p in
  let all =
    List.concat_map
      (fun variant ->
        List.map (fun layout -> { variant; layout }) (layouts ~machine))
      (variants ?sweep ~machine p)
  in
  default :: List.filter (fun c -> c <> default) all

let build ?(depth = 1) ~machine ~nprocs (p : Ir.program) cand =
  try
    let sched =
      match cand.variant with
      | Unfused -> Schedule.unfused ~depth ~nprocs p
      | Fused { clustered = false; strip } ->
        let derive = Derive.of_program ~depth p in
        Schedule.fused ~strip ~derive ~nprocs p
      | Fused { clustered = true; strip } ->
        Cluster.schedule ~depth ~strip ~nprocs p (Cluster.groups ~depth p)
      | Wavefront { tile } ->
        let derive = Derive.of_program ~depth p in
        Wavefront.schedule ~tile ~derive ~nprocs p
      | Alignrep { strip } -> (
        match Alignrep.transform p with
        | Error e -> failwith ("alignrep: " ^ e)
        | Ok r -> Alignrep.schedule ~strip ~nprocs r)
    in
    let decls = sched.Schedule.prog.Ir.decls in
    let layout =
      match cand.layout with
      | Contiguous -> Partition.contiguous decls
      | Padded pad -> Partition.padded ~pad decls
      | Partitioned { assoc_aware } ->
        let shape = cache_shape machine in
        let shape =
          if assoc_aware then shape else { shape with Partition.assoc = 1 }
        in
        Partition.cache_partitioned ~cache:shape decls
    in
    Ok (sched, layout)
  with
  | Schedule.Illegal m -> Error ("illegal: " ^ m)
  | Derive.Not_applicable m -> Error ("derive: " ^ m)
  | Failure m -> Error m
  | Invalid_argument m -> Error ("invalid: " ^ m)

let variant_to_string = function
  | Unfused -> "unfused"
  | Fused { clustered = false; strip } -> Printf.sprintf "fused(strip=%d)" strip
  | Fused { clustered = true; strip } ->
    Printf.sprintf "clustered(strip=%d)" strip
  | Wavefront { tile } -> Printf.sprintf "wavefront(tile=%d)" tile
  | Alignrep { strip } -> Printf.sprintf "align+rep(strip=%d)" strip

let layout_to_string = function
  | Contiguous -> "contiguous"
  | Padded pad -> Printf.sprintf "pad:%d" pad
  | Partitioned { assoc_aware = true } -> "partitioned"
  | Partitioned { assoc_aware = false } -> "partitioned(naive)"

let to_string c =
  variant_to_string c.variant ^ " + " ^ layout_to_string c.layout

let pp ppf c = Fmt.string ppf (to_string c)
