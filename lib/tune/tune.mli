(** `lf_tune` entry point: simulator-guided autotuning of the joint
    transformation space (schedule variant, fusion clustering, strip
    size, data layout) for one parallel loop sequence on one machine
    model.

    [tune] wraps {!Search.run}: it enumerates {!Space.enumerate}, prunes
    with the analytic tier of {!Cost}, exact-evaluates survivors on the
    {!Lf_machine.Exec} simulator (memoised), and returns the best
    configuration found together with the paper-default reference it is
    guaranteed not to lose to. *)

val tune :
  ?depth:int ->
  ?steps:int ->
  ?cache:Cost.cache ->
  ?store:Lf_batch.Batch.Store.t ->
  ?calibration:Cost.calibration ->
  ?driver:Search.driver ->
  ?objective:Search.objective ->
  ?policy:Lf_native.Bench_timer.policy ->
  ?sweep:bool ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  (Search.outcome, string) result
(** With [~objective:Wallclock] the deciding tier is real measured
    time on the host's cores rather than simulated cycles — see
    {!Search.run} for the measurement and caching rules. *)

val driver_of_string : string -> (Search.driver, string) result
(** "auto" (the default {!Search.default_driver}), "exhaustive",
    "greedy", "beam", optionally with ":budget" (e.g. "beam:8"). *)

val objective_of_string : string -> (Search.objective, string) result
(** "cycles" (the default) or "wallclock". *)

val improvement_pct : Search.outcome -> float
(** Percent improvement of the tuned configuration over the reference
    (>= 0 by construction), in the outcome's own objective. *)

val pp_outcome : Format.formatter -> Search.outcome -> unit
(** Multi-line report: chosen configuration, its cost (cycles or
    measured seconds, per the outcome's objective), the reference
    configuration and its cost, search statistics. *)

val pp_row : Format.formatter -> Search.outcome -> unit
(** One table row: default cost, tuned cost, gain, chosen config. *)
