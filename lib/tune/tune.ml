(* lf_tune facade (see tune.mli). *)

let tune = Search.run

let driver_of_string s =
  let split_budget s =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  match split_budget s with
  | "auto", None -> Ok Search.default_driver
  | "exhaustive", None -> Ok Search.Exhaustive
  | "greedy", None -> Ok (Search.Greedy { budget = 64 })
  | "greedy", Some b -> Ok (Search.Greedy { budget = b })
  | "beam", None -> Ok (Search.Beam { width = 8; budget = 64 })
  | "beam", Some b -> Ok (Search.Beam { width = b; budget = 64 })
  | _ ->
    Error
      (Printf.sprintf
         "unknown search driver %s (try auto, exhaustive, greedy[:budget], \
          beam[:width])" s)

let objective_of_string = function
  | "cycles" -> Ok Search.Cycles
  | "wallclock" -> Ok Search.Wallclock
  | s ->
    Error
      (Printf.sprintf "unknown objective %s (try cycles or wallclock)" s)

let improvement_pct (o : Search.outcome) =
  100.0
  *. ((o.Search.default_cost.Cost.e_cycles /. o.Search.best_cost.Cost.e_cycles)
     -. 1.0)

(* Under Wallclock, [e_cycles] carries measured seconds and the miss
   count is meaningless — print the unit the outcome actually holds. *)
let pp_cost o ppf (e : Cost.exact) =
  match o.Search.objective with
  | Search.Cycles ->
    Fmt.pf ppf "%.4e cycles, %d misses" e.Cost.e_cycles e.Cost.e_misses
  | Search.Wallclock -> Fmt.pf ppf "%.3f ms measured" (e.Cost.e_cycles *. 1e3)

let pp_outcome ppf (o : Search.outcome) =
  let reference =
    if o.Search.default_is_paper then "paper default"
    else "unfused fallback (fusion infeasible)"
  in
  Fmt.pf ppf "selected:  %a@." Space.pp o.Search.best;
  Fmt.pf ppf "           %a@." (pp_cost o) o.Search.best_cost;
  Fmt.pf ppf "%s: %a@."
    (if o.Search.default_is_paper then "reference" else "fallback ")
    Space.pp o.Search.default;
  Fmt.pf ppf "           %a (%s)@." (pp_cost o) o.Search.default_cost reference;
  Fmt.pf ppf "gain over reference: %+.1f%%@." (improvement_pct o);
  Fmt.pf ppf "search: %d candidates, %d exact-evaluated, %d exact lookups@."
    o.Search.space_size o.Search.considered o.Search.exact_evals

let pp_row ppf (o : Search.outcome) =
  Fmt.pf ppf "%14.4e %14.4e %+7.1f%%  %s" o.Search.default_cost.Cost.e_cycles
    o.Search.best_cost.Cost.e_cycles (improvement_pct o)
    (Space.to_string o.Search.best)
