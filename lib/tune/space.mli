(** The autotuner's search space: the transformation parameters the
    paper fixes by hand, made explicit and enumerable.

    A candidate combines a schedule variant (unfused, fused shift-and-peel
    — plain or clustered —, wavefront, alignment+replication), a
    strip-mining factor (the §3.4 rule of thumb plus a sweep around it)
    and a data layout (contiguous, intra-array padding, or the Figure 19
    cache partitioning with direct-mapped or associativity-aware
    targets).  Enumeration order is deterministic and always starts with
    the paper-default configuration, so searches can tie-break towards
    it. *)

type variant =
  | Unfused  (** one block-scheduled phase per nest *)
  | Fused of { clustered : bool; strip : int }
      (** shift-and-peel; [clustered] groups via {!Lf_core.Cluster}
          instead of fusing the whole sequence *)
  | Wavefront of { tile : int }  (** shifting only, per-diagonal barriers *)
  | Alignrep of { strip : int }
      (** alignment + replication baseline (Callahan / Appelbe-Smith) *)

type layout_spec =
  | Contiguous
  | Padded of int  (** pad the innermost dimension by this many elements *)
  | Partitioned of { assoc_aware : bool }
      (** cache partitioning; [assoc_aware = false] pretends the cache
          is direct-mapped when choosing partition targets *)

type candidate = { variant : variant; layout : layout_spec }

val cache_shape : Lf_machine.Machine.config -> Lf_core.Partition.cache_shape

val rule_strip : machine:Lf_machine.Machine.config -> Lf_ir.Ir.program -> int
(** The §3.4 rule of thumb: the largest strip for which one strip of
    every array fits in its cache partition (never below 2). *)

val paper_default :
  machine:Lf_machine.Machine.config -> Lf_ir.Ir.program -> candidate
(** What the paper's evaluation uses everywhere: plain shift-and-peel
    fusion at the rule-of-thumb strip size with associativity-aware
    cache partitioning. *)

val strips :
  ?sweep:bool -> machine:Lf_machine.Machine.config -> Lf_ir.Ir.program ->
  int list
(** Strip-size axis: the rule of thumb first, then (when [sweep], the
    default) /4, /2, x2, x4 around it and the schedule default. *)

val enumerate :
  ?sweep:bool -> machine:Lf_machine.Machine.config -> Lf_ir.Ir.program ->
  candidate list
(** The full candidate list in deterministic order, paper default
    first.  Feasibility (fusion legality, alignment applicability,
    block-size thresholds) is not checked here — {!build} reports it per
    candidate. *)

val build :
  ?depth:int ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  candidate ->
  (Lf_core.Schedule.t * Lf_core.Partition.layout, string) result
(** Realize a candidate as an executable schedule plus a memory layout
    (built from the schedule's own program, so alignment+replication
    copy arrays are placed too).  [Error] when the candidate is
    infeasible for this program/processor count. *)

val layout_to_string : layout_spec -> string
(** Stable layout tag ("contiguous", "pad:N", "partitioned",
    "partitioned(naive)") — the vocabulary calibration factors and
    profile sinks are keyed by. *)

val to_string : candidate -> string
val pp : Format.formatter -> candidate -> unit
