(** Deterministic search drivers over the candidate space.

    Every driver exact-evaluates the reference configuration (the paper
    default, or unfused + partitioned when fusion is infeasible for the
    program) and returns the best of {reference} ∪ {explored}, with ties
    broken towards the earlier candidate in enumeration order — so the
    autotuner can never select a configuration worse than the paper
    default.  No driver uses randomness: rerunning a search on the same
    inputs returns the same configuration. *)

type driver =
  | Exhaustive  (** exact-evaluate every feasible candidate *)
  | Tuned of { margin : float; keep : int }
      (** analytic tier prunes: keep candidates within [margin] of the
          best analytic estimate (and at least the [keep] best), then
          exact-evaluate the survivors *)
  | Greedy of { budget : int }
      (** coordinate descent from the reference: repeatedly move to the
          best single-axis (variant or layout) improvement, at most
          [budget] exact evaluations *)
  | Beam of { width : int; budget : int }
      (** exact-evaluate the [width] analytically-best candidates
          (capped by [budget]) *)

val default_driver : driver
(** [Tuned { margin = 4.0; keep = 12 }]: generous enough that the
    analytic tier only discards clearly hopeless candidates (the
    property tests check it never discards the exact optimum). *)

val prune : margin:float -> keep:int -> ('a * float) list -> ('a * float) list
(** Analytic pruning, input order preserved: keep every item whose
    estimate is within [margin] times the best estimate, plus at least
    the [keep] lowest-estimate items. *)

type outcome = {
  best : Space.candidate;
  best_cost : Cost.exact;
  default : Space.candidate;  (** the reference configuration *)
  default_cost : Cost.exact;
  default_is_paper : bool;
      (** false when the paper default was infeasible and the unfused
          fallback serves as the reference *)
  space_size : int;
  considered : int;  (** candidates handed to the exact tier *)
  exact_evals : int;  (** exact-tier lookups issued (memo hits included) *)
}

val run :
  ?depth:int ->
  ?steps:int ->
  ?cache:Cost.cache ->
  ?store:Lf_batch.Batch.Store.t ->
  ?calibration:Cost.calibration ->
  ?driver:driver ->
  ?sweep:bool ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  (outcome, string) result
(** Search the space for [p] on [machine] with [nprocs] processors.
    [calibration] feeds measured conflict factors to the analytic
    pruning tier (see {!Cost.calibration_of_sink}); [store] persists
    exact-tier evaluations on disk across searches and processes
    (see {!Cost.exact}).  [Error] only when not even the unfused
    fallback can be simulated (e.g. more processors than
    iterations). *)
