(** Deterministic search drivers over the candidate space.

    Every driver exact-evaluates the reference configuration (the paper
    default, or unfused + partitioned when fusion is infeasible for the
    program) and returns the best of {reference} ∪ {explored}, with ties
    broken towards the earlier candidate in enumeration order — so the
    autotuner can never select a configuration worse than the paper
    default.  No driver uses randomness: rerunning a search on the same
    inputs returns the same configuration. *)

type driver =
  | Exhaustive  (** exact-evaluate every feasible candidate *)
  | Tuned of { margin : float; keep : int }
      (** analytic tier prunes: keep candidates within [margin] of the
          best analytic estimate (and at least the [keep] best), then
          exact-evaluate the survivors *)
  | Greedy of { budget : int }
      (** coordinate descent from the reference: repeatedly move to the
          best single-axis (variant or layout) improvement, at most
          [budget] exact evaluations *)
  | Beam of { width : int; budget : int }
      (** exact-evaluate the [width] analytically-best candidates
          (capped by [budget]) *)

val default_driver : driver
(** [Tuned { margin = 4.0; keep = 12 }]: generous enough that the
    analytic tier only discards clearly hopeless candidates (the
    property tests check it never discards the exact optimum). *)

val prune : margin:float -> keep:int -> ('a * float) list -> ('a * float) list
(** Analytic pruning, input order preserved: keep every item whose
    estimate is within [margin] times the best estimate, plus at least
    the [keep] lowest-estimate items. *)

type objective =
  | Cycles  (** minimise simulated cycles ({!Cost.exact}) *)
  | Wallclock
      (** minimise measured seconds on the host ({!Cost.measured}):
          every evaluated candidate is executed natively — verified
          bit-identical to the interpreter first — and timed under the
          warmup/min-of-k/outlier policy.  Analytic pruning still uses
          the machine model (it only {e ranks}, it never decides the
          winner), and measurements are memoised in memory only, never
          in the on-disk store. *)

type outcome = {
  best : Space.candidate;
  best_cost : Cost.exact;
  default : Space.candidate;  (** the reference configuration *)
  default_cost : Cost.exact;
  default_is_paper : bool;
      (** false when the paper default was infeasible and the unfused
          fallback serves as the reference *)
  objective : objective;
      (** under [Wallclock], [best_cost]/[default_cost] carry measured
          {e seconds} in [e_cycles] ([e_misses] = 0, [e_barrier] = 0.) *)
  space_size : int;
  considered : int;  (** candidates handed to the exact tier *)
  exact_evals : int;  (** exact-tier lookups issued (memo hits included) *)
}

val run :
  ?depth:int ->
  ?steps:int ->
  ?cache:Cost.cache ->
  ?store:Lf_batch.Batch.Store.t ->
  ?calibration:Cost.calibration ->
  ?driver:driver ->
  ?objective:objective ->
  ?policy:Lf_native.Bench_timer.policy ->
  ?sweep:bool ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  (outcome, string) result
(** Search the space for [p] on [machine] with [nprocs] processors.
    [calibration] feeds measured conflict factors to the analytic
    pruning tier (see {!Cost.calibration_of_sink}); [store] persists
    exact-tier evaluations on disk across searches and processes
    (see {!Cost.exact}).  [Error] only when not even the unfused
    fallback can be simulated (e.g. more processors than
    iterations).

    [objective] (default [Cycles]) selects the deciding tier.  Under
    [Wallclock], [policy] overrides the measurement policy, [store] is
    ignored (measured time is never persisted — DESIGN §7/§11), one
    domain pool of [nprocs] workers is created up front and reused for
    every candidate so spawn/join never lands in a timed region, and
    the reference-seeding guarantee still holds: the returned
    configuration's measured time is never worse than the reference's
    {e as measured in this search}.  Repeating a [Wallclock] search
    measures again — host time is not deterministic, unlike every
    other number in the system. *)
