(* Two-tier cost model (see cost.mli). *)

module Ir = Lf_ir.Ir
module Machine = Lf_machine.Machine
module Cache = Lf_cache.Cache
module Schedule = Lf_core.Schedule
module Exec = Lf_machine.Exec

type exact = { e_cycles : float; e_misses : int; e_barrier : float }

type cache = {
  tbl : (string, exact) Hashtbl.t;
  mutable c_hits : int;
  mutable c_misses : int;
}

let create_cache () = { tbl = Hashtbl.create 64; c_hits = 0; c_misses = 0 }

type cache_stats = { hits : int; misses : int; entries : int }

let stats c =
  { hits = c.c_hits; misses = c.c_misses; entries = Hashtbl.length c.tbl }

let fingerprint ?(depth = 1) ?(steps = 1) ~machine ~nprocs p cand =
  let m : Machine.config = machine in
  let cc = m.Machine.cache in
  Printf.sprintf "%s|%s|%s|c%d.%d.%d|h%d|P%d|s%d|d%d"
    (Digest.to_hex (Digest.string (Ir.program_to_string p)))
    (Space.to_string cand) m.Machine.mname cc.Cache.capacity cc.Cache.line
    cc.Cache.assoc m.Machine.hypernode nprocs steps depth

(* ------------------------------------------------------------------ *)
(* Analytic tier                                                       *)

(* Measured miss-inflation factors (misses over compulsory misses)
   keyed by layout tag, recorded from an instrumented simulation. *)
type calibration = (string * float) list

let calibration_of_sink sink =
  [ (Lf_obs.Obs.layout sink, Lf_obs.Obs.miss_factor sink) ]

(* Layouts prone to cross-conflicts pay a multiplicative miss factor.
   A [calibration] entry for the candidate's layout tag — a factor
   *measured* by Lf_obs on this very workload — replaces the guess;
   otherwise the heuristic applies: back-to-back power-of-two arrays
   conflict pathologically on a direct-mapped cache (paper Figure 18's
   motivation), padding perturbs but does not eliminate conflicts, and
   partitioning with naive direct-mapped targets wastes set-associative
   span. *)
let conflict_factor ?(calibration = []) ~machine (cand : Space.candidate) =
  match List.assoc_opt (Space.layout_to_string cand.Space.layout) calibration with
  | Some f -> f
  | None -> (
    let assoc = (Space.cache_shape machine).Lf_core.Partition.assoc in
    match cand.Space.layout with
    | Space.Partitioned { assoc_aware = true } -> 1.0
    | Space.Partitioned { assoc_aware = false } ->
      if assoc > 1 then 1.15 else 1.0
    | Space.Padded pad -> if pad > 0 then 1.3 else 2.5
    | Space.Contiguous -> if assoc = 1 then 3.0 else 2.0)

let analytic_of_schedule ?calibration ~machine cand (sched : Schedule.t) =
  let m : Machine.config = machine in
  let c = m.Machine.cost in
  let prog = sched.Schedule.prog in
  let nprocs = sched.Schedule.nprocs in
  let fprocs = float_of_int nprocs in
  let nests = Array.of_list prog.Ir.nests in
  (* per-nest: statement count, memory references per iteration *)
  let nstmts = Array.map (fun (n : Ir.nest) -> List.length n.Ir.body) nests in
  let refs =
    Array.map
      (fun (n : Ir.nest) ->
        List.fold_left
          (fun acc (s : Ir.stmt) -> acc + 1 + List.length (Ir.stmt_reads s))
          0 n.Ir.body)
      nests
  in
  let arrays_of_nest = Array.map Ir.nest_arrays nests in
  let bytes_of_array =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (d : Ir.decl) -> Hashtbl.replace tbl d.Ir.aname (8 * Ir.num_elements d))
      prog.Ir.decls;
    fun a -> try Hashtbl.find tbl a with Not_found -> 0
  in
  let line = float_of_int m.Machine.cache.Cache.line in
  let capacity = m.Machine.cache.Cache.capacity in
  let compute = ref 0.0 and cap_misses = ref 0.0 in
  List.iter
    (fun (ph : Schedule.phase) ->
      let per_proc =
        Array.map
          (fun boxes ->
            List.fold_left
              (fun acc (b : Schedule.box) ->
                let iters = float_of_int (Schedule.box_iterations b) in
                let k = b.Schedule.nest in
                acc +. c.Machine.loop_overhead
                +. iters
                   *. ((c.Machine.op *. float_of_int nstmts.(k))
                      +. c.Machine.iter_overhead
                      +. (float_of_int refs.(k) *. c.Machine.hit)))
              0.0 boxes)
          ph
      in
      compute := !compute +. Array.fold_left Float.max 0.0 per_proc;
      (* arrays touched by this phase; one sweep of them when the
         per-processor share exceeds the cache (Profit's criterion) *)
      let touched = Hashtbl.create 8 in
      Array.iter
        (List.iter (fun (b : Schedule.box) ->
             if not (Schedule.box_is_empty b) then
               List.iter
                 (fun a -> Hashtbl.replace touched a ())
                 arrays_of_nest.(b.Schedule.nest)))
        ph;
      let phase_bytes =
        Hashtbl.fold (fun a () acc -> acc + bytes_of_array a) touched 0
      in
      if phase_bytes / nprocs > capacity then
        cap_misses := !cap_misses +. (float_of_int phase_bytes /. line))
    sched.Schedule.phases;
  let data_bytes =
    List.fold_left
      (fun acc a -> acc + bytes_of_array a)
      0 (Ir.program_arrays prog)
  in
  let cold = float_of_int data_bytes /. line in
  let misses =
    (cold +. !cap_misses) *. conflict_factor ?calibration ~machine cand
  in
  let miss_extra = Machine.miss_penalty m ~nprocs -. c.Machine.hit in
  let nbarriers = max 0 (List.length sched.Schedule.phases - 1) in
  !compute
  +. (misses *. miss_extra /. fprocs)
  +. (float_of_int nbarriers *. Machine.barrier_cost m ~nprocs)

let analytic ?depth ?calibration ~machine ~nprocs p cand =
  match Space.build ?depth ~machine ~nprocs p cand with
  | Error _ as e -> e
  | Ok (sched, _layout) ->
    Ok (analytic_of_schedule ?calibration ~machine cand sched)

(* ------------------------------------------------------------------ *)
(* Exact tier                                                          *)

let exact ?depth ?steps ?cache ?store ~machine ~nprocs p cand =
  let eval () =
    match Space.build ?depth ~machine ~nprocs p cand with
    | Error _ as e -> e
    | Ok (sched, layout) ->
      (* the tuner only reads cycles/misses/barrier, never the store,
         so the run-compressed address-stream engine is
         semantics-preserving here.  Routing through Batch.run_one
         makes every exact evaluation a content-addressed request:
         with [store], evaluations persist across processes. *)
      let req =
        Lf_machine.Sim.of_schedule ~layout ?steps
          ~mode:Lf_machine.Sim.Run_compressed ~machine sched
      in
      let r = Lf_batch.Batch.run_one ?store req in
      Ok
        {
          e_cycles = r.Exec.cycles;
          e_misses = r.Exec.total_misses;
          e_barrier = r.Exec.barrier_cycles;
        }
  in
  match cache with
  | None -> eval ()
  | Some c -> (
    let key = fingerprint ?depth ?steps ~machine ~nprocs p cand in
    match Hashtbl.find_opt c.tbl key with
    | Some e ->
      c.c_hits <- c.c_hits + 1;
      Ok e
    | None -> (
      c.c_misses <- c.c_misses + 1;
      match eval () with
      | Ok e as ok ->
        Hashtbl.add c.tbl key e;
        ok
      | Error _ as err -> err))

(* ------------------------------------------------------------------ *)
(* Measured tier                                                       *)

module Native = Lf_native.Native
module Bench_timer = Lf_native.Bench_timer

type measured = {
  m_min_s : float;
  m_median_s : float;
  m_reps : int;
  m_kept : int;
}

(* In-memory only, by design: measured wall-clock is host- and
   moment-dependent, so it must never reach the content-addressed
   on-disk store (DESIGN §7/§11) — hence no [?store] anywhere below,
   and nothing here knows how to serialise a [measured]. *)
type mcache = {
  mtbl : (string, measured) Hashtbl.t;
  mutable m_hits : int;
  mutable m_misses : int;
}

let create_mcache () = { mtbl = Hashtbl.create 16; m_hits = 0; m_misses = 0 }

let mstats c =
  { hits = c.m_hits; misses = c.m_misses; entries = Hashtbl.length c.mtbl }

(* Layout placement is a property of the *simulated* memory system; a
   native run puts every array in its own Bigarray regardless.  The
   memo key therefore pins the layout to a fixed tag so candidates
   differing only on the layout axis share one measurement.  The
   policy *is* in the key: min-of-3 and min-of-10 are different
   observables. *)
let mfingerprint ?depth ?steps ~policy ~machine ~nprocs p cand =
  let canonical = { cand with Space.layout = Space.Contiguous } in
  Printf.sprintf "%s|native|w%d.r%d.x%h"
    (fingerprint ?depth ?steps ~machine ~nprocs p canonical)
    policy.Bench_timer.warmup policy.Bench_timer.repetitions
    policy.Bench_timer.outlier_cutoff

let measured ?depth ?steps ?(policy = Bench_timer.default_policy) ?cache ?pool
    ~machine ~nprocs p cand =
  let eval () =
    match Space.build ?depth ~machine ~nprocs p cand with
    | Error _ as e -> e
    | Ok (sched, _layout) -> (
      (* Never time what is not proven correct: one verified run
         against the serial interpreter, bit for bit, before the
         clock starts. *)
      match Native.verify ?steps ?pool sched with
      | Error m ->
        Error ("native run diverges from the reference interpreter: " ^ m)
      | Ok () ->
        let t = Native.measure ~policy ?steps ?pool sched in
        let m = t.Native.t_measure in
        Ok
          {
            m_min_s = m.Bench_timer.min_s;
            m_median_s = m.Bench_timer.median_s;
            m_reps = Array.length m.Bench_timer.samples;
            m_kept = m.Bench_timer.kept;
          })
  in
  match cache with
  | None -> eval ()
  | Some c -> (
    let key = mfingerprint ?depth ?steps ~policy ~machine ~nprocs p cand in
    match Hashtbl.find_opt c.mtbl key with
    | Some m ->
      c.m_hits <- c.m_hits + 1;
      Ok m
    | None -> (
      c.m_misses <- c.m_misses + 1;
      match eval () with
      | Ok m as ok ->
        Hashtbl.add c.mtbl key m;
        ok
      | Error _ as err -> err))
