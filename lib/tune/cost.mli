(** Two-tier cost model for the autotuner.

    The {b analytic tier} prices a candidate without simulating it: it
    builds the schedule (cheap — boxes, not iterations) and charges the
    machine's per-iteration compute costs, a per-box loop overhead, one
    barrier per phase, and a capacity-miss estimate in the style of
    {!Lf_core.Profit} (a phase whose per-processor data exceeds the
    cache sweeps that data once; layouts prone to cross-conflicts pay a
    multiplicative factor).  It exists to {e rank} candidates for
    pruning, not to predict absolute cycles.

    The {b exact tier} runs the candidate through {!Lf_machine.Exec} on
    the simulated machine — the same simulation the experiments report —
    and is memoised: results are keyed by a structural fingerprint of
    (program, candidate, machine, processor count, steps, depth), so
    re-evaluating a configuration is a hash lookup. *)

type exact = {
  e_cycles : float;  (** simulated execution time *)
  e_misses : int;  (** total cache misses, all processors *)
  e_barrier : float;  (** barrier cycles included in [e_cycles] *)
}

type cache
(** Memo table for exact-tier evaluations, shared across searches. *)

val create_cache : unit -> cache

type cache_stats = { hits : int; misses : int; entries : int }
(** [misses] counts cold evaluations (simulations actually run). *)

val stats : cache -> cache_stats

val fingerprint :
  ?depth:int ->
  ?steps:int ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  string
(** Structural memo key: digest of the printed program plus the
    candidate, machine geometry/name, processor count, steps, depth. *)

val analytic :
  ?depth:int ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  (float, string) result
(** Estimated cycles of a candidate; [Error] when it is infeasible. *)

val exact :
  ?depth:int ->
  ?steps:int ->
  ?cache:cache ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  (exact, string) result
(** Simulated cycles of a candidate, memoised in [cache] when given. *)
