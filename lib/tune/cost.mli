(** Two-tier cost model for the autotuner.

    The {b analytic tier} prices a candidate without simulating it: it
    builds the schedule (cheap — boxes, not iterations) and charges the
    machine's per-iteration compute costs, a per-box loop overhead, one
    barrier per phase, and a capacity-miss estimate in the style of
    {!Lf_core.Profit} (a phase whose per-processor data exceeds the
    cache sweeps that data once; layouts prone to cross-conflicts pay a
    multiplicative factor).  It exists to {e rank} candidates for
    pruning, not to predict absolute cycles.

    The {b exact tier} runs the candidate through {!Lf_machine.Exec} on
    the simulated machine — the same simulation the experiments report —
    and is memoised: results are keyed by a structural fingerprint of
    (program, candidate, machine, processor count, steps, depth), so
    re-evaluating a configuration is a hash lookup.  Cold evaluations
    use the simulator's [Run_compressed] engine (cycle and miss counts
    are bit-identical to a full run; only the store, which the tuner
    never reads, is skipped), inherit its host-domain parallelism
    ({!Lf_machine.Exec.default_jobs}), and are issued as
    content-addressed requests through {!Lf_batch.Batch.run_one}, so an
    on-disk {!Lf_batch.Batch.Store} persists them across processes. *)

type exact = {
  e_cycles : float;  (** simulated execution time *)
  e_misses : int;  (** total cache misses, all processors *)
  e_barrier : float;  (** barrier cycles included in [e_cycles] *)
}

type cache
(** Memo table for exact-tier evaluations, shared across searches. *)

val create_cache : unit -> cache

type cache_stats = { hits : int; misses : int; entries : int }
(** [misses] counts cold evaluations (simulations actually run). *)

val stats : cache -> cache_stats

val fingerprint :
  ?depth:int ->
  ?steps:int ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  string
(** Structural memo key: digest of the printed program plus the
    candidate, machine geometry/name, processor count, steps, depth. *)

type calibration = (string * float) list
(** Measured miss-inflation factors (misses / compulsory misses) keyed
    by layout tag ({!Space.layout_to_string} vocabulary), recorded from
    an instrumented simulation. *)

val calibration_of_sink : Lf_obs.Obs.sink -> calibration
(** One calibration entry from a profile recorded by
    [Lf_machine.Exec.run ~sink]: the sink's layout tag mapped to its
    measured miss factor.  Concatenate the results of several profiled
    runs to calibrate several layouts. *)

val conflict_factor :
  ?calibration:calibration ->
  machine:Lf_machine.Machine.config ->
  Space.candidate ->
  float
(** The multiplicative miss factor the analytic tier charges a
    candidate's layout: the calibration entry for its layout tag when
    present, the built-in heuristic otherwise. *)

val analytic :
  ?depth:int ->
  ?calibration:calibration ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  (float, string) result
(** Estimated cycles of a candidate; [Error] when it is infeasible.
    [calibration] replaces the layout conflict-factor heuristic with
    factors measured on a recorded profile. *)

val exact :
  ?depth:int ->
  ?steps:int ->
  ?cache:cache ->
  ?store:Lf_batch.Batch.Store.t ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  (exact, string) result
(** Simulated cycles of a candidate, memoised in [cache] when given.
    Cold evaluations go through {!Lf_batch.Batch.run_one} as
    content-addressed {!Lf_machine.Sim.request}s, so with [store] they
    are also answered from (and persisted to) the on-disk result store —
    the in-memory [cache] short-circuits repeats within a search, the
    [store] short-circuits repeats across processes. *)
