(** Two-tier cost model for the autotuner.

    The {b analytic tier} prices a candidate without simulating it: it
    builds the schedule (cheap — boxes, not iterations) and charges the
    machine's per-iteration compute costs, a per-box loop overhead, one
    barrier per phase, and a capacity-miss estimate in the style of
    {!Lf_core.Profit} (a phase whose per-processor data exceeds the
    cache sweeps that data once; layouts prone to cross-conflicts pay a
    multiplicative factor).  It exists to {e rank} candidates for
    pruning, not to predict absolute cycles.

    The {b exact tier} runs the candidate through {!Lf_machine.Exec} on
    the simulated machine — the same simulation the experiments report —
    and is memoised: results are keyed by a structural fingerprint of
    (program, candidate, machine, processor count, steps, depth), so
    re-evaluating a configuration is a hash lookup.  Cold evaluations
    use the simulator's [Run_compressed] engine (cycle and miss counts
    are bit-identical to a full run; only the store, which the tuner
    never reads, is skipped), inherit its host-domain parallelism
    ({!Lf_machine.Exec.default_jobs}), and are issued as
    content-addressed requests through {!Lf_batch.Batch.run_one}, so an
    on-disk {!Lf_batch.Batch.Store} persists them across processes. *)

type exact = {
  e_cycles : float;  (** simulated execution time *)
  e_misses : int;  (** total cache misses, all processors *)
  e_barrier : float;  (** barrier cycles included in [e_cycles] *)
}

type cache
(** Memo table for exact-tier evaluations, shared across searches. *)

val create_cache : unit -> cache

type cache_stats = { hits : int; misses : int; entries : int }
(** [misses] counts cold evaluations (simulations actually run). *)

val stats : cache -> cache_stats

val fingerprint :
  ?depth:int ->
  ?steps:int ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  string
(** Structural memo key: digest of the printed program plus the
    candidate, machine geometry/name, processor count, steps, depth. *)

type calibration = (string * float) list
(** Measured miss-inflation factors (misses / compulsory misses) keyed
    by layout tag ({!Space.layout_to_string} vocabulary), recorded from
    an instrumented simulation. *)

val calibration_of_sink : Lf_obs.Obs.sink -> calibration
(** One calibration entry from a profile recorded by
    [Lf_machine.Exec.run ~sink]: the sink's layout tag mapped to its
    measured miss factor.  Concatenate the results of several profiled
    runs to calibrate several layouts. *)

val conflict_factor :
  ?calibration:calibration ->
  machine:Lf_machine.Machine.config ->
  Space.candidate ->
  float
(** The multiplicative miss factor the analytic tier charges a
    candidate's layout: the calibration entry for its layout tag when
    present, the built-in heuristic otherwise. *)

val analytic :
  ?depth:int ->
  ?calibration:calibration ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  (float, string) result
(** Estimated cycles of a candidate; [Error] when it is infeasible.
    [calibration] replaces the layout conflict-factor heuristic with
    factors measured on a recorded profile. *)

val exact :
  ?depth:int ->
  ?steps:int ->
  ?cache:cache ->
  ?store:Lf_batch.Batch.Store.t ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  (exact, string) result
(** Simulated cycles of a candidate, memoised in [cache] when given.
    Cold evaluations go through {!Lf_batch.Batch.run_one} as
    content-addressed {!Lf_machine.Sim.request}s, so with [store] they
    are also answered from (and persisted to) the on-disk result store —
    the in-memory [cache] short-circuits repeats within a search, the
    [store] short-circuits repeats across processes. *)

(** {1 Measured tier}

    The third tier prices a candidate in real seconds: it builds the
    schedule, proves the native execution bit-identical to the
    reference interpreter ({!Lf_native.Native.verify}), then times it
    on the host's cores under {!Lf_native.Bench_timer}'s
    warmup/min-of-k/outlier policy.

    Deliberately {e unlike} {!exact}, there is no [?store] parameter
    and never will be: wall-clock depends on the host, its load, its
    thermals — replaying a measurement from the content-addressed
    [_lf_cache/] would serve stale time as truth (DESIGN §7/§11).  The
    only memoisation is the in-memory [mcache], scoped to one process
    and keyed by measurement policy as well as configuration. *)

type measured = {
  m_min_s : float;  (** headline: minimum over all repetitions *)
  m_median_s : float;  (** median of the outlier-filtered repetitions *)
  m_reps : int;  (** timed repetitions taken *)
  m_kept : int;  (** repetitions surviving outlier rejection *)
}

type mcache
(** In-memory memo table for measured-tier evaluations.  Never backed
    by disk — see above. *)

val create_mcache : unit -> mcache

val mstats : mcache -> cache_stats

val measured :
  ?depth:int ->
  ?steps:int ->
  ?policy:Lf_native.Bench_timer.policy ->
  ?cache:mcache ->
  ?pool:Lf_parallel.Pool.t ->
  machine:Lf_machine.Machine.config ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Space.candidate ->
  (measured, string) result
(** Measured wall-clock of a candidate.  Every cold evaluation first
    runs {!Lf_native.Native.verify} — a candidate whose native output
    is not bit-identical to the interpreter is reported as [Error],
    never timed.  [pool] must hold exactly [nprocs] workers and keeps
    domain spawn/join out of the timed region; without one a fresh
    pool is created per evaluation.  The candidate's layout does not
    affect native execution (arrays are plain Bigarrays; the host
    cache is not programmable), so the memo key normalises it away —
    in a search, the whole layout axis costs one measurement. *)
