(** Wire protocol of the simulation service: length-prefixed frames
    whose payloads reuse the serialisation disciplines the store layer
    already guarantees to be bit-exact.

    {b Framing.}  A frame is a 4-byte big-endian payload length followed
    by the payload; payloads above {!max_frame} are rejected without
    being read.  The first payload byte is a message tag; the rest is a
    tag-specific body.  Framing errors are recoverable for the {e
    server} (the offending connection is dropped, the accept loop keeps
    running) — a byte stream that lost frame sync cannot be resumed.

    {b Requests on the wire are canonical.}  The body of a [Request]
    frame is exactly {!Lf_machine.Sim.canonical} of the request — the
    same text the content-addressed store digests.  The decoder
    ({!request_of_canonical}) parses it back into a {!Sim.request} and
    then {e re-serialises and compares bytes}: a payload is accepted
    only if it is the canonical form of the request it parses to, so
    the server's notion of the request's digest always agrees with the
    client's and no ambiguous or lossy payload can slip through.

    {b Results on the wire are store entries.}  [Result] bodies render
    every float as its IEEE-754 bit pattern (the {!Lf_batch.Batch.Store}
    discipline), so a served result is byte-identical to a local
    {!Lf_machine.Exec.run_request} of the same request. *)

module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec

val max_frame : int
(** Hard cap on payload size (16 MiB); larger length prefixes are
    treated as protocol violations, not allocation requests. *)

(** {1 Messages} *)

type client_msg =
  | Request of { rid : int; req : Sim.request }
      (** Submit a simulation.  [rid] is a client-chosen correlation id
          echoed on every response to this request, so responses of
          pipelined requests can interleave. *)
  | Stats_query
  | Ping

type progress = {
  g_rid : int;
  g_phases : int;  (** simulated phases completed so far *)
  g_refs : int;  (** memory references issued so far *)
  g_misses : int;  (** cache misses so far *)
  g_elapsed_s : float;  (** wall-clock seconds since the job started *)
}

type server_msg =
  | Accepted of { rid : int; position : int }
      (** Admission ack.  [position] is the number of outstanding jobs
          at or ahead of this one ([0] = answered on the warm fast
          path, no queueing at all). *)
  | Overloaded of { rid : int; reason : string }
      (** Backpressure: the request was {e not} admitted (per-client
          queue full, server-wide bound hit, or the server is
          draining).  The client may retry later. *)
  | Rejected of { rid : int; reason : string }
      (** The request cannot be served (malformed payload, [Full]-mode
          request, or the simulation itself failed). *)
  | Progress of progress
      (** Periodic while the request is computing; sourced from the
          [lf_obs] sink attached to the running simulation. *)
  | Result of {
      rid : int;
      from_store : bool;
      wall_s : float;
      result : Exec.result;
    }
  | Stats_reply of (string * int) list
  | Pong

(** {1 Canonical-request codec} *)

val request_of_canonical : string -> (Sim.request, string) result
(** Parse {!Sim.canonical} text back into the request it names.
    Strict: returns [Error] unless re-serialising the parsed request
    reproduces the input byte-for-byte. *)

(** {1 Result codec (IEEE-754-bits discipline)} *)

val result_to_string : Exec.result -> string

val result_of_string : string -> (Exec.result, string) result
(** Strict line-oriented parse; the returned result carries an empty
    array store (like a store hit or a [Miss_only] run). *)

(** {1 Payload codecs (pure; framing-independent)} *)

val client_msg_to_payload : client_msg -> string
val client_msg_of_payload : string -> (client_msg, string) result
val server_msg_to_payload : server_msg -> string
val server_msg_of_payload : string -> (server_msg, string) result

(** {1 Framed socket I/O} *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame (length prefix + payload).  Raises
    [Unix.Unix_error] on I/O failure and [Invalid_argument] on payloads
    above {!max_frame}; callers serialise concurrent writers per
    connection. *)

type read_error =
  | Eof  (** clean end of stream between frames *)
  | Truncated  (** end of stream inside a frame *)
  | Oversized of int  (** length prefix above {!max_frame} *)
  | Io of string

val read_frame : Unix.file_descr -> (string, read_error) result
(** Read one complete payload, retrying interrupted system calls. *)

val read_error_to_string : read_error -> string
