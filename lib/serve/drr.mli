(** Admission-controlled job queue with deficit-round-robin fairness
    across clients.

    One instance sits between the service's connection handlers
    (producers: one registered client per connection) and its worker
    domains (consumers).  Admission is bounded twice — a per-client
    queue depth and a server-wide outstanding-job bound — and a
    rejected submission returns immediately (the caller turns it into
    an [Overloaded] reply); nothing in the queue ever grows without
    bound.

    Dispatch order is deficit round-robin (Shreedhar & Varghese):
    clients are visited cyclically, each visit grants the client
    [quantum] credit, and its head job is dispatched once its
    accumulated credit covers the job's [cost].  With uniform costs
    this degenerates to plain round-robin; the service uses the
    request's simulated step count as the cost so a client streaming
    heavy multi-step jobs cannot crowd out one submitting light ones.
    A client whose queue empties forfeits its credit (the standard DRR
    rule, so sporadic clients cannot hoard credit while idle).

    All operations are thread-safe; {!next} blocks consumers. *)

type 'a t

val create :
  ?quantum:int -> max_inflight:int -> max_client_queue:int -> unit -> 'a t
(** [quantum] (default 4) is the credit granted per round-robin visit;
    [max_inflight] bounds queued-plus-running jobs server-wide;
    [max_client_queue] bounds one client's queued jobs. *)

val register : 'a t -> int
(** Add a client; returns its id. *)

val unregister : 'a t -> int -> unit
(** Remove a client and drop its still-queued jobs (a disconnected
    client's results have nowhere to go).  Running jobs are unaffected.
    Unknown ids are ignored. *)

type reject =
  | Queue_full  (** this client's queue is at [max_client_queue] *)
  | Server_full  (** outstanding jobs are at [max_inflight] *)
  | Draining  (** {!drain} was called; no new admissions *)

val reject_to_string : reject -> string

val submit : 'a t -> client:int -> cost:int -> 'a -> (int, reject) result
(** Enqueue a job for [client]; never blocks.  [Ok position] is the
    number of outstanding (queued or running) jobs including this one.
    [cost] is clamped to [1 .. 16 x quantum] so one absurd cost cannot
    stall its queue forever.  Raises [Invalid_argument] on an
    unregistered client. *)

val next : 'a t -> 'a option
(** Dequeue the next job by DRR order, blocking while the queue is
    empty; [None] once the queue is draining and empty (consumers
    exit).  The job counts as running until {!job_done}. *)

val job_done : 'a t -> unit
(** Mark one running job finished (frees one [max_inflight] slot). *)

val drain : 'a t -> unit
(** Stop admitting; wake blocked consumers.  Already-queued jobs are
    still dispatched — {!next} returns [None] only when empty. *)

val outstanding : 'a t -> int
(** Queued plus running jobs. *)

val queued : 'a t -> int
