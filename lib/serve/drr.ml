(* Deficit round-robin admission queue (see drr.mli).

   One mutex guards the whole structure; the only blocking operation is
   a consumer waiting in [next].  The round-robin order is a rotating
   list of client ids: the scan in [try_pick] rotates one client per
   step and keeps the rotation across calls, so the position of the
   scan — not just the deficits — carries the fairness state between
   dispatches. *)

type 'a cq = {
  jobs : (int * 'a) Queue.t;  (* (clamped cost, job) *)
  mutable deficit : int;
}

type 'a t = {
  mu : Mutex.t;
  cv : Condition.t;
  clients : (int, 'a cq) Hashtbl.t;
  mutable order : int list;  (* rotating round-robin order *)
  mutable nqueued : int;
  mutable inflight : int;
  mutable draining : bool;
  mutable next_id : int;
  quantum : int;
  max_inflight : int;
  max_client_queue : int;
}

type reject = Queue_full | Server_full | Draining

let reject_to_string = function
  | Queue_full -> "per-client queue full"
  | Server_full -> "server at capacity"
  | Draining -> "server is draining"

let create ?(quantum = 4) ~max_inflight ~max_client_queue () =
  if quantum < 1 then invalid_arg "Drr.create: quantum < 1";
  if max_inflight < 1 then invalid_arg "Drr.create: max_inflight < 1";
  if max_client_queue < 1 then invalid_arg "Drr.create: max_client_queue < 1";
  {
    mu = Mutex.create ();
    cv = Condition.create ();
    clients = Hashtbl.create 16;
    order = [];
    nqueued = 0;
    inflight = 0;
    draining = false;
    next_id = 0;
    quantum;
    max_inflight;
    max_client_queue;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let register t =
  locked t (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.clients id { jobs = Queue.create (); deficit = 0 };
      t.order <- t.order @ [ id ];
      id)

let unregister t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.clients id with
      | None -> ()
      | Some cq ->
        t.nqueued <- t.nqueued - Queue.length cq.jobs;
        Hashtbl.remove t.clients id;
        t.order <- List.filter (fun c -> c <> id) t.order;
        Condition.broadcast t.cv)

let submit t ~client ~cost job =
  locked t (fun () ->
      match Hashtbl.find_opt t.clients client with
      | None -> invalid_arg "Drr.submit: unregistered client"
      | Some cq ->
        if t.draining then Error Draining
        else if t.nqueued + t.inflight >= t.max_inflight then Error Server_full
        else if Queue.length cq.jobs >= t.max_client_queue then Error Queue_full
        else begin
          let cost = max 1 (min cost (16 * t.quantum)) in
          Queue.push (cost, job) cq.jobs;
          t.nqueued <- t.nqueued + 1;
          Condition.signal t.cv;
          Ok (t.nqueued + t.inflight)
        end)

(* One DRR step per loop iteration: rotate to the next client, grant it
   a quantum, dispatch its head if covered.  Deficits grow by [quantum]
   per full rotation and costs are clamped, so when any job is queued
   the loop terminates. *)
let try_pick t =
  if t.nqueued = 0 then None
  else begin
    let picked = ref None in
    while !picked = None do
      match t.order with
      | [] -> assert false (* nqueued > 0 implies a registered client *)
      | c :: rest -> (
        t.order <- rest @ [ c ];
        match Hashtbl.find_opt t.clients c with
        | None -> assert false
        | Some cq ->
          if Queue.is_empty cq.jobs then cq.deficit <- 0
          else begin
            cq.deficit <- cq.deficit + t.quantum;
            let cost, _ = Queue.peek cq.jobs in
            if cq.deficit >= cost then begin
              let cost, job = Queue.pop cq.jobs in
              cq.deficit <- cq.deficit - cost;
              if Queue.is_empty cq.jobs then cq.deficit <- 0;
              t.nqueued <- t.nqueued - 1;
              t.inflight <- t.inflight + 1;
              picked := Some job
            end
          end)
    done;
    !picked
  end

let next t =
  locked t (fun () ->
      let rec wait () =
        match try_pick t with
        | Some job -> Some job
        | None ->
          if t.draining then None
          else begin
            Condition.wait t.cv t.mu;
            wait ()
          end
      in
      wait ())

let job_done t =
  locked t (fun () ->
      t.inflight <- t.inflight - 1;
      Condition.broadcast t.cv)

let drain t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.cv)

let outstanding t = locked t (fun () -> t.nqueued + t.inflight)
let queued t = locked t (fun () -> t.nqueued)
