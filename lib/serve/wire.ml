(* Wire protocol: framing, message codecs, and the canonical-request
   decoder (see wire.mli for the format contracts).

   The request decoder is the exact inverse of Sim.canonical (sim.ml):
   a cursor walks the space-terminated token stream — ints as decimal,
   floats as %h, strings length-prefixed, options as "- "/"+ " — and
   rebuilds the records field by field.  Rather than trusting the
   parser to be lossless, request_of_canonical re-serialises the parsed
   request and compares bytes with the input; anything the round trip
   does not reproduce exactly is rejected. *)

module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec
module Machine = Lf_machine.Machine
module Cache = Lf_cache.Cache
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition
module Derive = Lf_core.Derive
module Ir = Lf_ir.Ir

let max_frame = 16 * 1024 * 1024

type client_msg =
  | Request of { rid : int; req : Sim.request }
  | Stats_query
  | Ping

type progress = {
  g_rid : int;
  g_phases : int;
  g_refs : int;
  g_misses : int;
  g_elapsed_s : float;
}

type server_msg =
  | Accepted of { rid : int; position : int }
  | Overloaded of { rid : int; reason : string }
  | Rejected of { rid : int; reason : string }
  | Progress of progress
  | Result of {
      rid : int;
      from_store : bool;
      wall_s : float;
      result : Exec.result;
    }
  | Stats_reply of (string * int) list
  | Pong

(* ------------------------------------------------------------------ *)
(* Token cursor over Sim.canonical's space-terminated rendering.       *)

exception Parse_fail of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_fail m)) fmt

type cursor = { s : string; mutable pos : int }

(* generous structural bound: no field of a real request approaches it,
   and it keeps a hostile length prefix from driving an allocation *)
let max_count = 1_000_000

let lit cur l =
  let n = String.length l in
  if cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = l then
    cur.pos <- cur.pos + n
  else fail "expected %S at offset %d" l cur.pos

let token cur =
  match String.index_from_opt cur.s cur.pos ' ' with
  | None -> fail "unterminated token at offset %d" cur.pos
  | Some i ->
    let t = String.sub cur.s cur.pos (i - cur.pos) in
    cur.pos <- i + 1;
    t

let p_int cur =
  match int_of_string_opt (token cur) with
  | Some n -> n
  | None -> fail "bad integer near offset %d" cur.pos

let p_count cur =
  let n = p_int cur in
  if n < 0 || n > max_count then fail "count %d out of range" n;
  n

let p_float cur =
  (* %h renders as 0x1.abcp+3 (or nan/infinity); float_of_string
     accepts all of them *)
  match float_of_string_opt (token cur) with
  | Some f -> f
  | None -> fail "bad float near offset %d" cur.pos

let p_str cur =
  let n = p_count cur in
  if cur.pos + n + 1 > String.length cur.s then fail "string overruns payload";
  let s = String.sub cur.s cur.pos n in
  cur.pos <- cur.pos + n;
  if cur.s.[cur.pos] <> ' ' then fail "missing string terminator";
  cur.pos <- cur.pos + 1;
  s

let p_opt cur p =
  if cur.pos + 2 > String.length cur.s then fail "truncated option"
  else
    match String.sub cur.s cur.pos 2 with
    | "- " ->
      cur.pos <- cur.pos + 2;
      None
    | "+ " ->
      cur.pos <- cur.pos + 2;
      Some (p cur)
    | t -> fail "bad option tag %S" t

let p_int_array cur =
  let n = p_count cur in
  Array.init n (fun _ -> p_int cur)

(* --- the request's component records ------------------------------- *)

let p_cache_config cur =
  let capacity = p_int cur in
  let line = p_int cur in
  let assoc = p_int cur in
  { Cache.capacity; line; assoc }

let p_machine cur =
  let mname = p_str cur in
  let max_procs = p_int cur in
  let hypernode = p_int cur in
  let cache = p_cache_config cur in
  let tlb = p_opt cur p_cache_config in
  let op = p_float cur in
  let hit = p_float cur in
  let miss_local = p_float cur in
  let miss_remote = p_float cur in
  let barrier_base = p_float cur in
  let barrier_per_proc = p_float cur in
  let loop_overhead = p_float cur in
  let iter_overhead = p_float cur in
  let tlb_miss = p_float cur in
  {
    Machine.mname;
    max_procs;
    hypernode;
    cache;
    tlb;
    cost =
      {
        Machine.op;
        hit;
        miss_local;
        miss_remote;
        barrier_base;
        barrier_per_proc;
        loop_overhead;
        iter_overhead;
        tlb_miss;
      };
  }

let p_layout cur =
  let elem_bytes = p_int cur in
  let total_bytes = p_int cur in
  let n = p_count cur in
  let placements =
    List.init n (fun _ ->
        let key = p_str cur in
        let name = p_str cur in
        let start = p_int cur in
        let aextents = p_int_array cur in
        (key, { Partition.name; start; aextents }))
  in
  { Partition.elem_bytes; placements; total_bytes }

let p_derive cur =
  let depth = p_int cur in
  let nnests = p_int cur in
  let mat () =
    let n = p_count cur in
    Array.init n (fun _ -> p_int_array cur)
  in
  let shift = mat () in
  let peel = mat () in
  { Derive.depth; nnests; shift; peel }

let p_schedule cur prog =
  let nprocs = p_int cur in
  let grid = p_int_array cur in
  let nlabels = p_count cur in
  let labels = List.init nlabels (fun _ -> p_str cur) in
  let nphases = p_count cur in
  let phases =
    List.init nphases (fun _ ->
        let procs = p_count cur in
        Array.init procs (fun _ ->
            let nboxes = p_count cur in
            List.init nboxes (fun _ ->
                let nest = p_int cur in
                let nranges = p_count cur in
                let ranges =
                  Array.init nranges (fun _ ->
                      let lo = p_int cur in
                      let hi = p_int cur in
                      (lo, hi))
                in
                { Schedule.nest; ranges })))
  in
  { Schedule.prog; nprocs; grid; phases; labels }

let p_variant cur prog =
  if cur.pos + 8 <= String.length cur.s && String.sub cur.s cur.pos 8 = "unfused "
  then begin
    cur.pos <- cur.pos + 8;
    let grid = p_opt cur p_int_array in
    let depth = p_opt cur p_int in
    Sim.Unfused { grid; depth }
  end
  else if
    cur.pos + 6 <= String.length cur.s && String.sub cur.s cur.pos 6 = "fused "
  then begin
    cur.pos <- cur.pos + 6;
    let grid = p_opt cur p_int_array in
    let strip = p_opt cur p_int in
    let derive = p_opt cur p_derive in
    Sim.Fused { grid; strip; derive }
  end
  else if
    cur.pos + 9 <= String.length cur.s
    && String.sub cur.s cur.pos 9 = "explicit "
  then begin
    cur.pos <- cur.pos + 9;
    Sim.Explicit (p_schedule cur prog)
  end
  else fail "unknown variant tag at offset %d" cur.pos

let request_of_canonical text =
  match
    let cur = { s = text; pos = 0 } in
    lit cur "lf-request ";
    let ptext = p_str cur in
    let prog =
      match Lf_front.Parse.program ptext with
      | p -> p
      | exception Lf_front.Parse.Syntax_error m -> fail "program: %s" m
      | exception Ir.Invalid m -> fail "program: %s" m
    in
    lit cur "\nmachine ";
    let machine = p_machine cur in
    lit cur "\nvariant ";
    let variant = p_variant cur prog in
    lit cur "\nlayout ";
    let layout = p_opt cur p_layout in
    lit cur "\nnprocs ";
    let nprocs = p_int cur in
    lit cur "\nsteps ";
    let steps = p_int cur in
    lit cur "\nmode ";
    let mode =
      match
        Sim.mode_of_string
          (String.sub cur.s cur.pos (String.length cur.s - cur.pos))
      with
      | Ok m -> m
      | Error m -> fail "%s" m
    in
    (match Sim.make ?layout ~steps ~mode ~machine ~nprocs ~variant prog with
    | r -> r
    | exception Invalid_argument m -> fail "%s" m)
  with
  | exception Parse_fail m -> Error ("request: " ^ m)
  | r ->
    (* strict round trip: only the canonical bytes name a request, so
       the digest the server computes is the digest the client meant *)
    if Sim.canonical r = text then Ok r
    else Error "request: payload is not the canonical form of its request"

(* ------------------------------------------------------------------ *)
(* Result codec: the store's line discipline (floats as IEEE bits).    *)

let result_to_string (res : Exec.result) =
  let b = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let fbits x = Int64.to_string (Int64.bits_of_float x) in
  line "lfwire1";
  line "cycles %s" (fbits res.Exec.cycles);
  line "barrier %s" (fbits res.Exec.barrier_cycles);
  line "phases %d" (Array.length res.Exec.phase_cycles);
  Array.iter (fun c -> line "p %s" (fbits c)) res.Exec.phase_cycles;
  line "refs %d" res.Exec.total_refs;
  line "misses %d" res.Exec.total_misses;
  line "cold %d" res.Exec.cold_misses;
  line "tlb %d" res.Exec.tlb_misses;
  line "procs %d" (Array.length res.Exec.proc_misses);
  Array.iter (fun m -> line "m %d" m) res.Exec.proc_misses;
  line "end";
  Buffer.contents b

let result_of_string text : (Exec.result, string) result =
  match
    let lines = String.split_on_char '\n' text in
    let cur = ref lines in
    let next () =
      match !cur with
      | [] -> fail "result: truncated"
      | l :: tl ->
        cur := tl;
        l
    in
    let field key =
      let l = next () in
      let pl = String.length key + 1 in
      if String.length l > pl && String.sub l 0 pl = key ^ " " then
        String.sub l pl (String.length l - pl)
      else fail "result: expected field %s" key
    in
    let int key =
      match int_of_string_opt (field key) with
      | Some n -> n
      | None -> fail "result: bad integer in %s" key
    in
    let flt key =
      match Int64.of_string_opt (field key) with
      | Some bits -> Int64.float_of_bits bits
      | None -> fail "result: bad float bits in %s" key
    in
    if next () <> "lfwire1" then fail "result: bad header";
    let cycles = flt "cycles" in
    let barrier_cycles = flt "barrier" in
    let nphases = int "phases" in
    if nphases < 0 || nphases > max_count then fail "result: phase count";
    let phase_cycles = Array.init nphases (fun _ -> flt "p") in
    let total_refs = int "refs" in
    let total_misses = int "misses" in
    let cold_misses = int "cold" in
    let tlb_misses = int "tlb" in
    let nprocs = int "procs" in
    if nprocs < 0 || nprocs > max_count then fail "result: proc count";
    let proc_misses = Array.init nprocs (fun _ -> int "m") in
    if next () <> "end" then fail "result: missing end";
    {
      Exec.cycles;
      phase_cycles;
      barrier_cycles;
      total_refs;
      total_misses;
      cold_misses;
      tlb_misses;
      proc_misses;
      store =
        { Lf_ir.Interp.arrays = Hashtbl.create 1; extents = Hashtbl.create 1 };
    }
  with
  | exception Parse_fail m -> Error m
  | r -> Ok r

(* ------------------------------------------------------------------ *)
(* Payload codecs.  First byte is the tag; numeric fields reuse the
   space-terminated token syntax so the cursor utilities above parse
   both directions of the protocol.                                    *)

let add_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ' '

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s;
  Buffer.add_char b ' '

let fbits x = Int64.to_string (Int64.bits_of_float x)

let p_fbits cur =
  match Int64.of_string_opt (token cur) with
  | Some bits -> Int64.float_of_bits bits
  | None -> fail "bad float bits near offset %d" cur.pos

let client_msg_to_payload = function
  | Ping -> "P"
  | Stats_query -> "S"
  | Request { rid; req } ->
    let b = Buffer.create 1024 in
    Buffer.add_char b 'R';
    add_int b rid;
    Buffer.add_char b '\n';
    Buffer.add_string b (Sim.canonical req);
    Buffer.contents b

let client_msg_of_payload payload =
  if payload = "" then Error "empty payload"
  else
    match payload.[0] with
    | 'P' when payload = "P" -> Ok Ping
    | 'S' when payload = "S" -> Ok Stats_query
    | 'R' -> (
      let cur = { s = payload; pos = 1 } in
      match
        let rid = p_int cur in
        if rid < 0 then fail "negative rid";
        lit cur "\n";
        rid
      with
      | exception Parse_fail m -> Error ("request: " ^ m)
      | rid -> (
        match
          request_of_canonical
            (String.sub payload cur.pos (String.length payload - cur.pos))
        with
        | Ok req -> Ok (Request { rid; req })
        | Error m -> Error m))
    | c -> Error (Printf.sprintf "unknown client message tag %C" c)

let server_msg_to_payload = function
  | Pong -> "p"
  | Accepted { rid; position } ->
    let b = Buffer.create 32 in
    Buffer.add_char b 'a';
    add_int b rid;
    add_int b position;
    Buffer.contents b
  | Overloaded { rid; reason } ->
    let b = Buffer.create 64 in
    Buffer.add_char b 'o';
    add_int b rid;
    add_str b reason;
    Buffer.contents b
  | Rejected { rid; reason } ->
    let b = Buffer.create 64 in
    Buffer.add_char b 'j';
    add_int b rid;
    add_str b reason;
    Buffer.contents b
  | Progress g ->
    let b = Buffer.create 64 in
    Buffer.add_char b 'g';
    add_int b g.g_rid;
    add_int b g.g_phases;
    add_int b g.g_refs;
    add_int b g.g_misses;
    Buffer.add_string b (fbits g.g_elapsed_s);
    Buffer.add_char b ' ';
    Buffer.contents b
  | Result { rid; from_store; wall_s; result } ->
    let b = Buffer.create 512 in
    Buffer.add_char b 'r';
    add_int b rid;
    add_int b (if from_store then 1 else 0);
    Buffer.add_string b (fbits wall_s);
    Buffer.add_string b " \n";
    Buffer.add_string b (result_to_string result);
    Buffer.contents b
  | Stats_reply kvs ->
    let b = Buffer.create 256 in
    Buffer.add_char b 'x';
    add_int b (List.length kvs);
    List.iter
      (fun (k, v) ->
        add_str b k;
        add_int b v)
      kvs;
    Buffer.contents b

let server_msg_of_payload payload =
  if payload = "" then Error "empty payload"
  else
    let cur = { s = payload; pos = 1 } in
    match
      match payload.[0] with
      | 'p' when payload = "p" -> Pong
      | 'a' ->
        let rid = p_int cur in
        let position = p_int cur in
        Accepted { rid; position }
      | 'o' ->
        let rid = p_int cur in
        let reason = p_str cur in
        Overloaded { rid; reason }
      | 'j' ->
        let rid = p_int cur in
        let reason = p_str cur in
        Rejected { rid; reason }
      | 'g' ->
        let g_rid = p_int cur in
        let g_phases = p_int cur in
        let g_refs = p_int cur in
        let g_misses = p_int cur in
        let g_elapsed_s = p_fbits cur in
        Progress { g_rid; g_phases; g_refs; g_misses; g_elapsed_s }
      | 'r' -> (
        let rid = p_int cur in
        let from_store = p_int cur <> 0 in
        let wall_s = p_fbits cur in
        lit cur "\n";
        match
          result_of_string
            (String.sub payload cur.pos (String.length payload - cur.pos))
        with
        | Ok result -> Result { rid; from_store; wall_s; result }
        | Error m -> fail "%s" m)
      | 'x' ->
        let n = p_count cur in
        Stats_reply
          (List.init n (fun _ ->
               let k = p_str cur in
               let v = p_int cur in
               (k, v)))
      | c -> fail "unknown server message tag %C" c
    with
    | exception Parse_fail m -> Error m
    | msg -> Ok msg

(* ------------------------------------------------------------------ *)
(* Framed socket I/O.                                                  *)

type read_error = Eof | Truncated | Oversized of int | Io of string

let read_error_to_string = function
  | Eof -> "end of stream"
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Io m -> "i/o error: " ^ m

let rec write_all fd b off len =
  if len > 0 then begin
    let k =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + k) (len - k)
  end

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Wire.write_frame: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b 0 (4 + n)

(* Read exactly [n] bytes; [`Eof] only when the stream ends on a frame
   boundary (nothing read yet), [`Truncated] when it ends inside. *)
let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Ok b
    else
      match Unix.read fd b off (n - off) with
      | 0 -> if off = 0 then Error Eof else Error Truncated
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  in
  go 0

let read_frame fd =
  match read_exact fd 4 with
  | Error e -> Error e
  | Ok hdr -> (
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then Error (Oversized n)
    else
      match read_exact fd n with
      | Ok b -> Ok (Bytes.to_string b)
      | Error Eof -> if n = 0 then Ok "" else Error Truncated
      | Error e -> Error e)
