(** The simulation service: a long-running daemon that answers
    {!Lf_machine.Sim.request}s over a Unix-domain socket.

    {b Two paths.}  A request that the persistent result store can
    answer is served on the {e fast path}, synchronously on the
    connection's own thread — [Accepted {position = 0}] then the
    [Result], never touching the admission queue or any worker domain.
    A miss is admitted (or refused with [Overloaded]) into a
    {!Drr}-scheduled queue consumed by a fixed set of worker domains,
    each computing one request at a time with
    {!Lf_batch.Batch.run_one} [~jobs:1] — the service parallelises
    {e across} requests, not within one, exactly like the batch
    orchestrator — and persisting the result, so every computed answer
    also warms the store for future fast-path hits.

    {b Streaming.}  Each admitted request is acked immediately with its
    queue position; while it computes, a ticker thread samples the
    [lf_obs] sink attached to the running simulation and streams
    [Progress] frames (phases completed, references, misses).  The
    samples are racy reads of counters owned by the computing domain —
    memory-safe in OCaml, approximate by design, and never used for
    anything but display.

    {b Robustness.}  A malformed payload gets a [Rejected] reply and
    the connection lives on; a broken frame drops only that connection;
    a client disconnecting mid-request discards its queued jobs and
    its running job's result falls on the floor (still persisted to
    the store).  [Full]-mode requests are refused up front: their
    observable is the array store, which the wire (like the persistent
    store) does not carry.

    {b Drain.}  {!stop} (wired to SIGINT/SIGTERM by {!run}) stops
    accepting connections and admissions, finishes every queued and
    running job, delivers the results, then shuts down workers,
    connections and the socket.  Store writes are atomic per entry, so
    there is nothing else to flush. *)

module Sim = Lf_machine.Sim

type config = {
  socket : string;  (** Unix-domain socket path *)
  workers : int;  (** worker domains computing misses *)
  max_inflight : int;  (** server-wide outstanding-job bound *)
  max_client_queue : int;  (** per-connection queued-request bound *)
  quantum : int;  (** DRR credit per round-robin visit *)
  store_dir : string option;  (** result store (default {!Lf_batch.Batch.Store.default_dir}) *)
  progress_interval_s : float;  (** period of [Progress] frames; [0.] disables *)
  verbose : bool;  (** log connections/jobs to stderr *)
}

val default_config : unit -> config
(** Socket from [$LF_SERVE_SOCKET] (else ["_lf_serve.sock"]); workers
    [max 2 (Exec.default_jobs ())]; [max_inflight 64];
    [max_client_queue 8]; [quantum 4]; progress every 0.5 s. *)

type t

val start : config -> t
(** Bind the socket (refusing to start if another live server holds
    it; a stale socket file left by a crash is replaced) and spawn the
    accept thread, worker domains and progress ticker.  Returns
    immediately — embeddable in tests and benches.  Ignores SIGPIPE
    process-wide (a disconnected client must be an [EPIPE] error, not
    a process kill). *)

val stop : t -> unit
(** Graceful drain as described above.  Idempotent; blocks until every
    thread and domain has been joined. *)

val request_stop : t -> unit
(** Async-signal-safe stop request: flips a flag that {!wait} (and the
    accept loop) observe.  The actual teardown happens in {!stop}. *)

val wait : t -> unit
(** Block until {!request_stop} (e.g. from a signal handler). *)

val stats : t -> (string * int) list
(** Server-wide counters: accepted / overloaded / rejected /
    served_hit / served_computed / queued / inflight / clients plus
    store entries and bytes — the payload of [Stats_reply]. *)

val run : config -> unit
(** [start], install SIGINT/SIGTERM handlers that {!request_stop},
    {!wait}, then {!stop}: the body of [lfc serve]. *)
