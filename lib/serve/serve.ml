(* The simulation daemon (see serve.mli for the architecture).

   Concurrency layout:
   - the accept loop and the per-connection handlers are systhreads
     (I/O bound; blocking reads release the runtime lock);
   - misses are computed on [workers] dedicated domains feeding from
     the Drr queue, each simulation run serially on its domain
     (~jobs:1) — the same across-not-within discipline as Batch.run;
   - a ticker systhread streams Progress frames for running jobs.

   Every socket write goes through [send], which serialises writers
   (reader thread acks, worker results, ticker progress) on the
   connection's mutex and downgrades any write failure to "connection
   is dead" — a vanished client must never take a worker down. *)

module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec
module Batch = Lf_batch.Batch
module Run_opts = Lf_batch.Run_opts
module Obs = Lf_obs.Obs

type config = {
  socket : string;
  workers : int;
  max_inflight : int;
  max_client_queue : int;
  quantum : int;
  store_dir : string option;
  progress_interval_s : float;
  verbose : bool;
}

let default_socket () =
  match Sys.getenv_opt "LF_SERVE_SOCKET" with
  | Some s when s <> "" -> s
  | _ -> "_lf_serve.sock"

let default_config () =
  {
    socket = default_socket ();
    workers = max 2 (Exec.default_jobs ());
    max_inflight = 64;
    max_client_queue = 8;
    quantum = 4;
    store_dir = None;
    progress_interval_s = 0.5;
    verbose = false;
  }

type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;  (* serialises writers; also guards [alive] *)
  cid : int;  (* Drr client id *)
  scope : Batch.Counters.scope;
  mutable alive : bool;
}

type job = {
  jseq : int;  (* server-unique id, keys the running-job table *)
  jrid : int;  (* client's correlation id *)
  jreq : Sim.request;
  jconn : conn;
  jsink : Obs.sink;
  mutable jstart : float;  (* set by the worker when the run begins *)
}

type t = {
  cfg : config;
  store : Batch.Store.t;
  queue : job Drr.t;
  listener : Unix.file_descr;
  stop_req : bool Atomic.t;  (* accept loop + wait observe this *)
  draining : bool Atomic.t;  (* refuse new work *)
  teardown : bool Atomic.t;  (* ticker exits *)
  seq : int Atomic.t;
  (* stats *)
  n_accepted : int Atomic.t;
  n_overloaded : int Atomic.t;
  n_rejected : int Atomic.t;
  n_served_hit : int Atomic.t;
  n_served_computed : int Atomic.t;
  (* registries *)
  mu : Mutex.t;
  conns : (int, conn) Hashtbl.t;  (* cid -> conn *)
  running : (int, job) Hashtbl.t;  (* jseq -> job *)
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable worker_domains : unit Domain.t list;
  mutable ticker_thread : Thread.t option;
  stop_mu : Mutex.t;
  mutable stopped : bool;
}

let log t fmt =
  if t.cfg.verbose then Printf.eprintf ("lf_serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let now () = Unix.gettimeofday ()

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Write one frame to a connection; any failure (EPIPE after the peer
   vanished, a closed fd) just marks the connection dead.  The caller
   holds [conn.wmu]. *)
let send_unlocked t conn msg =
  if conn.alive then
    try Wire.write_frame conn.fd (Wire.server_msg_to_payload msg)
    with _ ->
      conn.alive <- false;
      log t "connection %d: write failed, marking dead" conn.cid

let send t conn msg =
  Mutex.lock conn.wmu;
  send_unlocked t conn msg;
  Mutex.unlock conn.wmu

let stats t =
  let st = Batch.Store.stats t.store in
  [
    ("accepted", Atomic.get t.n_accepted);
    ("overloaded", Atomic.get t.n_overloaded);
    ("rejected", Atomic.get t.n_rejected);
    ("served_hit", Atomic.get t.n_served_hit);
    ("served_computed", Atomic.get t.n_served_computed);
    ("queued", Drr.queued t.queue);
    ("outstanding", Drr.outstanding t.queue);
    ("clients", locked t.mu (fun () -> Hashtbl.length t.conns));
    ("workers", t.cfg.workers);
    ("store_entries", st.Batch.Store.entries);
    ("store_bytes", st.Batch.Store.bytes);
    ("draining", if Atomic.get t.draining then 1 else 0);
  ]

(* ------------------------------------------------------------------ *)
(* Request handling (connection thread).                               *)

let handle_request t conn ~rid req =
  if Atomic.get t.draining then begin
    Atomic.incr t.n_overloaded;
    send t conn (Wire.Overloaded { rid; reason = "server is draining" })
  end
  else if req.Sim.mode = Sim.Full then begin
    Atomic.incr t.n_rejected;
    send t conn
      (Wire.Rejected
         {
           rid;
           reason =
             "full-mode requests are not servable (the array store is not \
              serialised); use engine runs or miss-only";
         })
  end
  else
    (* fast path: a warm hit is answered here, on the connection's own
       thread — the admission queue and the worker domains never see
       it *)
    match Batch.try_store ~scope:conn.scope t.store req with
    | Some res ->
      Atomic.incr t.n_served_hit;
      send t conn (Wire.Accepted { rid; position = 0 });
      send t conn
        (Wire.Result { rid; from_store = true; wall_s = 0.0; result = res })
    | None -> (
      let job =
        {
          jseq = Atomic.fetch_and_add t.seq 1;
          jrid = rid;
          jreq = req;
          jconn = conn;
          jsink = Obs.create ();
          jstart = now ();
        }
      in
      (* admit and ack under the write mutex: a worker can dequeue,
         compute and try to send the Result the instant submit returns,
         and the ack must still hit the wire first *)
      Mutex.lock conn.wmu;
      (match
         Drr.submit t.queue ~client:conn.cid ~cost:req.Sim.steps job
       with
      | Ok position ->
        Atomic.incr t.n_accepted;
        send_unlocked t conn (Wire.Accepted { rid; position })
      | Error reject ->
        Atomic.incr t.n_overloaded;
        send_unlocked t conn
          (Wire.Overloaded { rid; reason = Drr.reject_to_string reject }));
      Mutex.unlock conn.wmu)

(* Best-effort rid recovery from a payload that failed to parse, so the
   Rejected reply correlates when it can. *)
let rid_hint payload =
  if String.length payload > 1 && payload.[0] = 'R' then
    match String.index_opt payload '\n' with
    | Some i -> (
      match int_of_string_opt (String.trim (String.sub payload 1 (i - 1))) with
      | Some rid when rid >= 0 -> rid
      | _ -> 0)
    | None -> 0
  else 0

let conn_cleanup t conn =
  Mutex.lock conn.wmu;
  conn.alive <- false;
  Mutex.unlock conn.wmu;
  Drr.unregister t.queue conn.cid;
  locked t.mu (fun () -> Hashtbl.remove t.conns conn.cid);
  (try Unix.close conn.fd with _ -> ());
  log t "connection %d closed" conn.cid

let conn_loop t conn =
  let rec loop () =
    match Wire.read_frame conn.fd with
    | Error Wire.Eof -> ()
    | Error e ->
      (* a stream that lost frame sync cannot be resumed: tell the
         client why (best effort) and drop only this connection *)
      send t conn
        (Wire.Rejected { rid = 0; reason = Wire.read_error_to_string e })
    | Ok payload -> (
      match Wire.client_msg_of_payload payload with
      | Error reason ->
        (* well-framed garbage: reject it, keep the connection *)
        Atomic.incr t.n_rejected;
        send t conn (Wire.Rejected { rid = rid_hint payload; reason });
        loop ()
      | Ok Wire.Ping ->
        send t conn Wire.Pong;
        loop ()
      | Ok Wire.Stats_query ->
        send t conn
          (Wire.Stats_reply
             (stats t
             @ [
                 ("conn_hits", Batch.Counters.hits conn.scope);
                 ("conn_computed", Batch.Counters.computed conn.scope);
               ]));
        loop ()
      | Ok (Wire.Request { rid; req }) ->
        handle_request t conn ~rid req;
        loop ())
  in
  Fun.protect ~finally:(fun () -> conn_cleanup t conn) loop

(* ------------------------------------------------------------------ *)
(* Worker domains.                                                     *)

(* Unified dispatch options for a worker domain: serial inside the
   domain (across-not-within), persisting to the daemon's store root.
   Batch.store_of_opts memoises handles per root, so this resolves to
   the same handle as t.store. *)
let worker_opts t =
  Run_opts.default
  |> Run_opts.with_jobs 1
  |> Run_opts.with_store (Run_opts.Store_in t.cfg.store_dir)

let worker_loop t =
  let rec loop () =
    match Drr.next t.queue with
    | None -> ()
    | Some job ->
      job.jstart <- now ();
      locked t.mu (fun () -> Hashtbl.replace t.running job.jseq job);
      let res =
        (* the request was a miss at admission, but a concurrent worker
           or another process may have computed the digest since *)
        match Batch.try_store ~scope:job.jconn.scope t.store job.jreq with
        | Some r -> Ok (r, true)
        | None -> (
          match
            Batch.run_one_with ~scope:job.jconn.scope
              (Run_opts.with_sink job.jsink (worker_opts t))
              job.jreq
          with
          | r -> Ok (r, false)
          | exception e -> Error (Printexc.to_string e))
      in
      locked t.mu (fun () -> Hashtbl.remove t.running job.jseq);
      Drr.job_done t.queue;
      (match res with
      | Ok (r, from_store) ->
        if from_store then Atomic.incr t.n_served_hit
        else Atomic.incr t.n_served_computed;
        send t job.jconn
          (Wire.Result
             {
               rid = job.jrid;
               from_store;
               wall_s = now () -. job.jstart;
               result = r;
             })
      | Error m ->
        Atomic.incr t.n_rejected;
        send t job.jconn
          (Wire.Rejected { rid = job.jrid; reason = "simulation failed: " ^ m }));
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Progress ticker.                                                    *)

(* Sample a running job's sink.  The computing domain owns the sink's
   counters; these are racy (memory-safe, approximately-current) reads
   used only for display — the OCaml memory model guarantees we see
   some previously-written value, never a torn one. *)
let progress_of job =
  let sink = job.jsink in
  let tot = Obs.totals sink in
  let phases =
    List.fold_left
      (fun n e -> match e with Obs.Phase_end _ -> n + 1 | _ -> n)
      0 (Obs.events sink)
  in
  {
    Wire.g_rid = job.jrid;
    g_phases = phases;
    g_refs = tot.Obs.t_refs;
    g_misses = tot.Obs.t_misses;
    g_elapsed_s = now () -. job.jstart;
  }

let ticker_loop t =
  let interval = t.cfg.progress_interval_s in
  if interval > 0.0 then
    while not (Atomic.get t.teardown) do
      Thread.delay (Float.min interval 0.25);
      if not (Atomic.get t.teardown) then begin
        let jobs = locked t.mu (fun () ->
            Hashtbl.fold (fun _ j acc -> j :: acc) t.running [])
        in
        List.iter
          (fun job ->
            if now () -. job.jstart >= interval then
              send t job.jconn (Wire.Progress (progress_of job)))
          jobs
      end
    done

(* ------------------------------------------------------------------ *)
(* Accept loop, startup, drain.                                        *)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop_req) then begin
      (match Unix.select [ t.listener ] [] [] 0.25 with
      | [ _ ], _, _ -> (
        match Unix.accept t.listener with
        | fd, _ ->
          let conn =
            {
              fd;
              wmu = Mutex.create ();
              cid = Drr.register t.queue;
              scope = Batch.Counters.create ();
              alive = true;
            }
          in
          locked t.mu (fun () -> Hashtbl.replace t.conns conn.cid conn);
          let th = Thread.create (fun () -> conn_loop t conn) () in
          locked t.mu (fun () -> t.conn_threads <- th :: t.conn_threads);
          log t "connection %d accepted" conn.cid
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let bind_socket path =
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listener (Unix.ADDR_UNIX path) with
  | Unix.Unix_error (Unix.EADDRINUSE, _, _) -> (
    (* stale socket file from a crashed server, or a live one? *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with _ -> false
    in
    (try Unix.close probe with _ -> ());
    if live then begin
      (try Unix.close listener with _ -> ());
      failwith ("lf_serve: another server is listening on " ^ path)
    end
    else begin
      (try Unix.unlink path with _ -> ());
      Unix.bind listener (Unix.ADDR_UNIX path)
    end)
  | e ->
    (try Unix.close listener with _ -> ());
    raise e);
  Unix.listen listener 64;
  listener

let start cfg =
  (* a disconnected client must surface as EPIPE, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (* open through the memoised policy resolver so the daemon's handle
     is the same one worker dispatch (run_one_with) resolves to — one
     handle per root means one consistent stats view *)
  let store =
    match
      Batch.store_of_opts
        (Run_opts.make ~store:(Run_opts.Store_in cfg.store_dir) ())
    with
    | Some st -> st
    | None -> assert false
  in
  let queue =
    Drr.create ~quantum:cfg.quantum ~max_inflight:cfg.max_inflight
      ~max_client_queue:cfg.max_client_queue ()
  in
  let listener = bind_socket cfg.socket in
  let t =
    {
      cfg;
      store;
      queue;
      listener;
      stop_req = Atomic.make false;
      draining = Atomic.make false;
      teardown = Atomic.make false;
      seq = Atomic.make 0;
      n_accepted = Atomic.make 0;
      n_overloaded = Atomic.make 0;
      n_rejected = Atomic.make 0;
      n_served_hit = Atomic.make 0;
      n_served_computed = Atomic.make 0;
      mu = Mutex.create ();
      conns = Hashtbl.create 16;
      running = Hashtbl.create 16;
      conn_threads = [];
      accept_thread = None;
      worker_domains = [];
      ticker_thread = None;
      stop_mu = Mutex.create ();
      stopped = false;
    }
  in
  t.worker_domains <-
    List.init (max 1 cfg.workers) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.ticker_thread <- Some (Thread.create (fun () -> ticker_loop t) ());
  log t "listening on %s (%d workers, max_inflight %d, per-client queue %d)"
    cfg.socket cfg.workers cfg.max_inflight cfg.max_client_queue;
  t

let request_stop t =
  Atomic.set t.draining true;
  Atomic.set t.stop_req true

let wait t =
  while not (Atomic.get t.stop_req) do
    Thread.delay 0.1
  done

let stop t =
  let first =
    locked t.stop_mu (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if first then begin
    request_stop t;
    (* 1. no new connections *)
    Option.iter Thread.join t.accept_thread;
    (* 2. no new admissions (conn threads now answer Overloaded); the
       queued and running jobs finish and their results are sent *)
    Drr.drain t.queue;
    List.iter Domain.join t.worker_domains;
    t.worker_domains <- [];
    (* 3. ticker off *)
    Atomic.set t.teardown true;
    Option.iter Thread.join t.ticker_thread;
    (* 4. unblock idle readers and join the connection threads *)
    let conns = locked t.mu (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
    in
    List.iter
      (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    let threads = locked t.mu (fun () -> t.conn_threads) in
    List.iter Thread.join threads;
    (* 5. release the socket *)
    (try Unix.close t.listener with _ -> ());
    (try Unix.unlink t.cfg.socket with _ -> ());
    log t "drained: %d hits, %d computed, %d overloaded, %d rejected"
      (Atomic.get t.n_served_hit)
      (Atomic.get t.n_served_computed)
      (Atomic.get t.n_overloaded)
      (Atomic.get t.n_rejected)
  end

let run cfg =
  let t = start cfg in
  let on_signal = Sys.Signal_handle (fun _ -> request_stop t) in
  (try Sys.set_signal Sys.sigterm on_signal with _ -> ());
  (try Sys.set_signal Sys.sigint on_signal with _ -> ());
  wait t;
  stop t
