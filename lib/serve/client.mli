(** Client side of the {!Serve} protocol: connect, send a request,
    collect the streamed reply.  Used by [lfc request], the serve
    bench and the tests; deliberately synchronous — one outstanding
    request per call to {!request_sync} keeps the reply stream trivial
    to demultiplex. *)

module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec

type t

val connect : ?socket:string -> unit -> t
(** Connect to the daemon's Unix-domain socket (default:
    [$LF_SERVE_SOCKET], else ["_lf_serve.sock"]).  Raises
    [Unix.Unix_error] when no server is listening. *)

val close : t -> unit
(** Idempotent. *)

val socket : t -> string

(** {1 Low-level frame exchange} *)

val send : t -> Wire.client_msg -> unit
val recv : t -> (Wire.server_msg, Wire.read_error) result

(** {1 Synchronous helpers} *)

val ping : t -> bool
(** One Ping/Pong round trip. *)

val stats : t -> ((string * int) list, string) result
(** Query the server's counters; skips any interleaved [Progress]
    frames from earlier requests. *)

type served = {
  from_store : bool;  (** answered on the fast path or by a worker recheck *)
  wall_s : float;  (** server-side compute time; [0.] for store hits *)
  position : int;  (** queue position at admission; [0] = fast path *)
  result : Exec.result;
}

type response =
  | Served of served
  | Overloaded of string  (** admission refused — back off and retry *)
  | Rejected of string  (** the request itself is unservable *)

val request_sync :
  ?on_progress:(Wire.progress -> unit) ->
  t ->
  rid:int ->
  Sim.request ->
  (response, string) result
(** Send one request and block until its terminal reply, invoking
    [on_progress] for each streamed [Progress] frame along the way.
    [Error] is a transport failure (connection lost, protocol
    violation) — distinct from the server refusing the request. *)
