module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec

type t = { fd : Unix.file_descr; path : string; mutable open_ : bool }

let connect ?socket () =
  let path =
    match socket with
    | Some s -> s
    | None -> (
      match Sys.getenv_opt "LF_SERVE_SOCKET" with
      | Some s when s <> "" -> s
      | _ -> "_lf_serve.sock")
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; path; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with _ -> ()
  end

let socket t = t.path
let send t msg = Wire.write_frame t.fd (Wire.client_msg_to_payload msg)

let recv t =
  match Wire.read_frame t.fd with
  | Error e -> Error e
  | Ok payload -> (
    match Wire.server_msg_of_payload payload with
    | Ok msg -> Ok msg
    | Error reason -> Error (Wire.Io ("bad server frame: " ^ reason)))

let ping t =
  match
    send t Wire.Ping;
    recv t
  with
  | Ok Wire.Pong -> true
  | _ -> false
  | exception _ -> false

let stats t =
  match
    send t Wire.Stats_query;
    let rec loop () =
      match recv t with
      | Ok (Wire.Stats_reply kvs) -> Ok kvs
      | Ok (Wire.Progress _) -> loop () (* stale stream from earlier work *)
      | Ok _ -> Error "unexpected reply to stats query"
      | Error e -> Error (Wire.read_error_to_string e)
    in
    loop ()
  with
  | r -> r
  | exception e -> Error (Printexc.to_string e)

type served = {
  from_store : bool;
  wall_s : float;
  position : int;
  result : Exec.result;
}

type response = Served of served | Overloaded of string | Rejected of string

(* After the ack, Progress frames stream until the terminal
   Result/Rejected.  [position] is the queue position reported by
   Accepted. *)
let rec await_terminal ~on_progress t ~rid ~position =
  match recv t with
  | Error e -> Error (Wire.read_error_to_string e)
  | Ok (Wire.Progress g) ->
    if g.Wire.g_rid = rid then on_progress g;
    await_terminal ~on_progress t ~rid ~position
  | Ok (Wire.Result { rid = r; from_store; wall_s; result }) when r = rid ->
    Ok (Served { from_store; wall_s; position; result })
  | Ok (Wire.Rejected { rid = r; reason }) when r = rid -> Ok (Rejected reason)
  | Ok _ -> Error "protocol violation: unexpected frame before result"

let request_sync ?(on_progress = fun _ -> ()) t ~rid req =
  match
    send t (Wire.Request { rid; req });
    (* first frame: the admission verdict *)
    let rec first () =
      match recv t with
      | Error e -> Error (Wire.read_error_to_string e)
      | Ok (Wire.Progress g) ->
        on_progress g;
        first ()
      | Ok (Wire.Accepted { rid = r; position }) when r = rid ->
        await_terminal ~on_progress t ~rid ~position
      | Ok (Wire.Overloaded { rid = r; reason }) when r = rid ->
        Ok (Overloaded reason)
      | Ok (Wire.Rejected { rid = r; reason }) when r = rid ->
        Ok (Rejected reason)
      | Ok _ -> Error "protocol violation: unexpected frame before ack"
    in
    first ()
  with
  | r -> r
  | exception e -> Error (Printexc.to_string e)
