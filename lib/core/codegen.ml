(* Source emission for fused loops (paper Figures 11, 12 and 16).

   The executable semantics live in [Schedule]; this module renders the
   equivalent C-like source so the transformation output can be read,
   compared against the paper's figures, and pasted into reports. *)

module Ir = Lf_ir.Ir

(* Substitute [v := v + delta] in an affine expression. *)
let subst_affine (a : Ir.affine) v delta =
  let shift =
    List.fold_left
      (fun acc (c, x) -> if String.equal x v then acc + (c * delta) else acc)
      0 a.terms
  in
  { a with const = a.const + shift }

let subst_aref (r : Ir.aref) v delta =
  { r with index = List.map (fun a -> subst_affine a v delta) r.index }

let rec subst_expr (e : Ir.expr) v delta =
  match e with
  | Const _ -> e
  | Read r -> Read (subst_aref r v delta)
  | Neg e -> Neg (subst_expr e v delta)
  | Bin (op, a, b) -> Bin (op, subst_expr a v delta, subst_expr b v delta)

let subst_stmt (s : Ir.stmt) v delta =
  {
    Ir.lhs = subst_aref s.lhs v delta;
    rhs = subst_expr s.rhs v delta;
    guard =
      List.map
        (fun (x, lo, hi) ->
          if String.equal x v then (x, lo - delta, hi - delta) else (x, lo, hi))
        s.guard;
  }

(* Substitute over the first [depth] loop variables of nest [n] with
   per-dimension deltas. *)
let subst_stmt_dims (n : Ir.nest) ~depth deltas (s : Ir.stmt) =
  let vars = Ir.nest_vars n in
  let rec go s d = function
    | [] -> s
    | v :: rest ->
      if d >= depth then s
      else go (subst_stmt s v deltas.(d)) (d + 1) rest
  in
  go s 0 vars

(* [off "iend" 2] is "iend+2"; [off "iend" 0] is "iend". *)
let off base k =
  if k = 0 then base
  else if k > 0 then Printf.sprintf "%s+%d" base k
  else Printf.sprintf "%s%d" base k

exception Unsupported of string

(* The 1-D emitters render only the fused loop variable; a nest with
   levels beyond the derivation depth would leave its inner variables
   unbound in the emitted text.  Detect that up front instead of
   silently printing broken code. *)
let multidim_nests (p : Ir.program) (d : Derive.t) =
  List.exists (fun (n : Ir.nest) -> List.length n.levels > d.depth) p.nests

(* ------------------------------------------------------------------ *)
(* Direct method (Figure 11(a)): one loop over fused positions with
   guards; shifted statements get rewritten subscripts.               *)

let emit_direct ppf (p : Ir.program) (d : Derive.t) =
  if d.depth <> 1 then
    raise (Unsupported "Codegen.emit_direct: derivation depth must be 1");
  if multidim_nests p d then
    raise
      (Unsupported
         "Codegen.emit_direct: program has loop levels below the fusion \
          depth; the direct method is 1-D only (use emit_multidim)");
  let nests = Array.of_list p.nests in
  let n0 = nests.(0) in
  let v = List.hd (Ir.nest_vars n0) in
  Fmt.pf ppf "/* direct fusion (one processor block istart..iend) */@.";
  Fmt.pf ppf "for (%s = istart; %s <= iend; %s++) {@." v v v;
  Array.iteri
    (fun k (n : Ir.nest) ->
      let s = d.shift.(k).(0) in
      let vk = List.hd (Ir.nest_vars n) in
      let guard =
        if s = 0 then ""
        else Printf.sprintf "if (%s >= istart+%d) " v s
      in
      List.iter
        (fun st ->
          let st = subst_stmt st vk (-s) in
          Fmt.pf ppf "  %s%a@." guard Ir.pp_stmt st)
        n.body)
    nests;
  Fmt.pf ppf "}@.";
  (* iterations of shifted nests left over past the end of the block *)
  Array.iteri
    (fun k (n : Ir.nest) ->
      let s = d.shift.(k).(0) in
      if s > 0 then begin
        let vk = List.hd (Ir.nest_vars n) in
        Fmt.pf ppf "for (%s = %s; %s <= iend; %s++) {@." vk
          (off "iend" (1 - s)) vk vk;
        List.iter (fun st -> Fmt.pf ppf "  %a@." Ir.pp_stmt st) n.body;
        Fmt.pf ppf "}@."
      end)
    nests

(* ------------------------------------------------------------------ *)
(* Strip-mined method (Figures 11(b) and 12)                           *)


let emit_strip_mined_1d ?(strip = Schedule.default_strip) ppf
    (p : Ir.program) (d : Derive.t) =
  let nests = Array.of_list p.nests in
  Fmt.pf ppf
    "/* strip-mined fusion, block istart..iend of one processor (s = %d) */@."
    strip;
  Fmt.pf ppf "for (ii = istart; ii <= iend; ii += %d) {@." strip;
  Array.iteri
    (fun k (n : Ir.nest) ->
      let s = d.shift.(k).(0) in
      let pk = Derive.start_peel d ~nest:k ~dim:0 in
      let vk = List.hd (Ir.nest_vars n) in
      let lo =
        if s = 0 && pk = 0 then "ii"
        else
          (* interior block: skip peeled start iterations *)
          Printf.sprintf "max(%s, %s)" (off "ii" (-s)) (off "istart" pk)
      in
      let hi =
        Printf.sprintf "min(%s, %s)" (off "ii" (strip - 1 - s)) (off "iend" (-s))
      in
      Fmt.pf ppf "  for (%s = %s; %s <= %s; %s++) {@." vk lo vk hi vk;
      List.iter (fun st -> Fmt.pf ppf "    %a@." Ir.pp_stmt st) n.body;
      Fmt.pf ppf "  }@.")
    nests;
  Fmt.pf ppf "}@.";
  Fmt.pf ppf "BARRIER;@.";
  Array.iteri
    (fun k (n : Ir.nest) ->
      let s = d.shift.(k).(0) in
      let q = d.peel.(k).(0) in
      if s + q > 0 then begin
        let vk = List.hd (Ir.nest_vars n) in
        Fmt.pf ppf "/* tail of this block + iterations peeled from the next */@.";
        Fmt.pf ppf "for (%s = %s; %s <= %s; %s++) {@." vk
          (off "iend" (1 - s)) vk (off "iend" q) vk;
        List.iter (fun st -> Fmt.pf ppf "  %a@." Ir.pp_stmt st) n.body;
        Fmt.pf ppf "}@."
      end)
    nests

(* ------------------------------------------------------------------ *)
(* Multidimensional code with boundary prologue (Figure 16)            *)

let emit_multidim ?(strip = Schedule.default_strip) ppf (p : Ir.program)
    (d : Derive.t) =
  let depth = d.depth in
  let nests = Array.of_list p.nests in
  let n0 = nests.(0) in
  let vars = Array.of_list (Ir.nest_vars n0) in
  Fmt.pf ppf "/* multidimensional shift-and-peel, %d fused dimensions */@."
    depth;
  Fmt.pf ppf "/* prologue: boundary cases folded into peel flags */@.";
  for dim = 0 to depth - 1 do
    let v = vars.(dim) in
    Fmt.pf ppf "%sfpeel = (first block along %s) ? 0 : 1;@." v v;
    Fmt.pf ppf "%sppeel = (last block along %s)  ? 0 : 1;@." v v
  done;
  let rec open_strips dim indent =
    if dim < depth then begin
      let v = vars.(dim) in
      Fmt.pf ppf "%sfor (%s%s = %sstart; %s%s <= %send; %s%s += %d) {@."
        indent v v v v v v v v strip;
      open_strips (dim + 1) (indent ^ "  ")
    end
    else indent
  in
  let indent = open_strips 0 "" in
  Array.iteri
    (fun k (n : Ir.nest) ->
      let nvars = Array.of_list (Ir.nest_vars n) in
      let rec emit_dims dim ind =
        if dim < Array.length nvars then begin
          let v = nvars.(dim) in
          if dim < depth then begin
            let s = d.shift.(k).(dim) in
            let pk = Derive.start_peel d ~nest:k ~dim in
            let lo =
              Printf.sprintf "max(%s, %sstart+%d*%sfpeel)"
                (off (v ^ v) (-s)) v pk v
            in
            let hi =
              Printf.sprintf "min(%s, %s)"
                (off (v ^ v) (strip - 1 - s))
                (off (v ^ "end") (-s))
            in
            Fmt.pf ppf "%sfor (%s = %s; %s <= %s; %s++) {@." ind v lo v hi v
          end
          else begin
            let l = List.nth n.levels dim in
            Fmt.pf ppf "%sfor (%s = %d; %s <= %d; %s++) {@." ind v l.lo v
              l.hi v
          end;
          emit_dims (dim + 1) (ind ^ "  ");
          Fmt.pf ppf "%s}@." ind
        end
        else
          List.iter (fun st -> Fmt.pf ppf "%s%a@." ind Ir.pp_stmt st) n.body
      in
      emit_dims 0 indent)
    nests;
  let rec close dim =
    if dim >= 0 then begin
      Fmt.pf ppf "%s}@." (String.make (dim * 2) ' ');
      close (dim - 1)
    end
  in
  close (depth - 1);
  Fmt.pf ppf "BARRIER;@.";
  Fmt.pf ppf "/* peeled boxes: every combination of per-dimension tails */@.";
  Array.iteri
    (fun k (n : Ir.nest) ->
      let nvars = Array.of_list (Ir.nest_vars n) in
      for mask = 1 to (1 lsl depth) - 1 do
        let any = ref false in
        for dim = 0 to depth - 1 do
          if
            mask land (1 lsl dim) <> 0
            && Derive.start_peel d ~nest:k ~dim > 0
          then any := true
        done;
        if !any then begin
          let rec emit_dims dim ind =
            if dim < Array.length nvars then begin
              let v = nvars.(dim) in
              if dim < depth then begin
                let s = d.shift.(k).(dim) in
                let q = d.peel.(k).(dim) in
                let lo, hi =
                  if mask land (1 lsl dim) <> 0 then
                    ( off (v ^ "end") (1 - s),
                      Printf.sprintf "%send+%d*%sppeel" v q v )
                  else
                    ( Printf.sprintf "%sstart+%d*%sfpeel" v
                        (Derive.start_peel d ~nest:k ~dim)
                        v,
                      off (v ^ "end") (-s) )
                in
                Fmt.pf ppf "%sfor (%s = %s; %s <= %s; %s++) {@." ind v lo v
                  hi v
              end
              else begin
                let l = List.nth n.levels dim in
                Fmt.pf ppf "%sfor (%s = %d; %s <= %d; %s++) {@." ind v l.lo
                  v l.hi v
              end;
              emit_dims (dim + 1) (ind ^ "  ");
              Fmt.pf ppf "%s}@." ind
            end
            else
              List.iter (fun st -> Fmt.pf ppf "%s%a@." ind Ir.pp_stmt st)
                n.body
          in
          emit_dims 0 ""
        end
      done)
    nests

(* Strip-mined entry point: the 1-D renderer when every loop level is
   fused, the multidimensional renderer (which emits the inner serial
   loops) otherwise. *)
let emit_strip_mined ?strip ppf (p : Ir.program) (d : Derive.t) =
  if d.depth <> 1 then
    raise
      (Unsupported "Codegen.emit_strip_mined: derivation depth must be 1");
  if multidim_nests p d then emit_multidim ?strip ppf p d
  else emit_strip_mined_1d ?strip ppf p d

let direct_to_string p d = Fmt.str "%a" (fun ppf () -> emit_direct ppf p d) ()

let strip_mined_to_string ?strip p d =
  Fmt.str "%a" (fun ppf () -> emit_strip_mined ?strip ppf p d) ()

let multidim_to_string ?strip p d =
  Fmt.str "%a" (fun ppf () -> emit_multidim ?strip ppf p d) ()
