(** Array memory layouts: contiguous placement, intra-array padding
    (the ad-hoc baseline of §4), and cache partitioning (Figure 19).

    Cache partitioning divides the cache's set-index span into one
    partition per array and inserts gaps between arrays so each array's
    start maps to the start of a distinct partition; for compatible
    references the partitions never overlap during execution, so
    cross-conflicts cannot occur. *)

type placement = {
  name : string;
  start : int;  (** byte address of element 0 *)
  aextents : int array;  (** addressing extents (padding included) *)
}

type layout = {
  elem_bytes : int;
  placements : (string * placement) list;
  total_bytes : int;
}

val find_placement : layout -> string -> placement

val address : layout -> string -> int array -> int
(** Byte address of the element at a row-major index. *)

val array_bytes : layout -> placement -> int

val overhead_bytes : layout -> Lf_ir.Ir.decl list -> int
(** Bytes lost to padding/gaps relative to dense placement. *)

val contiguous :
  ?elem_bytes:int -> ?align:int -> Lf_ir.Ir.decl list -> layout
(** Arrays back to back in declaration order, starts aligned. *)

val padded :
  ?elem_bytes:int -> ?align:int -> pad:int -> Lf_ir.Ir.decl list -> layout
(** Pad the innermost dimension of every array by [pad] elements. *)

type cache_shape = { capacity : int; line : int; assoc : int }

val cache_span : cache_shape -> int
(** The set-index span: addresses [q] and [q + span] map to the same
    set. *)

val cache_map : cache_shape -> int -> int

val cache_partitioned :
  ?elem_bytes:int -> cache:cache_shape -> Lf_ir.Ir.decl list -> layout
(** Greedy memory layout (Figure 19): partition size
    [capacity / narrays]; arrays are placed in declaration order, each
    assigned the still-available partition minimising the inserted gap.
    On a set-associative cache, [assoc] arrays share a set region
    (target [(p / assoc) * sp], §4). *)

val partition_size : cache:cache_shape -> narrays:int -> int

val max_strip :
  ?elem_bytes:int ->
  cache:cache_shape ->
  narrays:int ->
  row_elems:int ->
  rows_per_iter:int ->
  unit ->
  int
(** Largest strip-mining factor keeping one strip of each array inside
    its partition (§3.4). *)

val compatible_refs : Lf_ir.Ir.aref -> Lf_ir.Ir.aref -> bool
(** References are compatible when their subscript mappings (linear
    parts) coincide (§4): conflict-free starts then stay conflict-free
    throughout the loop. *)

val program_compatible : Lf_ir.Ir.program -> bool

val version : string
(** Fingerprint of the default ([contiguous]) layout construction,
    folded into {!Lf_machine.Sim.digest} for requests that carry no
    explicit layout.  Bump when default placement changes; no
    spaces. *)
