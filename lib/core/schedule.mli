(** Executable schedules: block-scheduled parallel execution of loop
    sequences, unfused (one phase per nest) or fused with shift-and-peel
    (fused phase, barrier, peeled iterations; paper §3.4, Figures 11,
    12, 16).

    A schedule is a list of phases separated by barriers; each phase
    assigns every processor an ordered list of boxes (rectangular
    iteration sub-spaces of one nest).  The same schedule is executed
    untimed here for semantic verification and by {!Lf_machine.Exec}
    with caches and a cost model. *)

type box = {
  nest : int;  (** index into the program's nest list *)
  ranges : (int * int) array;  (** inclusive range per loop level *)
}

type phase = box list array
(** One work list per processor; an implicit barrier follows a phase. *)

type t = {
  prog : Lf_ir.Ir.program;
  nprocs : int;
  grid : int array;  (** processor grid over the fused dimensions *)
  phases : phase list;
  labels : string list;  (** one human-readable label per phase *)
}

val phase_label : t -> int -> string
(** Label of phase [i] ("fused", "peeled", a nest id, ...); falls back
    to ["phase<i>"] when the schedule carries fewer labels than
    phases. *)

val phase_labels : t -> string list
(** One label per phase, with fallbacks applied. *)

val box_is_empty : box -> bool
val box_iterations : box -> int
val phase_iterations : phase -> int
val total_iterations : t -> int

val balanced_grid : nprocs:int -> depth:int -> int array
(** Factor [nprocs] into [depth] balanced factors, largest first. *)

val block : lo:int -> hi:int -> nprocs:int -> p:int -> int * int
(** Contiguous block [p] of [nprocs] over [lo, hi]; balanced (sizes
    differ by at most one).  Raises [Invalid_argument] if there are
    more processors than iterations. *)

val cell_of_proc : int array -> int -> int array
(** Grid coordinates of a processor (row-major). *)

val unfused :
  ?grid:int array -> ?depth:int -> nprocs:int -> Lf_ir.Ir.program -> t
(** The original execution: one block-scheduled parallel phase per
    nest. *)

exception Illegal of string
(** Fusion legality violation (Theorem 1 iteration-count threshold). *)

type geometry = {
  g_lo : int array;  (** fused position space lower bound, per dim *)
  g_hi : int array;
  nest_lo : int array array;  (** [.(nest).(dim)]: original bounds *)
  nest_hi : int array array;
}

val geometry : Lf_ir.Ir.program -> Derive.t -> geometry
(** Per-nest, per-dimension geometry of the fused execution: the fused
    position space is the union of the shifted nest ranges. *)

val default_strip : int

val version : string
(** Fingerprint of schedule construction ({!unfused}/{!fused} box
    layout), folded into {!Lf_machine.Sim.digest} for variant requests
    that rebuild their schedule at replay time ([Explicit] requests
    serialise the structure instead).  Bump when constructed schedules
    change; no spaces. *)

val fused :
  ?grid:int array ->
  ?strip:int ->
  ?peel_starts:bool ->
  ?derive:Derive.t ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  t
(** The fused shift-and-peel execution: a strip-mined fused phase, a
    barrier, then the peeled iterations (per-dimension tail boxes, cf.
    Figure 16).  [derive] defaults to [Derive.of_program ~depth:1];
    [strip] is the strip-mining factor for every fused dimension.
    [peel_starts:false] skips start-of-block peeling and the peeled
    phase entirely — only valid when no dependence crosses blocks (used
    by the alignment+replication baseline). *)

val serial : Lf_ir.Ir.program -> t

type order = Natural | Reversed | Interleaved
(** Processor execution orders for the untimed executor; a legal
    schedule gives identical results under all of them. *)

val execute :
  ?order:order ->
  ?init:(string -> int -> float) ->
  ?steps:int ->
  t ->
  Lf_ir.Interp.store
(** Execute untimed; phases in order, barrier semantics between;
    [steps] repeats the whole schedule (sequential time-step loop). *)

val coverage : t -> nest:int -> (int * int * int array) list
(** Every executed iteration point of [nest] as [(phase, proc, point)];
    for small programs in tests (Theorem 1 coverage obligations). *)

val pp : Format.formatter -> t -> unit
