(** Array contraction after direct fusion (Warren's motivation for
    fusion, paper §2.4): when every inter-nest dependence is
    loop-independent, the sequence direct-fuses into one nest and each
    non-live-out temporary shrinks to one cell per fused iteration
    (parallel-safe under blocking of the fused dimension). *)

type analysis = {
  contractible : string list;  (** temporaries eligible for contraction *)
  bytes_before : int;
  bytes_after : int;
}

val direct_fusable :
  Lf_ir.Ir.program -> (Lf_dep.Dep.multigraph, string) result
(** Direct fusion (no shifting) is legal and parallel iff every
    inter-nest dependence has an all-zero distance vector and the
    iteration spaces coincide. *)

val analyse :
  ?elem_bytes:int ->
  live_out:string list ->
  Lf_ir.Ir.program ->
  (analysis, string) result

val contract :
  ?elem_bytes:int ->
  live_out:string list ->
  Lf_ir.Ir.program ->
  (Lf_ir.Ir.program * analysis, string) result
(** Direct-fuse into a single nest and contract the inner dimensions of
    every eligible temporary; live-out arrays are bit-identical to the
    original program's. *)
