(** Alignment + replication baseline (Callahan, Appelbe & Smith; paper
    §3.5, Figure 14, compared against shift-and-peel in Figure 26).

    To obtain a synchronization-free parallel fused loop, flow
    dependences are aligned away; alignment conflicts are resolved by
    replicating source statements into the sink nest (which cascades —
    the code-growth problem the paper attributes to the technique); and
    loop-carried anti dependences are resolved by snapshotting arrays
    into copies read instead of the originals (Figure 14's L0).

    On LL18 this replicates exactly two statements (za, zb) and two
    arrays (zr, zz), matching the paper's account. *)

type result = {
  prog : Lf_ir.Ir.program;  (** copy nests ++ transformed main nests *)
  ncopies : int;  (** number of copy nests prepended *)
  shifts : int array;  (** alignment of each main nest *)
  copied_arrays : string list;
  replicated_stmts : int;
  rounds : int;  (** replication cascade depth *)
}

val transform : Lf_ir.Ir.program -> (result, string) Stdlib.result
(** Apply the transformation; [Error] when not applicable (non-uniform
    dependences, loop-carried output dependences, non-converging
    cascades, or replication that would break parallelism). *)

val verify_sync_free : result -> (unit, string) Stdlib.result
(** Check that every remaining inter-nest dependence of the main nests
    has effective distance zero under the alignment. *)

val schedule :
  ?grid:int array -> ?strip:int -> nprocs:int -> result -> Schedule.t
(** Executable schedule: one parallel phase per copy nest, then the
    aligned main nests as a single synchronization-free fused phase. *)
