(* Alignment + replication baseline (Callahan [8], Appelbe & Smith [2];
   paper §3.5, Figure 14 and the Figure 26 comparison).

   To obtain a synchronization-free parallel fused loop, every
   dependence between nests must become loop-independent:

   - flow dependences are aligned away: each nest is shifted so its
     minimum flow distance becomes zero (the Figure 8 min-propagation
     restricted to flow edges);
   - flow dependences whose distance exceeds the minimum (alignment
     conflicts) are resolved by *replicating the source statement* into
     the sink nest, writing a replica array that the sink reads instead;
     replicated statements may themselves read values produced by yet
     earlier nests, so replication cascades until a fixpoint -- the
     code-growth problem the paper attributes to this technique;
   - anti dependences that remain loop-carried after alignment are
     resolved by *replicating the array*: a copy loop before the fused
     loop snapshots the array and the readers are redirected to the
     snapshot (Figure 14's L0, which must not itself be fused).

   The copies and replicated statements are pure overhead -- extra
   memory traffic and computation -- which is what Figure 26 measures
   against shift-and-peel.  Applied to LL18 this transformation
   replicates exactly two statements (za, zb) and two arrays (zr, zz),
   matching the paper's account. *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep

type result = {
  prog : Ir.program;  (* copy nests ++ transformed main nests *)
  ncopies : int;  (* number of copy nests prepended *)
  shifts : int array;  (* alignment of each main nest *)
  copied_arrays : string list;
  replicated_stmts : int;
  rounds : int;  (* replication cascade depth *)
}

(* Replica array names are keyed by the full per-dimension offset
   between the reader's subscripts and the writer's (e.g. zeta__rep1 for
   fused offset 1, zeta__rep0_1 for fused 0 / inner +1). *)
let rep_name a ~dst (delta : int array) =
  let enc d = if d >= 0 then string_of_int d else "m" ^ string_of_int (-d) in
  let suffix =
    (* trailing zero inner offsets are omitted so the common
       fused-only case reads naturally *)
    let last = ref 0 in
    Array.iteri (fun i d -> if d <> 0 then last := i) delta;
    String.concat "_"
      (List.init (max 1 (!last + 1)) (fun i -> enc delta.(i)))
  in
  Printf.sprintf "%s__rep%s_n%d" a suffix dst

let copy_name a = a ^ "__copy"

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* Alignment from flow dependences only: Figure 8 min-propagation over
   the flow edges of the dimension-0 multigraph. *)
let flow_alignment (g : Dep.multigraph) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Dep.edge) ->
      match (e.dkind, e.dist) with
      | Flow, Dist d ->
        let key = (e.src, e.dst) in
        let w = d.(0) in
        (match Hashtbl.find_opt tbl key with
        | None -> Hashtbl.replace tbl key w
        | Some w' -> Hashtbl.replace tbl key (min w w'))
      | Flow, Not_uniform r -> unsupported "non-uniform dependence: %s" r
      | (Anti | Output), _ -> ())
    g.edges;
  let weight = Array.make g.nnests 0 in
  for v = 0 to g.nnests - 1 do
    Hashtbl.iter
      (fun (src, dst) w ->
        if src = v then
          let c = if w < 0 then weight.(v) + w else weight.(v) in
          weight.(dst) <- min weight.(dst) c)
      tbl
  done;
  Array.map (fun w -> -w) weight

let redirect_reads_in_expr ~pred e =
  let rec go (e : Ir.expr) =
    match e with
    | Const _ -> e
    | Read r -> (
      match pred r with Some r' -> Ir.Read r' | None -> e)
    | Neg e -> Ir.Neg (go e)
    | Bin (op, a, b) -> Ir.Bin (op, go a, go b)
  in
  go e

let redirect_stmt ~pred (s : Ir.stmt) =
  { s with Ir.rhs = redirect_reads_in_expr ~pred s.Ir.rhs }

(* Per-level constant offsets of [r]: [Some o] with o.(d) = c when the
   level-d variable appears as [v + c]; [None] if any loop variable is
   missing or non-unit (replication is then not applicable). *)
let offsets_vec (n : Ir.nest) (r : Ir.aref) =
  let vars = Array.of_list (Ir.nest_vars n) in
  let o = Array.make (Array.length vars) 0 in
  let found = Array.make (Array.length vars) false in
  let ok = ref true in
  List.iter
    (fun a ->
      match Ir.unit_var a with
      | Some (x, c) ->
        Array.iteri
          (fun d v ->
            if String.equal v x then
              if found.(d) then ok := false
              else begin
                found.(d) <- true;
                o.(d) <- c
              end)
          vars
      | None -> if not (Ir.affine_is_const a) then ok := false)
    r.index;
  if !ok && Array.for_all (fun b -> b) found then Some o else None

(* Inner-offset classification relative to the consumer's own ascending
   sweep: a needed cell at lexicographically negative (or zero) inner
   offset has already been produced by the base replica earlier in the
   sweep; a positive one needs its own cell-exact replica. *)
let inner_sign (delta : int array) =
  let rec go d =
    if d >= Array.length delta then 0
    else if delta.(d) > 0 then 1
    else if delta.(d) < 0 then -1
    else go (d + 1)
  in
  go 1

(* Rename loop variables of [stmt] positionally from [svars] to
   [dvars]. *)
let rename_vars svars dvars (s : Ir.stmt) =
  let assoc x =
    let rec go ss ds =
      match (ss, ds) with
      | sv :: _, dv :: _ when String.equal sv x -> dv
      | _ :: ss, _ :: ds -> go ss ds
      | _, _ -> x
    in
    go svars dvars
  in
  let rename_affine (a : Ir.affine) =
    { a with Ir.terms = List.map (fun (c, x) -> (c, assoc x)) a.Ir.terms }
  in
  let rename_ref (r : Ir.aref) =
    { r with Ir.index = List.map rename_affine r.index }
  in
  let rec rename_expr (e : Ir.expr) =
    match e with
    | Const _ -> e
    | Read r -> Ir.Read (rename_ref r)
    | Neg e -> Ir.Neg (rename_expr e)
    | Bin (op, a, b) -> Ir.Bin (op, rename_expr a, rename_expr b)
  in
  {
    Ir.lhs = rename_ref s.Ir.lhs;
    rhs = rename_expr s.Ir.rhs;
    guard = List.map (fun (v, lo, hi) -> (assoc v, lo, hi)) s.Ir.guard;
  }

let max_rounds = 10

let transform (p : Ir.program) =
  try
    let nests = Array.of_list p.nests in
    let nnests = Array.length nests in
    let bodies = Array.map (fun (n : Ir.nest) -> n.Ir.body) nests in
    let extra_decls = ref [] in
    let decl_of_base a =
      match
        List.find_opt
          (fun (d : Ir.decl) -> String.equal d.aname a)
          (p.decls @ !extra_decls)
      with
      | Some d -> d
      | None -> unsupported "unknown array %s" a
    in
    let replicated = Hashtbl.create 8 in
    (* (array, d, dst) *)
    let copied = Hashtbl.create 8 in
    let nreplicas = ref 0 in
    let shifts = ref (Array.make nnests 0) in
    let rounds = ref 0 in
    let current_prog () =
      {
        p with
        Ir.decls = p.decls @ List.rev !extra_decls;
        nests =
          Array.to_list
            (Array.mapi (fun k (n : Ir.nest) -> { n with Ir.body = bodies.(k) })
               nests);
      }
    in
    let changed = ref true in
    while !changed && !rounds < max_rounds do
      changed := false;
      incr rounds;
      let prog = current_prog () in
      let g = Dep.build ~depth:1 prog in
      (match Dep.not_uniform_edges g with
      | [] -> ()
      | e :: _ ->
        unsupported "non-uniform dependence: %s" (Fmt.str "%a" Dep.pp_edge e));
      shifts := flow_alignment g;
      let s = !shifts in
      (* Process anti/output edges before flow edges: the array
         snapshots and read redirections must be in place before any
         statement is replicated, so the replicas inherit the
         snapshot-reading form (Figure 14's b0). *)
      let anti_first =
        let anti, flow =
          List.partition
            (fun (e : Dep.edge) -> e.dkind <> Dep.Flow)
            g.edges
        in
        anti @ flow
      in
      List.iter
        (fun (e : Dep.edge) ->
          match (e.dkind, e.dist) with
          | Flow, Dist dv ->
            let d = dv.(0) in
            let delta_fused = d + s.(e.dst) - s.(e.src) in
            if delta_fused > 0 then begin
              let src_nest = nests.(e.src) and dst_nest = nests.(e.dst) in
              if
                List.length src_nest.levels <> List.length dst_nest.levels
                || not
                     (List.for_all2
                        (fun (a : Ir.level) (b : Ir.level) ->
                          a.lo = b.lo && a.hi = b.hi)
                        src_nest.levels dst_nest.levels)
              then
                unsupported
                  "statement replication needs identical iteration spaces \
                   (%s vs %s)"
                  src_nest.nid dst_nest.nid;
              let writers =
                List.filter
                  (fun (st : Ir.stmt) -> String.equal st.Ir.lhs.array e.array)
                  bodies.(e.src)
              in
              let cw =
                match writers with
                | [] -> unsupported "no writer of %s in %s" e.array src_nest.nid
                | st :: rest -> (
                  match offsets_vec src_nest st.Ir.lhs with
                  | None ->
                    unsupported "writer of %s has non-affine subscripts"
                      e.array
                  | Some c ->
                    List.iter
                      (fun (st' : Ir.stmt) ->
                        if offsets_vec src_nest st'.Ir.lhs <> Some c then
                          unsupported
                            "multiple writers of %s with differing offsets"
                            e.array)
                      rest;
                    c)
              in
              (* collect the destination's reads at this fused distance;
                 each distinct per-dimension offset gets a cell-exact
                 replica, except lexicographically non-positive inner
                 offsets, which reuse the fused-only base replica. *)
              let make_replica key_delta =
                let key = (e.array, Array.to_list key_delta, e.dst) in
                if not (Hashtbl.mem replicated key) then begin
                  Hashtbl.replace replicated key ();
                  changed := true;
                  let svars = Ir.nest_vars src_nest in
                  let dvars = Ir.nest_vars dst_nest in
                  let name = rep_name e.array ~dst:e.dst key_delta in
                  let replicas =
                    List.map
                      (fun (st : Ir.stmt) ->
                        incr nreplicas;
                        let st =
                          List.fold_left
                            (fun st (dim, v) ->
                              if key_delta.(dim) = 0 then st
                              else Codegen.subst_stmt st v key_delta.(dim))
                            st
                            (List.mapi (fun dim v -> (dim, v)) svars)
                        in
                        let st = rename_vars svars dvars st in
                        (* execute only where the source statement's
                           iteration lies in the source ranges *)
                        let guard =
                          List.concat
                            (List.mapi
                               (fun dim (l : Ir.level) ->
                                 if key_delta.(dim) = 0 then []
                                 else
                                   [
                                     ( List.nth dvars dim,
                                       l.lo - key_delta.(dim),
                                       l.hi - key_delta.(dim) );
                                   ])
                               src_nest.levels)
                          @ st.Ir.guard
                        in
                        { Ir.lhs = { st.Ir.lhs with array = name };
                          rhs = st.Ir.rhs;
                          guard }
                      )
                      writers
                  in
                  if
                    not
                      (List.exists
                         (fun (dcl : Ir.decl) -> String.equal dcl.aname name)
                         !extra_decls)
                  then
                    extra_decls :=
                      { (decl_of_base e.array) with Ir.aname = name }
                      :: !extra_decls;
                  bodies.(e.dst) <- replicas @ bodies.(e.dst)
                end
              in
              let redirect_read (cr : int array) =
                let delta = Array.mapi (fun dim c -> c - cw.(dim)) cr in
                let key_delta =
                  if inner_sign delta > 0 then delta
                  else Array.init (Array.length delta) (fun dim ->
                      if dim = 0 then delta.(0) else 0)
                in
                make_replica key_delta;
                let name = rep_name e.array ~dst:e.dst key_delta in
                let pred (r : Ir.aref) =
                  if not (String.equal r.array e.array) then None
                  else
                    match offsets_vec dst_nest r with
                    | Some o when o = cr -> Some { r with Ir.array = name }
                    | _ -> None
                in
                bodies.(e.dst) <-
                  List.map
                    (fun (st : Ir.stmt) ->
                      if String.equal st.Ir.lhs.array name then st
                      else redirect_stmt ~pred st)
                    bodies.(e.dst)
              in
              List.iter
                (fun (st : Ir.stmt) ->
                  List.iter
                    (fun (r : Ir.aref) ->
                      if String.equal r.array e.array then
                        match offsets_vec dst_nest r with
                        | Some cr when cw.(0) - cr.(0) = d -> redirect_read cr
                        | Some _ -> ()
                        | None ->
                          unsupported
                            "read of %s has non-affine subscripts" e.array)
                    (Ir.stmt_reads st))
                bodies.(e.dst)
            end
          | Anti, Dist dv ->
            let delta = dv.(0) + s.(e.dst) - s.(e.src) in
            if delta <> 0 && not (Hashtbl.mem copied (e.array, e.src)) then begin
              Hashtbl.replace copied (e.array, e.src) ();
              changed := true;
              (* the reading nest e.src must see pre-sequence values *)
              Array.iteri
                (fun k body ->
                  if k < e.src then
                    List.iter
                      (fun (st : Ir.stmt) ->
                        if String.equal st.Ir.lhs.array e.array then
                          unsupported
                            "array %s written before nest %d: snapshot \
                             would be stale"
                            e.array k)
                      body)
                bodies;
              if
                not
                  (List.exists
                     (fun (dcl : Ir.decl) ->
                       String.equal dcl.aname (copy_name e.array))
                     !extra_decls)
              then
                extra_decls :=
                  { (decl_of_base e.array) with Ir.aname = copy_name e.array }
                  :: !extra_decls;
              let pred (r : Ir.aref) =
                if String.equal r.array e.array then
                  Some { r with Ir.array = copy_name e.array }
                else None
              in
              bodies.(e.src) <-
                List.map (redirect_stmt ~pred) bodies.(e.src)
            end
          | Output, Dist dv ->
            let delta = dv.(0) + s.(e.dst) - s.(e.src) in
            if delta <> 0 then
              unsupported "loop-carried output dependence on %s" e.array
          | _, Not_uniform _ -> ())
        anti_first
    done;
    if !changed then unsupported "replication cascade did not converge";
    (* Replication must not have introduced loop-carried dependences in
       the fused dimension of any nest (a replica reading a value its
       own host nest overwrites at another iteration would race). *)
    Array.iteri
      (fun k (n : Ir.nest) ->
        let n = { n with Ir.body = bodies.(k) } in
        if Dep.may_carry_dim n ~dim:0 then
          unsupported "replication broke parallelism of nest %s" n.Ir.nid)
      nests;
    (* Order each body so every replica precedes its same-iteration
       consumers: replicas first in topological order of the
       "reads the array another replica writes" relation, then the
       original statements in their original order.  (Replicas only
       read earlier-nest arrays, snapshots, and other replicas, never a
       host nest's own outputs, so this ordering is always valid.) *)
    let is_replica_array a =
      List.exists (fun (d : Ir.decl) -> String.equal d.aname a) !extra_decls
    in
    Array.iteri
      (fun k body ->
        let replicas, originals =
          List.partition
            (fun (st : Ir.stmt) -> is_replica_array st.Ir.lhs.array)
            body
        in
        (* Kahn's algorithm, stable w.r.t. the current list order *)
        let sorted = ref [] in
        let pending = ref replicas in
        let produced_later a =
          List.exists
            (fun (st : Ir.stmt) -> String.equal st.Ir.lhs.array a)
            !pending
        in
        let rounds_guard = ref 0 in
        while !pending <> [] && !rounds_guard <= 1000 do
          incr rounds_guard;
          let ready, blocked =
            List.partition
              (fun (st : Ir.stmt) ->
                List.for_all
                  (fun (r : Ir.aref) ->
                    String.equal r.array st.Ir.lhs.array
                    || not (produced_later r.array))
                  (Ir.stmt_reads st))
              !pending
          in
          if ready = [] then
            unsupported "cyclic replica dependences in nest %d" k;
          sorted := !sorted @ ready;
          pending := blocked
        done;
        bodies.(k) <- !sorted @ originals)
      bodies;
    let copied_arrays =
      Hashtbl.fold (fun (a, _) () acc -> a :: acc) copied []
      |> List.sort_uniq String.compare
    in
    let copy_nests =
      List.map
        (fun a ->
          let decl = decl_of_base a in
          let vars =
            List.mapi (fun i _ -> Printf.sprintf "c%d" i) decl.extents
          in
          let levels =
            List.map2
              (fun v e -> { Ir.lvar = v; lo = 0; hi = e - 1; parallel = true })
              vars decl.extents
          in
          let idx = List.map (fun v -> Ir.av v) vars in
          {
            Ir.nid = "copy_" ^ a;
            levels;
            body =
              [
                Ir.stmt (Ir.aref (copy_name a) idx) (Ir.Read (Ir.aref a idx));
              ];
          })
        copied_arrays
    in
    let main = current_prog () in
    let prog =
      {
        Ir.pname = p.pname ^ "+alignrep";
        decls = main.Ir.decls;
        nests = copy_nests @ main.Ir.nests;
      }
    in
    Ir.validate prog;
    Ok
      {
        prog;
        ncopies = List.length copy_nests;
        shifts = !shifts;
        copied_arrays;
        replicated_stmts = !nreplicas;
        rounds = !rounds;
      }
  with
  | Unsupported m -> Error m
  | Ir.Invalid m -> Error ("invalid transformed program: " ^ m)

(* Check that the transformed main nests are synchronization-free under
   the alignment: every remaining inter-nest dependence must have an
   effective distance of zero.  (Dependence analysis ignores guards, so
   this check is conservative.) *)
let verify_sync_free (r : result) =
  let main =
    {
      r.prog with
      Ir.nests = List.filteri (fun i _ -> i >= r.ncopies) r.prog.nests;
    }
  in
  let g = Dep.build ~depth:1 main in
  let bad =
    List.filter
      (fun (e : Dep.edge) ->
        match e.dist with
        | Dist d -> d.(0) + r.shifts.(e.dst) - r.shifts.(e.src) <> 0
        | Not_uniform _ -> true)
      g.edges
  in
  if bad = [] then Ok ()
  else
    Error
      (Fmt.str "%d residual loop-carried dependences, e.g. %a"
         (List.length bad) Dep.pp_edge (List.hd bad))

(* Schedule: each copy nest is its own parallel phase, then the aligned
   main nests execute as one synchronization-free fused phase (no
   peeling, no post-barrier work). *)
let schedule ?grid ?strip ~nprocs (r : result) =
  let main_count = List.length r.prog.nests - r.ncopies in
  let derive =
    {
      Derive.depth = 1;
      nnests = main_count;
      shift = Array.init main_count (fun k -> [| r.shifts.(k) |]);
      peel = Array.make main_count [| 0 |];
    }
  in
  let copies =
    {
      r.prog with
      Ir.nests = List.filteri (fun i _ -> i < r.ncopies) r.prog.nests;
    }
  in
  let main =
    {
      r.prog with
      Ir.nests = List.filteri (fun i _ -> i >= r.ncopies) r.prog.nests;
    }
  in
  let copy_sched =
    if r.ncopies = 0 then []
    else (Schedule.unfused ?grid ~nprocs copies).Schedule.phases
  in
  let main_sched =
    Schedule.fused ?grid ?strip ~peel_starts:false ~derive ~nprocs main
  in
  let offset_phase ph =
    Array.map
      (List.map (fun (b : Schedule.box) ->
           { b with Schedule.nest = b.nest + r.ncopies }))
      ph
  in
  {
    main_sched with
    Schedule.prog = r.prog;
    phases = copy_sched @ List.map offset_phase main_sched.Schedule.phases;
    labels =
      List.mapi (fun i _ -> Printf.sprintf "copy%d" i) copy_sched
      @ main_sched.Schedule.labels;
  }
