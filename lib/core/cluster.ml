(* Fusion clustering: partition a long loop sequence into maximal
   groups of adjacent nests that shift-and-peel can legally fuse, and
   build the corresponding schedule (one fused phase per group, the
   original barriers between groups).

   Real applications interleave fusable stencil nests with loops the
   technique cannot handle (non-uniform subscripts, serial loops,
   mismatched nesting depth); the paper's prototype applies the
   transformation to each amenable sequence (Table 1 counts them).
   This module automates the grouping, optionally consulting the
   profitability estimate so fusion is skipped where it cannot pay. *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep

type group = {
  start : int;  (* index of the first nest in the program *)
  members : int;  (* number of consecutive nests *)
  fused : bool;  (* whether the group is worth fusing *)
  why : string;  (* reason the group ended / was not fused *)
}

(* Candidate check: can nests [start, start+members) be fused with
   shift-and-peel at [depth]? *)
let fusable_slice (p : Ir.program) ~depth ~start ~members =
  let nests =
    List.filteri (fun i _ -> i >= start && i < start + members) p.Ir.nests
  in
  let slice = { p with Ir.nests = nests } in
  if
    List.exists
      (fun (n : Ir.nest) ->
        List.length n.Ir.levels < depth
        || List.exists
             (fun (l : Ir.level) -> not l.Ir.parallel)
             (List.filteri (fun d _ -> d < depth) n.Ir.levels))
      nests
  then Error "a nest lacks parallel levels at the fusion depth"
  else
    match Dep.verify_program slice with
    | Error m -> Error m
    | Ok () -> (
      match Derive.of_program ~depth slice with
      | exception Derive.Not_applicable m -> Error m
      | _ -> Ok slice)

(* Greedy maximal grouping: extend the current group while the slice
   stays fusable; [min_members] groups smaller than this are left
   unfused (fusing a single nest is a no-op). *)
let groups ?(depth = 1) ?(min_members = 2) ?profitable (p : Ir.program) =
  let n = List.length p.Ir.nests in
  let out = ref [] in
  let start = ref 0 in
  while !start < n do
    let members = ref 1 in
    let stop_reason = ref "end of sequence" in
    let continue_ = ref true in
    (* a single nest that is itself unfusable (e.g. serial) still forms
       its own group *)
    (match fusable_slice p ~depth ~start:!start ~members:1 with
    | Error m ->
      continue_ := false;
      stop_reason := m
    | Ok _ -> ());
    while !continue_ && !start + !members < n do
      match fusable_slice p ~depth ~start:!start ~members:(!members + 1) with
      | Ok _ -> incr members
      | Error m ->
        stop_reason := m;
        continue_ := false
    done;
    let fusable = !members >= min_members in
    let fused =
      fusable
      &&
      match profitable with
      | None -> true
      | Some f ->
        let slice =
          {
            p with
            Ir.nests =
              List.filteri
                (fun i _ -> i >= !start && i < !start + !members)
                p.Ir.nests;
          }
        in
        f slice
    in
    let why =
      if fused then "fused"
      else if fusable then "fusable but not profitable"
      else !stop_reason
    in
    out := { start = !start; members = !members; fused; why } :: !out;
    start := !start + !members
  done;
  List.rev !out

(* Build the clustered schedule: fused groups become shift-and-peel
   phases; everything else runs unfused. *)
let schedule ?(depth = 1) ?grid ?strip ~nprocs (p : Ir.program) gs =
  let all_phases = ref [] in
  let all_labels = ref [] in
  List.iteri
    (fun gi g ->
      let nests =
        List.filteri
          (fun i _ -> i >= g.start && i < g.start + g.members)
          p.Ir.nests
      in
      let slice = { p with Ir.nests } in
      let labels =
        if g.fused && g.members > 1 then
          List.map
            (fun l -> Printf.sprintf "g%d:%s" gi l)
            (Schedule.fused ?grid ?strip ~nprocs slice).Schedule.labels
        else List.map (fun (n : Ir.nest) -> n.Ir.nid) nests
      in
      let phases =
        if g.fused && g.members > 1 then
          (Schedule.fused ?grid ?strip ~nprocs slice).Schedule.phases
        else
          (* a nest whose outer level is not a parallel doall must not
             be block-partitioned: it runs serially on processor 0 *)
          List.mapi
            (fun idx (n : Ir.nest) ->
              let serial =
                (not (List.hd n.Ir.levels).Ir.parallel)
                || Dep.verify_doall n <> Ok ()
              in
              if serial then
                Array.init nprocs (fun proc ->
                    if proc = 0 then
                      [
                        {
                          Schedule.nest = idx;
                          ranges =
                            Array.of_list
                              (List.map
                                 (fun (l : Ir.level) -> (l.Ir.lo, l.Ir.hi))
                                 n.Ir.levels);
                        };
                      ]
                    else [])
              else
                (Schedule.unfused ?grid ~depth ~nprocs
                   { slice with Ir.nests = [ n ] })
                  .Schedule.phases
                |> List.hd
                |> Array.map
                     (List.map (fun (b : Schedule.box) ->
                          { b with Schedule.nest = idx })))
            nests
      in
      (* renumber nest indices into the full program's numbering *)
      let offset ph =
        Array.map
          (List.map (fun (b : Schedule.box) ->
               { b with Schedule.nest = b.Schedule.nest + g.start }))
          ph
      in
      all_phases := !all_phases @ List.map offset phases;
      all_labels := !all_labels @ labels)
    gs;
  {
    Schedule.prog = p;
    nprocs;
    grid =
      (match grid with
      | Some g -> g
      | None -> Schedule.balanced_grid ~nprocs ~depth);
    phases = !all_phases;
    labels = !all_labels;
  }

let pp_groups ppf gs =
  List.iter
    (fun g ->
      Fmt.pf ppf "nests %d..%d: %s@." g.start
        (g.start + g.members - 1)
        g.why)
    gs
