(* Array memory layout: contiguous placement, intra-array padding (the
   ad-hoc baseline of §4), and cache partitioning (paper Figure 19).

   Cache partitioning divides the cache's set-index span into [na]
   non-overlapping partitions, one per array, and inserts gaps between
   arrays in memory so that each array's start address maps to the start
   of a distinct partition.  For compatible references (same stride and
   direction) the partitions then never overlap during execution, so
   cross-conflicts cannot occur. *)

module Ir = Lf_ir.Ir

type placement = {
  name : string;
  start : int;  (* byte address of element 0 *)
  aextents : int array;  (* addressing extents (>= logical extents) *)
}

type layout = {
  elem_bytes : int;
  placements : (string * placement) list;
  total_bytes : int;
}

let find_placement l name =
  match List.assoc_opt name l.placements with
  | Some p -> p
  | None -> invalid_arg ("Partition.find_placement: unknown array " ^ name)

(* Byte address of the element at row-major [index]. *)
let address l name index =
  let p = find_placement l name in
  let flat = ref 0 in
  Array.iteri (fun d v -> flat := (!flat * p.aextents.(d)) + v) index;
  p.start + (!flat * l.elem_bytes)

let array_bytes l p = Array.fold_left ( * ) l.elem_bytes p.aextents

(* Total bytes lost to padding and gaps relative to dense placement. *)
let overhead_bytes l (decls : Ir.decl list) =
  let dense =
    List.fold_left (fun acc d -> acc + (Ir.num_elements d * l.elem_bytes)) 0 decls
  in
  l.total_bytes - dense

let align_up x a = (x + a - 1) / a * a

(* ------------------------------------------------------------------ *)
(* Contiguous and padded layouts                                       *)

(* Fingerprint of default-layout construction: a Sim.request with
   [layout = None] materialises [contiguous] at run time, so only those
   requests depend on this module — explicit layouts serialise their
   placements into the request and survive a bump here.  No spaces. *)
let version = "lf-partition-1"

(* Arrays one after another in declaration order, each start aligned to
   [align] bytes (typically the cache line size). *)
let contiguous ?(elem_bytes = 8) ?(align = 64) (decls : Ir.decl list) =
  let q = ref 0 in
  let placements =
    List.map
      (fun (d : Ir.decl) ->
        let start = align_up !q align in
        let aextents = Array.of_list d.extents in
        let size = Array.fold_left ( * ) elem_bytes aextents in
        q := start + size;
        (d.aname, { name = d.aname; start; aextents }))
      decls
  in
  { elem_bytes; placements; total_bytes = !q }

(* Pad the innermost (storage-order) dimension of every array by [pad]
   elements; the classic technique to perturb cache mappings (§4). *)
let padded ?(elem_bytes = 8) ?(align = 64) ~pad (decls : Ir.decl list) =
  if pad < 0 then invalid_arg "Partition.padded: negative pad";
  let q = ref 0 in
  let placements =
    List.map
      (fun (d : Ir.decl) ->
        let start = align_up !q align in
        let aextents = Array.of_list d.extents in
        let last = Array.length aextents - 1 in
        aextents.(last) <- aextents.(last) + pad;
        let size = Array.fold_left ( * ) elem_bytes aextents in
        q := start + size;
        (d.aname, { name = d.aname; start; aextents }))
      decls
  in
  { elem_bytes; placements; total_bytes = !q }

(* ------------------------------------------------------------------ *)
(* Cache partitioning (Figure 19)                                      *)

type cache_shape = {
  capacity : int;  (* bytes *)
  line : int;  (* bytes *)
  assoc : int;  (* 1 = direct-mapped *)
}

(* The set-index span: addresses [q] and [q + span] map to the same
   cache set. *)
let cache_span c = c.capacity / c.assoc

let cache_map c q = q mod cache_span c

(* Greedy memory layout (Figure 19): partition size s_p = capacity / na;
   arrays are placed in declaration order; each is assigned the still-
   available partition that minimises the gap inserted before it.  For a
   set-associative cache, partition p targets set address
   (p / assoc) * s_p, exploiting the fact that [assoc] arrays can share
   a set region without conflicting (§4). *)
let cache_partitioned ?(elem_bytes = 8) ~cache:(c : cache_shape)
    (decls : Ir.decl list) =
  let na = List.length decls in
  if na = 0 then { elem_bytes; placements = []; total_bytes = 0 }
  else begin
    let span = cache_span c in
    let sp = c.capacity / na in
    let sp = max c.line (sp / c.line * c.line) in
    let target p = p / c.assoc * sp mod span in
    let available = ref (List.init na (fun i -> i)) in
    let q = ref 0 in
    let placements =
      List.map
        (fun (d : Ir.decl) ->
          let mapped = cache_map c !q in
          let gap_of p =
            let g = target p - mapped in
            if g < 0 then g + span else g
          in
          let popt =
            List.fold_left
              (fun best p ->
                match best with
                | None -> Some p
                | Some b -> if gap_of p < gap_of b then Some p else best)
              None !available
          in
          let popt = match popt with Some p -> p | None -> assert false in
          available := List.filter (fun p -> p <> popt) !available;
          let start = !q + gap_of popt in
          let aextents = Array.of_list d.extents in
          let size = Array.fold_left ( * ) elem_bytes aextents in
          q := start + size;
          (d.aname, { name = d.aname; start; aextents }))
        decls
    in
    { elem_bytes; placements; total_bytes = !q }
  end

(* Partition size for a set of [na] arrays: the upper bound on the
   per-array data footprint of one strip (used to choose the
   strip-mining factor, §3.4/§4). *)
let partition_size ~cache:(c : cache_shape) ~narrays =
  if narrays <= 0 then c.capacity else c.capacity / narrays

(* Largest strip size such that [rows_per_iter] rows of [row_elems]
   elements each stay within one partition. *)
let max_strip ?(elem_bytes = 8) ~cache ~narrays ~row_elems ~rows_per_iter () =
  let sp = partition_size ~cache ~narrays in
  let per_strip_row = row_elems * elem_bytes * rows_per_iter in
  if per_strip_row <= 0 then 1 else max 1 (sp / per_strip_row)

(* ------------------------------------------------------------------ *)
(* Compatibility check (§4): references to two arrays are compatible
   when their subscript mappings h_A of the loop indices coincide; then
   conflict-free starting addresses stay conflict-free throughout. *)

let ref_mapping (r : Ir.aref) =
  List.map (fun (a : Ir.affine) -> List.sort compare a.terms) r.index

let compatible_refs (r1 : Ir.aref) (r2 : Ir.aref) =
  List.length r1.index = List.length r2.index
  && List.for_all2 ( = ) (ref_mapping r1) (ref_mapping r2)

(* All references of a program pairwise compatible per array pair
   (arrays of equal rank only). *)
let program_compatible (p : Ir.program) =
  let refs = List.concat_map Ir.nest_refs p.nests in
  let ok = ref true in
  List.iter
    (fun (r1 : Ir.aref) ->
      List.iter
        (fun (r2 : Ir.aref) ->
          if
            List.length r1.index = List.length r2.index
            && not (compatible_refs r1 r2)
          then ok := false)
        refs)
    refs;
  !ok
