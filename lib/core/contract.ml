(* Array contraction after fusion.

   Warren's fusion work (paper §2.4) is motivated by contracting
   temporary arrays once producer and consumer live in the same loop
   body.  After direct fusion of a sequence whose inter-nest
   dependences are all loop-independent (zero distance in every
   dimension), a temporary that is not live-out is produced and
   consumed within one iteration: its inner dimensions can be
   contracted away, shrinking an n x m array to a single row of n cells
   (one per fused iteration, so the contraction stays safe under
   block-parallel execution of the fused dimension). *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep

type analysis = {
  contractible : string list;  (* temporaries eligible for contraction *)
  bytes_before : int;
  bytes_after : int;
}

let full_depth (p : Ir.program) =
  match p.Ir.nests with
  | [] -> 0
  | n :: _ -> List.length n.Ir.levels

(* All inter-nest dependences must be loop-independent for direct
   fusion to be legal and the fused nest to stay parallel. *)
let direct_fusable (p : Ir.program) =
  let depth = full_depth p in
  if
    not
      (List.for_all
         (fun (n : Ir.nest) -> List.length n.Ir.levels = depth)
         p.Ir.nests)
  then Error "nests have different depths"
  else if
    not
      (List.for_all
         (fun (n : Ir.nest) ->
           List.for_all2
             (fun (a : Ir.level) (b : Ir.level) ->
               a.Ir.lo = b.Ir.lo && a.Ir.hi = b.Ir.hi
               && String.equal a.Ir.lvar b.Ir.lvar)
             n.Ir.levels (List.hd p.Ir.nests).Ir.levels)
         p.Ir.nests)
  then Error "nests have different iteration spaces"
  else begin
    let g = Dep.build ~depth p in
    let bad =
      List.find_opt
        (fun (e : Dep.edge) ->
          match e.Dep.dist with
          | Dep.Not_uniform _ -> true
          | Dep.Dist d -> Array.exists (fun x -> x <> 0) d)
        g.Dep.edges
    in
    match bad with
    | Some e ->
      Error (Fmt.str "loop-carried dependence: %a" Dep.pp_edge e)
    | None -> Ok g
  end

(* A temporary is contractible when it is written, not live-out, and
   every dependence touching it is loop-independent (guaranteed here by
   [direct_fusable]); by convention arrays never written (inputs) are
   not contracted either. *)
let analyse ?(elem_bytes = 8) ~live_out (p : Ir.program) =
  match direct_fusable p with
  | Error m -> Error m
  | Ok _ ->
    let written =
      List.concat_map
        (fun (n : Ir.nest) ->
          List.map (fun (s : Ir.stmt) -> s.Ir.lhs.Ir.array) n.Ir.body)
        p.Ir.nests
      |> List.sort_uniq String.compare
    in
    let contractible =
      List.filter (fun a -> not (List.mem a live_out)) written
    in
    let bytes (d : Ir.decl) = elem_bytes * Ir.num_elements d in
    let bytes_before =
      List.fold_left (fun acc d -> acc + bytes d) 0 p.Ir.decls
    in
    let bytes_after =
      List.fold_left
        (fun acc (d : Ir.decl) ->
          if List.mem d.Ir.aname contractible then
            acc
            + elem_bytes
              * (match d.Ir.extents with e0 :: _ -> e0 | [] -> 1)
          else acc + bytes d)
        0 p.Ir.decls
    in
    Ok { contractible; bytes_before; bytes_after }

(* Rewrite a reference to a contracted array: keep the fused (first)
   subscript, zero the inner ones. *)
let contract_ref contracted (r : Ir.aref) =
  if not (List.mem r.Ir.array contracted) then r
  else
    {
      r with
      Ir.index =
        List.mapi (fun d a -> if d = 0 then a else Ir.ac 0) r.Ir.index;
    }

let rec contract_expr contracted (e : Ir.expr) =
  match e with
  | Const _ -> e
  | Read r -> Ir.Read (contract_ref contracted r)
  | Neg e -> Ir.Neg (contract_expr contracted e)
  | Bin (op, a, b) ->
    Ir.Bin (op, contract_expr contracted a, contract_expr contracted b)

let contract_stmt contracted (s : Ir.stmt) =
  {
    s with
    Ir.lhs = contract_ref contracted s.Ir.lhs;
    rhs = contract_expr contracted s.Ir.rhs;
  }

(* Direct-fuse the sequence into a single nest and contract the inner
   dimensions of every eligible temporary. *)
let contract ?(elem_bytes = 8) ~live_out (p : Ir.program) =
  match analyse ~elem_bytes ~live_out p with
  | Error m -> Error m
  | Ok a ->
    let first = List.hd p.Ir.nests in
    let body =
      List.concat_map
        (fun (n : Ir.nest) ->
          List.map (contract_stmt a.contractible) n.Ir.body)
        p.Ir.nests
    in
    let decls =
      List.map
        (fun (d : Ir.decl) ->
          if List.mem d.Ir.aname a.contractible then
            {
              d with
              Ir.extents =
                List.mapi
                  (fun k e -> if k = 0 then e else 1)
                  d.Ir.extents;
            }
          else d)
        p.Ir.decls
    in
    let q =
      {
        Ir.pname = p.Ir.pname ^ "+contract";
        decls;
        nests = [ { first with Ir.nid = "fused"; body } ];
      }
    in
    Ir.validate q;
    Ok (q, a)
