(* Profitability of fusion (paper §5 discussion and §6 conclusion).

   The measurements in the paper show the benefit of fusion diminishing
   as processors are added: once the per-processor portion of the data
   fits in its cache, the unfused loops already reuse data across nests
   through the cache, and the overhead of the transformation (extra
   barrier bookkeeping, peeled iterations, strip-mining control) makes
   the fused version slower.  The compiler should therefore evaluate
   profitability from the data size and the cache size. *)

module Ir = Lf_ir.Ir

type estimate = {
  data_bytes : int;  (* total bytes of all arrays in the sequence *)
  per_proc_bytes : int;  (* data referenced by one processor's block *)
  cache_bytes : int;
  fits_in_cache : bool;
  profitable : bool;
  ratio : float;  (* per-processor data / cache capacity *)
}

(* [estimate p ~nprocs ~cache_bytes ~elem_bytes] assumes block
   scheduling of the outermost loop, so each processor touches roughly
   1/nprocs of every array referenced in the sequence. *)
let estimate ?(elem_bytes = 8) ~nprocs ~cache_bytes (p : Ir.program) =
  let arrays = Ir.program_arrays p in
  let data_bytes =
    List.fold_left
      (fun acc name -> acc + (Ir.num_elements (Ir.find_decl p name) * elem_bytes))
      0 arrays
  in
  let per_proc_bytes = data_bytes / max 1 nprocs in
  let fits = per_proc_bytes <= cache_bytes in
  {
    data_bytes;
    per_proc_bytes;
    cache_bytes;
    fits_in_cache = fits;
    profitable = not fits;
    ratio = float_of_int per_proc_bytes /. float_of_int cache_bytes;
  }

(* Largest processor count for which fusion is still expected to be
   profitable for this sequence.  [estimate] declares P processors
   profitable iff floor(data/P) > cache, i.e. iff P <= data/(cache+1),
   so the answer is floor(data/(cache+1)).  The boundary matters: when
   the data is an exact multiple k of the cache size, P = k gives
   per_proc_bytes = cache_bytes exactly, which *fits* (the unfused
   loops already reuse through the cache), so the result is k-1, not k.
   Degenerate programs (no arrays, zero data bytes) yield 0: fusion is
   never profitable, consistent with [estimate ~nprocs:1]. *)
let max_profitable_procs ?(elem_bytes = 8) ~cache_bytes (p : Ir.program) =
  if cache_bytes <= 0 then
    invalid_arg "Profit.max_profitable_procs: cache_bytes must be positive";
  let e = estimate ~elem_bytes ~nprocs:1 ~cache_bytes p in
  e.data_bytes / (cache_bytes + 1)

let pp ppf e =
  Fmt.pf ppf
    "data %d bytes, per-proc %d bytes, cache %d bytes: %s (ratio %.2f)"
    e.data_bytes e.per_proc_bytes e.cache_bytes
    (if e.profitable then "fusion profitable" else "fusion not profitable")
    e.ratio
