(** Classical fusion legality (paper §2.2): what plain fusion — the
    prior techniques of Warren and Kennedy & McKinley — can do without
    shift-and-peel.  Plain fusion is illegal under backward loop-carried
    dependences (Figure 3) and loses parallelism under forward ones
    (Figure 4). *)

type verdict =
  | Fusable_parallel
      (** no dependence becomes loop-carried: plain fusion keeps the
          loops parallel *)
  | Fusable_serial of string
      (** legal, but a forward loop-carried dependence serializes the
          fused loop (Figure 4) *)
  | Fusion_preventing of string
      (** a backward loop-carried dependence makes fusion illegal
          (Figure 3) *)
  | Not_analyzable of string  (** non-uniform dependence *)

val verdict_to_string : verdict -> string

val classify : ?depth:int -> Lf_ir.Ir.program -> verdict
(** Classify plain (unshifted, unpeeled) fusion of the outermost
    [depth] dimensions. *)

type witness = {
  w_verdict : verdict;
  w_edge : Lf_dep.Dep.edge option;
      (** the dependence edge that decided the verdict; [None] for
          {!Fusable_parallel} *)
}

val classify_witness : ?depth:int -> Lf_ir.Ir.program -> witness
(** Like {!classify}, but keeps the deciding dependence edge so callers
    can name the offending dependence in typed errors (lib/script). *)

val shift_and_peel_applicable :
  ?depth:int -> Lf_ir.Ir.program -> (unit, string) result
(** Shift-and-peel's own applicability: uniform inter-nest dependences
    and verified-parallel nests. *)
