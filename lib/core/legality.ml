(* Classical fusion legality (paper §2.2): without shift-and-peel,
   fusion is legal only if no resulting loop-carried dependence flows
   backwards, and the fused loop stays parallel only if no dependence
   becomes loop-carried at all.  This classifier reproduces the
   capabilities of the prior techniques the paper contrasts against
   (Warren; Kennedy & McKinley), which reject exactly the kernels
   shift-and-peel handles. *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep

type verdict =
  | Fusable_parallel
      (** no dependence becomes loop-carried: plain fusion keeps the
          loops parallel *)
  | Fusable_serial of string
      (** fusion is legal but a forward loop-carried dependence
          serializes the fused loop (Figure 4) *)
  | Fusion_preventing of string
      (** a backward loop-carried dependence makes fusion illegal
          (Figure 3) *)
  | Not_analyzable of string  (** non-uniform dependence *)

let verdict_to_string = function
  | Fusable_parallel -> "fusable, parallelism preserved"
  | Fusable_serial m -> "fusable but serialized: " ^ m
  | Fusion_preventing m -> "fusion-preventing dependence: " ^ m
  | Not_analyzable m -> "not analyzable: " ^ m

type witness = {
  w_verdict : verdict;
  w_edge : Dep.edge option;
      (** the dependence edge that decided the verdict (the first
          backward edge for [Fusion_preventing], the first forward edge
          for [Fusable_serial], the first non-uniform edge for
          [Not_analyzable]; [None] for [Fusable_parallel]) *)
}

(* Classify plain (unshifted, unpeeled) fusion of the outermost [depth]
   dimensions, keeping the deciding edge so callers (lib/script) can
   name the offending dependence in typed errors. *)
let classify_witness ?(depth = 1) (p : Ir.program) =
  let g = Dep.build ~depth p in
  match Dep.not_uniform_edges g with
  | e :: _ ->
    { w_verdict = Not_analyzable (Fmt.str "%a" Dep.pp_edge e); w_edge = Some e }
  | [] ->
    let backward = ref None and forward = ref None in
    List.iter
      (fun (e : Dep.edge) ->
        (* lexicographic sign over the fused dimensions *)
        match Dep.dist_sign e.Dep.dist with
        | Some (-1) -> if !backward = None then backward := Some e
        | Some 1 -> if !forward = None then forward := Some e
        | _ -> ())
      g.Dep.edges;
    (match (!backward, !forward) with
    | Some e, _ ->
      {
        w_verdict = Fusion_preventing (Fmt.str "%a" Dep.pp_edge e);
        w_edge = Some e;
      }
    | None, Some e ->
      { w_verdict = Fusable_serial (Fmt.str "%a" Dep.pp_edge e); w_edge = Some e }
    | None, None -> { w_verdict = Fusable_parallel; w_edge = None })

let classify ?depth p = (classify_witness ?depth p).w_verdict

(* Can shift-and-peel handle the sequence?  It requires only uniform
   dependences and parallel nests (§3.5, Theorem 1). *)
let shift_and_peel_applicable ?(depth = 1) (p : Ir.program) =
  match Dep.verify_program p with
  | Error m -> Error m
  | Ok () -> (
    match Derive.of_program ~depth p with
    | exception Derive.Not_applicable m -> Error m
    | _ -> Ok ())
