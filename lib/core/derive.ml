(* Derivation of shift and peel amounts (paper §3.3, Figures 8-10).

   For each fused dimension, the dependence chain multigraph is reduced
   to a simple graph (minimum edge weight for shifting, maximum for
   peeling) and the Figure 8 propagation visits vertices in program
   order (which is a topological order of the acyclic inter-nest
   dependence graph), accumulating shifts along chains of
   backward-distance edges and peels along chains of forward-distance
   edges. *)

module Ir = Lf_ir.Ir

type t = {
  depth : int;
  nnests : int;
  shift : int array array;  (* [nest].(dim): amount to delay nest, >= 0 *)
  peel : int array array;  (* [nest].(dim): forward-dependence peel, >= 0 *)
}

(* Start-of-block iterations to peel for a nest/dim: shifting moves
   [shift] sink iterations into the adjacent block and the original
   forward dependences account for [peel] more (paper §3.5). *)
let start_peel d ~nest ~dim = d.shift.(nest).(dim) + d.peel.(nest).(dim)

(* Iteration count threshold N_t of Definition 6: every block must have
   at least this many iterations in each fused dimension. *)
let threshold d ~dim =
  let m = ref 0 in
  for k = 0 to d.nnests - 1 do
    m := max !m (start_peel d ~nest:k ~dim)
  done;
  !m

let max_shift d =
  Array.fold_left (fun m row -> Array.fold_left max m row) 0 d.shift

let max_peel d =
  Array.fold_left (fun m row -> Array.fold_left max m row) 0 d.peel

(* Reduce the multigraph to a simple weighted graph: one edge per nest
   pair, weight given by [reduce] over the dimension-[dim] components of
   all uniform edges between the pair (paper: min for shifts, max for
   peels). *)
let reduce_graph (g : Lf_dep.Dep.multigraph) ~dim ~reduce =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, w) ->
      let key = (src, dst) in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key w
      | Some w' -> Hashtbl.replace tbl key (reduce w w'))
    (Lf_dep.Dep.dim_weights g ~dim);
  tbl

(* Figure 8 traversal specialised by [select] (which edge weights
   contribute) and [combine] (min for shifts / max for peels). *)
let propagate ~nnests ~edges ~select ~combine =
  let weight = Array.make nnests 0 in
  for v = 0 to nnests - 1 do
    Hashtbl.iter
      (fun (src, dst) w ->
        if src = v then
          let contribution =
            if select w then weight.(v) + w else weight.(v)
          in
          weight.(dst) <- combine weight.(dst) contribution)
      edges
  done;
  weight

exception Not_applicable of string

(* Derive shift and peel vectors for fusing the outermost
   [g.depth] dimensions described by multigraph [g]. *)
let of_multigraph (g : Lf_dep.Dep.multigraph) =
  (match Lf_dep.Dep.not_uniform_edges g with
  | [] -> ()
  | e :: _ ->
    raise
      (Not_applicable
         (Fmt.str "non-uniform dependence: %a" Lf_dep.Dep.pp_edge e)));
  let nnests = g.nnests in
  let shift = Array.make_matrix nnests g.depth 0 in
  let peel = Array.make_matrix nnests g.depth 0 in
  for dim = 0 to g.depth - 1 do
    let min_edges = reduce_graph g ~dim ~reduce:min in
    let shifts =
      propagate ~nnests ~edges:min_edges ~select:(fun w -> w < 0)
        ~combine:min
    in
    let max_edges = reduce_graph g ~dim ~reduce:max in
    let peels =
      propagate ~nnests ~edges:max_edges ~select:(fun w -> w > 0)
        ~combine:max
    in
    for k = 0 to nnests - 1 do
      shift.(k).(dim) <- -shifts.(k);
      peel.(k).(dim) <- peels.(k)
    done
  done;
  { depth = g.depth; nnests; shift; peel }

let of_program ?(depth = 1) (p : Ir.program) =
  of_multigraph (Lf_dep.Dep.build ~depth p)

(* Fingerprint of the shift/peel derivation (this module plus the
   lf_dep multigraph construction it consumes).  Only Fused-variant
   Sim.requests depend on it: bumping it invalidates their persisted
   results and nobody else's.  No spaces. *)
let version = "lf-derive-1"

let pp ppf d =
  Fmt.pf ppf "loop  shifts       peels@.";
  for k = 0 to d.nnests - 1 do
    Fmt.pf ppf "%4d  %-12s %s@." (k + 1)
      (Fmt.str "%a" Fmt.(array ~sep:(any ",") int) d.shift.(k))
      (Fmt.str "%a" Fmt.(array ~sep:(any ",") int) d.peel.(k))
  done
