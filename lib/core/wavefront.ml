(* Wavefront scheduling: the alternative to peeling.

   The paper's shift-and-peel removes serializing dependences so the
   fused loop runs with a single barrier.  The alternative the authors
   explore in their companion work ([21] in the paper) is to keep the
   forward dependences and schedule the fused iteration space as a
   wavefront: tile the (shifted) fused space, note that after shifting
   every dependence distance is non-negative in every dimension, so
   tile (a, b) depends only on tiles with both coordinates <= — all
   tiles on an anti-diagonal are independent and can run in parallel,
   with a barrier between diagonals.

   For 1-D fusion the wavefront degenerates to a serial tile chain
   (which is exactly why peeling matters there); for 2-D it recovers
   partial parallelism at the cost of many barriers and pipeline
   fill/drain — the trade-off the ablation bench measures. *)

module Ir = Lf_ir.Ir

(* Build the wavefront schedule for the fused loops of [p] with the
   shifts of [derive] (peels are ignored — no peeling happens).
   [tile] is the tile edge in fused positions, for every dimension. *)
let schedule ?(tile = 32) ?derive ~nprocs (p : Ir.program) =
  let d = match derive with Some d -> d | None -> Derive.of_program p in
  let depth = d.Derive.depth in
  if tile <= 0 then invalid_arg "Wavefront.schedule: tile <= 0";
  let geo = Schedule.geometry p d in
  let nests = Array.of_list p.Ir.nests in
  let nnests = Array.length nests in
  (* tile counts per dimension *)
  let ntiles =
    Array.init depth (fun dim ->
        let len = geo.Schedule.g_hi.(dim) - geo.Schedule.g_lo.(dim) + 1 in
        (len + tile - 1) / tile)
  in
  let inner_ranges k =
    let n = nests.(k) in
    let all =
      Array.of_list (List.map (fun (l : Ir.level) -> (l.Ir.lo, l.Ir.hi)) n.Ir.levels)
    in
    Array.sub all depth (Array.length all - depth)
  in
  (* boxes of one tile (coordinates c, per dim) *)
  let tile_boxes (c : int array) =
    let boxes = ref [] in
    for k = 0 to nnests - 1 do
      let fr =
        Array.init depth (fun dim ->
            let t0 = geo.Schedule.g_lo.(dim) + (c.(dim) * tile) in
            let t1 = min geo.Schedule.g_hi.(dim) (t0 + tile - 1) in
            let s = d.Derive.shift.(k).(dim) in
            ( max (t0 - s) geo.Schedule.nest_lo.(k).(dim),
              min (t1 - s) geo.Schedule.nest_hi.(k).(dim) ))
      in
      let b = { Schedule.nest = k; ranges = Array.append fr (inner_ranges k) } in
      if not (Schedule.box_is_empty b) then boxes := b :: !boxes
    done;
    List.rev !boxes
  in
  (* enumerate tiles by anti-diagonal (sum of coordinates) *)
  let max_diag = Array.fold_left (fun acc n -> acc + (n - 1)) 0 ntiles in
  let rec tiles_on_diagonal dim remaining prefix =
    if dim = depth then if remaining = 0 then [ Array.of_list (List.rev prefix) ] else []
    else
      List.concat_map
        (fun c ->
          if c <= remaining then tiles_on_diagonal (dim + 1) (remaining - c) (c :: prefix)
          else [])
        (List.init ntiles.(dim) (fun i -> i))
  in
  let phases = ref [] in
  for diag = 0 to max_diag do
    let tiles = tiles_on_diagonal 0 diag [] in
    if tiles <> [] then begin
      let phase = Array.make nprocs [] in
      List.iteri
        (fun i c ->
          let proc = i mod nprocs in
          phase.(proc) <- phase.(proc) @ tile_boxes c)
        tiles;
      phases := phase :: !phases
    end
  done;
  let phases = List.rev !phases in
  {
    Schedule.prog = p;
    nprocs;
    grid = [| nprocs |];
    phases;
    labels = List.mapi (fun i _ -> Printf.sprintf "wave%d" i) phases;
  }

(* Number of barrier-separated phases (diagonals) in the wavefront. *)
let num_phases t = List.length t.Schedule.phases
