(** Derivation of shift and peel amounts (paper §3.3, Figures 8-10).

    Per fused dimension, the dependence chain multigraph is reduced to
    a simple graph (minimum edge weight for shifting, maximum for
    peeling) and the Figure 8 propagation visits vertices in program
    order, accumulating shifts along backward-distance chains and peels
    along forward-distance chains. *)

type t = {
  depth : int;  (** number of fused dimensions *)
  nnests : int;
  shift : int array array;  (** [shift.(nest).(dim)]: delay, >= 0 *)
  peel : int array array;  (** [peel.(nest).(dim)]: forward-dep peel *)
}

val start_peel : t -> nest:int -> dim:int -> int
(** Iterations to skip at the start of each interior block for this
    nest/dimension: [shift + peel] — shifting moves [shift] sink
    iterations into the adjacent block and the original forward
    dependences account for [peel] more (paper §3.5). *)

val threshold : t -> dim:int -> int
(** Iteration count threshold [N_t] (Definition 6): every block must
    have at least this many iterations in the dimension. *)

val max_shift : t -> int
val max_peel : t -> int

exception Not_applicable of string
(** Raised when a dependence is not uniform. *)

val of_multigraph : Lf_dep.Dep.multigraph -> t

val of_program : ?depth:int -> Lf_ir.Ir.program -> t
(** Convenience: build the multigraph and derive. *)

val version : string
(** Fingerprint of the derivation's observable behaviour (including
    the {!Lf_dep.Dep} multigraph it consumes), folded into
    {!Lf_machine.Sim.digest} for fused-variant requests only.  Bump on
    any change to derived shift/peel amounts; no spaces. *)

val pp : Format.formatter -> t -> unit
