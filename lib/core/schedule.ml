(* Executable schedules: block-scheduled parallel execution of loop
   sequences, either unfused (one parallel phase per nest, a barrier
   between nests) or fused with shift-and-peel (one fused phase covering
   all nests strip-by-strip, a barrier, then the peeled iterations;
   paper §3.4, Figures 11, 12 and 16).

   A schedule is a list of phases separated by barriers; each phase
   assigns every processor an ordered list of boxes (rectangular
   iteration sub-spaces of one nest).  The same schedule is executed
   untimed here (for semantic verification against the reference
   interpreter) and by lf_machine with per-processor caches and a cycle
   cost model. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp

type box = {
  nest : int;  (* index into the program's nest list *)
  ranges : (int * int) array;  (* inclusive range per loop level *)
}

type phase = box list array  (* one work list per processor *)

type t = {
  prog : Ir.program;
  nprocs : int;
  grid : int array;  (* processor grid over the fused dimensions *)
  phases : phase list;
  labels : string list;  (* one human-readable label per phase *)
}

(* Label of phase [i], with a positional fallback for schedules built
   by hand (tests) or with fewer labels than phases. *)
let phase_label t i =
  match List.nth_opt t.labels i with
  | Some l -> l
  | None -> Printf.sprintf "phase%d" i

let phase_labels t =
  List.mapi (fun i _ -> phase_label t i) t.phases

let box_is_empty b = Array.exists (fun (lo, hi) -> lo > hi) b.ranges

let box_iterations b =
  Array.fold_left (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1)) 1 b.ranges

let phase_iterations ph =
  Array.fold_left
    (fun acc l -> acc + List.fold_left (fun a b -> a + box_iterations b) 0 l)
    0 ph

let total_iterations t =
  List.fold_left (fun acc ph -> acc + phase_iterations ph) 0 t.phases

(* ------------------------------------------------------------------ *)
(* Processor grids and block scheduling                                *)

(* Factor [nprocs] into [depth] balanced factors (largest factors in the
   leading dimensions), e.g. 12 over 2 dims -> [|4; 3|]. *)
let balanced_grid ~nprocs ~depth =
  if depth <= 0 then invalid_arg "Schedule.balanced_grid: depth <= 0";
  if nprocs <= 0 then invalid_arg "Schedule.balanced_grid: nprocs <= 0";
  let grid = Array.make depth 1 in
  let rem = ref nprocs in
  for d = depth - 1 downto 1 do
    (* largest divisor of rem not above rem^(1/dims-left) *)
    let dims_left = d + 1 in
    let target =
      int_of_float
        (Float.pow (float_of_int !rem) (1.0 /. float_of_int dims_left)
        +. 1e-9)
    in
    let f = ref (max 1 target) in
    while !rem mod !f <> 0 do
      decr f
    done;
    grid.(d) <- !f;
    rem := !rem / !f
  done;
  grid.(0) <- !rem;
  grid

(* Block [p] of [nprocs] over inclusive range [lo, hi].  Definition 5
   gives the whole remainder to the last processor; we balance it across
   the first (len mod nprocs) processors instead, so block sizes differ
   by at most one (what a production runtime does, and what keeps the
   per-phase maximum from being dominated by one oversized block). *)
let block ~lo ~hi ~nprocs ~p =
  let len = hi - lo + 1 in
  let size = len / nprocs in
  if size = 0 then invalid_arg "Schedule.block: more processors than iterations";
  let rem = len mod nprocs in
  let bstart = lo + (size * p) + min p rem in
  let bend = bstart + size - 1 + (if p < rem then 1 else 0) in
  (bstart, bend)

(* Grid cell coordinates of processor [p] in [grid] (row-major). *)
let cell_of_proc grid p =
  let depth = Array.length grid in
  let c = Array.make depth 0 in
  let rem = ref p in
  for d = depth - 1 downto 0 do
    c.(d) <- !rem mod grid.(d);
    rem := !rem / grid.(d)
  done;
  c

(* ------------------------------------------------------------------ *)
(* Unfused schedule: one parallel phase per nest                       *)

let level_ranges (n : Ir.nest) =
  Array.of_list (List.map (fun (l : Ir.level) -> (l.lo, l.hi)) n.levels)

let unfused ?grid ?(depth = 1) ~nprocs (p : Ir.program) =
  let grid =
    match grid with Some g -> g | None -> balanced_grid ~nprocs ~depth
  in
  if Array.fold_left ( * ) 1 grid <> nprocs then
    invalid_arg "Schedule.unfused: grid does not match nprocs";
  let nests = Array.of_list p.nests in
  let phase_of_nest k (n : Ir.nest) =
    ignore k;
    Array.init nprocs (fun proc ->
        let c = cell_of_proc grid proc in
        let ranges = level_ranges n in
        Array.iteri
          (fun d _ ->
            if d < Array.length grid then begin
              let lo, hi = ranges.(d) in
              ranges.(d) <- block ~lo ~hi ~nprocs:grid.(d) ~p:c.(d)
            end)
          ranges;
        let b = { nest = k; ranges } in
        if box_is_empty b then [] else [ b ])
  in
  {
    prog = p;
    nprocs;
    grid;
    phases = List.mapi phase_of_nest (Array.to_list nests);
    labels = List.map (fun (n : Ir.nest) -> n.nid) (Array.to_list nests);
  }

(* ------------------------------------------------------------------ *)
(* Fused schedule with shift-and-peel                                  *)

exception Illegal of string

(* Per-nest, per-dimension geometry of the fused execution. *)
type geometry = {
  g_lo : int array;  (* fused position space, per fused dim *)
  g_hi : int array;
  nest_lo : int array array;  (* [nest].(dim): original bounds *)
  nest_hi : int array array;
}

let geometry (p : Ir.program) (d : Derive.t) =
  let nests = Array.of_list p.nests in
  let nnests = Array.length nests in
  let depth = d.depth in
  let nest_lo = Array.make_matrix nnests depth 0 in
  let nest_hi = Array.make_matrix nnests depth 0 in
  Array.iteri
    (fun k (n : Ir.nest) ->
      List.iteri
        (fun dim (l : Ir.level) ->
          if dim < depth then begin
            nest_lo.(k).(dim) <- l.lo;
            nest_hi.(k).(dim) <- l.hi
          end)
        n.levels)
    nests;
  let g_lo = Array.make depth max_int and g_hi = Array.make depth min_int in
  for k = 0 to nnests - 1 do
    for dim = 0 to depth - 1 do
      g_lo.(dim) <- min g_lo.(dim) (nest_lo.(k).(dim) + d.shift.(k).(dim));
      g_hi.(dim) <- max g_hi.(dim) (nest_hi.(k).(dim) + d.shift.(k).(dim))
    done
  done;
  { g_lo; g_hi; nest_lo; nest_hi }

(* Fused coverage of nest [k] in dimension [dim] for the block
   [bstart, bend] (in fused positions): original iterations shifted into
   the block, minus the start-of-block peeled iterations (absent for the
   first block in the grid dimension). *)
let fused_range (d : Derive.t) geo ~k ~dim ~bstart ~bend ~first =
  let s = d.shift.(k).(dim) in
  let pk = Derive.start_peel d ~nest:k ~dim in
  let lo = if first then max geo.nest_lo.(k).(dim) (bstart - s)
           else bstart - s + pk in
  let hi = min geo.nest_hi.(k).(dim) (bend - s) in
  (max lo geo.nest_lo.(k).(dim), hi)

(* Tail (peeled) coverage of nest [k] in dimension [dim] for the same
   block: the iterations shifted out of the block's end plus the
   iterations peeled from the start of the next block (paper Fig. 12);
   the last block only finishes its own shifted-out tail. *)
let tail_range (d : Derive.t) geo ~k ~dim ~bend ~last =
  let s = d.shift.(k).(dim) in
  let q = d.peel.(k).(dim) in
  let lo = bend - s + 1 in
  let hi = if last then geo.nest_hi.(k).(dim) else bend + q in
  (max lo geo.nest_lo.(k).(dim), min hi geo.nest_hi.(k).(dim))

let default_strip = 64

(* Fingerprint of schedule *construction* (unfused/fused box layout,
   blocking, peeling structure).  Explicit Sim.requests serialise their
   phases/boxes structurally and so do not depend on it; Unfused/Fused
   variants rebuild their schedule at replay time and do.  No spaces. *)
let version = "lf-schedule-1"

(* Build the fused + peeled schedule.  [strip] is the strip-mining
   factor applied to every fused dimension (paper §3.4: the strip size
   is chosen so the data referenced per strip fits in one cache
   partition). *)
let fused ?grid ?(strip = default_strip) ?(peel_starts = true) ?derive
    ~nprocs (p : Ir.program) =
  let d = match derive with Some d -> d | None -> Derive.of_program p in
  let depth = d.depth in
  let grid =
    match grid with Some g -> g | None -> balanced_grid ~nprocs ~depth
  in
  if Array.length grid <> depth then
    invalid_arg "Schedule.fused: grid rank must equal fusion depth";
  if Array.fold_left ( * ) 1 grid <> nprocs then
    invalid_arg "Schedule.fused: grid does not match nprocs";
  if strip <= 0 then invalid_arg "Schedule.fused: strip <= 0";
  let nests = Array.of_list p.nests in
  let nnests = Array.length nests in
  let geo = geometry p d in
  (* Theorem 1 precondition: every block must be at least N_t wide. *)
  for dim = 0 to depth - 1 do
    let len = geo.g_hi.(dim) - geo.g_lo.(dim) + 1 in
    let nt = Derive.threshold d ~dim in
    if len / grid.(dim) < max nt 1 then
      raise
        (Illegal
           (Printf.sprintf
              "block size %d in dimension %d is below the iteration count \
               threshold %d (Theorem 1)"
              (len / grid.(dim)) dim nt))
  done;
  let block_of ~dim ~c = block ~lo:geo.g_lo.(dim) ~hi:geo.g_hi.(dim)
      ~nprocs:grid.(dim) ~p:c
  in
  (* enumerate strip tiles of the block in lexicographic order *)
  let tiles_of_block bounds =
    (* bounds.(dim) = (bstart, bend); returns list of tile arrays *)
    let rec go dim acc =
      if dim < 0 then acc
      else
        let bstart, bend = bounds.(dim) in
        let slices = ref [] in
        let ss = ref bstart in
        while !ss <= bend do
          slices := (!ss, min (!ss + strip - 1) bend) :: !slices;
          ss := !ss + strip
        done;
        let slices = List.rev !slices in
        let acc' =
          List.concat_map
            (fun slice -> List.map (fun tl -> slice :: tl) acc)
            slices
        in
        go (dim - 1) acc'
    in
    go (depth - 1) [ [] ] |> List.map Array.of_list
  in
  let inner_ranges k =
    let n = nests.(k) in
    let all = level_ranges n in
    Array.sub all depth (Array.length all - depth)
  in
  let fused_phase proc =
    let c = cell_of_proc grid proc in
    let bounds = Array.init depth (fun dim -> block_of ~dim ~c:c.(dim)) in
    let boxes = ref [] in
    List.iter
      (fun tile ->
        for k = 0 to nnests - 1 do
          let fr =
            Array.init depth (fun dim ->
                let bstart, bend = bounds.(dim) in
                let flo, fhi =
                  fused_range d geo ~k ~dim ~bstart ~bend
                    ~first:((not peel_starts) || c.(dim) = 0)
                in
                let ss, se = tile.(dim) in
                let s = d.shift.(k).(dim) in
                (max (ss - s) flo, min (se - s) fhi))
          in
          let b = { nest = k; ranges = Array.append fr (inner_ranges k) } in
          if not (box_is_empty b) then boxes := b :: !boxes
        done)
      (tiles_of_block bounds);
    List.rev !boxes
  in
  (* Peeled boxes: for every nonempty subset S of the fused dimensions,
     the box taking the tail range in the dimensions of S and the fused
     range elsewhere; together with the fused region these tile the
     block's responsibility exactly (cf. Fig. 16's boundary prologue). *)
  let peeled_phase proc =
    let c = cell_of_proc grid proc in
    let bounds = Array.init depth (fun dim -> block_of ~dim ~c:c.(dim)) in
    let boxes = ref [] in
    for k = 0 to nnests - 1 do
      for mask = 1 to (1 lsl depth) - 1 do
        let fr =
          Array.init depth (fun dim ->
              let bstart, bend = bounds.(dim) in
              if mask land (1 lsl dim) <> 0 then
                tail_range d geo ~k ~dim ~bend
                  ~last:(c.(dim) = grid.(dim) - 1)
              else
                fused_range d geo ~k ~dim ~bstart ~bend
                  ~first:(c.(dim) = 0))
        in
        let b = { nest = k; ranges = Array.append fr (inner_ranges k) } in
        if not (box_is_empty b) then boxes := b :: !boxes
      done
    done;
    List.rev !boxes
  in
  let phases, labels =
    if peel_starts then
      ( [ Array.init nprocs fused_phase; Array.init nprocs peeled_phase ],
        [ "fused"; "peeled" ] )
    else ([ Array.init nprocs fused_phase ], [ "fused" ])
  in
  { prog = p; nprocs; grid; phases; labels }

let serial (p : Ir.program) = unfused ~nprocs:1 ~depth:1 p

(* ------------------------------------------------------------------ *)
(* Untimed execution (semantic verification)                           *)

type order = Natural | Reversed | Interleaved

(* Execute one box on [st]. *)
let exec_box (prog_nests : Ir.nest array) st (b : box) =
  let n = prog_nests.(b.nest) in
  let vars = Array.of_list (Ir.nest_vars n) in
  let vals = Array.make (Array.length vars) 0 in
  let env x =
    let rec find i =
      if i >= Array.length vars then
        invalid_arg ("Schedule.exec_box: unbound variable " ^ x)
      else if String.equal vars.(i) x then vals.(i)
      else find (i + 1)
    in
    find 0
  in
  let nd = Array.length b.ranges in
  let rec go d =
    if d = nd then List.iter (Interp.exec_stmt st env) n.body
    else
      let lo, hi = b.ranges.(d) in
      for v = lo to hi do
        vals.(d) <- v;
        go (d + 1)
      done
  in
  go 0

let execute ?(order = Natural) ?init ?(steps = 1) (t : t) =
  let st = Interp.create ?init t.prog in
  let nests = Array.of_list t.prog.nests in
  for _step = 1 to steps do
  List.iter
    (fun (ph : phase) ->
      match order with
      | Natural ->
        Array.iter (fun boxes -> List.iter (exec_box nests st) boxes) ph
      | Reversed ->
        for p = t.nprocs - 1 downto 0 do
          List.iter (exec_box nests st) ph.(p)
        done
      | Interleaved ->
        (* round-robin one box at a time across processors *)
        let queues = Array.map (fun l -> ref l) ph in
        let remaining = ref (Array.length queues) in
        while !remaining > 0 do
          remaining := 0;
          Array.iter
            (fun q ->
              match !q with
              | [] -> ()
              | b :: rest ->
                exec_box nests st b;
                q := rest;
                if rest <> [] then incr remaining)
            queues
        done)
    t.phases
  done;
  st

(* ------------------------------------------------------------------ *)
(* Coverage analysis (used by tests: Theorem 1 proof obligations)      *)

(* All iteration points of nest [k] executed by [t], as a list of
   (phase, proc, point) with points restricted to the fused dims plus
   inner dims; intended for small programs in tests. *)
let coverage (t : t) ~nest =
  let pts = ref [] in
  List.iteri
    (fun phase_idx ph ->
      Array.iteri
        (fun proc boxes ->
          List.iter
            (fun b ->
              if b.nest = nest then begin
                let nd = Array.length b.ranges in
                let point = Array.make nd 0 in
                let rec go d =
                  if d = nd then
                    pts := (phase_idx, proc, Array.copy point) :: !pts
                  else
                    let lo, hi = b.ranges.(d) in
                    for v = lo to hi do
                      point.(d) <- v;
                      go (d + 1)
                    done
                in
                go 0
              end)
            boxes)
        ph)
    t.phases;
  List.rev !pts

let pp ppf t =
  Fmt.pf ppf "schedule: %d procs, grid (%a), %d phases@." t.nprocs
    Fmt.(array ~sep:(any "x") int)
    t.grid
    (List.length t.phases);
  List.iteri
    (fun i ph ->
      Fmt.pf ppf "phase %d:@." i;
      Array.iteri
        (fun proc boxes ->
          Fmt.pf ppf "  proc %d: %d boxes, %d iterations@." proc
            (List.length boxes)
            (List.fold_left (fun a b -> a + box_iterations b) 0 boxes))
        ph)
    t.phases
