(** Loop distribution (fission) — the inverse of fusion, per Kennedy &
    McKinley's fusion/distribution framework (paper §2.4).

    Statements are partitioned into pi-blocks (strongly connected
    components of the statement-level dependence graph); each pi-block
    becomes its own nest, emitted in topological order so every
    dependence flows forward between the new nests. *)

val lex_sign : int array -> int
(** Lexicographic sign of a distance vector: -1, 0 or 1. *)

val scc : nodes:int -> edges:(int * int) list -> int list list
(** Tarjan's strongly connected components, topologically ordered. *)

val distribute_nest : Lf_ir.Ir.nest -> Lf_ir.Ir.nest list
(** Split one nest into its pi-blocks (identity for a single-statement
    nest and for statements tied into one component). *)

val distribute : Lf_ir.Ir.program -> Lf_ir.Ir.program
(** Maximally distribute every nest of the sequence; semantics are
    preserved exactly. *)

val pi_blocks : Lf_ir.Ir.nest -> int
