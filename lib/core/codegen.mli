(** Source emission for fused loops (paper Figures 11, 12, 16).

    The executable semantics live in {!Schedule}; this module renders
    equivalent C-like source for inspection and comparison against the
    paper's figures. *)

val subst_affine : Lf_ir.Ir.affine -> Lf_ir.Ir.var -> int -> Lf_ir.Ir.affine
(** [subst_affine a v delta] substitutes [v := v + delta]. *)

val subst_aref : Lf_ir.Ir.aref -> Lf_ir.Ir.var -> int -> Lf_ir.Ir.aref
val subst_expr : Lf_ir.Ir.expr -> Lf_ir.Ir.var -> int -> Lf_ir.Ir.expr

val subst_stmt : Lf_ir.Ir.stmt -> Lf_ir.Ir.var -> int -> Lf_ir.Ir.stmt
(** Substitution including the guard (bounds shift by [-delta]). *)

val subst_stmt_dims :
  Lf_ir.Ir.nest -> depth:int -> int array -> Lf_ir.Ir.stmt -> Lf_ir.Ir.stmt

exception Unsupported of string
(** Raised by the 1-D emitters on input they cannot render faithfully
    (a derivation of depth > 1, or — for the direct method — a program
    whose nests have loop levels below the fusion depth).  Historically
    these cases silently emitted code with unbound inner variables. *)

val emit_direct : Format.formatter -> Lf_ir.Ir.program -> Derive.t -> unit
(** Direct method (Figure 11(a)): one loop over fused positions, guards
    on shifted statements, rewritten subscripts.  Strictly 1-D: raises
    {!Unsupported} when the derivation depth is not 1 or any nest has
    inner loop levels. *)

val emit_strip_mined :
  ?strip:int -> Format.formatter -> Lf_ir.Ir.program -> Derive.t -> unit
(** Strip-mined method with peeling (Figures 11(b) and 12): control
    loop, per-nest inner loops with max/min bounds, barrier, tails.
    Raises {!Unsupported} when the derivation depth is not 1; a program
    with serial levels below the (depth-1) fusion dispatches to
    {!emit_multidim}, which renders the inner loops. *)

val emit_multidim :
  ?strip:int -> Format.formatter -> Lf_ir.Ir.program -> Derive.t -> unit
(** Multidimensional code with the boundary-case prologue (Figure 16):
    peel flags per dimension, fused strips, barrier, peeled boxes. *)

val direct_to_string : Lf_ir.Ir.program -> Derive.t -> string
val strip_mined_to_string : ?strip:int -> Lf_ir.Ir.program -> Derive.t -> string
val multidim_to_string : ?strip:int -> Lf_ir.Ir.program -> Derive.t -> string
