(** Profitability of fusion (paper §5 discussion and §6 conclusion):
    fusion pays only while a processor's share of the data exceeds its
    cache — afterwards the unfused loops already reuse data across
    nests through the cache and the transformation's overhead loses. *)

type estimate = {
  data_bytes : int;  (** total bytes of all arrays in the sequence *)
  per_proc_bytes : int;  (** share of one processor under blocking *)
  cache_bytes : int;
  fits_in_cache : bool;
  profitable : bool;
  ratio : float;  (** per-processor bytes / cache capacity *)
}

val estimate :
  ?elem_bytes:int -> nprocs:int -> cache_bytes:int -> Lf_ir.Ir.program ->
  estimate

val max_profitable_procs :
  ?elem_bytes:int -> cache_bytes:int -> Lf_ir.Ir.program -> int
(** Largest processor count for which fusion is still expected to be
    profitable: the greatest [P] with
    [(estimate ~nprocs:P ...).profitable], i.e.
    [data_bytes / (cache_bytes + 1)].  Returns 0 — never profitable —
    when the data fits in a single cache, including degenerate programs
    with no arrays (zero data bytes).  The boundary is exact: when
    [per_proc_bytes = cache_bytes] the data fits and fusion is {e not}
    profitable, so data of exactly [k] cache capacities yields [k - 1].
    Raises [Invalid_argument] if [cache_bytes <= 0]. *)

val pp : Format.formatter -> estimate -> unit
