(* Loop distribution (fission) — the inverse of fusion, and the other
   half of the fusion/distribution framework of Kennedy & McKinley that
   the paper's related work discusses.

   A nest's statements are partitioned into pi-blocks: the strongly
   connected components of the statement-level dependence graph.  Each
   pi-block becomes its own nest; pi-blocks are emitted in topological
   order, so all dependences flow forward between the new nests.  A
   maximally distributed sequence is the natural input for fusion
   clustering (see Cluster). *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep

(* Lexicographic sign of a distance vector. *)
let lex_sign (d : int array) =
  let rec go k =
    if k >= Array.length d then 0
    else if d.(k) > 0 then 1
    else if d.(k) < 0 then -1
    else go (k + 1)
  in
  go 0

(* Statement-level dependence edges within one nest: [i -> j] when some
   instance of statement [i] must execute before a dependent instance
   of statement [j].  Conservative (both directions) when a distance
   cannot be shown uniform. *)
let stmt_edges (n : Ir.nest) =
  let stmts = Array.of_list n.Ir.body in
  let ns = Array.length stmts in
  let depth = List.length n.Ir.levels in
  let edges = ref [] in
  let add a b = if not (List.mem (a, b) !edges) then edges := (a, b) :: !edges in
  let accesses_of (s : Ir.stmt) =
    ({ Dep.aref = s.Ir.lhs; write = true }
     :: List.map (fun r -> { Dep.aref = r; write = false }) (Ir.stmt_reads s))
  in
  for i = 0 to ns - 1 do
    for j = 0 to ns - 1 do
      if i <> j then
        List.iter
          (fun (a : Dep.access) ->
            List.iter
              (fun (b : Dep.access) ->
                if (a.Dep.write || b.Dep.write)
                   && String.equal a.Dep.aref.Ir.array b.Dep.aref.Ir.array
                then
                  match
                    Dep.access_distance ~depth n n a.Dep.aref b.Dep.aref
                  with
                  | None -> ()
                  | Some (Dep.Not_uniform _) ->
                    add i j;
                    add j i
                  | Some (Dep.Dist d) -> (
                    (* a's instance at iter t, b's at t + d *)
                    match lex_sign d with
                    | 1 -> add i j  (* a executes first *)
                    | -1 -> add j i  (* b executes first *)
                    | _ -> if i < j then add i j else add j i))
              (accesses_of stmts.(j)))
          (accesses_of stmts.(i))
    done
  done;
  (ns, !edges)

(* Tarjan's strongly connected components, emitted in reverse
   topological order (so the result list is topologically ordered). *)
let scc ~nodes ~edges =
  let adj = Array.make nodes [] in
  List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) edges;
  let index = Array.make nodes (-1) in
  let lowlink = Array.make nodes 0 in
  let on_stack = Array.make nodes false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to nodes - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order of the
     condensation; !components accumulates them re-reversed *)
  !components

(* Distribute one nest into its pi-blocks. *)
let distribute_nest (n : Ir.nest) =
  match n.Ir.body with
  | [] | [ _ ] -> [ n ]
  | body ->
    let stmts = Array.of_list body in
    let nodes, edges = stmt_edges n in
    let comps = scc ~nodes ~edges in
    (* stable presentation: order blocks by smallest statement index,
       then check topological consistency (scc already returns a
       topological order of the condensation; keep it) *)
    List.mapi
      (fun k comp ->
        let comp = List.sort compare comp in
        {
          n with
          Ir.nid = Printf.sprintf "%s_d%d" n.Ir.nid (k + 1);
          body = List.map (fun i -> stmts.(i)) comp;
        })
      comps

(* Maximally distribute every nest of the sequence. *)
let distribute (p : Ir.program) =
  let nests = List.concat_map distribute_nest p.Ir.nests in
  let q = { p with Ir.pname = p.Ir.pname ^ "+dist"; nests } in
  Ir.validate q;
  q

(* Number of pi-blocks the nest splits into. *)
let pi_blocks (n : Ir.nest) = List.length (distribute_nest n)
