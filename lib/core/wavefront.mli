(** Wavefront scheduling — the alternative to peeling (the authors'
    companion work, [21] in the paper): tile the shifted fused space;
    after shifting all dependence distances are non-negative per
    dimension, so anti-diagonals of tiles are independent and run in
    parallel with a barrier between diagonals.  1-D fusion degenerates
    to a serial tile chain (why peeling matters there); 2-D recovers
    partial parallelism at the price of many barriers. *)

val schedule :
  ?tile:int ->
  ?derive:Derive.t ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  Schedule.t
(** Wavefront schedule of the fused loops: shifting only, no peeling;
    one phase (barrier) per tile anti-diagonal, tiles round-robin over
    processors. *)

val num_phases : Schedule.t -> int
