(** Fusion clustering: partition a loop sequence into maximal groups of
    adjacent nests that shift-and-peel can legally fuse (real
    applications interleave fusable stencils with loops the technique
    cannot handle), and build the group-wise schedule. *)

type group = {
  start : int;  (** index of the first nest in the program *)
  members : int;  (** number of consecutive nests in the group *)
  fused : bool;  (** whether the group will be fused *)
  why : string;  (** "fused", or the reason it is not *)
}

val fusable_slice :
  Lf_ir.Ir.program ->
  depth:int ->
  start:int ->
  members:int ->
  (Lf_ir.Ir.program, string) result
(** Whether the consecutive slice can be fused with shift-and-peel:
    parallel levels at the fusion depth, verified doalls, uniform
    dependences. *)

val groups :
  ?depth:int ->
  ?min_members:int ->
  ?profitable:(Lf_ir.Ir.program -> bool) ->
  Lf_ir.Ir.program ->
  group list
(** Greedy maximal grouping left to right.  Groups smaller than
    [min_members] (default 2) are left unfused; [profitable] can veto
    fusion of a legal group (e.g. {!Profit.estimate}). *)

val schedule :
  ?depth:int ->
  ?grid:int array ->
  ?strip:int ->
  nprocs:int ->
  Lf_ir.Ir.program ->
  group list ->
  Schedule.t
(** One fused shift-and-peel phase pair per fused group; unfused phases
    (one per nest) elsewhere; barriers between all phases. *)

val pp_groups : Format.formatter -> group list -> unit
