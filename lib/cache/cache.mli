(** Set-associative cache simulator with LRU replacement.

    Models the per-processor caches of the paper's two platforms: the
    KSR2 (256 KB two-way) and the Convex SPP-1000 (1 MB direct-mapped).
    Only the address stream matters; data values live in the
    interpreter.

    Two access tiers share one probe/victim core: the scalar tier
    ([access], [access_classified]) consumes one byte address per call,
    and the run tier ([access_run], [hit_run], [repeat_run]) consumes
    whole strided segments, updating counters, the LRU clock and the
    stamps in closed form to exactly the values the scalar loop would
    produce (DESIGN §6b). *)

type config = { capacity : int; line : int; assoc : int }
(** Capacity and line size in bytes; [assoc = 1] is direct-mapped. *)

val ksr2_cache : config
(** 256 KB, 64-byte lines, 2-way (KSR2). *)

val convex_cache : config
(** 1 MB, 64-byte lines, direct-mapped (Convex SPP-1000). *)

val version : string
(** Fingerprint of the cache/TLB simulation's observable behaviour,
    folded into every {!Lf_machine.Sim.digest}.  Bump on any change to
    hit/miss classification or replacement; no spaces. *)

type t

type geometry = { shape : config; footprint : int }
(** Everything [of_geometry] needs to build a cache instance: the
    hardware shape plus workload-derived sizing.  [footprint] (bytes, 0
    = unknown) bounds the dense address space the workload touches:
    cold-miss tracking for line addresses below it uses a bitset
    instead of a hash table, with a hash fallback keeping addresses
    beyond it correct.  Grew out of [create]'s optional-argument sprawl;
    new knobs belong here, not as more optional arguments. *)

val geometry : ?footprint:int -> config -> geometry
(** [geometry ?footprint config] — [footprint] defaults to 0. *)

val ksr2_geometry : ?footprint:int -> unit -> geometry
(** The {!ksr2_cache} preset as a geometry (256 KB, 64 B lines,
    2-way). *)

val convex_geometry : ?footprint:int -> unit -> geometry
(** The {!convex_cache} preset as a geometry (1 MB, 64 B lines,
    direct-mapped). *)

val of_geometry : geometry -> t
(** Build a cache.  Raises [Invalid_argument] for non-power-of-two
    lines or a capacity not divisible by [line * assoc]. *)

val create : ?footprint:int -> config -> t
(** Compatibility wrapper: [create ?footprint config] is
    [of_geometry (geometry ?footprint config)]. *)

val config : t -> config

val reset : t -> unit
(** Invalidate all lines and zero the statistics. *)

val access : t -> int -> bool
(** [access t addr] touches the byte at [addr]; returns [true] on a
    hit.  Misses fill the line, evicting the LRU way. *)

type classified = {
  cl_hit : bool;
  cl_cold : bool;  (** meaningful only when [cl_hit = false] *)
  cl_line : int;  (** line address of the access *)
  cl_evicted : int;  (** line address displaced on a miss, [-1] if none *)
}

val access_classified : t -> int -> classified
(** Exactly [access], with the outcome reported for observability
    (hit/cold classification, displaced line).  State transitions and
    statistics are identical to [access]. *)

val access_run : t -> addr:int -> stride:int -> n:int -> unit
(** [access_run t ~addr ~stride ~n] touches the [n] byte addresses
    [addr + i*stride] for [i = 0..n-1] — one affine reference over one
    innermost-loop segment.  Bit-identical to [n] calls of [access]:
    consecutive accesses falling in one cache line are coalesced (after
    the group's first access the rest are provably hits), stepping line
    by line when the stride spans lines, with a specialised inner loop
    for direct-mapped geometry. *)

val access_run_classified :
  t -> addr:int -> stride:int -> n:int -> f:(classified -> int -> unit) -> unit
(** [access_run] reporting to [f] one [classified] per line group (the
    group's first access) together with the number of coalesced
    trailing hits in that group, so a sink can attribute the whole
    segment.  State and statistics identical to [access_run]. *)

val hit_run : t -> addrs:int array -> k:int -> m:int -> unit
(** [hit_run t ~addrs ~k ~m]: closed form for [m] lockstep iterations
    over the [k] resident lines of [addrs.(0..k-1)], every access a
    hit.  Equivalent to the scalar loop
    [for _ = 1 to m do for j = 0 to k-1 do access t addrs.(j) done done]
    under the precondition (checked) that each line is resident and the
    iteration leaves the cache state unchanged.  Raises
    [Invalid_argument] if a line is absent. *)

val repeat_run : t -> addrs:int array -> hits:bool array -> k:int -> m:int -> unit
(** [repeat_run t ~addrs ~hits ~k ~m]: closed form for [m] further
    lockstep iterations over [addrs.(0..k-1)] repeating the per-access
    outcomes [hits] of the immediately preceding simulated iteration.
    Direct-mapped caches only ([Invalid_argument] otherwise): with one
    way per set, an iteration over a fixed address tuple leaves each
    touched set holding the last line mapped to it regardless of prior
    state, so outcomes are periodic with period 1 (DESIGN §6b).  All
    repeated misses are non-cold. *)

type stats = {
  s_hits : int;
  s_misses : int;
  s_cold : int;  (** compulsory misses (line never seen before) *)
  s_conflict_capacity : int;  (** all other misses *)
}

val stats : t -> stats
val hit_count : t -> int
val miss_count : t -> int
val references : t -> int
val miss_rate : t -> float
val pp_stats : Format.formatter -> stats -> unit
