(** Set-associative cache simulator with LRU replacement.

    Models the per-processor caches of the paper's two platforms: the
    KSR2 (256 KB two-way) and the Convex SPP-1000 (1 MB direct-mapped).
    Only the address stream matters; data values live in the
    interpreter. *)

type config = { capacity : int; line : int; assoc : int }
(** Capacity and line size in bytes; [assoc = 1] is direct-mapped. *)

val ksr2_cache : config
(** 256 KB, 64-byte lines, 2-way (KSR2). *)

val convex_cache : config
(** 1 MB, 64-byte lines, direct-mapped (Convex SPP-1000). *)

type t

val create : config -> t
(** Raises [Invalid_argument] for non-power-of-two lines or a capacity
    not divisible by [line * assoc]. *)

val reset : t -> unit
(** Invalidate all lines and zero the statistics. *)

val access : t -> int -> bool
(** [access t addr] touches the byte at [addr]; returns [true] on a
    hit.  Misses fill the line, evicting the LRU way. *)

type classified = {
  cl_hit : bool;
  cl_cold : bool;  (** meaningful only when [cl_hit = false] *)
  cl_line : int;  (** line address of the access *)
  cl_evicted : int;  (** line address displaced on a miss, [-1] if none *)
}

val access_classified : t -> int -> classified
(** Exactly [access], with the outcome reported for observability
    (hit/cold classification, displaced line).  State transitions and
    statistics are identical to [access]. *)

type stats = {
  s_hits : int;
  s_misses : int;
  s_cold : int;  (** compulsory misses (line never seen before) *)
  s_conflict_capacity : int;  (** all other misses *)
}

val stats : t -> stats
val references : t -> int
val miss_rate : t -> float
val pp_stats : Format.formatter -> stats -> unit
