(* Set-associative cache simulator with LRU replacement.

   Models the per-processor caches of the paper's two platforms: the
   KSR2 (256 KB, 2-way set-associative) and the Convex SPP-1000 (1 MB,
   direct-mapped).  Only the address stream matters; data are held by
   the interpreter. *)

type config = { capacity : int; line : int; assoc : int }

let ksr2_cache = { capacity = 256 * 1024; line = 64; assoc = 2 }
let convex_cache = { capacity = 1024 * 1024; line = 64; assoc = 1 }

type t = {
  config : config;
  nsets : int;
  line_shift : int;  (* log2 line: addr lsr line_shift = line address *)
  set_mask : int;  (* nsets - 1 when nsets is a power of 2, else -1 *)
  tags : int array;  (* nsets * assoc, -1 = invalid *)
  stamps : int array;  (* LRU stamps, parallel to tags *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable cold_misses : int;
  seen : (int, unit) Hashtbl.t;  (* line addresses ever referenced *)
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

let create config =
  if config.capacity <= 0 || config.line <= 0 || config.assoc <= 0 then
    invalid_arg "Cache.create: non-positive parameter";
  if not (is_pow2 config.line) then invalid_arg "Cache.create: line not a power of 2";
  if config.capacity mod (config.line * config.assoc) <> 0 then
    invalid_arg "Cache.create: capacity not divisible by line*assoc";
  let nsets = config.capacity / (config.line * config.assoc) in
  {
    config;
    nsets;
    line_shift = log2 config.line;
    set_mask = (if is_pow2 nsets then nsets - 1 else -1);
    tags = Array.make (nsets * config.assoc) (-1);
    stamps = Array.make (nsets * config.assoc) 0;
    clock = 0;
    hits = 0;
    misses = 0;
    cold_misses = 0;
    seen = Hashtbl.create 4096;
  }

(* Set index of a (non-negative) line address: a mask when the set
   count is a power of two — the common case for both machine presets —
   and a division otherwise.  Addresses in this simulator are byte
   offsets from 0, so the shift/mask forms agree exactly with the
   [/]/[mod] they replace. *)
let[@inline] set_of t line_addr =
  if t.set_mask >= 0 then line_addr land t.set_mask
  else line_addr mod t.nsets

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.cold_misses <- 0;
  Hashtbl.reset t.seen

(* Access the byte at [addr]; returns [true] on a hit. *)
let access t addr =
  let line_addr = addr lsr t.line_shift in
  let set = set_of t line_addr in
  let base = set * t.config.assoc in
  t.clock <- t.clock + 1;
  let rec find w =
    if w = t.config.assoc then None
    else if t.tags.(base + w) = line_addr then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    t.hits <- t.hits + 1;
    t.stamps.(base + w) <- t.clock;
    true
  | None ->
    t.misses <- t.misses + 1;
    if not (Hashtbl.mem t.seen line_addr) then begin
      t.cold_misses <- t.cold_misses + 1;
      Hashtbl.replace t.seen line_addr ()
    end;
    (* LRU victim *)
    let victim = ref 0 in
    for w = 1 to t.config.assoc - 1 do
      if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- line_addr;
    t.stamps.(base + !victim) <- t.clock;
    false

type classified = {
  cl_hit : bool;
  cl_cold : bool;  (* meaningful only when [cl_hit = false] *)
  cl_line : int;  (* line address of the access *)
  cl_evicted : int;  (* line address displaced on a miss, -1 if none *)
}

(* Same state transitions as [access], but reporting what happened.
   Observability (Lf_obs) uses this path; [access] stays the fast path.
   Any behavioural divergence between the two is an observer effect —
   test/test_obs.ml checks for it. *)
let access_classified t addr =
  let line_addr = addr lsr t.line_shift in
  let set = set_of t line_addr in
  let base = set * t.config.assoc in
  t.clock <- t.clock + 1;
  let rec find w =
    if w = t.config.assoc then None
    else if t.tags.(base + w) = line_addr then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    t.hits <- t.hits + 1;
    t.stamps.(base + w) <- t.clock;
    { cl_hit = true; cl_cold = false; cl_line = line_addr; cl_evicted = -1 }
  | None ->
    t.misses <- t.misses + 1;
    let cold = not (Hashtbl.mem t.seen line_addr) in
    if cold then begin
      t.cold_misses <- t.cold_misses + 1;
      Hashtbl.replace t.seen line_addr ()
    end;
    let victim = ref 0 in
    for w = 1 to t.config.assoc - 1 do
      if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
    done;
    let evicted = t.tags.(base + !victim) in
    t.tags.(base + !victim) <- line_addr;
    t.stamps.(base + !victim) <- t.clock;
    { cl_hit = false; cl_cold = cold; cl_line = line_addr; cl_evicted = evicted }

type stats = {
  s_hits : int;
  s_misses : int;
  s_cold : int;
  s_conflict_capacity : int;  (* misses that are not cold *)
}

let stats t =
  {
    s_hits = t.hits;
    s_misses = t.misses;
    s_cold = t.cold_misses;
    s_conflict_capacity = t.misses - t.cold_misses;
  }

let references t = t.hits + t.misses

let miss_rate t =
  let r = references t in
  if r = 0 then 0.0 else float_of_int t.misses /. float_of_int r

let pp_stats ppf s =
  Fmt.pf ppf "hits %d, misses %d (cold %d, conflict/capacity %d)" s.s_hits
    s.s_misses s.s_cold s.s_conflict_capacity
