(* Set-associative cache simulator with LRU replacement.

   Models the per-processor caches of the paper's two platforms: the
   KSR2 (256 KB, 2-way set-associative) and the Convex SPP-1000 (1 MB,
   direct-mapped).  Only the address stream matters; data are held by
   the interpreter.

   Two access tiers share one probe/victim core:

   - the scalar tier ([access], [access_classified]) consumes one byte
     address per call;
   - the run tier ([access_run], [access_run_classified], [hit_run],
     [repeat_run]) consumes whole strided segments, coalescing
     consecutive accesses that fall in one cache line and updating
     counters, the clock and the LRU stamps in closed form to exactly
     the values the scalar loop would produce (see exec.ml / DESIGN
     §6b for the argument). *)

type config = { capacity : int; line : int; assoc : int }

let ksr2_cache = { capacity = 256 * 1024; line = 64; assoc = 2 }
let convex_cache = { capacity = 1024 * 1024; line = 64; assoc = 1 }

(* Fingerprint of the cache/TLB simulation (probe/victim policy, LRU
   clock, run-tier closed forms).  Every Sim.request exercises it; bump
   on any change to hit/miss classification.  No spaces. *)
let version = "lf-cache-1"

type t = {
  config : config;
  nsets : int;
  line_shift : int;  (* log2 line: addr lsr line_shift = line address *)
  set_mask : int;  (* nsets - 1 when nsets is a power of 2, else -1 *)
  tags : int array;  (* nsets * assoc, -1 = invalid *)
  stamps : int array;  (* LRU stamps, parallel to tags *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable cold_misses : int;
  (* Cold-miss tracking: line addresses ever referenced.  Simulated
     address spaces are dense [0, footprint), so a footprint-sized
     bitset answers most membership tests in one load; the hash table
     is kept only as a fallback for addresses beyond the declared
     footprint (sparse or unbounded spaces, footprint 0). *)
  seen_lines : int;  (* bitset covers line addresses [0, seen_lines) *)
  seen_bits : Bytes.t;
  seen : (int, unit) Hashtbl.t;  (* lines >= seen_lines *)
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

(* All instance-construction knobs in one record: the hardware shape
   plus the workload footprint (create's former optional argument). *)
type geometry = { shape : config; footprint : int }

let geometry ?(footprint = 0) shape = { shape; footprint }
let ksr2_geometry ?footprint () = geometry ?footprint ksr2_cache
let convex_geometry ?footprint () = geometry ?footprint convex_cache

let of_geometry { shape = config; footprint } =
  if config.capacity <= 0 || config.line <= 0 || config.assoc <= 0 then
    invalid_arg "Cache.create: non-positive parameter";
  if not (is_pow2 config.line) then invalid_arg "Cache.create: line not a power of 2";
  if config.capacity mod (config.line * config.assoc) <> 0 then
    invalid_arg "Cache.create: capacity not divisible by line*assoc";
  let nsets = config.capacity / (config.line * config.assoc) in
  let seen_lines =
    if footprint <= 0 then 0
    else (footprint + config.line - 1) / config.line
  in
  {
    config;
    nsets;
    line_shift = log2 config.line;
    set_mask = (if is_pow2 nsets then nsets - 1 else -1);
    tags = Array.make (nsets * config.assoc) (-1);
    stamps = Array.make (nsets * config.assoc) 0;
    clock = 0;
    hits = 0;
    misses = 0;
    cold_misses = 0;
    seen_lines;
    seen_bits = Bytes.make ((seen_lines + 7) / 8) '\000';
    seen = Hashtbl.create 64;
  }

(* Compatibility wrapper over [of_geometry]. *)
let create ?footprint config = of_geometry (geometry ?footprint config)

let config t = t.config

(* Set index of a (non-negative) line address: a mask when the set
   count is a power of two — the common case for both machine presets —
   and a division otherwise.  Addresses in this simulator are byte
   offsets from 0, so the shift/mask forms agree exactly with the
   [/]/[mod] they replace. *)
let[@inline] set_of t line_addr =
  if t.set_mask >= 0 then line_addr land t.set_mask
  else line_addr mod t.nsets

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.cold_misses <- 0;
  Bytes.fill t.seen_bits 0 (Bytes.length t.seen_bits) '\000';
  Hashtbl.reset t.seen

(* ------------------------------------------------------------------ *)
(* Shared probe/victim core.  Every access variant — scalar,
   classified, run-compressed — is built from these three, so their
   state transitions cannot drift apart.                               *)

(* Way holding [line_addr] in the set starting at [base], or -1. *)
let[@inline] find_way t base line_addr =
  let assoc = t.config.assoc in
  let rec go w =
    if w = assoc then -1
    else if Array.unsafe_get t.tags (base + w) = line_addr then w
    else go (w + 1)
  in
  go 0

(* Test-and-set of the ever-seen set; returns [true] when the line was
   already a member (i.e. the miss is not cold). *)
let[@inline] seen_mark t line_addr =
  if line_addr < t.seen_lines then begin
    let byte = line_addr lsr 3 in
    let bit = 1 lsl (line_addr land 7) in
    let b = Char.code (Bytes.unsafe_get t.seen_bits byte) in
    if b land bit <> 0 then true
    else begin
      Bytes.unsafe_set t.seen_bits byte (Char.unsafe_chr (b lor bit));
      false
    end
  end
  else if Hashtbl.mem t.seen line_addr then true
  else begin
    Hashtbl.replace t.seen line_addr ();
    false
  end

(* LRU victim selection and fill; returns the displaced line address
   (-1 if the way was invalid).  Counter updates stay in the caller. *)
let[@inline] fill_victim t base line_addr =
  let victim = ref 0 in
  for w = 1 to t.config.assoc - 1 do
    if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
  done;
  let evicted = t.tags.(base + !victim) in
  t.tags.(base + !victim) <- line_addr;
  t.stamps.(base + !victim) <- t.clock;
  evicted

(* ------------------------------------------------------------------ *)
(* Scalar tier                                                         *)

(* Access the byte at [addr]; returns [true] on a hit. *)
let access t addr =
  let line_addr = addr lsr t.line_shift in
  let set = set_of t line_addr in
  let base = set * t.config.assoc in
  t.clock <- t.clock + 1;
  match find_way t base line_addr with
  | -1 ->
    t.misses <- t.misses + 1;
    if not (seen_mark t line_addr) then t.cold_misses <- t.cold_misses + 1;
    ignore (fill_victim t base line_addr);
    false
  | w ->
    t.hits <- t.hits + 1;
    t.stamps.(base + w) <- t.clock;
    true

type classified = {
  cl_hit : bool;
  cl_cold : bool;  (* meaningful only when [cl_hit = false] *)
  cl_line : int;  (* line address of the access *)
  cl_evicted : int;  (* line address displaced on a miss, -1 if none *)
}

(* Same state transitions as [access], but reporting what happened.
   Observability (Lf_obs) uses this path; [access] stays the fast path.
   Any behavioural divergence between the two is an observer effect —
   test/test_obs.ml checks for it. *)
let access_classified t addr =
  let line_addr = addr lsr t.line_shift in
  let set = set_of t line_addr in
  let base = set * t.config.assoc in
  t.clock <- t.clock + 1;
  match find_way t base line_addr with
  | -1 ->
    t.misses <- t.misses + 1;
    let cold = not (seen_mark t line_addr) in
    if cold then t.cold_misses <- t.cold_misses + 1;
    let evicted = fill_victim t base line_addr in
    { cl_hit = false; cl_cold = cold; cl_line = line_addr; cl_evicted = evicted }
  | w ->
    t.hits <- t.hits + 1;
    t.stamps.(base + w) <- t.clock;
    { cl_hit = true; cl_cold = false; cl_line = line_addr; cl_evicted = -1 }

(* ------------------------------------------------------------------ *)
(* Run tier: strided segments at cache-line granularity                *)

(* Number of leading accesses of the segment [addr, addr+stride, ...]
   that fall in [addr]'s cache line (>= 1; [n] caps it).  Line
   boundaries are power-of-two aligned, so the count follows from the
   offset within the line. *)
let[@inline] same_line_count t addr stride n =
  if stride = 0 then n
  else
    let off = addr land (t.config.line - 1) in
    let c =
      if stride > 0 then 1 + ((t.config.line - 1 - off) / stride)
      else 1 + (off / -stride)
    in
    if c < n then c else n

(* Closed-form tail of a same-line coalesced group: after the group's
   first access the line is resident and nothing else intervenes, so
   the remaining [c] accesses are hits; the scalar loop would advance
   the clock by [c], add [c] hits, and leave the line's stamp at the
   final clock value. *)
let[@inline] coalesce_hits t base w c =
  if c > 0 then begin
    t.clock <- t.clock + c;
    t.hits <- t.hits + c;
    t.stamps.(base + w) <- t.clock
  end

(* [access_run t ~addr ~stride ~n] touches the [n] byte addresses
   [addr + i*stride]: the address stream of one affine reference over
   one innermost-loop segment.  Exactly equivalent to [n] calls of
   [access]; consecutive same-line accesses are coalesced, stepping
   line by line when the stride spans lines. *)
let access_run t ~addr ~stride ~n =
  if t.config.assoc = 1 then begin
    (* direct-mapped specialisation (the Convex preset): the probe is a
       single compare and the victim is the only way *)
    let addr = ref addr and left = ref n in
    while !left > 0 do
      let a = !addr in
      let c = same_line_count t a stride !left in
      let line_addr = a lsr t.line_shift in
      let set = set_of t line_addr in
      t.clock <- t.clock + 1;
      if Array.unsafe_get t.tags set = line_addr then begin
        t.hits <- t.hits + 1;
        t.stamps.(set) <- t.clock
      end
      else begin
        t.misses <- t.misses + 1;
        if not (seen_mark t line_addr) then
          t.cold_misses <- t.cold_misses + 1;
        t.tags.(set) <- line_addr;
        t.stamps.(set) <- t.clock
      end;
      coalesce_hits t set 0 (c - 1);
      addr := a + (stride * c);
      left := !left - c
    done
  end
  else begin
    let addr = ref addr and left = ref n in
    while !left > 0 do
      let a = !addr in
      let c = same_line_count t a stride !left in
      let line_addr = a lsr t.line_shift in
      let set = set_of t line_addr in
      let base = set * t.config.assoc in
      t.clock <- t.clock + 1;
      (match find_way t base line_addr with
      | -1 ->
        t.misses <- t.misses + 1;
        if not (seen_mark t line_addr) then
          t.cold_misses <- t.cold_misses + 1;
        ignore (fill_victim t base line_addr);
        (* the filled way is the one now holding the line *)
        let w = find_way t base line_addr in
        coalesce_hits t base w (c - 1)
      | w ->
        t.hits <- t.hits + 1;
        t.stamps.(base + w) <- t.clock;
        coalesce_hits t base w (c - 1));
      addr := a + (stride * c);
      left := !left - c
    done
  end

(* [access_run_classified] is [access_run] reporting one [classified]
   per line group (its first access) plus the count of coalesced
   trailing hits, so an observability probe can attribute the whole
   segment without per-access calls. *)
let access_run_classified t ~addr ~stride ~n ~f =
  let addr = ref addr and left = ref n in
  while !left > 0 do
    let a = !addr in
    let c = same_line_count t a stride !left in
    let cl = access_classified t a in
    let line_addr = cl.cl_line in
    let set = set_of t line_addr in
    let base = set * t.config.assoc in
    let w = find_way t base line_addr in
    coalesce_hits t base w (c - 1);
    f cl (c - 1);
    addr := a + (stride * c);
    left := !left - c
  done

(* [hit_run t ~addrs ~k ~m]: closed form for [m] lockstep iterations
   over the [k] resident lines of [addrs.(0..k-1)], all hitting — the
   fast-forward of the batched engine once an iteration leaves the
   cache state unchanged.  The scalar loop would advance the clock by
   [k*m], add [k*m] hits, and leave each line's stamp at the clock of
   its last access (position [j] of the final iteration); reproduced
   here exactly.  Precondition (checked): every line is resident. *)
let hit_run t ~addrs ~k ~m =
  if m > 0 && k > 0 then begin
    t.clock <- t.clock + (k * m);
    t.hits <- t.hits + (k * m);
    let last_iter = t.clock - k in
    for j = 0 to k - 1 do
      let line_addr = addrs.(j) lsr t.line_shift in
      let set = set_of t line_addr in
      let base = set * t.config.assoc in
      let w = find_way t base line_addr in
      if w < 0 then invalid_arg "Cache.hit_run: line not resident";
      t.stamps.(base + w) <- last_iter + j + 1
    done
  end

(* [repeat_run t ~addrs ~hits ~k ~m]: closed form for [m] lockstep
   iterations repeating the per-reference outcomes [hits] of the last
   simulated iteration.  Only valid for a direct-mapped cache: with one
   way per set, a full iteration over a fixed (set, line) sequence
   leaves each touched set holding the last line that mapped to it —
   independent of the state the iteration started from — so outcomes
   and transitions are identical from the second iteration of a block
   onward (DESIGN §6b).  The scalar loop would leave the tags in the
   same periodic state, add the same hit/miss counts per iteration
   (all misses non-cold: every line was referenced when the block was
   primed), and stamp each touched set at the clock of its last
   access; reproduced here exactly. *)
let repeat_run t ~addrs ~hits ~k ~m =
  if t.config.assoc <> 1 then invalid_arg "Cache.repeat_run: not direct-mapped";
  if m > 0 && k > 0 then begin
    let h = ref 0 in
    for j = 0 to k - 1 do
      if hits.(j) then incr h
    done;
    t.hits <- t.hits + (!h * m);
    t.misses <- t.misses + ((k - !h) * m);
    t.clock <- t.clock + (k * m);
    let last_iter = t.clock - k in
    for j = 0 to k - 1 do
      let line_addr = addrs.(j) lsr t.line_shift in
      let set = set_of t line_addr in
      t.tags.(set) <- line_addr;
      t.stamps.(set) <- last_iter + j + 1
    done
  end

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

type stats = {
  s_hits : int;
  s_misses : int;
  s_cold : int;
  s_conflict_capacity : int;  (* misses that are not cold *)
}

let stats t =
  {
    s_hits = t.hits;
    s_misses = t.misses;
    s_cold = t.cold_misses;
    s_conflict_capacity = t.misses - t.cold_misses;
  }

let hit_count t = t.hits
let miss_count t = t.misses
let references t = t.hits + t.misses

let miss_rate t =
  let r = references t in
  if r = 0 then 0.0 else float_of_int t.misses /. float_of_int r

let pp_stats ppf s =
  Fmt.pf ppf "hits %d, misses %d (cold %d, conflict/capacity %d)" s.s_hits
    s.s_misses s.s_cold s.s_conflict_capacity
