module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec
module Pool = Lf_parallel.Pool
module Obs = Lf_obs.Obs

(* Process-wide hit/miss counters, shared by every store handle and
   batch: harnesses (bench --json, lfc) report deltas of these.  A
   Counters.scope is an additional pair bumped alongside them when a
   caller wants a private window (per-connection stats in lfc serve). *)
let hits_total = Atomic.make 0
let computed_total = Atomic.make 0
let hit_count () = Atomic.get hits_total
let computed_count () = Atomic.get computed_total

module Counters = struct
  type scope = { s_hits : int Atomic.t; s_computed : int Atomic.t }

  let create () = { s_hits = Atomic.make 0; s_computed = Atomic.make 0 }
  let hits s = Atomic.get s.s_hits
  let computed s = Atomic.get s.s_computed

  let reset s =
    Atomic.set s.s_hits 0;
    Atomic.set s.s_computed 0
end

let note_hit scope =
  Atomic.incr hits_total;
  Option.iter (fun s -> Atomic.incr s.Counters.s_hits) scope

let note_computed scope =
  Atomic.incr computed_total;
  Option.iter (fun s -> Atomic.incr s.Counters.s_computed) scope

module Store = struct
  type t = {
    sdir : string;
    mu : Mutex.t;
    mutable lookups : int;
    mutable shits : int;
  }

  let default_dir () =
    match Sys.getenv_opt "LF_CACHE_DIR" with
    | Some d when d <> "" -> d
    | _ -> "_lf_cache"

  let rec mkdir_p d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let open_ ?dir () =
    let sdir = match dir with Some d -> d | None -> default_dir () in
    mkdir_p sdir;
    { sdir; mu = Mutex.create (); lookups = 0; shits = 0 }

  let dir t = t.sdir
  let ext = ".lfres"
  let path t digest = Filename.concat t.sdir (digest ^ ext)

  (* Persistence is an explicit allow-list over the engine modes, and
     every mode on it is a pure simulation: its observables are a
     deterministic function of the request, so a persisted entry can be
     replayed on any host at any time.  Two things are kept out by
     construction:

     - [Full] runs: their observable is the materialised array store,
       which is not persisted (multi-megabyte floats, reproducible by
       re-running);
     - measured wall-clock (the lf_native execution backend): host
       time is nondeterministic — machine, load, thermal state — so it
       must never be answered from a content-addressed cache.  Native
       measurements live in their own types ({!Lf_native.Native.timing})
       and cannot even be expressed as an [Exec.result]-under-digest;
       this allow-list is the second line of defence should a future
       mode blur that boundary.  The [wall_s] a batch outcome reports
       is measured around the store itself and is deliberately outside
       {!render} — warm hits report 0.0, not a replayed stale timing. *)
  let cacheable (r : Sim.request) =
    match r.Sim.mode with
    | Sim.Miss_only -> true
    | Sim.Run_compressed -> true
    | Sim.Full -> false

  (* Entry format: one observable per line, floats as the decimal
     rendering of their IEEE-754 bits so the round trip is bit-exact.
     Readers parse strictly and treat any anomaly as a miss. *)

  let render (r : Sim.request) digest (res : Exec.result) =
    let b = Buffer.create 256 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s;
                                     Buffer.add_char b '\n') fmt in
    let fbits x = Int64.to_string (Int64.bits_of_float x) in
    line "lfres1 %s" Sim.version_salt;
    line "digest %s" digest;
    let fps = Sim.Fingerprint.of_request r in
    line "fps %d" (List.length fps);
    List.iter (fun (n, v) -> line "f %s %s" n v) fps;
    line "mode %s" (Sim.mode_to_string r.Sim.mode);
    line "cycles %s" (fbits res.Exec.cycles);
    line "barrier %s" (fbits res.Exec.barrier_cycles);
    line "phases %d" (Array.length res.Exec.phase_cycles);
    Array.iter (fun c -> line "p %s" (fbits c)) res.Exec.phase_cycles;
    line "refs %d" res.Exec.total_refs;
    line "misses %d" res.Exec.total_misses;
    line "cold %d" res.Exec.cold_misses;
    line "tlb %d" res.Exec.tlb_misses;
    line "procs %d" (Array.length res.Exec.proc_misses);
    Array.iter (fun m -> line "m %d" m) res.Exec.proc_misses;
    line "end";
    Buffer.contents b

  exception Bad

  let parse digest text : Exec.result =
    let lines = String.split_on_char '\n' text in
    let cur = ref lines in
    let next () =
      match !cur with [] -> raise Bad | l :: tl -> cur := tl; l
    in
    let field key =
      let l = next () in
      let pl = String.length key + 1 in
      if String.length l > pl && String.sub l 0 pl = key ^ " " then
        String.sub l pl (String.length l - pl)
      else raise Bad
    in
    let int key = try int_of_string (field key) with Failure _ -> raise Bad in
    let flt key =
      try Int64.float_of_bits (Int64.of_string (field key))
      with Failure _ -> raise Bad
    in
    if field "lfres1" <> Sim.version_salt then raise Bad;
    if field "digest" <> digest then raise Bad;
    (* fp lines are metadata for stats: a digest match already implies
       the fingerprints match (they are folded into the digest), so the
       values are consumed, not checked. *)
    let nfps = int "fps" in
    if nfps < 0 || nfps > 64 then raise Bad;
    for _ = 1 to nfps do ignore (field "f") done;
    (match Sim.mode_of_string (field "mode") with
    | Ok (Miss_only | Run_compressed) -> ()
    | Ok Full | Error _ -> raise Bad);
    let cycles = flt "cycles" in
    let barrier_cycles = flt "barrier" in
    let nphases = int "phases" in
    if nphases < 0 || nphases > 1_000_000 then raise Bad;
    let phase_cycles = Array.init nphases (fun _ -> flt "p") in
    let total_refs = int "refs" in
    let total_misses = int "misses" in
    let cold_misses = int "cold" in
    let tlb_misses = int "tlb" in
    let nprocs = int "procs" in
    if nprocs < 0 || nprocs > 1_000_000 then raise Bad;
    let proc_misses = Array.init nprocs (fun _ -> int "m") in
    if next () <> "end" then raise Bad;
    {
      Exec.cycles;
      phase_cycles;
      barrier_cycles;
      total_refs;
      total_misses;
      cold_misses;
      tlb_misses;
      proc_misses;
      store =
        {
          Lf_ir.Interp.arrays = Hashtbl.create 1;
          extents = Hashtbl.create 1;
        };
    }

  let read_file p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let lookup t (r : Sim.request) =
    if not (cacheable r) then None
    else begin
      let digest = Sim.digest r in
      let res =
        match read_file (path t digest) with
        | exception _ -> None
        | text -> ( try Some (parse digest text) with Bad | _ -> None)
      in
      Mutex.lock t.mu;
      t.lookups <- t.lookups + 1;
      if res <> None then t.shits <- t.shits + 1;
      Mutex.unlock t.mu;
      res
    end

  let add t (r : Sim.request) (res : Exec.result) =
    cacheable r
    &&
    let digest = Sim.digest r in
    match Filename.temp_file ~temp_dir:t.sdir "lfres-" ".tmp" with
    | exception _ -> false
    | tmp -> (
        match
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (render r digest res));
          Sys.rename tmp (path t digest)
        with
        | () -> true
        | exception _ ->
            (try Sys.remove tmp with _ -> ());
            false)

  type stats = { entries : int; bytes : int; lookups : int; hits : int }

  let entries t =
    match Sys.readdir t.sdir with
    | exception _ -> []
    | files ->
        Array.to_list files
        |> List.filter_map (fun f ->
               if Filename.check_suffix f ext then
                 let p = Filename.concat t.sdir f in
                 match Unix.stat p with
                 | exception _ -> None
                 | st -> Some (p, st.Unix.st_size, st.Unix.st_mtime)
               else None)

  let stats t =
    let es = entries t in
    Mutex.lock t.mu;
    let lookups = t.lookups and hits = t.shits in
    Mutex.unlock t.mu;
    {
      entries = List.length es;
      bytes = List.fold_left (fun a (_, sz, _) -> a + sz) 0 es;
      lookups;
      hits;
    }

  (* Fingerprint metadata of one entry, straight off the header lines:
     None for entries predating the fp lines or otherwise unreadable. *)
  let entry_fingerprints text =
    match String.split_on_char '\n' text with
    | _salt :: _digest :: fps :: rest -> (
        let pfx = "fps " in
        let pl = String.length pfx in
        if String.length fps <= pl || String.sub fps 0 pl <> pfx then None
        else
          match int_of_string_opt (String.sub fps pl (String.length fps - pl))
          with
          | None -> None
          | Some n when n < 0 || n > 64 -> None
          | Some n -> (
              let rec take k lines acc =
                if k = 0 then Some (List.rev acc)
                else
                  match lines with
                  | l :: tl when String.length l > 2 && String.sub l 0 2 = "f "
                    -> (
                      let body = String.sub l 2 (String.length l - 2) in
                      match String.index_opt body ' ' with
                      | None -> None
                      | Some i ->
                          take (k - 1) tl
                            ((String.sub body 0 i,
                              String.sub body (i + 1)
                                (String.length body - i - 1))
                            :: acc))
                  | _ -> None
              in
              take n rest []))
    | _ -> None

  type fingerprint_stats = {
    fp_live : (string * string) list;
    fp_counts : ((string * string) * int) list;
    fp_stale : int;
    fp_scanned : int;
    fp_unreadable : int;
  }

  let fingerprint_stats t =
    let live = Sim.Fingerprint.all () in
    let counts = Hashtbl.create 16 in
    let stale = ref 0 and scanned = ref 0 and unreadable = ref 0 in
    List.iter
      (fun (p, _, _) ->
        incr scanned;
        match read_file p with
        | exception _ -> incr unreadable
        | text -> (
            match entry_fingerprints text with
            | None -> incr unreadable
            | Some fps ->
                let is_stale =
                  List.exists
                    (fun (n, v) ->
                      match List.assoc_opt n live with
                      | Some lv -> lv <> v
                      | None -> true)
                    fps
                in
                if is_stale then incr stale;
                List.iter
                  (fun fp ->
                    Hashtbl.replace counts fp
                      (1 + Option.value ~default:0 (Hashtbl.find_opt counts fp)))
                  fps))
      (entries t);
    let fp_counts =
      Hashtbl.fold (fun fp n acc -> (fp, n) :: acc) counts []
      |> List.sort compare
    in
    {
      fp_live = live;
      fp_counts;
      fp_stale = !stale;
      fp_scanned = !scanned;
      fp_unreadable = !unreadable;
    }

  let gc ~max_bytes t =
    (* newest-first: keep entries while they fit, drop the stale tail *)
    let es =
      List.sort (fun (_, _, a) (_, _, b) -> compare b a) (entries t)
    in
    let removed = ref 0 and kept = ref 0 in
    List.iter
      (fun (p, sz, _) ->
        if !kept + sz <= max_bytes then kept := !kept + sz
        else if (try Sys.remove p; true with _ -> false) then incr removed)
      es;
    !removed

  let clear t =
    let removed = ref 0 in
    List.iter
      (fun (p, _, _) ->
        if (try Sys.remove p; true with _ -> false) then incr removed)
      (entries t);
    !removed
end

type failure = Timed_out of float | Crashed of string

type outcome = {
  request : Sim.request;
  rdigest : string;
  result : (Exec.result, failure) Stdlib.result;
  from_store : bool;
  wall_s : float;
}

type summary = {
  total : int;
  unique : int;
  hits : int;
  computed : int;
  failed : int;
  wall_s : float;
}

let count_opt sink name = Option.iter (fun s -> Obs.count s name) sink

let try_store ?scope st req =
  match Store.lookup st req with
  | Some res ->
      note_hit scope;
      Some res
  | None -> None

let compute_one ?store ?scope ~jobs ?pool ?timeout_s req =
  let t0 = Unix.gettimeofday () in
  match Exec.run_request ~jobs ?pool req with
  | exception e -> (Error (Crashed (Printexc.to_string e)), Unix.gettimeofday () -. t0)
  | res -> (
      let dt = Unix.gettimeofday () -. t0 in
      match timeout_s with
      | Some budget when dt > budget -> (Error (Timed_out dt), dt)
      | _ ->
          Option.iter (fun st -> ignore (Store.add st req res)) store;
          note_computed scope;
          (Ok res, dt))

let run ?store ?(cold = false) ?jobs ?pool ?timeout_s ?sink ?scope requests =
  let t0 = Unix.gettimeofday () in
  let reqs = Array.of_list requests in
  let n = Array.length reqs in
  let digests = Array.map Sim.digest reqs in
  (* dedup: map each request to the first index with its digest *)
  let first = Hashtbl.create (max 16 n) in
  let rep = Array.init n (fun i ->
      match Hashtbl.find_opt first digests.(i) with
      | Some j -> j
      | None -> Hashtbl.add first digests.(i) i; i)
  in
  let uniques = ref [] in
  Array.iteri (fun i j -> if i = j then uniques := i :: !uniques) rep;
  let uniques = Array.of_list (List.rev !uniques) in
  for _ = 1 to n do count_opt sink "batch.requests" done;
  (* answer what the store can; collect the rest for computation *)
  let results :
      ((Exec.result, failure) Stdlib.result * bool * float) option array =
    Array.make n None
  in
  let to_compute = ref [] in
  Array.iter
    (fun i ->
      let hit =
        if cold then None
        else
          Option.bind store (fun st -> Store.lookup st reqs.(i))
      in
      match hit with
      | Some res ->
          note_hit scope;
          count_opt sink "batch.hit";
          results.(i) <- Some (Ok res, true, 0.0)
      | None -> to_compute := i :: !to_compute)
    uniques;
  let to_compute = Array.of_list (List.rev !to_compute) in
  let m = Array.length to_compute in
  let job k =
    let i = to_compute.(k) in
    (* inner runs stay serial: the batch layer owns the host domains *)
    let r, dt = compute_one ?store ?scope ~jobs:1 ?timeout_s reqs.(i) in
    results.(i) <- Some (r, false, dt)
  in
  let jobs = match jobs with Some j -> max 1 j | None -> Exec.default_jobs () in
  let jobs = min jobs m in
  (if m > 0 then
     if jobs <= 1 then
       for k = 0 to m - 1 do job k done
     else
       match pool with
       | Some p -> Pool.dynamic_for p ~lo:0 ~hi:(m - 1) job
       | None ->
           Pool.with_pool jobs (fun p ->
               Pool.dynamic_for p ~lo:0 ~hi:(m - 1) job));
  Array.iter
    (fun i ->
      match results.(i) with
      | Some ((Ok _, false, _)) -> count_opt sink "batch.computed"
      | Some ((Error _, _, _)) -> count_opt sink "batch.failed"
      | _ -> ())
    to_compute;
  let outcomes =
    Array.init n (fun i ->
        let result, from_store, wall_s =
          match results.(rep.(i)) with
          | Some x -> x
          | None -> (Error (Crashed "batch: job never ran"), false, 0.0)
        in
        (* repeats share the representative's result but report no wall *)
        let wall_s = if i = rep.(i) then wall_s else 0.0 in
        { request = reqs.(i); rdigest = digests.(i); result; from_store;
          wall_s })
  in
  let hits = ref 0 and computed = ref 0 and failed = ref 0 in
  Array.iter
    (fun i ->
      match results.(i) with
      | Some (Ok _, true, _) -> incr hits
      | Some (Ok _, false, _) -> incr computed
      | Some (Error _, _, _) | None -> incr failed)
    uniques;
  let summary =
    {
      total = n;
      unique = Array.length uniques;
      hits = !hits;
      computed = !computed;
      failed = !failed;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  (outcomes, summary)

let results_exn outcomes =
  Array.map
    (fun o ->
      match o.result with
      | Ok r -> r
      | Error (Timed_out dt) ->
          Fmt.failwith "batch: request %s timed out (%.2fs)" o.rdigest dt
      | Error (Crashed msg) ->
          Fmt.failwith "batch: request %s failed: %s" o.rdigest msg)
    outcomes

let run_one ?store ?(cold = false) ?jobs ?pool ?sink ?scope req =
  match sink with
  | Some _ ->
      (* an instrumented run always computes: a replayed result cannot
         populate the sink.  Persist it for future sink-less hits. *)
      let res = Exec.run_request ?jobs ?pool ?sink req in
      note_computed scope;
      Option.iter (fun st -> ignore (Store.add st req res)) store;
      res
  | None -> (
      let hit =
        if cold then None
        else Option.bind store (fun st -> Store.lookup st req)
      in
      match hit with
      | Some res ->
          note_hit scope;
          res
      | None ->
          let res = Exec.run_request ?jobs ?pool req in
          note_computed scope;
          Option.iter (fun st -> ignore (Store.add st req res)) store;
          res)

(* One memoised handle per resolved store root, so every consumer of
   the same Run_opts policy (CLI, serve workers, tests) shares a handle
   and its lookup/hit stats.  Policies name roots, never handles. *)
let handles : (string, Store.t) Hashtbl.t = Hashtbl.create 4
let handles_mu = Mutex.create ()

let store_of_opts (o : Run_opts.t) =
  match o.Run_opts.store with
  | Run_opts.Store_off -> None
  | Store_in dir | Store_cold dir ->
      let root =
        match dir with Some d -> d | None -> Store.default_dir ()
      in
      Mutex.lock handles_mu;
      let st =
        match Hashtbl.find_opt handles root with
        | Some st -> st
        | None ->
            let st = Store.open_ ~dir:root () in
            Hashtbl.add handles root st;
            st
      in
      Mutex.unlock handles_mu;
      Some st

let run_with ?pool ?scope (o : Run_opts.t) requests =
  run
    ?store:(store_of_opts o)
    ~cold:(Run_opts.is_cold o) ?jobs:o.Run_opts.jobs ?pool
    ?timeout_s:o.Run_opts.timeout_s ?sink:o.Run_opts.sink ?scope requests

let run_one_with ?pool ?scope (o : Run_opts.t) req =
  run_one
    ?store:(store_of_opts o)
    ~cold:(Run_opts.is_cold o) ?jobs:o.Run_opts.jobs ?pool
    ?sink:o.Run_opts.sink ?scope req

let pp_summary ppf s =
  Fmt.pf ppf "%d request%s (%d unique): %d hit%s, %d computed%s in %.2fs"
    s.total
    (if s.total = 1 then "" else "s")
    s.unique s.hits
    (if s.hits = 1 then "" else "s")
    s.computed
    (if s.failed = 0 then "" else Printf.sprintf ", %d FAILED" s.failed)
    s.wall_s
