(** Batch simulation with a persistent, content-addressed result store.

    Every sweep in the system (bench experiments, [lfc tune], the
    qcheck matrices) used to re-simulate identical configurations from
    scratch on each invocation; the only memoisation was in-memory and
    per-process.  [Lf_batch] adds the missing layers on top of
    {!Lf_machine.Sim.request} — the value that {e names} a simulation:

    - {!Store}: an on-disk map from request digest to serialised
      {!Lf_machine.Exec.result}, shared by concurrent processes;
    - {!run}: a batch orchestrator that dedups a request list by
      digest, answers hits from the store, and shards the misses across
      host domains.

    {b Cache-key discipline} (see also sim.mli).  Only requests are
    cacheable, and a request contains everything that determines the
    simulated observables.  Three things deliberately live outside the
    key and therefore cannot be served stale: [jobs]/[pool] (the engine
    is bit-identical for every host-domain count), an attached [sink]
    (observation is passive, but a {e replayed} result cannot populate
    one — so a request executed with a per-run sink is always computed,
    though its result is still stored for future sink-less hits), and
    [Full]-mode array contents (the store persists observables, not
    multi-megabyte float arrays, so [Full] requests are never answered
    from the store). *)

module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec

(** {1 The persistent store} *)

module Store : sig
  type t

  val default_dir : unit -> string
  (** [$LF_CACHE_DIR] when set, else ["_lf_cache"] in the current
      directory. *)

  val open_ : ?dir:string -> unit -> t
  (** Open (creating if necessary) the store rooted at [dir] (default
      {!default_dir}).  Opening never scans the directory; entries are
      addressed directly by digest. *)

  val dir : t -> string

  val cacheable : Sim.request -> bool
  (** Explicit allow-list of persistable requests: [true] exactly for
      the pure simulation modes ([Miss_only], [Run_compressed]), whose
      observables are deterministic functions of the request.
      [Full]-mode requests are excluded (their observable is the array
      store, which is not persisted), and measured wall-clock results
      from the native execution backend are excluded {e by type}: a
      native timing is never an [Exec.result] and has no request digest
      to be stored under.  Host time is nondeterministic, so replaying
      it from a content-addressed cache would be a lie — the [wall_s]
      in an {!outcome} is measured around the store and reports [0.0]
      for warm hits.  (DESIGN §7 states the rule; test/test_batch.ml
      pins it.) *)

  val lookup : t -> Sim.request -> Exec.result option
  (** The persisted result of this request, or [None] on a miss.  A
      corrupt, truncated, stale-salted or otherwise unreadable entry is
      a miss, never an error — concurrent writers and killed processes
      may leave anything on disk.  The returned result carries an empty
      array store (like a [Miss_only] run). *)

  val add : t -> Sim.request -> Exec.result -> bool
  (** Persist a result (atomically: tempfile + rename, so concurrent
      writers of the same digest are safe and readers never observe a
      partial entry).  Returns [false] without writing when the request
      is not {!cacheable}.  I/O failures are swallowed: a read-only or
      full disk degrades the store to a no-op, it does not break the
      simulation. *)

  type stats = {
    entries : int;
    bytes : int;  (** total size of all entries *)
    lookups : int;  (** lookups through this handle *)
    hits : int;  (** hits through this handle *)
  }

  val stats : t -> stats

  type fingerprint_stats = {
    fp_live : (string * string) list;
        (** the process's live fingerprint set
            ({!Sim.Fingerprint.all}) *)
    fp_counts : ((string * string) * int) list;
        (** entry count per (module, version) pair found on disk,
            sorted *)
    fp_stale : int;
        (** entries carrying at least one fingerprint that differs
            from the live set — unreachable by current digests, but
            still occupying bytes until {!gc} *)
    fp_scanned : int;
    fp_unreadable : int;
        (** entries without parseable fingerprint metadata *)
  }

  val fingerprint_stats : t -> fingerprint_stats
  (** Scan every entry's fingerprint header lines: how much of the
      store is live under the current module versions and how much is
      stale, per fingerprint — visible {e before} deciding to gc.
      Entries record the fingerprints they were computed under
      ({!Sim.Fingerprint.of_request}); a digest lookup never consults
      them (the digest already folds them in), so this is pure
      reporting. *)

  val gc : max_bytes:int -> t -> int
  (** Delete oldest entries (by modification time) until the store
      holds at most [max_bytes]; returns the number removed. *)

  val clear : t -> int
  (** Delete every entry; returns the number removed. *)
end

(** {1 Counter scopes}

    The process-wide {!hit_count}/{!computed_count} view below is
    useless for per-client accounting in a long-running daemon: every
    connection's traffic lands in the same two integers.  A
    {!Counters.scope} is an independent, resettable hit/computed pair
    that {!run}, {!run_one} and {!try_store} bump {e in addition to}
    the process-wide view when one is passed — [lfc serve] keeps one
    scope per client connection and reports it in that connection's
    stats. *)

module Counters : sig
  type scope

  val create : unit -> scope
  val hits : scope -> int
  val computed : scope -> int

  val reset : scope -> unit
  (** Zero both counters (e.g. between measurement windows). *)
end

(** {1 Batch execution} *)

type failure =
  | Timed_out of float  (** wall-clock seconds the job actually took *)
  | Crashed of string  (** exception text *)

type outcome = {
  request : Sim.request;
  rdigest : string;
  result : (Exec.result, failure) Stdlib.result;
  from_store : bool;
  wall_s : float;  (** 0.0 for store hits and deduplicated repeats *)
}

type summary = {
  total : int;  (** requests submitted *)
  unique : int;  (** distinct digests among them *)
  hits : int;  (** unique requests answered from the store *)
  computed : int;  (** unique requests simulated *)
  failed : int;  (** unique requests that timed out or crashed *)
  wall_s : float;
}

val run_with :
  ?pool:Lf_parallel.Pool.t ->
  ?scope:Counters.scope ->
  Run_opts.t ->
  Sim.request list ->
  outcome array * summary
(** The primary batch entry point: {!run} with the policy knobs
    carried by one {!Run_opts.t} — engine choices are already inside
    the requests; jobs, store policy (root + cold), timeout and sink
    come from the options.  [pool] and [scope] are live host resources
    and are passed alongside (see run_opts.mli).  Bit-identical to the
    equivalent legacy {!run} call by construction
    (test/test_run_opts.ml pins it). *)

val run_one_with :
  ?pool:Lf_parallel.Pool.t ->
  ?scope:Counters.scope ->
  Run_opts.t ->
  Sim.request ->
  Exec.result
(** {!run_one} under a {!Run_opts.t}: store policy, jobs and sink from
    the options.  [timeout_s] does not apply — a single synchronous
    run has no batch to report a timeout into. *)

val store_of_opts : Run_opts.t -> Store.t option
(** The store handle a policy names: [None] for {!Run_opts.Store_off},
    else a handle memoised per resolved root so every consumer of the
    same policy shares one handle (and its {!Store.stats}). *)

val run :
  ?store:Store.t ->
  ?cold:bool ->
  ?jobs:int ->
  ?pool:Lf_parallel.Pool.t ->
  ?timeout_s:float ->
  ?sink:Lf_obs.Obs.sink ->
  ?scope:Counters.scope ->
  Sim.request list ->
  outcome array * summary
(** {!run_with} with the options spelled as optional arguments — the
    historical surface, deprecated in favour of {!Run_opts.t} but kept
    bit-identical (both forms drive the same core).

    Execute a batch.  The requests are deduplicated by digest (repeats
    share the representative's outcome); with a [store], hits are
    answered without simulating unless [cold] (default [false]) forces
    recomputation — computed results are persisted either way, so a
    cold run warms the store.  Misses are sharded across up to [jobs]
    (default {!Lf_machine.Exec.default_jobs}) host domains with
    self-scheduling ([pool] supplies an existing domain pool to run
    on); each simulation inside the batch runs on its worker domain
    alone, so results remain bit-identical to a serial batch.

    [timeout_s] is a per-job wall-clock budget: a simulation that
    exceeds it is reported as {!Timed_out} and its result is neither
    returned nor persisted.  (The check is cooperative — the job runs
    to completion first; domains cannot be killed.)  A job that raises
    is reported as {!Crashed}; neither aborts the rest of the batch,
    and {!results_exn} re-raises the first failure in request order
    after the join — the error-propagation contract of
    {!Lf_parallel.Pool.run}, lifted to batches.

    [sink] receives progress as named counters ([batch.requests],
    [batch.hit], [batch.computed], [batch.failed]); it is {e not}
    attached to the individual simulations (see the cache-key
    discipline above — use {!run_one} for an instrumented run). *)

val results_exn : outcome array -> Exec.result array
(** The batch's results, raising [Failure] on the first (in request
    order) timeout or crash. *)

val run_one :
  ?store:Store.t ->
  ?cold:bool ->
  ?jobs:int ->
  ?pool:Lf_parallel.Pool.t ->
  ?sink:Lf_obs.Obs.sink ->
  ?scope:Counters.scope ->
  Sim.request -> Exec.result
(** One request through the store: answered from it when possible
    ([cold] forces computation), computed with
    {!Lf_machine.Exec.run_request} ?jobs ?pool and persisted otherwise.
    Unlike {!run}, [sink] here {e is} the per-run attribution sink: when
    one is supplied the request is always computed (a replay cannot
    populate a sink), and the fresh result is still persisted. *)

val hit_count : unit -> int
val computed_count : unit -> int
(** Process-wide counters of store hits and computed simulations by
    {!run}/{!run_one}/{!try_store}, for hit/miss reporting in
    harnesses. *)

val try_store :
  ?scope:Counters.scope -> Store.t -> Sim.request -> Exec.result option
(** {!Store.lookup} that also maintains the hit counters (process-wide
    and, when given, [scope]) — the fast-path probe of a service that
    answers warm hits without entering the batch layer at all.  A miss
    counts nothing; the caller decides what to do with it. *)

val pp_summary : Format.formatter -> summary -> unit
