module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec

type store_policy =
  | Store_off
  | Store_in of string option
  | Store_cold of string option

type t = {
  engine : Sim.mode;
  jobs : int option;
  store : store_policy;
  timeout_s : float option;
  sink : Lf_obs.Obs.sink option;
}

let default =
  {
    engine = Sim.Run_compressed;
    jobs = None;
    store = Store_in None;
    timeout_s = None;
    sink = None;
  }

let make ?(engine = default.engine) ?jobs ?(store = default.store) ?timeout_s
    ?sink () =
  { engine; jobs; store; timeout_s; sink }

let with_engine engine t = { t with engine }
let with_jobs jobs t = { t with jobs = Some jobs }
let with_store store t = { t with store }
let with_timeout timeout_s t = { t with timeout_s = Some timeout_s }
let with_sink sink t = { t with sink = Some sink }
let without_store t = { t with store = Store_off }

let cold t =
  match t.store with
  | Store_off -> t
  | Store_in d | Store_cold d -> { t with store = Store_cold d }

let jobs_or_default t =
  match t.jobs with Some j -> max 1 j | None -> Exec.default_jobs ()

let is_cold t = match t.store with Store_cold _ -> true | _ -> false
let store_enabled t = match t.store with Store_off -> false | _ -> true

let store_root t =
  match t.store with Store_off -> None | Store_in d | Store_cold d -> d

let exec ?pool t =
  { Exec.o_jobs = t.jobs; o_pool = pool; o_sink = t.sink }

let of_env ?(base = default) () =
  let ( let* ) = Result.bind in
  let* engine =
    match Sys.getenv_opt "LF_ENGINE" with
    | None | Some "" -> Ok base.engine
    | Some s -> (
        match Sim.mode_of_string s with
        | Ok m -> Ok m
        | Error _ ->
            Error
              (Printf.sprintf
                 "LF_ENGINE=%s: expected full, miss-only or runs" s))
  in
  let* timeout_s =
    match Sys.getenv_opt "LF_TIMEOUT_S" with
    | None | Some "" -> Ok base.timeout_s
    | Some s -> (
        match float_of_string_opt s with
        | Some f when f > 0.0 -> Ok (Some f)
        | Some _ | None ->
            Error
              (Printf.sprintf "LF_TIMEOUT_S=%s: expected positive seconds" s))
  in
  let* store =
    match Sys.getenv_opt "LF_STORE" with
    | None | Some "" -> Ok base.store
    | Some "off" -> Ok Store_off
    | Some "on" -> Ok (Store_in None)
    | Some s -> Error (Printf.sprintf "LF_STORE=%s: expected on or off" s)
  in
  let* store =
    match Sys.getenv_opt "LF_COLD" with
    | None | Some "" | Some "0" | Some "false" -> Ok store
    | Some "1" | Some "true" -> (
        match store with
        | Store_off -> Ok Store_off
        | Store_in d | Store_cold d -> Ok (Store_cold d))
    | Some s -> Error (Printf.sprintf "LF_COLD=%s: expected 0 or 1" s)
  in
  Ok { base with engine; timeout_s; store }

let pp ppf t =
  let policy =
    match t.store with
    | Store_off -> "off"
    | Store_in None -> "warm"
    | Store_in (Some d) -> "warm:" ^ d
    | Store_cold None -> "cold"
    | Store_cold (Some d) -> "cold:" ^ d
  in
  Fmt.pf ppf "engine=%s jobs=%s store=%s%s%s"
    (Sim.mode_to_string t.engine)
    (match t.jobs with Some j -> string_of_int j | None -> "default")
    policy
    (match t.timeout_s with
    | Some s -> Printf.sprintf " timeout=%gs" s
    | None -> "")
    (if t.sink <> None then " sink" else "")
