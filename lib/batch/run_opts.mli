(** The unified request-options record.

    Nine PRs of growth left execution options scattered as drifting
    optional-argument sets: [?mode] on the [Sim] builders, [?engine] on
    the CLI, [?jobs ?pool ?sink] on {!Lf_machine.Exec}, [?store ?cold
    ?timeout_s ?scope] on {!Batch}, and hand-rolled subsets in serve,
    queue and bench.  [Run_opts.t] names the {e policy} half of that
    surface once: which engine tier simulates, how many host domains,
    whether and where results persist, the per-job time budget, and an
    optional attribution sink.

    Two kinds of knob deliberately stay out:

    - {e live host resources} — a {!Lf_parallel.Pool.t} or a
      {!Batch.Counters.scope} is a handle, not a policy, so it cannot
      be carried by a value meant to be built once (possibly from the
      environment) and reused; pools and scopes are passed alongside
      ({!Batch.run_with} [?pool ?scope]).
    - {e anything inside the request digest} — machine, variant,
      layout, steps are part of {!Lf_machine.Sim.request} itself.  The
      one exception is [engine]: the engine tier {e is} part of the
      digest, but it is policy (the caller chooses a tier for a whole
      batch), so builders take it from here when constructing requests.

    The record is immutable pure data; the [with_*] combinators return
    updated copies.  {!Batch.run_with}/{!Batch.run_one_with} consume
    it; {!exec} lowers it onto the host-side {!Lf_machine.Exec.opts}
    subset. *)

module Sim = Lf_machine.Sim

(** Where results persist, and whether hits are honoured.  A policy
    names a store {e root}, never holds an open handle — handles are
    memoised per root by {!Batch.store_of_opts} so every consumer of
    the same policy shares one handle (and its hit/lookup stats). *)
type store_policy =
  | Store_off  (** never read or write the persistent store *)
  | Store_in of string option
      (** read hits and persist computed results under this root
          ([None] = {!Batch.Store.default_dir}, i.e. [$LF_CACHE_DIR]
          or [_lf_cache]) *)
  | Store_cold of string option
      (** ignore hits (force recomputation) but still persist, so a
          cold pass warms the store under the same root *)

type t = {
  engine : Sim.mode;
      (** simulation tier for requests built under these options
          (default [Run_compressed], the fast pure engine) *)
  jobs : int option;
      (** host domains; [None] defers to
          {!Lf_machine.Exec.default_jobs} ([LF_JOBS]) at use *)
  store : store_policy;  (** default [Store_in None] *)
  timeout_s : float option;  (** per-job wall-clock budget *)
  sink : Lf_obs.Obs.sink option;  (** passive attribution sink *)
}

val default : t
(** [Run_compressed] engine, default jobs, warm default store, no
    timeout, no sink — the options every CLI subcommand starts from. *)

val make :
  ?engine:Sim.mode ->
  ?jobs:int ->
  ?store:store_policy ->
  ?timeout_s:float ->
  ?sink:Lf_obs.Obs.sink ->
  unit ->
  t

(** {2 Combinators} *)

val with_engine : Sim.mode -> t -> t
val with_jobs : int -> t -> t
val with_store : store_policy -> t -> t
val with_timeout : float -> t -> t
val with_sink : Lf_obs.Obs.sink -> t -> t

val without_store : t -> t
(** Set {!Store_off}. *)

val cold : t -> t
(** Make the current store policy cold: hits ignored, writes kept.
    [Store_off] stays off. *)

(** {2 Accessors} *)

val jobs_or_default : t -> int
(** The effective host-domain count: [jobs] when set, else
    {!Lf_machine.Exec.default_jobs}. *)

val is_cold : t -> bool
val store_enabled : t -> bool

val store_root : t -> string option
(** The store root named by the policy ([None] for the default root
    {e and} for [Store_off] — check {!store_enabled} first). *)

val exec : ?pool:Lf_parallel.Pool.t -> t -> Lf_machine.Exec.opts
(** Lower onto the host-side options subset understood by
    {!Lf_machine.Exec.run_opts}: jobs and sink carry over, [pool] is
    supplied here because it is a live resource (see above). *)

val of_env : ?base:t -> unit -> (t, string) Stdlib.result
(** [base] (default {!default}) overridden by the environment:
    [LF_ENGINE] (["full"]/["miss-only"]/["runs"]), [LF_COLD] (["1"] or
    ["true"] makes the store policy cold), [LF_STORE] (["off"]
    disables persistence), [LF_TIMEOUT_S] (float seconds).  [LF_JOBS]
    is {e not} read here — it already feeds
    {!Lf_machine.Exec.default_jobs}, which {!jobs_or_default} consults,
    so reading it twice would create two sources of truth.  The store
    root likewise stays [None]: [$LF_CACHE_DIR] flows through
    {!Batch.Store.default_dir}.  A malformed value is an [Error] naming
    the variable, never a silent fallback. *)

val pp : Format.formatter -> t -> unit
