(* Shared sweep-mix construction (see sweep.mli). *)

module Ir = Lf_ir.Ir
module Partition = Lf_core.Partition
module Cache = Lf_cache.Cache
module Machine = Lf_machine.Machine
module Sim = Lf_machine.Sim

let cache_shape (m : Machine.config) =
  {
    Partition.capacity = m.Machine.cache.Cache.capacity;
    line = m.Machine.cache.Cache.line;
    assoc = m.Machine.cache.Cache.assoc;
  }

let partitioned_layout m (p : Ir.program) =
  Partition.cache_partitioned ~cache:(cache_shape m) p.Ir.decls

(* Strip-mining factor sized so one strip of every array fits in its
   cache partition (paper §3.4): per fused iteration each array touches
   one "row" of inner elements. *)
let strip_for m (p : Ir.program) =
  let narrays = List.length p.Ir.decls in
  let inner_bytes =
    List.fold_left
      (fun acc (d : Ir.decl) ->
        match d.extents with
        | [] -> acc
        | _ :: rest -> max acc (List.fold_left ( * ) 8 rest))
      8 p.Ir.decls
  in
  let sp = Partition.partition_size ~cache:(cache_shape m) ~narrays in
  max 2 ((sp / inner_bytes) - 2)

let kernels : (string * (int -> Ir.program)) list =
  [
    ("ll18", fun n -> Lf_kernels.Ll18.program ~n ());
    ("calc", fun n -> Lf_kernels.Calc.program ~n ());
    ("jacobi", fun n -> Lf_kernels.Jacobi.program ~n ());
    ("filter", fun n -> Lf_kernels.Filter.program ~rows:n ~cols:(n / 2 + 8) ());
    ( "tomcatv",
      fun n ->
        List.hd (Lf_kernels.Apps.tomcatv ~n ()).Lf_kernels.Apps.sequences );
    ( "hydro2d",
      fun n ->
        List.hd
          (Lf_kernels.Apps.hydro2d ~rows:n ~cols:(n / 2 + 8) ())
            .Lf_kernels.Apps.sequences );
  ]

let kernel_names = List.map fst kernels
let kernel name = List.assoc_opt name kernels

(* A candidate goes into the mix only if its schedule is actually
   buildable — small sizes can violate the Theorem 1 iteration-count
   threshold for some fused kernels.  Sim.legal is pure (no domains),
   so mix construction is fork-safe. *)
let mix ?(kernels = kernel_names) ?(machines = [ Machine.ksr2; Machine.convex ])
    ?(modes = [ Sim.Miss_only; Sim.Run_compressed ]) ?(nprocs = 4) ~n () =
  let progs =
    List.map
      (fun name ->
        match kernel name with
        | Some f -> f n
        | None ->
          invalid_arg
            (Printf.sprintf "Sweep.mix: unknown kernel %S (try %s)" name
               (String.concat ", " kernel_names)))
      kernels
  in
  List.concat_map
    (fun p ->
      List.concat_map
        (fun machine ->
          let layout = partitioned_layout machine p in
          let strip = strip_for machine p in
          List.concat_map
            (fun mode ->
              List.filter Sim.legal
                [
                  Sim.unfused ~layout ~mode ~machine ~nprocs p;
                  Sim.fused ~layout ~mode ~machine ~nprocs ~strip p;
                ])
            modes)
        machines)
    progs
