(** Multi-process work queue over a shared directory: fan a sweep's
    store misses out to N worker processes (DESIGN §12).

    A sweep used to be bounded by one process's domains.  The queue
    turns the filesystem the store already shares into a coordination
    medium: an enqueuer writes one task file per missing request
    digest, any number of [lfc worker] processes (local or on any host
    sharing the filesystem) claim tasks by atomic rename, compute them
    through {!Lf_batch.Batch.run_one} and publish to the store, and
    the enqueuer waits for the queue to drain — after which the sweep
    is pure store hits.

    {b Protocol.}  Under the queue root:
    - [tasks/<digest>.task] — pending; content is the request's
      {!Lf_machine.Sim.canonical} text, written atomically;
    - [leases/<digest>.<wid>.lease] — claimed by worker [wid]; the
      file's mtime is the worker's heartbeat, refreshed from a thread
      well inside the lease ttl;
    - [failed/<digest>.err] — terminal failures, never retried;
    - [fingerprints] — the enqueuer's {!Lf_machine.Sim.Fingerprint}
      view, adopted by workers so digests mean the same thing in every
      process.

    Claiming is [rename(tasks/d.task, leases/d.w.lease)]: exactly one
    racing worker's rename succeeds, the rest get [ENOENT] and move
    on.  A worker that dies mid-task stops heartbeating; when the
    lease's mtime age exceeds the ttl any other worker renames it back
    into [tasks/] and the task is re-run.  Lease stealing is
    {e idempotent by construction}: results are content-addressed and
    published atomically, so the worst interleaving recomputes a
    result and overwrites it with identical bytes — wasted work, never
    a wrong answer.  Completion deletes the lease; a vanished lease
    ([ENOENT]) is tolerated everywhere. *)

type t

val open_ : dir:string -> t
(** Open (creating if necessary) the queue rooted at [dir]. *)

val dir : t -> string

val fingerprint_file : t -> string
(** Path of the shared fingerprint view
    ({!Lf_machine.Sim.Fingerprint.save_file} format). *)

(** {1 Enqueue} *)

type enqueue_outcome =
  [ `Enqueued  (** task file written *)
  | `Already_queued  (** pending or currently leased *)
  | `Already_failed  (** terminally failed; not retried *)
  | `Not_cacheable  (** the store could never answer it (Full mode) *)
  ]

val enqueue : t -> Lf_machine.Sim.request -> enqueue_outcome
(** Offer one request to the queue.  Duplicate enqueues (including the
    race with a lease completing concurrently) are harmless: the task
    recomputes and republishes identical bytes. *)

type enqueue_stats = {
  e_total : int;  (** requests submitted *)
  e_unique : int;  (** distinct digests among them *)
  e_hits : int;  (** already answered by the store *)
  e_enqueued : int;  (** task files written *)
  e_queued_before : int;  (** already pending or leased *)
  e_failed_before : int;  (** terminally failed earlier *)
  e_uncacheable : int;
}

val enqueue_misses :
  ?save_fingerprints:bool ->
  ?cold:bool ->
  t ->
  store:Lf_batch.Batch.Store.t ->
  Lf_machine.Sim.request list ->
  enqueue_stats
(** Deduplicate by digest and enqueue every request the store cannot
    answer ([cold] skips the store probe and enqueues everything).  First writes the live fingerprint view to
    {!fingerprint_file} (unless [save_fingerprints:false]) so workers
    joining at any point interpret digests under the enqueuer's view.
    This is also the [--watch] re-enqueue primitive: after a
    fingerprint override changes digests, exactly the now-missing
    requests are enqueued again. *)

(** {1 Worker} *)

val default_ttl : float
(** Default lease time-to-live in seconds (10.0). *)

val claim : wid:string -> t -> (string * string * string) option
(** Claim one pending task by atomic rename:
    [(digest, canonical_text, lease_path)].  Exposed for tests; normal
    use is {!worker}. *)

val reclaim_expired : ttl:float -> t -> int
(** Rename every lease whose heartbeat mtime is older than [ttl]
    seconds back into the pending set; returns the number reclaimed. *)

type worker_stats = {
  w_claimed : int;
  w_computed : int;  (** simulations actually run *)
  w_hits : int;  (** claims already answered by the store *)
  w_failed : int;
  w_reclaimed : int;  (** expired leases returned to the queue *)
}

val worker :
  ?wid:string ->
  ?ttl:float ->
  ?poll_s:float ->
  ?idle_timeout_s:float ->
  ?jobs:int ->
  ?opts:Lf_batch.Run_opts.t ->
  store:Lf_batch.Batch.Store.t ->
  t ->
  worker_stats
(** Run a worker loop: adopt the queue's fingerprint view, reclaim
    expired leases, claim, compute ({!Lf_batch.Batch.run_one}, which
    re-probes the store and publishes the result), delete the lease;
    repeat.  A claim whose canonical text does not parse, whose digest
    disagrees with this process's fingerprint view, or whose
    computation raises is recorded in [failed/] and never retried.

    Without [idle_timeout_s] the worker {e drains}: it returns once no
    tasks are pending {e and} no leases are outstanding (waiting out —
    and reclaiming — other workers' leases if they die).  With
    [idle_timeout_s] it keeps polling until that much idle time
    passes, for long-lived workers fed by repeated sweeps.  [wid]
    defaults to a pid-derived id; it must not contain ['.'], ['/'] or
    whitespace.

    [opts] is the unified {!Lf_batch.Run_opts.t}: its [jobs] field
    applies to each computation (an explicit [?jobs], the legacy
    spelling, wins when both are given).  The other policy fields do
    not apply here — each task's engine is inside its request, and the
    queue's store handle is the [store] argument. *)

(** {1 Observation} *)

type qstatus = { pending : int; leased : int; failed : int }

val status : t -> qstatus

val pending_digests : t -> string list

val failures : t -> (string * string) list
(** [(digest, error text)] of every terminal failure. *)

val wait : ?poll_s:float -> ?timeout_s:float -> t -> [ `Drained | `Timeout ]
(** Block until the queue is drained (no pending tasks, no outstanding
    leases) or [timeout_s] elapses. *)

val pp_status : Format.formatter -> qstatus -> unit
val pp_worker_stats : Format.formatter -> worker_stats -> unit
