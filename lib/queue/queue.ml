(* Filesystem work-queue (see queue.mli for the protocol contract).

   Directory layout under the queue root:

     tasks/<digest>.task         pending work, one canonical request
     leases/<digest>.<wid>.lease claimed work; mtime is the heartbeat
     failed/<digest>.err         terminal failures (error text)
     fingerprints                the enqueuer's Sim.Fingerprint view

   Every transition is a single atomic filesystem operation (rename or
   tempfile+rename), so any number of enqueuers and workers can share
   the directory with no locking:

     enqueue   = tempfile + rename into tasks/
     claim     = rename tasks/ -> leases/ (losing the race = ENOENT,
                 move on to the next candidate)
     heartbeat = utimes on the held lease
     reclaim   = rename an expired lease back into tasks/
     complete  = publish to the store (itself atomic), remove the lease
     fail      = tempfile + rename into failed/, remove the lease

   Crash safety is inherited from the store: results are
   content-addressed and published atomically, so a stolen lease can at
   worst recompute a result and overwrite it with identical bytes —
   wasted work, never a wrong answer. *)

module Sim = Lf_machine.Sim
module Batch = Lf_batch.Batch
module Run_opts = Lf_batch.Run_opts
module Wire = Lf_serve.Wire

type t = { qdir : string }

let tasks_dir t = Filename.concat t.qdir "tasks"
let leases_dir t = Filename.concat t.qdir "leases"
let failed_dir t = Filename.concat t.qdir "failed"
let fingerprint_file t = Filename.concat t.qdir "fingerprints"

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~dir =
  let t = { qdir = dir } in
  List.iter mkdir_p [ tasks_dir t; leases_dir t; failed_dir t ];
  t

let dir t = t.qdir
let task_ext = ".task"
let lease_ext = ".lease"
let err_ext = ".err"
let task_path t d = Filename.concat (tasks_dir t) (d ^ task_ext)

let lease_path t ~wid d =
  Filename.concat (leases_dir t) (d ^ "." ^ wid ^ lease_ext)

let failed_path t d = Filename.concat (failed_dir t) (d ^ err_ext)

(* digest of a lease filename: <digest>.<wid>.lease *)
let lease_digest f =
  match String.index_opt f '.' with
  | Some i -> String.sub f 0 i
  | None -> f

let files dir ext =
  match Sys.readdir dir with
  | exception _ -> []
  | fs ->
    Array.to_list fs
    |> List.filter (fun f -> Filename.check_suffix f ext)
    |> List.sort compare

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_atomic ~dir ~path content =
  let tmp = Filename.temp_file ~temp_dir:dir ".lfq" ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Sys.rename tmp path
  with
  | () -> true
  | exception _ ->
    (try Sys.remove tmp with _ -> ());
    false

(* ------------------------------------------------------------------ *)
(* Status                                                              *)

type qstatus = { pending : int; leased : int; failed : int }

let status t =
  {
    pending = List.length (files (tasks_dir t) task_ext);
    leased = List.length (files (leases_dir t) lease_ext);
    failed = List.length (files (failed_dir t) err_ext);
  }

let pending_digests t =
  List.map (fun f -> Filename.chop_suffix f task_ext) (files (tasks_dir t) task_ext)

let failures t =
  List.map
    (fun f ->
      let d = Filename.chop_suffix f err_ext in
      let msg =
        match read_file (Filename.concat (failed_dir t) f) with
        | exception _ -> ""
        | s -> String.trim s
      in
      (d, msg))
    (files (failed_dir t) err_ext)

let record_failure t d msg =
  ignore (write_atomic ~dir:(failed_dir t) ~path:(failed_path t d) (msg ^ "\n"))

(* ------------------------------------------------------------------ *)
(* Enqueue                                                             *)

type enqueue_outcome =
  [ `Enqueued | `Already_queued | `Already_failed | `Not_cacheable ]

let lease_held t d =
  List.exists
    (fun f -> lease_digest f = d)
    (files (leases_dir t) lease_ext)

let enqueue t req : enqueue_outcome =
  if not (Batch.Store.cacheable req) then `Not_cacheable
  else
    let d = Sim.digest req in
    if Sys.file_exists (failed_path t d) then `Already_failed
    else if Sys.file_exists (task_path t d) || lease_held t d then
      `Already_queued
    else if write_atomic ~dir:(tasks_dir t) ~path:(task_path t d)
              (Sim.canonical req)
    then `Enqueued
    else `Already_queued

type enqueue_stats = {
  e_total : int;  (** requests submitted *)
  e_unique : int;  (** distinct digests among them *)
  e_hits : int;  (** already answered by the store *)
  e_enqueued : int;  (** task files written *)
  e_queued_before : int;  (** already pending or leased *)
  e_failed_before : int;  (** terminally failed earlier *)
  e_uncacheable : int;
}

(* One sweep's misses into the queue.  The fingerprint file is written
   first so workers joining at any point share the enqueuer's view —
   the digests in task filenames only mean anything under it. *)
let enqueue_misses ?(save_fingerprints = true) ?(cold = false) t ~store reqs =
  if save_fingerprints then Sim.Fingerprint.save_file (fingerprint_file t);
  let seen = Hashtbl.create 64 in
  let total = ref 0
  and hits = ref 0
  and enq = ref 0
  and qb = ref 0
  and fb = ref 0
  and unc = ref 0 in
  List.iter
    (fun req ->
      incr total;
      let d = Sim.digest req in
      if not (Hashtbl.mem seen d) then begin
        Hashtbl.add seen d ();
        if (not cold) && Batch.Store.lookup store req <> None then incr hits
        else
          match enqueue t req with
          | `Enqueued -> incr enq
          | `Already_queued -> incr qb
          | `Already_failed -> incr fb
          | `Not_cacheable -> incr unc
      end)
    reqs;
  {
    e_total = !total;
    e_unique = Hashtbl.length seen;
    e_hits = !hits;
    e_enqueued = !enq;
    e_queued_before = !qb;
    e_failed_before = !fb;
    e_uncacheable = !unc;
  }

(* ------------------------------------------------------------------ *)
(* Claim / reclaim                                                     *)

let reclaim_expired ~ttl t =
  let now = Unix.gettimeofday () in
  List.fold_left
    (fun acc f ->
      let p = Filename.concat (leases_dir t) f in
      match Unix.stat p with
      | exception _ -> acc
      | st ->
        if now -. st.Unix.st_mtime <= ttl then acc
        else
          let d = lease_digest f in
          (* rename over a duplicate task file is fine: same content *)
          (match Sys.rename p (task_path t d) with
          | () -> acc + 1
          | exception _ -> acc))
    0
    (files (leases_dir t) lease_ext)

let claim ~wid t =
  let rec go = function
    | [] -> None
    | f :: rest -> (
      let d = Filename.chop_suffix f task_ext in
      let src = Filename.concat (tasks_dir t) f in
      let dst = lease_path t ~wid d in
      match Sys.rename src dst with
      | exception _ -> go rest (* another worker won the race *)
      | () -> (
        match read_file dst with
        | text -> Some (d, text, dst)
        | exception _ ->
          (try Sys.remove dst with _ -> ());
          go rest))
  in
  go (files (tasks_dir t) task_ext)

(* ------------------------------------------------------------------ *)
(* Worker                                                              *)

type worker_stats = {
  w_claimed : int;
  w_computed : int;  (** simulations actually run *)
  w_hits : int;  (** claims already answered by the store *)
  w_failed : int;
  w_reclaimed : int;  (** expired leases returned to the queue *)
}

let default_ttl = 10.0

let worker ?wid ?(ttl = default_ttl) ?(poll_s = 0.05) ?idle_timeout_s ?jobs
    ?opts ~store t =
  (* unified options: an explicit ?jobs (legacy spelling) wins, else
     the Run_opts value decides; everything else about a task is inside
     its request, and the store handle is the queue's own. *)
  let jobs =
    match (jobs, opts) with
    | (Some _ as j), _ -> j
    | None, Some o -> o.Run_opts.jobs
    | None, None -> None
  in
  let wid =
    match wid with Some w -> w | None -> Printf.sprintf "w%d" (Unix.getpid ())
  in
  (* Heartbeat thread: refresh the held lease's mtime well inside the
     ttl so a live worker's lease is never mistaken for a corpse's. *)
  let hb_stop = Atomic.make false in
  let hb_mu = Mutex.create () in
  let hb_lease = ref None in
  let set_lease l =
    Mutex.lock hb_mu;
    hb_lease := l;
    Mutex.unlock hb_mu
  in
  let hb =
    Thread.create
      (fun () ->
        while not (Atomic.get hb_stop) do
          Mutex.lock hb_mu;
          (match !hb_lease with
          | Some p -> ( try Unix.utimes p 0.0 0.0 with _ -> ())
          | None -> ());
          Mutex.unlock hb_mu;
          Thread.delay (Float.max 0.01 (ttl /. 4.0))
        done)
      ()
  in
  let scope = Batch.Counters.create () in
  let claimed = ref 0 and failed = ref 0 and reclaimed = ref 0 in
  let idle_since = ref (Unix.gettimeofday ()) in
  let stop = ref false in
  while not !stop do
    (* adopt the enqueuer's fingerprint view before interpreting any
       digest; refreshed every round so a --watch re-enqueue under new
       fingerprints is picked up without restarting workers *)
    (match Sim.Fingerprint.load_file (fingerprint_file t) with
    | Ok () | Error _ -> ());
    reclaimed := !reclaimed + reclaim_expired ~ttl t;
    match claim ~wid t with
    | Some (d, text, lease) ->
      incr claimed;
      idle_since := Unix.gettimeofday ();
      set_lease (Some lease);
      (match Wire.request_of_canonical text with
      | Error e ->
        record_failure t d ("unparseable task: " ^ e);
        incr failed
      | Ok req ->
        let live = Sim.digest req in
        if live <> d then begin
          (* our fingerprint view disagrees with the enqueuer's: a
             completion would publish under the wrong key, so surface
             the divergence instead of looping *)
          record_failure t d
            (Printf.sprintf
               "digest mismatch: task %s, live view %s (fingerprint file \
                out of sync?)"
               d live);
          incr failed
        end
        else
          match Batch.run_one ~store ~scope ?jobs req with
          | _res -> ()
          | exception e ->
            record_failure t d (Printexc.to_string e);
            incr failed);
      set_lease None;
      (try Sys.remove lease with _ -> ())
    | None -> (
      set_lease None;
      let st = status t in
      let drained = st.pending = 0 && st.leased = 0 in
      match idle_timeout_s with
      | None -> if drained then stop := true else Thread.delay poll_s
      | Some limit ->
        if Unix.gettimeofday () -. !idle_since > limit then stop := true
        else Thread.delay poll_s)
  done;
  Atomic.set hb_stop true;
  Thread.join hb;
  {
    w_claimed = !claimed;
    w_computed = Batch.Counters.computed scope;
    w_hits = Batch.Counters.hits scope;
    w_failed = !failed;
    w_reclaimed = !reclaimed;
  }

(* ------------------------------------------------------------------ *)
(* Wait                                                                *)

let wait ?(poll_s = 0.05) ?timeout_s t =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    let st = status t in
    if st.pending = 0 && st.leased = 0 then `Drained
    else
      match timeout_s with
      | Some lim when Unix.gettimeofday () -. t0 > lim -> `Timeout
      | _ ->
        Thread.delay poll_s;
        go ()
  in
  go ()

let pp_status ppf s =
  Fmt.pf ppf "%d pending, %d leased, %d failed" s.pending s.leased s.failed

let pp_worker_stats ppf w =
  Fmt.pf ppf "claimed %d (computed %d, store hits %d), failed %d, reclaimed %d"
    w.w_claimed w.w_computed w.w_hits w.w_failed w.w_reclaimed
