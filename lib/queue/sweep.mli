(** The standard sweep mix: the paper's kernels crossed with both
    machine models, both pure engine tiers and fused/unfused variants,
    each with its cache-partitioned layout and §3.4 strip factor.

    One definition shared by every consumer that used to build its own
    copy — the serve bench's zipf mix, the queue bench's work list and
    [lfc sweep]'s enqueue set — so "the sweep" is the same request set
    everywhere and digests agree across processes by construction. *)

val cache_shape : Lf_machine.Machine.config -> Lf_core.Partition.cache_shape
(** The machine's cache geometry as a partitioning shape. *)

val partitioned_layout :
  Lf_machine.Machine.config -> Lf_ir.Ir.program -> Lf_core.Partition.layout
(** Cache-partitioned placement (Figure 19) for this machine. *)

val strip_for : Lf_machine.Machine.config -> Lf_ir.Ir.program -> int
(** Strip-mining factor sized so one strip of every array fits in its
    cache partition (§3.4). *)

val kernels : (string * (int -> Lf_ir.Ir.program)) list
(** Name → constructor (problem size [n]) for every sweep kernel. *)

val kernel_names : string list

val kernel : string -> (int -> Lf_ir.Ir.program) option

val mix :
  ?kernels:string list ->
  ?machines:Lf_machine.Machine.config list ->
  ?modes:Lf_machine.Sim.mode list ->
  ?nprocs:int ->
  n:int ->
  unit ->
  Lf_machine.Sim.request list
(** The sweep request list: kernels x machines x modes x
    {unfused, fused}, keeping only requests whose schedule is legal at
    this size.  Defaults reproduce the serve bench's historical mix
    (all kernels, both machines, both pure modes, [nprocs = 4]).
    Raises [Invalid_argument] on an unknown kernel name. *)
