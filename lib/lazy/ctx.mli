(** A recording context: the unit of lazy evaluation.

    Create one, build {!Arr} values inside it, then evaluate —
    {!Arr.force}, {!Arr.sum} or an explicit {!flush} materialises the
    whole recorded DAG at once, fused into maximal legal blocks.

    {[
      let cx = Ctx.create () in
      let a = Arr.source cx "a" [| 1024 |] in
      let s = Arr.add (Arr.shift1 (-1) a) (Arr.shift1 1 a) in
      let h = Arr.scale 0.5 s in
      let values = Arr.force h in
      ...
    ]} *)

type t = Node.ctx

val create : unit -> t

val ops : t -> int
(** Number of recorded array operations (sources are inputs, not
    ops). *)

val plan : ?fuse:bool -> ?nprocs:int -> ?strip:int -> t -> Plan.t
(** Partition the recorded DAG into fusible blocks without executing
    anything — inspection, simulation ({!Eval.simulate}) and the CLI
    go through the plan. *)

val flush : ?fuse:bool -> ?nprocs:int -> ?strip:int -> t -> unit
(** Materialise everything recorded so far; subsequent {!Arr.force}
    calls on an unchanged context are answered from the cached
    environment. *)
