module Ir = Lf_ir.Ir

type unop = Id | Neg | Scale of float | Bias of float

type ctx = {
  mutable rev_nodes : node list;
  mutable nnodes : int;
  source_names : (string, unit) Hashtbl.t;
  mutable cache : (string * (string, float array) Hashtbl.t) option;
      (* materialised environment, keyed by the plan signature that
         produced it (see Eval) *)
}

and node = {
  nd_id : int;
  nd_ctx : ctx;
  nd_shape : int array;
  nd_kind : kind;
  mutable nd_digest : string option;
}

and kind =
  | Source of string
  | Fill of float
  | Map of unop * operand
  | Zip of Ir.binop * operand * operand

and operand = { op_node : node; op_off : int array }

type view = { v_node : node; v_off : int array }

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let create_ctx () =
  { rev_nodes = []; nnodes = 0; source_names = Hashtbl.create 8;
    cache = None }

let nodes cx = List.rev cx.rev_nodes
let is_op nd = match nd.nd_kind with Source _ -> false | _ -> true
let rank nd = Array.length nd.nd_shape

let shape_str shape =
  String.concat "x" (Array.to_list (Array.map string_of_int shape))

let offs_str off =
  String.concat "," (Array.to_list (Array.map string_of_int off))

(* The written region: the full extent shrunk by the stencil halo so
   every read subscript [i + c] stays inside the operand (operands
   always share the node's shape).  Lazy and eager evaluation both
   leave the halo elements at their initial value, so the two agree
   bit-for-bit at the borders by construction. *)
let region nd =
  let r = rank nd in
  let lo = Array.make r 0 in
  let hi = Array.init r (fun d -> nd.nd_shape.(d) - 1) in
  let clamp (o : operand) =
    for d = 0 to r - 1 do
      let c = o.op_off.(d) in
      if c < 0 then lo.(d) <- max lo.(d) (-c)
      else if c > 0 then hi.(d) <- min hi.(d) (nd.nd_shape.(d) - 1 - c)
    done
  in
  (match nd.nd_kind with
  | Source _ | Fill _ -> ()
  | Map (_, a) -> clamp a
  | Zip (_, a, b) ->
      clamp a;
      clamp b);
  Array.init r (fun d -> (lo.(d), hi.(d)))

let check_region nd =
  Array.iter
    (fun (lo, hi) ->
      if lo > hi then
        err "lazy: shift leaves an empty written region on shape %s"
          (shape_str nd.nd_shape))
    (region nd)

let record cx shape kind =
  let nd =
    { nd_id = cx.nnodes; nd_ctx = cx; nd_shape = shape; nd_kind = kind;
      nd_digest = None }
  in
  check_region nd;
  cx.nnodes <- cx.nnodes + 1;
  cx.rev_nodes <- nd :: cx.rev_nodes;
  nd

let check_shape shape =
  let r = Array.length shape in
  if r < 1 || r > 2 then
    err "lazy: rank %d unsupported (1- and 2-d arrays only)" r;
  Array.iter
    (fun n -> if n < 1 then err "lazy: non-positive extent in %s"
                                (shape_str shape))
    shape

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_')
       n

let source cx name shape =
  check_shape shape;
  if not (valid_name name) then err "lazy: bad source name %S" name;
  if Hashtbl.mem cx.source_names name then
    err "lazy: duplicate source name %S" name;
  Hashtbl.add cx.source_names name ();
  { v_node = record cx (Array.copy shape) (Source name);
    v_off = Array.make (Array.length shape) 0 }

let fill cx shape v =
  check_shape shape;
  { v_node = record cx (Array.copy shape) (Fill v);
    v_off = Array.make (Array.length shape) 0 }

let shift v off =
  if Array.length off <> Array.length v.v_off then
    err "lazy: shift offset rank %d on rank-%d value" (Array.length off)
      (Array.length v.v_off);
  { v with v_off = Array.init (Array.length off)
                      (fun d -> v.v_off.(d) + off.(d)) }

let operand_of v = { op_node = v.v_node; op_off = Array.copy v.v_off }

let map u v =
  let cx = v.v_node.nd_ctx in
  let shape = v.v_node.nd_shape in
  { v_node = record cx (Array.copy shape) (Map (u, operand_of v));
    v_off = Array.make (Array.length shape) 0 }

let zip b x y =
  if x.v_node.nd_ctx != y.v_node.nd_ctx then
    err "lazy: zip of values from different contexts";
  if x.v_node.nd_shape <> y.v_node.nd_shape then
    err "lazy: zip shape mismatch %s vs %s"
      (shape_str x.v_node.nd_shape) (shape_str y.v_node.nd_shape);
  let cx = x.v_node.nd_ctx in
  let shape = x.v_node.nd_shape in
  { v_node = record cx (Array.copy shape)
               (Zip (b, operand_of x, operand_of y));
    v_off = Array.make (Array.length shape) 0 }

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)

let fbits x = Int64.to_string (Int64.bits_of_float x)

let unop_str = function
  | Id -> "id"
  | Neg -> "neg"
  | Scale c -> "scale:" ^ fbits c
  | Bias c -> "bias:" ^ fbits c

let binop_str : Ir.binop -> string = function
  | Ir.Add -> "add"
  | Ir.Sub -> "sub"
  | Ir.Mul -> "mul"
  | Ir.Div -> "div"

(* Structural digest: everything that determines the node's value and
   fusibility, nothing that depends on recording order. *)
let rec digest nd =
  match nd.nd_digest with
  | Some d -> d
  | None ->
      let od (o : operand) = digest o.op_node ^ "@" ^ offs_str o.op_off in
      let body =
        match nd.nd_kind with
        | Source n -> "src " ^ n
        | Fill v -> "fill " ^ fbits v
        | Map (u, a) -> "map " ^ unop_str u ^ " " ^ od a
        | Zip (b, x, y) -> "zip " ^ binop_str b ^ " " ^ od x ^ " " ^ od y
      in
      let d = Digest.to_hex (Digest.string (shape_str nd.nd_shape ^ "|" ^ body)) in
      nd.nd_digest <- Some d;
      d

let producers nd =
  let ops =
    match nd.nd_kind with
    | Source _ | Fill _ -> []
    | Map (_, a) -> [ a.op_node ]
    | Zip (_, x, y) -> [ x.op_node; y.op_node ]
  in
  let seen = Hashtbl.create 4 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p.nd_id then false
      else (Hashtbl.add seen p.nd_id (); true))
    ops

(* Kahn's algorithm with the ready set ordered by structural digest
   (nd_id only breaks ties between structurally identical twins, which
   are interchangeable): the order is a function of the DAG, not of
   the recording sequence. *)
let canonical_order cx =
  let all = nodes cx in
  let indegree = Hashtbl.create 16 in
  let dependants = Hashtbl.create 16 in
  List.iter (fun nd -> Hashtbl.replace indegree nd.nd_id 0) all;
  List.iter
    (fun nd ->
      List.iter
        (fun p ->
          Hashtbl.replace indegree nd.nd_id
            (1 + Hashtbl.find indegree nd.nd_id);
          Hashtbl.replace dependants p.nd_id
            (nd :: Option.value ~default:[]
                     (Hashtbl.find_opt dependants p.nd_id)))
        (producers nd))
    all;
  let cmp a b =
    match compare (digest a) (digest b) with
    | 0 -> compare a.nd_id b.nd_id
    | c -> c
  in
  let ready =
    ref (List.sort cmp (List.filter (fun nd ->
             Hashtbl.find indegree nd.nd_id = 0) all))
  in
  let out = ref [] in
  while !ready <> [] do
    match !ready with
    | [] -> ()
    | nd :: rest ->
        ready := rest;
        out := nd :: !out;
        let unblocked =
          List.filter
            (fun d ->
              let k = Hashtbl.find indegree d.nd_id - 1 in
              Hashtbl.replace indegree d.nd_id k;
              k = 0)
            (Option.value ~default:[] (Hashtbl.find_opt dependants nd.nd_id))
        in
        ready := List.merge cmp !ready (List.sort cmp unblocked)
  done;
  List.rev !out

let canonical_names order =
  let names = Hashtbl.create 16 in
  let k = ref 0 in
  List.iter
    (fun nd ->
      match nd.nd_kind with
      | Source n -> Hashtbl.replace names nd.nd_id n
      | _ ->
          Hashtbl.replace names nd.nd_id (Printf.sprintf "t%d" !k);
          incr k)
    order;
  names

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)

let level_vars = [| "i"; "j" |]

let name_of names nd =
  match Hashtbl.find_opt names nd.nd_id with
  | Some n -> n
  | None -> err "lazy: node %d has no canonical name" nd.nd_id

let read_of names (o : operand) =
  Ir.Read
    (Ir.aref (name_of names o.op_node)
       (List.init (Array.length o.op_off) (fun d ->
            Ir.av ~c:o.op_off.(d) level_vars.(d))))

let nest_of ~names nd =
  let r = rank nd in
  let reg = region nd in
  let rhs =
    match nd.nd_kind with
    | Source _ -> err "lazy: cannot lower a source node"
    | Fill v -> Ir.Const v
    | Map (u, a) -> (
        let rd = read_of names a in
        match u with
        | Id -> rd
        | Neg -> Ir.Neg rd
        | Scale c -> Ir.Bin (Ir.Mul, rd, Ir.Const c)
        | Bias c -> Ir.Bin (Ir.Add, rd, Ir.Const c))
    | Zip (b, x, y) -> Ir.Bin (b, read_of names x, read_of names y)
  in
  let name = name_of names nd in
  {
    Ir.nid = "n_" ^ name;
    levels =
      List.init r (fun d ->
          let lo, hi = reg.(d) in
          { Ir.lvar = level_vars.(d); lo; hi; parallel = true });
    body =
      [ Ir.stmt
          (Ir.aref name (List.init r (fun d -> Ir.av level_vars.(d))))
          rhs ];
  }

let program_of ~names ~pname block_nodes =
  let decls = Hashtbl.create 16 in
  let declare nd =
    let n = name_of names nd in
    if not (Hashtbl.mem decls n) then
      Hashtbl.add decls n
        { Ir.aname = n; extents = Array.to_list nd.nd_shape }
  in
  List.iter
    (fun nd ->
      declare nd;
      List.iter declare (producers nd))
    block_nodes;
  let decl_list =
    Hashtbl.fold (fun _ d acc -> d :: acc) decls []
    |> List.sort (fun a b -> compare a.Ir.aname b.Ir.aname)
  in
  let p =
    { Ir.pname; decls = decl_list;
      nests = List.map (fun nd -> nest_of ~names nd) block_nodes }
  in
  Ir.validate p;
  p

let pp_kind ppf = function
  | Source n -> Fmt.pf ppf "source %s" n
  | Fill v -> Fmt.pf ppf "fill %g" v
  | Map (u, _) -> Fmt.pf ppf "map %s" (unop_str u)
  | Zip (b, _, _) -> Fmt.pf ppf "zip %s" (binop_str b)
