module Ir = Lf_ir.Ir
module Schedule = Lf_core.Schedule
module Derive = Lf_core.Derive
module Sim = Lf_machine.Sim

type reason =
  | Fusion_off
  | Shape_mismatch of { block : int array; op : int array }
  | Would_cycle of { producer : string }
  | Not_uniform of string
  | Illegal_fusion of string

type block = {
  b_index : int;
  b_nodes : Node.node list;
  b_written : string list;
  b_prog : Ir.program;
  b_sched : Schedule.t;
  b_fused : bool;
  b_reason : reason option;
  b_blocked : (int * reason) list;
}

type t = {
  blocks : block list;
  nprocs : int;
  strip : int;
  names : (int, string) Hashtbl.t;
  order : Node.node list;
}

let default_nprocs = 4

(* Build program + schedule for a candidate op-node list (canonical
   order).  Singletons get the unfused (op-at-a-time) schedule; the
   fused path is the full legality pipeline: uniform distances via
   Derive, Theorem 1 threshold via Schedule.fused. *)
let try_sched ~nprocs ~strip ~names = function
  | [] -> invalid_arg "Plan.try_sched: empty block"
  | first :: _ as block_nodes -> (
      let prog = Node.program_of ~names ~pname:"lazy" block_nodes in
      let rank = Node.rank first in
      match block_nodes with
      | [ _ ] -> (
          match Schedule.unfused ~nprocs prog with
          | sched -> Ok (prog, sched, false)
          | exception Invalid_argument m -> Error (Illegal_fusion m))
      | _ -> (
          match Derive.of_program ~depth:rank prog with
          | exception Derive.Not_applicable m -> Error (Not_uniform m)
          | derive -> (
              match Schedule.fused ~strip ~derive ~nprocs prog with
              | sched -> Ok (prog, sched, true)
              | exception Schedule.Illegal m -> Error (Illegal_fusion m)
              | exception Invalid_argument m -> Error (Illegal_fusion m))))

type building = {
  bi : int;
  mutable bnodes : Node.node list;  (* newest first *)
  mutable bprog : Ir.program;
  mutable bsched : Schedule.t;
  mutable bfused : bool;
  breason : reason option;
  bblocked : (int * reason) list;
}

let of_ctx ?(fuse = true) ?(nprocs = default_nprocs)
    ?(strip = Schedule.default_strip) cx =
  let order = Node.canonical_order cx in
  let names = Hashtbl.create 16 in
  let cnames = Node.canonical_names order in
  Hashtbl.iter (fun k v -> Hashtbl.replace names k v) cnames;
  let ops = List.filter Node.is_op order in
  let blocks : building list ref = ref [] (* newest first *) in
  let nblocks = ref 0 in
  let block_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* Newest block (index) holding a transitive producer of [nd], with
     the producer node that pins it: an op must land in that block or a
     newer one, or its producer would run after it. *)
  let mp_memo : (int, int * Node.node option) Hashtbl.t =
    Hashtbl.create 16
  in
  let rec max_prod nd =
    match Hashtbl.find_opt mp_memo nd.Node.nd_id with
    | Some r -> r
    | None ->
        let r =
          List.fold_left
            (fun (mi, mn) p ->
              let pb =
                if Node.is_op p then
                  Option.value ~default:(-1)
                    (Hashtbl.find_opt block_of p.Node.nd_id)
                else -1
              in
              let ti, tn = max_prod p in
              let mi', mn' = if pb >= ti then (pb, Some p) else (ti, tn) in
              if mi' > mi then (mi', mn') else (mi, mn))
            (-1, None) (Node.producers nd)
        in
        Hashtbl.replace mp_memo nd.Node.nd_id r;
        r
  in
  let new_block nd reason blocked =
    match try_sched ~nprocs ~strip ~names [ nd ] with
    | Error (Illegal_fusion m) | Error (Not_uniform m) ->
        raise
          (Node.Error
             (Printf.sprintf "lazy: op cannot be scheduled over %d procs: %s"
                nprocs m))
    | Error _ -> assert false
    | Ok (prog, sched, fused) ->
        let b =
          { bi = !nblocks; bnodes = [ nd ]; bprog = prog; bsched = sched;
            bfused = fused; breason = reason; bblocked = blocked }
        in
        incr nblocks;
        blocks := b :: !blocks;
        Hashtbl.replace block_of nd.Node.nd_id b.bi
  in
  List.iter
    (fun nd ->
      let mp, mp_node = max_prod nd in
      if not fuse then
        new_block nd
          (if !nblocks = 0 then None else Some Fusion_off)
          []
      else begin
        (* scan candidates newest-first; the first legal merge wins *)
        let refusals = ref [] (* newest candidate first, reversed in *) in
        let refuse bi r = refusals := (bi, r) :: !refusals in
        let rec scan = function
          | [] -> false
          | b :: older ->
              let shape_ok =
                b.bnodes <> []
                && (List.hd b.bnodes).Node.nd_shape = nd.Node.nd_shape
              in
              if b.bi < mp then begin
                (* an otherwise-plausible candidate barred by ordering:
                   surface the dependence-cycle refusal *)
                (if shape_ok then
                   let producer =
                     match mp_node with
                     | Some p ->
                         Option.value ~default:"?"
                           (Hashtbl.find_opt names p.Node.nd_id)
                     | None -> "?"
                   in
                   refuse b.bi (Would_cycle { producer }));
                scan older
              end
              else if not shape_ok then begin
                refuse b.bi
                  (Shape_mismatch
                     {
                       block = (List.hd b.bnodes).Node.nd_shape;
                       op = nd.Node.nd_shape;
                     });
                scan older
              end
              else
                match
                  try_sched ~nprocs ~strip ~names
                    (List.rev (nd :: b.bnodes))
                with
                | Ok (prog, sched, fused) ->
                    b.bnodes <- nd :: b.bnodes;
                    b.bprog <- prog;
                    b.bsched <- sched;
                    b.bfused <- fused;
                    Hashtbl.replace block_of nd.Node.nd_id b.bi;
                    true
                | Error r ->
                    refuse b.bi r;
                    scan older
        in
        if not (scan !blocks) then
          let blocked = List.rev !refusals (* newest candidate first *) in
          let reason =
            match blocked with (_, r) :: _ -> Some r | [] -> None
          in
          new_block nd reason blocked
      end)
    ops;
  (* finalize: content-addressed program names so identical blocks hit
     the same store entries across runs and processes *)
  let finalize b =
    let text = Ir.program_to_string b.bprog in
    let pname =
      "lazy_" ^ String.sub (Digest.to_hex (Digest.string text)) 0 12
    in
    let prog = { b.bprog with Ir.pname } in
    let sched = { b.bsched with Schedule.prog } in
    let nodes = List.rev b.bnodes in
    {
      b_index = b.bi;
      b_nodes = nodes;
      b_written =
        List.map (fun nd -> Hashtbl.find names nd.Node.nd_id) nodes;
      b_prog = prog;
      b_sched = sched;
      b_fused = b.bfused;
      b_reason = b.breason;
      b_blocked = b.bblocked;
    }
  in
  {
    blocks = List.rev_map finalize !blocks;
    nprocs;
    strip;
    names;
    order;
  }

let name_of t nd =
  match Hashtbl.find_opt t.names nd.Node.nd_id with
  | Some n -> n
  | None -> raise (Node.Error "lazy: node not part of this plan")

let ops t = List.length (List.filter Node.is_op t.order)

let signature t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "nprocs=%d strip=%d\n" t.nprocs t.strip);
  List.iter
    (fun blk ->
      Buffer.add_string b
        (Printf.sprintf "block %d fused=%b:" blk.b_index blk.b_fused);
      List.iter
        (fun nd ->
          Buffer.add_char b ' ';
          Buffer.add_string b (Node.digest nd))
        blk.b_nodes;
      Buffer.add_char b '\n')
    t.blocks;
  Digest.to_hex (Digest.string (Buffer.contents b))

let requests ~machine ~mode t =
  List.map (fun b -> Sim.of_schedule ~mode ~machine b.b_sched) t.blocks

let pp_reason ppf = function
  | Fusion_off -> Fmt.pf ppf "fusion off"
  | Shape_mismatch { block; op } ->
      let s a =
        String.concat "x" (Array.to_list (Array.map string_of_int a))
      in
      Fmt.pf ppf "shape mismatch (block %s, op %s)" (s block) (s op)
  | Would_cycle { producer } ->
      Fmt.pf ppf "would create inter-block dependence cycle (via %s)"
        producer
  | Not_uniform m -> Fmt.pf ppf "non-uniform dependence: %s" m
  | Illegal_fusion m -> Fmt.pf ppf "illegal fusion: %s" m

let pp ppf t =
  Fmt.pf ppf "%d op%s in %d block%s (nprocs=%d, strip=%d)@."
    (ops t)
    (if ops t = 1 then "" else "s")
    (List.length t.blocks)
    (if List.length t.blocks = 1 then "" else "s")
    t.nprocs t.strip;
  List.iter
    (fun b ->
      Fmt.pf ppf "  block %d: %d op%s [%s] %s%a@." b.b_index
        (List.length b.b_nodes)
        (if List.length b.b_nodes = 1 then "" else "s")
        (String.concat " " b.b_written)
        (if b.b_fused then "fused" else "unfused")
        (fun ppf -> function
          | None -> ()
          | Some r -> Fmt.pf ppf " -- split: %a" pp_reason r)
        b.b_reason)
    t.blocks
