(** A tiny textual trace language for recorded array-operation
    streams, plus built-in workloads — what [lfc trace] and the lazy
    bench run.

    Grammar (one op per line, [#] comments):
    {v
    source NAME SHAPE          # external input (default-init contents)
    fill NAME SHAPE FLOAT      # constant array
    NAME = map UNOP OPERAND    # UNOP: id | neg | scale:F | bias:F
    NAME = zip BINOP OP1 OP2   # BINOP: add | sub | mul | div
    force NAME                 # mark an output
    v}

    [SHAPE] is per-dimension, ['x']-separated; each dimension is an
    integer or the size parameter ([n], [n/2], [n*2]).  An [OPERAND]
    is a name with an optional stencil shift: [a], [a@1], [a@-1],
    [b@1,-2]. *)

val builtins : (string * string) list
(** Built-in workload names with one-line descriptions: [heat] (1-d
    smoothing chain, one fused block), [pipeline] (mixed map/zip over
    two sources), [mismatch] (interleaved full- and half-size chains —
    the block-size mismatch scenario, fusion must split), [blur2]
    (rank-2 five-point stencil chain). *)

val builtin_text : string -> string option
(** The trace text of a built-in, shape parameters unresolved. *)

val of_string :
  n:int -> string -> (Ctx.t * (string * Arr.t) list, string) result
(** Record the trace into a fresh context with size parameter [n];
    returns the context and the forced outputs in order.  Errors carry
    the offending line number. *)

val load : n:int -> string -> (Ctx.t * (string * Arr.t) list, string) result
(** {!of_string} on a file's contents. *)
