module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec
module Batch = Lf_batch.Batch
module Run_opts = Lf_batch.Run_opts

type env = (string, float array) Hashtbl.t

let env_create () : env = Hashtbl.create 16

let init_of (env : env) name k =
  match Hashtbl.find_opt env name with
  | Some a -> a.(k)
  | None -> Interp.default_init name k

let numel nd = Array.fold_left ( * ) 1 nd.Node.nd_shape

let copy_out env names store block_nodes =
  List.iter
    (fun nd ->
      let name = Hashtbl.find names nd.Node.nd_id in
      Hashtbl.replace env name
        (Array.copy (Interp.find_array store name)))
    block_nodes

let eager (plan : Plan.t) : env =
  let env = env_create () in
  match List.filter Node.is_op plan.Plan.order with
  | [] -> env
  | some_op :: _ ->
      let cx = some_op.Node.nd_ctx in
      List.iter
        (fun nd ->
          if Node.is_op nd then begin
            let prog =
              Node.program_of ~names:plan.Plan.names ~pname:"eager" [ nd ]
            in
            let store = Interp.run ~init:(init_of env) prog in
            copy_out env plan.Plan.names store [ nd ]
          end)
        (Node.nodes cx);
      env

let advance env (b : Plan.block) =
  let store = Schedule.execute ~init:(init_of env) b.Plan.b_sched in
  List.iter
    (fun name ->
      Hashtbl.replace env name (Array.copy (Interp.find_array store name)))
    b.Plan.b_written

let materialise (plan : Plan.t) : env =
  let env = env_create () in
  List.iter (advance env) plan.Plan.blocks;
  env

let materialise_exec ?(opts = Run_opts.default) ~machine (plan : Plan.t) :
    env =
  let env = env_create () in
  List.iter
    (fun (b : Plan.block) ->
      (* the only entry point carrying ?init is the compatibility
         wrapper; cross-block inputs make this run inherently
         uncacheable anyway, which is exactly what ?init implies *)
      let res =
        Exec.run ?sink:opts.Run_opts.sink ~init:(init_of env) ~mode:Sim.Full
          ~jobs:(Run_opts.jobs_or_default opts)
          ~machine b.Plan.b_sched
      in
      List.iter
        (fun name ->
          Hashtbl.replace env name
            (Array.copy (Interp.find_array res.Exec.store name)))
        b.Plan.b_written)
    plan.Plan.blocks;
  env

let simulate ?(opts = Run_opts.default) ?pool ?scope ~machine
    (plan : Plan.t) =
  Batch.run_with ?pool ?scope opts
    (Plan.requests ~machine ~mode:opts.Run_opts.engine plan)

let env_for cx (plan : Plan.t) =
  let s = Plan.signature plan in
  match cx.Node.cache with
  | Some (s', env) when s' = s -> env
  | _ ->
      let env = materialise plan in
      cx.Node.cache <- Some (s, env);
      env

let force ?fuse ?nprocs ?strip (v : Node.view) =
  let v =
    if Array.exists (fun c -> c <> 0) v.Node.v_off then
      Node.map Node.Id v
    else v
  in
  let cx = v.Node.v_node.Node.nd_ctx in
  let plan = Plan.of_ctx ?fuse ?nprocs ?strip cx in
  let env = env_for cx plan in
  let name = Plan.name_of plan v.Node.v_node in
  match Hashtbl.find_opt env name with
  | Some a -> Array.copy a
  | None ->
      (* a source (or a never-executed node): its contents are its
         name-keyed default initialisation *)
      Array.init (numel v.Node.v_node) (Interp.default_init name)

let sum ?fuse ?nprocs ?strip v =
  Array.fold_left ( +. ) 0.0 (force ?fuse ?nprocs ?strip v)

let flush ?fuse ?nprocs ?strip cx =
  let plan = Plan.of_ctx ?fuse ?nprocs ?strip cx in
  ignore (env_for cx plan)
