(** Materialisation of a recorded DAG, eager or planned.

    Both strategies share one environment discipline: arrays are keyed
    by their {e canonical} names, anything not yet computed reads as
    {!Lf_ir.Interp.default_init} of that name, and each step's outputs
    are copied into the environment.  Because the canonical names are
    a function of the DAG (not the recording order), and halo elements
    are never written by any strategy, eager per-op evaluation and
    fused block execution agree bit-for-bit — the tentpole qcheck
    property. *)

type env = (string, float array) Hashtbl.t

val env_create : unit -> env

val init_of : env -> string -> int -> float
(** The store initialiser serving already-materialised arrays from the
    environment and {!Lf_ir.Interp.default_init} for everything else
    (sources included — a source's contents {e are} its default
    init). *)

val eager : Plan.t -> env
(** Op-at-a-time reference evaluation: every op interpreted as its own
    single-nest program through {!Lf_ir.Interp}, in recording order.
    Uses the plan only for its canonical names. *)

val materialise : Plan.t -> env
(** Execute the plan's blocks in order with the untimed
    {!Lf_core.Schedule.execute}. *)

val materialise_exec :
  ?opts:Lf_batch.Run_opts.t ->
  machine:Lf_machine.Machine.config ->
  Plan.t ->
  env
(** Execute each block through the full simulation engine
    ({!Lf_machine.Exec.run_opts}, [Full] mode so the store
    materialises) under the given options — the path the bit-identity
    property runs across jobs values.  [Full] results are never
    persisted (store allow-list), so the options' store policy is
    irrelevant here; jobs and sink apply. *)

val advance : env -> Plan.block -> unit
(** Execute one block untimed and fold its outputs into [env] — the
    stepping primitive external backends (native verification in [lfc
    trace]) interleave with their own per-block work. *)

val simulate :
  ?opts:Lf_batch.Run_opts.t ->
  ?pool:Lf_parallel.Pool.t ->
  ?scope:Lf_batch.Batch.Counters.scope ->
  machine:Lf_machine.Machine.config ->
  Plan.t ->
  Lf_batch.Batch.outcome array * Lf_batch.Batch.summary
(** Dispatch the plan's per-block requests through
    {!Lf_batch.Batch.run_with}: store hits, dedup, sharding, timeouts
    — the whole request pipeline — now apply to traces.  The engine
    tier comes from [opts.engine] (default [Run_compressed]).  Note
    per-block simulations start cold caches: fused-vs-op-at-a-time
    comparisons measure within-block locality. *)

val force : ?fuse:bool -> ?nprocs:int -> ?strip:int -> Node.view -> float array
(** Materialise the view's context (planned, fused by default) and
    return a copy of the view's array.  A view carrying a
    nonzero shift offset is snapshotted through an implicit [Id] map
    first, so the result always has the node's full shape.  The
    environment is cached on the context keyed by the plan signature —
    repeated forces of an unchanged context do not re-execute. *)

val sum : ?fuse:bool -> ?nprocs:int -> ?strip:int -> Node.view -> float
(** Reduction: {!force} then a left-to-right float sum (order fixed,
    so the result is deterministic). *)

val flush : ?fuse:bool -> ?nprocs:int -> ?strip:int -> Node.ctx -> unit
(** Materialise everything recorded so far and cache the environment
    on the context. *)
