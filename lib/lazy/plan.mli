(** Partitioning a recorded DAG into maximal fusible blocks and
    lowering each block onto {!Lf_core.Schedule} / {!Lf_machine.Sim}.

    The op nodes are visited in {!Node.canonical_order} (so the
    partition is a function of the DAG, not the recording sequence)
    and greedily merged into blocks.  An op may join any existing
    block no earlier than the newest block holding one of its
    (transitive) producers — joining an even earlier block would order
    the op before its producer, an inter-block true-dependence cycle —
    and the merge must pass the full shift-and-peel legality pipeline
    on the combined program: uniform dependence distances
    ({!Lf_core.Derive}) and the Theorem 1 iteration-count threshold
    ({!Lf_core.Schedule.fused}).  Shape mismatches break fusion
    exactly as block-size mismatches do in Kristensen et al.  Every
    refusal carries a typed {!reason}. *)

type reason =
  | Fusion_off  (** planning with [~fuse:false]: one block per op *)
  | Shape_mismatch of { block : int array; op : int array }
  | Would_cycle of { producer : string }
      (** the op (transitively) consumes [producer], which lives in a
          {e newer} block than the candidate — merging would create an
          inter-block dependence cycle *)
  | Not_uniform of string  (** {!Lf_core.Derive.Not_applicable} *)
  | Illegal_fusion of string
      (** Theorem 1 threshold / schedule construction refused the
          combined program *)

type block = {
  b_index : int;
  b_nodes : Node.node list;  (** canonical order *)
  b_written : string list;  (** canonical array names this block computes *)
  b_prog : Lf_ir.Ir.program;
  b_sched : Lf_core.Schedule.t;
      (** fused shift-and-peel for multi-op blocks, unfused for
          singletons *)
  b_fused : bool;
  b_reason : reason option;
      (** why this block's first op did not join the immediately
          preceding block ([None] for the first block) *)
  b_blocked : (int * reason) list;
      (** every candidate block the first op was refused from, newest
          first — where {!Would_cycle} refusals surface *)
}

type t = {
  blocks : block list;
  nprocs : int;
  strip : int;
  names : (int, string) Hashtbl.t;  (** nd_id -> canonical array name *)
  order : Node.node list;  (** canonical order, sources included *)
}

val default_nprocs : int

val of_ctx : ?fuse:bool -> ?nprocs:int -> ?strip:int -> Node.ctx -> t
(** Partition everything recorded so far.  [fuse] (default [true])
    [false] skips merging entirely — the op-at-a-time baseline.
    [nprocs] defaults to {!default_nprocs}, [strip] to
    {!Lf_core.Schedule.default_strip}.  Raises {!Node.Error} when an
    op is too small to block-schedule over [nprocs] at all. *)

val name_of : t -> Node.node -> string

val signature : t -> string
(** Digest of the whole plan — block structure, per-block structural
    digests, nprocs, strip.  Equal for structurally equal DAGs
    whatever their recording order (the qcheck determinism
    property). *)

val requests :
  machine:Lf_machine.Machine.config ->
  mode:Lf_machine.Sim.mode ->
  t ->
  Lf_machine.Sim.request list
(** One {!Lf_machine.Sim.request} per block, in execution order, each
    wrapping the block's prebuilt schedule ([Explicit]) — the seam
    that gives traces the store, batch sharding, serve and the queue
    for free. *)

val ops : t -> int
(** Recorded op count (sources excluded). *)

val pp_reason : Format.formatter -> reason -> unit
val pp : Format.formatter -> t -> unit
