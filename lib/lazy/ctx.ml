type t = Node.ctx

let create = Node.create_ctx
let ops cx = List.length (List.filter Node.is_op (Node.nodes cx))
let plan ?fuse ?nprocs ?strip cx = Plan.of_ctx ?fuse ?nprocs ?strip cx
let flush = Eval.flush
