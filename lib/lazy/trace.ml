module Ir = Lf_ir.Ir

(* ------------------------------------------------------------------ *)
(* Built-in workloads.  Kept as trace text and fed through the same
   parser as user files — the parser is its own first consumer. *)

let heat =
  {|# 1-d smoothing chain: three averaging steps, one fused block
source a n
s1 = zip add a@-1 a@1
h1 = map scale:0.5 s1
s2 = zip add h1@-1 h1@1
h2 = map scale:0.5 s2
s3 = zip add h2@-1 h2@1
h3 = map scale:0.5 s3
force h3
|}

let pipeline =
  {|# mixed map/zip pipeline over two sources, one fused block
source a n
source b n
c = zip add a b
d = map scale:2.0 c
e = zip mul c d
f = map bias:1.5 e
g = zip sub f b@2
force g
|}

let mismatch =
  {|# full-size and half-size chains interleaved: the shapes cannot
# fuse (Kristensen et al.'s block-size mismatch), so the plan must
# split into one block per shape
source a n
source b n/2
c = map scale:2.0 a
u = map neg b
d = zip add c c@1
v = zip add u b@-1
e = zip sub d a@-2
w = map bias:0.5 v
force e
force w
|}

let blur2 =
  {|# rank-2 five-point stencil chain, fused across both dimensions
source a nxn
sv = zip add a@-1,0 a@1,0
sh = zip add a@0,-1 a@0,1
s = zip add sv sh
g = map scale:0.25 s
force g
|}

let builtins =
  [
    ("heat", "1-d smoothing chain (3 steps, fully fusible)");
    ("pipeline", "mixed map/zip pipeline over two sources");
    ("mismatch", "full- and half-size chains: shape mismatch splits blocks");
    ("blur2", "rank-2 five-point stencil chain");
  ]

let builtin_text name =
  match name with
  | "heat" -> Some heat
  | "pipeline" -> Some pipeline
  | "mismatch" -> Some mismatch
  | "blur2" -> Some blur2
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parser *)

let ( let* ) = Result.bind

let dim_of ~n tok =
  match int_of_string_opt tok with
  | Some k when k >= 1 -> Ok k
  | Some _ -> Error (Printf.sprintf "non-positive extent %S" tok)
  | None -> (
      match tok with
      | "n" -> Ok n
      | "n/2" -> Ok (max 1 (n / 2))
      | "n*2" -> Ok (n * 2)
      | _ -> Error (Printf.sprintf "bad extent %S (int, n, n/2 or n*2)" tok))

let shape_of ~n tok =
  let dims = String.split_on_char 'x' tok in
  if List.length dims < 1 || List.length dims > 2 then
    Error (Printf.sprintf "bad shape %S (1 or 2 'x'-separated dims)" tok)
  else
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | d :: tl ->
          let* k = dim_of ~n d in
          go (k :: acc) tl
    in
    go [] dims

let operand_of env tok =
  let name, off_txt =
    match String.index_opt tok '@' with
    | None -> (tok, None)
    | Some i ->
        ( String.sub tok 0 i,
          Some (String.sub tok (i + 1) (String.length tok - i - 1)) )
  in
  match Hashtbl.find_opt env name with
  | None -> Error (Printf.sprintf "unknown value %S" name)
  | Some v -> (
      match off_txt with
      | None -> Ok v
      | Some txt -> (
          let parts = String.split_on_char ',' txt in
          let offs = List.map int_of_string_opt parts in
          if List.exists Option.is_none offs then
            Error (Printf.sprintf "bad shift %S" txt)
          else
            let off = Array.of_list (List.map Option.get offs) in
            if Array.length off <> Array.length (Arr.shape v) then
              Error
                (Printf.sprintf "shift %S has rank %d, value has rank %d"
                   txt (Array.length off)
                   (Array.length (Arr.shape v)))
            else
              match Arr.shift off v with
              | v' -> Ok v'
              | exception Node.Error m -> Error m))

let unop_of tok =
  match tok with
  | "id" -> Ok Node.Id
  | "neg" -> Ok Node.Neg
  | _ -> (
      let param pfx =
        let pl = String.length pfx in
        if String.length tok > pl && String.sub tok 0 pl = pfx then
          float_of_string_opt (String.sub tok pl (String.length tok - pl))
        else None
      in
      match param "scale:" with
      | Some c -> Ok (Node.Scale c)
      | None -> (
          match param "bias:" with
          | Some c -> Ok (Node.Bias c)
          | None ->
              Error
                (Printf.sprintf
                   "bad unary op %S (id, neg, scale:F, bias:F)" tok)))

let binop_of tok =
  match tok with
  | "add" -> Ok Ir.Add
  | "sub" -> Ok Ir.Sub
  | "mul" -> Ok Ir.Mul
  | "div" -> Ok Ir.Div
  | _ -> Error (Printf.sprintf "bad binary op %S (add, sub, mul, div)" tok)

let of_string ~n text =
  let cx = Ctx.create () in
  let env : (string, Arr.t) Hashtbl.t = Hashtbl.create 16 in
  let outputs = ref [] in
  let define name v =
    if Hashtbl.mem env name then
      Error (Printf.sprintf "duplicate name %S" name)
    else begin
      Hashtbl.replace env name v;
      Ok ()
    end
  in
  let parse_line line =
    let words =
      String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> Ok ()
    | w :: _ when String.length w > 0 && w.[0] = '#' -> Ok ()
    | [ "source"; name; shape ] -> (
        let* sh = shape_of ~n shape in
        match Arr.source cx name sh with
        | v -> define name v
        | exception Node.Error m -> Error m)
    | [ "fill"; name; shape; value ] -> (
        let* sh = shape_of ~n shape in
        match float_of_string_opt value with
        | None -> Error (Printf.sprintf "bad fill value %S" value)
        | Some f -> (
            match Arr.fill cx sh f with
            | v -> define name v
            | exception Node.Error m -> Error m))
    | [ name; "="; "map"; u; operand ] -> (
        let* u = unop_of u in
        let* v = operand_of env operand in
        match Node.map u v with
        | v' -> define name v'
        | exception Node.Error m -> Error m)
    | [ name; "="; "zip"; b; o1; o2 ] -> (
        let* b = binop_of b in
        let* x = operand_of env o1 in
        let* y = operand_of env o2 in
        match Node.zip b x y with
        | v' -> define name v'
        | exception Node.Error m -> Error m)
    | [ "force"; name ] -> (
        match Hashtbl.find_opt env name with
        | None -> Error (Printf.sprintf "unknown value %S" name)
        | Some v ->
            outputs := (name, v) :: !outputs;
            Ok ())
    | _ -> Error (Printf.sprintf "unparseable line %S" line)
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | l :: tl -> (
        match parse_line l with
        | Ok () -> go (lineno + 1) tl
        | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
  in
  let* () = go 1 lines in
  match List.rev !outputs with
  | [] -> Error "trace forces no output (add a `force NAME` line)"
  | outs -> Ok (cx, outs)

let load ~n path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | text -> of_string ~n text
