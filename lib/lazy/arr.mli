(** Lazily recorded whole-array values — the public DSL surface.

    An [Arr.t] names a float64 array expression recorded in a
    {!Ctx.t}; nothing is computed until {!force}, {!sum} or
    {!Ctx.flush}.  Operations are elementwise over arrays of rank 1 or
    2; {!shift} composes stencil offsets for free (it records no op —
    offsets become the read subscripts, i.e. the uniform dependence
    distances shift-and-peel fuses across).  Stencil reads shrink the
    written region by their halo; halo elements keep the array's
    deterministic initial values, identically under every evaluation
    strategy. *)

type t = Node.view
(** Recording errors (rank/shape mismatch, empty region after a shift,
    bad source names) raise {!Node.Error}. *)

(** {2 Introduction} *)

val source : Ctx.t -> string -> int array -> t
(** A named external input of the given shape.  Its contents are
    {!Lf_ir.Interp.default_init} applied to the name — deterministic
    data, so recorded traces stay content-addressable end to end. *)

val fill : Ctx.t -> int array -> float -> t
(** A constant array. *)

(** {2 Elementwise operators} *)

val copy : t -> t
val neg : t -> t
val scale : float -> t -> t
val bias : float -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

(** {2 Stencil shifts} *)

val shift : int array -> t -> t
(** [shift off a] reads [a] at [i + off] per dimension — a view, not
    an op. *)

val shift1 : int -> t -> t
(** Rank-1 convenience. *)

(** {2 Inspection} *)

val shape : t -> int array
val ctx : t -> Ctx.t

(** {2 Evaluation} *)

val force : ?fuse:bool -> ?nprocs:int -> ?strip:int -> t -> float array
(** Materialise (fused by default; [~fuse:false] is the op-at-a-time
    baseline) and return this value's contents, row-major.  See
    {!Eval.force}. *)

val get : ?fuse:bool -> ?nprocs:int -> ?strip:int -> t -> int array -> float
(** [force] and index (row-major). *)

val sum : ?fuse:bool -> ?nprocs:int -> ?strip:int -> t -> float
(** The reduction: materialise, then a fixed-order float sum. *)
