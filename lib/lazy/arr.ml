module Ir = Lf_ir.Ir

type t = Node.view

let source = Node.source
let fill = Node.fill
let copy v = Node.map Node.Id v
let neg v = Node.map Node.Neg v
let scale c v = Node.map (Node.Scale c) v
let bias c v = Node.map (Node.Bias c) v
let add x y = Node.zip Ir.Add x y
let sub x y = Node.zip Ir.Sub x y
let mul x y = Node.zip Ir.Mul x y
let div x y = Node.zip Ir.Div x y
let shift off v = Node.shift v off
let shift1 c v = Node.shift v [| c |]
let shape v = Array.copy v.Node.v_node.Node.nd_shape
let ctx v = v.Node.v_node.Node.nd_ctx
let force = Eval.force

let get ?fuse ?nprocs ?strip v idx =
  let a = Eval.force ?fuse ?nprocs ?strip v in
  let sh = v.Node.v_node.Node.nd_shape in
  if Array.length idx <> Array.length sh then
    raise (Node.Error "lazy: get index rank mismatch");
  let flat = ref 0 in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= sh.(d) then
        raise (Node.Error "lazy: get index out of bounds");
      flat := (!flat * sh.(d)) + i)
    idx;
  a.(!flat)

let sum = Eval.sum
