(** Internal recording core of the lazy frontend: the DAG of recorded
    whole-array operations and its lowering to {!Lf_ir.Ir} nests.

    This module is the shared representation behind the public
    {!Arr}/{!Ctx} facade — user code should not reach for it.  A
    {!ctx} accumulates {!node}s (one per recorded whole-array op); a
    {!view} is a node plus a composed stencil offset, which is how
    shifts stay zero-cost: [shift] never records an op, it only moves
    the offsets that later become read subscripts — and hence the
    uniform dependence distances shift-and-peel legality works on. *)

type unop =
  | Id  (** copy *)
  | Neg
  | Scale of float  (** pointwise [x *. c] *)
  | Bias of float  (** pointwise [x +. c] *)

type ctx = {
  mutable rev_nodes : node list;  (** recording order, newest first *)
  mutable nnodes : int;
  source_names : (string, unit) Hashtbl.t;
  mutable cache : (string * (string, float array) Hashtbl.t) option;
      (** materialised environment keyed by plan signature ({!Eval}
          owns this; recording leaves it alone — a stale signature is
          simply a cache miss) *)
}

and node = {
  nd_id : int;  (** recording sequence number (unique per ctx) *)
  nd_ctx : ctx;
  nd_shape : int array;
  nd_kind : kind;
  mutable nd_digest : string option;  (** structural-digest memo *)
}

and kind =
  | Source of string
      (** a named external input; its contents are
          {!Lf_ir.Interp.default_init} of that name, so traces stay
          content-addressable *)
  | Fill of float
  | Map of unop * operand
  | Zip of Lf_ir.Ir.binop * operand * operand

and operand = { op_node : node; op_off : int array }
(** A read of [op_node] at subscript [i + op_off] per dimension. *)

type view = { v_node : node; v_off : int array }

exception Error of string
(** Recording error: rank/shape mismatch, empty written region after a
    shift, duplicate or malformed source name. *)

val create_ctx : unit -> ctx

val nodes : ctx -> node list
(** Recording order (oldest first). *)

val is_op : node -> bool
(** [false] exactly for [Source] nodes, which record an input, not
    work. *)

(** {2 Recording} *)

val source : ctx -> string -> int array -> view
val fill : ctx -> int array -> float -> view
val shift : view -> int array -> view
val map : unop -> view -> view
val zip : Lf_ir.Ir.binop -> view -> view -> view

(** {2 Structure} *)

val rank : node -> int

val digest : node -> string
(** Structural digest: op kind, parameters, shape, operand offsets and
    operand digests — {e not} recording ids, so structurally equal
    DAGs recorded in different orders digest equally.  Source digests
    include the source name (contents depend on it). *)

val producers : node -> node list
(** Direct operand nodes, deduplicated, in operand order. *)

val region : node -> (int * int) array
(** Inclusive written bounds per dimension: the full extent shrunk by
    the stencil halo (a read at [i + c] confines the written range so
    every subscript stays in bounds).  Elements outside keep their
    initial value in {e every} evaluation strategy, which is what
    makes eager and fused materialisation bit-identical at the
    borders. *)

val canonical_order : ctx -> node list
(** All nodes (sources included) in canonical topological order:
    Kahn's algorithm with the ready set ordered by {!digest}.  The
    result depends only on the DAG's structure, not on recording
    order — the determinism property test/test_lazy.ml pins. *)

val canonical_names : node list -> (int, string) Hashtbl.t
(** Canonical array name per [nd_id] for a canonical order: sources
    keep their user names, the k-th op becomes ["t<k>"].  Both
    materialisation strategies and every lowered program use these
    names, so initial border values (which are name-keyed) agree
    everywhere. *)

val nest_of : names:(int, string) Hashtbl.t -> node -> Lf_ir.Ir.nest
(** Lower one op node to a single-statement perfect nest over its
    written {!region}, every level parallel.  Raises [Error] on a
    [Source] node. *)

val program_of :
  names:(int, string) Hashtbl.t ->
  pname:string ->
  node list ->
  Lf_ir.Ir.program
(** A program whose nests are the given op nodes in order, declaring
    every array the nests touch (inputs included). *)

val pp_kind : Format.formatter -> kind -> unit
