(** Native multicore execution of schedules: the same phase/box
    structure the simulator interprets, lowered to real OCaml running
    on the host's cores.

    The simulator ({!Lf_machine.Exec}) walks a {!Lf_core.Schedule.t}
    and charges model cycles; this module walks the {e same} schedule
    and spends real ones — float64 {!Bigarray} buffers, one domain per
    simulated processor from a {!Lf_parallel.Pool} (the caller doubles
    as worker 0), a {!Lf_parallel.Spin_barrier} between phases and
    steps.  It is the executable continuation of {!Lf_core.Codegen}:
    where codegen renders the strip-mined/peeled/wavefront iteration
    structure as C-like text, this compiles each nest body once into
    closures over precomputed flat-index coefficients and runs every
    box of every phase through them.

    {b Bit-identity.}  Element values are produced by the same
    statement instances applying the same IEEE-754 operations to the
    same operands as {!Lf_ir.Interp}, in the per-processor box order of
    the schedule; legality (Theorem 1) makes phases order-independent
    across processors, so the final array contents are bit-identical to
    the serial reference — {!verify} checks exactly that, and the CI
    smoke asserts it on every run.

    {b What is deliberately absent.}  No layout: simulated address
    placement ({!Lf_core.Partition}) maps arrays into a modelled
    memory; natively each array is one Bigarray and the host's real
    cache does what it does.  No result store: measured wall-clock is
    host-dependent and nondeterministic, so it is never persisted in
    [_lf_cache/] (see DESIGN §7/§11 and {!Lf_batch.Batch.Store}). *)

type buffers
(** Float64 storage for every declared array of one program. *)

val create :
  ?init:(string -> int -> float) -> Lf_ir.Ir.program -> buffers
(** Allocate and initialise all declared arrays ([init] defaults to
    {!Lf_ir.Interp.default_init}, the reference initialiser). *)

val reset : ?init:(string -> int -> float) -> buffers -> unit
(** Refill every array with its initial values (between timed
    repetitions). *)

val to_store : buffers -> Lf_ir.Interp.store
(** Copy the buffer contents into an interpreter store for bit-exact
    comparison ({!Lf_ir.Interp.diff}) with a reference run. *)

val checksum : buffers -> float
(** Order-stable sum over all arrays ({!Lf_ir.Interp.checksum}). *)

val run :
  ?init:(string -> int -> float) ->
  ?steps:int ->
  ?pool:Lf_parallel.Pool.t ->
  Lf_core.Schedule.t ->
  buffers
(** Execute the schedule natively: worker [w] of the pool executes
    processor [w]'s box list in each phase, with a spin barrier
    between phases and between steps.  [pool] must have exactly
    [nprocs] workers (raises [Invalid_argument] otherwise); without
    one, a fresh pool of [nprocs] domains is created and shut down.
    [steps] (default 1) repeats the whole schedule, like
    {!Lf_core.Schedule.execute}. *)

val run_into :
  ?steps:int -> ?pool:Lf_parallel.Pool.t -> buffers -> Lf_core.Schedule.t ->
  unit
(** {!run} onto existing buffers (not re-initialised: callers reset
    explicitly, so the compile-once / execute-many measurement loop is
    possible).  The buffers must have been created for the schedule's
    program. *)

val verify :
  ?init:(string -> int -> float) ->
  ?steps:int ->
  ?pool:Lf_parallel.Pool.t ->
  Lf_core.Schedule.t ->
  (unit, string) result
(** Execute natively and compare every array element against the
    serial reference interpreter, bit for bit.  [Error] describes the
    first mismatching element. *)

type timing = {
  t_measure : Bench_timer.measurement;
  t_checksum : float;  (** checksum after the last repetition *)
  t_nprocs : int;
  t_steps : int;
}

val measure :
  ?policy:Bench_timer.policy ->
  ?steps:int ->
  ?pool:Lf_parallel.Pool.t ->
  Lf_core.Schedule.t ->
  timing
(** Measured wall-clock of the native execution under the policy's
    warmup/min-of-k/outlier rules.  The nest bodies are compiled once;
    each repetition resets the buffers (untimed) and times only the
    parallel execution.  Domain spawn/join stays outside the timed
    region when [pool] is supplied — pass one for barrier-granularity
    numbers. *)
