(* Measurement policy: warmup / GC quiescence / min-of-k / outlier
   rejection (see bench_timer.mli for the rationale). *)

type policy = { warmup : int; repetitions : int; outlier_cutoff : float }

let default_policy = { warmup = 2; repetitions = 5; outlier_cutoff = 3.0 }

let check_policy p =
  if p.warmup < 0 then invalid_arg "Bench_timer: warmup < 0";
  if p.repetitions < 1 then invalid_arg "Bench_timer: repetitions < 1";
  if not (p.outlier_cutoff >= 1.0) then
    invalid_arg "Bench_timer: outlier_cutoff < 1.0"

let now_ns = Monotonic_clock.now

type measurement = {
  samples : float array;
  kept : int;
  min_s : float;
  median_s : float;
  mean_s : float;
}

(* Median of a sorted array: middle element, or the average of the two
   middle elements for even lengths. *)
let median_sorted s =
  let n = Array.length s in
  if n mod 2 = 1 then s.(n / 2) else 0.5 *. (s.((n / 2) - 1) +. s.(n / 2))

let aggregate ?(policy = default_policy) samples =
  check_policy policy;
  let n = Array.length samples in
  if n = 0 then invalid_arg "Bench_timer.aggregate: no samples";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  (* the rejection threshold comes from the raw median: a slow half
     cannot vote itself back in by dragging the kept median up *)
  let cut = policy.outlier_cutoff *. median_sorted sorted in
  let kept_samples = Array.of_list
      (List.filter (fun s -> s <= cut) (Array.to_list sorted))
  in
  (* cutoff >= 1 guarantees the median survives, so kept is never 0 *)
  let kept = Array.length kept_samples in
  let sum = Array.fold_left ( +. ) 0.0 kept_samples in
  {
    samples;
    kept;
    min_s = sorted.(0);
    median_s = median_sorted kept_samples;
    mean_s = sum /. float_of_int kept;
  }

let measure ?(policy = default_policy) ?(prepare = ignore) f =
  check_policy policy;
  for _ = 1 to policy.warmup do
    prepare ();
    f ()
  done;
  let samples =
    Array.init policy.repetitions (fun _ ->
        prepare ();
        Gc.full_major ();
        let t0 = now_ns () in
        f ();
        let t1 = now_ns () in
        Int64.to_float (Int64.sub t1 t0) *. 1e-9)
  in
  aggregate ~policy samples

let pp ppf m =
  Fmt.pf ppf "min %.3f ms, median %.3f ms (%d reps, %d kept)"
    (m.min_s *. 1e3) (m.median_s *. 1e3)
    (Array.length m.samples) m.kept
