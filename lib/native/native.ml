(* Native execution of schedules (see native.mli).

   Lowering: per nest, every statement is compiled once into
   - a guard as (vals-index, lo, hi) triples,
   - an rhs closure (int array -> float) mirroring Interp.eval_expr
     operation for operation (same IEEE-754 ops on the same operands,
     so results are bit-identical), and
   - a left-hand side as precomputed flat-index coefficients:
     row-major strides folded through the affine subscripts, so the
     address of a[i+1][j-1] is base + ci*i + cj*j with ci, cj, base
     computed at compile time.

   Execution then walks boxes exactly like Schedule.exec_box — the
   recursive range walk over b.ranges with a per-worker value vector —
   but through the compiled bodies and real Bigarray loads/stores.
   Bigarray access is bounds-checked on the flat index; a per-dimension
   excursion that stays in the allocation (impossible for legal
   schedules) would be caught by [verify]'s element-wise comparison. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Pool = Lf_parallel.Pool
module Spin_barrier = Lf_parallel.Spin_barrier

type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type buffers = {
  b_prog : Ir.program;
  b_tbl : (string, ba) Hashtbl.t;
}

let fill_array ~init name (a : ba) =
  for k = 0 to Bigarray.Array1.dim a - 1 do
    Bigarray.Array1.set a k (init name k)
  done

let create ?(init = Interp.default_init) (p : Ir.program) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : Ir.decl) ->
      let a =
        Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
          (Ir.num_elements d)
      in
      fill_array ~init d.Ir.aname a;
      Hashtbl.replace tbl d.Ir.aname a)
    p.Ir.decls;
  { b_prog = p; b_tbl = tbl }

let reset ?(init = Interp.default_init) bufs =
  List.iter
    (fun (d : Ir.decl) ->
      fill_array ~init d.Ir.aname (Hashtbl.find bufs.b_tbl d.Ir.aname))
    bufs.b_prog.Ir.decls

let to_store bufs =
  let arrays = Hashtbl.create 16 and extents = Hashtbl.create 16 in
  List.iter
    (fun (d : Ir.decl) ->
      let a = Hashtbl.find bufs.b_tbl d.Ir.aname in
      Hashtbl.replace arrays d.Ir.aname
        (Array.init (Bigarray.Array1.dim a) (Bigarray.Array1.get a));
      Hashtbl.replace extents d.Ir.aname (Array.of_list d.Ir.extents))
    bufs.b_prog.Ir.decls;
  { Interp.arrays; extents }

let checksum bufs = Interp.checksum (to_store bufs)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

(* Flat address of an array reference as coefficients over the nest's
   value vector: flat = base + sum coeff.(i) * vals.(i). *)
type cref = { r_buf : ba; r_coeff : int array; r_base : int }

type cstmt = {
  c_guard : (int * int * int) array;  (* (vals index, lo, hi) *)
  c_rhs : int array -> float;
  c_lhs : cref;
}

type cnest = { cn_nvars : int; cn_stmts : cstmt array }

let var_index vars x =
  let rec find i =
    if i >= Array.length vars then
      invalid_arg ("Native: unbound variable " ^ x)
    else if String.equal vars.(i) x then i
    else find (i + 1)
  in
  find 0

let compile_ref bufs extents_of vars (r : Ir.aref) =
  let buf =
    match Hashtbl.find_opt bufs.b_tbl r.Ir.array with
    | Some b -> b
    | None -> invalid_arg ("Native: unknown array " ^ r.Ir.array)
  in
  let ext = extents_of r.Ir.array in
  let rank = Array.length ext in
  if List.length r.Ir.index <> rank then
    invalid_arg ("Native: rank mismatch on " ^ r.Ir.array);
  (* row-major strides *)
  let stride = Array.make rank 1 in
  for d = rank - 2 downto 0 do
    stride.(d) <- stride.(d + 1) * ext.(d + 1)
  done;
  let coeff = Array.make (Array.length vars) 0 in
  let base = ref 0 in
  List.iteri
    (fun d (a : Ir.affine) ->
      base := !base + (a.Ir.const * stride.(d));
      List.iter
        (fun (c, v) ->
          let i = var_index vars v in
          coeff.(i) <- coeff.(i) + (c * stride.(d)))
        a.Ir.terms)
    r.Ir.index;
  { r_buf = buf; r_coeff = coeff; r_base = !base }

let flat (r : cref) (vals : int array) =
  let k = ref r.r_base in
  for i = 0 to Array.length r.r_coeff - 1 do
    k := !k + (r.r_coeff.(i) * vals.(i))
  done;
  !k

(* Mirror of Interp.eval_expr as a closure tree: Const / Read / Neg /
   Bin with the identical float operations. *)
let rec compile_expr bufs extents_of vars (e : Ir.expr) : int array -> float =
  match e with
  | Ir.Const k -> fun _ -> k
  | Ir.Read r ->
    let cr = compile_ref bufs extents_of vars r in
    fun vals -> Bigarray.Array1.get cr.r_buf (flat cr vals)
  | Ir.Neg e ->
    let f = compile_expr bufs extents_of vars e in
    fun vals -> -.f vals
  | Ir.Bin (op, x, y) -> (
    let fx = compile_expr bufs extents_of vars x
    and fy = compile_expr bufs extents_of vars y in
    match op with
    | Ir.Add -> fun vals -> fx vals +. fy vals
    | Ir.Sub -> fun vals -> fx vals -. fy vals
    | Ir.Mul -> fun vals -> fx vals *. fy vals
    | Ir.Div -> fun vals -> fx vals /. fy vals)

let compile_nest bufs extents_of (n : Ir.nest) =
  let vars = Array.of_list (Ir.nest_vars n) in
  let stmts =
    List.map
      (fun (s : Ir.stmt) ->
        {
          c_guard =
            Array.of_list
              (List.map
                 (fun (v, lo, hi) -> (var_index vars v, lo, hi))
                 s.Ir.guard);
          c_rhs = compile_expr bufs extents_of vars s.Ir.rhs;
          c_lhs = compile_ref bufs extents_of vars s.Ir.lhs;
        })
      n.Ir.body
  in
  { cn_nvars = Array.length vars; cn_stmts = Array.of_list stmts }

let compile bufs (p : Ir.program) =
  let ext_tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : Ir.decl) ->
      Hashtbl.replace ext_tbl d.Ir.aname (Array.of_list d.Ir.extents))
    p.Ir.decls;
  let extents_of a =
    match Hashtbl.find_opt ext_tbl a with
    | Some e -> e
    | None -> invalid_arg ("Native: unknown array " ^ a)
  in
  Array.of_list (List.map (compile_nest bufs extents_of) p.Ir.nests)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let guard_ok (g : (int * int * int) array) (vals : int array) =
  let ok = ref true in
  for i = 0 to Array.length g - 1 do
    let idx, lo, hi = g.(i) in
    let v = vals.(idx) in
    if v < lo || v > hi then ok := false
  done;
  !ok

(* Same statement-instance order as Schedule.exec_box: the recursive
   range walk, and per point guard -> eval rhs -> write lhs. *)
let exec_box (cnests : cnest array) (scratch : int array array)
    (b : Schedule.box) =
  let cn = cnests.(b.Schedule.nest) in
  let vals = scratch.(b.Schedule.nest) in
  let nd = Array.length b.Schedule.ranges in
  let stmts = cn.cn_stmts in
  let nstmts = Array.length stmts in
  let rec go d =
    if d = nd then
      for s = 0 to nstmts - 1 do
        let st = stmts.(s) in
        if guard_ok st.c_guard vals then begin
          let v = st.c_rhs vals in
          Bigarray.Array1.set st.c_lhs.r_buf (flat st.c_lhs vals) v
        end
      done
    else begin
      let lo, hi = b.Schedule.ranges.(d) in
      for v = lo to hi do
        vals.(d) <- v;
        go (d + 1)
      done
    end
  in
  go 0

let run_into ?(steps = 1) ?pool bufs (t : Schedule.t) =
  let cnests = compile bufs t.Schedule.prog in
  let phases = Array.of_list t.Schedule.phases in
  let nprocs = t.Schedule.nprocs in
  let exec pool =
    if Pool.size pool <> nprocs then
      invalid_arg
        (Printf.sprintf "Native.run: pool has %d workers, schedule wants %d"
           (Pool.size pool) nprocs);
    let bar = Spin_barrier.create nprocs in
    (* per-worker value vectors: workers share the compiled nests but
       never a mutable iteration point *)
    let scratch =
      Array.init nprocs (fun _ ->
          Array.map (fun cn -> Array.make (max 1 cn.cn_nvars) 0) cnests)
    in
    Pool.run pool (fun w ->
        let mine = scratch.(w) in
        for _step = 1 to steps do
          for pi = 0 to Array.length phases - 1 do
            List.iter (exec_box cnests mine) phases.(pi).(w);
            Spin_barrier.wait bar
          done
        done)
  in
  match pool with Some p -> exec p | None -> Pool.with_pool nprocs exec

let run ?init ?steps ?pool (t : Schedule.t) =
  let bufs = create ?init t.Schedule.prog in
  run_into ?steps ?pool bufs t;
  bufs

let verify ?init ?(steps = 1) ?pool (t : Schedule.t) =
  let bufs = run ?init ~steps ?pool t in
  let reference = Interp.run ?init ~steps t.Schedule.prog in
  match Interp.diff reference (to_store bufs) with
  | None -> Ok ()
  | Some (name, k, want, got) ->
    Error
      (Printf.sprintf
         "native execution diverges from the reference: %s[%d] = %h, \
          expected %h"
         name k got want)

type timing = {
  t_measure : Bench_timer.measurement;
  t_checksum : float;
  t_nprocs : int;
  t_steps : int;
}

let measure ?policy ?(steps = 1) ?pool (t : Schedule.t) =
  let bufs = create t.Schedule.prog in
  let go pool =
    Bench_timer.measure ?policy
      ~prepare:(fun () -> reset bufs)
      (fun () -> run_into ~steps ~pool bufs t)
  in
  let m =
    match pool with
    | Some p -> go p
    | None -> Pool.with_pool t.Schedule.nprocs go
  in
  {
    t_measure = m;
    t_checksum = checksum bufs;
    t_nprocs = t.Schedule.nprocs;
    t_steps = steps;
  }
