(** Wall-clock measurement policy shared by every component that times
    real execution: the bench experiments, the autotuner's measured
    cost tier, and `lfc run`.

    Measured time is {e nondeterministic} — it depends on the host, its
    load, its thermal state — which is why it must never enter the
    content-addressed result store ({!Lf_batch.Batch.Store} persists
    simulated observables only; see DESIGN §7).  What this module
    provides instead is a single, testable definition of how raw
    nondeterministic samples become a reported number:

    - {b monotonic clock}: {!now_ns} reads [CLOCK_MONOTONIC] through
      bechamel's stub, immune to wall-clock adjustments;
    - {b warmup}: the first [warmup] repetitions are discarded
      (allocators touch pages, branch predictors and caches settle);
    - {b GC quiescence}: a full major collection runs before every
      timed repetition, so collector debt accumulated while preparing
      never lands inside a timed region;
    - {b min-of-k}: the minimum of the timed repetitions is the
      headline number — external interference only ever {e adds} time,
      so the minimum is the best estimator of the code's cost;
    - {b outlier rejection}: samples above [outlier_cutoff] times the
      sample median are excluded from the mean/median summary (the
      minimum is unaffected by construction).

    {!aggregate} is pure, so the policy arithmetic is unit-testable
    without timing anything. *)

type policy = {
  warmup : int;  (** discarded leading repetitions (>= 0) *)
  repetitions : int;  (** timed repetitions (>= 1) *)
  outlier_cutoff : float;
      (** reject samples above cutoff x median (>= 1.0) *)
}

val default_policy : policy
(** [{ warmup = 2; repetitions = 5; outlier_cutoff = 3.0 }]. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds.  Only differences are meaningful. *)

type measurement = {
  samples : float array;  (** every timed repetition, seconds, in order *)
  kept : int;  (** samples surviving outlier rejection *)
  min_s : float;  (** minimum over all samples — the headline number *)
  median_s : float;  (** median of the kept samples *)
  mean_s : float;  (** mean of the kept samples *)
}

val aggregate : ?policy:policy -> float array -> measurement
(** Pure aggregation of raw samples (seconds) under the policy's
    outlier rule.  Raises [Invalid_argument] on an empty array or a
    malformed policy. *)

val measure :
  ?policy:policy -> ?prepare:(unit -> unit) -> (unit -> unit) -> measurement
(** [measure ~prepare f] runs [prepare(); f()] [warmup] times untimed,
    then [repetitions] times with [f] timed ([prepare] and the full
    major collection stay outside the timed region), and aggregates. *)

val pp : Format.formatter -> measurement -> unit
(** ["min 1.23 ms, median 1.31 ms (5 reps, 5 kept)"]. *)
