(** Jacobi relaxation pair (paper Figure 15): a four-point stencil and
    a copy-back; the paper's example for multidimensional
    shift-and-peel (shift 1, peel 1 in both dimensions). *)

val arrays : string list

val program : ?n:int -> unit -> Lf_ir.Ir.program

val expected_shifts : int array array
(** Per nest, per dimension: [| [|0;0|]; [|1;1|] |]. *)

val expected_peels : int array array
