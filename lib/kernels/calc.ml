(* The "calc" kernel: a five-nest sequence over six arrays modelling the
   velocity/vorticity update of the qgbox quasigeostrophic ocean model
   [McCalpin 92] used in the paper.

   The original Fortran source is not published in the paper, so this
   model is reverse-engineered from Table 1/2: five loop nests, six
   arrays, and inter-nest dependences whose honest derivation yields
   shifts (0,0,2,3,3) and peels (0,0,2,3,3) in the fused dimension --
   a +/-2 vorticity stencil feeding a +/-1 smoothing feeding the state
   update (see DESIGN.md for the substitution note). *)

module Ir = Lf_ir.Ir

let arrays = [ "psi"; "zeta"; "chi"; "rhs"; "frc"; "wnd" ]

let narrays = List.length arrays

let i o = Ir.av ~c:o "i"
let j o = Ir.av ~c:o "j"
let r name io jo = Ir.Read (Ir.aref name [ i io; j jo ])
let w name io jo = Ir.aref name [ i io; j jo ]
let ( + ) a b = Ir.Bin (Ir.Add, a, b)
let ( - ) a b = Ir.Bin (Ir.Sub, a, b)
let ( * ) a b = Ir.Bin (Ir.Mul, a, b)
let c x = Ir.Const x

let levels n =
  [
    { Ir.lvar = "i"; lo = 2; hi = Stdlib.( - ) n 3; parallel = true };
    { Ir.lvar = "j"; lo = 2; hi = Stdlib.( - ) n 3; parallel = true };
  ]

(* L1: streamfunction tendency from forcing and wind stress. *)
let nest1 n =
  {
    Ir.nid = "L1";
    levels = levels n;
    body =
      [ { Ir.guard = []; lhs = w "psi" 0 0; rhs = r "frc" 0 0 + r "wnd" 0 0 } ];
  }

(* L2: velocity potential from the same inputs. *)
let nest2 n =
  {
    Ir.nid = "L2";
    levels = levels n;
    body =
      [ { Ir.guard = []; lhs = w "chi" 0 0; rhs = r "frc" 0 0 - r "wnd" 0 0 } ];
  }

(* L3: vorticity from a wide (+-2) streamfunction stencil. *)
let nest3 n =
  {
    Ir.nid = "L3";
    levels = levels n;
    body =
      [
        {
          Ir.guard = []; lhs = w "zeta" 0 0;
          rhs =
            r "psi" 2 0 + r "psi" (-2) 0
            - (c 2.0 * r "psi" 0 0)
            + r "chi" 0 0;
        };
      ];
  }

(* L4: right-hand side from a +-1 vorticity stencil. *)
let nest4 n =
  {
    Ir.nid = "L4";
    levels = levels n;
    body =
      [
        {
          Ir.guard = []; lhs = w "rhs" 0 0;
          rhs = r "zeta" 1 0 - r "zeta" (-1) 0 + r "zeta" 0 1 - r "zeta" 0 (-1);
        };
      ];
  }

(* L5: advance the wind-stress work array (antidependent on L1/L2's
   reads of wnd, flow-dependent on L4's rhs and L3's zeta). *)
let nest5 n =
  {
    Ir.nid = "L5";
    levels = levels n;
    body =
      [
        {
          Ir.guard = []; lhs = w "wnd" 0 0;
          rhs = (c 0.25 * r "rhs" 0 0) + r "zeta" 0 0 + r "wnd" 0 0;
        };
      ];
  }

let program ?(n = 512) () =
  let p =
    {
      Ir.pname = Printf.sprintf "calc_%d" n;
      decls = List.map (fun a -> { Ir.aname = a; extents = [ n; n ] }) arrays;
      nests = [ nest1 n; nest2 n; nest3 n; nest4 n; nest5 n ];
    }
  in
  Ir.validate p;
  p

let expected_shifts = [| 0; 0; 2; 3; 3 |]
let expected_peels = [| 0; 0; 2; 3; 3 |]
