(* The "filter" kernel: a ten-nest smoothing pipeline modelling the
   filter subroutine of hydro2d used in the paper.

   As with calc, the Fortran source is not published; the model is
   reverse-engineered from Tables 1/2: ten loop nests whose chained +-1
   stencils accumulate shifts (0,0,0,1,2,2,3,4,4,5) and peels
   (0,0,0,1,2,2,3,4,4,4) in the fused dimension.  The bodies carry
   several references each so the dependence chain multigraph is densely
   populated, as the paper reports (149 edges for the original). *)

module Ir = Lf_ir.Ir

let arrays =
  [ "den"; "prs"; "f1"; "f2"; "f3"; "f4"; "f5"; "f6"; "f7"; "f8"; "f9"; "f10" ]

let narrays = List.length arrays

let i o = Ir.av ~c:o "i"
let j o = Ir.av ~c:o "j"
let r name io jo = Ir.Read (Ir.aref name [ i io; j jo ])
let w name io jo = Ir.aref name [ i io; j jo ]
let ( + ) a b = Ir.Bin (Ir.Add, a, b)
let ( - ) a b = Ir.Bin (Ir.Sub, a, b)
let ( * ) a b = Ir.Bin (Ir.Mul, a, b)
let c x = Ir.Const x

let levels ~rows ~cols =
  [
    { Ir.lvar = "i"; lo = 1; hi = Stdlib.( - ) rows 2; parallel = true };
    { Ir.lvar = "j"; lo = 1; hi = Stdlib.( - ) cols 2; parallel = true };
  ]

let nest nid ~rows ~cols body = { Ir.nid; levels = levels ~rows ~cols; body }

let smooth3 name io =
  r name (Stdlib.( + ) io 1) 0
  + r name (Stdlib.( - ) io 1) 0
  + (c 2.0 * r name io 0)
  + r name io 1
  + r name io (-1)

let program ?(rows = 1602) ?(cols = 640) () =
  let n = nest ~rows ~cols in
  let nests =
    [
      n "L1" [ { Ir.guard = []; lhs = w "f1" 0 0; rhs = r "den" 0 0 + r "prs" 0 0 } ];
      n "L2" [ { Ir.guard = []; lhs = w "f2" 0 0; rhs = r "den" 0 0 - r "prs" 0 0 } ];
      n "L3"
        [
          {
            Ir.guard = []; lhs = w "f3" 0 0;
            rhs = (r "f1" 0 0 * r "f2" 0 0) + r "f1" 0 1 + r "f2" 0 (-1);
          };
        ];
      n "L4"
        [ { Ir.guard = []; lhs = w "f4" 0 0; rhs = c 0.1666 * smooth3 "f3" 0 } ];
      n "L5"
        [
          {
            Ir.guard = []; lhs = w "f5" 0 0;
            rhs = (c 0.1666 * smooth3 "f4" 0) + r "f1" 0 0;
          };
        ];
      n "L6"
        [
          {
            Ir.guard = []; lhs = w "f6" 0 0;
            rhs = r "f5" 0 0 + r "f3" 0 0 + r "f2" 0 0;
          };
        ];
      n "L7"
        [
          {
            Ir.guard = []; lhs = w "f7" 0 0;
            rhs = (c 0.1666 * smooth3 "f6" 0) + r "f1" 0 0;
          };
        ];
      n "L8"
        [ { Ir.guard = []; lhs = w "f8" 0 0; rhs = c 0.1666 * smooth3 "f7" 0 } ];
      n "L9"
        [
          {
            Ir.guard = []; lhs = w "f9" 0 0;
            rhs = r "f8" 0 0 + r "f6" 0 0 + r "f4" 0 0;
          };
        ];
      n "L10"
        [
          {
            Ir.guard = []; lhs = w "f10" 0 0;
            rhs = r "f9" 1 0 + r "f9" 1 1 + r "f5" 0 0 + r "f2" 0 0;
          };
        ];
    ]
  in
  let p =
    {
      Ir.pname = Printf.sprintf "filter_%dx%d" rows cols;
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ rows; cols ] }) arrays;
      nests;
    }
  in
  Ir.validate p;
  p

let expected_shifts = [| 0; 0; 0; 1; 2; 2; 3; 4; 4; 5 |]
let expected_peels = [| 0; 0; 0; 1; 2; 2; 3; 4; 4; 4 |]
