(* Application models for the paper's three complete applications
   (tomcatv, hydro2d, spem; Table 1 and Figures 21, 25).

   The full Fortran applications are not reproducible here; each model
   keeps the structure the paper's results depend on: the number of
   fusible parallel loop sequences, their lengths and shift/peel
   amounts (Table 1), the number and size of the arrays (hence the
   data-size-versus-cache-size behaviour), and a non-fusible remainder
   sized so the transformed sequences take a comparable share of the
   execution time.  See DESIGN.md for the substitution rationale. *)

module Ir = Lf_ir.Ir

type t = {
  app_name : string;
  sequences : Ir.program list;  (* fusible parallel loop sequences *)
  remainder : Ir.program option;  (* parallel nests that are never fused *)
  remainder_reps : int;
      (* how many times the remainder executes per pass over the
         sequences; calibrates the fusible share of the runtime to the
         share the paper reports for each application *)
}

(* ------------------------------------------------------------------ *)
(* Sequence generators                                                 *)

type read2 = string * int * int  (* array, i-offset, j-offset *)

let mk2 (name, io, jo) = Ir.Read (Ir.aref name [ Ir.av ~c:io "i"; Ir.av ~c:jo "j" ])

let sum_exprs = function
  | [] -> Ir.Const 0.0
  | e :: es -> List.fold_left (fun a b -> Ir.Bin (Ir.Add, a, b)) e es

(* One nest per stage; a stage is a list of statements
   (written array, reads). *)
let seq2d ~pname ~rows ~cols ~margin ~decls ~stages =
  let levels =
    [
      { Ir.lvar = "i"; lo = margin; hi = rows - 1 - margin; parallel = true };
      { Ir.lvar = "j"; lo = margin; hi = cols - 1 - margin; parallel = true };
    ]
  in
  let nests =
    List.mapi
      (fun k stmts ->
        {
          Ir.nid = Printf.sprintf "S%d" (k + 1);
          levels;
          body =
            List.map
              (fun (out, reads) ->
                {
                  Ir.guard = []; lhs = Ir.aref out [ Ir.av "i"; Ir.av "j" ];
                  rhs = sum_exprs (List.map mk2 reads);
                })
              stmts;
        })
      stages
  in
  let p =
    {
      Ir.pname = pname;
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ rows; cols ] }) decls;
      nests;
    }
  in
  Ir.validate p;
  p

type read3 = string * int * int * int

let mk3 (name, ko, io, jo) =
  Ir.Read
    (Ir.aref name [ Ir.av ~c:ko "k"; Ir.av ~c:io "i"; Ir.av ~c:jo "j" ])

let seq3d ~pname ~d0 ~d1 ~d2 ~margin ~decls ~stages =
  let levels =
    [
      { Ir.lvar = "k"; lo = margin; hi = d0 - 1 - margin; parallel = true };
      { Ir.lvar = "i"; lo = margin; hi = d1 - 1 - margin; parallel = true };
      { Ir.lvar = "j"; lo = margin; hi = d2 - 1 - margin; parallel = true };
    ]
  in
  let nests =
    List.mapi
      (fun k stmts ->
        {
          Ir.nid = Printf.sprintf "S%d" (k + 1);
          levels;
          body =
            List.map
              (fun (out, reads) ->
                {
                  Ir.guard = [];
                  lhs =
                    Ir.aref out [ Ir.av "k"; Ir.av "i"; Ir.av "j" ];
                  rhs = sum_exprs (List.map mk3 reads);
                })
              stmts;
        })
      stages
  in
  let p =
    {
      Ir.pname = pname;
      decls =
        List.map
          (fun a -> { Ir.aname = a; extents = [ d0; d1; d2 ] })
          decls;
      nests;
    }
  in
  Ir.validate p;
  p

(* ------------------------------------------------------------------ *)
(* tomcatv: mesh generation, 513x513, 7 arrays; one 3-nest sequence
   with maximum shift/peel 1/1 plus a solver remainder.                *)

let tomcatv ?(n = 513) () =
  let decls = [ "x"; "y"; "rx"; "ry"; "aa"; "dd"; "d" ] in
  let sequence =
    seq2d ~pname:"tomcatv_seq" ~rows:n ~cols:n ~margin:1 ~decls
      ~stages:
        [
          [
            ("rx", [ ("x", 0, -1); ("x", 0, 1); ("x", -1, 0); ("x", 1, 0) ]);
            ("ry", [ ("y", 0, -1); ("y", 0, 1); ("y", -1, 0); ("y", 1, 0) ]);
          ];
          [
            ("aa", [ ("rx", 1, 0); ("rx", -1, 0); ("ry", 0, 0) ]);
            ("dd", [ ("ry", 1, 0); ("ry", -1, 0); ("rx", 0, 0) ]);
          ];
          [
            ("x", [ ("x", 0, 0); ("aa", 0, 0) ]);
            ("y", [ ("y", 0, 0); ("dd", 0, 0) ]);
          ];
        ]
  in
  let remainder =
    seq2d ~pname:"tomcatv_solver" ~rows:n ~cols:n ~margin:1 ~decls
      ~stages:
        [
          [ ("d", [ ("x", 0, 0); ("y", 0, 0); ("d", 0, 0) ]) ];
          [ ("dd", [ ("d", 0, 1); ("d", 0, -1); ("dd", 0, 0) ]) ];
        ]
  in
  {
    app_name = "tomcatv";
    sequences = [ sequence ];
    remainder = Some remainder;
    remainder_reps = 6;
  }

(* ------------------------------------------------------------------ *)
(* hydro2d: Navier-Stokes, 802x320, ~24 arrays, 3 transformed
   sequences (the longest is the 10-nest filter), remainder advection. *)

let hydro2d ?(rows = 802) ?(cols = 320) () =
  let filter_seq = Filter.program ~rows ~cols () in
  let seq2 =
    seq2d ~pname:"hydro2d_flux" ~rows ~cols ~margin:2
      ~decls:[ "ro"; "mu"; "en"; "pr"; "gx"; "gy" ]
      ~stages:
        [
          [ ("mu", [ ("ro", 0, 0); ("gx", 0, 0) ]) ];
          [ ("en", [ ("mu", 1, 0); ("mu", -1, 0); ("gy", 0, 0) ]) ];
          [ ("pr", [ ("en", 1, 0); ("en", -1, 0); ("mu", 0, 0) ]) ];
          [ ("ro", [ ("ro", 0, 0); ("pr", 0, 0) ]) ];
        ]
  in
  let seq3 =
    seq2d ~pname:"hydro2d_vel" ~rows ~cols ~margin:1
      ~decls:[ "vx"; "vy"; "fx"; "fy" ]
      ~stages:
        [
          [ ("fx", [ ("vx", 0, 1); ("vx", 0, -1) ]);
            ("fy", [ ("vy", 0, 1); ("vy", 0, -1) ]) ];
          [ ("vx", [ ("vx", 0, 0); ("fx", 1, 0); ("fx", -1, 0) ]) ];
          [ ("vy", [ ("vy", 0, 0); ("fy", 1, 0); ("fy", -1, 0) ]) ];
        ]
  in
  let remainder =
    seq2d ~pname:"hydro2d_adv" ~rows ~cols ~margin:1
      ~decls:[ "w1"; "w2"; "w3"; "w4"; "w5"; "w6"; "w7"; "w8" ]
      ~stages:
        [
          [ ("w1", [ ("w2", 0, 0); ("w3", 0, 0) ]) ];
          [ ("w4", [ ("w1", 1, 0); ("w1", -1, 0); ("w5", 0, 0) ]) ];
          [ ("w6", [ ("w4", 0, 1); ("w4", 0, -1); ("w7", 0, 0) ]) ];
          [ ("w8", [ ("w6", 0, 0); ("w2", 0, 0) ]) ];
        ]
  in
  {
    app_name = "hydro2d";
    sequences = [ filter_seq; seq2; seq3 ];
    remainder = Some remainder;
    remainder_reps = 5;
  }

(* ------------------------------------------------------------------ *)
(* spem: 3-D ocean circulation, 60x65x65 arrays, eleven transformed
   sequences covering about half the execution time; maximum shift 1,
   maximum peel 2 (an upwind k-stencil reading [k-2 .. k+1]).          *)

let spem_sequence ~d0 ~d1 ~d2 ~idx ~len =
  let stage_array s = Printf.sprintf "q%d_%d" idx s in
  let decls =
    (Printf.sprintf "in%d_a" idx :: Printf.sprintf "in%d_b" idx
    :: List.init len (fun s -> stage_array s))
  in
  let stages =
    List.init len (fun s ->
        if s = 0 then
          [
            ( stage_array 0,
              [
                (Printf.sprintf "in%d_a" idx, 0, 0, 0);
                (Printf.sprintf "in%d_b" idx, 0, 0, 0);
              ] );
          ]
        else if s = 1 then
          (* the one wide link: shift 1 (k+1), peel 2 (k-2) *)
          [
            ( stage_array 1,
              [
                (stage_array 0, 1, 0, 0);
                (stage_array 0, -2, 0, 0);
                (stage_array 0, 0, 0, 0);
              ] );
          ]
        else
          [
            ( stage_array s,
              [
                (stage_array (s - 1), 0, 0, 0);
                (stage_array (max 0 (s - 2)), 0, 1, 0);
                (stage_array (max 0 (s - 2)), 0, -1, 0);
              ] );
          ])
  in
  seq3d
    ~pname:(Printf.sprintf "spem_seq%d" idx)
    ~d0 ~d1 ~d2 ~margin:2 ~decls ~stages

let spem ?(d0 = 60) ?(d1 = 65) ?(d2 = 65) () =
  let lengths = [ 8; 6; 5; 4; 4; 3; 3; 3; 2; 2; 2 ] in
  let sequences =
    List.mapi (fun i len -> spem_sequence ~d0 ~d1 ~d2 ~idx:(i + 1) ~len) lengths
  in
  let remainder =
    seq3d ~pname:"spem_rem" ~d0 ~d1 ~d2 ~margin:1
      ~decls:[ "r1"; "r2"; "r3"; "r4"; "r5"; "r6" ]
      ~stages:
        [
          [ ("r1", [ ("r2", 0, 0, 0); ("r3", 0, 0, 0) ]) ];
          [ ("r4", [ ("r1", 0, 1, 0); ("r1", 0, -1, 0); ("r5", 0, 0, 0) ]) ];
          [ ("r6", [ ("r4", 0, 0, 1); ("r4", 0, 0, -1); ("r2", 0, 0, 0) ]) ];
          [ ("r3", [ ("r3", 0, 0, 0); ("r6", 0, 0, 0) ]) ];
          [ ("r5", [ ("r5", 0, 0, 0); ("r6", 1, 0, 0); ("r6", -1, 0, 0) ]) ];
        ]
  in
  { app_name = "spem"; sequences; remainder = Some remainder; remainder_reps = 8 }

(* Number of loop-nest sequences, longest sequence, and Table 1 row
   helpers. *)
let num_sequences a = List.length a.sequences

let longest_sequence a =
  List.fold_left
    (fun m (p : Ir.program) -> max m (List.length p.nests))
    0 a.sequences
