(** The "filter" kernel: a ten-nest smoothing pipeline modelling the
    filter subroutine of hydro2d used in the paper.  Reverse-engineered
    from Tables 1/2: chained ±1 stencils accumulating shifts
    (0,0,0,1,2,2,3,4,4,5) and peels (0,0,0,1,2,2,3,4,4,4). *)

val arrays : string list
val narrays : int

val program : ?rows:int -> ?cols:int -> unit -> Lf_ir.Ir.program
(** Default 1602×640, the paper's filter array size. *)

val expected_shifts : int array
val expected_peels : int array
