(** The "calc" kernel: a five-nest sequence over six arrays modelling
    the qgbox quasigeostrophic ocean model kernel used in the paper.
    Reverse-engineered from Tables 1/2 (the Fortran source is not
    published): a ±2 vorticity stencil feeding a ±1 smoothing feeding
    the state update, whose honest derivation yields shifts
    (0,0,2,3,3) and peels (0,0,2,3,3). *)

val arrays : string list
val narrays : int

val program : ?n:int -> unit -> Lf_ir.Ir.program

val expected_shifts : int array
val expected_peels : int array
