(* Native (float array) implementations of LL18 and Jacobi for the
   OCaml 5 domains runtime: the unfused loop sequence with a join
   between nests, and the fused shift-and-peel version with a single
   barrier (the paper's Figure 12 code shape, hand-specialised).

   Arrays are initialised with the same deterministic values as the IR
   interpreter, so the native results can be compared bit-for-bit
   against the IR reference executions. *)

module Interp = Lf_ir.Interp
module Pool = Lf_parallel.Pool
module Barrier = Lf_parallel.Barrier

let init_array name n2 = Array.init n2 (Interp.default_init name)

(* ------------------------------------------------------------------ *)
(* LL18                                                                *)

module Ll18_native = struct
  type t = {
    n : int;
    zr : float array;
    zz : float array;
    zu : float array;
    zv : float array;
    za : float array;
    zb : float array;
    zp : float array;
    zq : float array;
    zm : float array;
  }

  let s = Ll18.s_const
  let t_ = Ll18.t_const

  let create n =
    let a name = init_array name (n * n) in
    {
      n;
      zr = a "zr";
      zz = a "zz";
      zu = a "zu";
      zv = a "zv";
      za = a "za";
      zb = a "zb";
      zp = a "zp";
      zq = a "zq";
      zm = a "zm";
    }

  (* Loop 1 over k in [ks, ke], all j. *)
  let l1 a ks ke =
    let n = a.n in
    for k = ks to ke do
      for j = 1 to n - 2 do
        let i = (k * n) + j in
        a.za.(i) <-
          (a.zp.((k + 1) * n + (j - 1))
           +. a.zq.((k + 1) * n + (j - 1))
           -. a.zp.((k * n) + (j - 1))
           -. a.zq.((k * n) + (j - 1)))
          *. (a.zr.(i) +. a.zr.((k * n) + (j - 1)))
          /. (a.zm.((k * n) + (j - 1)) +. a.zm.((k + 1) * n + (j - 1)));
        a.zb.(i) <-
          (a.zp.((k * n) + (j - 1))
           +. a.zq.((k * n) + (j - 1))
           -. a.zp.(i) -. a.zq.(i))
          *. (a.zr.(i) +. a.zr.(((k - 1) * n) + j))
          /. (a.zm.(i) +. a.zm.((k * n) + (j - 1)))
      done
    done

  let l2 a ks ke =
    let n = a.n in
    for k = ks to ke do
      for j = 1 to n - 2 do
        let i = (k * n) + j in
        let up = ((k + 1) * n) + j and dn = ((k - 1) * n) + j in
        let lf = (k * n) + (j - 1) and rt = (k * n) + (j + 1) in
        a.zu.(i) <-
          a.zu.(i)
          +. s
             *. ((a.za.(i) *. (a.zz.(i) -. a.zz.(rt)))
                -. (a.za.(lf) *. (a.zz.(i) -. a.zz.(lf)))
                -. (a.zb.(i) *. (a.zz.(i) -. a.zz.(dn)))
                +. (a.zb.(up) *. (a.zz.(i) -. a.zz.(up))));
        a.zv.(i) <-
          a.zv.(i)
          +. s
             *. ((a.za.(i) *. (a.zr.(i) -. a.zr.(rt)))
                -. (a.za.(lf) *. (a.zr.(i) -. a.zr.(lf)))
                -. (a.zb.(i) *. (a.zr.(i) -. a.zr.(dn)))
                +. (a.zb.(up) *. (a.zr.(i) -. a.zr.(up))))
      done
    done

  let l3 a ks ke =
    let n = a.n in
    for k = ks to ke do
      for j = 1 to n - 2 do
        let i = (k * n) + j in
        a.zr.(i) <- a.zr.(i) +. (t_ *. a.zu.(i));
        a.zz.(i) <- a.zz.(i) +. (t_ *. a.zv.(i))
      done
    done

  let sequential a =
    let hi = a.n - 2 in
    l1 a 1 hi;
    l2 a 1 hi;
    l3 a 1 hi

  (* Unfused parallel execution: one join (barrier) after each nest. *)
  let unfused pool a =
    let hi = a.n - 2 in
    Pool.parallel_for_blocks pool ~lo:1 ~hi (fun bs be -> l1 a bs be);
    Pool.parallel_for_blocks pool ~lo:1 ~hi (fun bs be -> l2 a bs be);
    Pool.parallel_for_blocks pool ~lo:1 ~hi (fun bs be -> l3 a bs be)

  (* Fused shift-and-peel execution (Figure 12): shifts (0,1,2), peels
     (0,0,1), hence start-of-block skips (0,1,3); one barrier, then the
     tail + peeled iterations. *)
  let fused ?(strip = 64) pool a =
    let n = a.n in
    let lo = 1 and hi = n - 2 in
    let nw = Pool.size pool in
    let barrier = Barrier.create nw in
    Pool.run pool (fun w ->
        let bs, be = Pool.block ~lo ~hi ~n:nw ~w in
        let first = w = 0 and last = w = nw - 1 in
        let lo2 = if first then lo else bs in
        (* bs - 1 + skip(1) *)
        let lo3 = if first then lo else bs + 1 in
        (* bs - 2 + skip(3) *)
        let ss = ref bs in
        while !ss <= be do
          let se = min (!ss + strip - 1) be in
          l1 a !ss se;
          l2 a (max (!ss - 1) lo2) (min (se - 1) (be - 1));
          l3 a (max (!ss - 2) lo3) (min (se - 2) (be - 2));
          ss := !ss + strip
        done;
        Barrier.wait barrier;
        (* loop 2: shift 1, peel 0 -> tail [be, be] *)
        l2 a (max lo (be - 1 + 1)) (if last then hi else be);
        (* loop 3: shift 2, peel 1 -> tail [be-1, be+1] *)
        l3 a (max lo (be - 2 + 1)) (if last then hi else be + 1))

  (* [steps] fused time steps with one pool and one reusable barrier;
     the sequential outer loop of the paper's sec 1 program model. *)
  let fused_steps ?(strip = 64) ~steps pool a =
    for _step = 1 to steps do
      fused ~strip pool a
    done

  let checksum a =
    let acc = ref 0.0 in
    List.iter
      (fun arr -> Array.iter (fun v -> acc := !acc +. v) arr)
      [ a.zr; a.zz; a.zu; a.zv; a.za; a.zb; a.zp; a.zq; a.zm ];
    !acc

  let equal x y =
    x.zr = y.zr && x.zz = y.zz && x.zu = y.zu && x.zv = y.zv && x.za = y.za
    && x.zb = y.zb
end

(* ------------------------------------------------------------------ *)
(* Jacobi                                                              *)

module Jacobi_native = struct
  type t = { n : int; a : float array; b : float array }

  let create n = { n; a = init_array "a" (n * n); b = init_array "b" (n * n) }

  let relax t is ie =
    let n = t.n in
    for i = is to ie do
      for j = 1 to n - 2 do
        t.b.((i * n) + j) <-
          (t.a.((i * n) + j - 1)
           +. t.a.((i * n) + j + 1)
           +. t.a.(((i - 1) * n) + j)
           +. t.a.(((i + 1) * n) + j))
          /. 4.0
      done
    done

  let copy_back t is ie =
    let n = t.n in
    for i = is to ie do
      for j = 1 to n - 2 do
        t.a.((i * n) + j) <- t.b.((i * n) + j)
      done
    done

  let sequential t =
    relax t 1 (t.n - 2);
    copy_back t 1 (t.n - 2)

  let unfused pool t =
    let hi = t.n - 2 in
    Pool.parallel_for_blocks pool ~lo:1 ~hi (fun bs be -> relax t bs be);
    Pool.parallel_for_blocks pool ~lo:1 ~hi (fun bs be -> copy_back t bs be)

  (* 1-D fused shift-and-peel over rows: copy-back shift 1, peel 1
     (start-of-block skip 2). *)
  let fused ?(strip = 64) pool t =
    let n = t.n in
    let lo = 1 and hi = n - 2 in
    let nw = Pool.size pool in
    let barrier = Barrier.create nw in
    Pool.run pool (fun w ->
        let bs, be = Pool.block ~lo ~hi ~n:nw ~w in
        let first = w = 0 and last = w = nw - 1 in
        let lo2 = if first then lo else bs + 1 in
        (* bs - 1 + skip(2) *)
        let ss = ref bs in
        while !ss <= be do
          let se = min (!ss + strip - 1) be in
          relax t !ss se;
          copy_back t (max (!ss - 1) lo2) (min (se - 1) (be - 1));
          ss := !ss + strip
        done;
        Barrier.wait barrier;
        (* copy-back: shift 1, peel 1 -> tail [be, be+1] *)
        copy_back t (max lo be) (if last then hi else be + 1))

  let checksum t =
    let acc = ref 0.0 in
    Array.iter (fun v -> acc := !acc +. v) t.a;
    Array.iter (fun v -> acc := !acc +. v) t.b;
    !acc

  let equal x y = x.a = y.a && x.b = y.b
end
