(* Jacobi relaxation pair (paper Figure 15): a four-point stencil
   followed by a copy-back.  The second nest requires a shift of one and
   a peel of one in BOTH dimensions, making it the paper's example for
   multidimensional shift-and-peel code generation (Figure 16). *)

module Ir = Lf_ir.Ir

let arrays = [ "a"; "b" ]

let i o = Ir.av ~c:o "i"
let j o = Ir.av ~c:o "j"
let r name io jo = Ir.Read (Ir.aref name [ i io; j jo ])
let w name io jo = Ir.aref name [ i io; j jo ]
let ( + ) a b = Ir.Bin (Ir.Add, a, b)
let ( / ) a b = Ir.Bin (Ir.Div, a, b)

let levels n =
  [
    { Ir.lvar = "i"; lo = 1; hi = Stdlib.( - ) n 2; parallel = true };
    { Ir.lvar = "j"; lo = 1; hi = Stdlib.( - ) n 2; parallel = true };
  ]

let relax n =
  {
    Ir.nid = "relax";
    levels = levels n;
    body =
      [
        {
          Ir.guard = []; lhs = w "b" 0 0;
          rhs =
            (r "a" 0 (-1) + r "a" 0 1 + r "a" (-1) 0 + r "a" 1 0)
            / Ir.Const 4.0;
        };
      ];
  }

let copy_back n =
  {
    Ir.nid = "copy";
    levels = levels n;
    body = [ { Ir.guard = []; lhs = w "a" 0 0; rhs = r "b" 0 0 } ];
  }

let program ?(n = 512) () =
  let p =
    {
      Ir.pname = Printf.sprintf "jacobi_%d" n;
      decls = List.map (fun a -> { Ir.aname = a; extents = [ n; n ] }) arrays;
      nests = [ relax n; copy_back n ];
    }
  in
  Ir.validate p;
  p

(* Both fused dimensions need shift 1 and peel 1 for the copy nest. *)
let expected_shifts = [| [| 0; 0 |]; [| 1; 1 |] |]
let expected_peels = [| [| 0; 0 |]; [| 1; 1 |] |]
