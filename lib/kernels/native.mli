(** Native (float array) kernels for the OCaml 5 domains runtime: the
    unfused loop sequence with a join between nests, and the fused
    shift-and-peel version with a single barrier (the hand-specialised
    Figure 12 code shape).  Arrays are initialised identically to the
    IR interpreter, so results can be compared bit-for-bit against the
    IR reference executions. *)

val init_array : string -> int -> float array

(** Livermore Kernel 18. *)
module Ll18_native : sig
  type t = {
    n : int;
    zr : float array;
    zz : float array;
    zu : float array;
    zv : float array;
    za : float array;
    zb : float array;
    zp : float array;
    zq : float array;
    zm : float array;
  }

  val create : int -> t

  val sequential : t -> unit
  (** The three nests, serially. *)

  val unfused : Lf_parallel.Pool.t -> t -> unit
  (** One parallel region (join) per nest. *)

  val fused : ?strip:int -> Lf_parallel.Pool.t -> t -> unit
  (** Fused shift-and-peel: shifts (0,1,2), peels (0,0,1), one barrier,
      then the tail + peeled iterations. *)

  val fused_steps : ?strip:int -> steps:int -> Lf_parallel.Pool.t -> t -> unit
  (** [steps] fused time steps (a sequential outer loop). *)

  val checksum : t -> float
  val equal : t -> t -> bool
end

(** Jacobi relaxation pair, fused 1-D over rows. *)
module Jacobi_native : sig
  type t = { n : int; a : float array; b : float array }

  val create : int -> t
  val sequential : t -> unit
  val unfused : Lf_parallel.Pool.t -> t -> unit
  val fused : ?strip:int -> Lf_parallel.Pool.t -> t -> unit
  val checksum : t -> float
  val equal : t -> t -> bool
end
