(* Livermore Kernel 18 (2-D explicit hydrodynamics fragment), the LL18
   kernel of the paper (Tables 1, 2; Figures 18, 20, 22, 23, 24, 26).

   Three loop nests over nine n x n arrays.  Arrays are indexed [k][j]
   (the Fortran code is column-major zX(j,k); we keep k as the outer,
   fused, parallel dimension and j as the inner contiguous one).
   Honest dependence analysis of this code yields the paper's Table 2
   amounts for the fused k dimension: shifts (0,1,2), peels (0,0,1). *)

module Ir = Lf_ir.Ir

let arrays = [ "zr"; "zz"; "zu"; "zv"; "za"; "zb"; "zp"; "zq"; "zm" ]

let narrays = List.length arrays

(* Subscript helpers: arrays are [k][j]. *)
let k o = Ir.av ~c:o "k"
let j o = Ir.av ~c:o "j"
let r name ko jo = Ir.Read (Ir.aref name [ k ko; j jo ])
let w name ko jo = Ir.aref name [ k ko; j jo ]

let ( + ) a b = Ir.Bin (Ir.Add, a, b)
let ( - ) a b = Ir.Bin (Ir.Sub, a, b)
let ( * ) a b = Ir.Bin (Ir.Mul, a, b)
let ( / ) a b = Ir.Bin (Ir.Div, a, b)
let c x = Ir.Const x

let s_const = 0.25
let t_const = 0.0025

(* do k ; do j over [1, n-2] (stencils reach one element each way). *)
let levels n =
  [
    { Ir.lvar = "k"; lo = 1; hi = Stdlib.( - ) n 2; parallel = true };
    { Ir.lvar = "j"; lo = 1; hi = Stdlib.( - ) n 2; parallel = true };
  ]

let nest1 n =
  {
    Ir.nid = "L1";
    levels = levels n;
    body =
      [
        {
          Ir.guard = []; lhs = w "za" 0 0;
          rhs =
            (r "zp" 1 (-1) + r "zq" 1 (-1) - r "zp" 0 (-1) - r "zq" 0 (-1))
            * (r "zr" 0 0 + r "zr" 0 (-1))
            / (r "zm" 0 (-1) + r "zm" 1 (-1));
        };
        {
          Ir.guard = []; lhs = w "zb" 0 0;
          rhs =
            (r "zp" 0 (-1) + r "zq" 0 (-1) - r "zp" 0 0 - r "zq" 0 0)
            * (r "zr" 0 0 + r "zr" (-1) 0)
            / (r "zm" 0 0 + r "zm" 0 (-1));
        };
      ];
  }

let nest2 n =
  {
    Ir.nid = "L2";
    levels = levels n;
    body =
      [
        {
          Ir.guard = []; lhs = w "zu" 0 0;
          rhs =
            r "zu" 0 0
            + c s_const
              * (r "za" 0 0 * (r "zz" 0 0 - r "zz" 0 1)
                - r "za" 0 (-1) * (r "zz" 0 0 - r "zz" 0 (-1))
                - r "zb" 0 0 * (r "zz" 0 0 - r "zz" (-1) 0)
                + r "zb" 1 0 * (r "zz" 0 0 - r "zz" 1 0));
        };
        {
          Ir.guard = []; lhs = w "zv" 0 0;
          rhs =
            r "zv" 0 0
            + c s_const
              * (r "za" 0 0 * (r "zr" 0 0 - r "zr" 0 1)
                - r "za" 0 (-1) * (r "zr" 0 0 - r "zr" 0 (-1))
                - r "zb" 0 0 * (r "zr" 0 0 - r "zr" (-1) 0)
                + r "zb" 1 0 * (r "zr" 0 0 - r "zr" 1 0));
        };
      ];
  }

let nest3 n =
  {
    Ir.nid = "L3";
    levels = levels n;
    body =
      [
        { Ir.guard = []; lhs = w "zr" 0 0; rhs = r "zr" 0 0 + (c t_const * r "zu" 0 0) };
        { Ir.guard = []; lhs = w "zz" 0 0; rhs = r "zz" 0 0 + (c t_const * r "zv" 0 0) };
      ];
  }

let program ?(n = 512) () =
  let p =
    {
      Ir.pname = Printf.sprintf "ll18_%d" n;
      decls = List.map (fun a -> { Ir.aname = a; extents = [ n; n ] }) arrays;
      nests = [ nest1 n; nest2 n; nest3 n ];
    }
  in
  Ir.validate p;
  p

(* Expected Table 2 amounts for the fused outer (k) dimension. *)
let expected_shifts = [| 0; 1; 2 |]
let expected_peels = [| 0; 0; 1 |]
