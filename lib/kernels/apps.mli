(** Application models for the paper's three complete applications
    (tomcatv, hydro2d, spem; Table 1 and Figures 21, 25).

    Each model keeps the structure the paper's results depend on: the
    number of fusible parallel loop sequences, their lengths and
    shift/peel amounts (Table 1), the array count and sizes (hence the
    data-size-versus-cache-size behaviour), and a non-fusible remainder
    weighted so the fusible share of the runtime matches the paper's
    account.  See DESIGN.md for the substitution rationale. *)

type t = {
  app_name : string;
  sequences : Lf_ir.Ir.program list;  (** fusible parallel loop sequences *)
  remainder : Lf_ir.Ir.program option;  (** never-fused parallel nests *)
  remainder_reps : int;
      (** times the remainder executes per pass over the sequences *)
}

type read2 = string * int * int
(** (array, i-offset, j-offset) *)

type read3 = string * int * int * int

val seq2d :
  pname:string ->
  rows:int ->
  cols:int ->
  margin:int ->
  decls:string list ->
  stages:(string * read2 list) list list ->
  Lf_ir.Ir.program
(** Generate a 2-D stencil loop sequence: one nest per stage, one
    statement per (output, reads) pair. *)

val seq3d :
  pname:string ->
  d0:int ->
  d1:int ->
  d2:int ->
  margin:int ->
  decls:string list ->
  stages:(string * read3 list) list list ->
  Lf_ir.Ir.program

val tomcatv : ?n:int -> unit -> t
(** Mesh generation: 513×513, 7 arrays, one 3-nest sequence with
    maximum shift/peel 1/1 plus a solver remainder. *)

val hydro2d : ?rows:int -> ?cols:int -> unit -> t
(** Navier-Stokes: 802×320 arrays, 3 transformed sequences (the longest
    is the 10-nest filter), advection remainder. *)

val spem : ?d0:int -> ?d1:int -> ?d2:int -> unit -> t
(** 3-D ocean circulation: 60×65×65 arrays, eleven transformed
    sequences (longest 8), maximum shift 1 / peel 2. *)

val num_sequences : t -> int
val longest_sequence : t -> int
