(** Livermore Kernel 18 (2-D explicit hydrodynamics fragment) — the
    paper's LL18 kernel: three loop nests over nine n×n arrays, built
    from the public Livermore Loops source.  Arrays are indexed [k][j]
    with k the outer, fused, parallel dimension.  Honest dependence
    analysis reproduces the paper's Table 2 amounts: shifts (0,1,2),
    peels (0,0,1). *)

val arrays : string list
(** The nine arrays: zr zz zu zv za zb zp zq zm. *)

val narrays : int

val s_const : float
(** The kernel's [s] scalar. *)

val t_const : float
(** The kernel's [t] scalar. *)

val program : ?n:int -> unit -> Lf_ir.Ir.program
(** The three-nest sequence over n×n arrays (default 512). *)

val expected_shifts : int array
(** Paper Table 2: [|0; 1; 2|]. *)

val expected_peels : int array
(** Paper Table 2: [|0; 0; 1|]. *)
