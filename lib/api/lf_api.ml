(* The blessed single-opens surface.

   Every other library in the repo is a layer with its own internal
   vocabulary (lf_ir, lf_core, lf_machine, ...); user programs kept
   re-deriving the same module aliases at the top of every file.  This
   module is that prelude, maintained in one place: `open Lf_api` (or
   qualify as [Lf_api.Arr] etc.) and the supported entry points are in
   scope under their documented names.

   Nothing here adds behaviour — each binding is a re-export, so types
   are equal (not merely isomorphic) to the originals and values built
   through Lf_api interoperate with code using the layered libraries
   directly. *)

(* compiler layers: programs, dependences, shift-and-peel schedules *)
module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Dep = Lf_dep.Dep
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Codegen = Lf_core.Codegen
module Partition = Lf_core.Partition

(* execution: the simulated machines, the host backend, the autotuner *)
module Machine = Lf_machine.Machine
module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec
module Native = Lf_native.Native
module Tune = Lf_tune.Tune

(* the batch layer and its unified request-options bundle *)
module Batch = Lf_batch.Batch
module Run_opts = Lf_batch.Run_opts
module Store = Lf_batch.Batch.Store

(* the lazy whole-array frontend *)
module Arr = Lf_lazy.Arr
module Node = Lf_lazy.Node
module Ctx = Lf_lazy.Ctx
module Plan = Lf_lazy.Plan
module Eval = Lf_lazy.Eval
module Trace = Lf_lazy.Trace

(* paper kernels, for examples and experiments *)
module Kernels = struct
  module Ll18 = Lf_kernels.Ll18
  module Calc = Lf_kernels.Calc
  module Filter = Lf_kernels.Filter
  module Jacobi = Lf_kernels.Jacobi
  module Apps = Lf_kernels.Apps
end
