(** Event-counter observability for the simulated machine.

    The paper's evaluation reads hardware event counters (KSR2 PMON,
    Convex performance registers); [Obs] is the simulator-side
    equivalent.  A {!sink} collects per-array x per-phase x
    per-processor counters plus a structured event stream, exportable
    as Chrome trace-event JSON and paper-style attribution tables.

    Observation is strictly passive: with no sink attached the
    simulator takes its original path, and with one attached the
    simulated state (stores, cycle counts, cache contents) is
    bit-identical — see the observer-effect property in
    test/test_obs.ml. *)

(** {1 Counters} *)

type counters = {
  mutable c_refs : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_cold : int;
  mutable c_cross : int;
      (** non-cold misses whose line was last evicted by another array *)
  mutable c_self : int;  (** non-cold same-array conflict/capacity misses *)
  mutable c_tlb : int;
}

type total = {
  t_refs : int;
  t_hits : int;
  t_misses : int;
  t_cold : int;
  t_cross : int;
  t_self : int;
  t_tlb : int;
  t_remote : float;
      (** expected remote misses: misses x machine remote fraction *)
}

(** {1 Events} *)

type event =
  | Phase_begin of { step : int; phase : int; label : string; ts : float }
  | Phase_end of { step : int; phase : int; label : string; ts : float }
  | Barrier of { step : int; after_phase : int; ts : float; dur : float }
  | Box of {
      step : int;
      phase : int;
      proc : int;
      nest : int;
      iters : int;
      ts : float;
      dur : float;
    }

(** {1 Sinks} *)

type sink

val create : ?layout:string -> unit -> sink
(** [create ?layout ()] makes an empty sink. [layout] is a free-form
    tag (e.g. ["partitioned"], ["pad:9"]) used to key calibration
    factors; see {!Lf_tune} . *)

val set_layout : sink -> string -> unit

val attach :
  sink ->
  machine:string ->
  nprocs:int ->
  arrays:string array ->
  labels:string array ->
  remote_fraction:float ->
  unit
(** Bind the sink to one simulated run, resetting counters and events.
    Called by [Exec.run] when a [?sink] is supplied. *)

val machine_name : sink -> string
val layout : sink -> string
val nprocs : sink -> int
val nphases : sink -> int
val arrays : sink -> string array
val phase_label : sink -> int -> string

(** {1 Per-processor probes}

    The simulator pushes accesses through a probe so that counter-bank
    lookup is one phase-indexed load, and eviction attribution stays
    private to each processor's cache. *)

type probe

val probe : sink -> proc:int -> probe
val set_phase : probe -> step:int -> phase:int -> unit

val record_access :
  probe -> aid:int -> line:int -> hit:bool -> cold:bool -> evicted:int -> bool
(** [record_access p ~aid ~line ~hit ~cold ~evicted] records one cache
    access by array [aid] to line address [line]. [evicted] is the line
    address displaced by a miss, or [-1]. A non-cold miss is charged as
    cross-array when the evictor of [line] was a different array;
    returns [true] exactly when it was so charged (the run-compressed
    engine captures this to replay the attribution wholesale). *)

val record_hit_run : probe -> aid:int -> n:int -> unit
(** [n] accesses by [aid] that all hit, recorded wholesale; counter
    totals equal [n] hit [record_access] calls. *)

val record_miss_run : probe -> aid:int -> cross:bool -> n:int -> unit
(** [n] verbatim repeats of a non-cold miss by [aid] whose cross/self
    attribution [cross] came from the preceding recorded access.  The
    evictor table is deliberately untouched: a verbatim repeat would
    rewrite each entry with its current value. *)

val record_tlb_miss : probe -> aid:int -> unit

val box_span : probe -> nest:int -> iters:int -> t0:float -> t1:float -> unit
(** Record one executed box.  The event is buffered privately in the
    probe (probes may be driven by concurrent host domains without
    contending on the sink) until {!flush_boxes} merges it. *)

val flush_boxes : sink -> probe array -> unit
(** Merge every probe's buffered box events into the sink's event
    stream, in probe (= simulated processor) order — the deterministic
    phase-end reduction of the per-domain sub-sinks.  Call from the
    coordinating domain once the phase's workers have joined; the
    resulting stream is identical to a serial engine pushing each
    processor's events as it runs. *)

(** {1 Machine-level events} *)

val phase_begin : sink -> step:int -> phase:int -> unit

val phase_end : sink -> step:int -> phase:int -> cycles:float -> unit
(** [cycles] is the phase's max-over-processors time; the sink's global
    clock advances by it. *)

val proc_cycles : sink -> phase:int -> proc:int -> cycles:float -> unit
val barrier : sink -> step:int -> after_phase:int -> cost:float -> unit
val barrier_cycles : sink -> float
val events : sink -> event list
(** Events in chronological order. *)

(** {1 Named runtime counters}

    Thread-safe string-keyed counters for the runtime layer
    (lf_parallel pool regions, barrier waits). *)

val count : sink -> string -> unit
val named_counts : sink -> (string * int) list

(** {1 Aggregation and reporting} *)

val total_of : ?phase:int -> ?proc:int -> ?array_:string -> sink -> total
val totals : sink -> total
val proc_misses : sink -> int array
val phase_proc_cycles : sink -> float array array

val miss_factor : sink -> float
(** Measured miss inflation over compulsory misses
    (misses / max 1 cold) — the quantity the [Lf_tune] analytic tier
    estimates with layout heuristics. *)

type group = By_array | By_phase | By_proc

val breakdown : sink -> by:group -> (string * total) list
val pp_table : by:group -> Format.formatter -> sink -> unit

val trace_json : sink -> string
(** Chrome trace-event JSON (load in chrome://tracing or Perfetto).
    Timestamps are simulated cycles rendered as microseconds. *)
