(* Event-counter observability for the simulated machine.

   The paper's evaluation reads hardware event counters (KSR2 PMON, the
   Convex performance registers); this module is their simulator-side
   equivalent.  A [sink] collects per-array x per-phase x per-processor
   counters (references, hits, miss classes, TLB misses) plus a
   structured event stream (phase begin/end, barriers, per-box spans)
   that exports as Chrome trace-event JSON and as paper-style
   attribution tables.

   Attribution of conflict misses: a non-cold miss on a line is charged
   as a *cross-array* conflict when the access that last evicted that
   line came from a different array, and as a *self/capacity* miss
   otherwise.  Under cache partitioning (paper Fig. 19) concurrently
   live data of distinct arrays occupies disjoint set regions, so
   cross-array conflicts vanish — exactly the mechanism Figures 18/20
   attribute the padding-vs-partitioning gap to.

   The sink is pull-free: the instrumented simulator pushes into it
   through a per-processor [probe]; with no sink attached the simulator
   takes its original uninstrumented path, so observation is
   zero-cost-when-disabled and — by construction and by the qcheck
   property in test/test_obs.ml — free of observer effects. *)

type counters = {
  mutable c_refs : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_cold : int;
  mutable c_cross : int;  (* non-cold miss, line evicted by another array *)
  mutable c_self : int;  (* non-cold miss, same array / capacity *)
  mutable c_tlb : int;
}

let fresh_counters () =
  { c_refs = 0; c_hits = 0; c_misses = 0; c_cold = 0; c_cross = 0;
    c_self = 0; c_tlb = 0 }

type total = {
  t_refs : int;
  t_hits : int;
  t_misses : int;
  t_cold : int;
  t_cross : int;
  t_self : int;
  t_tlb : int;
  t_remote : float;  (* expected remote misses: misses * remote fraction *)
}

type event =
  | Phase_begin of { step : int; phase : int; label : string; ts : float }
  | Phase_end of { step : int; phase : int; label : string; ts : float }
  | Barrier of { step : int; after_phase : int; ts : float; dur : float }
  | Box of {
      step : int;
      phase : int;
      proc : int;
      nest : int;
      iters : int;
      ts : float;
      dur : float;
    }

type sink = {
  mutable s_machine : string;
  mutable s_layout : string;
  mutable s_nprocs : int;
  mutable s_arrays : string array;
  mutable s_labels : string array;
  mutable s_remote_fraction : float;
  mutable s_tab : counters array array array;  (* [phase][proc][array] *)
  mutable s_proc_cycles : float array array;  (* [phase][proc], all steps *)
  mutable s_barrier_cycles : float;
  mutable s_events : event list;  (* newest first *)
  mutable s_clock : float;  (* global simulated time for the trace *)
  named : (string, int) Hashtbl.t;  (* runtime event counters *)
  named_m : Mutex.t;
}

let create ?(layout = "unspecified") () =
  {
    s_machine = "";
    s_layout = layout;
    s_nprocs = 0;
    s_arrays = [||];
    s_labels = [||];
    s_remote_fraction = 0.0;
    s_tab = [||];
    s_proc_cycles = [||];
    s_barrier_cycles = 0.0;
    s_events = [];
    s_clock = 0.0;
    named = Hashtbl.create 8;
    named_m = Mutex.create ();
  }

let set_layout t layout = t.s_layout <- layout

(* One sink records one simulated run: attaching resets all counters
   and the event stream (the layout tag and named runtime counters are
   kept — they belong to the caller, not to a particular run). *)
let attach t ~machine ~nprocs ~arrays ~labels ~remote_fraction =
  let nphases = Array.length labels in
  let narrays = Array.length arrays in
  t.s_machine <- machine;
  t.s_nprocs <- nprocs;
  t.s_arrays <- arrays;
  t.s_labels <- labels;
  t.s_remote_fraction <- remote_fraction;
  t.s_tab <-
    Array.init nphases (fun _ ->
        Array.init nprocs (fun _ -> Array.init narrays (fun _ -> fresh_counters ())));
  t.s_proc_cycles <- Array.make_matrix nphases nprocs 0.0;
  t.s_barrier_cycles <- 0.0;
  t.s_events <- [];
  t.s_clock <- 0.0

let machine_name t = t.s_machine
let layout t = t.s_layout
let nprocs t = t.s_nprocs
let nphases t = Array.length t.s_labels
let arrays t = t.s_arrays

let phase_label t i =
  if i >= 0 && i < Array.length t.s_labels then t.s_labels.(i)
  else Printf.sprintf "phase%d" i

(* ------------------------------------------------------------------ *)
(* Per-processor probes                                                 *)

type probe = {
  p_sink : sink;
  p_proc : int;
  mutable p_phase : int;
  mutable p_step : int;
  mutable p_bank : counters array;  (* tab.(phase).(proc) *)
  (* line address -> array id of the access that evicted it; private
     caches make this per processor *)
  p_evictor : (int, int) Hashtbl.t;
  (* box events of the current phase, newest first.  Buffered privately
     so that probes driven by concurrent host domains never contend on
     the sink; [flush_boxes] merges the buffers in processor order at
     phase end, which reproduces the serial engine's event order
     exactly. *)
  mutable p_boxes : event list;
}

let probe t ~proc =
  if t.s_nprocs = 0 then invalid_arg "Obs.probe: sink not attached";
  {
    p_sink = t;
    p_proc = proc;
    p_phase = 0;
    p_step = 1;
    p_bank = t.s_tab.(0).(proc);
    p_evictor = Hashtbl.create 4096;
    p_boxes = [];
  }

let set_phase p ~step ~phase =
  p.p_step <- step;
  p.p_phase <- phase;
  p.p_bank <- p.p_sink.s_tab.(phase).(p.p_proc)

let record_access p ~aid ~line ~hit ~cold ~evicted =
  let c = p.p_bank.(aid) in
  c.c_refs <- c.c_refs + 1;
  if hit then begin
    c.c_hits <- c.c_hits + 1;
    false
  end
  else begin
    c.c_misses <- c.c_misses + 1;
    let cross =
      if cold then begin
        c.c_cold <- c.c_cold + 1;
        false
      end
      else
        match Hashtbl.find_opt p.p_evictor line with
        | Some e when e <> aid ->
          c.c_cross <- c.c_cross + 1;
          true
        | _ ->
          c.c_self <- c.c_self + 1;
          false
    in
    if evicted >= 0 then Hashtbl.replace p.p_evictor evicted aid;
    cross
  end

(* Run-compressed recorders: the batched engine (Exec Run_compressed
   mode) proves that a group of accesses all hit, or that an iteration's
   per-reference outcomes repeat verbatim, and records them wholesale.
   Counter totals must equal what per-access [record_access] calls would
   have produced — the engine's bit-identity bar extends to sinks. *)

let record_hit_run p ~aid ~n =
  let c = p.p_bank.(aid) in
  c.c_refs <- c.c_refs + n;
  c.c_hits <- c.c_hits + n

(* [n] repeats of one non-cold miss whose cross/self attribution [cross]
   was captured from the preceding simulated access.  The evictor table
   is left untouched: during a verbatim repeat every displaced line is
   re-evicted by the same array, so each update would rewrite an entry
   with the value it already has. *)
let record_miss_run p ~aid ~cross ~n =
  let c = p.p_bank.(aid) in
  c.c_refs <- c.c_refs + n;
  c.c_misses <- c.c_misses + n;
  if cross then c.c_cross <- c.c_cross + n else c.c_self <- c.c_self + n

let record_tlb_miss p ~aid =
  let c = p.p_bank.(aid) in
  c.c_tlb <- c.c_tlb + 1

let box_span p ~nest ~iters ~t0 ~t1 =
  (* [s_clock] is only advanced between phases (by [phase_end] and
     [barrier], on the coordinating domain, with a join in between), so
     reading it here is race-free even when probes run on workers. *)
  p.p_boxes <-
    Box
      {
        step = p.p_step;
        phase = p.p_phase;
        proc = p.p_proc;
        nest;
        iters;
        ts = p.p_sink.s_clock +. t0;
        dur = t1 -. t0;
      }
    :: p.p_boxes

(* Merge the probes' privately buffered box events into the sink's
   stream, in probe (= simulated processor) order: the resulting event
   order is identical to the serial engine pushing each processor's
   boxes as it executes them.  Must be called from the coordinating
   domain, after the workers have joined. *)
let flush_boxes t probes =
  Array.iter
    (fun p ->
      t.s_events <- p.p_boxes @ t.s_events;
      p.p_boxes <- [])
    probes

(* ------------------------------------------------------------------ *)
(* Machine-level events                                                 *)

let phase_begin t ~step ~phase =
  t.s_events <-
    Phase_begin { step; phase; label = phase_label t phase; ts = t.s_clock }
    :: t.s_events

(* [cycles] is the phase's max-over-processors time; the global clock
   advances by it (processors run the phase concurrently). *)
let phase_end t ~step ~phase ~cycles =
  t.s_clock <- t.s_clock +. cycles;
  t.s_events <-
    Phase_end { step; phase; label = phase_label t phase; ts = t.s_clock }
    :: t.s_events

let proc_cycles t ~phase ~proc ~cycles =
  t.s_proc_cycles.(phase).(proc) <- t.s_proc_cycles.(phase).(proc) +. cycles

let barrier t ~step ~after_phase ~cost =
  t.s_events <-
    Barrier { step; after_phase; ts = t.s_clock; dur = cost } :: t.s_events;
  t.s_clock <- t.s_clock +. cost;
  t.s_barrier_cycles <- t.s_barrier_cycles +. cost

let barrier_cycles t = t.s_barrier_cycles
let events t = List.rev t.s_events

(* ------------------------------------------------------------------ *)
(* Named runtime counters (lf_parallel: pool regions, barrier waits)    *)

let count t name =
  Mutex.lock t.named_m;
  Hashtbl.replace t.named name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.named name));
  Mutex.unlock t.named_m

let named_counts t =
  Mutex.lock t.named_m;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.named [] in
  Mutex.unlock t.named_m;
  List.sort compare l

(* ------------------------------------------------------------------ *)
(* Aggregation                                                          *)

let zero_total =
  { t_refs = 0; t_hits = 0; t_misses = 0; t_cold = 0; t_cross = 0;
    t_self = 0; t_tlb = 0; t_remote = 0.0 }

let add_counters rf acc c =
  {
    t_refs = acc.t_refs + c.c_refs;
    t_hits = acc.t_hits + c.c_hits;
    t_misses = acc.t_misses + c.c_misses;
    t_cold = acc.t_cold + c.c_cold;
    t_cross = acc.t_cross + c.c_cross;
    t_self = acc.t_self + c.c_self;
    t_tlb = acc.t_tlb + c.c_tlb;
    t_remote = acc.t_remote +. (float_of_int c.c_misses *. rf);
  }

(* Filtered sum over the counter cube. *)
let total_of ?phase ?proc ?array_ t =
  let rf = t.s_remote_fraction in
  let acc = ref zero_total in
  Array.iteri
    (fun ph per_proc ->
      if phase = None || phase = Some ph then
        Array.iteri
          (fun pr per_array ->
            if proc = None || proc = Some pr then
              Array.iteri
                (fun a c ->
                  if array_ = None || array_ = Some t.s_arrays.(a) then
                    acc := add_counters rf !acc c)
                per_array)
          per_proc)
    t.s_tab;
  !acc

let totals t = total_of t

let proc_misses t =
  Array.init t.s_nprocs (fun pr -> (total_of ~proc:pr t).t_misses)

let phase_proc_cycles t = t.s_proc_cycles

(* Measured miss inflation over compulsory misses, the quantity the
   analytic cost tier guesses with layout heuristics (Cost). *)
let miss_factor t =
  let tt = totals t in
  float_of_int tt.t_misses /. float_of_int (max 1 tt.t_cold)

type group = By_array | By_phase | By_proc

let breakdown t ~by =
  match by with
  | By_array ->
    Array.to_list
      (Array.map (fun a -> (a, total_of ~array_:a t)) t.s_arrays)
  | By_phase ->
    List.init (nphases t) (fun ph ->
        (Printf.sprintf "%d:%s" ph (phase_label t ph), total_of ~phase:ph t))
  | By_proc ->
    List.init t.s_nprocs (fun pr ->
        (Printf.sprintf "proc%d" pr, total_of ~proc:pr t))

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)

let pp_total_row ppf (name, tt) =
  Fmt.pf ppf "%-14s %10d %10d %9d %9d %9d %8d %10.1f@." name tt.t_refs
    tt.t_misses tt.t_cold tt.t_cross tt.t_self tt.t_tlb tt.t_remote

let pp_table ~by ppf t =
  Fmt.pf ppf "%-14s %10s %10s %9s %9s %9s %8s %10s@."
    (match by with
    | By_array -> "array"
    | By_phase -> "phase"
    | By_proc -> "processor")
    "refs" "misses" "cold" "cross" "self" "tlb" "remote";
  List.iter (pp_total_row ppf) (breakdown t ~by);
  pp_total_row ppf ("TOTAL", totals t)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (chrome://tracing, Perfetto)                 *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Timestamps are simulated cycles rendered as microseconds. *)
let trace_json t =
  let b = Buffer.create 4096 in
  let first = ref true in
  let emit fmt =
    if !first then first := false else Buffer.add_string b ",\n  ";
    Printf.ksprintf (Buffer.add_string b) fmt
  in
  Buffer.add_string b "{\"traceEvents\": [\n  ";
  for pr = 0 to t.s_nprocs - 1 do
    emit
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"proc %d\"}}"
      pr pr
  done;
  emit
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"machine\"}}"
    t.s_nprocs;
  (* match Phase_end to the preceding Phase_begin of the same step/phase *)
  let begins = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | Phase_begin { step; phase; ts; _ } ->
        Hashtbl.replace begins (step, phase) ts
      | Phase_end { step; phase; label; ts } ->
        let t0 =
          Option.value ~default:ts (Hashtbl.find_opt begins (step, phase))
        in
        emit
          "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"step\":%d,\"phase\":%d}}"
          (json_escape label) t0 (ts -. t0) t.s_nprocs step phase
      | Barrier { step; after_phase; ts; dur } ->
        emit
          "{\"name\":\"barrier\",\"cat\":\"barrier\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"step\":%d,\"after_phase\":%d}}"
          ts dur t.s_nprocs step after_phase
      | Box { step; phase; proc; nest; iters; ts; dur } ->
        emit
          "{\"name\":\"nest%d\",\"cat\":\"box\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"step\":%d,\"phase\":%d,\"nest\":%d,\"iters\":%d}}"
          nest ts dur proc step phase nest iters)
    (events t);
  Printf.ksprintf (Buffer.add_string b)
    "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"machine\": \"%s\", \"layout\": \"%s\", \"nprocs\": %d}}\n"
    (json_escape t.s_machine) (json_escape t.s_layout) t.s_nprocs;
  Buffer.contents b
