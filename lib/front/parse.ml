(* Textual front end: a small C-like loop language matching the
   pretty-printer's output, so programs round-trip through
   [Ir.program_to_string] and kernels can be written as plain files.

     double a[64], b[64];
     /* nest L1 */
     doall (i = 1; i <= 62; i++) {
       a[i] = b[i] / 4;
     }
     /* nest L2 */
     doall (i = 1; i <= 62; i++) {
       if (2 <= i && i <= 61) b[i] = a[i+1] + a[i-1];
     }

   Subscripts are affine (ints, idents, [k*ident], sums/differences);
   loop headers are [for] (sequential) or [doall] (parallel) with the
   canonical [v = lo; v <= hi; v++] shape. *)

module Ir = Lf_ir.Ir

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | IDENT of string
  | NUM of float
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LE
  | ANDAND
  | PLUSPLUS
  | COMMENT of string
  | EOF

exception Syntax_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let close = ref (!i + 2) in
      while
        !close + 1 < n && not (src.[!close] = '*' && src.[!close + 1] = '/')
      do
        incr close
      done;
      if !close + 1 >= n then error "unterminated comment";
      push (COMMENT (String.trim (String.sub src (!i + 2) (!close - !i - 2))));
      i := !close + 2
    end
    else if is_digit c then begin
      let j = ref !i in
      let is_float = ref false in
      while
        !j < n
        && (is_digit src.[!j] || src.[!j] = '.' || src.[!j] = 'e'
           || src.[!j] = 'E'
           || ((src.[!j] = '+' || src.[!j] = '-')
              && !j > !i
              && (src.[!j - 1] = 'e' || src.[!j - 1] = 'E')))
      do
        if not (is_digit src.[!j]) then is_float := true;
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      if !is_float then push (NUM (float_of_string text))
      else push (INT (int_of_string text));
      i := !j
    end
    else if is_alpha c then begin
      let j = ref !i in
      while !j < n && is_alnum src.[!j] do
        incr j
      done;
      push (IDENT (String.sub src !i (!j - !i)));
      i := !j
    end
    else begin
      let two =
        if !i + 1 < n then String.sub src !i 2 else ""
      in
      (match two with
      | "<=" ->
        push LE;
        i := !i + 2
      | "&&" ->
        push ANDAND;
        i := !i + 2
      | "++" ->
        push PLUSPLUS;
        i := !i + 2
      | _ ->
        (match c with
        | '(' -> push LPAREN
        | ')' -> push RPAREN
        | '[' -> push LBRACKET
        | ']' -> push RBRACKET
        | '{' -> push LBRACE
        | '}' -> push RBRACE
        | ';' -> push SEMI
        | ',' -> push COMMA
        | '=' -> push ASSIGN
        | '+' -> push PLUS
        | '-' -> push MINUS
        | '*' -> push STAR
        | '/' -> push SLASH
        | c -> error "unexpected character %c" c);
        incr i)
    end
  done;
  push EOF;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

type state = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat st t =
  if peek st = t then advance st
  else error "unexpected token (expected a different symbol)"

let ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | _ -> error "expected identifier"

let integer st =
  match peek st with
  | INT k ->
    advance st;
    k
  | MINUS ->
    advance st;
    (match peek st with
    | INT k ->
      advance st;
      -k
    | _ -> error "expected integer")
  | _ -> error "expected integer"

(* affine := term (("+"|"-") term)*;  term := int | ident | int "*" ident *)
let affine st =
  let parse_term sign =
    match peek st with
    | INT k -> (
      advance st;
      match peek st with
      | STAR ->
        advance st;
        let v = ident st in
        `Term (sign * k, v)
      | _ -> `Const (sign * k))
    | IDENT v ->
      advance st;
      `Term (sign, v)
    | _ -> error "expected affine term"
  in
  let terms = ref [] and const = ref 0 in
  let add = function
    | `Const k -> const := !const + k
    | `Term (c, v) -> terms := (c, v) :: !terms
  in
  add (parse_term (match peek st with
    | MINUS ->
      advance st;
      -1
    | _ -> 1));
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | PLUS ->
      advance st;
      add (parse_term 1)
    | MINUS ->
      advance st;
      add (parse_term (-1))
    | _ -> continue_ := false
  done;
  Ir.affine ~const:!const (List.rev !terms)

let subscripts st =
  let out = ref [] in
  while peek st = LBRACKET do
    advance st;
    out := affine st :: !out;
    eat st RBRACKET
  done;
  List.rev !out

(* expr grammar with the usual precedences *)
let rec expr st = additive st

and additive st =
  let lhs = ref (multiplicative st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | PLUS ->
      advance st;
      lhs := Ir.Bin (Ir.Add, !lhs, multiplicative st)
    | MINUS ->
      advance st;
      lhs := Ir.Bin (Ir.Sub, !lhs, multiplicative st)
    | _ -> continue_ := false
  done;
  !lhs

and multiplicative st =
  let lhs = ref (unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | STAR ->
      advance st;
      lhs := Ir.Bin (Ir.Mul, !lhs, unary st)
    | SLASH ->
      advance st;
      lhs := Ir.Bin (Ir.Div, !lhs, unary st)
    | _ -> continue_ := false
  done;
  !lhs

and unary st =
  match peek st with
  | MINUS ->
    advance st;
    Ir.Neg (unary st)
  | _ -> primary st

and primary st =
  match peek st with
  | NUM k ->
    advance st;
    Ir.Const k
  | INT k ->
    advance st;
    Ir.Const (float_of_int k)
  | LPAREN ->
    advance st;
    let e = expr st in
    eat st RPAREN;
    e
  | IDENT _ ->
    let name = ident st in
    let idx = subscripts st in
    if idx = [] then error "scalar variable %s is not supported" name
    else Ir.Read (Ir.aref name idx)
  | _ -> error "expected expression"

(* guard := "if" "(" int "<=" v "&&" v "<=" int ("&&" ...)* ")" *)
let guard st =
  eat st LPAREN;
  let out = ref [] in
  let one () =
    let lo = integer st in
    eat st LE;
    let v = ident st in
    eat st ANDAND;
    let v' = ident st in
    if not (String.equal v v') then error "malformed guard";
    eat st LE;
    let hi = integer st in
    out := (v, lo, hi) :: !out
  in
  one ();
  while peek st = ANDAND do
    advance st;
    one ()
  done;
  eat st RPAREN;
  List.rev !out

let statement st =
  let g =
    match peek st with
    | IDENT "if" ->
      advance st;
      guard st
    | _ -> []
  in
  let name = ident st in
  let idx = subscripts st in
  if idx = [] then error "assignment to scalar %s" name;
  eat st ASSIGN;
  let rhs = expr st in
  eat st SEMI;
  Ir.stmt ~guard:g (Ir.aref name idx) rhs

(* loop := ("for"|"doall") "(" v "=" lo ";" v "<=" hi ";" v "++" ")"
           "{" (loop | stmt+) "}" *)
let rec loop st =
  let parallel =
    match peek st with
    | IDENT "doall" ->
      advance st;
      true
    | IDENT "for" ->
      advance st;
      false
    | _ -> error "expected for or doall"
  in
  eat st LPAREN;
  let v = ident st in
  eat st ASSIGN;
  let lo = integer st in
  eat st SEMI;
  let v2 = ident st in
  if not (String.equal v v2) then error "loop variable mismatch";
  eat st LE;
  let hi = integer st in
  eat st SEMI;
  let v3 = ident st in
  if not (String.equal v v3) then error "loop variable mismatch";
  eat st PLUSPLUS;
  eat st RPAREN;
  eat st LBRACE;
  let level = { Ir.lvar = v; lo; hi; parallel } in
  let result =
    match peek st with
    | IDENT "for" | IDENT "doall" ->
      let levels, body = loop st in
      (level :: levels, body)
    | _ ->
      let body = ref [] in
      while peek st <> RBRACE do
        body := statement st :: !body
      done;
      ([ level ], List.rev !body)
  in
  eat st RBRACE;
  result

let decl_group st =
  (* "double" name dims ("," name dims)* ";" *)
  let out = ref [] in
  let one () =
    let name = ident st in
    let dims = ref [] in
    while peek st = LBRACKET do
      advance st;
      dims := integer st :: !dims;
      eat st RBRACKET
    done;
    if !dims = [] then error "array %s needs dimensions" name;
    out := { Ir.aname = name; extents = List.rev !dims } :: !out
  in
  one ();
  while peek st = COMMA do
    advance st;
    one ()
  done;
  eat st SEMI;
  List.rev !out

let program ?(name = "parsed") src =
  let st = { toks = tokenize src } in
  let decls = ref [] in
  let nests = ref [] in
  let pname = ref name in
  let nest_counter = ref 0 in
  let pending_comment = ref None in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | EOF -> continue_ := false
    | COMMENT c ->
      advance st;
      (* "/* nest L1 */" names the following nest; "/* program x */"
         names the program; other comments are ignored *)
      let words = String.split_on_char ' ' c in
      (match words with
      | [ "nest"; nid ] -> pending_comment := Some nid
      | [ "program"; pn ] -> pname := pn
      | _ -> ())
    | IDENT "double" ->
      advance st;
      decls := !decls @ decl_group st
    | IDENT "for" | IDENT "doall" ->
      incr nest_counter;
      let nid =
        match !pending_comment with
        | Some nid ->
          pending_comment := None;
          nid
        | None -> Printf.sprintf "L%d" !nest_counter
      in
      let levels, body = loop st in
      nests := { Ir.nid; levels; body } :: !nests
    | _ -> error "expected declaration or loop nest"
  done;
  let p = { Ir.pname = !pname; decls = !decls; nests = List.rev !nests } in
  Ir.validate p;
  p

let program_of_file ?name path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let name =
    match name with Some n -> n | None -> Filename.remove_extension
                                            (Filename.basename path)
  in
  program ~name src
