(** Parser for the [.lft] transformation-script language.

    One step per line; [#] starts a comment; blank lines are ignored.
    Steps address nests by name:

    {v
    # fuse the paper's Figure 9 chain with shift-and-peel
    shift_peel L1 L2 L3 into F
    strip_mine 16
    partition
    v}

    Grammar (one line each):
    - [fuse ID ID... [into ID]]
    - [fission ID]
    - [shift_peel ID ID... [into ID]]
    - [strip_mine INT]
    - [interchange ID]
    - [partition]
    - [wavefront [INT]]
    - [align]

    {!Lf_script.Script.script_to_string} prints scripts back into this
    syntax; print -> parse -> print is a fixpoint. *)

exception Error of { line : int; col : int; msg : string }
(** Parse error at a 1-based line/column. *)

val error_to_string : file:string -> exn -> string option
(** Render an {!Error} as ["file:line:col: msg"]; [None] for other
    exceptions. *)

val parse : string -> Lf_script.Script.step list
(** Parse script source text; raises {!Error}. *)

val parse_file : string -> Lf_script.Script.step list
(** Raises {!Error} or [Sys_error]. *)
