(* Parser for the .lft transformation-script language: one step per
   line, '#' comments, nests addressed by name.  Deliberately tiny —
   the token stream per line is short enough that a hand-rolled
   splitter with column tracking beats a lexer dependency, and every
   error carries an exact 1-based line/column (asserted by the
   test-suite's error-position property). *)

module Script = Lf_script.Script

exception Error of { line : int; col : int; msg : string }

let error ~line ~col fmt =
  Printf.ksprintf (fun msg -> raise (Error { line; col; msg })) fmt

let error_to_string ~file = function
  | Error { line; col; msg } ->
    Some (Printf.sprintf "%s:%d:%d: %s" file line col msg)
  | _ -> None

type tok = { text : string; col : int (* 1-based *) }

(* Tokenise one line: strip the '#' comment, split on blanks, record
   each token's starting column. *)
let tokens line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && (line.[!i] = ' ' || line.[!i] = '\t' || line.[!i] = '\r') do
      incr i
    done;
    if !i < n then begin
      let start = !i in
      while
        !i < n && not (line.[!i] = ' ' || line.[!i] = '\t' || line.[!i] = '\r')
      do
        incr i
      done;
      out := { text = String.sub line start (!i - start); col = start + 1 } :: !out
    end
  done;
  List.rev !out

let is_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let eol_col line = String.length line + 1

(* [ID ID... [into ID]] — target lists for fuse / shift_peel. *)
let parse_targets ~lineno ~src_line what toks =
  let rec go acc = function
    | [] -> (List.rev acc, None)
    | [ { text = "into"; _ } ] ->
      error ~line:lineno ~col:(eol_col src_line)
        "expected a name after 'into'"
    | { text = "into"; _ } :: [ t ] when is_ident t.text ->
      (List.rev acc, Some t.text)
    | { text = "into"; _ } :: t :: _ when not (is_ident t.text) ->
      error ~line:lineno ~col:t.col "expected a name after 'into', got '%s'"
        t.text
    | { text = "into"; _ } :: _ :: t :: _ ->
      error ~line:lineno ~col:t.col "trailing tokens after 'into NAME'"
    | t :: rest ->
      if is_ident t.text then go (t.text :: acc) rest
      else
        error ~line:lineno ~col:t.col "expected a loop name, got '%s'" t.text
  in
  match go [] toks with
  | [], _ ->
    error ~line:lineno ~col:(eol_col src_line) "%s needs at least one target"
      what
  | targets, into -> (targets, into)

let parse_one_ident ~lineno ~src_line what = function
  | t :: _ when not (is_ident t.text) ->
    error ~line:lineno ~col:t.col "expected a loop name, got '%s'" t.text
  | [ t ] -> t.text
  | _ :: t :: _ -> error ~line:lineno ~col:t.col "trailing tokens after %s" what
  | [] ->
    error ~line:lineno ~col:(eol_col src_line) "%s needs a target loop name"
      what

let parse_int ~lineno t =
  match int_of_string_opt t.text with
  | Some v -> v
  | None ->
    error ~line:lineno ~col:t.col "expected an integer, got '%s'" t.text

let no_args ~lineno what = function
  | [] -> ()
  | t :: _ ->
    error ~line:lineno ~col:t.col "unexpected token '%s' after %s" t.text what

let parse_line ~lineno src_line =
  match tokens src_line with
  | [] -> []
  | head :: rest -> (
    match head.text with
    | "fuse" ->
      let targets, into = parse_targets ~lineno ~src_line "fuse" rest in
      [ Script.Fuse { targets; into } ]
    | "fission" ->
      [ Script.Fission { target = parse_one_ident ~lineno ~src_line "fission" rest } ]
    | "shift_peel" ->
      let targets, into = parse_targets ~lineno ~src_line "shift_peel" rest in
      [ Script.Shift_peel { targets; into } ]
    | "strip_mine" -> (
      match rest with
      | [ t ] -> [ Script.Strip_mine { strip = parse_int ~lineno t } ]
      | [] ->
        error ~line:lineno ~col:(eol_col src_line)
          "strip_mine needs an integer factor"
      | _ :: t :: _ ->
        error ~line:lineno ~col:t.col "trailing tokens after strip_mine INT")
    | "interchange" ->
      [
        Script.Interchange
          { target = parse_one_ident ~lineno ~src_line "interchange" rest };
      ]
    | "partition" ->
      no_args ~lineno "partition" rest;
      [ Script.Partition ]
    | "wavefront" -> (
      match rest with
      | [] -> [ Script.Wavefront { tile = None } ]
      | [ t ] -> [ Script.Wavefront { tile = Some (parse_int ~lineno t) } ]
      | _ :: t :: _ ->
        error ~line:lineno ~col:t.col "trailing tokens after wavefront [INT]")
    | "align" ->
      no_args ~lineno "align" rest;
      [ Script.Align ]
    | other ->
      error ~line:lineno ~col:head.col
        "unknown step '%s' (expected fuse, fission, shift_peel, strip_mine, \
         interchange, partition, wavefront or align)"
        other)

let parse src =
  let lines = String.split_on_char '\n' src in
  List.concat (List.mapi (fun i l -> parse_line ~lineno:(i + 1) l) lines)

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s
