(** Textual front end: a small C-like loop language matching
    {!Lf_ir.Ir.pp_program}'s output, so programs round-trip through the
    pretty-printer and kernels can be written as plain files.

    {[
      double a[64], b[64];
      /* nest L1 */
      doall (i = 1; i <= 62; i++) {
        a[i] = b[i] / 4;
      }
    ]}

    [doall] marks a parallel level, [for] a sequential one; subscripts
    are affine; a preceding [/* nest NAME */] comment names a nest and
    [/* program NAME */] names the program. *)

exception Syntax_error of string

val program : ?name:string -> string -> Lf_ir.Ir.program
(** Parse a program from source text; raises {!Syntax_error} or
    {!Lf_ir.Ir.Invalid}. *)

val program_of_file : ?name:string -> string -> Lf_ir.Ir.program
