(** Affine loop-nest intermediate representation.

    Programs are sequences of perfectly nested loops over
    multi-dimensional arrays (the paper's Figure 2 model): the outermost
    [k] levels of each nest may be parallel (doall), and fusion is
    considered for those levels.  Subscripts are affine in the loop
    index variables. *)

type var = string
(** Loop index variable name. *)

type affine = { terms : (int * var) list; const : int }
(** Affine expression [sum c_i * v_i + const]. *)

val affine : ?const:int -> (int * var) list -> affine
(** Build an affine expression; zero-coefficient terms are dropped. *)

val av : ?c:int -> var -> affine
(** [av ~c x] is the subscript [x + c]. *)

val ac : int -> affine
(** Constant subscript. *)

val affine_add : affine -> affine -> affine
val affine_shift : affine -> int -> affine

val affine_eval : affine -> (var -> int) -> int

val affine_vars : affine -> var list

val unit_var : affine -> (var * int) option
(** [Some (x, c)] when the expression is exactly [x + c] — the form the
    exact uniform-distance test requires. *)

val affine_is_const : affine -> bool
val affine_equal : affine -> affine -> bool

type aref = { array : string; index : affine list }
(** Array reference: one affine subscript per array dimension
    (row-major storage). *)

val aref : string -> affine list -> aref

type binop = Add | Sub | Mul | Div

type expr =
  | Const of float
  | Read of aref
  | Neg of expr
  | Bin of binop * expr * expr

type guard = (var * int * int) list
(** Conjunction of inclusive range constraints on loop variables.
    Guards arise from the direct fusion method (Figure 11(a)) and from
    replicated statements in the alignment+replication baseline. *)

type stmt = { lhs : aref; rhs : expr; guard : guard }

val stmt : ?guard:guard -> aref -> expr -> stmt

val guard_holds : guard -> (var -> int) -> bool

type level = { lvar : var; lo : int; hi : int; parallel : bool }
(** One loop level with inclusive bounds; [parallel] marks a doall. *)

type nest = { nid : string; levels : level list; body : stmt list }
(** A perfect loop nest. *)

type decl = { aname : string; extents : int list }

type program = { pname : string; decls : decl list; nests : nest list }
(** A parallel loop sequence: the unit the transformation operates on. *)

(** Expression-building helpers. *)
module Dsl : sig
  val ( %. ) : string -> affine list -> expr
  val f : float -> expr
  val ( +: ) : expr -> expr -> expr
  val ( -: ) : expr -> expr -> expr
  val ( *: ) : expr -> expr -> expr
  val ( /: ) : expr -> expr -> expr
  val neg : expr -> expr
  val ( <-: ) : string * affine list -> expr -> stmt
  val at : string -> affine list -> string * affine list
  val i0 : var -> affine
  val i : var -> int -> affine
end

val expr_reads : expr -> aref list
val stmt_reads : stmt -> aref list
val stmt_writes : stmt -> aref list
val nest_reads : nest -> aref list
val nest_writes : nest -> aref list
val nest_refs : nest -> aref list
val nest_vars : nest -> var list
val nest_arrays : nest -> string list
val program_arrays : program -> string list

val rename_affine : (var -> var) -> affine -> affine
val rename_aref : (var -> var) -> aref -> aref
val rename_expr : (var -> var) -> expr -> expr

val rename_stmt : (var -> var) -> stmt -> stmt
(** Apply a simultaneous loop-variable renaming to a statement
    (subscripts and guard); the mapping is applied in one pass, so
    variable swaps are safe. *)

val find_decl : program -> string -> decl
val find_nest : program -> string -> nest
val num_elements : decl -> int
val nest_iterations : nest -> int

exception Invalid of string

val validate : program -> unit
(** Check structural well-formedness (declared arrays, matching ranks,
    bound variables, non-empty ranges); raises {!Invalid}. *)

val pp_affine : Format.formatter -> affine -> unit
val pp_aref : Format.formatter -> aref -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_nest : Format.formatter -> nest -> unit
val pp_program : Format.formatter -> program -> unit
val program_to_string : program -> string
val nest_to_string : nest -> string

val version : string
(** Fingerprint of this module's observable behaviour (program
    semantics + canonical printer), folded into
    {!Lf_machine.Sim.digest}.  Bump on any change that can alter a
    simulated observable; must contain no spaces. *)
