(* Reference serial interpreter for the IR.

   This is the semantic ground truth: every transformed schedule must
   produce bit-identical array contents (each element is computed by the
   same statement instance reading the same values, so no floating-point
   reassociation is involved). *)

type store = {
  arrays : (string, float array) Hashtbl.t;
  extents : (string, int array) Hashtbl.t;
}

(* Deterministic pseudo-random initial value for array [name] at flat
   index [k]; keeps runs reproducible without external inputs.  A
   double-underscore suffix ("za__copy", "zb__rep0") marks an alias
   array introduced by a transformation: it receives the base array's
   values so that boundary reads of never-written elements agree with
   the original program. *)
let default_init name k =
  let base =
    match
      let rec find i =
        if i + 1 >= String.length name then None
        else if name.[i] = '_' && name.[i + 1] = '_' then Some i
        else find (i + 1)
      in
      find 0
    with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let h = Hashtbl.hash (base, k) land 0xFFFFF in
  1.0 +. (float_of_int h /. 1048576.0)

let create ?(init = default_init) (p : Ir.program) =
  let arrays = Hashtbl.create 16 and extents = Hashtbl.create 16 in
  List.iter
    (fun (d : Ir.decl) ->
      let n = Ir.num_elements d in
      let a = Array.init n (init d.aname) in
      Hashtbl.replace arrays d.aname a;
      Hashtbl.replace extents d.aname (Array.of_list d.extents))
    p.decls;
  { arrays; extents }

let find_array st name =
  match Hashtbl.find_opt st.arrays name with
  | Some a -> a
  | None -> invalid_arg ("Interp.find_array: unknown array " ^ name)

let find_extents st name =
  match Hashtbl.find_opt st.extents name with
  | Some e -> e
  | None -> invalid_arg ("Interp.find_extents: unknown array " ^ name)

exception Out_of_bounds of string

(* Row-major flat index with bounds checking. *)
let flat_index st (r : Ir.aref) idx =
  let ext = find_extents st r.array in
  let n = Array.length ext in
  let k = ref 0 in
  List.iteri
    (fun d v ->
      if d >= n then raise (Out_of_bounds r.array);
      if v < 0 || v >= ext.(d) then
        raise
          (Out_of_bounds
             (Printf.sprintf "%s dim %d index %d not in [0,%d)" r.array d v
                ext.(d)));
      k := (!k * ext.(d)) + v)
    idx;
  !k

let eval_ref st env (r : Ir.aref) =
  let idx = List.map (fun a -> Ir.affine_eval a env) r.index in
  (find_array st r.array, flat_index st r idx)

let rec eval_expr st env (e : Ir.expr) =
  match e with
  | Const k -> k
  | Read r ->
    let a, k = eval_ref st env r in
    a.(k)
  | Neg e -> -.eval_expr st env e
  | Bin (op, x, y) -> (
    let a = eval_expr st env x and b = eval_expr st env y in
    match op with
    | Add -> a +. b
    | Sub -> a -. b
    | Mul -> a *. b
    | Div -> a /. b)

let exec_stmt st env (s : Ir.stmt) =
  if Ir.guard_holds s.guard env then begin
    let v = eval_expr st env s.rhs in
    let a, k = eval_ref st env s.lhs in
    a.(k) <- v
  end

(* Execute one full iteration (all statements) of [nest] at the point
   given by [env]. *)
let exec_iteration st (nest : Ir.nest) env =
  List.iter (exec_stmt st env) nest.body

let run_nest st (n : Ir.nest) =
  let vars = Array.of_list (Ir.nest_vars n) in
  let vals = Array.make (Array.length vars) 0 in
  let env x =
    let rec find i =
      if i >= Array.length vars then
        invalid_arg ("Interp.run_nest: unbound variable " ^ x)
      else if String.equal vars.(i) x then vals.(i)
      else find (i + 1)
    in
    find 0
  in
  let levels = Array.of_list n.levels in
  let rec go d =
    if d = Array.length levels then List.iter (exec_stmt st env) n.body
    else
      let l = levels.(d) in
      for v = l.lo to l.hi do
        vals.(d) <- v;
        go (d + 1)
      done
  in
  go 0

let run ?init ?(steps = 1) (p : Ir.program) =
  let st = create ?init p in
  for _step = 1 to steps do
    List.iter (run_nest st) p.nests
  done;
  st

(* Bit-exact store comparison; returns the first mismatch if any. *)
let diff a b =
  let mismatch = ref None in
  Hashtbl.iter
    (fun name arr ->
      if !mismatch = None then
        match Hashtbl.find_opt b.arrays name with
        | None -> mismatch := Some (name, -1, nan, nan)
        | Some arr' ->
          if Array.length arr <> Array.length arr' then
            mismatch := Some (name, -1, nan, nan)
          else
            let n = Array.length arr in
            let k = ref 0 in
            while !mismatch = None && !k < n do
              if not (Float.equal arr.(!k) arr'.(!k)) then
                mismatch := Some (name, !k, arr.(!k), arr'.(!k));
              incr k
            done)
    a.arrays;
  !mismatch

let equal a b = diff a b = None

(* Simple checksum used by benches to keep results observable. *)
let checksum st =
  let acc = ref 0.0 in
  let names =
    Hashtbl.fold (fun k _ l -> k :: l) st.arrays []
    |> List.sort String.compare
  in
  List.iter
    (fun name ->
      let a = find_array st name in
      Array.iter (fun v -> acc := !acc +. v) a)
    names;
  !acc
