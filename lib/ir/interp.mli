(** Reference serial interpreter: the semantic ground truth every
    transformed schedule is verified against (bit-exact — element
    values are computed by the same statement instances in both). *)

type store = {
  arrays : (string, float array) Hashtbl.t;
  extents : (string, int array) Hashtbl.t;
}

val default_init : string -> int -> float
(** Deterministic pseudo-random initial value for array [name] at flat
    index [k].  A double-underscore suffix (["za__copy"],
    ["zb__rep0_n2"]) marks an alias array introduced by a
    transformation: it receives the base array's values, so boundary
    reads of never-written elements agree with the original program. *)

val create : ?init:(string -> int -> float) -> Ir.program -> store
(** Allocate and initialise all declared arrays. *)

val find_array : store -> string -> float array
val find_extents : store -> string -> int array

exception Out_of_bounds of string

val eval_expr : store -> (Ir.var -> int) -> Ir.expr -> float
val exec_stmt : store -> (Ir.var -> int) -> Ir.stmt -> unit
val exec_iteration : store -> Ir.nest -> (Ir.var -> int) -> unit

val run_nest : store -> Ir.nest -> unit
(** Execute one nest serially, loops in declaration order. *)

val run : ?init:(string -> int -> float) -> ?steps:int -> Ir.program -> store
(** Execute the whole sequence serially, [steps] times (a sequential
    time-step loop); the reference semantics. *)

val diff : store -> store -> (string * int * float * float) option
(** First bit-level mismatch [(array, flat index, expected, got)]. *)

val equal : store -> store -> bool

val checksum : store -> float
(** Order-stable sum over all arrays, for keeping benchmark results
    observable. *)
