(* Affine loop-nest intermediate representation.

   Programs are sequences of perfectly nested loops ("nests") over
   multi-dimensional arrays, the model of Figure 2 of the paper: the
   outer [k] loops of each nest may be parallel (doall) and fusion is
   considered for those outer dimensions.  Subscripts are affine in the
   loop index variables; the dependence machinery (lf_dep) computes
   exact uniform distances for the common [i + c] form. *)

type var = string

type affine = { terms : (int * var) list; const : int }

let affine ?(const = 0) terms =
  let keep (c, _) = c <> 0 in
  { terms = List.filter keep terms; const }

let av ?(c = 0) x = affine ~const:c [ (1, x) ]
let ac k = affine ~const:k []

let affine_add a b =
  let rec merge acc = function
    | [] -> List.rev acc
    | (c, x) :: rest ->
      let same (_, y) = String.equal x y in
      let c' = c + List.fold_left (fun s (d, _) -> s + d) 0 (List.filter same rest) in
      let rest = List.filter (fun t -> not (same t)) rest in
      if c' = 0 then merge acc rest else merge ((c', x) :: acc) rest
  in
  { terms = merge [] (a.terms @ b.terms); const = a.const + b.const }

let affine_shift a k = { a with const = a.const + k }

let affine_eval a env =
  List.fold_left (fun s (c, x) -> s + (c * env x)) a.const a.terms

let affine_vars a = List.map snd a.terms

(* [unit_var a] is [Some (x, c)] when [a] is exactly [x + c]. *)
let unit_var a =
  match a.terms with [ (1, x) ] -> Some (x, a.const) | _ -> None

let affine_is_const a = a.terms = []

let affine_equal a b =
  let norm a = List.sort compare a.terms in
  a.const = b.const && norm a = norm b

type aref = { array : string; index : affine list }

let aref array index = { array; index }

type binop = Add | Sub | Mul | Div

type expr =
  | Const of float
  | Read of aref
  | Neg of expr
  | Bin of binop * expr * expr

(* A statement optionally carries a guard: a conjunction of inclusive
   range constraints on loop variables.  Guards arise from the direct
   fusion method (Figure 11(a)) and from replicated statements in the
   alignment+replication baseline, which must only execute where their
   source statement's iteration space did. *)
type guard = (var * int * int) list

type stmt = { lhs : aref; rhs : expr; guard : guard }

let stmt ?(guard = []) lhs rhs = { lhs; rhs; guard }

let guard_holds g env =
  List.for_all
    (fun (v, lo, hi) ->
      let x = env v in
      x >= lo && x <= hi)
    g

type level = { lvar : var; lo : int; hi : int; parallel : bool }

type nest = { nid : string; levels : level list; body : stmt list }

type decl = { aname : string; extents : int list }

type program = { pname : string; decls : decl list; nests : nest list }

(* ------------------------------------------------------------------ *)
(* Expression DSL                                                      *)

module Dsl = struct
  let ( %. ) array index = Read (aref array index)
  let f k = Const k
  let ( +: ) a b = Bin (Add, a, b)
  let ( -: ) a b = Bin (Sub, a, b)
  let ( *: ) a b = Bin (Mul, a, b)
  let ( /: ) a b = Bin (Div, a, b)
  let neg a = Neg a
  let ( <-: ) lhs rhs =
    { lhs = { array = fst lhs; index = snd lhs }; rhs; guard = [] }
  let at array index = (array, index)
  let i0 x = av x
  let i x c = av ~c x
end

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let rec expr_reads = function
  | Const _ -> []
  | Read r -> [ r ]
  | Neg e -> expr_reads e
  | Bin (_, a, b) -> expr_reads a @ expr_reads b

let stmt_reads s = expr_reads s.rhs
let stmt_writes s = [ s.lhs ]

let nest_reads n = List.concat_map stmt_reads n.body
let nest_writes n = List.concat_map stmt_writes n.body
let nest_refs n = nest_writes n @ nest_reads n

let nest_vars n = List.map (fun l -> l.lvar) n.levels

let nest_arrays n =
  let names = List.map (fun r -> r.array) (nest_refs n) in
  List.sort_uniq String.compare names

let program_arrays p =
  List.sort_uniq String.compare (List.concat_map nest_arrays p.nests)

(* Simultaneous loop-variable renaming, used by transformations that
   merge nests whose levels carry different variable names (lib/script
   fusion renames every member nest onto the first nest's variables).
   The mapping is applied in one pass, so swaps are safe. *)
let rename_affine f a = { a with terms = List.map (fun (c, x) -> (c, f x)) a.terms }
let rename_aref f r = { r with index = List.map (rename_affine f) r.index }

let rec rename_expr f = function
  | Const k -> Const k
  | Read r -> Read (rename_aref f r)
  | Neg e -> Neg (rename_expr f e)
  | Bin (op, a, b) -> Bin (op, rename_expr f a, rename_expr f b)

let rename_stmt f s =
  {
    lhs = rename_aref f s.lhs;
    rhs = rename_expr f s.rhs;
    guard = List.map (fun (v, lo, hi) -> (f v, lo, hi)) s.guard;
  }

let find_decl p name =
  match List.find_opt (fun d -> String.equal d.aname name) p.decls with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Ir.find_decl: unknown array %s" name)

let find_nest p nid =
  match List.find_opt (fun n -> String.equal n.nid nid) p.nests with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Ir.find_nest: unknown nest %s" nid)

let num_elements d = List.fold_left ( * ) 1 d.extents

(* Number of iterations of a nest (product of level trip counts). *)
let nest_iterations n =
  List.fold_left (fun acc l -> acc * max 0 (l.hi - l.lo + 1)) 1 n.levels

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let validate_ref p vars r =
  let d = try find_decl p r.array with Invalid_argument m -> invalid "%s" m in
  if List.length r.index <> List.length d.extents then
    invalid "array %s: %d subscripts for %d dimensions" r.array
      (List.length r.index) (List.length d.extents);
  let check_var x =
    if not (List.mem x vars) then
      invalid "array %s: subscript uses unbound variable %s" r.array x
  in
  List.iter (fun a -> List.iter check_var (affine_vars a)) r.index

let validate_nest p n =
  if n.levels = [] then invalid "nest %s: empty loop nest" n.nid;
  if n.body = [] then invalid "nest %s: empty body" n.nid;
  let vars = nest_vars n in
  let sorted = List.sort_uniq String.compare vars in
  if List.length sorted <> List.length vars then
    invalid "nest %s: duplicate loop variables" n.nid;
  List.iter
    (fun l ->
      if l.lo > l.hi then invalid "nest %s: empty range for %s" n.nid l.lvar)
    n.levels;
  List.iter
    (fun s ->
      validate_ref p vars s.lhs;
      List.iter (validate_ref p vars) (stmt_reads s);
      List.iter
        (fun (v, _, _) ->
          if not (List.mem v vars) then
            invalid "nest %s: guard uses unbound variable %s" n.nid v)
        s.guard)
    n.body

let validate p =
  let names = List.map (fun d -> d.aname) p.decls in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid "duplicate array declarations";
  List.iter
    (fun d ->
      if d.extents = [] || List.exists (fun e -> e <= 0) d.extents then
        invalid "array %s: bad extents" d.aname)
    p.decls;
  let nids = List.map (fun n -> n.nid) p.nests in
  if List.length (List.sort_uniq String.compare nids) <> List.length nids then
    invalid "duplicate nest ids";
  List.iter (validate_nest p) p.nests

(* ------------------------------------------------------------------ *)
(* Pretty-printing (C-like)                                            *)

let pp_affine ppf a =
  let pp_term first ppf (c, x) =
    if c = 1 then Fmt.pf ppf (if first then "%s" else "+%s") x
    else if c = -1 then Fmt.pf ppf "-%s" x
    else if c >= 0 && not first then Fmt.pf ppf "+%d*%s" c x
    else Fmt.pf ppf "%d*%s" c x
  in
  match a.terms with
  | [] -> Fmt.int ppf a.const
  | t :: ts ->
    pp_term true ppf t;
    List.iter (pp_term false ppf) ts;
    if a.const > 0 then Fmt.pf ppf "+%d" a.const
    else if a.const < 0 then Fmt.pf ppf "%d" a.const

let pp_aref ppf r =
  Fmt.pf ppf "%s%a" r.array
    (Fmt.list ~sep:Fmt.nop (fun ppf a -> Fmt.pf ppf "[%a]" pp_affine a))
    r.index

let binop_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let prec = function Add | Sub -> 1 | Mul | Div -> 2

let rec pp_expr_prec p ppf = function
  | Const k -> Fmt.pf ppf "%g" k
  | Read r -> pp_aref ppf r
  | Neg e -> Fmt.pf ppf "-%a" (pp_expr_prec 3) e
  | Bin (op, a, b) ->
    let q = prec op in
    let body ppf () =
      Fmt.pf ppf "%a %s %a" (pp_expr_prec q) a (binop_str op)
        (pp_expr_prec (q + 1)) b
    in
    if q < p then Fmt.pf ppf "(%a)" body () else body ppf ()

let pp_expr = pp_expr_prec 0

let pp_guard ppf g =
  let pp_one ppf (v, lo, hi) = Fmt.pf ppf "%d <= %s && %s <= %d" lo v v hi in
  Fmt.pf ppf "if (%a) " (Fmt.list ~sep:(Fmt.any " && ") pp_one) g

let pp_stmt ppf s =
  (match s.guard with [] -> () | g -> pp_guard ppf g);
  Fmt.pf ppf "%a = %a;" pp_aref s.lhs pp_expr s.rhs

let pp_nest ppf n =
  let rec go indent = function
    | [] ->
      List.iter (fun s -> Fmt.pf ppf "%s%a@." indent pp_stmt s) n.body
    | l :: rest ->
      Fmt.pf ppf "%s%s (%s = %d; %s <= %d; %s++) {@." indent
        (if l.parallel then "doall" else "for")
        l.lvar l.lo l.lvar l.hi l.lvar;
      go (indent ^ "  ") rest;
      Fmt.pf ppf "%s}@." indent
  in
  Fmt.pf ppf "/* nest %s */@." n.nid;
  go "" n.levels

let pp_program ppf p =
  Fmt.pf ppf "/* program %s */@." p.pname;
  List.iter
    (fun d ->
      Fmt.pf ppf "double %s%a;@." d.aname
        (Fmt.list ~sep:Fmt.nop (fun ppf e -> Fmt.pf ppf "[%d]" e))
        d.extents)
    p.decls;
  Fmt.pf ppf "@.";
  List.iter (fun n -> pp_nest ppf n) p.nests

let program_to_string p = Fmt.str "%a" pp_program p
let nest_to_string n = Fmt.str "%a" pp_nest n

(* Observable-behaviour fingerprint of this module: the program
   semantics and the canonical printer above.  Bump on any change that
   alters what a printed program means or how it prints — Sim.digest
   folds this into every cache key, so persisted results computed under
   the old behaviour read as misses.  No spaces (the store's entry
   header is line/space-delimited). *)
let version = "lf-ir-1"
