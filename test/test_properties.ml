(* Property-based tests (QCheck): the shift-and-peel machinery must be
   semantics-preserving and exactly-covering on randomly generated
   uniform stencil chains, and the layout/partitioning invariants must
   hold for random array sets. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Derive = Lf_core.Derive
module Partition = Lf_core.Partition

open QCheck

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

(* A random chain program: 2-5 nests, each reading the previous array
   at 1-3 offsets in [-2, 2]. *)
let gen_chain =
  let open Gen in
  let* nnests = int_range 2 5 in
  let* offsets =
    list_repeat nnests (list_size (int_range 1 3) (int_range (-2) 2))
  in
  let* hi = int_range 24 48 in
  return (Tutil.chain_program ~lo:3 ~hi offsets, offsets)

let arb_chain =
  make
    ~print:(fun (p, offs) ->
      Printf.sprintf "%s offsets=%s" p.Ir.pname
        (String.concat ";"
           (List.map
              (fun l -> String.concat "," (List.map string_of_int l))
              offs)))
    gen_chain

let arb_exec_config =
  make
    ~print:(fun (np, strip, order) ->
      Printf.sprintf "nprocs=%d strip=%d order=%d" np strip order)
    Gen.(triple (int_range 1 5) (int_range 1 10) (int_range 0 2))

let order_of = function
  | 0 -> Schedule.Natural
  | 1 -> Schedule.Reversed
  | _ -> Schedule.Interleaved

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

(* Fused shift-and-peel execution is semantics-preserving for any
   processor count, strip size and execution order (when the block-size
   threshold admits the configuration). *)
let prop_fused_equivalence =
  Test.make ~count:120 ~name:"fused schedule preserves semantics"
    (pair arb_chain arb_exec_config)
    (fun ((p, _), (nprocs, strip, order)) ->
      match Schedule.fused ~nprocs ~strip p with
      | exception Schedule.Illegal _ -> true (* threshold rejects *)
      | exception Invalid_argument _ -> true (* more procs than iters *)
      | sched ->
        let st = Schedule.execute ~order:(order_of order) sched in
        Interp.equal (Interp.run p) st)

(* Fused+peeled boxes tile each nest's iteration space exactly. *)
let prop_exact_coverage =
  Test.make ~count:80 ~name:"fused schedule covers exactly once"
    (pair arb_chain (int_range 1 5))
    (fun ((p, _), nprocs) ->
      match Schedule.fused ~nprocs ~strip:4 p with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true
      | sched ->
        List.for_all
          (fun (k, n) ->
            let pts = Schedule.coverage sched ~nest:k in
            let tbl = Hashtbl.create 64 in
            List.iter
              (fun (_, _, pt) ->
                Hashtbl.replace tbl pt (1 + Option.value ~default:0
                                          (Hashtbl.find_opt tbl pt)))
              pts;
            Hashtbl.fold (fun _ c ok -> ok && c = 1) tbl true
            && Hashtbl.length tbl = Ir.nest_iterations n)
          (List.mapi (fun k n -> (k, n)) p.Ir.nests))

(* Derived shifts and peels are non-negative and monotone along the
   chain (each nest depends only on its predecessor). *)
let prop_derive_monotone =
  Test.make ~count:200 ~name:"shifts/peels non-negative and monotone"
    arb_chain
    (fun (p, _) ->
      let d = Derive.of_program ~depth:1 p in
      let s = Array.map (fun r -> r.(0)) d.Derive.shift in
      let q = Array.map (fun r -> r.(0)) d.Derive.peel in
      let ok = ref true in
      Array.iteri (fun _ v -> if v < 0 then ok := false) s;
      Array.iteri (fun _ v -> if v < 0 then ok := false) q;
      for k = 0 to Array.length s - 2 do
        if s.(k) > s.(k + 1) || q.(k) > q.(k + 1) then ok := false
      done;
      !ok)

(* The derived amounts are exactly the accumulated negated minimum /
   accumulated maximum of each link's flow distances along the chain. *)
let prop_derive_strict =
  Test.make ~count:200 ~name:"derivation equals chain recurrence" arb_chain
    (fun (p, offsets) ->
      let d = Derive.of_program ~depth:1 p in
      let s = Array.map (fun r -> r.(0)) d.Derive.shift in
      let q = Array.map (fun r -> r.(0)) d.Derive.peel in
      (* reading a[i+o] from the producer writing a[i]: the flow
         distance is -o; shift accumulates -min distance, peel
         accumulates +max distance, along the chain *)
      let ok = ref (s.(0) = 0 && q.(0) = 0) in
      let acc_s = ref 0 and acc_q = ref 0 in
      List.iteri
        (fun k offs ->
          if k > 0 then begin
            let dists = List.map (fun o -> -o) offs in
            let dmin = List.fold_left min 0 dists in
            let dmax = List.fold_left max 0 dists in
            acc_s := !acc_s - dmin;
            acc_q := !acc_q + dmax;
            if s.(k) <> !acc_s || q.(k) <> !acc_q then ok := false
          end)
        offsets;
      !ok)

(* Unfused block-scheduled execution is always equivalent. *)
let prop_unfused_equivalence =
  Test.make ~count:100 ~name:"unfused schedule preserves semantics"
    (pair arb_chain (int_range 1 6))
    (fun ((p, _), nprocs) ->
      match Schedule.unfused ~nprocs p with
      | exception Invalid_argument _ -> true
      | sched ->
        Interp.equal (Interp.run p)
          (Schedule.execute ~order:Schedule.Interleaved sched))

(* Cache partitioning: array start addresses map to distinct partition
   targets for random array sets. *)
let prop_partition_distinct =
  Test.make ~count:100 ~name:"cache partitioning assigns distinct partitions"
    (list_of_size (Gen.int_range 1 12)
       (make ~print:string_of_int (Gen.int_range 1 400)))
    (fun sizes ->
      let cache = { Partition.capacity = 64 * 1024; line = 64; assoc = 1 } in
      let decls =
        List.mapi
          (fun i rows -> { Ir.aname = Printf.sprintf "a%d" i; extents = [ rows; 16 ] })
          sizes
      in
      let l = Partition.cache_partitioned ~cache decls in
      let na = List.length decls in
      let sp = max cache.Partition.line
          (Partition.partition_size ~cache ~narrays:na
           / cache.Partition.line * cache.Partition.line) in
      let parts =
        List.map
          (fun (d : Ir.decl) ->
            Partition.cache_map cache (Partition.address l d.Ir.aname
                                         (Array.make 2 0)) / sp)
          decls
      in
      List.length (List.sort_uniq compare parts) = na)

(* Balanced blocks: always tile, sizes within 1. *)
let prop_blocks_balanced =
  Test.make ~count:200 ~name:"blocks tile and are balanced"
    (pair (pair (int_range 0 50) (int_range 0 400)) (int_range 1 16))
    (fun ((lo, len), nprocs) ->
      let hi = lo + len + nprocs in
      (* ensure enough iterations *)
      let blocks =
        List.init nprocs (fun p -> Schedule.block ~lo ~hi ~nprocs ~p)
      in
      let contiguous =
        List.fold_left
          (fun (ok, expected) (bs, be) -> (ok && bs = expected, be + 1))
          (true, lo) blocks
      in
      let sizes = List.map (fun (bs, be) -> be - bs + 1) blocks in
      let mn = List.fold_left min max_int sizes in
      let mx = List.fold_left max 0 sizes in
      fst contiguous && snd contiguous = hi + 1 && mx - mn <= 1)

(* Model-based check of the cache simulator: a naive reference model
   (association list per set, LRU by explicit reordering) must agree
   with the packed-array implementation on random traces. *)
let prop_cache_model =
  let module Cache = Lf_cache.Cache in
  let cfg_gen =
    Gen.oneofl
      [
        { Cache.capacity = 512; line = 64; assoc = 1 };
        { Cache.capacity = 1024; line = 64; assoc = 2 };
        { Cache.capacity = 2048; line = 128; assoc = 4 };
      ]
  in
  let arb =
    make
      ~print:(fun (c, trace) ->
        Printf.sprintf "cap=%d assoc=%d trace=%d accesses" c.Cache.capacity
          c.Cache.assoc (List.length trace))
      Gen.(pair cfg_gen (list_size (int_range 1 300) (int_range 0 8191)))
  in
  Test.make ~count:150 ~name:"cache agrees with naive LRU model" arb
    (fun (cfg, trace) ->
      let c = Cache.create cfg in
      let nsets = cfg.Cache.capacity / (cfg.Cache.line * cfg.Cache.assoc) in
      (* model: per set, a most-recently-used-first list of line tags *)
      let model = Array.make nsets [] in
      List.for_all
        (fun addr ->
          let line = addr / cfg.Cache.line in
          let set = line mod nsets in
          let hit_model = List.mem line model.(set) in
          let without = List.filter (fun t -> t <> line) model.(set) in
          let kept =
            if List.length without >= cfg.Cache.assoc then
              (* drop LRU = last element *)
              List.filteri (fun i _ -> i < cfg.Cache.assoc - 1) without
            else without
          in
          model.(set) <- line :: kept;
          Cache.access c addr = hit_model)
        trace)

(* 2-D chains: random stencils in both dimensions, fused at depth 2 on
   processor grids, remain semantics-preserving. *)
let gen_chain2d =
  let open Gen in
  let* nnests = int_range 2 4 in
  let* offs =
    list_repeat nnests
      (list_size (int_range 1 2) (pair (int_range (-1) 2) (int_range (-2) 1)))
  in
  let* rows = int_range 16 28 in
  let* cols = int_range 16 28 in
  return (offs, rows, cols)

let chain2d_program (offs, rows, cols) =
  let module I = Ir in
  let nests =
    List.mapi
      (fun k reads ->
        let src = Printf.sprintf "b%d" k in
        let dst = Printf.sprintf "b%d" (k + 1) in
        let rhs =
          match
            List.map
              (fun (oi, oj) ->
                I.Read (I.aref src [ I.av ~c:oi "i"; I.av ~c:oj "j" ]))
              reads
          with
          | [] -> I.Const 0.0
          | e :: es -> List.fold_left (fun a b -> I.Bin (I.Add, a, b)) e es
        in
        {
          I.nid = Printf.sprintf "L%d" (k + 1);
          levels =
            [
              { I.lvar = "i"; lo = 3; hi = rows - 4; parallel = true };
              { I.lvar = "j"; lo = 3; hi = cols - 4; parallel = true };
            ];
          body = [ I.stmt (I.aref dst [ I.av "i"; I.av "j" ]) rhs ];
        })
      offs
  in
  let p =
    {
      I.pname = "chain2d";
      decls =
        List.init (List.length offs + 1) (fun k ->
            { I.aname = Printf.sprintf "b%d" k; extents = [ rows; cols ] });
      nests;
    }
  in
  I.validate p;
  p

let prop_fused_equivalence_2d =
  let arb =
    make
      ~print:(fun ((offs, r, c), np) ->
        Printf.sprintf "%d nests %dx%d np=%d" (List.length offs) r c np)
      Gen.(pair gen_chain2d (int_range 1 6))
  in
  Test.make ~count:60 ~name:"2-D fused schedule preserves semantics" arb
    (fun (spec, nprocs) ->
      let p = chain2d_program spec in
      let d = Derive.of_program ~depth:2 p in
      match Schedule.fused ~nprocs ~strip:4 ~derive:d p with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true
      | sched ->
        Interp.equal (Interp.run p)
          (Schedule.execute ~order:Schedule.Interleaved sched))

(* The alignment/replication baseline, where applicable, is also
   semantics-preserving on random chains. *)
let prop_alignrep_equivalence =
  Test.make ~count:60 ~name:"alignrep preserves semantics on chains"
    (pair arb_chain (int_range 1 4))
    (fun ((p, _), nprocs) ->
      match Lf_core.Alignrep.transform p with
      | Error _ -> true
      | Ok r -> (
        match Lf_core.Alignrep.schedule ~nprocs ~strip:5 r with
        | exception _ -> true
        | sched ->
          let reference = Interp.run p in
          let st = Schedule.execute ~order:Schedule.Reversed sched in
          List.for_all
            (fun (d : Ir.decl) ->
              Interp.find_array reference d.Ir.aname
              = Interp.find_array st d.Ir.aname)
            p.Ir.decls))

(* Wavefront scheduling preserves semantics on random chains (1-D) and
   random 2-D chains. *)
let prop_wavefront_equivalence =
  Test.make ~count:80 ~name:"wavefront preserves semantics"
    (pair arb_chain (pair (int_range 1 4) (int_range 2 9)))
    (fun ((p, _), (nprocs, tile)) ->
      let sched = Lf_core.Wavefront.schedule ~tile ~nprocs p in
      Interp.equal (Interp.run p)
        (Schedule.execute ~order:Schedule.Reversed sched))

let prop_wavefront_equivalence_2d =
  let arb =
    make
      ~print:(fun ((offs, r, c), np, t) ->
        Printf.sprintf "%d nests %dx%d np=%d tile=%d" (List.length offs) r c
          np t)
      Gen.(triple gen_chain2d (int_range 1 4) (int_range 3 9))
  in
  Test.make ~count:50 ~name:"2-D wavefront preserves semantics" arb
    (fun (spec, nprocs, tile) ->
      let p = chain2d_program spec in
      let d = Derive.of_program ~depth:2 p in
      let sched = Lf_core.Wavefront.schedule ~tile ~derive:d ~nprocs p in
      Interp.equal (Interp.run p)
        (Schedule.execute ~order:Schedule.Interleaved sched))

(* Time-stepped fused execution matches the time-stepped reference. *)
let prop_steps_equivalence =
  Test.make ~count:60 ~name:"fused schedule with time steps"
    (pair arb_chain (pair (int_range 1 4) (int_range 1 5)))
    (fun ((p, _), (nprocs, steps)) ->
      match Schedule.fused ~nprocs ~strip:4 p with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true
      | sched ->
        Interp.equal
          (Interp.run ~steps p)
          (Schedule.execute ~order:Schedule.Reversed ~steps sched))

(* Distribution of random multi-statement nests preserves semantics;
   pi-blocks are emitted in a dependence-respecting order. *)
let gen_multistmt =
  let open Gen in
  let* nstmts = int_range 2 4 in
  (* statement k writes array wk reading a random earlier array (or the
     input) at a random offset *)
  let* specs =
    list_repeat nstmts (pair (int_range 0 3) (int_range (-2) 2))
  in
  let* hi = int_range 20 40 in
  return (specs, hi)

let multistmt_program (specs, hi) =
  let module I = Ir in
  let i o = I.av ~c:o "i" in
  let narr = List.length specs + 1 in
  let body =
    List.mapi
      (fun k (src, off) ->
        let src = min src k in
        (* arrays a0 (input) .. ak-1 are already written *)
        I.stmt
          (I.aref (Printf.sprintf "a%d" (k + 1)) [ i 0 ])
          (I.Read (I.aref (Printf.sprintf "a%d" src) [ i off ])))
      specs
  in
  let p =
    {
      I.pname = "multistmt";
      decls =
        List.init narr (fun k ->
            { I.aname = Printf.sprintf "a%d" k; extents = [ hi + 4 ] });
      nests =
        [
          {
            I.nid = "L";
            levels = [ { I.lvar = "i"; lo = 3; hi; parallel = false } ];
            body;
          };
        ];
    }
  in
  I.validate p;
  p

let prop_distribute_equivalence =
  let arb =
    make
      ~print:(fun (specs, hi) ->
        Printf.sprintf "%d stmts hi=%d" (List.length specs) hi)
      gen_multistmt
  in
  Test.make ~count:120 ~name:"distribution preserves semantics" arb
    (fun spec ->
      let p = multistmt_program spec in
      let q = Lf_core.Distribute.distribute p in
      Interp.equal (Interp.run p) (Interp.run q))

(* Clustering a random chain with a non-uniform nest injected at a
   random position: groups tile the sequence, and the clustered
   schedule is semantics-preserving. *)
let prop_cluster_equivalence =
  let arb =
    make
      ~print:(fun ((p, _), (pos, np)) ->
        Printf.sprintf "%s inject=%d np=%d" p.Ir.pname pos np)
      Gen.(pair gen_chain (pair (int_range 0 4) (int_range 1 3)))
  in
  Test.make ~count:60 ~name:"clustering preserves semantics" arb
    (fun ((p, _), (pos, nprocs)) ->
      (* inject a non-uniform nest writing a fresh array *)
      let module I = Ir in
      let nu =
        {
          I.nid = "NU";
          levels = [ { I.lvar = "i"; lo = 0; hi = 10; parallel = true } ];
          body =
            [
              I.stmt
                (I.aref "nu" [ I.affine [ (2, "i") ] ])
                (I.Read (I.aref "a0" [ I.av "i" ]));
            ];
        }
      in
      let pos = min pos (List.length p.I.nests) in
      let nests =
        List.filteri (fun i _ -> i < pos) p.I.nests
        @ [ nu ]
        @ List.filteri (fun i _ -> i >= pos) p.I.nests
      in
      let q =
        {
          p with
          I.decls = { I.aname = "nu"; extents = [ 64 ] } :: p.I.decls;
          nests;
        }
      in
      I.validate q;
      let gs = Lf_core.Cluster.groups q in
      (* groups tile the sequence *)
      let covered =
        List.fold_left
          (fun acc (g : Lf_core.Cluster.group) ->
            acc + g.Lf_core.Cluster.members)
          0 gs
      in
      covered = List.length q.I.nests
      &&
      match Lf_core.Cluster.schedule ~nprocs ~strip:4 q gs with
      | exception _ -> true
      | sched ->
        Interp.equal (Interp.run q)
          (Schedule.execute ~order:Schedule.Interleaved sched))

(* Print/parse round-trip: random stencil chains survive a trip through
   the pretty-printer and the front-end parser unchanged. *)
let prop_parse_roundtrip =
  Test.make ~count:150 ~name:"print/parse roundtrip" arb_chain
    (fun (p, _) ->
      let q = Lf_front.Parse.program (Ir.program_to_string p) in
      q = p)

let prop_parse_roundtrip_2d =
  let arb =
    make
      ~print:(fun (offs, r, c) ->
        Printf.sprintf "%d nests %dx%d" (List.length offs) r c)
      gen_chain2d
  in
  Test.make ~count:80 ~name:"print/parse roundtrip (2-D)" arb
    (fun spec ->
      let p = chain2d_program spec in
      Lf_front.Parse.program (Ir.program_to_string p) = p)

(* Affine arithmetic round-trips under shifting. *)
let prop_affine_shift =
  Test.make ~count:200 ~name:"affine shift adds to evaluation"
    (pair (int_range (-20) 20) (int_range (-20) 20))
    (fun (c, k) ->
      let a = Ir.av ~c "i" in
      let env = fun _ -> 7 in
      Ir.affine_eval (Ir.affine_shift a k) env = Ir.affine_eval a env + k)

let suite =
  List.map Tutil.to_alcotest
    [
      prop_fused_equivalence;
      prop_exact_coverage;
      prop_derive_monotone;
      prop_derive_strict;
      prop_unfused_equivalence;
      prop_partition_distinct;
      prop_blocks_balanced;
      prop_cache_model;
      prop_fused_equivalence_2d;
      prop_alignrep_equivalence;
      prop_wavefront_equivalence;
      prop_wavefront_equivalence_2d;
      prop_steps_equivalence;
      prop_distribute_equivalence;
      prop_cluster_equivalence;
      prop_parse_roundtrip;
      prop_parse_roundtrip_2d;
      prop_affine_shift;
    ]
