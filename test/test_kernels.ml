(* Tests for the benchmark kernels and application models. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Apps = Lf_kernels.Apps

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_kernels_validate () =
  List.iter
    (fun p -> Ir.validate p)
    [
      Lf_kernels.Ll18.program ~n:16 ();
      Lf_kernels.Calc.program ~n:16 ();
      Lf_kernels.Filter.program ~rows:16 ~cols:16 ();
      Lf_kernels.Jacobi.program ~n:16 ();
    ]

let test_ll18_nine_arrays () =
  let p = Lf_kernels.Ll18.program ~n:16 () in
  check int "nine arrays" 9 (List.length p.Ir.decls);
  check int "three nests" 3 (List.length p.Ir.nests)

let test_calc_six_arrays () =
  let p = Lf_kernels.Calc.program ~n:16 () in
  check int "six arrays" 6 (List.length p.Ir.decls);
  check int "five nests" 5 (List.length p.Ir.nests)

let test_filter_ten_nests () =
  let p = Lf_kernels.Filter.program ~rows:16 ~cols:16 () in
  check int "ten nests" 10 (List.length p.Ir.nests)

let test_ll18_jacobi_sizes () =
  (* rectangular filter works *)
  let p = Lf_kernels.Filter.program ~rows:20 ~cols:12 () in
  let d = Ir.find_decl p "f1" in
  check bool "rectangular extents" true (d.Ir.extents = [ 20; 12 ])

let test_ll18_value_spotcheck () =
  (* zr update: zr'[k][j] = zr[k][j] + t*zu'[k][j] *)
  let p = Lf_kernels.Ll18.program ~n:8 () in
  let st = Interp.run p in
  let st0 = Interp.create p in
  let zr = Interp.find_array st "zr" in
  let zr0 = Interp.find_array st0 "zr" in
  let zu = Interp.find_array st "zu" in
  let k = 3 and j = 4 in
  check (Alcotest.float 1e-12) "zr update"
    (zr0.((k * 8) + j) +. (Lf_kernels.Ll18.t_const *. zu.((k * 8) + j)))
    zr.((k * 8) + j)

let test_apps_structure () =
  let t = Apps.tomcatv ~n:33 () in
  check int "tomcatv 1 sequence" 1 (Apps.num_sequences t);
  check int "tomcatv longest 3" 3 (Apps.longest_sequence t);
  let h = Apps.hydro2d ~rows:40 ~cols:24 () in
  check int "hydro2d 3 sequences" 3 (Apps.num_sequences h);
  check int "hydro2d longest 10" 10 (Apps.longest_sequence h);
  let s = Apps.spem ~d0:24 ~d1:12 ~d2:12 () in
  check int "spem 11 sequences" 11 (Apps.num_sequences s);
  check int "spem longest 8" 8 (Apps.longest_sequence s)

let test_apps_sequences_valid_and_parallel () =
  let apps =
    [
      Apps.tomcatv ~n:33 ();
      Apps.hydro2d ~rows:40 ~cols:24 ();
      Apps.spem ~d0:24 ~d1:12 ~d2:12 ();
    ]
  in
  List.iter
    (fun (a : Apps.t) ->
      List.iter
        (fun p ->
          Ir.validate p;
          match Lf_dep.Dep.verify_program p with
          | Ok () -> ()
          | Error m -> Alcotest.fail m)
        a.Apps.sequences;
      match a.Apps.remainder with
      | None -> ()
      | Some r -> Ir.validate r)
    apps

let test_apps_sequences_fusable () =
  (* every sequence of every app must fuse correctly *)
  let module Schedule = Lf_core.Schedule in
  let apps =
    [
      Apps.tomcatv ~n:33 ();
      Apps.hydro2d ~rows:40 ~cols:24 ();
      Apps.spem ~d0:24 ~d1:16 ~d2:16 ();
    ]
  in
  List.iter
    (fun (a : Apps.t) ->
      List.iter
        (fun p ->
          let sched = Schedule.fused ~nprocs:2 ~strip:4 p in
          check bool
            (Printf.sprintf "%s fused equiv" p.Ir.pname)
            true
            (Interp.equal (Interp.run p) (Schedule.execute ~order:Schedule.Reversed sched)))
        a.Apps.sequences)
    apps

let test_data_sizes () =
  (* paper data sizes: tomcatv ~16MB (7 arrays of 513x513), hydro2d
     ~50-60MB, spem ~60-70MB *)
  let bytes (p : Ir.program) =
    List.fold_left (fun acc d -> acc + (8 * Ir.num_elements d)) 0 p.Ir.decls
  in
  let t = Apps.tomcatv () in
  let tb = List.fold_left (fun acc p -> max acc (bytes p)) 0 t.Apps.sequences in
  check bool "tomcatv ~16MB" true
    (tb > 12 * 1024 * 1024 && tb < 20 * 1024 * 1024)

let suite =
  [
    ("kernels validate", `Quick, test_kernels_validate);
    ("ll18: 9 arrays, 3 nests", `Quick, test_ll18_nine_arrays);
    ("calc: 6 arrays, 5 nests", `Quick, test_calc_six_arrays);
    ("filter: 10 nests", `Quick, test_filter_ten_nests);
    ("rectangular filter", `Quick, test_ll18_jacobi_sizes);
    ("ll18 value spot-check", `Quick, test_ll18_value_spotcheck);
    ("apps structure (Table 1)", `Quick, test_apps_structure);
    ("apps sequences valid+parallel", `Quick, test_apps_sequences_valid_and_parallel);
    ("apps sequences fusable", `Slow, test_apps_sequences_fusable);
    ("tomcatv data size", `Quick, test_data_sizes);
  ]
