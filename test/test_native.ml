(* The native execution backend (lf_native) and its measurement
   harness.

   Three obligations:
   - Bench_timer's aggregation policy is pure arithmetic — pinned here
     sample by sample (min over all, outliers out of median/mean,
     malformed policies refused);
   - native execution is bit-identical to the reference interpreter
     for every kernel x schedule variant x domain count the paper
     cares about — direct cases plus a QCheck property with
     non-divisible strips and peel-heavy sizes;
   - the measured cost tier verifies before it times, memoises in
     memory only, and the Wallclock search never returns a
     configuration measured slower than the paper default. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Wavefront = Lf_core.Wavefront
module Machine = Lf_machine.Machine
module Pool = Lf_parallel.Pool
module Native = Lf_native.Native
module Bench_timer = Lf_native.Bench_timer
module Space = Lf_tune.Space
module Cost = Lf_tune.Cost
module Search = Lf_tune.Search

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt = Alcotest.float 1e-12

(* ------------------------------------------------------------------ *)
(* Bench_timer aggregation (pure)                                      *)

let test_aggregate_min_of_k () =
  let m = Bench_timer.aggregate [| 3.0; 1.0; 2.0 |] in
  check flt "min over all samples" 1.0 m.Bench_timer.min_s;
  check int "all kept" 3 m.Bench_timer.kept;
  check flt "median" 2.0 m.Bench_timer.median_s;
  check flt "mean" 2.0 m.Bench_timer.mean_s

let test_aggregate_outlier_rejection () =
  (* raw median 1.0, cutoff 3.0 -> 100.0 is rejected from median/mean
     but the minimum is untouched by construction *)
  let m = Bench_timer.aggregate [| 1.0; 0.9; 1.1; 100.0; 1.0 |] in
  check int "outlier dropped" 4 m.Bench_timer.kept;
  check flt "min unaffected" 0.9 m.Bench_timer.min_s;
  check flt "median of kept" 1.0 m.Bench_timer.median_s;
  check bool "mean excludes the outlier" true (m.Bench_timer.mean_s < 1.05)

let test_aggregate_even_median () =
  let m = Bench_timer.aggregate [| 4.0; 1.0; 3.0; 2.0 |] in
  check flt "average of the two middles" 2.5 m.Bench_timer.median_s

let test_aggregate_cutoff_from_raw_median () =
  (* the slow half cannot vote itself back in: with cutoff 2 and raw
     median 2.0, the 10.0 samples are out even though they would be
     within 2x of a recomputed (kept) median that included them *)
  let m =
    Bench_timer.aggregate
      ~policy:{ Bench_timer.default_policy with outlier_cutoff = 2.0 }
      [| 1.0; 2.0; 10.0 |]
  in
  check int "kept" 2 m.Bench_timer.kept;
  check flt "median of kept" 1.5 m.Bench_timer.median_s

let test_aggregate_rejects_malformed () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check bool "empty samples" true
    (raises (fun () -> Bench_timer.aggregate [||]));
  check bool "zero repetitions" true
    (raises (fun () ->
         Bench_timer.aggregate
           ~policy:{ Bench_timer.default_policy with repetitions = 0 }
           [| 1.0 |]));
  check bool "negative warmup" true
    (raises (fun () ->
         Bench_timer.aggregate
           ~policy:{ Bench_timer.default_policy with warmup = -1 }
           [| 1.0 |]));
  check bool "cutoff below 1" true
    (raises (fun () ->
         Bench_timer.aggregate
           ~policy:{ Bench_timer.default_policy with outlier_cutoff = 0.5 }
           [| 1.0 |]))

let test_measure_counts_reps () =
  let prepared = ref 0 and ran = ref 0 in
  let m =
    Bench_timer.measure
      ~policy:{ warmup = 2; repetitions = 3; outlier_cutoff = 3.0 }
      ~prepare:(fun () -> incr prepared)
      (fun () -> incr ran)
  in
  check int "warmup + timed runs" 5 !ran;
  check int "prepare before every run" 5 !prepared;
  check int "one sample per timed rep" 3 (Array.length m.Bench_timer.samples)

(* ------------------------------------------------------------------ *)
(* Bit-identity: direct cases                                          *)

let fig9 n = Tutil.chain_program ~lo:2 ~hi:n [ [ 0 ]; [ 1; -1 ]; [ 1; -1 ] ]

let heat2d () =
  Lf_front.Parse.program_of_file "../examples/programs/heat2d.loop"

let assert_identical name sched =
  match Native.verify sched with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" name m

let test_native_fig9_two_domains () =
  let p = fig9 40 in
  let d = Derive.of_program ~depth:1 p in
  assert_identical "fig9 fused P=2"
    (Schedule.fused ~nprocs:2 ~strip:7 ~derive:d p);
  assert_identical "fig9 unfused P=2" (Schedule.unfused ~nprocs:2 p)

let test_native_heat2d_two_domains () =
  let p = heat2d () in
  let depth = max 1 (min 2 (Lf_dep.Dep.max_parallel_depth p)) in
  let d = Derive.of_program ~depth p in
  assert_identical "heat2d fused P=2"
    (Schedule.fused ~nprocs:2 ~strip:5 ~derive:d p);
  assert_identical "heat2d unfused P=2" (Schedule.unfused ~nprocs:2 p)

let test_native_jacobi_grid () =
  (* depth-2 fusion: a 2x2 processor grid with per-dimension peels *)
  let p = Lf_kernels.Jacobi.program ~n:20 () in
  let d = Derive.of_program ~depth:2 p in
  assert_identical "jacobi fused P=4"
    (Schedule.fused ~nprocs:4 ~strip:6 ~derive:d p)

let test_native_steps_match_interp () =
  (* multi-step runs repeat the whole schedule like Interp ~steps *)
  let p = fig9 30 in
  let d = Derive.of_program ~depth:1 p in
  let sched = Schedule.fused ~nprocs:2 ~strip:5 ~derive:d p in
  (match Native.verify ~steps:3 sched with
  | Ok () -> ()
  | Error m -> Alcotest.failf "steps=3: %s" m);
  let bufs = Native.run ~steps:3 sched in
  check bool "checksum matches the 3-step reference" true
    (Native.checksum bufs = Interp.checksum (Interp.run ~steps:3 p))

let test_native_pool_size_mismatch () =
  let p = fig9 30 in
  let sched = Schedule.unfused ~nprocs:2 p in
  Pool.with_pool 3 (fun pool ->
      match Native.run ~pool sched with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument on pool/nprocs mismatch")

(* ------------------------------------------------------------------ *)
(* Bit-identity: QCheck property                                       *)

(* Same inventory as test_roundtrip; sizes vary per case. *)
let property_kernels : (string * (int -> Ir.program) * int) array =
  [|
    ("ll18", (fun n -> Lf_kernels.Ll18.program ~n ()), 1);
    ("calc", (fun n -> Lf_kernels.Calc.program ~n ()), 1);
    ( "filter",
      (fun n -> Lf_kernels.Filter.program ~rows:n ~cols:(n / 2 + 8) ()),
      1 );
    ("jacobi", (fun n -> Lf_kernels.Jacobi.program ~n ()), 2);
    ("fig9", (fun n -> fig9 n), 1);
    ( "tomcatv-seq1",
      (fun n ->
        List.hd (Lf_kernels.Apps.tomcatv ~n ()).Lf_kernels.Apps.sequences),
      1 );
  |]

type variant = V_unfused | V_fused | V_wavefront

type ncase = {
  nc_kernel : int;
  nc_n : int;
  nc_procs : int;  (** 1, 2 or 4 *)
  nc_strip : int;  (** deliberately allowed to be non-divisible *)
  nc_variant : variant;
}

let ncase_gen =
  QCheck.Gen.(
    let* nc_kernel = int_bound (Array.length property_kernels - 1) in
    (* odd-ish sizes so strips do not divide ranges and peel boundaries
       land mid-block *)
    let* nc_n = int_range 17 41 in
    let* nc_procs = oneofl [ 1; 2; 4 ] in
    let* nc_strip = int_range 2 13 in
    let* nc_variant = oneofl [ V_unfused; V_fused; V_wavefront ] in
    return { nc_kernel; nc_n; nc_procs; nc_strip; nc_variant })

let ncase_print c =
  let name, _, _ = property_kernels.(c.nc_kernel) in
  Printf.sprintf "%s n=%d P=%d strip=%d %s" name c.nc_n c.nc_procs c.nc_strip
    (match c.nc_variant with
    | V_unfused -> "unfused"
    | V_fused -> "fused"
    | V_wavefront -> "wavefront")

let prop_native_bit_identical c =
  let _, build, depth = property_kernels.(c.nc_kernel) in
  let p = build c.nc_n in
  match
    match c.nc_variant with
    | V_unfused -> Schedule.unfused ~nprocs:c.nc_procs p
    | V_fused ->
      Schedule.fused ~nprocs:c.nc_procs ~strip:c.nc_strip
        ~derive:(Derive.of_program ~depth p)
        p
    | V_wavefront ->
      Wavefront.schedule ~tile:c.nc_strip
        ~derive:(Derive.of_program ~depth p)
        ~nprocs:c.nc_procs p
  with
  | exception Schedule.Illegal _ -> true (* infeasible here: vacuous *)
  | exception Invalid_argument _ -> true
  | exception Derive.Not_applicable _ -> true
  | sched -> (
    match Native.verify sched with
    | Ok () -> true
    | Error m -> QCheck.Test.fail_report (ncase_print c ^ ": " ^ m))

let native_identity_prop =
  QCheck.Test.make
    ~name:"native execution bit-identical to Interp (kernels x variants x P)"
    ~count:40
    (QCheck.make ~print:ncase_print ncase_gen)
    prop_native_bit_identical

(* ------------------------------------------------------------------ *)
(* Measured cost tier + Wallclock search                               *)

let fast_policy = { Bench_timer.warmup = 0; repetitions = 1; outlier_cutoff = 3.0 }

let ll18 () = Lf_kernels.Ll18.program ~n:32 ()

let test_measured_tier () =
  let p = ll18 () in
  let machine = Machine.convex in
  let cand = Space.paper_default ~machine p in
  let cache = Cost.create_mcache () in
  let m =
    match
      Cost.measured ~policy:fast_policy ~cache ~machine ~nprocs:2 p cand
    with
    | Ok m -> m
    | Error e -> Alcotest.failf "measured tier failed: %s" e
  in
  check int "one timed rep" 1 m.Cost.m_reps;
  check bool "positive time" true (m.Cost.m_min_s > 0.0);
  let s1 = Cost.mstats cache in
  check int "one cold measurement" 1 s1.Cost.misses;
  (* repeat: memo hit, no re-measure *)
  ignore
    (Cost.measured ~policy:fast_policy ~cache ~machine ~nprocs:2 p cand);
  let s2 = Cost.mstats cache in
  check int "second call hits" 1 s2.Cost.hits;
  check int "still one measurement" 1 s2.Cost.misses

let test_measured_layout_normalised () =
  (* layout does not exist natively: candidates differing only on the
     layout axis share one measurement *)
  let p = ll18 () in
  let machine = Machine.convex in
  let cand = Space.paper_default ~machine p in
  let cache = Cost.create_mcache () in
  let run c =
    ignore (Cost.measured ~policy:fast_policy ~cache ~machine ~nprocs:2 p c)
  in
  run cand;
  run { cand with Space.layout = Space.Contiguous };
  run { cand with Space.layout = Space.Padded 8 };
  let s = Cost.mstats cache in
  check int "one measurement for three layouts" 1 s.Cost.misses;
  check int "two memo hits" 2 s.Cost.hits

let test_wallclock_search_never_loses () =
  let p = ll18 () in
  let o =
    match
      Search.run ~driver:(Search.Beam { width = 3; budget = 8 })
        ~objective:Search.Wallclock ~policy:fast_policy
        ~machine:Machine.convex ~nprocs:2 p
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "wallclock search failed: %s" e
  in
  check bool "outcome tagged with its objective" true
    (o.Search.objective = Search.Wallclock);
  check bool "measured best <= measured default" true
    (o.Search.best_cost.Cost.e_cycles
    <= o.Search.default_cost.Cost.e_cycles);
  check bool "seconds, not cycles" true
    (o.Search.best_cost.Cost.e_cycles < 10.0);
  check int "no miss count under wallclock" 0
    o.Search.best_cost.Cost.e_misses

let test_cycles_outcome_tagged () =
  let p = ll18 () in
  let o =
    match
      Search.run ~driver:(Search.Beam { width = 2; budget = 4 })
        ~machine:Machine.convex ~nprocs:2 p
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "cycles search failed: %s" e
  in
  check bool "default objective is Cycles" true
    (o.Search.objective = Search.Cycles)

let suite =
  [
    Alcotest.test_case "aggregate: min of k" `Quick test_aggregate_min_of_k;
    Alcotest.test_case "aggregate: outlier rejection" `Quick
      test_aggregate_outlier_rejection;
    Alcotest.test_case "aggregate: even-length median" `Quick
      test_aggregate_even_median;
    Alcotest.test_case "aggregate: cutoff uses the raw median" `Quick
      test_aggregate_cutoff_from_raw_median;
    Alcotest.test_case "aggregate: malformed inputs refused" `Quick
      test_aggregate_rejects_malformed;
    Alcotest.test_case "measure: warmup/rep accounting" `Quick
      test_measure_counts_reps;
    Alcotest.test_case "native fig9 on 2 domains" `Quick
      test_native_fig9_two_domains;
    Alcotest.test_case "native heat2d on 2 domains" `Quick
      test_native_heat2d_two_domains;
    Alcotest.test_case "native jacobi 2x2 grid" `Quick test_native_jacobi_grid;
    Alcotest.test_case "native multi-step checksum" `Quick
      test_native_steps_match_interp;
    Alcotest.test_case "pool size mismatch refused" `Quick
      test_native_pool_size_mismatch;
    QCheck_alcotest.to_alcotest native_identity_prop;
    Alcotest.test_case "measured tier: verify, time, memoise" `Quick
      test_measured_tier;
    Alcotest.test_case "measured tier: layout axis is free" `Quick
      test_measured_layout_normalised;
    Alcotest.test_case "wallclock search never loses to the default" `Quick
      test_wallclock_search_never_loses;
    Alcotest.test_case "cycles outcome carries its objective" `Quick
      test_cycles_outcome_tagged;
  ]
