(* Test runner: all suites. *)

let () =
  Alcotest.run "loopfusion"
    [
      ("ir", Test_ir.suite);
      ("dep", Test_dep.suite);
      ("derive", Test_derive.suite);
      ("schedule", Test_schedule.suite);
      ("codegen", Test_codegen.suite);
      ("cache", Test_cache.suite);
      ("partition", Test_partition.suite);
      ("machine", Test_machine.suite);
      ("kernels", Test_kernels.suite);
      ("parallel", Test_parallel.suite);
      ("engine", Test_engine.suite);
      ("alignrep", Test_alignrep.suite);
      ("profit", Test_profit.suite);
      ("legality", Test_legality.suite);
      ("distribute", Test_distribute.suite);
      ("cluster", Test_cluster.suite);
      ("contract", Test_contract.suite);
      ("timeloop", Test_timeloop.suite);
      ("parse", Test_parse.suite);
      ("wavefront", Test_wavefront.suite);
      ("properties", Test_properties.suite);
      ("integration", Test_integration.suite);
      ("tune", Test_tune.suite);
      ("obs", Test_obs.suite);
      ("roundtrip", Test_roundtrip.suite);
      ("batch", Test_batch.suite);
      ("serve", Test_serve.suite);
      ("queue", Test_queue.suite);
      ("script", Test_script.suite);
      ("native", Test_native.suite);
      ("lazy", Test_lazy.suite);
      ("run_opts", Test_run_opts.suite);
    ]
