(* Unit tests for dependence analysis: exact uniform distances,
   dependence kinds, independence proofs, the multigraph, and doall
   verification. *)

module Ir = Lf_ir.Ir
module Dep = Lf_dep.Dep

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let edge_dists g a b =
  List.filter_map
    (fun (e : Dep.edge) ->
      if e.Dep.src = a && e.Dep.dst = b then
        match e.Dep.dist with
        | Dep.Dist d -> Some (e.Dep.dkind, d.(0))
        | Dep.Not_uniform _ -> None
      else None)
    g.Dep.edges

(* ------------------------------------------------------------------ *)

let test_flow_distance_sign () =
  (* L1 writes a[i]; L2 reads a[i+1]: backward distance -1 *)
  let p = Tutil.chain_program ~lo:2 ~hi:10 [ [ 0 ]; [ 1 ] ] in
  let g = Dep.build ~depth:1 p in
  check bool "flow -1" true
    (List.mem (Dep.Flow, -1) (edge_dists g 0 1))

let test_flow_forward () =
  let p = Tutil.chain_program ~lo:2 ~hi:10 [ [ 0 ]; [ -1 ] ] in
  let g = Dep.build ~depth:1 p in
  check bool "flow +1" true (List.mem (Dep.Flow, 1) (edge_dists g 0 1))

let test_multi_distances () =
  let p = Tutil.chain_program ~lo:2 ~hi:10 [ [ 0 ]; [ -2; 0; 1 ] ] in
  let g = Dep.build ~depth:1 p in
  let dists = List.map snd (edge_dists g 0 1) |> List.sort compare in
  check bool "distances {-1,0,2}" true (dists = [ -1; 0; 2 ])

let test_anti_dependence () =
  (* L1 reads x[i]; L2 writes x[i] -> anti with distance 0 *)
  let i o = Ir.av ~c:o "i" in
  let p =
    {
      Ir.pname = "anti";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ 16 ] }) [ "x"; "y" ];
      nests =
        [
          {
            Ir.nid = "L1";
            levels = [ { Ir.lvar = "i"; lo = 1; hi = 14; parallel = true } ];
            body = [ Ir.stmt (Ir.aref "y" [ i 0 ]) (Ir.Read (Ir.aref "x" [ i 1 ])) ];
          };
          {
            Ir.nid = "L2";
            levels = [ { Ir.lvar = "i"; lo = 1; hi = 14; parallel = true } ];
            body = [ Ir.stmt (Ir.aref "x" [ i 0 ]) (Ir.Const 1.0) ];
          };
        ];
    }
  in
  Ir.validate p;
  let g = Dep.build ~depth:1 p in
  check bool "anti +1" true (List.mem (Dep.Anti, 1) (edge_dists g 0 1))

let test_output_dependence () =
  let i o = Ir.av ~c:o "i" in
  let nest nid c =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = 14; parallel = true } ];
      body = [ Ir.stmt (Ir.aref "x" [ i c ]) (Ir.Const 1.0) ];
    }
  in
  let p =
    {
      Ir.pname = "out";
      decls = [ { Ir.aname = "x"; extents = [ 16 ] } ];
      nests = [ nest "L1" 0; nest "L2" 1 ];
    }
  in
  Ir.validate p;
  let g = Dep.build ~depth:1 p in
  check bool "output -1" true (List.mem (Dep.Output, -1) (edge_dists g 0 1))

let test_read_read_no_dep () =
  let i o = Ir.av ~c:o "i" in
  let nest nid out =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = 14; parallel = true } ];
      body =
        [ Ir.stmt (Ir.aref out [ i 0 ]) (Ir.Read (Ir.aref "shared" [ i 0 ])) ];
    }
  in
  let p =
    {
      Ir.pname = "rr";
      decls =
        List.map
          (fun a -> { Ir.aname = a; extents = [ 16 ] })
          [ "shared"; "u"; "v" ];
      nests = [ nest "L1" "u"; nest "L2" "v" ];
    }
  in
  Ir.validate p;
  let g = Dep.build ~depth:1 p in
  check int "no edges" 0 (List.length g.Dep.edges)

let test_distinct_constants_independent () =
  (* writes x[3][i], reads x[5][i]: provably independent *)
  let p =
    {
      Ir.pname = "cst";
      decls = [ { Ir.aname = "x"; extents = [ 8; 16 ] };
                { Ir.aname = "y"; extents = [ 8; 16 ] } ];
      nests =
        [
          {
            Ir.nid = "L1";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = 15; parallel = true } ];
            body =
              [ Ir.stmt (Ir.aref "x" [ Ir.ac 3; Ir.av "i" ]) (Ir.Const 1.0) ];
          };
          {
            Ir.nid = "L2";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = 15; parallel = true } ];
            body =
              [
                Ir.stmt
                  (Ir.aref "y" [ Ir.ac 0; Ir.av "i" ])
                  (Ir.Read (Ir.aref "x" [ Ir.ac 5; Ir.av "i" ]));
              ];
          };
        ];
    }
  in
  Ir.validate p;
  let g = Dep.build ~depth:1 p in
  check int "independent" 0 (List.length g.Dep.edges)

let test_gcd_independence () =
  (* 2i vs 2i'+1: never equal *)
  check bool "gcd proves" true
    (Dep.gcd_independent (Ir.affine [ (2, "i") ]) (Ir.affine ~const:1 [ (2, "i") ]))

let test_gcd_no_proof () =
  check bool "gcd cannot prove" false
    (Dep.gcd_independent (Ir.affine [ (2, "i") ]) (Ir.affine [ (2, "i") ]))

let test_banerjee_independence () =
  (* i in [0,5] vs i'+10 with i' in [0,5]: ranges disjoint *)
  let bounds = function "i" -> Some (0, 5) | _ -> None in
  check bool "banerjee proves" true
    (Dep.banerjee_independent bounds bounds (Ir.affine [ (1, "i") ])
       (Ir.affine ~const:10 [ (1, "i") ]))

let test_non_uniform_reported () =
  (* a[2i] vs a[i]: not uniform *)
  let p =
    {
      Ir.pname = "nu";
      decls = [ { Ir.aname = "a"; extents = [ 64 ] };
                { Ir.aname = "b"; extents = [ 64 ] } ];
      nests =
        [
          {
            Ir.nid = "L1";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = 20; parallel = true } ];
            body =
              [ Ir.stmt (Ir.aref "a" [ Ir.affine [ (2, "i") ] ]) (Ir.Const 1.0) ];
          };
          {
            Ir.nid = "L2";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = 20; parallel = true } ];
            body =
              [
                Ir.stmt (Ir.aref "b" [ Ir.av "i" ])
                  (Ir.Read (Ir.aref "a" [ Ir.av "i" ]));
              ];
          };
        ];
    }
  in
  Ir.validate p;
  let g = Dep.build ~depth:1 p in
  check bool "has non-uniform edge" true (Dep.not_uniform_edges g <> [])

let test_depth2_distances () =
  let p = Lf_kernels.Jacobi.program ~n:16 () in
  let g = Dep.build ~depth:2 p in
  let dists =
    List.filter_map
      (fun (e : Dep.edge) ->
        match e.Dep.dist with
        | Dep.Dist d when e.Dep.dkind = Dep.Anti -> Some (d.(0), d.(1))
        | _ -> None)
      g.Dep.edges
    |> List.sort_uniq compare
  in
  (* anti deps on a: (0,-1) (0,1) (-1,0) (1,0) *)
  check bool "jacobi anti distances" true
    (dists = [ (-1, 0); (0, -1); (0, 1); (1, 0) ])

let test_inner_dim_no_constraint () =
  (* fusing depth 1 of a 2-D nest pair: j offsets do not affect the
     fused distance *)
  let p = Lf_kernels.Jacobi.program ~n:16 () in
  let g = Dep.build ~depth:1 p in
  let dists =
    List.filter_map
      (fun (e : Dep.edge) ->
        match e.Dep.dist with Dep.Dist d -> Some d.(0) | _ -> None)
      g.Dep.edges
    |> List.sort_uniq compare
  in
  check bool "depth-1 distances" true (dists = [ -1; 0; 1 ])

let test_ll18_multigraph_edges () =
  let g = Dep.build ~depth:1 (Lf_kernels.Ll18.program ~n:16 ()) in
  check bool "has backward -1 L1->L2" true
    (List.mem (Dep.Flow, -1) (edge_dists g 0 1));
  check bool "has anti L2->L3 +1" true
    (List.mem (Dep.Anti, 1) (edge_dists g 1 2));
  check bool "has anti L1->L3 -1" true
    (List.mem (Dep.Anti, -1) (edge_dists g 0 2))

let test_dim_weights () =
  let p = Tutil.chain_program ~lo:2 ~hi:10 [ [ 0 ]; [ 1; -1 ] ] in
  let g = Dep.build ~depth:1 p in
  let ws = List.map (fun (_, _, w) -> w) (Dep.dim_weights g ~dim:0) in
  check bool "weights -1 and +1" true
    (List.sort compare ws = [ -1; 1 ])

(* ------------------------------------------------------------------ *)
(* doall verification                                                  *)

let test_verify_doall_ok () =
  List.iter
    (fun p ->
      match Dep.verify_program p with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    [
      Lf_kernels.Ll18.program ~n:16 ();
      Lf_kernels.Calc.program ~n:16 ();
      Lf_kernels.Filter.program ~rows:16 ~cols:16 ();
      Lf_kernels.Jacobi.program ~n:16 ();
    ]

let test_verify_doall_detects_serial () =
  (* a[i] = a[i-1] is not a doall *)
  let i o = Ir.av ~c:o "i" in
  let p =
    {
      Ir.pname = "serial";
      decls = [ { Ir.aname = "a"; extents = [ 16 ] } ];
      nests =
        [
          {
            Ir.nid = "L";
            levels = [ { Ir.lvar = "i"; lo = 1; hi = 14; parallel = true } ];
            body =
              [ Ir.stmt (Ir.aref "a" [ i 0 ]) (Ir.Read (Ir.aref "a" [ i (-1) ])) ];
          };
        ];
    }
  in
  Ir.validate p;
  check bool "serial loop rejected" true (Dep.verify_program p <> Ok ())

let test_max_parallel_depth () =
  check int "jacobi depth 2" 2
    (Dep.max_parallel_depth (Lf_kernels.Jacobi.program ~n:16 ()));
  let p = Lf_kernels.Jacobi.program ~n:16 () in
  let serial_inner =
    {
      p with
      Ir.nests =
        List.map
          (fun (n : Ir.nest) ->
            {
              n with
              Ir.levels =
                List.mapi
                  (fun d (l : Ir.level) ->
                    if d = 1 then { l with Ir.parallel = false } else l)
                  n.Ir.levels;
            })
          p.Ir.nests;
    }
  in
  check int "inner serial -> depth 1" 1 (Dep.max_parallel_depth serial_inner)

let test_build_depth_too_large () =
  let p = Tutil.chain_program ~lo:2 ~hi:10 [ [ 0 ] ] in
  Alcotest.check_raises "depth beyond nest"
    (Invalid_argument "Dep.build: nest L1 has fewer than 2 levels") (fun () ->
      ignore (Dep.build ~depth:2 p))

let suite =
  [
    ("flow backward distance", `Quick, test_flow_distance_sign);
    ("flow forward distance", `Quick, test_flow_forward);
    ("multiple distances", `Quick, test_multi_distances);
    ("anti dependence", `Quick, test_anti_dependence);
    ("output dependence", `Quick, test_output_dependence);
    ("read-read no dep", `Quick, test_read_read_no_dep);
    ("distinct constants independent", `Quick, test_distinct_constants_independent);
    ("gcd proves independence", `Quick, test_gcd_independence);
    ("gcd cannot prove", `Quick, test_gcd_no_proof);
    ("banerjee proves independence", `Quick, test_banerjee_independence);
    ("non-uniform reported", `Quick, test_non_uniform_reported);
    ("depth-2 distances (jacobi)", `Quick, test_depth2_distances);
    ("inner dims unconstrained", `Quick, test_inner_dim_no_constraint);
    ("ll18 multigraph", `Quick, test_ll18_multigraph_edges);
    ("dim weights", `Quick, test_dim_weights);
    ("verify doall ok", `Quick, test_verify_doall_ok);
    ("verify doall detects serial", `Quick, test_verify_doall_detects_serial);
    ("max parallel depth", `Quick, test_max_parallel_depth);
    ("build depth too large", `Quick, test_build_depth_too_large);
  ]
