(* Tests for the textual front end, including print/parse round-trips
   of every kernel. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Parse = Lf_front.Parse

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let test_basic_program () =
  let p =
    Parse.program
      {|
      double a[64], b[64];
      /* nest copy */
      doall (i = 1; i <= 62; i++) {
        a[i] = b[i] / 4;
      }
    |}
  in
  check int "one nest" 1 (List.length p.Ir.nests);
  check int "two decls" 2 (List.length p.Ir.decls);
  let n = List.hd p.Ir.nests in
  check string "nest named from comment" "copy" n.Ir.nid;
  check bool "parallel" true (List.hd n.Ir.levels).Ir.parallel

let test_for_is_sequential () =
  let p =
    Parse.program
      {| double a[8];
         for (i = 0; i <= 7; i++) { a[i] = 1.0; } |}
  in
  check bool "sequential" false
    (List.hd (List.hd p.Ir.nests).Ir.levels).Ir.parallel

let test_nested_loops () =
  let p =
    Parse.program
      {| double a[8][8];
         doall (i = 1; i <= 6; i++) {
           doall (j = 1; j <= 6; j++) {
             a[i][j] = a[i][j] + 1.0;
           }
         } |}
  in
  check int "two levels" 2 (List.length (List.hd p.Ir.nests).Ir.levels)

let test_affine_subscripts () =
  let p =
    Parse.program
      {| double a[64], b[64][8];
         doall (i = 2; i <= 20; i++) {
           doall (j = 0; j <= 7; j++) {
             b[2*i+3][j] = a[i-2] + a[i+1];
           }
         } |}
  in
  let st = List.hd (List.hd p.Ir.nests).Ir.body in
  (match st.Ir.lhs.Ir.index with
  | [ a; _ ] ->
    check bool "2i+3" true (Ir.affine_equal a (Ir.affine ~const:3 [ (2, "i") ]))
  | _ -> Alcotest.fail "bad subscripts");
  match Ir.stmt_reads st with
  | [ r1; _ ] ->
    check int "a[i-2] offset" (-2) (List.hd r1.Ir.index).Ir.const
  | _ -> Alcotest.fail "expected two reads"

let test_guard_parses () =
  let p =
    Parse.program
      {| double a[32];
         doall (i = 0; i <= 31; i++) {
           if (2 <= i && i <= 5) a[i] = 1.0;
         } |}
  in
  let st = List.hd (List.hd p.Ir.nests).Ir.body in
  check bool "guard" true (st.Ir.guard = [ ("i", 2, 5) ])

let test_negative_and_float_constants () =
  let p =
    Parse.program
      {| double a[8];
         doall (i = 0; i <= 7; i++) {
           a[i] = -a[i] * 0.25 + 1.5e2;
         } |}
  in
  let st = List.hd (List.hd p.Ir.nests).Ir.body in
  let s = Fmt.str "%a" Ir.pp_stmt st in
  check bool "parses to -a * 0.25 + 150" true
    (Tutil.contains s "0.25" && Tutil.contains s "150")

let test_expression_precedence () =
  let p =
    Parse.program
      {| double a[8], b[8];
         doall (i = 0; i <= 7; i++) {
           a[i] = b[i] + b[i] * b[i];
         } |}
  in
  let st = List.hd (List.hd p.Ir.nests).Ir.body in
  (match st.Ir.rhs with
  | Ir.Bin (Ir.Add, _, Ir.Bin (Ir.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "mul must bind tighter than add")

let test_parens () =
  let p =
    Parse.program
      {| double a[8], b[8];
         doall (i = 0; i <= 7; i++) {
           a[i] = (b[i] + b[i]) * b[i];
         } |}
  in
  let st = List.hd (List.hd p.Ir.nests).Ir.body in
  (match st.Ir.rhs with
  | Ir.Bin (Ir.Mul, Ir.Bin (Ir.Add, _, _), _) -> ()
  | _ -> Alcotest.fail "parens must override precedence")

let test_syntax_errors () =
  List.iter
    (fun src ->
      match Parse.program src with
      | exception Parse.Syntax_error _ -> ()
      | exception Ir.Invalid _ -> ()
      | _ -> Alcotest.failf "expected rejection of %s" src)
    [
      "double ;";
      "doall (i = 0; i <= 7; i++) { }";
      "double a[4]; doall (i = 0; j <= 7; i++) { a[i] = 1.0; }";
      "double a[4]; doall (i = 0; i <= 7; i++) { a[i] = ; }";
      "double a[4]; doall (i = 0; i <= 7; i++) { a[i] = 1.0 }";
      (* validation: subscript out of declared rank *)
      "double a[4]; doall (i = 0; i <= 3; i++) { a[i][i] = 1.0; }";
    ]

(* Round-trip: pretty-print then parse gives back the same program. *)
let roundtrip p =
  let q = Parse.program (Ir.program_to_string p) in
  check bool (p.Ir.pname ^ " roundtrips") true (q = p)

let test_roundtrip_kernels () =
  roundtrip (Lf_kernels.Ll18.program ~n:16 ());
  roundtrip (Lf_kernels.Calc.program ~n:16 ());
  roundtrip (Lf_kernels.Filter.program ~rows:16 ~cols:12 ());
  roundtrip (Lf_kernels.Jacobi.program ~n:16 ())

let test_roundtrip_transformed () =
  (* the alignment/replication output (guards, replica arrays) also
     round-trips *)
  match Lf_core.Alignrep.transform (Lf_kernels.Ll18.program ~n:12 ()) with
  | Error m -> Alcotest.fail m
  | Ok r -> roundtrip r.Lf_core.Alignrep.prog

let test_parse_execute () =
  (* a parsed program runs in the interpreter *)
  let p =
    Parse.program
      {| /* program smooth */
         double x[32], y[32];
         doall (i = 1; i <= 30; i++) {
           y[i] = (x[i-1] + x[i+1]) / 2;
         } |}
  in
  check string "program name" "smooth" p.Ir.pname;
  let st = Interp.run p in
  let x = Interp.find_array st "x" and y = Interp.find_array st "y" in
  check (Alcotest.float 1e-12) "value" ((x.(4) +. x.(6)) /. 2.0) y.(5)

let test_file_roundtrip () =
  let p = Lf_kernels.Jacobi.program ~n:12 () in
  let path = Filename.temp_file "lf" ".loop" in
  let oc = open_out path in
  output_string oc (Ir.program_to_string p);
  close_out oc;
  let q = Parse.program_of_file ~name:p.Ir.pname path in
  Sys.remove path;
  check bool "file roundtrip" true (q = p)

let suite =
  [
    ("basic program", `Quick, test_basic_program);
    ("for is sequential", `Quick, test_for_is_sequential);
    ("nested loops", `Quick, test_nested_loops);
    ("affine subscripts", `Quick, test_affine_subscripts);
    ("guard parses", `Quick, test_guard_parses);
    ("negative and float constants", `Quick, test_negative_and_float_constants);
    ("expression precedence", `Quick, test_expression_precedence);
    ("parens", `Quick, test_parens);
    ("syntax errors", `Quick, test_syntax_errors);
    ("roundtrip kernels", `Quick, test_roundtrip_kernels);
    ("roundtrip transformed", `Quick, test_roundtrip_transformed);
    ("parse and execute", `Quick, test_parse_execute);
    ("file roundtrip", `Quick, test_file_roundtrip);
  ]
