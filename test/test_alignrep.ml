(* Tests for the alignment+replication baseline (Figure 14/26). *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Alignrep = Lf_core.Alignrep

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let transform_ok p =
  match Alignrep.transform p with
  | Ok r -> r
  | Error m -> Alcotest.failf "alignrep failed: %s" m

let equivalent p (r : Alignrep.result) =
  let reference = Interp.run p in
  List.for_all
    (fun nprocs ->
      List.for_all
        (fun order ->
          let sched = Alignrep.schedule ~nprocs ~strip:8 r in
          let st = Schedule.execute ~order sched in
          List.for_all
            (fun (d : Ir.decl) ->
              Interp.find_array reference d.Ir.aname
              = Interp.find_array st d.Ir.aname)
            p.Ir.decls)
        [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ])
    [ 1; 2; 4 ]

let test_ll18_replication_counts () =
  (* the paper: two arrays and two statements replicated for LL18 *)
  let r = transform_ok (Lf_kernels.Ll18.program ~n:24 ()) in
  check int "two replicated statements" 2 r.Alignrep.replicated_stmts;
  check bool "zr and zz copied" true (r.Alignrep.copied_arrays = [ "zr"; "zz" ]);
  check int "two copy nests" 2 r.Alignrep.ncopies;
  check bool "alignment 0,1,1" true (r.Alignrep.shifts = [| 0; 1; 1 |])

let test_ll18_sync_free () =
  let r = transform_ok (Lf_kernels.Ll18.program ~n:24 ()) in
  (match Alignrep.verify_sync_free r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m)

let test_ll18_semantics () =
  let p = Lf_kernels.Ll18.program ~n:32 () in
  check bool "equivalent" true (equivalent p (transform_ok p))

let test_jacobi_copy_only () =
  let p = Lf_kernels.Jacobi.program ~n:24 () in
  let r = transform_ok p in
  check int "no statement replication" 0 r.Alignrep.replicated_stmts;
  check bool "array a copied" true (r.Alignrep.copied_arrays = [ "a" ]);
  check bool "equivalent" true (equivalent p r)

let test_calc_cascade () =
  let p = Lf_kernels.Calc.program ~n:32 () in
  let r = transform_ok p in
  check bool "cascade replicates substantially" true
    (r.Alignrep.replicated_stmts > 10);
  check bool "multiple rounds" true (r.Alignrep.rounds >= 3);
  check bool "equivalent" true (equivalent p r)

let test_filter_exponential_growth () =
  (* the paper criticises alignment/replication for exponential code
     growth: filter's ten-deep chain explodes *)
  let p = Lf_kernels.Filter.program ~rows:40 ~cols:16 () in
  let r = transform_ok p in
  check bool "hundreds of replicated statements" true
    (r.Alignrep.replicated_stmts > 200);
  check bool "equivalent" true (equivalent p r)

let test_fig14_example () =
  (* Figure 14: L1: a[i] = b[i-1]; L2: b[i] = a[i-1]  -- alignment
     conflict resolved by replicating b *)
  let i o = Ir.av ~c:o "i" in
  let nest nid dst src o =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = 30; parallel = true } ];
      body = [ Ir.stmt (Ir.aref dst [ i 0 ]) (Ir.Read (Ir.aref src [ i o ])) ];
    }
  in
  let p =
    {
      Ir.pname = "fig14";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ 32 ] }) [ "a"; "b" ];
      nests = [ nest "L1" "a" "b" (-1); nest "L2" "b" "a" (-1) ];
    }
  in
  Ir.validate p;
  let r = transform_ok p in
  check bool "b snapshotted" true (r.Alignrep.copied_arrays = [ "b" ]);
  check bool "equivalent" true (equivalent p r)

let test_transformed_validates () =
  let r = transform_ok (Lf_kernels.Calc.program ~n:24 ()) in
  Ir.validate r.Alignrep.prog

let test_overhead_is_positive () =
  (* transformed program has strictly more statements + copies *)
  let p = Lf_kernels.Ll18.program ~n:24 () in
  let r = transform_ok p in
  let stmts q =
    List.fold_left (fun acc (n : Ir.nest) -> acc + List.length n.Ir.body) 0
      q.Ir.nests
  in
  check bool "more work" true (stmts r.Alignrep.prog > stmts p)

let suite =
  [
    ("ll18: 2 statements + 2 arrays (paper)", `Quick, test_ll18_replication_counts);
    ("ll18 sync-free", `Quick, test_ll18_sync_free);
    ("ll18 semantics", `Quick, test_ll18_semantics);
    ("jacobi: copy only (Fig 14 style)", `Quick, test_jacobi_copy_only);
    ("calc: replication cascade", `Quick, test_calc_cascade);
    ("filter: exponential growth", `Slow, test_filter_exponential_growth);
    ("figure 14 example", `Quick, test_fig14_example);
    ("transformed program validates", `Quick, test_transformed_validates);
    ("overhead positive", `Quick, test_overhead_is_positive);
  ]
