(* Tests for the executable schedules: blocking, grids, exact coverage
   (Theorem 1 proof obligations), semantic equivalence of the fused
   execution under adversarial orders, and the legality threshold. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Derive = Lf_core.Derive

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Block scheduling                                                    *)

let test_block_partition () =
  (* blocks tile [lo,hi] contiguously, sizes differ by at most 1 *)
  List.iter
    (fun (lo, hi, n) ->
      let blocks = List.init n (fun p -> Schedule.block ~lo ~hi ~nprocs:n ~p) in
      let expected = ref lo in
      List.iter
        (fun (bs, be) ->
          check int "contiguous" !expected bs;
          expected := be + 1)
        blocks;
      check int "covers to hi" (hi + 1) !expected;
      let sizes = List.map (fun (bs, be) -> be - bs + 1) blocks in
      let mn = List.fold_left min max_int sizes in
      let mx = List.fold_left max 0 sizes in
      check bool "balanced" true (mx - mn <= 1))
    [ (0, 9, 3); (1, 510, 32); (5, 100, 7); (0, 0, 1); (2, 57, 16) ]

let test_block_too_many_procs () =
  (match Schedule.block ~lo:0 ~hi:2 ~nprocs:5 ~p:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_balanced_grid () =
  check bool "12 over 2" true (Schedule.balanced_grid ~nprocs:12 ~depth:2 = [| 4; 3 |]);
  check bool "16 over 2" true (Schedule.balanced_grid ~nprocs:16 ~depth:2 = [| 4; 4 |]);
  check bool "8 over 3" true (Schedule.balanced_grid ~nprocs:8 ~depth:3 = [| 2; 2; 2 |]);
  check bool "7 over 2" true (Schedule.balanced_grid ~nprocs:7 ~depth:2 = [| 7; 1 |]);
  check bool "1 over 1" true (Schedule.balanced_grid ~nprocs:1 ~depth:1 = [| 1 |])

let test_grid_product () =
  List.iter
    (fun (n, d) ->
      let g = Schedule.balanced_grid ~nprocs:n ~depth:d in
      check int "product" n (Array.fold_left ( * ) 1 g))
    [ (6, 2); (24, 3); (56, 2); (13, 2); (36, 3) ]

let test_cell_of_proc () =
  let g = [| 3; 2 |] in
  check bool "proc 0" true (Schedule.cell_of_proc g 0 = [| 0; 0 |]);
  check bool "proc 1" true (Schedule.cell_of_proc g 1 = [| 0; 1 |]);
  check bool "proc 5" true (Schedule.cell_of_proc g 5 = [| 2; 1 |])

(* ------------------------------------------------------------------ *)
(* Coverage: Theorem 1 proof obligations on concrete instances         *)

(* Every iteration of every nest is executed exactly once, and all
   peeled (phase >= 1) iterations run after the fused phase. *)
let check_exact_coverage p sched =
  List.iteri
    (fun k (n : Ir.nest) ->
      let pts = Schedule.coverage sched ~nest:k in
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (_, _, point) ->
          if Hashtbl.mem seen point then
            Alcotest.failf "nest %s: duplicated iteration" n.Ir.nid;
          Hashtbl.replace seen point ())
        pts;
      check int
        (Printf.sprintf "nest %s fully covered" n.Ir.nid)
        (Ir.nest_iterations n) (Hashtbl.length seen))
    p.Ir.nests

let test_fused_coverage_1d () =
  List.iter
    (fun (nprocs, strip) ->
      let p = Lf_kernels.Ll18.program ~n:24 () in
      let sched = Schedule.fused ~nprocs ~strip p in
      check_exact_coverage p sched)
    [ (1, 4); (2, 3); (3, 64); (4, 1); (5, 2) ]

let test_fused_coverage_2d () =
  List.iter
    (fun nprocs ->
      let p = Lf_kernels.Jacobi.program ~n:20 () in
      let d = Derive.of_program ~depth:2 p in
      let sched = Schedule.fused ~nprocs ~strip:4 ~derive:d p in
      check_exact_coverage p sched)
    [ 1; 2; 4; 6 ]

let test_unfused_coverage () =
  let p = Lf_kernels.Calc.program ~n:24 () in
  let sched = Schedule.unfused ~nprocs:3 p in
  check_exact_coverage p sched

let test_coverage_differing_bounds () =
  (* nests with different iteration spaces can still be fused *)
  let mk nid lo hi src dst o =
    let i c = Ir.av ~c "i" in
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo; hi; parallel = true } ];
      body = [ Ir.stmt (Ir.aref dst [ i 0 ]) (Ir.Read (Ir.aref src [ i o ])) ];
    }
  in
  let p =
    {
      Ir.pname = "diffbounds";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ 40 ] }) [ "a"; "b"; "c" ];
      nests = [ mk "L1" 2 30 "a" "b" 0; mk "L2" 5 25 "b" "c" 1 ];
    }
  in
  Ir.validate p;
  List.iter
    (fun nprocs ->
      let sched = Schedule.fused ~nprocs ~strip:4 p in
      check_exact_coverage p sched;
      let st = Schedule.execute sched in
      check bool "matches reference" true (Interp.equal (Interp.run p) st))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Semantic equivalence                                                *)

let equivalent ?grid ?derive p ~nprocs ~strip =
  let reference = Interp.run p in
  List.for_all
    (fun order ->
      let sched = Schedule.fused ?grid ?derive ~nprocs ~strip p in
      Interp.equal reference (Schedule.execute ~order sched))
    [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ]

let test_equivalence_ll18 () =
  List.iter
    (fun (nprocs, strip) ->
      check bool
        (Printf.sprintf "ll18 P=%d strip=%d" nprocs strip)
        true
        (equivalent (Lf_kernels.Ll18.program ~n:32 ()) ~nprocs ~strip))
    [ (1, 5); (2, 3); (4, 7); (6, 64) ]

let test_equivalence_calc () =
  List.iter
    (fun (nprocs, strip) ->
      check bool "calc" true
        (equivalent (Lf_kernels.Calc.program ~n:40 ()) ~nprocs ~strip))
    [ (1, 4); (3, 2); (4, 9) ]

let test_equivalence_filter () =
  check bool "filter" true
    (equivalent (Lf_kernels.Filter.program ~rows:48 ~cols:12 ()) ~nprocs:3
       ~strip:5)

let test_equivalence_jacobi_2d () =
  let p = Lf_kernels.Jacobi.program ~n:26 () in
  let d = Derive.of_program ~depth:2 p in
  List.iter
    (fun nprocs ->
      check bool
        (Printf.sprintf "jacobi2d P=%d" nprocs)
        true
        (equivalent ~derive:d p ~nprocs ~strip:4))
    [ 1; 2; 4; 6; 9 ]

let test_equivalence_explicit_grid () =
  let p = Lf_kernels.Jacobi.program ~n:26 () in
  let d = Derive.of_program ~depth:2 p in
  check bool "grid 1x4" true
    (equivalent ~grid:[| 1; 4 |] ~derive:d p ~nprocs:4 ~strip:8);
  check bool "grid 4x1" true
    (equivalent ~grid:[| 4; 1 |] ~derive:d p ~nprocs:4 ~strip:8)

let test_equivalence_strip_one () =
  check bool "strip=1" true
    (equivalent (Lf_kernels.Ll18.program ~n:20 ()) ~nprocs:2 ~strip:1)

let test_unfused_equivalence () =
  List.iter
    (fun nprocs ->
      let p = Lf_kernels.Calc.program ~n:24 () in
      let st = Schedule.execute (Schedule.unfused ~nprocs p) in
      check bool "unfused equiv" true (Interp.equal (Interp.run p) st))
    [ 1; 2; 5 ]

let test_serial_schedule () =
  let p = Lf_kernels.Ll18.program ~n:16 () in
  let st = Schedule.execute (Schedule.serial p) in
  check bool "serial equiv" true (Interp.equal (Interp.run p) st)

(* ------------------------------------------------------------------ *)
(* Legality threshold (Theorem 1 precondition)                         *)

let test_threshold_rejected () =
  (* LL18 has N_t = 3; 12 fused iterations over 8 procs -> blocks of 1 *)
  let p = Lf_kernels.Ll18.program ~n:12 () in
  (match Schedule.fused ~nprocs:8 ~strip:4 p with
  | exception Schedule.Illegal _ -> ()
  | _ -> Alcotest.fail "expected Schedule.Illegal")

let test_threshold_boundary_accepted () =
  (* blocks of exactly N_t iterations are legal and correct *)
  let p = Lf_kernels.Ll18.program ~n:14 () in
  (* 12 fused positions *)
  let nprocs = 4 in
  (* block size 3 = N_t *)
  let sched = Schedule.fused ~nprocs ~strip:2 p in
  check bool "boundary legal and correct" true
    (Interp.equal (Interp.run p) (Schedule.execute ~order:Reversed sched))

let test_grid_rank_mismatch () =
  let p = Lf_kernels.Jacobi.program ~n:20 () in
  let d = Derive.of_program ~depth:2 p in
  (match Schedule.fused ~grid:[| 4 |] ~derive:d ~nprocs:4 p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_total_iterations () =
  let p = Lf_kernels.Jacobi.program ~n:18 () in
  let sched = Schedule.unfused ~nprocs:2 p in
  check int "iterations counted" (2 * 16 * 16) (Schedule.total_iterations sched);
  let fsched = Schedule.fused ~nprocs:2 ~strip:4 p in
  check int "fused iterations conserved" (2 * 16 * 16)
    (Schedule.total_iterations fsched)

let suite =
  [
    ("block partition", `Quick, test_block_partition);
    ("block too many procs", `Quick, test_block_too_many_procs);
    ("balanced grid", `Quick, test_balanced_grid);
    ("grid product", `Quick, test_grid_product);
    ("cell of proc", `Quick, test_cell_of_proc);
    ("fused coverage 1-D", `Quick, test_fused_coverage_1d);
    ("fused coverage 2-D", `Quick, test_fused_coverage_2d);
    ("unfused coverage", `Quick, test_unfused_coverage);
    ("differing bounds", `Quick, test_coverage_differing_bounds);
    ("equivalence: ll18", `Quick, test_equivalence_ll18);
    ("equivalence: calc", `Quick, test_equivalence_calc);
    ("equivalence: filter", `Quick, test_equivalence_filter);
    ("equivalence: jacobi 2-D", `Quick, test_equivalence_jacobi_2d);
    ("equivalence: explicit grids", `Quick, test_equivalence_explicit_grid);
    ("equivalence: strip=1", `Quick, test_equivalence_strip_one);
    ("unfused equivalence", `Quick, test_unfused_equivalence);
    ("serial schedule", `Quick, test_serial_schedule);
    ("threshold rejected", `Quick, test_threshold_rejected);
    ("threshold boundary accepted", `Quick, test_threshold_boundary_accepted);
    ("grid rank mismatch", `Quick, test_grid_rank_mismatch);
    ("iterations conserved", `Quick, test_total_iterations);
  ]
