(* Tests for time-stepped execution (a sequential outer loop around the
   parallel loop sequence, cf. the paper's §1 pointer to [21]) and for
   the TLB model. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Cache = Lf_cache.Cache

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* LL18 is iterative (zr/zz updated from zu/zv each step): a natural
   time-stepped workload. *)

let test_interp_steps_progress () =
  let p = Lf_kernels.Ll18.program ~n:12 () in
  let s1 = Interp.run ~steps:1 p in
  let s3 = Interp.run ~steps:3 p in
  check bool "more steps change the state" false (Interp.equal s1 s3)

let test_schedule_steps_equivalence () =
  let p = Lf_kernels.Ll18.program ~n:24 () in
  let reference = Interp.run ~steps:4 p in
  List.iter
    (fun nprocs ->
      let sched = Schedule.fused ~nprocs ~strip:5 p in
      List.iter
        (fun order ->
          let st = Schedule.execute ~order ~steps:4 sched in
          check bool
            (Printf.sprintf "4 steps P=%d" nprocs)
            true (Interp.equal reference st))
        [ Schedule.Natural; Schedule.Interleaved ])
    [ 1; 3 ]

let test_exec_steps_semantics () =
  let p = Lf_kernels.Jacobi.program ~n:24 () in
  let reference = Interp.run ~steps:5 p in
  let r =
    Exec.run_fused ~machine:Machine.convex ~nprocs:2 ~strip:4 ~steps:5 p
  in
  check bool "simulated 5 steps" true (Interp.equal reference r.Exec.store)

let test_steps_amortize_cold_misses () =
  (* with data fitting in cache, later steps hit: misses grow far less
     than linearly with steps *)
  let p = Lf_kernels.Jacobi.program ~n:64 () in
  let m1 =
    (Exec.run_fused ~machine:Machine.convex ~nprocs:1 ~strip:8 ~steps:1 p)
      .Exec.total_misses
  in
  let m8 =
    (Exec.run_fused ~machine:Machine.convex ~nprocs:1 ~strip:8 ~steps:8 p)
      .Exec.total_misses
  in
  check bool "warm steps nearly free" true (m8 < m1 * 2)

let test_steps_barrier_accounting () =
  let p = Lf_kernels.Jacobi.program ~n:24 () in
  let m = Machine.convex in
  let r1 = Exec.run_fused ~machine:m ~nprocs:2 ~strip:4 ~steps:1 p in
  let r3 = Exec.run_fused ~machine:m ~nprocs:2 ~strip:4 ~steps:3 p in
  let bc = Machine.barrier_cost m ~nprocs:2 in
  (* 2 phases per step: steps*2 - 1 barriers *)
  check (Alcotest.float 1e-6) "1 step" (1.0 *. bc) r1.Exec.barrier_cycles;
  check (Alcotest.float 1e-6) "3 steps" (5.0 *. bc) r3.Exec.barrier_cycles

(* ------------------------------------------------------------------ *)
(* TLB model                                                           *)

let test_tlb_counts () =
  (* touching far more pages than TLB entries must miss repeatedly *)
  let p = Lf_kernels.Ll18.program ~n:256 () in
  (* 9 arrays x 512KB = 4.6MB >> 120 pages *)
  let r = Exec.run_unfused ~machine:Machine.convex ~nprocs:1 p in
  check bool "tlb misses counted" true (r.Exec.tlb_misses > 1000)

let test_tlb_disabled () =
  let m = { Machine.convex with Machine.tlb = None } in
  let p = Lf_kernels.Jacobi.program ~n:32 () in
  let r = Exec.run_unfused ~machine:m ~nprocs:1 p in
  check int "no tlb, no misses" 0 r.Exec.tlb_misses

let test_tlb_penalty_slows () =
  let p = Lf_kernels.Ll18.program ~n:128 () in
  let with_tlb = Exec.run_unfused ~machine:Machine.convex ~nprocs:1 p in
  let without =
    Exec.run_unfused
      ~machine:{ Machine.convex with Machine.tlb = None }
      ~nprocs:1 p
  in
  check bool "tlb penalty costs cycles" true
    (with_tlb.Exec.cycles > without.Exec.cycles)

let test_tlb_fully_assoc_small_set () =
  (* a working set within the TLB reach stops missing after warmup *)
  let cfg = { Cache.capacity = 8 * 4096; line = 4096; assoc = 8 } in
  let t = Cache.create cfg in
  for _pass = 1 to 4 do
    for page = 0 to 7 do
      ignore (Cache.access t (page * 4096))
    done
  done;
  check int "only cold misses" 8 (Cache.stats t).Cache.s_misses

let suite =
  [
    ("interp steps progress", `Quick, test_interp_steps_progress);
    ("schedule steps equivalence", `Quick, test_schedule_steps_equivalence);
    ("exec steps semantics", `Quick, test_exec_steps_semantics);
    ("steps amortize cold misses", `Quick, test_steps_amortize_cold_misses);
    ("steps barrier accounting", `Quick, test_steps_barrier_accounting);
    ("tlb counts", `Quick, test_tlb_counts);
    ("tlb disabled", `Quick, test_tlb_disabled);
    ("tlb penalty slows", `Quick, test_tlb_penalty_slows);
    ("tlb fully-assoc small set", `Quick, test_tlb_fully_assoc_small_set);
  ]
