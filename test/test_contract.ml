(* Tests for array contraction after direct fusion. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Contract = Lf_core.Contract

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* A producer/consumer chain with all-zero distances: t1 and t2 are
   temporaries, y is live-out. *)
let chain_zero () = Tutil.chain_program ~lo:2 ~hi:40 [ [ 0 ]; [ 0 ]; [ 0 ] ]

(* 2-D version with inner offsets zero. *)
let chain2d () =
  let i = Ir.av "i" and j = Ir.av "j" in
  let nest nid out src =
    {
      Ir.nid;
      levels =
        [
          { Ir.lvar = "i"; lo = 1; hi = 30; parallel = true };
          { Ir.lvar = "j"; lo = 1; hi = 22; parallel = true };
        ];
      body =
        [
          Ir.stmt (Ir.aref out [ i; j ])
            (Ir.Bin (Add, Ir.Read (Ir.aref src [ i; j ]), Ir.Const 1.0));
        ];
    }
  in
  let p =
    {
      Ir.pname = "chain2d";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ 32; 24 ] })
          [ "x"; "t1"; "t2"; "y" ];
      nests = [ nest "L1" "t1" "x"; nest "L2" "t2" "t1"; nest "L3" "y" "t2" ];
    }
  in
  Ir.validate p;
  p

let test_direct_fusable () =
  (match Contract.direct_fusable (chain_zero ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (* ll18 has loop-carried deps: not directly fusable *)
  (match Contract.direct_fusable (Lf_kernels.Ll18.program ~n:16 ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection")

let test_analysis () =
  let p = chain2d () in
  match Contract.analyse ~live_out:[ "y" ] p with
  | Error m -> Alcotest.fail m
  | Ok a ->
    check bool "t1 t2 contractible" true
      (List.sort compare a.Contract.contractible = [ "t1"; "t2" ]);
    check bool "memory shrinks" true
      (a.Contract.bytes_after < a.Contract.bytes_before);
    (* two 32x24 arrays contract to 32 cells each *)
    check int "saved bytes" ((2 * 32 * 24 * 8) - (2 * 32 * 8))
      (a.Contract.bytes_before - a.Contract.bytes_after)

let test_contract_semantics_liveout () =
  let p = chain2d () in
  match Contract.contract ~live_out:[ "y" ] p with
  | Error m -> Alcotest.fail m
  | Ok (q, _) ->
    check int "single fused nest" 1 (List.length q.Ir.nests);
    let ref_st = Interp.run p and got = Interp.run q in
    check bool "y bit-identical" true
      (Interp.find_array ref_st "y" = Interp.find_array got "y");
    (* the temporary really is tiny now *)
    let d = Ir.find_decl q "t1" in
    check bool "t1 contracted" true (d.Ir.extents = [ 32; 1 ])

let test_contract_1d () =
  let p = chain_zero () in
  match Contract.contract ~live_out:[ "a3" ] p with
  | Error m -> Alcotest.fail m
  | Ok (q, a) ->
    check bool "a1 a2 contracted" true
      (List.sort compare a.Contract.contractible = [ "a1"; "a2" ]);
    let ref_st = Interp.run p and got = Interp.run q in
    check bool "live-out equal" true
      (Interp.find_array ref_st "a3" = Interp.find_array got "a3")

let test_contract_parallel_safe () =
  (* the contracted fused nest can still be block-parallelized over the
     fused dimension *)
  let p = chain2d () in
  match Contract.contract ~live_out:[ "y" ] p with
  | Error m -> Alcotest.fail m
  | Ok (q, _) ->
    let sched = Lf_core.Schedule.unfused ~nprocs:3 q in
    let st =
      Lf_core.Schedule.execute ~order:Lf_core.Schedule.Reversed sched
    in
    let ref_st = Interp.run p in
    check bool "parallel y equal" true
      (Interp.find_array ref_st "y" = Interp.find_array st "y")

let test_nonzero_distance_rejected () =
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ 1 ] ] in
  (match Contract.contract ~live_out:[ "a2" ] p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection")

let test_live_out_everything_no_contraction () =
  let p = chain_zero () in
  match Contract.analyse ~live_out:[ "a1"; "a2"; "a3" ] p with
  | Error m -> Alcotest.fail m
  | Ok a ->
    check int "nothing contractible" 0 (List.length a.Contract.contractible);
    check int "no savings" a.Contract.bytes_before a.Contract.bytes_after

let suite =
  [
    ("direct fusable", `Quick, test_direct_fusable);
    ("analysis", `Quick, test_analysis);
    ("contract semantics (live-out)", `Quick, test_contract_semantics_liveout);
    ("contract 1-D", `Quick, test_contract_1d);
    ("contract parallel safe", `Quick, test_contract_parallel_safe);
    ("non-zero distance rejected", `Quick, test_nonzero_distance_rejected);
    ("all live-out: no contraction", `Quick, test_live_out_everything_no_contraction);
  ]
