(* Tests for the classical fusion-legality classifier: the prior
   techniques reject exactly what shift-and-peel handles. *)

module Legality = Lf_core.Legality

let check = Alcotest.check
let bool = Alcotest.bool

let is_preventing = function
  | Legality.Fusion_preventing _ -> true
  | _ -> false

let is_serial = function Legality.Fusable_serial _ -> true | _ -> false

let test_fig3_fusion_preventing () =
  (* Figure 3: a[i] written, read at i+1 and i-1: backward dep *)
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ 1; -1 ] ] in
  check bool "fusion-preventing" true (is_preventing (Legality.classify p))

let test_fig4_serializing () =
  (* Figure 4: a[i] written, read at i and i-1: forward dep only *)
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ 0; -1 ] ] in
  check bool "legal but serial" true (is_serial (Legality.classify p))

let test_clean_fusion () =
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ 0 ]; [ 0 ] ] in
  check bool "parallel fusable" true
    (Legality.classify p = Legality.Fusable_parallel)

let test_paper_kernels_rejected_by_prior_work () =
  (* all three kernels carry fusion-preventing dependences: prior fusion
     techniques reject them, shift-and-peel handles them *)
  List.iter
    (fun p ->
      check bool
        (p.Lf_ir.Ir.pname ^ " rejected by plain fusion")
        true
        (is_preventing (Legality.classify p));
      check bool
        (p.Lf_ir.Ir.pname ^ " accepted by shift-and-peel")
        true
        (Legality.shift_and_peel_applicable p = Ok ()))
    [
      Lf_kernels.Ll18.program ~n:24 ();
      Lf_kernels.Calc.program ~n:24 ();
      Lf_kernels.Filter.program ~rows:24 ~cols:24 ();
    ]

let test_jacobi_2d_classification () =
  let p = Lf_kernels.Jacobi.program ~n:16 () in
  check bool "jacobi prevented at depth 2" true
    (is_preventing (Legality.classify ~depth:2 p))

let test_not_analyzable () =
  let i = Lf_ir.Ir.av "i" in
  let p =
    {
      Lf_ir.Ir.pname = "nu";
      decls =
        [
          { Lf_ir.Ir.aname = "a"; extents = [ 64 ] };
          { Lf_ir.Ir.aname = "b"; extents = [ 64 ] };
        ];
      nests =
        [
          {
            Lf_ir.Ir.nid = "L1";
            levels =
              [ { Lf_ir.Ir.lvar = "i"; lo = 0; hi = 20; parallel = true } ];
            body =
              [
                Lf_ir.Ir.stmt
                  (Lf_ir.Ir.aref "a" [ Lf_ir.Ir.affine [ (2, "i") ] ])
                  (Lf_ir.Ir.Const 1.0);
              ];
          };
          {
            Lf_ir.Ir.nid = "L2";
            levels =
              [ { Lf_ir.Ir.lvar = "i"; lo = 0; hi = 20; parallel = true } ];
            body =
              [
                Lf_ir.Ir.stmt (Lf_ir.Ir.aref "b" [ i ])
                  (Lf_ir.Ir.Read (Lf_ir.Ir.aref "a" [ i ]));
              ];
          };
        ];
    }
  in
  (match Legality.classify p with
  | Legality.Not_analyzable _ -> ()
  | v -> Alcotest.failf "expected Not_analyzable, got %s"
           (Legality.verdict_to_string v))

let test_serial_nest_rejected_for_sp () =
  let i o = Lf_ir.Ir.av ~c:o "i" in
  let p =
    {
      Lf_ir.Ir.pname = "serial";
      decls = [ { Lf_ir.Ir.aname = "a"; extents = [ 16 ] } ];
      nests =
        [
          {
            Lf_ir.Ir.nid = "L";
            levels =
              [ { Lf_ir.Ir.lvar = "i"; lo = 1; hi = 14; parallel = true } ];
            body =
              [
                Lf_ir.Ir.stmt
                  (Lf_ir.Ir.aref "a" [ i 0 ])
                  (Lf_ir.Ir.Read (Lf_ir.Ir.aref "a" [ i (-1) ]));
              ];
          };
        ];
    }
  in
  check bool "shift-and-peel requires doall nests" true
    (Legality.shift_and_peel_applicable p <> Ok ())

let suite =
  [
    ("figure 3: fusion-preventing", `Quick, test_fig3_fusion_preventing);
    ("figure 4: serializing", `Quick, test_fig4_serializing);
    ("clean fusion", `Quick, test_clean_fusion);
    ("kernels: prior work rejects, s&p accepts", `Quick,
     test_paper_kernels_rejected_by_prior_work);
    ("jacobi depth-2", `Quick, test_jacobi_2d_classification);
    ("not analyzable", `Quick, test_not_analyzable);
    ("serial nest rejected", `Quick, test_serial_nest_rejected_for_sp);
  ]
