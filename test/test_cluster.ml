(* Tests for fusion clustering of mixed loop sequences. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Cluster = Lf_core.Cluster
module Schedule = Lf_core.Schedule

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* A mixed sequence: two fusable stencil nests, a non-uniform nest
   (indirect-style subscript 2i), then two more fusable nests. *)
let mixed_program () =
  let i o = Ir.av ~c:o "i" in
  let n = 64 in
  let nest nid out rhs ~parallel =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 2; hi = 29; parallel } ];
      body = [ Ir.stmt (Ir.aref out [ i 0 ]) rhs ];
    }
  in
  let r name o = Ir.Read (Ir.aref name [ i o ]) in
  let p =
    {
      Ir.pname = "mixed";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ n ] })
          [ "a"; "b"; "c"; "g"; "u"; "v"; "w" ];
      nests =
        [
          nest "L1" "b" (r "a" 0) ~parallel:true;
          nest "L2" "c" (Ir.Bin (Add, r "b" 1, r "b" (-1))) ~parallel:true;
          (* non-uniform: writes g[2i] reading c *)
          {
            Ir.nid = "L3";
            levels = [ { Ir.lvar = "i"; lo = 2; hi = 29; parallel = true } ];
            body =
              [
                Ir.stmt
                  (Ir.aref "g" [ Ir.affine [ (2, "i") ] ])
                  (r "c" 0);
              ];
          };
          nest "L4" "u" (r "g" 0) ~parallel:true;
          nest "L5" "v" (Ir.Bin (Add, r "u" 1, r "u" (-1))) ~parallel:true;
        ];
    }
  in
  Ir.validate p;
  p

let test_mixed_groups () =
  let p = mixed_program () in
  let gs = Cluster.groups p in
  (* expected: [L1;L2] fused, [L3] alone, [L4;L5] fused *)
  check int "three groups" 3 (List.length gs);
  let g1 = List.nth gs 0 and g2 = List.nth gs 1 and g3 = List.nth gs 2 in
  check bool "group1 = L1,L2 fused" true
    (g1.Cluster.start = 0 && g1.Cluster.members = 2 && g1.Cluster.fused);
  check bool "group2 = L3 alone" true
    (g2.Cluster.start = 2 && g2.Cluster.members = 1 && not g2.Cluster.fused);
  check bool "group3 = L4,L5 fused" true
    (g3.Cluster.start = 3 && g3.Cluster.members = 2 && g3.Cluster.fused)

let test_mixed_schedule_semantics () =
  let p = mixed_program () in
  let gs = Cluster.groups p in
  List.iter
    (fun nprocs ->
      let sched = Cluster.schedule ~nprocs ~strip:4 p gs in
      List.iter
        (fun order ->
          let st = Schedule.execute ~order sched in
          check bool
            (Printf.sprintf "mixed semantics P=%d" nprocs)
            true
            (Interp.equal (Interp.run p) st))
        [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ])
    [ 1; 2; 4 ]

let test_all_fusable_single_group () =
  let p = Lf_kernels.Filter.program ~rows:32 ~cols:16 () in
  let gs = Cluster.groups p in
  check int "one group" 1 (List.length gs);
  check bool "covers all and fused" true
    (let g = List.hd gs in
     g.Cluster.members = 10 && g.Cluster.fused)

let test_min_members () =
  (* a single fusable nest: not fused (no partner) *)
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ] ] in
  let gs = Cluster.groups p in
  check bool "single nest unfused" true
    (List.length gs = 1 && not (List.hd gs).Cluster.fused)

let test_profitability_veto () =
  let p = Lf_kernels.Ll18.program ~n:24 () in
  let gs = Cluster.groups ~profitable:(fun _ -> false) p in
  check bool "legal but vetoed" true
    (List.for_all (fun g -> not g.Cluster.fused) gs);
  let gs' = Cluster.groups ~profitable:(fun _ -> true) p in
  check bool "accepted" true
    (List.exists (fun g -> g.Cluster.fused) gs')

let test_serial_nest_breaks_group () =
  let i o = Ir.av ~c:o "i" in
  let n = 48 in
  let nest nid out rhs ~parallel =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = 30; parallel } ];
      body = [ Ir.stmt (Ir.aref out [ i 0 ]) rhs ];
    }
  in
  let r name o = Ir.Read (Ir.aref name [ i o ]) in
  let p =
    {
      Ir.pname = "with_serial";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ n ] })
          [ "a"; "b"; "c"; "d" ];
      nests =
        [
          nest "L1" "b" (r "a" 0) ~parallel:true;
          (* a recurrence: not a doall *)
          nest "L2" "c" (r "c" (-1)) ~parallel:false;
          nest "L3" "d" (r "b" 1) ~parallel:true;
        ];
    }
  in
  Ir.validate p;
  let gs = Cluster.groups p in
  check int "three groups" 3 (List.length gs);
  check bool "middle unfused" true (not (List.nth gs 1).Cluster.fused);
  (* the serial nest still executes correctly (serially per block...
     it runs as one unfused phase over the whole range on one box per
     processor; a non-doall nest must occupy a single block) *)
  let sched = Cluster.schedule ~nprocs:1 ~strip:4 p gs in
  check bool "semantics" true
    (Interp.equal (Interp.run p) (Schedule.execute sched))

let test_cluster_then_simulate () =
  let p = mixed_program () in
  let gs = Cluster.groups p in
  let sched = Cluster.schedule ~nprocs:2 ~strip:8 p gs in
  let r = Lf_machine.Exec.run ~machine:Lf_machine.Machine.convex sched in
  check bool "simulated semantics" true
    (Interp.equal (Interp.run p) r.Lf_machine.Exec.store)

let suite =
  [
    ("mixed sequence groups", `Quick, test_mixed_groups);
    ("mixed schedule semantics", `Quick, test_mixed_schedule_semantics);
    ("all fusable: one group", `Quick, test_all_fusable_single_group);
    ("min members", `Quick, test_min_members);
    ("profitability veto", `Quick, test_profitability_veto);
    ("serial nest breaks group", `Quick, test_serial_nest_breaks_group);
    ("cluster then simulate", `Quick, test_cluster_then_simulate);
  ]
