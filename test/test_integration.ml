(* Integration tests: the whole pipeline (analysis -> derivation ->
   fusion -> layout -> simulation) on the paper's kernels, checking the
   paper's qualitative claims end-to-end at reduced sizes. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Derive = Lf_core.Derive
module Partition = Lf_core.Partition
module Alignrep = Lf_core.Alignrep
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec

let check = Alcotest.check
let bool = Alcotest.bool

let partitioned m (p : Ir.program) =
  Partition.cache_partitioned
    ~cache:{
      Partition.capacity = m.Machine.cache.Lf_cache.Cache.capacity;
      line = m.Machine.cache.Lf_cache.Cache.line;
      assoc = m.Machine.cache.Lf_cache.Cache.assoc;
    }
    p.Ir.decls

(* Full pipeline: every kernel, simulated fused on 4 processors, equals
   the reference interpreter and beats the unfused version in misses
   when the data exceeds the caches. *)
let test_pipeline_kernels () =
  let machine = Machine.ksr2 in
  List.iter
    (fun (p, strip) ->
      let layout = partitioned machine p in
      let f = Exec.run_fused ~layout ~machine ~nprocs:4 ~strip p in
      check bool
        (p.Ir.pname ^ " semantics")
        true
        (Interp.equal (Interp.run p) f.Exec.store);
      let u = Exec.run_unfused ~layout ~machine ~nprocs:4 p in
      check bool
        (p.Ir.pname ^ " fewer misses")
        true
        (f.Exec.total_misses < u.Exec.total_misses))
    [
      (Lf_kernels.Ll18.program ~n:128 (), 6);
      (Lf_kernels.Calc.program ~n:256 (), 10);
      (Lf_kernels.Filter.program ~rows:256 ~cols:128 (), 5);
    ]

(* Figure 22's crossover claim: with few processors fusion wins; when
   each processor's share fits in cache, the unfused version catches
   up.  128x128 x 9 arrays = 1.1 MB; KSR2 caches are 256 KB. *)
let test_crossover_exists () =
  let machine = Machine.ksr2 in
  let p = Lf_kernels.Calc.program ~n:128 () in
  let layout = partitioned machine p in
  let gain nprocs =
    let u = Exec.run_unfused ~layout ~machine ~nprocs p in
    let f = Exec.run_fused ~layout ~machine ~nprocs ~strip:10 p in
    u.Exec.cycles /. f.Exec.cycles
  in
  let g1 = gain 1 and g8 = gain 8 in
  check bool "fusion wins on 1 proc" true (g1 > 1.02);
  check bool "benefit shrinks with procs" true (g8 < g1)

(* Figure 20's claim: cache partitioning minimises misses compared to
   pad-0 placement for the fused loop. *)
let test_partitioning_minimises () =
  let machine = Machine.convex in
  let p = Lf_kernels.Ll18.program ~n:128 () in
  let strip = 8 in
  let miss layout =
    (Exec.run_fused ~layout ~machine ~nprocs:4 ~strip p).Exec.total_misses
  in
  let part = miss (partitioned machine p) in
  check bool "beats pad 0" true (part < miss (Partition.padded ~pad:0 p.Ir.decls));
  (* and is no worse than a small sample of paddings *)
  List.iter
    (fun pad ->
      check bool
        (Printf.sprintf "<= pad %d" pad)
        true
        (part <= miss (Partition.padded ~pad p.Ir.decls)))
    [ 1; 2; 5 ]

(* Figure 26's claim: shift-and-peel beats alignment+replication. *)
let test_peeling_beats_alignrep () =
  let machine = Machine.convex in
  let p = Lf_kernels.Ll18.program ~n:96 () in
  match Alignrep.transform p with
  | Error m -> Alcotest.fail m
  | Ok r ->
    let f =
      Exec.run_fused
        ~layout:(partitioned machine p)
        ~machine ~nprocs:4 ~strip:8 p
    in
    let sched = Alignrep.schedule ~nprocs:4 ~strip:8 r in
    let a =
      Exec.run ~layout:(partitioned machine r.Alignrep.prog) ~machine sched
    in
    check bool "alignrep result correct" true
      (List.for_all
         (fun (d : Ir.decl) ->
           Interp.find_array f.Exec.store d.Ir.aname
           = Interp.find_array a.Exec.store d.Ir.aname)
         p.Ir.decls);
    check bool "peeling faster" true (f.Exec.cycles < a.Exec.cycles)

(* Strip-mined fusion at the partition-derived strip size is at least
   as good as a far-too-large strip (the paper's strip-size rule). *)
let test_strip_size_rule () =
  let machine = Machine.convex in
  let p = Lf_kernels.Ll18.program ~n:256 () in
  let layout = partitioned machine p in
  let miss strip =
    (Exec.run_fused ~layout ~machine ~nprocs:2 ~strip p).Exec.total_misses
  in
  let narrays = List.length p.Ir.decls in
  let good =
    Partition.max_strip
      ~cache:{ Partition.capacity = 1024 * 1024; line = 64; assoc = 1 }
      ~narrays ~row_elems:256 ~rows_per_iter:1 ()
  in
  check bool "partition-sized strip no worse" true
    (miss (max 2 (good - 2)) <= miss 200)

(* The emitted code and the executable schedule agree on the worked
   example: execute the Figure 12 semantics via the schedule and check
   the tails are placed where the figure says. *)
let test_schedule_matches_figure12 () =
  let p = Tutil.chain_program ~lo:2 ~hi:41 [ [ 0 ]; [ 1; -1 ]; [ 1; -1 ] ] in
  let d = Derive.of_program ~depth:1 p in
  let sched = Schedule.fused ~nprocs:2 ~strip:8 ~derive:d p in
  (* fused positions [2, 43]; block 0 covers [2, 22] (iend = 22).  Per
     Figure 12 its peeled phase covers c (shift 1, peel 1) over
     [iend, iend+1] = [22, 23] and d (shift 2, peel 2) over
     [iend-1, iend+2] = [21, 24]. *)
  let peeled = List.nth sched.Schedule.phases 1 in
  let boxes = peeled.(0) in
  let range_of nest =
    List.filter_map
      (fun (b : Schedule.box) ->
        if b.Schedule.nest = nest then Some b.Schedule.ranges.(0) else None)
      boxes
  in
  check bool "c tail [22,23]" true (range_of 1 = [ (22, 23) ]);
  check bool "d tail [21,24]" true (range_of 2 = [ (21, 24) ])

(* Unfused vs fused barrier accounting matches the paper's claim that
   fusion eliminates the synchronization between nests. *)
let test_fusion_saves_barriers () =
  let p = Lf_kernels.Filter.program ~rows:48 ~cols:16 () in
  let m = Machine.ksr2 in
  let u = Exec.run_unfused ~machine:m ~nprocs:4 p in
  let f = Exec.run_fused ~machine:m ~nprocs:4 ~strip:8 p in
  (* 10 nests: 9 barriers unfused vs 1 fused *)
  check bool "9x barrier cost vs 1x" true
    (u.Exec.barrier_cycles = 9.0 *. f.Exec.barrier_cycles)

let suite =
  [
    ("pipeline on kernels", `Slow, test_pipeline_kernels);
    ("crossover exists", `Slow, test_crossover_exists);
    ("partitioning minimises misses", `Slow, test_partitioning_minimises);
    ("peeling beats align/replicate", `Slow, test_peeling_beats_alignrep);
    ("strip size rule", `Slow, test_strip_size_rule);
    ("schedule matches Figure 12", `Quick, test_schedule_matches_figure12);
    ("fusion saves barriers", `Quick, test_fusion_saves_barriers);
  ]
