(* Tests for the shift/peel derivation (Figure 8 algorithm), including
   the paper's published values (Table 2, Figures 9/10). *)

module Derive = Lf_core.Derive
module Dep = Lf_dep.Dep

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let shifts0 d = Array.map (fun r -> r.(0)) d.Derive.shift
let peels0 d = Array.map (fun r -> r.(0)) d.Derive.peel

let derive1 p = Derive.of_program ~depth:1 p

let test_fig9_example () =
  let p = Tutil.chain_program ~lo:2 ~hi:30 [ [ 0 ]; [ 1; -1 ]; [ 1; -1 ] ] in
  let d = derive1 p in
  check bool "shifts 0,1,2" true (shifts0 d = [| 0; 1; 2 |]);
  check bool "peels 0,1,2" true (peels0 d = [| 0; 1; 2 |])

let test_table2_ll18 () =
  let d = derive1 (Lf_kernels.Ll18.program ~n:32 ()) in
  check bool "shifts" true (shifts0 d = Lf_kernels.Ll18.expected_shifts);
  check bool "peels" true (peels0 d = Lf_kernels.Ll18.expected_peels)

let test_table2_calc () =
  let d = derive1 (Lf_kernels.Calc.program ~n:32 ()) in
  check bool "shifts" true (shifts0 d = Lf_kernels.Calc.expected_shifts);
  check bool "peels" true (peels0 d = Lf_kernels.Calc.expected_peels)

let test_table2_filter () =
  let d = derive1 (Lf_kernels.Filter.program ~rows:40 ~cols:24 ()) in
  check bool "shifts" true (shifts0 d = Lf_kernels.Filter.expected_shifts);
  check bool "peels" true (peels0 d = Lf_kernels.Filter.expected_peels)

let test_jacobi_2d () =
  let d = Derive.of_program ~depth:2 (Lf_kernels.Jacobi.program ~n:16 ()) in
  check bool "shift (1,1)" true (d.Derive.shift = Lf_kernels.Jacobi.expected_shifts);
  check bool "peel (1,1)" true (d.Derive.peel = Lf_kernels.Jacobi.expected_peels)

let test_no_deps_no_shift () =
  (* two independent chains: a0->a1 and nothing else *)
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ 0 ]; [ 0 ] ] in
  let d = derive1 p in
  check bool "all zero" true
    (shifts0 d = [| 0; 0; 0 |] && peels0 d = [| 0; 0; 0 |])

let test_forward_only_peels () =
  let p = Tutil.chain_program ~lo:3 ~hi:20 [ [ 0 ]; [ -2 ]; [ -1 ] ] in
  let d = derive1 p in
  check bool "no shifts" true (shifts0 d = [| 0; 0; 0 |]);
  check bool "peels accumulate 0,2,3" true (peels0 d = [| 0; 2; 3 |])

let test_backward_only_shifts () =
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ 2 ]; [ 1 ] ] in
  let d = derive1 p in
  check bool "shifts accumulate 0,2,3" true (shifts0 d = [| 0; 2; 3 |]);
  check bool "no peels" true (peels0 d = [| 0; 0; 0 |])

let test_min_over_multiedges () =
  (* distances {-1,-3}: shift must use the minimum (-3) *)
  let p = Tutil.chain_program ~lo:4 ~hi:20 [ [ 0 ]; [ 1; 3 ] ] in
  let d = derive1 p in
  check int "shift 3" 3 (shifts0 d).(1)

let test_max_over_multiedges () =
  let p = Tutil.chain_program ~lo:4 ~hi:20 [ [ 0 ]; [ -1; -3 ] ] in
  let d = derive1 p in
  check int "peel 3" 3 (peels0 d).(1)

let test_zero_edges_propagate () =
  (* L2 shifted by 1; L3 reads L2's output at distance 0: shift must
     propagate to L3 *)
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ 1 ]; [ 0 ] ] in
  let d = derive1 p in
  check bool "shift propagates" true (shifts0 d = [| 0; 1; 1 |])

let test_monotone_along_chain () =
  let p =
    Tutil.chain_program ~lo:4 ~hi:40
      [ [ 0 ]; [ 1; -1 ]; [ 2; -2 ]; [ 0 ]; [ 1; -1 ] ]
  in
  let d = derive1 p in
  let s = shifts0 d and q = peels0 d in
  for k = 0 to Array.length s - 2 do
    check bool "shift monotone" true (s.(k) <= s.(k + 1));
    check bool "peel monotone" true (q.(k) <= q.(k + 1))
  done

let test_start_peel_and_threshold () =
  let d = derive1 (Lf_kernels.Ll18.program ~n:32 ()) in
  check int "L2 start peel = shift+peel" 1 (Derive.start_peel d ~nest:1 ~dim:0);
  check int "L3 start peel" 3 (Derive.start_peel d ~nest:2 ~dim:0);
  check int "threshold = max" 3 (Derive.threshold d ~dim:0);
  check int "max shift" 2 (Derive.max_shift d);
  check int "max peel" 1 (Derive.max_peel d)

let test_not_applicable_on_nonuniform () =
  let p =
    let i = Lf_ir.Ir.av "i" in
    {
      Lf_ir.Ir.pname = "nu";
      decls = [ { Lf_ir.Ir.aname = "a"; extents = [ 64 ] };
                { Lf_ir.Ir.aname = "b"; extents = [ 64 ] } ];
      nests =
        [
          {
            Lf_ir.Ir.nid = "L1";
            levels = [ { Lf_ir.Ir.lvar = "i"; lo = 0; hi = 20; parallel = true } ];
            body =
              [ Lf_ir.Ir.stmt (Lf_ir.Ir.aref "a" [ Lf_ir.Ir.affine [ (2, "i") ] ])
                  (Lf_ir.Ir.Const 1.0) ];
          };
          {
            Lf_ir.Ir.nid = "L2";
            levels = [ { Lf_ir.Ir.lvar = "i"; lo = 0; hi = 20; parallel = true } ];
            body =
              [ Lf_ir.Ir.stmt (Lf_ir.Ir.aref "b" [ i ])
                  (Lf_ir.Ir.Read (Lf_ir.Ir.aref "a" [ i ])) ];
          };
        ];
    }
  in
  Lf_ir.Ir.validate p;
  (match Derive.of_program ~depth:1 p with
  | exception Derive.Not_applicable _ -> ()
  | _ -> Alcotest.fail "expected Not_applicable")

let test_spem_sequences () =
  (* every spem sequence must derive max shift 1 / max peel 2 *)
  let app = Lf_kernels.Apps.spem ~d0:24 ~d1:12 ~d2:12 () in
  List.iter
    (fun p ->
      let d = derive1 p in
      check bool "shift <= 1" true (Derive.max_shift d <= 1);
      check int "peel 2" 2 (Derive.max_peel d))
    app.Lf_kernels.Apps.sequences

let test_tomcatv_derivation () =
  let app = Lf_kernels.Apps.tomcatv ~n:33 () in
  let p = List.hd app.Lf_kernels.Apps.sequences in
  let d = derive1 p in
  check int "max shift 1" 1 (Derive.max_shift d);
  check int "max peel 1" 1 (Derive.max_peel d)

let suite =
  [
    ("figure 9/10 example", `Quick, test_fig9_example);
    ("table 2: LL18", `Quick, test_table2_ll18);
    ("table 2: calc", `Quick, test_table2_calc);
    ("table 2: filter", `Quick, test_table2_filter);
    ("jacobi 2-D", `Quick, test_jacobi_2d);
    ("no deps no shift", `Quick, test_no_deps_no_shift);
    ("forward-only peels", `Quick, test_forward_only_peels);
    ("backward-only shifts", `Quick, test_backward_only_shifts);
    ("min over multi-edges", `Quick, test_min_over_multiedges);
    ("max over multi-edges", `Quick, test_max_over_multiedges);
    ("zero edges propagate", `Quick, test_zero_edges_propagate);
    ("monotone along chain", `Quick, test_monotone_along_chain);
    ("start peel and threshold", `Quick, test_start_peel_and_threshold);
    ("not applicable on non-uniform", `Quick, test_not_applicable_on_nonuniform);
    ("spem sequences 1/2", `Quick, test_spem_sequences);
    ("tomcatv 1/1", `Quick, test_tomcatv_derivation);
  ]
