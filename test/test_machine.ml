(* Tests for the SSMM simulator: cost model, semantics preservation
   under simulation, and the locality phenomena the paper relies on. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_remote_fraction () =
  check (Alcotest.float 1e-9) "within hypernode" 0.0
    (Machine.remote_fraction Machine.convex ~nprocs:8);
  check (Alcotest.float 1e-9) "two hypernodes" 0.5
    (Machine.remote_fraction Machine.convex ~nprocs:16);
  check bool "ksr2 local below 32" true
    (Machine.remote_fraction Machine.ksr2 ~nprocs:32 = 0.0);
  check bool "ksr2 remote at 56" true
    (Machine.remote_fraction Machine.ksr2 ~nprocs:56 > 0.0)

let test_miss_penalty_monotone () =
  let p8 = Machine.miss_penalty Machine.convex ~nprocs:8 in
  let p16 = Machine.miss_penalty Machine.convex ~nprocs:16 in
  check bool "remote costs more" true (p16 > p8)

let test_barrier_cost () =
  let b1 = Machine.barrier_cost Machine.ksr2 ~nprocs:1 in
  let b56 = Machine.barrier_cost Machine.ksr2 ~nprocs:56 in
  check bool "grows with procs" true (b56 > b1)

(* Simulation must not change the computed values. *)
let test_simulation_preserves_semantics () =
  List.iter
    (fun p ->
      let reference = Interp.run p in
      let layout = Partition.contiguous p.Ir.decls in
      let r = Exec.run_fused ~layout ~machine:Machine.convex ~nprocs:3 ~strip:4 p in
      check bool "store equals reference" true
        (Interp.equal reference r.Exec.store))
    [
      Lf_kernels.Ll18.program ~n:24 ();
      Lf_kernels.Calc.program ~n:24 ();
      Lf_kernels.Jacobi.program ~n:24 ();
    ]

let test_refs_counted () =
  (* the tiny chain does 1 read + 1 write per iteration per nest *)
  let p = Tutil.chain_program ~lo:0 ~hi:9 [ [ 0 ]; [ 0 ] ] in
  let r = Exec.run_unfused ~machine:Machine.convex ~nprocs:1 p in
  check int "4 refs per iteration total" 40 r.Exec.total_refs

let test_cold_misses_match_footprint () =
  (* streaming a fresh array: cold misses = lines touched *)
  let p = Tutil.chain_program ~lo:0 ~hi:511 [ [ 0 ] ] in
  let r = Exec.run_unfused ~machine:Machine.convex ~nprocs:1 p in
  (* two arrays of 512 elements (read a0, write a1): 8B elements, 64B
     lines -> 64 lines each; a0/a1 have extent 515 (halo), same lines *)
  check bool "cold misses close to footprint" true
    (r.Exec.cold_misses >= 128 && r.Exec.cold_misses <= 132)

let test_fusion_reduces_misses_big_data () =
  let p = Lf_kernels.Calc.program ~n:128 () in
  let machine = Machine.ksr2 in
  let layout = Partition.cache_partitioned
      ~cache:{ Partition.capacity = machine.Machine.cache.Lf_cache.Cache.capacity;
               line = 64; assoc = 2 } p.Ir.decls in
  let u = Exec.run_unfused ~layout ~machine ~nprocs:1 p in
  let f = Exec.run_fused ~layout ~machine ~nprocs:1 ~strip:8 p in
  check bool "fused has fewer misses" true
    (f.Exec.total_misses < u.Exec.total_misses);
  check bool "fused is faster" true (f.Exec.cycles < u.Exec.cycles)

let test_partitioning_beats_contiguous () =
  (* power-of-two arrays in a direct-mapped cache: contiguous placement
     conflicts badly; partitioning eliminates the cross-conflicts *)
  let p = Lf_kernels.Ll18.program ~n:128 () in
  let machine = Machine.convex in
  let cache = { Partition.capacity = 1024 * 1024; line = 64; assoc = 1 } in
  let cont = Exec.run_fused ~layout:(Partition.padded ~pad:0 p.Ir.decls)
      ~machine ~nprocs:2 ~strip:8 p in
  let part = Exec.run_fused ~layout:(Partition.cache_partitioned ~cache p.Ir.decls)
      ~machine ~nprocs:2 ~strip:8 p in
  check bool "partitioned far fewer misses" true
    (part.Exec.total_misses * 2 < cont.Exec.total_misses)

let test_proc0_misses () =
  let p = Lf_kernels.Jacobi.program ~n:64 () in
  let r = Exec.run_unfused ~machine:Machine.convex ~nprocs:4 p in
  check int "proc0 field" r.Exec.proc_misses.(0) (Exec.proc0_misses r);
  check int "per-proc misses sum" r.Exec.total_misses
    (Array.fold_left ( + ) 0 r.Exec.proc_misses)

let test_barrier_count () =
  (* unfused K nests -> K-1 barriers; fused -> 1 *)
  let p = Lf_kernels.Ll18.program ~n:24 () in
  let m = Machine.convex in
  let u = Exec.run_unfused ~machine:m ~nprocs:2 p in
  let f = Exec.run_fused ~machine:m ~nprocs:2 ~strip:4 p in
  let bc = Machine.barrier_cost m ~nprocs:2 in
  check (Alcotest.float 1e-6) "unfused barriers" (2.0 *. bc) u.Exec.barrier_cycles;
  check (Alcotest.float 1e-6) "fused barrier" bc f.Exec.barrier_cycles

let test_speedup_helper () =
  check (Alcotest.float 1e-9) "speedup" 2.0
    (Exec.speedup ~baseline_cycles:10.0
       {
         Exec.cycles = 5.0;
         phase_cycles = [||];
         barrier_cycles = 0.0;
         total_refs = 0;
         total_misses = 0;
         cold_misses = 0;
         tlb_misses = 0;
         proc_misses = [||];
         store = Interp.create (Lf_kernels.Jacobi.program ~n:4 ());
       })

let test_padding_changes_misses () =
  (* padding perturbs the conflict pattern: at least two different pad
     values give different miss counts on the fused loop *)
  let p = Lf_kernels.Ll18.program ~n:64 () in
  let machine = Machine.convex in
  let run pad =
    (Exec.run_fused ~layout:(Partition.padded ~pad p.Ir.decls) ~machine
       ~nprocs:2 ~strip:8 p).Exec.total_misses
  in
  let ms = List.map run [ 0; 1; 3; 5 ] in
  check bool "padding matters" true
    (List.length (List.sort_uniq compare ms) > 1)

let test_parallel_execution_time_shrinks () =
  let p = Lf_kernels.Calc.program ~n:96 () in
  let layout = Partition.contiguous p.Ir.decls in
  let t1 = (Exec.run_unfused ~layout ~machine:Machine.ksr2 ~nprocs:1 p).Exec.cycles in
  let t4 = (Exec.run_unfused ~layout ~machine:Machine.ksr2 ~nprocs:4 p).Exec.cycles in
  check bool "4 procs faster than 1" true (t4 < t1);
  check bool "speedup at most 4x-ish" true (t1 /. t4 < 4.5)

let suite =
  [
    ("remote fraction", `Quick, test_remote_fraction);
    ("miss penalty monotone", `Quick, test_miss_penalty_monotone);
    ("barrier cost", `Quick, test_barrier_cost);
    ("simulation preserves semantics", `Quick, test_simulation_preserves_semantics);
    ("refs counted", `Quick, test_refs_counted);
    ("cold misses match footprint", `Quick, test_cold_misses_match_footprint);
    ("fusion reduces misses", `Quick, test_fusion_reduces_misses_big_data);
    ("partitioning beats contiguous", `Quick, test_partitioning_beats_contiguous);
    ("proc0 misses", `Quick, test_proc0_misses);
    ("barrier count", `Quick, test_barrier_count);
    ("speedup helper", `Quick, test_speedup_helper);
    ("padding changes misses", `Quick, test_padding_changes_misses);
    ("parallel time shrinks", `Quick, test_parallel_execution_time_shrinks);
  ]
