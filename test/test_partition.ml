(* Tests for memory layouts: contiguous, padded, and cache-partitioned
   (the greedy algorithm of Figure 19). *)

module Ir = Lf_ir.Ir
module Partition = Lf_core.Partition

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let decls extents names =
  List.map (fun a -> { Ir.aname = a; extents }) names

let convex = { Partition.capacity = 1024 * 1024; line = 64; assoc = 1 }
let ksr2 = { Partition.capacity = 256 * 1024; line = 64; assoc = 2 }

let test_contiguous_addresses () =
  let l = Partition.contiguous ~align:64 (decls [ 4; 8 ] [ "a"; "b" ]) in
  check int "a at 0" 0 (Partition.address l "a" [| 0; 0 |]);
  check int "row-major" ((2 * 8 * 8) + (3 * 8)) (Partition.address l "a" [| 2; 3 |]);
  (* a is 256 bytes; b starts at next 64-aligned address = 256 *)
  check int "b start aligned" 256 (Partition.address l "b" [| 0; 0 |])

let test_contiguous_alignment () =
  let l = Partition.contiguous ~align:128 (decls [ 3 ] [ "a"; "b" ]) in
  (* a = 24 bytes; b aligned to 128 *)
  check int "aligned start" 128 (Partition.address l "b" [| 0 |])

let test_padded_extents () =
  let l = Partition.padded ~pad:3 (decls [ 4; 8 ] [ "a" ]) in
  let p = Partition.find_placement l "a" in
  check bool "inner extent padded" true (p.Partition.aextents = [| 4; 11 |]);
  (* element (1,0) is 11 elements in, not 8 *)
  check int "padded stride" (11 * 8) (Partition.address l "a" [| 1; 0 |])

let test_padded_zero_is_contiguous_stride () =
  let l = Partition.padded ~pad:0 (decls [ 4; 8 ] [ "a" ]) in
  check int "stride unchanged" (8 * 8) (Partition.address l "a" [| 1; 0 |])

let test_padded_negative_rejected () =
  (match Partition.padded ~pad:(-1) (decls [ 4 ] [ "a" ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_partitioned_distinct_partitions () =
  (* nine 512x512 arrays on the Convex: all start addresses must map to
     distinct partitions of the cache *)
  let names = List.init 9 (fun i -> Printf.sprintf "a%d" i) in
  let l = Partition.cache_partitioned ~cache:convex (decls [ 512; 512 ] names) in
  let sp = Partition.partition_size ~cache:convex ~narrays:9 / convex.Partition.line
           * convex.Partition.line in
  let parts =
    List.map
      (fun a ->
        Partition.cache_map convex (Partition.address l a [| 0; 0 |]) / sp)
      names
  in
  check int "all distinct" 9 (List.length (List.sort_uniq compare parts))

let test_partitioned_exact_targets () =
  let names = List.init 4 (fun i -> Printf.sprintf "a%d" i) in
  let l = Partition.cache_partitioned ~cache:convex (decls [ 512; 512 ] names) in
  let sp = convex.Partition.capacity / 4 in
  List.iter
    (fun a ->
      let m = Partition.cache_map convex (Partition.address l a [| 0; 0 |]) in
      check int (a ^ " on a partition boundary") 0 (m mod sp))
    names

let test_partitioned_set_associative () =
  (* on a 2-way cache, pairs of arrays may share a set region *)
  let names = List.init 4 (fun i -> Printf.sprintf "a%d" i) in
  let l = Partition.cache_partitioned ~cache:ksr2 (decls [ 256; 256 ] names) in
  let span = Partition.cache_span ksr2 in
  let maps =
    List.map
      (fun a -> Partition.cache_map ksr2 (Partition.address l a [| 0; 0 |]))
      names
  in
  (* at most assoc arrays per set address *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let c = try Hashtbl.find tbl m with Not_found -> 0 in
      Hashtbl.replace tbl m (c + 1))
    maps;
  Hashtbl.iter
    (fun _ c -> check bool "within associativity" true (c <= ksr2.Partition.assoc))
    tbl;
  List.iter (fun m -> check bool "within span" true (m < span)) maps

let test_partition_gap_overhead_bounded () =
  (* each gap is smaller than one span, so overhead < narrays * span *)
  let names = List.init 6 (fun i -> Printf.sprintf "a%d" i) in
  let ds = decls [ 128; 128 ] names in
  let l = Partition.cache_partitioned ~cache:convex ds in
  let overhead = Partition.overhead_bytes l ds in
  check bool "overhead bounded" true
    (overhead >= 0 && overhead < 6 * Partition.cache_span convex)

let test_partitioned_no_overlap () =
  (* placements must not overlap in memory *)
  let names = List.init 9 (fun i -> Printf.sprintf "a%d" i) in
  let ds = decls [ 64; 64 ] names in
  let l = Partition.cache_partitioned ~cache:convex ds in
  let spans =
    List.map
      (fun a ->
        let p = Partition.find_placement l a in
        (p.Partition.start, p.Partition.start + Partition.array_bytes l p))
      names
    |> List.sort compare
  in
  let rec go = function
    | (_, e1) :: ((s2, _) :: _ as rest) ->
      check bool "no overlap" true (e1 <= s2);
      go rest
    | _ -> ()
  in
  go spans

let test_single_array () =
  let l = Partition.cache_partitioned ~cache:convex (decls [ 16 ] [ "only" ]) in
  check int "placed" 1 (List.length l.Partition.placements)

let test_empty_decls () =
  let l = Partition.cache_partitioned ~cache:convex [] in
  check int "empty" 0 l.Partition.total_bytes

let test_max_strip () =
  (* 1MB cache, 9 arrays, 512-element rows (4KB): partition 113KB ->
     about 28 rows *)
  let s =
    Partition.max_strip ~cache:convex ~narrays:9 ~row_elems:512
      ~rows_per_iter:1 ()
  in
  check bool "strip in expected range" true (s >= 20 && s <= 32)

let test_compatibility () =
  let r1 = Ir.aref "a" [ Ir.av ~c:1 "i"; Ir.av "j" ] in
  let r2 = Ir.aref "b" [ Ir.av ~c:(-1) "i"; Ir.av ~c:2 "j" ] in
  check bool "same linear part compatible" true (Partition.compatible_refs r1 r2);
  let r3 = Ir.aref "c" [ Ir.av "j"; Ir.av "i" ] in
  check bool "permuted not compatible" false (Partition.compatible_refs r1 r3)

let test_program_compatible () =
  check bool "ll18 compatible" true
    (Partition.program_compatible (Lf_kernels.Ll18.program ~n:16 ()));
  check bool "jacobi compatible" true
    (Partition.program_compatible (Lf_kernels.Jacobi.program ~n:16 ()))

let test_address_unknown_array () =
  let l = Partition.contiguous (decls [ 4 ] [ "a" ]) in
  (match Partition.address l "zz" [| 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let suite =
  [
    ("contiguous addresses", `Quick, test_contiguous_addresses);
    ("contiguous alignment", `Quick, test_contiguous_alignment);
    ("padded extents", `Quick, test_padded_extents);
    ("padded zero", `Quick, test_padded_zero_is_contiguous_stride);
    ("padded negative rejected", `Quick, test_padded_negative_rejected);
    ("partitioned: distinct partitions", `Quick, test_partitioned_distinct_partitions);
    ("partitioned: exact targets", `Quick, test_partitioned_exact_targets);
    ("partitioned: set-associative", `Quick, test_partitioned_set_associative);
    ("partitioned: gap overhead bounded", `Quick, test_partition_gap_overhead_bounded);
    ("partitioned: no overlap", `Quick, test_partitioned_no_overlap);
    ("single array", `Quick, test_single_array);
    ("empty decls", `Quick, test_empty_decls);
    ("max strip", `Quick, test_max_strip);
    ("reference compatibility", `Quick, test_compatibility);
    ("program compatibility", `Quick, test_program_compatible);
    ("address unknown array", `Quick, test_address_unknown_array);
  ]
