(* Tests for the fusion profitability estimate. *)

module Ir = Lf_ir.Ir
module Profit = Lf_core.Profit

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mb = 1024 * 1024

let test_estimate_fields () =
  let p = Lf_kernels.Ll18.program ~n:128 () in
  (* 9 arrays * 128*128*8 = 1.125 MB *)
  let e = Profit.estimate ~nprocs:1 ~cache_bytes:mb p in
  check int "data bytes" (9 * 128 * 128 * 8) e.Profit.data_bytes;
  check bool "does not fit in 1MB" true e.Profit.profitable

let test_not_profitable_when_fits () =
  let p = Lf_kernels.Ll18.program ~n:128 () in
  let e = Profit.estimate ~nprocs:8 ~cache_bytes:mb p in
  check bool "fits per proc" true e.Profit.fits_in_cache;
  check bool "not profitable" false e.Profit.profitable

let test_ratio () =
  let p = Lf_kernels.Ll18.program ~n:128 () in
  let e = Profit.estimate ~nprocs:2 ~cache_bytes:mb p in
  check bool "ratio per-proc/cache" true (abs_float (e.Profit.ratio -. 0.5625) < 0.01)

let test_max_profitable_procs () =
  let p = Lf_kernels.Ll18.program ~n:128 () in
  let maxp = Profit.max_profitable_procs ~cache_bytes:mb p in
  (* 1.125MB total / 1MB caches: only profitable on 1 processor *)
  check int "max procs" 1 maxp;
  let e = Profit.estimate ~nprocs:maxp ~cache_bytes:mb p in
  check bool "at max still profitable" true e.Profit.profitable;
  let e' = Profit.estimate ~nprocs:(maxp + 1) ~cache_bytes:mb p in
  check bool "beyond max not profitable" false e'.Profit.profitable

(* The boundary where per_proc_bytes = cache_bytes exactly: data of
   exactly k cache capacities fits on k processors (not profitable), so
   the largest profitable count is k-1. *)
let test_exact_multiple_boundary () =
  let cache_bytes = 64 * 1024 in
  let k = 4 in
  (* one array of exactly k * cache_bytes (elem_bytes = 8) *)
  let p =
    {
      Ir.pname = "boundary";
      decls = [ { Ir.aname = "a"; extents = [ k * cache_bytes / 8 ] } ];
      nests =
        [
          {
            Ir.nid = "L1";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = 7; parallel = true } ];
            body =
              [ Ir.stmt (Ir.aref "a" [ Ir.av "i" ])
                  (Ir.Read (Ir.aref "a" [ Ir.av "i" ])) ];
          };
        ];
    }
  in
  Ir.validate p;
  let maxp = Profit.max_profitable_procs ~cache_bytes p in
  check int "k caches of data -> k-1 procs" (k - 1) maxp;
  let at_k = Profit.estimate ~nprocs:k ~cache_bytes p in
  check bool "per-proc = cache exactly" true
    (at_k.Profit.per_proc_bytes = cache_bytes);
  check bool "equality boundary fits" true at_k.Profit.fits_in_cache;
  check bool "equality boundary not profitable" false at_k.Profit.profitable;
  let at_max = Profit.estimate ~nprocs:maxp ~cache_bytes p in
  check bool "one fewer proc profitable" true at_max.Profit.profitable

let test_degenerate_programs () =
  (* no arrays at all: zero data bytes, never profitable *)
  let empty = { Ir.pname = "empty"; decls = []; nests = [] } in
  check int "no arrays -> 0" 0 (Profit.max_profitable_procs ~cache_bytes:mb empty);
  let e = Profit.estimate ~nprocs:1 ~cache_bytes:mb empty in
  check int "zero data bytes" 0 e.Profit.data_bytes;
  check bool "zero data not profitable" false e.Profit.profitable;
  (* a degenerate cache size is a programming error, not "always wins" *)
  Alcotest.check_raises "cache_bytes = 0 rejected"
    (Invalid_argument "Profit.max_profitable_procs: cache_bytes must be positive")
    (fun () ->
      ignore (Profit.max_profitable_procs ~cache_bytes:0
                (Lf_kernels.Jacobi.program ~n:32 ())))

let test_small_data_never_profitable () =
  let p = Lf_kernels.Jacobi.program ~n:32 () in
  check int "0 procs" 0 (Profit.max_profitable_procs ~cache_bytes:mb p)

let test_more_arrays_more_profitable () =
  (* LL18 (9 arrays) stays profitable to more processors than calc (6) *)
  let cache_bytes = 256 * 1024 in
  let ll18 = Profit.max_profitable_procs ~cache_bytes
      (Lf_kernels.Ll18.program ~n:256 ()) in
  let calc = Profit.max_profitable_procs ~cache_bytes
      (Lf_kernels.Calc.program ~n:256 ()) in
  check bool "ll18 profitable longer" true (ll18 > calc)

let suite =
  [
    ("estimate fields", `Quick, test_estimate_fields);
    ("not profitable when fits", `Quick, test_not_profitable_when_fits);
    ("ratio", `Quick, test_ratio);
    ("max profitable procs", `Quick, test_max_profitable_procs);
    ("per-proc = cache boundary", `Quick, test_exact_multiple_boundary);
    ("degenerate programs", `Quick, test_degenerate_programs);
    ("small data never profitable", `Quick, test_small_data_never_profitable);
    ("more arrays, profitable longer", `Quick, test_more_arrays_more_profitable);
  ]
