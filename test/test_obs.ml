(* lf_obs: observer-effect freedom and counter-sum invariants.

   The whole value of the observability subsystem rests on the sink
   being passive: attaching one must not change the simulation by a
   single bit, and its counters must sum exactly to the aggregates
   [Exec.result] already reports.  Both are checked here on random
   stencil chains for both machine presets, plus directed tests for
   cross-array conflict attribution, the Chrome trace exporter, the
   calibration hook, and the lf_parallel named counters. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Cache = Lf_cache.Cache
module Obs = Lf_obs.Obs

open QCheck

(* ------------------------------------------------------------------ *)
(* Observer-effect property                                             *)

let gen_chain =
  let open Gen in
  let* nnests = int_range 2 4 in
  let* offsets =
    list_repeat nnests (list_size (int_range 1 3) (int_range (-2) 2))
  in
  let* hi = int_range 24 48 in
  return (Tutil.chain_program ~lo:3 ~hi offsets, offsets, hi)

let arb_chain_config =
  make
    ~print:(fun ((p, offs, hi), (nprocs, strip, fuse)) ->
      Printf.sprintf "%s offsets=%s hi=%d nprocs=%d strip=%d fused=%b"
        p.Ir.pname
        (String.concat ";"
           (List.map
              (fun l -> String.concat "," (List.map string_of_int l))
              offs))
        hi nprocs strip fuse)
    Gen.(pair gen_chain (triple (int_range 1 4) (int_range 2 10) bool))

(* Both runs use the same inputs; one carries a sink.  Everything the
   uninstrumented run reports must be bit-identical, and the sink's
   counter cube must sum exactly to the aggregates. *)
let check_observer_free ?(mode = Exec.Full) ~machine (p : Ir.program) sched =
  let layout =
    Partition.cache_partitioned
      ~cache:
        {
          Partition.capacity = machine.Machine.cache.Cache.capacity;
          line = machine.Machine.cache.Cache.line;
          assoc = machine.Machine.cache.Cache.assoc;
        }
      p.Ir.decls
  in
  let bare = Exec.run ~mode ~layout ~machine sched in
  let sink = Obs.create () in
  let obs = Exec.run ~sink ~mode ~layout ~machine sched in
  let t = Obs.totals sink in
  let ok_store = Interp.equal bare.Exec.store obs.Exec.store in
  let ok_result =
    bare.Exec.cycles = obs.Exec.cycles
    && bare.Exec.barrier_cycles = obs.Exec.barrier_cycles
    && bare.Exec.phase_cycles = obs.Exec.phase_cycles
    && bare.Exec.total_refs = obs.Exec.total_refs
    && bare.Exec.total_misses = obs.Exec.total_misses
    && bare.Exec.cold_misses = obs.Exec.cold_misses
    && bare.Exec.tlb_misses = obs.Exec.tlb_misses
    && bare.Exec.proc_misses = obs.Exec.proc_misses
  in
  let ok_sums =
    t.Obs.t_refs = obs.Exec.total_refs
    && t.Obs.t_misses = obs.Exec.total_misses
    && t.Obs.t_cold = obs.Exec.cold_misses
    && t.Obs.t_tlb = obs.Exec.tlb_misses
    && t.Obs.t_cross + t.Obs.t_self = t.Obs.t_misses - t.Obs.t_cold
    && Obs.proc_misses sink = obs.Exec.proc_misses
    && Obs.barrier_cycles sink = obs.Exec.barrier_cycles
  in
  if not ok_store then Test.fail_report "store differs with sink attached";
  if not ok_result then
    Test.fail_report "result aggregates differ with sink attached";
  if not ok_sums then
    Test.fail_report "sink counters do not sum to Exec.result aggregates";
  true

let prop_observer_free ?mode ?(tag = "") ~machine name =
  Test.make ~count:60
    ~name:
      ("sink is observer-effect-free and sums exactly (" ^ name ^ tag ^ ")")
    arb_chain_config
    (fun ((p, _, _), (nprocs, strip, fuse)) ->
      match
        if fuse then Schedule.fused ~nprocs ~strip p
        else Schedule.unfused ~nprocs p
      with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true (* more procs than iters *)
      | sched -> check_observer_free ?mode ~machine p sched)

(* ------------------------------------------------------------------ *)
(* Directed tests                                                       *)

(* A tiny machine with a 1 KB direct-mapped cache and no TLB: two 64 x
   8-byte arrays alias exactly, so an alternating access pattern is all
   cross-array conflicts. *)
let tiny_machine =
  {
    Machine.mname = "tiny";
    max_procs = 2;
    hypernode = 2;
    cache = { Cache.capacity = 1024; line = 64; assoc = 1 };
    tlb = None;
    cost =
      {
        Machine.op = 1.0;
        hit = 1.0;
        miss_local = 10.0;
        miss_remote = 0.0;
        barrier_base = 10.0;
        barrier_per_proc = 0.0;
        loop_overhead = 1.0;
        iter_overhead = 1.0;
        tlb_miss = 0.0;
      };
  }

(* c[i] = a[i] + b[i] over two cache-aliasing source arrays. *)
let aliasing_program n =
  let i = Ir.av "i" in
  {
    Ir.pname = "alias";
    decls =
      List.map (fun a -> { Ir.aname = a; extents = [ n ] }) [ "a"; "b"; "c" ];
    nests =
      [
        {
          Ir.nid = "L1";
          levels = [ { Ir.lvar = "i"; lo = 0; hi = n - 1; parallel = true } ];
          body =
            [
              Ir.stmt
                (Ir.aref "c" [ i ])
                (Ir.Bin
                   ( Ir.Add,
                     Ir.Read (Ir.aref "a" [ i ]),
                     Ir.Read (Ir.aref "b" [ i ]) ));
            ];
        };
      ];
  }

let run_alias layout_of =
  let p = aliasing_program 128 in
  let sink = Obs.create () in
  let r =
    Exec.run ~sink ~layout:(layout_of p) ~machine:tiny_machine
      (Schedule.unfused ~nprocs:1 p)
  in
  (sink, r)

let test_cross_attribution () =
  (* contiguous: a, b (and c) alias in the 1 KB cache -> cross misses *)
  let sink, r = run_alias (fun p -> Partition.contiguous p.Ir.decls) in
  let t = Obs.totals sink in
  Alcotest.(check bool) "misses exceed cold" true (t.Obs.t_misses > t.Obs.t_cold);
  Alcotest.(check bool) "cross-array conflicts found" true (t.Obs.t_cross > 0);
  Alcotest.(check int) "all non-cold misses are cross-array" t.Obs.t_cross
    (t.Obs.t_misses - t.Obs.t_cold);
  Alcotest.(check int) "sums to result" r.Exec.total_misses t.Obs.t_misses;
  (* partitioned: disjoint set regions -> compulsory misses only *)
  let psink, _ =
    run_alias (fun p ->
        Partition.cache_partitioned
          ~cache:{ Partition.capacity = 1024; line = 64; assoc = 1 }
          p.Ir.decls)
  in
  let pt = Obs.totals psink in
  Alcotest.(check int) "partitioned: no cross conflicts" 0 pt.Obs.t_cross;
  Alcotest.(check int) "partitioned: only cold misses" pt.Obs.t_cold
    pt.Obs.t_misses

let test_breakdown_tables () =
  let sink, r = run_alias (fun p -> Partition.contiguous p.Ir.decls) in
  let sum_rows rows =
    List.fold_left (fun acc (_, t) -> acc + t.Obs.t_misses) 0 rows
  in
  List.iter
    (fun by ->
      Alcotest.(check int) "rows sum to total misses" r.Exec.total_misses
        (sum_rows (Exec.breakdown sink ~by)))
    [ Obs.By_array; Obs.By_phase; Obs.By_proc ];
  let arrays = List.map fst (Exec.breakdown sink ~by:Obs.By_array) in
  Alcotest.(check (list string)) "array rows in decl order"
    [ "a"; "b"; "c" ] arrays

(* The exporter must produce well-formed JSON with one span per phase
   and barrier and the per-processor metadata threads. *)
let test_trace_json () =
  let p = Tutil.chain_program ~lo:3 ~hi:40 [ [ 0 ]; [ -1; 1 ] ] in
  let sink = Obs.create ~layout:"partitioned" () in
  let _ =
    Exec.run ~sink ~machine:Machine.convex ~steps:2
      (Schedule.fused ~nprocs:2 ~strip:8 p)
  in
  let json = Obs.trace_json sink in
  let count_sub sub =
    let n = String.length json and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub json i m = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check bool) "starts as a trace object" true
    (Tutil.contains json "{\"traceEvents\": [");
  (* 2 phases x 2 steps, "X" complete events *)
  Alcotest.(check int) "phase spans" 4 (count_sub "\"cat\":\"phase\"");
  (* one barrier between phases except after the last: 2*2 - 1 *)
  Alcotest.(check int) "barrier spans" 3 (count_sub "\"cat\":\"barrier\"");
  Alcotest.(check int) "thread metadata" 3 (count_sub "\"ph\":\"M\"");
  Alcotest.(check bool) "box spans present" true
    (count_sub "\"cat\":\"box\"" > 0);
  Alcotest.(check bool) "machine recorded" true
    (Tutil.contains json "\"machine\": \"Convex SPP-1000\"");
  Alcotest.(check bool) "layout recorded" true
    (Tutil.contains json "\"layout\": \"partitioned\"")

(* Per-phase cycles recorded by the sink agree with the result's
   phase_cycles (each phase's max over processors). *)
let test_phase_cycles () =
  let p = Tutil.chain_program ~lo:3 ~hi:40 [ [ 0 ]; [ -1; 1 ] ] in
  let sink = Obs.create () in
  let r =
    Exec.run ~sink ~machine:Machine.ksr2
      (Schedule.fused ~nprocs:2 ~strip:8 p)
  in
  let pc = Obs.phase_proc_cycles sink in
  Array.iteri
    (fun ph cycles ->
      let mx = Array.fold_left Float.max 0.0 pc.(ph) in
      Alcotest.(check (float 1e-6)) "phase max cycles" cycles mx)
    r.Exec.phase_cycles;
  Alcotest.(check int) "phase labels" 2 (Obs.nphases sink);
  Alcotest.(check string) "fused label" "fused" (Obs.phase_label sink 0);
  Alcotest.(check string) "peeled label" "peeled" (Obs.phase_label sink 1)

(* Calibration: a recorded profile keys the measured factor by layout
   tag and overrides the heuristic for exactly that layout. *)
let test_calibration () =
  let module Space = Lf_tune.Space in
  let module Cost = Lf_tune.Cost in
  let sink, _ = run_alias (fun p -> Partition.contiguous p.Ir.decls) in
  Obs.set_layout sink "contiguous";
  let calibration = Cost.calibration_of_sink sink in
  let t = Obs.totals sink in
  let expected =
    float_of_int t.Obs.t_misses /. float_of_int (max 1 t.Obs.t_cold)
  in
  Alcotest.(check (float 1e-9)) "factor is misses/cold" expected
    (List.assoc "contiguous" calibration);
  let cand layout = { Space.variant = Space.Unfused; layout } in
  Alcotest.(check (float 1e-9)) "calibrated layout uses measurement"
    expected
    (Cost.conflict_factor ~calibration ~machine:tiny_machine
       (cand Space.Contiguous));
  Alcotest.(check (float 1e-9)) "other layouts keep the heuristic" 1.0
    (Cost.conflict_factor ~calibration ~machine:tiny_machine
       (cand (Space.Partitioned { assoc_aware = true })))

(* lf_parallel pushes named counters through the same sink. *)
let test_named_counters () =
  let module Pool = Lf_parallel.Pool in
  let module Barrier = Lf_parallel.Barrier in
  let sink = Obs.create () in
  let pool = Pool.create ~sink 4 in
  let bar = Barrier.create ~sink 4 in
  Pool.run pool (fun _ -> Barrier.wait bar);
  Pool.run pool (fun _ -> Barrier.wait bar);
  Pool.shutdown pool;
  Alcotest.(check (list (pair string int)))
    "pool regions and barrier waits counted"
    [ ("barrier.wait", 8); ("pool.region", 2) ]
    (Obs.named_counts sink)

let suite =
  [
    Tutil.to_alcotest (prop_observer_free ~machine:Machine.ksr2 "ksr2");
    Tutil.to_alcotest (prop_observer_free ~machine:Machine.convex "convex");
    (* the batched engine takes entirely different probe paths
       (wholesale hit/miss recorders, deferred TLB settlement); it must
       be exactly as observer-effect-free as the scalar one *)
    Tutil.to_alcotest
      (prop_observer_free ~mode:Exec.Run_compressed ~tag:", run-compressed"
         ~machine:Machine.ksr2 "ksr2");
    Tutil.to_alcotest
      (prop_observer_free ~mode:Exec.Run_compressed ~tag:", run-compressed"
         ~machine:Machine.convex "convex");
    Alcotest.test_case "cross-array attribution" `Quick
      test_cross_attribution;
    Alcotest.test_case "breakdown tables sum" `Quick test_breakdown_tables;
    Alcotest.test_case "chrome trace export" `Quick test_trace_json;
    Alcotest.test_case "phase cycles and labels" `Quick test_phase_cycles;
    Alcotest.test_case "calibration from profile" `Quick test_calibration;
    Alcotest.test_case "parallel named counters" `Quick test_named_counters;
  ]
